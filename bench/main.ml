(* The benchmark harness: one section per table and figure of the paper's
   evaluation (§9), per the experiment index in DESIGN.md.

     dune exec bench/main.exe            -- run everything
     dune exec bench/main.exe -- table2  -- one experiment
     (sections: table1 table2 table3 table4 fig11 patterns bugs scaling
      durability kvs strategies faults fs wal net parallel micro)

   Flags:
     --quick        skip the slow sections (fig11, micro)
     --json [FILE]  also write per-section machine-readable results —
                    {name, iters, ns_per_op, metrics} records, where
                    [metrics] is the delta of the Obs.Metrics counters the
                    section caused — to FILE (default BENCH_results.json)

   Absolute numbers are produced by this repository's own substrate (pure
   OCaml, a discrete-event multicore simulator); the claims being reproduced
   are the *relative* ones — who wins, by what factor, and where the curves
   bend.  Each section prints the paper's numbers next to ours. *)

module V = Tslang.Value
module R = Perennial_core.Refinement
module O = Perennial_core.Outline

let section title =
  Fmt.pr "@.%s@.%s@." title (String.make (String.length title) '=')

(* Machine-readable results, written when --json is given.  Sections are
   recorded by the driver (wall time + metric deltas); the micro section
   additionally pushes one record per Bechamel test. *)
module Bench_out = struct
  let records : Obs.Json.t list ref = ref []

  (* [latency] is (p50, p95, p99) in microseconds; sections driven by the
     mcsim simulator carry it, pure-CPU sections omit it. *)
  let add ?latency name ~iters ~ns_per_op ~metrics =
    let base =
      [ ("name", Obs.Json.Str name);
        ("iters", Obs.Json.Int iters);
        ("ns_per_op", Obs.Json.Float ns_per_op);
        ("metrics", Obs.Json.Obj (List.map (fun (k, v) -> (k, Obs.Json.Int v)) metrics)) ]
    in
    let base =
      match latency with
      | None -> base
      | Some (p50, p95, p99) ->
        base
        @ [ ( "latency_us",
              Obs.Json.Obj
                [ ("p50", Obs.Json.Float p50);
                  ("p95", Obs.Json.Float p95);
                  ("p99", Obs.Json.Float p99) ] ) ]
    in
    records := Obs.Json.Obj base :: !records

  let write path =
    let doc =
      Obs.Json.Obj
        [ ("schema", Obs.Json.Str "perennial-bench/v2");
          ("sections", Obs.Json.Arr (List.rev !records)) ]
    in
    let oc = open_out path in
    output_string oc (Obs.Json.to_string doc);
    output_char oc '\n';
    close_out oc;
    Fmt.pr "@.Wrote %d result records to %s@." (List.length !records) path
end

(* Pass/fail accumulator so the harness can self-report shape checks. *)
module Shape = struct
  let passed = ref []
  let failed = ref []

  let check name ok = if ok then passed := name :: !passed else failed := name :: !failed

  let report () =
    Fmt.pr "@.Shape checks: %d passed%s@." (List.length !passed)
      (match !failed with
      | [] -> ""
      | f -> Fmt.str ", %d FAILED (%s)" (List.length f) (String.concat ", " f));
    if !failed <> [] then exit 1
end

(* ------------------------------------------------------------------ *)
(* Lines-of-code accounting (Tables 2, 3, 4)                            *)
(* ------------------------------------------------------------------ *)

module Loc = struct
  let count_file path =
    try
      let ic = open_in path in
      let n = ref 0 in
      (try
         while true do
           ignore (input_line ic);
           incr n
         done
       with End_of_file -> ());
      close_in ic;
      !n
    with Sys_error _ -> 0

  let count_dir ?(ext = [ ".ml"; ".mli" ]) dir =
    match Sys.readdir dir with
    | files ->
      Array.to_list files
      |> List.filter (fun f -> List.exists (Filename.check_suffix f) ext)
      |> List.map (fun f -> count_file (Filename.concat dir f))
      |> List.fold_left ( + ) 0
    | exception Sys_error _ -> 0

  let count_files paths = List.fold_left (fun a p -> a + count_file p) 0 paths
end

(* ------------------------------------------------------------------ *)
(* Table 1: the techniques, with their executable enforcement points    *)
(* ------------------------------------------------------------------ *)

let table1 () =
  section "Table 1: Perennial's techniques and where this repo enforces them";
  let rows =
    [
      ("crash invariant (5.1)",
       "Outline.Open_inv / check_recovery",
       "invariant closed after one atomic step; recovery starts from it");
      ("versioned memory (5.2)",
       "Assertion.durable + recovery entry",
       "volatile capabilities (pts, leases, receipts) dropped at crash");
      ("recovery leases (5.3)",
       "Outline.Write_durable / Synthesize",
       "writes need master+lease; only recovery mints fresh leases");
      ("refinement (4)",
       "Outline.Simulate / Refinement.check",
       "pending-op token consumed against the spec transition");
      ("crash refinement (5.5)",
       "Outline.Crash_step / finish_recovery",
       "Crashing->Done via one atomic spec crash transition");
      ("recovery helping (5.4)",
       "Spec_tok durability + Simulate in recovery",
       "pending-op tokens survive crashes; recovery completes them");
    ]
  in
  List.iter
    (fun (tech, where_, what) -> Fmt.pr "  %-26s %-44s %s@." tech where_ what)
    rows;
  (* the camera laws and frame-preserving updates behind §5.3, checked live *)
  let module Str_eq = struct
    type t = string

    let equal = String.equal
    let compare = String.compare
    let pp = Fmt.string
  end in
  let module Ls = Ra.Lease.Make (Str_eq) in
  let module F = Ra.Fpu.Make (Ls) in
  let sample =
    [ Ls.unit; Ls.master 0 "a"; Ls.lease 0 "a"; Ls.lease 0 "b";
      Ls.op (Ls.master 0 "a") (Ls.lease 0 "a") ]
  in
  let module L = Ra.Laws.Make (Ls) in
  let laws_ok = L.check_sample sample = None in
  let write_fpu =
    F.ok1 ~frames:sample
      (Ls.op (Ls.master 0 "a") (Ls.lease 0 "a"))
      (Ls.op (Ls.master 0 "b") (Ls.lease 0 "b"))
  in
  let bare_master_fpu = F.ok1 ~frames:sample (Ls.master 0 "a") (Ls.master 0 "b") in
  Fmt.pr
    "@.  lease-camera laws over sample: %s; write fpu: %s; master-only fpu: %s (must be rejected)@."
    (if laws_ok then "hold" else "VIOLATED")
    (if write_fpu then "frame-preserving" else "REJECTED")
    (if bare_master_fpu then "ACCEPTED (BUG)" else "rejected");
  Shape.check "table1" (laws_ok && write_fpu && not bare_master_fpu)

(* ------------------------------------------------------------------ *)
(* Table 2: framework lines of code                                     *)
(* ------------------------------------------------------------------ *)

let table2 () =
  section "Table 2: lines of code for Perennial and Goose (ours vs paper)";
  let ts = Loc.count_dir "lib/tslang" in
  let core =
    Loc.count_dir "lib/core" + Loc.count_dir "lib/seplogic" + Loc.count_dir "lib/ra"
    + Loc.count_dir "lib/sched"
  in
  let goose_translator =
    Loc.count_files
      [ "lib/goose/token.ml"; "lib/goose/lexer.ml"; "lib/goose/parser.ml";
        "lib/goose/typecheck.ml"; "lib/goose/translate.ml"; "lib/goose/ast.ml" ]
  in
  let goose_lib = Loc.count_dir ~ext:[ ".go" ] "examples/goose" in
  let go_semantics =
    Loc.count_files [ "lib/goose/interp.ml"; "lib/goose/gvalue.ml" ] + Loc.count_dir "lib/gfs"
  in
  Fmt.pr "  %-34s %8s %8s@." "Component" "ours" "paper";
  Fmt.pr "  %-34s %8d %8d@." "Transition system language" ts 1710;
  Fmt.pr "  %-34s %8d %8d@." "Core framework" core 7220;
  Fmt.pr "  %-34s %8d %8d@." "Perennial total" (ts + core) 8930;
  Fmt.pr "  %-34s %8d %8d@." "Goose translator" goose_translator 1790;
  Fmt.pr "  %-34s %8d %8d@." "Goose library (Go sources)" goose_lib 220;
  Fmt.pr "  %-34s %8d %8d@." "Go semantics" go_semantics 2020

(* ------------------------------------------------------------------ *)
(* Table 3: crash-safety patterns — LoC and verification statistics     *)
(* ------------------------------------------------------------------ *)

let run_refinement name cfg =
  match R.check cfg with
  | R.Refinement_holds stats ->
    Fmt.pr "    %-40s VERIFIED  %a@." name R.pp_stats stats;
    true
  | R.Refinement_violated (f, _) ->
    Fmt.pr "    %-40s VIOLATED  %s@." name f.R.reason;
    false
  | R.Budget_exhausted stats ->
    Fmt.pr "    %-40s BUDGET    %a@." name R.pp_stats stats;
    false

let table3 () =
  section "Table 3: crash-safety patterns — lines of code and verification";
  let rows =
    [
      ("Two-disk semantics", [ "lib/disk/two_disk.ml" ], 1350);
      ("Replicated disk", [ "lib/systems/replicated_disk.ml"; "lib/systems/rd_proof.ml" ], 1180);
      ( "Single-disk semantics",
        [ "lib/disk/single_disk.ml"; "lib/disk/locks.ml"; "lib/disk/block.ml" ],
        1310 );
      ("Shadow copy", [ "lib/systems/shadow_copy.ml" ], 390);
      ("Write-ahead logging", [ "lib/systems/wal.ml"; "lib/systems/wal_proof.ml" ], 930);
      ("Group commit", [ "lib/systems/group_commit.ml" ], 1410);
    ]
  in
  Fmt.pr "  %-34s %8s %8s@." "Example" "ours" "paper";
  List.iter
    (fun (name, files, paper) -> Fmt.pr "  %-34s %8d %8d@." name (Loc.count_files files) paper)
    rows;
  Fmt.pr "@.  Exhaustive verification of each pattern (interleavings x crash points):@.";
  let vx = V.str "x" and vy = V.str "y" in
  let checks =
    [
      (fun () -> run_refinement "replicated disk (2 writers, failover)"
        (Systems.Replicated_disk.checker_config ~may_fail:true ~max_crashes:1 ~size:1
           [ [ Systems.Replicated_disk.write_call 0 vx ];
             [ Systems.Replicated_disk.write_call 0 vy ] ]));
      (fun () -> run_refinement "shadow copy (writer + reader)"
        (Systems.Shadow_copy.checker_config ~max_crashes:1
           [ [ Systems.Shadow_copy.write_call vx vy ]; [ Systems.Shadow_copy.read_call ] ]));
      (fun () -> run_refinement "write-ahead log (crash in recovery)"
        (Systems.Wal.checker_config ~max_crashes:2 [ [ Systems.Wal.write_call vx vy ] ]));
      (fun () -> run_refinement "group commit (lossy crash spec)"
        (Systems.Group_commit.checker_config ~max_crashes:1
           [ [ Systems.Group_commit.write_call vx vy; Systems.Group_commit.flush_call ] ]));
    ]
  in
  let ok = List.map (fun f -> f ()) checks in
  Fmt.pr "@.  Proof outlines (Theorem 2 premises):@.";
  List.iter
    (fun (name, r) -> Fmt.pr "    replicated-disk %-22s %a@." name O.pp_result r)
    (Systems.Rd_proof.check 1);
  List.iter
    (fun (name, r) -> Fmt.pr "    write-ahead-log %-22s %a@." name O.pp_result r)
    (Systems.Wal_proof.check ());
  List.iter
    (fun (name, r) -> Fmt.pr "    shadow-copy     %-22s %a@." name O.pp_result r)
    (Systems.Shadow_proof.check ());
  Shape.check "table3" (List.for_all Fun.id ok)

(* ------------------------------------------------------------------ *)
(* Table 4: Mailboat vs CMAIL effort                                    *)
(* ------------------------------------------------------------------ *)

let table4 () =
  section "Table 4: Mailboat vs CMAIL effort (ours vs paper)";
  let impl_go =
    let src = Mailboat.Goose_src.source in
    List.length
      (List.filter
         (fun l ->
           let l = String.trim l in
           l <> "" && not (String.length l >= 2 && String.sub l 0 2 = "//"))
         (String.split_on_char '\n' src))
  in
  let proof = Loc.count_files [ "lib/mailboat/core.ml"; "lib/mailboat/core_ids.ml" ] in
  let framework =
    Loc.count_dir "lib/tslang" + Loc.count_dir "lib/core" + Loc.count_dir "lib/seplogic"
    + Loc.count_dir "lib/ra" + Loc.count_dir "lib/sched"
  in
  Fmt.pr "  %-34s %14s %14s@." "Component" "Mailboat(ours)" "CMAIL(paper)";
  Fmt.pr "  %-34s %14d %14s@." "Implementation (Go source)" impl_go "215 (Coq)";
  Fmt.pr "  %-34s %14d %14d@." "Spec + verification harness" proof 4050;
  Fmt.pr "  %-34s %14d %14d@." "Framework" framework 9600;
  Fmt.pr "  (paper's Mailboat: 159 impl / 3,360 proof / 8,900 framework — the point@.";
  Fmt.pr "   being reproduced: one abstraction relation, no intermediate layers,@.";
  Fmt.pr "   implementation smaller than CMAIL's despite adding crash safety)@.";
  Shape.check "table4" (impl_go < 215)

(* ------------------------------------------------------------------ *)
(* Figure 11: throughput scaling                                        *)
(* ------------------------------------------------------------------ *)

let fig11 () =
  section "Figure 11: mail-server throughput vs cores (simulated multicore)";
  Fmt.pr "  (workload: 50/50 SMTP deliver + POP3 pickup, 100 users, closed loop;@.";
  Fmt.pr "   substrate: discrete-event simulator — see DESIGN.md substitutions)@.@.";
  let series = Mcsim.Mail_model.figure11 ~requests:30_000 () in
  Fmt.pr "  %-9s" "cores:";
  List.iter (fun c -> Fmt.pr "%8d" c) (List.init 12 (fun i -> i + 1));
  Fmt.pr "@.";
  List.iter
    (fun s ->
      Fmt.pr "  %-9s" (Mailboat.Server.kind_name s.Mcsim.Mail_model.kind);
      List.iter
        (fun (p : Mcsim.Mail_model.point) -> Fmt.pr "%7.0fk" (p.throughput_rps /. 1000.))
        s.Mcsim.Mail_model.points;
      Fmt.pr "@.")
    series;
  Fmt.pr "@.  Request latency at 12 cores (us, nearest-rank percentiles):@.";
  Fmt.pr "    %-9s%10s%10s%10s@." "" "p50" "p95" "p99";
  List.iter
    (fun s ->
      let pt =
        List.find
          (fun (p : Mcsim.Mail_model.point) -> p.cores = 12)
          s.Mcsim.Mail_model.points
      in
      Fmt.pr "    %-9s%10.1f%10.1f%10.1f@."
        (Mailboat.Server.kind_name s.Mcsim.Mail_model.kind)
        pt.lat_p50_us pt.lat_p95_us pt.lat_p99_us;
      Bench_out.add
        ("fig11: latency@12c ["
        ^ Mailboat.Server.kind_name s.Mcsim.Mail_model.kind
        ^ "]")
        ~iters:30_000 ~ns_per_op:(pt.lat_p50_us *. 1e3) ~metrics:[]
        ~latency:(pt.lat_p50_us, pt.lat_p95_us, pt.lat_p99_us))
    series;
  let find k = List.find (fun (s : Mcsim.Mail_model.series) -> s.kind = k) series in
  let mb = find Mailboat.Server.Mailboat_server
  and gm = find Mailboat.Server.Gomail
  and cm = find Mailboat.Server.Cmail in
  let at s c = Mcsim.Mail_model.throughput_at s c in
  let r1 = at mb 1 /. at gm 1 and r2 = at gm 1 /. at cm 1 in
  let scale = at mb 12 /. at mb 1 in
  Fmt.pr "@.  shape checks (paper's §9.3 claims):@.";
  Fmt.pr "    Mailboat/GoMail at 1 core : %.2fx  (paper: 1.81x)@." r1;
  Fmt.pr "    GoMail/CMAIL at 1 core    : %.2fx  (paper: 1.34x)@." r2;
  Fmt.pr "    Mailboat 12-core speedup  : %.1fx  (sublinear, GC+kernel bound)@." scale;
  let ordered =
    List.for_all (fun c -> at mb c > at gm c && at gm c > at cm c) (List.init 12 (fun i -> i + 1))
  in
  Fmt.pr "    ordering Mailboat > GoMail > CMAIL at every core count: %b@." ordered;
  Shape.check "fig11"
    (r1 > 1.5 && r1 < 2.2 && r2 > 1.15 && r2 < 1.6 && scale > 3. && scale < 11. && ordered)

(* ------------------------------------------------------------------ *)
(* §9.1/Figure 6: pattern walkthrough incl. helping                     *)
(* ------------------------------------------------------------------ *)

let patterns () =
  section "Patterns (E6): crash in the middle of rd_write, helping in recovery";
  let ok1 =
    run_refinement "rd_write crash at every step (Fig. 6)"
      (Systems.Replicated_disk.checker_config ~may_fail:false ~max_crashes:1 ~size:1
         [ [ Systems.Replicated_disk.write_call 0 (V.str "v") ] ])
  in
  let ok2 =
    run_refinement "mailboat deliver + crash + recovery"
      (Mailboat.Core.checker_config ~users:1 ~max_crashes:1
         [ [ Mailboat.Core.deliver_call 0 "ab" ] ])
  in
  Fmt.pr "@.  helping is *required*: WAL recovery without the Simulate ghost step:@.";
  let broken =
    {
      O.r_body =
        [
          O.Synthesize "data0"; O.Synthesize "data1"; O.Synthesize "flag";
          O.Synthesize "log0"; O.Synthesize "log1";
          O.Read_durable { loc = "flag"; bind = "f" };
          O.Read_durable { loc = "log0"; bind = "r0" };
          O.Read_durable { loc = "log1"; bind = "r1" };
          O.Choice
            [
              [ O.Atomic [ O.Write_durable { loc = "data0"; value = Seplogic.Sval.var "r0" } ];
                O.Atomic [ O.Write_durable { loc = "data1"; value = Seplogic.Sval.var "r1" } ];
                O.Atomic [ O.Write_durable { loc = "flag"; value = Seplogic.Sval.str "e" } ] ];
              [];
            ];
          O.Crash_step;
        ];
    }
  in
  let helping_needed =
    match O.check_recovery Systems.Wal_proof.system broken with
    | O.Rejected why ->
      Fmt.pr "    rejected as it must be: %s@." (String.sub why 0 (min 100 (String.length why)));
      true
    | O.Accepted _ ->
      Fmt.pr "    UNEXPECTEDLY ACCEPTED@.";
      false
  in
  Shape.check "patterns" (ok1 && ok2 && helping_needed)

(* ------------------------------------------------------------------ *)
(* §9.5: the bug suite — every seeded bug must be caught                *)
(* ------------------------------------------------------------------ *)

let bugs () =
  section "Bug suite (E7, §9.5): seeded bugs must be rejected";
  let vx = V.str "x" and vy = V.str "y" in
  let expect_violation name cfg =
    match R.check cfg with
    | R.Refinement_violated (f, _) ->
      Fmt.pr "    %-44s CAUGHT: %s@." name
        (String.sub f.R.reason 0 (min 60 (String.length f.R.reason)));
      true
    | R.Refinement_holds _ ->
      Fmt.pr "    %-44s MISSED@." name;
      false
    | R.Budget_exhausted _ ->
      Fmt.pr "    %-44s BUDGET@." name;
      false
  in
  let module Rd = Systems.Replicated_disk in
  let buggy_rd ~recovery ?(may_fail = true) ?(max_crashes = 1) threads =
    R.config ~spec:(Rd.spec 1) ~init_world:(Rd.init_world ~may_fail 1)
      ~crash_world:Rd.crash_world ~pp_world:Rd.pp_world ~threads ~recovery
      ~post:(Rd.probe 1) ~max_crashes ()
  in
  let checks =
    [
      (fun () -> expect_violation "rd: no recovery"
        (buggy_rd ~recovery:Rd.Buggy.recover_nop [ [ Rd.write_call 0 vx ] ]));
      (fun () -> expect_violation "rd: recovery zeroes both disks (§1)"
        (buggy_rd ~recovery:(Rd.Buggy.recover_zero 1) ~may_fail:false
           [ [ Rd.write_call 0 vx ] ]));
      (fun () -> expect_violation "rd: unlocked writes"
        (buggy_rd ~recovery:(Rd.recover_prog 1) ~max_crashes:0
           [ [ Rd.Buggy.write_call_unlocked 0 vx ]; [ Rd.Buggy.write_call_unlocked 0 vy ] ]));
      (fun () -> expect_violation "shadow: in-place write"
        (Systems.Shadow_copy.checker_config ~max_crashes:1
           [ [ Systems.Shadow_copy.Buggy.write_call_in_place vx vy ] ]));
      (fun () -> expect_violation "wal: apply without log"
        (Systems.Wal.checker_config ~max_crashes:1
           [ [ Systems.Wal.Buggy.write_call_no_log vx vy ] ]));
      (fun () -> expect_violation "wal: recovery clears flag first"
        (R.config ~spec:Systems.Wal.spec ~init_world:(Systems.Wal.init_world ())
           ~crash_world:Systems.Wal.crash_world ~pp_world:Systems.Wal.pp_world
           ~threads:[ [ Systems.Wal.write_call vx vy ] ]
           ~recovery:Systems.Wal.Buggy.recover_clear_first
           ~post:[ Systems.Wal.read_call ] ~max_crashes:2 ()));
      (fun () -> expect_violation "gc: strict (lossless) crash spec"
        (Systems.Group_commit.checker_config ~spec:Systems.Group_commit.strict_spec
           ~max_crashes:1 [ [ Systems.Group_commit.write_call vx vy ] ]));
      (fun () -> expect_violation "mailboat: unspooled deliver"
        (Mailboat.Core.checker_config ~users:1 ~max_crashes:1
           [ [ Mailboat.Core.Buggy.deliver_call_unspooled 0 "abcd" ] ]));
      (fun () -> expect_violation "mailboat: recovery deletes mailboxes"
        (R.config ~spec:(Mailboat.Core.spec ~users:1)
           ~init_world:(Mailboat.Core.init_world ~users:1 ())
           ~crash_world:Mailboat.Core.crash_world ~pp_world:Mailboat.Core.pp_world
           ~threads:[ [ Mailboat.Core.deliver_call 0 "ab" ] ]
           ~recovery:(Mailboat.Core.Buggy.recover_wrong_dir ~users:1)
           ~post:[ Mailboat.Core.pickup_call 0; Mailboat.Core.unlock_call 0 ]
           ~max_crashes:1 ()));
    ]
  in
  let results = List.map (fun f -> f ()) checks in
  (* the §9.5 infinite-pickup bug, caught by execution rather than proof *)
  let loop_caught =
    let w = Mailboat.Core.init_world ~users:1 () in
    let fs, fd = Option.get (Gfs.Fs.create w.Mailboat.Core.fs "user0" "m0") in
    let fs = Option.get (Gfs.Fs.append fs fd "abcdef") in
    let w = { w with Mailboat.Core.fs } in
    match Sched.Runner.run ~max_steps:5_000 w [ Mailboat.Core.Buggy.pickup_infinite_loop 0 ] with
    | exception Failure _ ->
      Fmt.pr "    %-44s CAUGHT: step budget (diverges)@."
        "mailboat: >1-chunk pickup loop (§9.5)";
      true
    | _ ->
      Fmt.pr "    %-44s MISSED@." "mailboat: >1-chunk pickup loop";
      false
  in
  Shape.check "bugs" (List.for_all Fun.id results && loop_caught)

(* ------------------------------------------------------------------ *)
(* Checker scaling: state-space growth across instance sizes            *)
(* ------------------------------------------------------------------ *)

let scaling () =
  section "Checker scaling: exhaustive state space vs instance size";
  Fmt.pr "  %-44s %12s %12s %10s@." "instance" "executions" "steps" "time";
  let timed name cfg =
    let t0 = Unix.gettimeofday () in
    match R.check cfg with
    | R.Refinement_holds stats ->
      Fmt.pr "  %-44s %12d %12d %8.0fms@." name stats.R.executions stats.R.steps
        ((Unix.gettimeofday () -. t0) *. 1000.);
      true
    | R.Refinement_violated (f, _) ->
      Fmt.pr "  %-44s VIOLATED: %s@." name f.R.reason;
      false
    | R.Budget_exhausted _ ->
      Fmt.pr "  %-44s budget exhausted@." name;
      false
  in
  let module Rd = Systems.Replicated_disk in
  let vx = V.str "x" and vy = V.str "y" in
  let ok =
    List.map
      (fun f -> f ())
      [
        (fun () ->
          timed "rd: 1 writer, no crash"
            (Rd.checker_config ~may_fail:false ~max_crashes:0 ~size:1
               [ [ Rd.write_call 0 vx ] ]));
        (fun () ->
          timed "rd: 1 writer, 1 crash"
            (Rd.checker_config ~may_fail:false ~max_crashes:1 ~size:1
               [ [ Rd.write_call 0 vx ] ]));
        (fun () ->
          timed "rd: 1 writer, 1 crash, disk failures"
            (Rd.checker_config ~may_fail:true ~max_crashes:1 ~size:1
               [ [ Rd.write_call 0 vx ] ]));
        (fun () ->
          timed "rd: 2 writers, 1 crash, disk failures"
            (Rd.checker_config ~may_fail:true ~max_crashes:1 ~size:1
               [ [ Rd.write_call 0 vx ]; [ Rd.write_call 0 vy ] ]));
        (fun () ->
          timed "rd: 2 writers, 2 crashes, disk failures"
            (Rd.checker_config ~may_fail:true ~max_crashes:2 ~size:1
               [ [ Rd.write_call 0 vx ]; [ Rd.write_call 0 vy ] ]));
        (fun () ->
          timed "rd: 2 writers x 2 addresses, 1 crash"
            (Rd.checker_config ~may_fail:false ~max_crashes:1 ~size:2
               [ [ Rd.write_call 0 vx ]; [ Rd.write_call 1 vy ] ]));
        (fun () ->
          timed "mailboat: deliver || pickup, 1 crash"
            (Mailboat.Core.checker_config ~users:1 ~max_crashes:1
               [ [ Mailboat.Core.deliver_call 0 "ab" ];
                 [ Mailboat.Core.pickup_call 0; Mailboat.Core.unlock_call 0 ] ]));
      ]
  in
  Fmt.pr "@.  beyond this, the randomized checker takes over (test/test_random_check.ml)@.";
  Shape.check "scaling" (List.for_all Fun.id ok)

(* ------------------------------------------------------------------ *)
(* Extension: deferred durability (the paper's §1 future-work item)     *)
(* ------------------------------------------------------------------ *)

let durability () =
  section "Extension: deferred durability (buffered writes + fsync)";
  Fmt.pr "  The paper's file-system model makes every write durable; §1 calls@.";
  Fmt.pr "  deferred durability future work.  Our Fs supports it, and the@.";
  Fmt.pr "  checker shows exactly what it costs Mailboat:@.@.";
  let plain =
    match
      R.check
        (Mailboat.Core.checker_config ~users:1 ~max_crashes:1 ~durability:`Deferred
           [ [ Mailboat.Core.deliver_call 0 "ab" ] ])
    with
    | R.Refinement_violated (f, _) ->
      Fmt.pr "    deliver without fsync, deferred durability : VIOLATED (%s)@."
        (String.sub f.R.reason 0 (min 60 (String.length f.R.reason)));
      true
    | R.Refinement_holds _ ->
      Fmt.pr "    deliver without fsync unexpectedly VERIFIED@.";
      false
    | R.Budget_exhausted _ ->
      Fmt.pr "    budget exhausted@.";
      false
  in
  let fsynced =
    run_refinement "deliver with fsync, deferred durability"
      (Mailboat.Core.checker_config ~users:1 ~max_crashes:1 ~durability:`Deferred
         [ [ Mailboat.Core.deliver_fsync_call 0 "ab" ] ])
  in
  let still_sync =
    run_refinement "deliver with fsync, paper's sync model "
      (Mailboat.Core.checker_config ~users:1 ~max_crashes:1
         [ [ Mailboat.Core.deliver_fsync_call 0 "ab" ] ])
  in
  Shape.check "durability" (plain && fsynced && still_sync)

(* ------------------------------------------------------------------ *)
(* Extension: multi-address journal + transactional KVS                 *)
(* ------------------------------------------------------------------ *)

let kvs () =
  section "Extension: multi-address journal + transactional KVS (GoJournal rung)";
  let module J = Journal.Txn_log in
  let module K = Journal.Kvs in
  Fmt.pr "  The fixed-pair WAL generalized: per-txn entry lists, a counted@.";
  Fmt.pr "  commit record, recovery replay, and a per-key-locked KV store@.";
  Fmt.pr "  with group commit on top.  Lines of code:@.@.";
  List.iter
    (fun (name, files) -> Fmt.pr "    %-40s %6d@." name (Loc.count_files files))
    [
      ("journal + kvs + proof (lib/journal)",
       [ "lib/journal/txn_log.ml"; "lib/journal/kvs.ml"; "lib/journal/kvs_proof.ml" ]);
      ("tests (test/test_journal.ml)", [ "test/test_journal.ml" ]);
    ];
  let b = Disk.Block.of_string in
  let ly = J.layout ~n_data:2 ~max_slots:2 in
  let p = K.params ~n_keys:2 () in
  Fmt.pr "@.  Exhaustive verification (interleavings x crash points):@.";
  let held =
    [
      run_refinement "journal: commit || read, 1 crash"
        (J.checker_config ly ~max_crashes:1
           [ [ J.commit_call ly [ (0, b "A"); (1, b "B") ] ]; [ J.read_call ly 0 ] ]);
      run_refinement "kvs: put || get, 1 crash"
        (K.checker_config p ~max_crashes:1
           [ [ K.put_call p 0 (V.str "A") ]; [ K.get_call p 1 ] ]);
      run_refinement "kvs: txn, 2 crashes (during recovery too)"
        (K.checker_config p ~max_crashes:2 [ [ K.txn_call p [ (0, b "A"); (1, b "B") ] ] ]);
      run_refinement "kvs: async put; flush || get, 1 crash"
        (K.checker_config p ~max_crashes:1
           [ [ K.put_async_call p 0 (V.str "A"); K.flush_call p ]; [ K.get_call p 0 ] ]);
    ]
  in
  Fmt.pr "@.  Seeded bugs (must be rejected):@.";
  let expect_violation name cfg =
    match R.check cfg with
    | R.Refinement_violated (f, _) ->
      Fmt.pr "    %-44s CAUGHT: %s@." name
        (String.sub f.R.reason 0 (min 60 (String.length f.R.reason)));
      true
    | R.Refinement_holds _ ->
      Fmt.pr "    %-44s MISSED@." name;
      false
    | R.Budget_exhausted _ ->
      Fmt.pr "    %-44s BUDGET@." name;
      false
  in
  let caught =
    [
      expect_violation "journal: commit record before log"
        (J.checker_config ly ~max_crashes:1
           [
             [
               J.commit_call ly [ (0, b "A") ];
               J.Buggy.commit_call_record_first ly [ (0, b "C"); (1, b "D") ];
             ];
           ]);
      expect_violation "kvs: txn without the journal"
        (K.checker_config p ~max_crashes:1
           [ [ K.Buggy.txn_no_log p [ (0, b "A"); (1, b "B") ] ] ]);
      expect_violation "kvs: get skips group-commit buffer"
        (K.checker_config p ~max_crashes:0
           [ [ K.put_async_call p 0 (V.str "A"); K.Buggy.get_call_skip_buffer p 0 ] ]);
      expect_violation "kvs: strict (lossless) crash spec"
        (K.checker_config p ~spec:(K.strict_spec p) ~max_crashes:1
           [ [ K.put_async_call p 0 (V.str "A") ] ]);
    ]
  in
  Fmt.pr "@.  Proof outlines (Theorem 2 premises, 2-key instance):@.";
  let outlines = Journal.Kvs_proof.check () in
  List.iter
    (fun (name, r) -> Fmt.pr "    journal-kvs %-22s %a@." name O.pp_result r)
    outlines;
  let outline_ok =
    List.for_all (fun (_, r) -> match r with O.Accepted _ -> true | O.Rejected _ -> false) outlines
  in
  let buggy_outline_rejected =
    match Journal.Kvs_proof.check_buggy () with
    | O.Rejected why ->
      Fmt.pr "    record-first txn outline REJECTED: %s@."
        (String.sub why 0 (min 60 (String.length why)));
      true
    | O.Accepted _ ->
      Fmt.pr "    record-first txn outline UNEXPECTEDLY ACCEPTED@.";
      false
  in
  Fmt.pr "@.  Throughput vs cores (simulated; 70/25/5 get/put/txn, 16 keys):@.";
  let series = Mcsim.Kvs_model.sweep ~requests:20_000 () in
  Fmt.pr "    %-18s" "cores:";
  List.iter (fun c -> Fmt.pr "%8d" c) (List.init 12 (fun i -> i + 1));
  Fmt.pr "@.";
  List.iter
    (fun (s : Mcsim.Kvs_model.series) ->
      Fmt.pr "    %-18s" (Mcsim.Kvs_model.variant_name s.variant);
      List.iter
        (fun (pt : Mcsim.Kvs_model.point) -> Fmt.pr "%7.0fk" (pt.throughput_rps /. 1000.))
        s.points;
      Fmt.pr "@.")
    series;
  Fmt.pr "@.  Request latency at 12 cores (us, nearest-rank percentiles):@.";
  Fmt.pr "    %-18s%10s%10s%10s@." "" "p50" "p95" "p99";
  List.iter
    (fun (s : Mcsim.Kvs_model.series) ->
      let pt =
        List.find (fun (p : Mcsim.Kvs_model.point) -> p.cores = 12) s.points
      in
      Fmt.pr "    %-18s%10.1f%10.1f%10.1f@."
        (Mcsim.Kvs_model.variant_name s.variant)
        pt.lat_p50_us pt.lat_p95_us pt.lat_p99_us;
      Bench_out.add
        ("kvs: latency@12c [" ^ Mcsim.Kvs_model.variant_name s.variant ^ "]")
        ~iters:20_000 ~ns_per_op:(pt.lat_p50_us *. 1e3) ~metrics:[]
        ~latency:(pt.lat_p50_us, pt.lat_p95_us, pt.lat_p99_us))
    series;
  let find v = List.find (fun (s : Mcsim.Kvs_model.series) -> s.variant = v) series in
  let at s c = Mcsim.Kvs_model.throughput_at s c in
  let gl = find Mcsim.Kvs_model.Global_lock
  and pk = find Mcsim.Kvs_model.Per_key
  and gc = find Mcsim.Kvs_model.Group_commit in
  let ordered = at gc 12 > at pk 12 && at pk 12 > at gl 12 in
  let group_gain = at gc 12 /. at gl 12 in
  let global_flat = at gl 12 /. at gl 1 < 2.2 in
  let group_scales = at gc 12 /. at gc 1 > 2. in
  Fmt.pr "@.  shape checks:@.";
  Fmt.pr "    group-commit > per-key > global lock at 12 cores: %b@." ordered;
  Fmt.pr "    group-commit / global lock at 12 cores: %.2fx (> 1.4x)@." group_gain;
  Fmt.pr "    global lock flat (12-core speedup %.1fx < 2.2x): %b@."
    (at gl 12 /. at gl 1) global_flat;
  Fmt.pr "    group commit scales (12-core speedup %.1fx > 2x; Amdahl-capped@."
    (at gc 12 /. at gc 1);
  Fmt.pr "      by txn/flush quiesce + GC, like the paper's fig11): %b@." group_scales;
  Shape.check "kvs"
    (List.for_all Fun.id held && List.for_all Fun.id caught && outline_ok
    && buggy_outline_rejected && ordered && group_gain > 1.4 && global_flat && group_scales)

(* ------------------------------------------------------------------ *)
(* Exploration strategies: naive vs DPOR vs DPOR+sleep                  *)
(* ------------------------------------------------------------------ *)

let strategies () =
  section "Exploration strategies: naive vs DPOR vs DPOR+sleep sets";
  let module E = Perennial_core.Explore in
  let module J = Journal.Txn_log in
  let module K = Journal.Kvs in
  Fmt.pr "  Partial-order reduction prunes interleavings of commuting steps@.";
  Fmt.pr "  (disjoint footprints) and crash points that reach already-explored@.";
  Fmt.pr "  recovery states; the verdict must never change (differential@.";
  Fmt.pr "  harness: test/test_explore.ml).@.@.";
  let b = Disk.Block.of_string in
  let ly = J.layout ~n_data:2 ~max_slots:2 in
  let p = K.params ~n_keys:2 () in
  let vx = V.str "x" and vy = V.str "y" in
  let instances : (string * (E.strategy -> R.result)) list =
    [
      ( "rd: 2 writers + crash + disk failure",
        fun strategy ->
          R.check ~strategy
            (Systems.Replicated_disk.checker_config ~may_fail:true ~max_crashes:1
               ~size:1
               [ [ Systems.Replicated_disk.write_call 0 vx ];
                 [ Systems.Replicated_disk.write_call 0 vy ] ]) );
      ( "journal: commit || read + crash",
        fun strategy ->
          R.check ~strategy
            (J.checker_config ly ~max_crashes:1
               [ [ J.commit_call ly [ (0, b "A"); (1, b "B") ] ]; [ J.read_call ly 0 ] ]) );
      ( "kvs: put || get + crash",
        fun strategy ->
          R.check ~strategy
            (K.checker_config p ~max_crashes:1
               [ [ K.put_call p 0 (V.str "A") ]; [ K.get_call p 1 ] ]) );
      ( "kvs: txn + crash during recovery",
        fun strategy ->
          R.check ~strategy
            (K.checker_config p ~max_crashes:2
               [ [ K.txn_call p [ (0, b "A"); (1, b "B") ] ] ]) );
      ( "kvs: async put; flush || get + crash",
        fun strategy ->
          R.check ~strategy
            (K.checker_config p ~max_crashes:1
               [ [ K.put_async_call p 0 (V.str "A"); K.flush_call p ];
                 [ K.get_call p 0 ] ]) );
    ]
  in
  let verdict = function
    | R.Refinement_holds _ -> "holds"
    | R.Refinement_violated _ -> "violated"
    | R.Budget_exhausted _ -> "budget"
  in
  let stats_of = function
    | R.Refinement_holds st | R.Refinement_violated (_, st) | R.Budget_exhausted st -> st
  in
  Fmt.pr "  %-40s %-11s %8s %10s %8s %7s %7s %8s@." "instance" "strategy" "execs"
    "steps" "pruned" "crashsk" "sleepsk" "time";
  let ok = ref true in
  let kvs_reduction = ref 0. in
  List.iter
    (fun (name, run) ->
      let rows =
        List.map
          (fun s ->
            let t0 = Unix.gettimeofday () in
            let r = run s in
            let ms = (Unix.gettimeofday () -. t0) *. 1000. in
            (s, r, ms))
          E.all_strategies
      in
      let naive_st, naive_v =
        let _, r, _ = List.find (fun (s, _, _) -> s = E.Naive) rows in
        (stats_of r, verdict r)
      in
      List.iter
        (fun (s, r, ms) ->
          let st = stats_of r in
          Fmt.pr "  %-40s %-11s %8d %10d %8d %7d %7d %6.1fms@."
            (if s = E.Naive then name else "")
            (E.strategy_name s) st.R.executions st.R.steps st.R.commutations_pruned
            st.R.crash_skips st.R.sleep_skips ms;
          Bench_out.add
            (Printf.sprintf "strategies: %s [%s]" name (E.strategy_name s))
            ~iters:1 ~ns_per_op:(ms *. 1e6)
            ~metrics:
              [ ("perennial_refinement_executions_total", st.R.executions);
                ("perennial_refinement_steps_total", st.R.steps);
                ("perennial_explore_commutations_pruned_total", st.R.commutations_pruned);
                ("perennial_explore_crash_skips_total", st.R.crash_skips);
                ("perennial_explore_sleep_skips_total", st.R.sleep_skips) ];
          if verdict r <> naive_v then begin
            Fmt.pr "    VERDICT MISMATCH: %s says %s, naive says %s@."
              (E.strategy_name s) (verdict r) naive_v;
            ok := false
          end;
          if st.R.executions > naive_st.R.executions then begin
            Fmt.pr "    PRUNING REGRESSION: %s explored %d > naive's %d@."
              (E.strategy_name s) st.R.executions naive_st.R.executions;
            ok := false
          end;
          if name = "kvs: put || get + crash" && s = E.Dpor then
            kvs_reduction :=
              float_of_int naive_st.R.executions /. float_of_int (max 1 st.R.executions))
        rows)
    instances;
  Fmt.pr "@.  shape checks:@.";
  Fmt.pr "    verdicts agree and reduced strategies never explore more: %b@." !ok;
  Fmt.pr "    kvs put||get reduction under dpor: %.1fx (required: >= 3x)@." !kvs_reduction;
  Shape.check "strategies" (!ok && !kvs_reduction >= 3.)

(* ------------------------------------------------------------------ *)
(* Fault injection: transient errors, torn writes, retry/degradation    *)
(* ------------------------------------------------------------------ *)

let faults () =
  section "Fault injection: transient I/O errors, torn writes, retry/degradation";
  let module RD = Systems.Replicated_disk in
  let module J = Journal.Txn_log in
  let module K = Journal.Kvs in
  Fmt.pr "  Fault-eligible steps branch into their declared I/O faults (read/@.";
  Fmt.pr "  write errors, torn multi-block writes, disk loss); the checker@.";
  Fmt.pr "  enumerates every fault schedule up to a budget alongside every@.";
  Fmt.pr "  crash point.  Retry and degradation paths must refine graceful-@.";
  Fmt.pr "  degradation spec arms: each op either takes effect atomically or@.";
  Fmt.pr "  returns EIO with the state untouched.@.";
  let contains s sub =
    let n = String.length sub in
    let rec go i = i + n <= String.length s && (String.sub s i n = sub || go (i + 1)) in
    n = 0 || go 0
  in
  let b = Disk.Block.of_string in
  let vx = V.str "x" in
  let ly = J.layout ~n_data:2 ~max_slots:2 in
  let p = K.params ~n_keys:2 () in
  let rd_cfg budget =
    RD.checker_config ~size:1 ~max_crashes:1 ~fault_budget:budget
      [ [ RD.write_ft_call 0 vx ]; [ RD.read_ft_call 0 ] ]
  in
  Fmt.pr "@.  State-space growth with the fault budget (rd write_ft || read_ft,@.";
  Fmt.pr "  1 crash):@.";
  Fmt.pr "    %-8s %12s %8s %10s %8s@." "budget" "executions" "faults" "schedules" "retries";
  let growth =
    List.map
      (fun budget ->
        match R.check (rd_cfg budget) with
        | R.Refinement_holds st ->
          Fmt.pr "    %-8d %12d %8d %10d %8d@." budget st.R.executions st.R.faults_injected
            st.R.fault_schedules st.R.retries_observed;
          Some st
        | R.Refinement_violated _ | R.Budget_exhausted _ ->
          Fmt.pr "    %-8d UNEXPECTED verdict@." budget;
          None)
      [ 0; 1; 2 ]
  in
  let growth_ok =
    match growth with
    | [ Some s0; Some s1; Some s2 ] ->
      s0.R.faults_injected = 0 && s1.R.faults_injected > 0
      && s0.R.executions < s1.R.executions
      && s1.R.executions < s2.R.executions
      && s2.R.retries_observed > 0
    | _ -> false
  in
  Fmt.pr "@.  Exhaustive verification at fault budget 2 (faults x crashes x@.";
  Fmt.pr "  interleavings):@.";
  let held =
    List.map
      (fun check -> check ())
      [
        (fun () ->
          run_refinement "journal: commit_ft || read_ft, 1 crash"
            (J.checker_config ly ~max_crashes:1 ~fault_budget:2
               [ [ J.commit_ft_call ly [ (0, b "A"); (1, b "B") ] ]; [ J.read_ft_call ly 0 ] ]));
        (fun () ->
          run_refinement "kvs: put_ft; get_ft, 1 crash"
            (K.checker_config p ~max_crashes:1 ~fault_budget:2
               [ [ K.put_ft_call p 0 (V.str "A"); K.get_ft_call p 0 ] ]));
      ]
  in
  Fmt.pr "@.  Seeded fault-handling bugs (must be caught, with the injected@.";
  Fmt.pr "  fault visible in the counterexample lanes):@.";
  let expect_fault_violation name cfg =
    match R.check cfg with
    | R.Refinement_violated (f, _) ->
      let lanes = Fmt.str "%a" R.pp_failure_lanes f in
      let has_fault = contains lanes "FAULT" in
      Fmt.pr "    %-44s CAUGHT%s: %s@." name
        (if has_fault then "" else " (no FAULT in lanes!)")
        (String.sub f.R.reason 0 (min 60 (String.length f.R.reason)));
      has_fault
    | R.Refinement_holds _ ->
      Fmt.pr "    %-44s MISSED@." name;
      false
    | R.Budget_exhausted _ ->
      Fmt.pr "    %-44s BUDGET@." name;
      false
  in
  let caught =
    List.map
      (fun check -> check ())
      [
        (fun () ->
          expect_fault_violation "rd: retry without re-read"
            (RD.checker_config ~may_fail:false ~size:1 ~max_crashes:0 ~fault_budget:1
               [ [ RD.write_call 0 vx; RD.Buggy.read_ft_call_no_retry 0 ] ]));
        (fun () ->
          expect_fault_violation "journal: torn log write treated as committed"
            (J.checker_config ly ~max_crashes:1 ~fault_budget:1
               [ [ J.Buggy.commit_ft_call_ignore_torn ly [ (0, b "A"); (1, b "B") ] ] ]));
        (fun () ->
          expect_fault_violation "kvs: write error swallowed mid-apply"
            (K.checker_config p ~max_crashes:0 ~fault_budget:1
               [ [ K.Buggy.put_ft_call_swallow_apply p 0 (V.str "A"); K.get_call p 0 ] ]));
      ]
  in
  Fmt.pr "@.  shape checks:@.";
  Fmt.pr "    fault branches grow the state space monotonically: %b@." growth_ok;
  Fmt.pr "    retry/degradation paths verified at budget 2: %b@."
    (List.for_all Fun.id held);
  Fmt.pr "    all seeded fault bugs caught with FAULT in lanes: %b@."
    (List.for_all Fun.id caught);
  Shape.check "faults" (growth_ok && List.for_all Fun.id held && List.for_all Fun.id caught)

(* ------------------------------------------------------------------ *)
(* Extension: inode file system on the journal + spool re-host          *)
(* ------------------------------------------------------------------ *)

let fs () =
  section "Extension: inode file system on the journal (FSCQ/DaisyNFS rung)";
  let module L = Perennial_fs.Layout in
  let module Fs = Perennial_fs.Fs in
  let module Sp = Perennial_fs.Spool in
  Fmt.pr "  Bitmap allocator, inode table and directories over Txn_log@.";
  Fmt.pr "  transactions, checked against the atomic Gfs.Fs spec; Mailboat's@.";
  Fmt.pr "  spool re-hosted on it with rename as the atomic publish.  Lines@.";
  Fmt.pr "  of code:@.@.";
  List.iter
    (fun (name, files) -> Fmt.pr "    %-40s %6d@." name (Loc.count_files files))
    [
      ("file system + spool (lib/fs)",
       [ "lib/fs/layout.ml"; "lib/fs/bitmap.ml"; "lib/fs/inode.ml"; "lib/fs/dirent.ml";
         "lib/fs/fs.ml"; "lib/fs/spool.ml" ]);
      ("tests (test/test_fs.ml)", [ "test/test_fs.ml" ]);
    ];
  let p = Fs.params (L.v ~n_inodes:4 ~n_blocks:5 ()) in
  let ft_cfg budget =
    Fs.checker_config p ~dirs:[ "a" ]
      ~files:[ ("a", "f", "x") ]
      ~post:(Fs.probe p ~dirs:[ "a" ] ~files:[ ("a", "f"); ("a", "g") ])
      ~max_crashes:1 ~fault_budget:budget
      [ [ Fs.create_ft_call p "a" "g"; Fs.append_ft_call p "a" "f" "y" ] ]
  in
  Fmt.pr "@.  State-space growth with the fault budget (create_ft; append_ft,@.";
  Fmt.pr "  1 crash):@.";
  Fmt.pr "    %-8s %12s %8s %10s %8s@." "budget" "executions" "faults" "schedules" "retries";
  let growth =
    List.map
      (fun budget ->
        match R.check (ft_cfg budget) with
        | R.Refinement_holds st ->
          Fmt.pr "    %-8d %12d %8d %10d %8d@." budget st.R.executions st.R.faults_injected
            st.R.fault_schedules st.R.retries_observed;
          Some st
        | R.Refinement_violated _ | R.Budget_exhausted _ ->
          Fmt.pr "    %-8d UNEXPECTED verdict@." budget;
          None)
      [ 0; 1; 2 ]
  in
  let growth_ok =
    match growth with
    | [ Some s0; Some s1; Some s2 ] ->
      s0.R.faults_injected = 0 && s1.R.faults_injected > 0
      && s0.R.executions < s1.R.executions
      && s1.R.executions < s2.R.executions
      && s2.R.retries_observed > 0
    | _ -> false
  in
  let p2 = Fs.params (L.v ~n_inodes:5 ~n_blocks:6 ()) in
  let sp = Sp.params ~users:1 () in
  Fmt.pr "@.  Exhaustive verification (interleavings x crash points):@.";
  let held =
    [
      run_refinement "fs: create || append, 1 crash"
        (Fs.checker_config p ~dirs:[ "a" ]
           ~files:[ ("a", "f", "xy") ]
           ~max_crashes:1
           [ [ Fs.create_call p "a" "g" ]; [ Fs.append_call p "a" "f" "z" ] ]);
      run_refinement "fs: rename || read, 1 crash"
        (Fs.checker_config p2 ~dirs:[ "a"; "b" ]
           ~files:[ ("a", "s", "xy"); ("b", "t", "uv") ]
           ~max_crashes:1
           [ [ Fs.rename_call p2 ~src:("a", "s") ~dst:("b", "t") ];
             [ Fs.read_call p2 "b" "t" ] ]);
      run_refinement "fs: append, 2 crashes (during recovery)"
        (Fs.checker_config p ~dirs:[ "a" ]
           ~files:[ ("a", "f", "x") ]
           ~max_crashes:2
           [ [ Fs.append_call p "a" "f" "y" ] ]);
      run_refinement "spool-on-fs: deliver, 1 crash"
        (Sp.checker_config sp ~users:1 ~max_crashes:1 [ [ Sp.deliver_call sp 0 "ab" ] ]);
    ]
  in
  Fmt.pr "@.  Seeded crash-safety bugs (must be rejected):@.";
  let expect_violation name cfg =
    match R.check cfg with
    | R.Refinement_violated (f, _) ->
      Fmt.pr "    %-44s CAUGHT: %s@." name
        (String.sub f.R.reason 0 (min 60 (String.length f.R.reason)));
      true
    | R.Refinement_holds _ ->
      Fmt.pr "    %-44s MISSED@." name;
      false
    | R.Budget_exhausted _ ->
      Fmt.pr "    %-44s BUDGET@." name;
      false
  in
  let pb = Fs.params (L.v ~n_inodes:4 ~n_blocks:4 ()) in
  let spd = Sp.params ~durability:`Deferred ~users:1 () in
  let caught =
    [
      expect_violation "fs: allocator double-free across crash"
        (Fs.checker_config pb ~dirs:[ "a" ]
           ~files:[ ("a", "f", "xy") ]
           ~post:
             [ Fs.readdir_call pb "a"; Fs.create_call pb "a" "g";
               Fs.append_call pb "a" "g" "zz"; Fs.read_call pb "a" "f";
               Fs.read_call pb "a" "g" ]
           ~max_crashes:1
           [ [ Fs.Buggy.unlink_call_free_first pb "a" "f" ] ]);
      expect_violation "fs: rename as two transactions"
        (Fs.checker_config p2 ~dirs:[ "a"; "b" ]
           ~files:[ ("a", "s", "xy"); ("b", "t", "uv") ]
           ~max_crashes:1
           [ [ Fs.Buggy.rename_call_two_txns p2 ~src:("a", "s") ~dst:("b", "t") ] ]);
      expect_violation "spool: missing fsync before dir commit"
        (Sp.checker_config spd ~users:1 ~max_crashes:1
           [ [ Sp.deliver_nofsync_call spd 0 "ab" ] ]);
    ]
  in
  Fmt.pr "@.  shape checks:@.";
  Fmt.pr "    fault branches grow the state space monotonically: %b@." growth_ok;
  Fmt.pr "    fs + spool refinement verified: %b@." (List.for_all Fun.id held);
  Fmt.pr "    all seeded fs bugs caught: %b@." (List.for_all Fun.id caught);
  Shape.check "fs" (growth_ok && List.for_all Fun.id held && List.for_all Fun.id caught)

(* ------------------------------------------------------------------ *)
(* Extension: circular WAL — group commit and log absorption            *)
(* ------------------------------------------------------------------ *)

let wal () =
  section "Extension: circular WAL under the journal (group commit + absorption)";
  let module W = Perennial_wal.Wal in
  let module P = Sched.Prog in
  Fmt.pr "  The journal's log region driven as a circular ring: a background@.";
  Fmt.pr "  logger drains buffered multiwrites with group commit (one header@.";
  Fmt.pr "  install covers the whole batch) and log absorption (writes to the@.";
  Fmt.pr "  same address collapse before logging).  Lines of code:@.@.";
  List.iter
    (fun (name, files) -> Fmt.pr "    %-40s %6d@." name (Loc.count_files files))
    [
      ("circular log + wal (lib/wal)",
       [ "lib/wal/circ.ml"; "lib/wal/circ.mli"; "lib/wal/wal.ml"; "lib/wal/wal.mli" ]);
      ("tests (test/test_wal.ml)", [ "test/test_wal.ml" ]);
    ];
  let b = Disk.Block.of_string in
  Fmt.pr "@.  Exhaustive verification (interleavings x crash points):@.";
  let wp = W.params ~n_data:1 ~cap:2 () in
  let held =
    [
      run_refinement "wal: mwrite || logger, 1 crash"
        (W.checker_config wp ~max_crashes:1
           [ [ W.mwrite_call wp [ (0, b "A") ] ]; [ W.logger_call wp ] ]);
      run_refinement "wal: mwrite; flush || installer, 1 crash"
        (W.checker_config wp ~max_crashes:1
           [ [ W.mwrite_call wp [ (0, b "A") ]; W.flush_call wp 1 ];
             [ W.installer_call wp ] ]);
    ]
  in
  (* Group-commit batch-size sweep: buffer k multiwrites, then one logger
     tick.  The trace tells us how many header installs the drain needed
     (group commit: one per batch) and the refinement checker how many
     executions the same batched workload costs exhaustively. *)
  Fmt.pr "@.  Group-commit batch sweep (k txns buffered, then one logger tick;@.";
  Fmt.pr "  2 hot addresses, ring cap 16):@.";
  Fmt.pr "    %-8s %8s %12s %14s %12s %10s@." "batch" "header" "txns/header"
    "records(raw)" "(absorbed)" "execs";
  let p = W.params ~n_data:2 ~cap:16 () in
  let p_raw = W.params ~absorb:false ~n_data:2 ~cap:16 () in
  let hdr_label = Printf.sprintf "disk_write_f(%d)" p.W.n_data in
  let sweep_ok = ref true in
  let prev_ratio = ref 0. in
  List.iter
    (fun k ->
      let txns = List.init k (fun i -> [ (i mod 2, b (string_of_int i)) ]) in
      let prog =
        List.fold_left
          (fun acc t -> P.Syntax.( let* ) acc (fun _ -> W.mwrite_prog p t))
          (P.return V.unit) txns
      in
      let prog = P.Syntax.( let* ) prog (fun _ -> W.logger_tick_prog p) in
      let outcome = Sched.Runner.run (W.init_world p) [ prog ] in
      let headers =
        List.length (List.filter (fun (_, l) -> l = hdr_label) outcome.Sched.Runner.trace)
      in
      let raw = List.length (W.batch_records p_raw txns) in
      let absorbed = List.length (W.batch_records p txns) in
      let t0 = Unix.gettimeofday () in
      let execs =
        let calls = List.map (fun t -> W.mwrite_call p t) txns @ [ W.flush_call p k ] in
        match R.check (W.checker_config p ~max_crashes:1 [ calls ]) with
        | R.Refinement_holds st -> st.R.executions
        | R.Refinement_violated _ | R.Budget_exhausted _ ->
          sweep_ok := false;
          0
      in
      let ms = (Unix.gettimeofday () -. t0) *. 1000. in
      let ratio = float_of_int k /. float_of_int (max 1 headers) in
      Fmt.pr "    %-8d %8d %12.1f %14d %12d %10d@." k headers ratio raw absorbed execs;
      Bench_out.add
        (Printf.sprintf "wal: group commit [batch=%d]" k)
        ~iters:1 ~ns_per_op:(ms *. 1e6)
        ~metrics:
          [ ("perennial_wal_batch_txns", k);
            ("perennial_wal_header_writes", headers);
            ("perennial_wal_logged_records_raw", raw);
            ("perennial_wal_logged_records_absorbed", absorbed);
            ("perennial_refinement_executions_total", execs) ];
      if headers <> 1 then sweep_ok := false;
      if ratio < !prev_ratio then sweep_ok := false;
      prev_ratio := ratio;
      (* with 2 hot addresses, any batch beyond 2 has duplicates to absorb *)
      if k > 2 && absorbed >= raw then sweep_ok := false;
      if absorbed > 2 then sweep_ok := false)
    [ 1; 2; 4; 8 ];
  Fmt.pr "@.  shape checks:@.";
  Fmt.pr "    wal refinement verified: %b@." (List.for_all Fun.id held);
  Fmt.pr "    one header install per drained batch, absorption collapses@.";
  Fmt.pr "      duplicate addresses (records <= 2 hot addrs): %b@." !sweep_ok;
  Shape.check "wal" (List.for_all Fun.id held && !sweep_ok)

(* ------------------------------------------------------------------ *)
(* Extension: network adversary + exactly-once RPC (sharded KV)         *)
(* ------------------------------------------------------------------ *)

let net () =
  section "Extension: network adversary + exactly-once RPC (sharded KV)";
  let module SK = Dist.Shard_kv in
  let module E = Perennial_core.Explore in
  Fmt.pr "  Messages travel over modeled channels; the adversary enumerates@.";
  Fmt.pr "  loss, duplication, reordering and bounded delay as schedule@.";
  Fmt.pr "  dimensions, composed with crash points and interleavings.  The@.";
  Fmt.pr "  RPC layer (per-client seq numbers + reply cache) must make every@.";
  Fmt.pr "  op exactly-once; leases fence zombies by epoch.  Lines of code:@.@.";
  List.iter
    (fun (name, files) -> Fmt.pr "    %-40s %6d@." name (Loc.count_files files))
    [
      ("network model (lib/sched/net)", [ "lib/sched/net.ml"; "lib/sched/net.mli" ]);
      ("rpc + lease + sharded kv (lib/dist)",
       [ "lib/dist/rpc.ml"; "lib/dist/lease.ml"; "lib/dist/shard_kv.ml" ]);
      ("tests (test/test_net.ml)", [ "test/test_net.ml" ]);
    ];
  let contains s sub =
    let n = String.length sub in
    let rec go i = i + n <= String.length s && (String.sub s i n = sub || go (i + 1)) in
    n = 0 || go 0
  in
  (* Adversary-budget sweep on the exactly-once inc instance (1 client with
     retry/timeout/backoff, 1 server; crashes off so the network dimension
     is isolated).  Each budget step admits one more adversarial event per
     execution; the client's retries and the server's reply-cache hits are
     the mechanism that keeps the op exactly-once through all of them. *)
  Fmt.pr "@.  Adversary-budget sweep (exactly-once inc, client || server,@.";
  Fmt.pr "  dpor+sleep):@.";
  Fmt.pr "    %-8s %10s %12s %8s %10s %10s@." "budget" "schedules" "executions"
    "retries" "cache-hits" "hits/exec";
  let p = SK.params ~n_keys:1 ~n_clients:1 () in
  let sweep_cfg budget =
    SK.checker_config p ~max_crashes:0 ~fault_budget:budget
      [ [ SK.ninc_call p ~client:0 ~seq:0 0; SK.bye_call ]; [ SK.srv_call p 0 ] ]
  in
  let growth =
    List.map
      (fun budget ->
        let t0 = Unix.gettimeofday () in
        let r = R.check ~strategy:E.Dpor_sleep (sweep_cfg budget) in
        let ms = (Unix.gettimeofday () -. t0) *. 1000. in
        match r with
        | R.Refinement_holds st ->
          let rate = float_of_int st.R.cache_hits /. float_of_int (max 1 st.R.executions) in
          Fmt.pr "    %-8d %10d %12d %8d %10d %10.2f@." budget st.R.fault_schedules
            st.R.executions st.R.retries_observed st.R.cache_hits rate;
          Bench_out.add
            (Printf.sprintf "net: adversary sweep [budget=%d]" budget)
            ~iters:1 ~ns_per_op:(ms *. 1e6)
            ~metrics:
              [ ("perennial_net_budget", budget);
                ("perennial_net_schedules", st.R.fault_schedules);
                ("perennial_refinement_executions_total", st.R.executions);
                ("perennial_net_retries_total", st.R.retries_observed);
                ("perennial_net_cache_hits_total", st.R.cache_hits) ];
          Some st
        | R.Refinement_violated _ | R.Budget_exhausted _ ->
          Fmt.pr "    %-8d UNEXPECTED verdict@." budget;
          None)
      [ 0; 1; 2 ]
  in
  let growth_ok =
    match growth with
    | [ Some s0; Some s1; Some s2 ] ->
      s0.R.faults_injected = 0
      && s1.R.faults_injected > 0
      && s0.R.executions < s1.R.executions
      && s1.R.executions < s2.R.executions
      && s1.R.fault_schedules < s2.R.fault_schedules
      && s1.R.retries_observed > 0
      && s1.R.cache_hits > 0
    | _ -> false
  in
  Fmt.pr "@.  Exhaustive verification (network x crash x interleavings,@.";
  Fmt.pr "  dpor+sleep):@.";
  let run_net_refinement name cfg =
    match R.check ~strategy:E.Dpor_sleep cfg with
    | R.Refinement_holds stats ->
      Fmt.pr "    %-40s VERIFIED  %a@." name R.pp_stats stats;
      true
    | R.Refinement_violated (f, _) ->
      Fmt.pr "    %-40s VIOLATED  %s@." name f.R.reason;
      false
    | R.Budget_exhausted stats ->
      Fmt.pr "    %-40s BUDGET    %a@." name R.pp_stats stats;
      false
  in
  let held =
    List.map
      (fun check -> check ())
      [
        (fun () ->
          run_net_refinement "exactly-once inc, 1 crash, 1 net event"
            (SK.checker_config p ~max_crashes:1 ~fault_budget:1
               [ [ SK.ninc_call p ~client:0 ~seq:0 0; SK.bye_call ]; [ SK.srv_call p 0 ] ]));
        (fun () ->
          let pl = SK.params ~n_keys:1 ~n_clients:2 () in
          run_net_refinement "lease: 2 holders + expiry, 1 crash"
            (SK.checker_config pl ~max_crashes:1 ~fault_budget:0
               [ [ SK.linc_call pl ~client:0 0 ];
                 [ SK.linc_call pl ~client:1 0 ];
                 [ SK.expire_call ] ]));
      ]
  in
  Fmt.pr "@.  Seeded network bugs (must be caught; the adversarial event@.";
  Fmt.pr "  shows up as a FAULT line in the counterexample lanes):@.";
  let expect_net_violation ?(want_fault = true) name cfg =
    match R.check ~strategy:E.Dpor_sleep cfg with
    | R.Refinement_violated (f, _) ->
      let lanes = Fmt.str "%a" R.pp_failure_lanes f in
      let ok = (not want_fault) || contains lanes "FAULT" in
      Fmt.pr "    %-44s CAUGHT%s: %s@." name
        (if ok then "" else " (no FAULT in lanes!)")
        (String.sub f.R.reason 0 (min 60 (String.length f.R.reason)));
      ok
    | R.Refinement_holds _ ->
      Fmt.pr "    %-44s MISSED@." name;
      false
    | R.Budget_exhausted _ ->
      Fmt.pr "    %-44s BUDGET@." name;
      false
  in
  let caught =
    List.map
      (fun check -> check ())
      [
        (fun () ->
          let pb = SK.params ~n_keys:1 ~n_clients:1 ~retries:0 () in
          expect_net_violation "server without reply cache (duplicate)"
            (SK.checker_config pb ~max_crashes:0 ~fault_budget:1
               [ [ SK.Buggy.srv_call_no_cache pb 0 ];
                 [ SK.ninc_call pb ~client:0 ~seq:0 0; SK.bye_call ] ]));
        (fun () ->
          let pr = SK.params ~n_keys:1 ~n_clients:1 ~retries:1 () in
          let p0 = SK.params ~n_keys:1 ~n_clients:1 ~retries:0 () in
          expect_net_violation "raw retry without seq number"
            (SK.checker_config pr ~max_crashes:0 ~fault_budget:1
               [ [ SK.srv_call pr 0 ];
                 [ SK.Buggy.nput_call_raw_retry pr ~client:0 ~seq:0 0 (V.str "A");
                   SK.nput_call p0 ~client:0 ~seq:1 0 (V.str "B");
                   SK.bye_call ] ]));
        (* the zombie needs no adversarial event — expiry placement alone
           exposes the missing fence, so no FAULT line is expected *)
        (fun () ->
          let pl = SK.params ~n_keys:1 ~n_clients:2 () in
          expect_net_violation ~want_fault:false "lease write without epoch fence"
            (SK.checker_config pl ~max_crashes:0 ~fault_budget:0
               [ [ SK.Buggy.linc_call_no_fence pl ~client:0 0 ];
                 [ SK.Buggy.linc_call_no_fence pl ~client:1 0 ];
                 [ SK.expire_call ] ]));
      ]
  in
  Fmt.pr "@.  shape checks:@.";
  Fmt.pr "    adversary budget grows the state space monotonically: %b@." growth_ok;
  Fmt.pr "    exactly-once + lease fencing verified under the adversary: %b@."
    (List.for_all Fun.id held);
  Fmt.pr "    all seeded network bugs caught: %b@." (List.for_all Fun.id caught);
  Shape.check "net" (growth_ok && List.for_all Fun.id held && List.for_all Fun.id caught)

(* ------------------------------------------------------------------ *)
(* Parallel exploration: domain sweep + fingerprint pruning             *)
(* ------------------------------------------------------------------ *)

let parallel () =
  section "Parallel exploration: multicore DFS, fingerprinting, symmetry";
  let module E = Perennial_core.Explore in
  let module J = Journal.Txn_log in
  let module K = Journal.Kvs in
  let module FL = Perennial_fs.Layout in
  let module Fs = Perennial_fs.Fs in
  let module RD = Systems.Replicated_disk in
  let host_cores = Domain.recommended_domain_count () in
  Fmt.pr "  host cores (recommended domain count): %d@." host_cores;
  Fmt.pr "  The work partition is a fixed function of split_depth, never of@.";
  Fmt.pr "  the domain count: verdicts and execution counts must be identical@.";
  Fmt.pr "  across the sweep — wall time is the only thing allowed to move.@.@.";
  let b = Disk.Block.of_string in
  let ly = J.layout ~n_data:2 ~max_slots:2 in
  let p = K.params ~n_keys:2 () in
  let fsp = Fs.params (FL.v ~n_inodes:4 ~n_blocks:5 ()) in
  let vx = V.str "x" in
  let verdict = function
    | R.Refinement_holds _ -> "holds"
    | R.Refinement_violated _ -> "violated"
    | R.Budget_exhausted _ -> "budget"
  in
  let stats_of = function
    | R.Refinement_holds st | R.Refinement_violated (_, st) | R.Budget_exhausted st -> st
  in
  let instances : (string * (domains:int -> R.result)) list =
    [
      ( "kvs put||get [naive]",
        fun ~domains ->
          R.check ~domains
            (K.checker_config p ~max_crashes:1
               [ [ K.put_call p 0 vx ]; [ K.get_call p 1 ] ]) );
      ( "kvs txn + crash in recovery [dpor+sleep]",
        fun ~domains ->
          R.check ~strategy:E.Dpor_sleep ~domains
            (K.checker_config p ~max_crashes:2
               [ [ K.txn_call p [ (0, b "A"); (1, b "B") ] ] ]) );
      ( "journal commit||read + 1 fault [dpor+sleep]",
        fun ~domains ->
          R.check ~strategy:E.Dpor_sleep ~domains ~faults:1
            (J.checker_config ly ~max_crashes:1
               [ [ J.commit_call ly [ (0, b "A"); (1, b "B") ] ];
                 [ J.read_call ly 0 ] ]) );
      ( "fs create||append [naive]",
        fun ~domains ->
          R.check ~domains
            (Fs.checker_config fsp ~dirs:[ "a" ]
               ~files:[ ("a", "f", "xy") ]
               ~post:(Fs.probe fsp ~dirs:[ "a" ] ~files:[ ("a", "f"); ("a", "g") ])
               ~max_crashes:1
               [ [ Fs.create_call fsp "a" "g" ]; [ Fs.append_call fsp "a" "f" "z" ] ])
      );
    ]
  in
  let sweep = [ 1; 2; 4; 8 ] in
  Fmt.pr "  %-44s %8s %8s %10s %8s@." "instance" "domains" "execs" "steps" "time";
  let deterministic = ref true in
  List.iter
    (fun (name, run) ->
      let rows =
        List.map
          (fun n ->
            let t0 = Unix.gettimeofday () in
            let r = run ~domains:n in
            let ms = (Unix.gettimeofday () -. t0) *. 1000. in
            (n, r, ms))
          sweep
      in
      let _, base, _ = List.hd rows in
      List.iter
        (fun (n, r, ms) ->
          let st = stats_of r in
          Fmt.pr "  %-44s %8d %8d %10d %6.1fms@."
            (if n = 1 then name else "")
            n st.R.executions st.R.steps ms;
          Bench_out.add
            (Printf.sprintf "parallel: %s [domains=%d]" name n)
            ~iters:1 ~ns_per_op:(ms *. 1e6)
            ~metrics:
              [ ("perennial_host_cores", host_cores);
                ("perennial_refinement_domains", n);
                ("perennial_refinement_executions_total", st.R.executions);
                ("perennial_refinement_steps_total", st.R.steps) ];
          if verdict r <> verdict base || stats_of base <> st then begin
            Fmt.pr "    DETERMINISM VIOLATION: domains=%d diverged from domains=1@." n;
            deterministic := false
          end)
        rows)
    instances;
  (* fingerprint pruning: same verdict, strictly fewer executions *)
  Fmt.pr "@.  fingerprint pruning (naive strategy, kvs put||get):@.";
  let fp_cfg =
    K.checker_config p ~max_crashes:1 [ [ K.put_call p 0 vx ]; [ K.get_call p 1 ] ]
  in
  let plain = R.check fp_cfg in
  let fp = R.check ~fingerprint:true fp_cfg in
  let fp_st = stats_of fp in
  Fmt.pr "    plain: %d executions; fingerprinted: %d (%d hits, %d misses)@."
    (stats_of plain).R.executions fp_st.R.executions fp_st.R.fingerprint_hits
    fp_st.R.fingerprint_misses;
  Bench_out.add "parallel: kvs put||get [fingerprint]" ~iters:1 ~ns_per_op:0.
    ~metrics:
      [ ("perennial_refinement_executions_total", fp_st.R.executions);
        ("perennial_fingerprint_hits_total", fp_st.R.fingerprint_hits);
        ("perennial_fingerprint_misses_total", fp_st.R.fingerprint_misses) ];
  (* symmetry: two interchangeable writers collapse further *)
  let sym_cfg =
    RD.checker_config ~may_fail:false ~max_crashes:1 ~size:1
      [ [ RD.write_call 0 vx ]; [ RD.write_call 0 vx ] ]
  in
  let sym_fp = stats_of (R.check ~fingerprint:true sym_cfg) in
  let sym = stats_of (R.check ~fingerprint:true ~symmetry:true sym_cfg) in
  Fmt.pr "  symmetry (rd, two identical writers):@.";
  Fmt.pr "    fingerprint misses %d -> with symmetry %d@." sym_fp.R.fingerprint_misses
    sym.R.fingerprint_misses;
  let fp_prunes =
    fp_st.R.fingerprint_hits > 0
    && fp_st.R.executions < (stats_of plain).R.executions
    && verdict fp = verdict plain
  in
  let sym_ok = sym.R.fingerprint_misses <= sym_fp.R.fingerprint_misses in
  Fmt.pr "@.  shape checks:@.";
  Fmt.pr "    stats identical across the domain sweep: %b@." !deterministic;
  Fmt.pr "    fingerprinting prunes without changing the verdict: %b@." fp_prunes;
  Fmt.pr "    symmetry never explores more classes than plain fingerprints: %b@." sym_ok;
  Shape.check "parallel" (!deterministic && fp_prunes && sym_ok)

(* ------------------------------------------------------------------ *)
(* Micro-benchmarks (Bechamel)                                          *)
(* ------------------------------------------------------------------ *)

let micro () =
  section "Micro-benchmarks (Bechamel; supports the cost-model calibration)";
  let open Bechamel in
  let open Toolkit in
  let tmpfs_test =
    let fs = Gfs.Tmpfs.init [ "d" ] in
    let counter = ref 0 in
    Test.make ~name:"tmpfs create+append+close"
      (Staged.stage (fun () ->
           incr counter;
           let name = "f" ^ string_of_int !counter in
           match Gfs.Tmpfs.create fs "d" name with
           | Some fd ->
             ignore (Gfs.Tmpfs.append fs fd "payload");
             ignore (Gfs.Tmpfs.close fs fd)
           | None -> ()))
  in
  let server = Mailboat.Server.create ~kind:Mailboat.Server.Mailboat_server ~users:100 () in
  let deliver_test =
    Test.make ~name:"mailboat deliver (1 KB)"
      (Staged.stage (fun () ->
           ignore (Mailboat.Server.deliver server ~user:3 Mailboat.Workload.message_body)))
  in
  let pickup_test =
    Test.make ~name:"mailboat pickup session"
      (Staged.stage (fun () ->
           let msgs = Mailboat.Server.pickup server ~user:4 in
           List.iter (fun (id, _) -> Mailboat.Server.delete server ~user:4 id) msgs;
           Mailboat.Server.unlock server ~user:4))
  in
  let rd_check_test =
    Test.make ~name:"refinement check: rd writer+crash"
      (Staged.stage (fun () ->
           ignore
             (R.check
                (Systems.Replicated_disk.checker_config ~may_fail:false ~max_crashes:1
                   ~size:1
                   [ [ Systems.Replicated_disk.write_call 0 (V.str "x") ] ]))))
  in
  let outline_test =
    Test.make ~name:"outline check: rd_write proof"
      (Staged.stage (fun () ->
           ignore (O.check_op (Systems.Rd_proof.system 1) (Systems.Rd_proof.write_outline 0))))
  in
  let goose_parse_test =
    Test.make ~name:"goose: parse+typecheck mailboat.go"
      (Staged.stage (fun () ->
           let f = Goose.Parser.parse_file Mailboat.Goose_src.source in
           Goose.Typecheck.check_file f))
  in
  let goose_run_test =
    let file = Goose.Parser.parse_file Mailboat.Goose_src.source in
    let it = Goose.Interp.make file in
    let w = Goose.Interp.init_world ~dirs:[ "spool"; "user0" ] () in
    let counter = ref 0 in
    Test.make ~name:"goose: interpret Deliver"
      (Staged.stage (fun () ->
           incr counter;
           ignore
             (Sched.Runner.run ~policy:(Sched.Runner.Random !counter) w
                [ Goose.Interp.run_func_value it "Deliver"
                    [ Goose.Gvalue.VInt 0; Goose.Gvalue.VString "hello" ] ])))
  in
  let tests =
    [ tmpfs_test; deliver_test; pickup_test; rd_check_test; outline_test; goose_parse_test;
      goose_run_test ]
  in
  List.iter
    (fun test ->
      let instances = Instance.[ monotonic_clock ] in
      let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) ~kde:(Some 1000) () in
      let raw = Benchmark.all cfg instances test in
      let ols = Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |] in
      let results = Analyze.all ols Instance.monotonic_clock raw in
      Hashtbl.iter
        (fun name result ->
          match Analyze.OLS.estimates result with
          | Some [ est ] ->
            Fmt.pr "  %-40s %12.1f ns/run@." name est;
            Bench_out.add ("micro: " ^ name) ~iters:1 ~ns_per_op:est ~metrics:[]
          | Some _ | None -> Fmt.pr "  %-40s (no estimate)@." name)
        results)
    tests

(* ------------------------------------------------------------------ *)
(* Driver                                                               *)
(* ------------------------------------------------------------------ *)

let all =
  [ ("table1", table1); ("table2", table2); ("table3", table3); ("table4", table4);
    ("fig11", fig11); ("patterns", patterns); ("bugs", bugs); ("scaling", scaling);
    ("durability", durability); ("kvs", kvs); ("strategies", strategies);
    ("faults", faults); ("fs", fs); ("wal", wal); ("net", net); ("parallel", parallel);
    ("micro", micro) ]

let slow_sections = [ "fig11"; "micro" ]

let () =
  let args = List.tl (Array.to_list Sys.argv) in
  let args = List.filter (fun a -> a <> "--") args in
  let quick = List.mem "--quick" args in
  let json_flag = List.mem "--json" args in
  let json_file =
    match List.find_opt (fun a -> Filename.check_suffix a ".json") args with
    | Some f -> Some f
    | None -> if json_flag then Some "BENCH_results.json" else None
  in
  let args =
    List.filter
      (fun a -> a <> "--quick" && a <> "--json" && not (Filename.check_suffix a ".json"))
      args
  in
  let chosen =
    if args <> [] then args
    else if quick then
      List.filter (fun n -> not (List.mem n slow_sections)) (List.map fst all)
    else List.map fst all
  in
  List.iter
    (fun name ->
      match List.assoc_opt name all with
      | Some f ->
        if json_file = None then f ()
        else begin
          let before = Obs.Metrics.snapshot () in
          let t0 = Obs.Trace.now_us () in
          f ();
          let dt_ns = (Obs.Trace.now_us () -. t0) *. 1e3 in
          Bench_out.add name ~iters:1 ~ns_per_op:dt_ns
            ~metrics:(Obs.Metrics.counters_delta ~before ~after:(Obs.Metrics.snapshot ()))
        end
      | None -> Fmt.epr "unknown section %s@." name)
    chosen;
  Option.iter Bench_out.write json_file;
  Shape.report ()
