(* Write-ahead logging and recovery helping (§9.1, §5.4).

   The demo walks the WAL through its protocol states, crashes it between
   commit and apply, and shows recovery completing the transaction on the
   crashed writer's behalf — then shows the outline checker insisting on
   exactly that helping step.

   Run with: dune exec examples/wal_crash_demo.exe *)

module V = Tslang.Value
module W = Systems.Wal
module O = Perennial_core.Outline
module R = Perennial_core.Refinement

let show_disk w =
  let d = W.get_disk w in
  Fmt.pr "    data=(%a, %a)  flag=%a  log=(%a, %a)@."
    Disk.Block.pp (Disk.Single_disk.get d W.data0)
    Disk.Block.pp (Disk.Single_disk.get d W.data1)
    Disk.Block.pp (Disk.Single_disk.get d W.flag_addr)
    Disk.Block.pp (Disk.Single_disk.get d W.log0)
    Disk.Block.pp (Disk.Single_disk.get d W.log1)

(* Run a program for exactly [n] atomic steps, then return the world as it
   stood at the "crash". *)
let run_steps w prog n =
  let rec go w prog n =
    if n = 0 then w
    else
      match prog with
      | Sched.Prog.Mark (_, p) -> go w p n
      | Sched.Prog.Done _ -> w
      | Sched.Prog.Atomic { action; k; _ } -> (
        match action w with
        | Sched.Prog.Steps ((w', v) :: _) -> go w' (k v) (n - 1)
        | Sched.Prog.Steps [] | Sched.Prog.Ub _ -> w)
  in
  go w prog n

let () =
  Fmt.pr "== 1. A transaction, crashed between commit and apply ==@.";
  let w0 = W.init_world () in
  Fmt.pr "  initial state:@.";
  show_disk w0;
  (* log_write takes: lock, 2 log writes, flag := committed, 2 data writes,
     flag := empty, unlock.  Cut it down after the commit (step 4). *)
  let mid = run_steps w0 (W.write_prog (V.str "A") (V.str "B")) 4 in
  Fmt.pr "  crashed after the commit record, before the apply:@.";
  show_disk mid;
  let crashed = W.crash_world mid in
  let recovered, _ = Sched.Runner.run1 crashed W.recover_prog in
  Fmt.pr "  after recovery (the log was replayed — helping, §5.4):@.";
  show_disk recovered;

  Fmt.pr "@.== 2. Crash *before* the commit record ==@.";
  let early = run_steps w0 (W.write_prog (V.str "A") (V.str "B")) 3 in
  show_disk early;
  let recovered2, _ = Sched.Runner.run1 (W.crash_world early) W.recover_prog in
  Fmt.pr "  after recovery (nothing committed, nothing replayed):@.";
  show_disk recovered2;

  Fmt.pr "@.== 3. The outline checker demands the helping step ==@.";
  List.iter
    (fun (name, result) -> Fmt.pr "  %-16s %a@." name O.pp_result result)
    (Systems.Wal_proof.check ());

  Fmt.pr "@.== 4. And the refinement checker agrees on every schedule ==@.";
  (match
     R.check (W.checker_config ~max_crashes:2 [ [ W.write_call (V.str "A") (V.str "B") ] ])
   with
  | R.Refinement_holds stats -> Fmt.pr "  refinement holds: %a@." R.pp_stats stats
  | R.Refinement_violated (f, _) -> Fmt.pr "  UNEXPECTED: %a@." R.pp_failure f
  | R.Budget_exhausted _ -> Fmt.pr "  budget exhausted@.");

  Fmt.pr "@.== 5. A recovery that clears the flag first is rejected ==@.";
  match
    R.check
      (R.config ~spec:W.spec ~init_world:(W.init_world ()) ~crash_world:W.crash_world
         ~pp_world:W.pp_world
         ~threads:[ [ W.write_call (V.str "A") (V.str "B") ] ]
         ~recovery:W.Buggy.recover_clear_first ~post:[ W.read_call ] ~max_crashes:2 ())
  with
  | R.Refinement_violated (f, _) -> Fmt.pr "  caught: %s@." f.R.reason
  | R.Refinement_holds _ -> Fmt.pr "  UNEXPECTED: accepted@."
  | R.Budget_exhausted _ -> Fmt.pr "  budget exhausted@."
