(* The journaled transactional key-value store, end to end (the GoJournal
   rung on top of the paper's WAL pattern):

   1. durable puts and a multi-key transaction through the journal;
   2. a crash between the commit record and the apply — recovery replays
      the log and completes the transaction (helping, §5.4);
   3. the group-commit loss window: a buffered put acked, then lost;
   4. the outline checker accepting the proof and rejecting a broken one;
   5. the refinement checker confirming it all on every schedule.

   Run with: dune exec examples/kvs_demo.exe *)

module V = Tslang.Value
module K = Journal.Kvs
module J = Journal.Txn_log
module O = Perennial_core.Outline
module R = Perennial_core.Refinement
module Block = Disk.Block

let p = K.params ~n_keys:2 ()
let ly = K.layout p

let show_world w =
  let d = K.get_disk w in
  let blk a = Block.to_string (Disk.Single_disk.get d a) in
  Fmt.pr "    keys=(%s, %s)  record=%s  slots=[(%s,%s) (%s,%s)]  buffer=%d txn(s)@."
    (blk 0) (blk 1)
    (blk (J.rec_addr ly))
    (blk (J.slot_addr ly 0)) (blk (J.slot_val ly 0))
    (blk (J.slot_addr ly 1)) (blk (J.slot_val ly 1))
    (List.length w.K.buffer)

(* Run a program for exactly [n] atomic steps — the world at the crash. *)
let run_steps w prog n =
  let rec go w prog n =
    if n = 0 then w
    else
      match prog with
      | Sched.Prog.Mark (_, p) -> go w p n
      | Sched.Prog.Done _ -> w
      | Sched.Prog.Atomic { action; k; _ } -> (
        match action w with
        | Sched.Prog.Steps ((w', v) :: _) -> go w' (k v) (n - 1)
        | Sched.Prog.Steps [] | Sched.Prog.Ub _ -> w)
  in
  go w prog n

let () =
  Fmt.pr "== 1. Durable puts and a multi-key transaction ==@.";
  let w0 = K.init_world p in
  show_world w0;
  let w1, _ = Sched.Runner.run1 w0 (K.put_prog p 0 (V.str "A")) in
  Fmt.pr "  after put(0, A) — one journal transaction, applied and cleared:@.";
  show_world w1;
  let w2, _ = Sched.Runner.run1 w1 (K.txn_prog p [ (0, Block.of_string "X"); (1, Block.of_string "Y") ]) in
  Fmt.pr "  after txn {0=X, 1=Y} — both keys, atomically:@.";
  show_world w2;

  Fmt.pr "@.== 2. Crash between commit record and apply ==@.";
  (* txn_prog: 3 lock steps, buffer merge, 4 slot writes, record write =
     9 atomic steps.  Cut right after the commit record. *)
  let mid = run_steps w2 (K.txn_prog p [ (0, Block.of_string "P"); (1, Block.of_string "Q") ]) 9 in
  Fmt.pr "  crashed after the record write (committed, not applied):@.";
  show_world mid;
  let recovered, _ = Sched.Runner.run1 (K.crash_world mid) (K.recover p) in
  Fmt.pr "  after recovery — the log was replayed on the writer's behalf:@.";
  show_world recovered;

  Fmt.pr "@.== 3. The group-commit loss window ==@.";
  let w3, _ = Sched.Runner.run1 recovered (K.put_async_prog p 0 (V.str "Z")) in
  let _, v = Sched.Runner.run1 w3 (K.get_prog p 0) in
  Fmt.pr "  async put(0, Z) acked; get(0) sees it from the buffer: %s@."
    (Block.to_string (Block.of_value v));
  show_world w3;
  let w4 = K.crash_world w3 in
  let w5, _ = Sched.Runner.run1 w4 (K.recover p) in
  let _, v' = Sched.Runner.run1 w5 (K.get_prog p 0) in
  Fmt.pr "  after crash + recovery, get(0) = %s — the acked put is gone.@."
    (Block.to_string (Block.of_value v'));
  Fmt.pr "  (that loss is *in the spec*: crash drops the pending queue, like@.";
  Fmt.pr "   the paper's group-commit example — a lossless spec is refuted below)@.";

  Fmt.pr "@.== 4. The proof outlines (Theorem 2 premises) ==@.";
  List.iter
    (fun (name, result) -> Fmt.pr "  %-16s %a@." name O.pp_result result)
    (Journal.Kvs_proof.check ());
  (match Journal.Kvs_proof.check_buggy () with
  | O.Rejected why ->
    Fmt.pr "  record-first txn rejected, as it must be:@.    %s@."
      (String.sub why 0 (min 90 (String.length why)))
  | O.Accepted _ -> Fmt.pr "  record-first txn UNEXPECTEDLY accepted@.");

  Fmt.pr "@.== 5. The refinement checker agrees on every schedule ==@.";
  let report name = function
    | R.Refinement_holds stats -> Fmt.pr "  %-44s holds: %a@." name R.pp_stats stats
    | R.Refinement_violated (f, _) -> Fmt.pr "  %-44s VIOLATED: %a@." name R.pp_failure f
    | R.Budget_exhausted _ -> Fmt.pr "  %-44s budget exhausted@." name
  in
  report "txn with crash during recovery"
    (R.check (K.checker_config p ~max_crashes:2 [ [ K.txn_call p [ (0, Block.of_string "A"); (1, Block.of_string "B") ] ] ]));
  (match
     R.check
       (K.checker_config p ~spec:(K.strict_spec p) ~max_crashes:1
          [ [ K.put_async_call p 0 (V.str "A") ] ])
   with
  | R.Refinement_violated (f, _) ->
    Fmt.pr "  %-44s refuted: %s@." "lossless crash spec vs async put" f.R.reason
  | R.Refinement_holds _ -> Fmt.pr "  lossless spec UNEXPECTEDLY held@."
  | R.Budget_exhausted _ -> Fmt.pr "  budget exhausted@.")
