(** The cost model mapping journaled-KVS requests onto simulator actions.

    Constants are microseconds, in the same regime as {!Mail_model} (the
    disk is a tmpfs-like device with a short serialized kernel-side slice
    per I/O).  The interesting outputs are qualitative:

    - {!Global_lock} flattens almost immediately (every request holds the
      one lock across its I/O);
    - {!Per_key} scales on the read side but durable puts still quiesce
      the whole store, so a 25%-put mix caps it;
    - {!Group_commit} acknowledges puts from the buffer and amortizes the
      journal protocol (3E+2 writes for E entries) over a whole batch, so
      it dominates — the throughput counterpart of the loss window the
      KVS spec has to admit. *)

type variant = Global_lock | Per_key | Group_commit

let variant_name = function
  | Global_lock -> "kvs-global-lock"
  | Per_key -> "kvs-per-key"
  | Group_commit -> "kvs-group-commit"

type request = Get of int | Put of int | Txn of int list

(* The device: per-key data stripes (multi-queue, parallel across keys)
   plus one serialized log region — the journal's commit record and slots
   live there, so commits contend on it no matter the lock discipline. *)
let log_region = "log"

let stripe k = "disk" ^ string_of_int k

(* --- cost constants (μs) --- *)

let proto_cpu = 2.5 (* request parse + reply marshal *)
let lock_cpu = 0.05 (* in-memory mutex *)
let write_cpu = 0.8
let write_serial = 1.2
let read_cpu = 0.5
let read_serial = 0.6
let buffer_cpu = 0.2 (* volatile buffer append *)

let log_write = [ Sim.Cpu write_cpu; Sim.Serial (log_region, write_serial) ]
let apply_write k = [ Sim.Cpu write_cpu; Sim.Serial (stripe k, write_serial) ]
let disk_read k = [ Sim.Cpu read_cpu; Sim.Serial (stripe k, read_serial) ]

let lock l = [ Sim.Cpu lock_cpu; Sim.Lock l ]
let unlock l = [ Sim.Cpu lock_cpu; Sim.Unlock l ]

(* Key locks ascending, then the commit lock — Kvs's global order. *)
let commit_lock n_keys = n_keys

let lock_all n_keys = List.concat (List.init (n_keys + 1) lock)
let unlock_all n_keys = List.concat (List.init (n_keys + 1) (fun i -> unlock (n_keys - i)))

(* The journal commit protocol for entries touching [ks]: two slot writes
   per entry plus the record and the clear in the log region, then one
   apply per entry on its key's stripe. *)
let journal_commit ks =
  List.concat (List.init ((2 * List.length ks) + 2) (fun _ -> log_write))
  @ List.concat_map apply_write ks

let proto = [ Sim.Cpu proto_cpu ]

let compile ~variant ~n_keys ?(batch = 8) (reqs : request list) : Sim.action list array =
  let g = commit_lock n_keys in
  let buffered = ref [] in
  let compile_one = function
    | Get k -> (
      match variant with
      | Global_lock -> proto @ lock g @ disk_read k @ unlock g
      | Per_key | Group_commit -> proto @ lock k @ disk_read k @ unlock k)
    | Put k -> (
      match variant with
      | Global_lock -> proto @ lock g @ journal_commit [ k ] @ unlock g
      | Per_key -> proto @ lock_all n_keys @ journal_commit [ k ] @ unlock_all n_keys
      | Group_commit ->
        buffered := k :: !buffered;
        if List.length !buffered < batch then
          proto @ lock g @ [ Sim.Cpu buffer_cpu ] @ unlock g
        else begin
          (* this put triggers the merged flush of the whole batch *)
          let ks = List.sort_uniq Int.compare !buffered in
          buffered := [];
          proto @ lock_all n_keys @ journal_commit ks @ unlock_all n_keys
        end)
    | Txn ks -> (
      match variant with
      | Global_lock -> proto @ lock g @ journal_commit ks @ unlock g
      | Per_key | Group_commit ->
        proto @ lock_all n_keys @ journal_commit ks @ unlock_all n_keys)
  in
  Array.of_list (List.map compile_one reqs)

(* --- workload generation --- *)

let generate ~seed ~n_keys ~n : request list =
  let st = Random.State.make [| seed |] in
  let key () = Random.State.int st n_keys in
  List.init n (fun _ ->
      let r = Random.State.int st 100 in
      if r < 70 then Get (key ())
      else if r < 95 then Put (key ())
      else
        let a = key () in
        let b = key () in
        Txn (if a = b then [ a ] else [ a; b ]))

(* --- the core-count sweep --- *)

type point = {
  cores : int;
  throughput_rps : float;
  lat_p50_us : float;
  lat_p95_us : float;
  lat_p99_us : float;
}

type series = { variant : variant; points : point list }

let sweep ?(n_keys = 16) ?(requests = 20_000) ?(seed = 7) ?(max_cores = 12) () :
    series list =
  let reqs = generate ~seed ~n_keys ~n:requests in
  List.map
    (fun variant ->
      let compiled = compile ~variant ~n_keys reqs in
      let points =
        List.map
          (fun cores ->
            let out = Sim.run ~gc_quantum:150. ~gc_slice:14. ~cores compiled in
            { cores;
              throughput_rps = Sim.throughput out;
              lat_p50_us = Sim.percentile out.Sim.latencies_us 50.;
              lat_p95_us = Sim.percentile out.Sim.latencies_us 95.;
              lat_p99_us = Sim.percentile out.Sim.latencies_us 99. })
          (List.init max_cores (fun i -> i + 1))
      in
      { variant; points })
    [ Global_lock; Per_key; Group_commit ]

let throughput_at series cores =
  match List.find_opt (fun pt -> pt.cores = cores) series.points with
  | Some pt -> pt.throughput_rps
  | None -> invalid_arg "throughput_at"
