(** A discrete-event simulator of closed-loop workers on a multicore
    machine — the substrate for the Figure 11 reproduction (the container
    this repository builds in has a single CPU, so scaling must be
    simulated; see DESIGN.md's substitution table).

    Model:
    - [cores] workers, each executing a sequence of {!action}s per request
      in a closed loop over a shared request queue;
    - [Cpu d]: d microseconds of private work (perfectly parallel across
      cores);
    - [Serial (r, d)]: d microseconds holding the named global resource,
      FIFO-queued (kernel-side serialization of file-system metadata, the
      runtime's GC critical section);
    - [Lock l] / [Unlock l]: application-level locks (per-user mailbox
      locks), also FIFO, held across many actions;
    - GC is modeled per the paper's explanation of Mailboat's scaling limit
      (§9.3, "limited by lock contention in the runtime during garbage
      collection"): after every [gc_quantum] μs of accumulated CPU work a
      worker pays [gc_slice] μs under the global ["gc"] resource.

    The simulation is deterministic given the request list. *)

type action =
  | Cpu of float
  | Serial of string * float
  | Lock of int
  | Unlock of int

(* Internal continuation marker: release the named serial resource. *)
type iaction =
  | A of action
  | Release_serial of string

type resource = { mutable busy : bool; mutable queue : int list }

type core_state = {
  mutable pending : iaction list;
  mutable in_flight : bool;
  mutable cpu_since_gc : float;
  mutable completed : int;
  mutable cur_req : int;  (* index of the request in flight, -1 if none *)
}

type outcome = {
  makespan_us : float;
  per_core_completed : int array;
  total : int;
  latencies_us : float array;  (** per-request sojourn time, indexed by request *)
}

exception Sim_stuck of string

(* Observability: totals across simulation runs, on the default registry. *)
module Mx = struct
  open Obs.Metrics

  let runs = counter "perennial_mcsim_runs_total"
  let events = counter "perennial_mcsim_events_total"
  let requests = counter "perennial_mcsim_requests_total"
  let gc_slices = counter "perennial_mcsim_gc_slices_total"
  let serial_waits = counter "perennial_mcsim_serial_waits_total"
  let lock_waits = counter "perennial_mcsim_lock_waits_total"
  let latency = histogram "perennial_mcsim_request_latency_us"
  let serial_wait_us = histogram ~labels:[ ("resource", "serial") ] "perennial_mcsim_wait_us"
  let lock_wait_us = histogram ~labels:[ ("resource", "lock") ] "perennial_mcsim_wait_us"
end

(* Nearest-rank percentile over an unsorted sample; [p] in [0, 100]. *)
let percentile xs p =
  let n = Array.length xs in
  if n = 0 then 0.
  else begin
    let a = Array.copy xs in
    Array.sort compare a;
    let rank = int_of_float (Float.ceil (p /. 100. *. float_of_int n)) - 1 in
    a.(max 0 (min (n - 1) rank))
  end

let run ?(gc_quantum = 150.) ?(gc_slice = 6.) ~cores (requests : action list array) :
    outcome =
  let n = Array.length requests in
  let next_request = ref 0 in
  let states =
    Array.init cores (fun _ ->
        { pending = []; in_flight = false; cpu_since_gc = 0.; completed = 0; cur_req = -1 })
  in
  let req_start = Array.make (max n 1) 0. in
  let latencies = Array.make (max n 1) 0. in
  (* time a core entered a resource wait queue, for the wait histograms *)
  let wait_since = Array.make cores 0. in
  let events : int Heap.t = Heap.create () in
  let serials : (string, resource) Hashtbl.t = Hashtbl.create 8 in
  let locks : (int, resource) Hashtbl.t = Hashtbl.create 64 in
  let get tbl key =
    match Hashtbl.find_opt tbl key with
    | Some r -> r
    | None ->
      let r = { busy = false; queue = [] } in
      Hashtbl.add tbl key r;
      r
  in
  let makespan = ref 0. in
  let budget0 = 200_000_000 + (n * 64) in
  let budget = ref budget0 in
  let n_gc = ref 0 in
  let n_serial_waits = ref 0 in
  let n_lock_waits = ref 0 in
  let observe t = if t > !makespan then makespan := t in
  (* Process core [c] at time [t] until it blocks or schedules a future
     event. *)
  let rec step t c =
    decr budget;
    if !budget <= 0 then raise (Sim_stuck "event budget exceeded");
    let st = states.(c) in
    match st.pending with
    | [] ->
      if st.in_flight then begin
        st.completed <- st.completed + 1;
        st.in_flight <- false;
        if st.cur_req >= 0 then latencies.(st.cur_req) <- t -. req_start.(st.cur_req);
        st.cur_req <- -1;
        observe t
      end;
      if !next_request < n then begin
        st.pending <- List.map (fun a -> A a) requests.(!next_request);
        req_start.(!next_request) <- t;
        st.cur_req <- !next_request;
        incr next_request;
        st.in_flight <- true;
        step t c
      end
    | A (Cpu d) :: rest ->
      if st.cpu_since_gc +. d >= gc_quantum then begin
        st.cpu_since_gc <- 0.;
        incr n_gc;
        st.pending <- A (Serial ("gc", gc_slice)) :: rest
      end
      else begin
        st.cpu_since_gc <- st.cpu_since_gc +. d;
        st.pending <- rest
      end;
      Heap.push events (t +. d) c
    | A (Serial (name, d)) :: rest ->
      let r = get serials name in
      if r.busy then begin
        incr n_serial_waits;
        wait_since.(c) <- t;
        r.queue <- r.queue @ [ c ] (* retried when woken *)
      end
      else begin
        r.busy <- true;
        st.pending <- Release_serial name :: rest;
        Heap.push events (t +. d) c
      end
    | Release_serial name :: rest ->
      let r = get serials name in
      st.pending <- rest;
      (match r.queue with
      | [] -> r.busy <- false
      | waiter :: others ->
        r.queue <- others;
        r.busy <- false;
        Obs.Metrics.observe Mx.serial_wait_us (t -. wait_since.(waiter));
        Heap.push events t waiter);
      step t c
    | A (Lock l) :: rest ->
      let r = get locks l in
      if r.busy then begin
        incr n_lock_waits;
        wait_since.(c) <- t;
        r.queue <- r.queue @ [ c ]
      end
      else begin
        r.busy <- true;
        st.pending <- rest;
        step t c
      end
    | A (Unlock l) :: rest ->
      let r = get locks l in
      st.pending <- rest;
      (match r.queue with
      | [] -> r.busy <- false
      | waiter :: others ->
        r.queue <- others;
        r.busy <- false;
        Obs.Metrics.observe Mx.lock_wait_us (t -. wait_since.(waiter));
        Heap.push events t waiter);
      step t c
  in
  (* kick off all cores at t = 0 *)
  for c = 0 to cores - 1 do
    Heap.push events 0. c
  done;
  let rec drain () =
    match Heap.pop events with
    | None -> ()
    | Some (t, c) ->
      step t c;
      drain ()
  in
  drain ();
  Obs.Metrics.inc Mx.runs;
  Obs.Metrics.inc ~by:(budget0 - !budget) Mx.events;
  Obs.Metrics.inc ~by:n Mx.requests;
  Obs.Metrics.inc ~by:!n_gc Mx.gc_slices;
  Obs.Metrics.inc ~by:!n_serial_waits Mx.serial_waits;
  Obs.Metrics.inc ~by:!n_lock_waits Mx.lock_waits;
  let per_core_completed = Array.map (fun s -> s.completed) states in
  let total = Array.fold_left ( + ) 0 per_core_completed in
  if total <> n then
    raise (Sim_stuck (Printf.sprintf "only %d of %d requests completed (deadlock?)" total n));
  let latencies_us = Array.sub latencies 0 n in
  Array.iter (fun l -> Obs.Metrics.observe Mx.latency l) latencies_us;
  { makespan_us = !makespan; per_core_completed; total; latencies_us }

(** Requests per second given an outcome. *)
let throughput outcome =
  if outcome.makespan_us <= 0. then 0.
  else float_of_int outcome.total /. (outcome.makespan_us /. 1_000_000.)
