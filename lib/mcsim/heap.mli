(** A binary min-heap keyed by float: the simulator's event queue.

    {!Sim.run} pushes every future event (request completion, GC slice,
    lock hand-off) keyed by its virtual timestamp in microseconds and
    pops them in time order; the per-request latencies measured off that
    timeline are the samples behind {!Sim.percentile}, which implements
    the {e nearest-rank} definition: the [p]-th percentile of [n]
    samples is the value at sorted index [ceil (p/100 * n) - 1]
    (clamped to the array) — always an actual sample, never an
    interpolation, so p50/p95/p99 of a simulated run are values some
    request really saw.

    Contract notes:

    - [pop] returns a minimum-key entry; entries with {e equal} keys
      come back in an unspecified (but deterministic, insertion-order
      dependent) order.  Simultaneous events must therefore be made
      order-insensitive by the caller, or disambiguated with distinct
      keys — the simulator does the latter for metric determinism.
    - Keys are not required to be pushed monotonically; scheduling an
      event in the past is allowed and pops before everything later.
    - NaN keys are not supported (comparisons would be vacuous and heap
      order meaningless). *)

type 'a t

val create : unit -> 'a t
(** A fresh empty heap. *)

val is_empty : 'a t -> bool

val push : 'a t -> float -> 'a -> unit
(** [push h key v] inserts [v] with priority [key]; amortized O(log n),
    growing the backing array as needed. *)

val pop : 'a t -> (float * 'a) option
(** [pop h] removes and returns a minimum-key entry, or [None] if the
    heap is empty.  O(log n). *)
