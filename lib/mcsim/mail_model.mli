(** The cost model mapping mail-server requests onto simulator actions —
    the Figure 11 experiment (§9.3).

    Calibration targets are the paper's qualitative claims (the constants
    live in the implementation, documented in place):
    - Mailboat ≈ 1.81× GoMail at one core;
    - GoMail ≈ 1.34× CMAIL at one core;
    - all three scale sublinearly, Mailboat > GoMail > CMAIL throughout. *)

type profile = {
  server : Mailboat.Server.kind;
  cpu_mult : float;  (** execution-engine overhead (extracted Haskell) *)
  fs_cpu : float;  (** parallel part of one file-system call, μs *)
  fs_serial : float;  (** serialized part of one file-system call, μs *)
  fs_lookup_extra : float;  (** absolute-lookup penalty per call, μs *)
  proto_cpu : float;  (** SMTP/POP3 parsing + session bookkeeping, μs *)
  mem_lock_cpu : float;  (** in-memory mutex cost, μs *)
  file_lock_fs_ops : int;  (** fs calls to acquire a file lock *)
}

val mailboat_profile : profile
val gomail_profile : profile
val cmail_profile : profile
val profile_of : Mailboat.Server.kind -> profile

val compile : kind:Mailboat.Server.kind -> Mailboat.Workload.request list -> Sim.action list array
(** Expand a §9.3 workload into per-request action lists, tracking mailbox
    sizes (a pickup session reads whatever has been delivered so far). *)

type point = {
  cores : int;
  throughput_rps : float;
  lat_p50_us : float;  (** median request latency at this core count *)
  lat_p95_us : float;
  lat_p99_us : float;
}

type series = { kind : Mailboat.Server.kind; points : point list }

val figure11 :
  ?users:int -> ?requests:int -> ?seed:int -> ?max_cores:int -> unit -> series list
(** Reproduce Figure 11: throughput of the three servers as the core count
    varies, on the standard workload. *)

val throughput_at : series -> int -> float
