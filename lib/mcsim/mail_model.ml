(** The cost model mapping mail-server requests onto simulator actions —
    the Figure 11 experiment (§9.3).

    Calibration targets are the paper's qualitative claims, not its absolute
    numbers (our substrate is a simulator, not their 2×6-core Xeon):
    - Mailboat ≈ 1.81× GoMail at one core (in-memory locks + relative
      lookups vs file locks + absolute lookups);
    - GoMail ≈ 1.34× CMAIL at one core (Go vs extracted Haskell);
    - all three scale sublinearly, flattening towards 12 cores (tmpfs
      parallelism limited by kernel-side serialization and runtime GC).

    Constants below are microseconds; they were chosen so that single-core
    Mailboat throughput lands in the paper's ~30-35 krps ballpark. *)

type profile = {
  server : Mailboat.Server.kind;
  cpu_mult : float;  (** execution-engine overhead (extracted Haskell) *)
  fs_cpu : float;  (** parallel part of one file-system call *)
  fs_serial : float;  (** serialized part of one file-system call *)
  fs_lookup_extra : float;  (** extra per-call path-resolution cost
                                (absolute lookups; Mailboat caches the
                                directory fd and resolves relative) *)
  proto_cpu : float;  (** SMTP/POP3 parsing + session bookkeeping *)
  mem_lock_cpu : float;  (** in-memory mutex cost *)
  file_lock_fs_ops : int;  (** fs calls per file-lock acquire+release *)
}

let vfs = "vfs"

let mailboat_profile =
  {
    server = Mailboat.Server.Mailboat_server;
    cpu_mult = 1.0;
    fs_cpu = 2.6;
    fs_serial = 0.9;
    fs_lookup_extra = 0.0;
    proto_cpu = 12.0;
    mem_lock_cpu = 0.08;
    file_lock_fs_ops = 0;
  }

let gomail_profile =
  {
    mailboat_profile with
    server = Mailboat.Server.Gomail;
    fs_lookup_extra = 1.6;
    file_lock_fs_ops = 4;
  }

(* The CPU multiplier is calibrated so the *end-to-end* single-core gap
   between GoMail and CMAIL lands at the paper's 34% (the serialized
   kernel-side slices are not subject to the extraction overhead, so the
   raw multiplier must be a little higher). *)
let cmail_profile =
  { gomail_profile with server = Mailboat.Server.Cmail; cpu_mult = 1.42 }

let profile_of = function
  | Mailboat.Server.Mailboat_server -> mailboat_profile
  | Mailboat.Server.Gomail -> gomail_profile
  | Mailboat.Server.Cmail -> cmail_profile

(* --- building actions --- *)

let fs_call p = [ Sim.Cpu ((p.fs_cpu +. p.fs_lookup_extra) *. p.cpu_mult); Sim.Serial (vfs, p.fs_serial) ]

let fs_calls p n = List.concat (List.init n (fun _ -> fs_call p))

let lock_user p u =
  match p.file_lock_fs_ops with
  | 0 -> [ Sim.Cpu (p.mem_lock_cpu *. p.cpu_mult); Sim.Lock u ]
  | n -> fs_calls p n @ [ Sim.Lock u ] (* open+create+close the lock file *)

let unlock_user p u =
  match p.file_lock_fs_ops with
  | 0 -> [ Sim.Cpu (p.mem_lock_cpu *. p.cpu_mult); Sim.Unlock u ]
  | _ -> fs_calls p 2 @ [ Sim.Unlock u ] (* delete + close the lock file *)

(** Deliver: create temp, one 1 KB append, close, link, delete temp —
    lock-free (§8.2). *)
let deliver_actions p =
  (Sim.Cpu (p.proto_cpu *. p.cpu_mult) :: fs_calls p 5)

(** POP3 session for a mailbox currently holding [msgs] messages: lock,
    list, per message open+read+close and a delete, unlock. *)
let pickup_actions p ~msgs u =
  [ Sim.Cpu (p.proto_cpu *. p.cpu_mult) ]
  @ lock_user p u
  @ fs_calls p 1 (* list *)
  @ fs_calls p (4 * msgs) (* open + read + close + delete per message *)
  @ unlock_user p u

(** Expand a §9.3 workload into per-request action lists, tracking mailbox
    sizes (a pickup session reads whatever has been delivered so far and
    empties the mailbox). *)
let compile ~kind (reqs : Mailboat.Workload.request list) : Sim.action list array =
  let p = profile_of kind in
  let mailbox = Hashtbl.create 128 in
  let count u = match Hashtbl.find_opt mailbox u with Some n -> n | None -> 0 in
  List.map
    (fun (r : Mailboat.Workload.request) ->
      match r with
      | Mailboat.Workload.Smtp_deliver { user; _ } ->
        Hashtbl.replace mailbox user (count user + 1);
        deliver_actions p
      | Mailboat.Workload.Pop3_session { user } ->
        let msgs = count user in
        Hashtbl.replace mailbox user 0;
        pickup_actions p ~msgs user)
    reqs
  |> Array.of_list

(* --- the Figure 11 sweep --- *)

type point = {
  cores : int;
  throughput_rps : float;
  lat_p50_us : float;
  lat_p95_us : float;
  lat_p99_us : float;
}

type series = { kind : Mailboat.Server.kind; points : point list }

(** Reproduce Figure 11: throughput of the three servers as the core count
    varies, on the standard workload (equal deliver/pickup mix, [users]
    users, fixed total requests). *)
let figure11 ?(users = 100) ?(requests = 30_000) ?(seed = 42) ?(max_cores = 12) () :
    series list =
  let reqs = Mailboat.Workload.generate ~seed ~users ~n:requests in
  List.map
    (fun kind ->
      let compiled = compile ~kind reqs in
      let points =
        List.map
          (fun cores ->
            let out = Sim.run ~gc_quantum:150. ~gc_slice:14. ~cores compiled in
            { cores;
              throughput_rps = Sim.throughput out;
              lat_p50_us = Sim.percentile out.Sim.latencies_us 50.;
              lat_p95_us = Sim.percentile out.Sim.latencies_us 95.;
              lat_p99_us = Sim.percentile out.Sim.latencies_us 99. })
          (List.init max_cores (fun i -> i + 1))
      in
      { kind; points })
    [ Mailboat.Server.Mailboat_server; Mailboat.Server.Gomail; Mailboat.Server.Cmail ]

let throughput_at series cores =
  match List.find_opt (fun pt -> pt.cores = cores) series.points with
  | Some pt -> pt.throughput_rps
  | None -> invalid_arg "throughput_at"
