(** A discrete-event simulator of closed-loop workers on a multicore
    machine — the substrate for the Figure 11 reproduction (this container
    has one CPU; see DESIGN.md's substitution table).

    Deterministic given the request list.  GC is modeled as the paper
    explains Mailboat's scaling limit (§9.3): after every [gc_quantum] μs
    of CPU work a worker pays [gc_slice] μs under the global ["gc"]
    resource. *)

type action =
  | Cpu of float  (** μs of private work, perfectly parallel *)
  | Serial of string * float
      (** μs holding a named global FIFO resource (kernel-side
          serialization, GC critical section) *)
  | Lock of int  (** acquire an application lock (FIFO, held across actions) *)
  | Unlock of int

type outcome = {
  makespan_us : float;
  per_core_completed : int array;
  total : int;
  latencies_us : float array;
      (** per-request sojourn time (assignment to completion), indexed by
          request — the raw sample behind the tail-latency percentiles *)
}

exception Sim_stuck of string

val run :
  ?gc_quantum:float -> ?gc_slice:float -> cores:int -> action list array -> outcome
(** Execute all requests (shared queue, closed loop per core).  Raises
    {!Sim_stuck} on deadlock or a runaway event budget.  Request latencies
    and serial/lock wait times are observed into the
    [perennial_mcsim_request_latency_us] and [perennial_mcsim_wait_us]
    histograms. *)

val throughput : outcome -> float
(** Requests per second. *)

val percentile : float array -> float -> float
(** [percentile xs p] is the nearest-rank [p]-th percentile ([p] in
    [0..100]) of the sample; [0.] on an empty sample. *)
