(** The cost model mapping journaled-KVS requests onto simulator actions —
    the evaluation-harness workload for {!Journal.Kvs} (the `kvs` bench
    section).

    Three locking/commit disciplines are compared:
    - {!Global_lock}: every operation serializes on one lock (the
      standalone {!Journal.Txn_log} discipline);
    - {!Per_key}: gets take only their key's lock; durable commits quiesce
      the store (all key locks + commit lock) — {!Journal.Kvs.put_prog};
    - {!Group_commit}: puts are acknowledged from the volatile buffer and
      made durable in batched journal transactions —
      {!Journal.Kvs.put_async_prog} + flush. *)

type variant = Global_lock | Per_key | Group_commit

val variant_name : variant -> string

type request = Get of int | Put of int | Txn of int list  (** keys touched *)

val generate : seed:int -> n_keys:int -> n:int -> request list
(** A deterministic read-mostly mix (~70% get, ~25% put, ~5% multi-key
    txn). *)

val compile :
  variant:variant -> n_keys:int -> ?batch:int -> request list -> Sim.action list array
(** Expand requests into per-request action lists.  Under {!Group_commit},
    every [batch]-th buffered put pays for the merged flush transaction. *)

type point = {
  cores : int;
  throughput_rps : float;
  lat_p50_us : float;  (** median request latency at this core count *)
  lat_p95_us : float;
  lat_p99_us : float;
}

type series = { variant : variant; points : point list }

val sweep :
  ?n_keys:int -> ?requests:int -> ?seed:int -> ?max_cores:int -> unit -> series list
(** Throughput of the three disciplines as the core count varies. *)

val throughput_at : series -> int -> float
