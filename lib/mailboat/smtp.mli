(** A minimal SMTP server session (RFC 5321 subset) over the Mailboat
    library — the delivery half of the unverified protocol shell (§8.2).

    A session is a state machine from input lines to response lines, so it
    can be driven by tests, by the workload generator, or by a socket loop
    ([bin/mailboat_server]).  Recipients are addresses of the form
    [user<N>@...]; DATA bodies use standard dot termination with
    dot-stuffing. *)

type session

val create : ?max_data:int -> Server.t -> session
(** [max_data] caps the DATA body size in bytes (default {!default_max_data});
    a message exceeding it is dropped with a 552 response and the session
    resynchronizes at the command level, instead of buffering without
    bound. *)

val default_max_data : int

val max_line : int
(** Longest accepted command line (RFC 5321's 1000-octet text line, minus
    CRLF); longer command lines get a 500 response. *)

val banner : string
(** The 220 greeting a server sends on connect. *)

val input : session -> string -> string list
(** Feed one input line; returns zero or more response lines (zero while
    accumulating DATA body lines). *)

val run_script : Server.t -> string list -> string list
(** Run a whole scripted session; responses with the banner first. *)
