(** A minimal POP3 server session (RFC 1939 subset) over the Mailboat
    library — the retrieval half of the unverified protocol shell (§8.2).

    Connecting and authenticating performs [Pickup] (which takes the user
    lock, §8.1); QUIT commits deletions and performs [Unlock]. *)

type state =
  | Auth_user  (** waiting for USER *)
  | Auth_pass of int  (** got USER, waiting for PASS *)
  | Transaction of {
      user : int;
      messages : (string * string) list;  (** from Pickup, fixed for the session *)
      mutable deleted : string list;
    }
  | Closed

type session = { server : Server.t; mutable state : state }

let create server = { server; state = Auth_user }

let banner = "+OK mailboat POP3 ready"

let upper_prefix line prefix =
  String.length line >= String.length prefix
  && String.uppercase_ascii (String.sub line 0 (String.length prefix)) = prefix

let arg_of line =
  match String.index_opt line ' ' with
  | Some i -> String.trim (String.sub line (i + 1) (String.length line - i - 1))
  | None -> ""

let parse_user name =
  if String.length name > 4 && String.sub name 0 4 = "user" then
    int_of_string_opt (String.sub name 4 (String.length name - 4))
  else None

let max_line = 255 (* RFC 2449's recommended command-line limit *)

let input (s : session) (line : string) : string list =
  if String.length line > max_line then [ "-ERR line too long" ]
  else
  let line_t = String.trim line in
  match s.state with
  | Closed -> [ "-ERR closed" ]
  | Auth_user ->
    if upper_prefix line_t "USER" then (
      match parse_user (arg_of line_t) with
      | Some u when u >= 0 && u < s.server.Server.users ->
        s.state <- Auth_pass u;
        [ "+OK user accepted" ]
      | Some _ | None -> [ "-ERR no such user" ])
    else if upper_prefix line_t "QUIT" then begin
      s.state <- Closed;
      [ "+OK bye" ]
    end
    else [ "-ERR authenticate first" ]
  | Auth_pass u ->
    if upper_prefix line_t "PASS" then begin
      (* authentication always succeeds; Pickup starts the locked session *)
      let messages = Server.pickup s.server ~user:u in
      s.state <- Transaction { user = u; messages; deleted = [] };
      [ Printf.sprintf "+OK %d messages" (List.length messages) ]
    end
    else if upper_prefix line_t "QUIT" then begin
      s.state <- Closed;
      [ "+OK bye" ]
    end
    else [ "-ERR PASS expected" ]
  | Transaction t ->
    let alive () = List.filter (fun (id, _) -> not (List.mem id t.deleted)) t.messages in
    if upper_prefix line_t "STAT" then
      let msgs = alive () in
      let octets = List.fold_left (fun a (_, c) -> a + String.length c) 0 msgs in
      [ Printf.sprintf "+OK %d %d" (List.length msgs) octets ]
    else if upper_prefix line_t "LIST" then
      let msgs = alive () in
      (Printf.sprintf "+OK %d messages" (List.length msgs)
      :: List.mapi (fun i (_, c) -> Printf.sprintf "%d %d" (i + 1) (String.length c)) msgs)
      @ [ "." ]
    else if upper_prefix line_t "RETR" then (
      match int_of_string_opt (arg_of line_t) with
      | Some n when n >= 1 && n <= List.length (alive ()) ->
        let _, contents = List.nth (alive ()) (n - 1) in
        [ "+OK message follows"; contents; "." ]
      | Some _ | None -> [ "-ERR no such message" ])
    else if upper_prefix line_t "DELE" then (
      match int_of_string_opt (arg_of line_t) with
      | Some n when n >= 1 && n <= List.length (alive ()) ->
        let id, _ = List.nth (alive ()) (n - 1) in
        t.deleted <- id :: t.deleted;
        [ "+OK deleted" ]
      | Some _ | None -> [ "-ERR no such message" ])
    else if upper_prefix line_t "RSET" then begin
      t.deleted <- [];
      [ "+OK" ]
    end
    else if upper_prefix line_t "NOOP" then [ "+OK" ]
    else if upper_prefix line_t "QUIT" then begin
      (* commit deletions under the session lock, then unlock (§8.1) *)
      List.iter (fun id -> Server.delete s.server ~user:t.user id) t.deleted;
      Server.unlock s.server ~user:t.user;
      s.state <- Closed;
      [ "+OK bye" ]
    end
    else [ "-ERR unrecognized command" ]

let run_script server lines =
  let s = create server in
  banner :: List.concat_map (input s) lines
