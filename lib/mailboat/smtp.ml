(** A minimal SMTP server session (RFC 5321 subset) over the Mailboat
    library — the unverified protocol shell of §8.2 ("we used the library to
    implement an SMTP- and POP3-compatible mail server").

    The session is a pure state machine from input lines to response lines,
    so it can be driven by tests, by the postal-style workload generator,
    or by a real socket loop in [bin/mailboat_server]. *)

type state =
  | Greeting  (** waiting for HELO/EHLO *)
  | Ready  (** waiting for MAIL FROM *)
  | Has_sender  (** waiting for RCPT TO *)
  | Has_rcpt of int list  (** recipients so far; waiting for RCPT/DATA *)
  | In_data of int list * Buffer.t  (** reading message lines until "." *)
  | Closed

type session = { server : Server.t; mutable state : state; max_data : int }

let default_max_data = 65536
let max_line = 998 (* RFC 5321 text-line limit, minus CRLF *)

let create ?(max_data = default_max_data) server = { server; state = Greeting; max_data }

let banner = "220 mailboat ESMTP ready"

(** Parse "user<N>@..." into a user id. *)
let parse_user_addr s =
  let s = String.trim s in
  let s =
    match String.index_opt s '<' with
    | Some i -> (
      match String.index_opt s '>' with
      | Some j when j > i -> String.sub s (i + 1) (j - i - 1)
      | _ -> s)
    | None -> s
  in
  match String.index_opt s '@' with
  | Some i ->
    let local = String.sub s 0 i in
    if String.length local > 4 && String.sub local 0 4 = "user" then
      int_of_string_opt (String.sub local 4 (String.length local - 4))
    else None
  | None -> None

let upper_prefix line prefix =
  String.length line >= String.length prefix
  && String.uppercase_ascii (String.sub line 0 (String.length prefix)) = prefix

let arg_after line prefix = String.sub line (String.length prefix) (String.length line - String.length prefix)

(** Feed one input line; returns the response line(s). *)
let input (s : session) (line : string) : string list =
  match s.state with
  | Closed -> [ "421 closed" ]
  | In_data (rcpts, buf) ->
    if String.trim line = "." then begin
      let msg = Buffer.contents buf in
      List.iter (fun u -> ignore (Server.deliver s.server ~user:u msg)) rcpts;
      s.state <- Ready;
      [ "250 OK: queued" ]
    end
    else if Buffer.length buf + String.length line + 1 > s.max_data then begin
      (* oversized message: drop it and resynchronize at the command level
         rather than buffering without bound *)
      s.state <- Ready;
      [ Printf.sprintf "552 message too large (limit %d bytes)" s.max_data ]
    end
    else begin
      (* dot-stuffing: a leading ".." encodes a literal "." *)
      let line =
        if String.length line >= 2 && line.[0] = '.' && line.[1] = '.' then
          String.sub line 1 (String.length line - 1)
        else line
      in
      Buffer.add_string buf line;
      Buffer.add_char buf '\n';
      []
    end
  | Greeting | Ready | Has_sender | Has_rcpt _ when String.length line > max_line ->
    [ "500 line too long" ]
  | (Greeting | Ready | Has_sender | Has_rcpt _) as st ->
    let line_t = String.trim line in
    if upper_prefix line_t "QUIT" then begin
      s.state <- Closed;
      [ "221 bye" ]
    end
    else if upper_prefix line_t "HELO" || upper_prefix line_t "EHLO" then begin
      s.state <- (if st = Greeting then Ready else s.state);
      [ "250 mailboat" ]
    end
    else if upper_prefix line_t "MAIL FROM:" then (
      match st with
      | Ready | Has_sender | Has_rcpt _ ->
        s.state <- Has_sender;
        [ "250 OK" ]
      | Greeting -> [ "503 bad sequence: HELO first" ]
      | In_data _ | Closed -> assert false)
    else if upper_prefix line_t "RCPT TO:" then (
      match st with
      | Has_sender | Has_rcpt _ -> (
        match parse_user_addr (arg_after line_t "RCPT TO:") with
        | Some u when u >= 0 && u < s.server.Server.users ->
          let rcpts = match st with Has_rcpt rs -> rs | _ -> [] in
          s.state <- Has_rcpt (u :: rcpts);
          [ "250 OK" ]
        | Some _ | None -> [ "550 no such user" ])
      | Greeting | Ready -> [ "503 bad sequence: MAIL FROM first" ]
      | In_data _ | Closed -> assert false)
    else if upper_prefix line_t "DATA" then (
      match st with
      | Has_rcpt rcpts ->
        s.state <- In_data (rcpts, Buffer.create 256);
        [ "354 end with ." ]
      | Greeting | Ready | Has_sender -> [ "503 bad sequence: RCPT first" ]
      | In_data _ | Closed -> assert false)
    else if upper_prefix line_t "NOOP" then [ "250 OK" ]
    else if upper_prefix line_t "RSET" then begin
      s.state <- Ready;
      [ "250 OK" ]
    end
    else [ "500 unrecognized command" ]

(** Convenience driver: run a whole scripted session, returning all
    responses (with the banner first). *)
let run_script server lines =
  let s = create server in
  banner :: List.concat_map (input s) lines
