(** A minimal POP3 server session (RFC 1939 subset) over the Mailboat
    library — the retrieval half of the unverified protocol shell (§8.2).

    Authenticating ([USER user<N>] / [PASS ...]) performs [Pickup], which
    takes the per-user lock (§8.1); the session's message list is fixed at
    that point.  [DELE] marks deletions, [RSET] clears them, and [QUIT]
    commits deletions and performs [Unlock]. *)

type session

val create : Server.t -> session

val banner : string

val max_line : int
(** Longest accepted command line (RFC 2449's recommendation); longer lines
    get a [-ERR] response. *)

val input : session -> string -> string list
(** Feed one command line; returns the response line(s).  Never raises:
    malformed or oversized input produces a [-ERR ...] response. *)

val run_script : Server.t -> string list -> string list
