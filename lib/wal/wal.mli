(** The write-ahead log: buffered multiwrites drained to the {!Circ} ring
    by a logger with group commit and log absorption, applied home and
    trimmed by an installer, with a [flush] durability barrier — verified
    against an atomic multiwrite spec.  See the implementation header for
    the protocol. *)

module V := Tslang.Value
module Spec := Tslang.Spec
module P := Sched.Prog
module Block := Disk.Block

type params = private { n_data : int; cap : int; absorb : bool }

val params : ?absorb:bool -> n_data:int -> cap:int -> unit -> params
(** Home region of [n_data] blocks, ring of [cap] record slots above it.
    [absorb] (default true) collapses buffered writes to the same address
    before logging.  Raises [Invalid_argument] on non-positive sizes. *)

val circ : params -> Circ.layout
val disk_size : params -> int

type txn = (int * Block.t) list

(** {1 Log absorption} *)

val absorb : (int * Block.t) list -> (int * Block.t) list
(** Last writer wins per address; survivors keep the order of their last
    occurrence. *)

val batch_records : params -> txn list -> (int * Block.t) list
(** The records one drained batch logs ([absorb] applied when enabled). *)

(** {1 Specification} *)

type state = {
  durable : Block.t list;  (** home values as of the last logged txn *)
  pending : txn list;  (** accepted but not yet durable, oldest first *)
  logged : int;  (** ids [1 .. logged] are durable *)
}

val view : state -> Block.t list
(** What reads observe: [durable] with every pending txn applied. *)

val spec : params -> state Spec.t
(** Ops: [w_mwrite entries -> id], [w_read a], [w_flush id] (settles some
    prefix of the pending txns, then {e guards} — not [check]s — that [id]
    is durable), [w_log] (settles some prefix), [w_install] (no abstract
    effect).  Crash drops the pending txns. *)

(** {1 World and implementation} *)

type world = {
  disk : Disk.Single_disk.t;
  buffer : txn list;
  vtail : int;  (** last accepted txn id = header txns + |buffer| *)
  locks : Disk.Locks.t;
}

val init_world : params -> world
val crash_world : world -> world
val pp_world : Format.formatter -> world -> unit
val get_disk : world -> Disk.Single_disk.t
val set_disk : world -> Disk.Single_disk.t -> world

val mwrite_prog : params -> txn -> (world, V.t) P.t
val read_prog : params -> int -> (world, V.t) P.t
val flush_prog : params -> int -> (world, V.t) P.t
val logger_tick_prog : params -> (world, V.t) P.t
val installer_tick_prog : params -> (world, V.t) P.t
val recover_prog : params -> (world, V.t) P.t

(** {1 Checker configuration} *)

val mwrite_call : params -> txn -> Spec.call * (world, V.t) P.t
val read_call : params -> int -> Spec.call * (world, V.t) P.t
val flush_call : params -> int -> Spec.call * (world, V.t) P.t
val logger_call : params -> Spec.call * (world, V.t) P.t
val installer_call : params -> Spec.call * (world, V.t) P.t

val probe : params -> (Spec.call * (world, V.t) P.t) list

val checker_config :
  params ->
  ?max_crashes:int ->
  ?fault_budget:int ->
  (Spec.call * (world, V.t) P.t) list list ->
  (world, state) Perennial_core.Refinement.config

(** {1 Seeded bugs} *)

module Buggy : sig
  val logger_call_header_first : params -> Spec.call * (world, V.t) P.t
  (** (a) Header installed before the record batch: torn log on crash. *)

  val installer_call_trim_first : params -> Spec.call * (world, V.t) P.t
  (** (b) Ring trimmed before its records are applied home: lost write on
      crash. *)

  val flush_call_absorb_logged : params -> int -> Spec.call * (world, V.t) P.t
  (** (c) Absorption collapses against records logged before the flush
      barrier while still counting the skipped txns durable: a durability
      lie. *)
end
