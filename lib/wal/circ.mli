(** The circular log: a fixed on-disk ring of (address, block) records plus
    one counted header block, installed atomically — the bottom layer of the
    write-ahead log and the OCaml rendering of the structure
    [circ_proof_crash.v] proves.  See the implementation header for the
    layout and the two-phase protocol (records first, then ONE header
    write as the only commit point). *)

module V := Tslang.Value
module Spec := Tslang.Spec
module P := Sched.Prog
module Block := Disk.Block

(** {1 Layout} *)

type layout = private { base : int; cap : int }

val layout : base:int -> cap:int -> layout
(** Ring of [cap] two-block record slots headed at block [base].
    Raises [Invalid_argument] if [base < 0] or [cap <= 0]. *)

val hdr_addr : layout -> int
val slot_addr : layout -> int -> int
(** [slot_addr ly pos] is the address block of position [pos] — positions
    are monotone; the slot is [pos mod cap]. *)

val slot_val : layout -> int -> int
val region_size : layout -> int
(** Blocks the ring occupies: [1 + 2*cap]. *)

val free_space : layout -> start:int -> end_:int -> int

(** {1 Header and record marshalling} *)

val int_block : int -> Block.t
val block_int : Block.t -> int
val header_block : start:int -> end_:int -> txns:int -> Block.t
val parse_header : Block.t -> int * int * int
(** [(start, end, txns)]; anything unparseable — including the fresh
    disk's [Block.zero] — is the empty ring [(0, 0, 0)]. *)

val value_of_records : (int * Block.t) list -> V.t
val records_of_value : V.t -> (int * Block.t) list

(** {1 The ring protocol, lens-parameterized over the world} *)

val read_header : get_disk:('w -> Disk.Single_disk.t) -> layout -> ('w, int * int * int) P.t

val write_records :
  get_disk:('w -> Disk.Single_disk.t) ->
  set_disk:('w -> Disk.Single_disk.t -> 'w) ->
  layout ->
  pos:int ->
  (int * Block.t) list ->
  ('w, unit) P.t
(** Write records into the slots for positions [pos ..]; dead until a
    header install advances [end] over them. *)

val install_header :
  get_disk:('w -> Disk.Single_disk.t) ->
  set_disk:('w -> Disk.Single_disk.t -> 'w) ->
  layout ->
  start:int ->
  end_:int ->
  txns:int ->
  ('w, unit) P.t
(** The atomic commit point: one header write. *)

val read_record : get_disk:('w -> Disk.Single_disk.t) -> layout -> int -> ('w, int * Block.t) P.t

val write_records_f :
  get_disk:('w -> Disk.Single_disk.t) ->
  set_disk:('w -> Disk.Single_disk.t -> 'w) ->
  layout ->
  pos:int ->
  (int * Block.t) list ->
  ('w, V.t) P.t
(** Fallible record batch: ONE {!Disk.Single_disk.write_multi_f}, so a
    [Torn_write] can tear it — harmless pre-header, idempotent to retry. *)

val install_header_f :
  get_disk:('w -> Disk.Single_disk.t) ->
  set_disk:('w -> Disk.Single_disk.t -> 'w) ->
  layout ->
  start:int ->
  end_:int ->
  txns:int ->
  ('w, V.t) P.t

(** {1 Standalone single-lock system} *)

type state = { s_start : int; s_end : int; s_recs : (int * Block.t) list }

val spec : layout -> state Spec.t
(** Atomic append/trim/snapshot over the abstract ring; crash is [ret ()]
    — a crash exposes exactly a prefix of the installed header writes. *)

val pp_record : Format.formatter -> int * Block.t -> unit

type world = { disk : Disk.Single_disk.t; locks : Disk.Locks.t }

val init_world : layout -> world
val crash_world : world -> world
val pp_world : Format.formatter -> world -> unit
val get_disk : world -> Disk.Single_disk.t
val set_disk : world -> Disk.Single_disk.t -> world

val append_prog : layout -> (int * Block.t) list -> (world, V.t) P.t
val trim_prog : layout -> int -> (world, V.t) P.t
val snapshot_prog : layout -> (world, V.t) P.t

val append_call : layout -> (int * Block.t) list -> Spec.call * (world, V.t) P.t
val trim_call : layout -> int -> Spec.call * (world, V.t) P.t
val snapshot_call : layout -> Spec.call * (world, V.t) P.t

val recover : (world, V.t) P.t

val checker_config :
  layout ->
  ?max_crashes:int ->
  ?fault_budget:int ->
  (Spec.call * (world, V.t) P.t) list list ->
  (world, state) Perennial_core.Refinement.config

module Buggy : sig
  val append_header_first : layout -> (int * Block.t) list -> (world, V.t) P.t
  (** Header installed before the record slots are written: a crash in
      between exposes stale slots through a live header. *)

  val append_call_header_first : layout -> (int * Block.t) list -> Spec.call * (world, V.t) P.t
end
