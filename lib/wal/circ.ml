(** The circular log: a fixed on-disk ring of (address, block) records plus
    one counted header block — the bottom layer of the write-ahead log, the
    OCaml rendering of the structure [circ_proof_crash.v] proves.

    Disk layout for [{ base; cap }]:
    - block  [base]:         the header: ["start,end,txns"] (decimal)
    - blocks [base+1 ..]:    [cap] record slots, 2 blocks each:
                             record address, then record value

    Positions are monotonically increasing integers; a position [p] lives in
    slot [p mod cap].  The live window is [[start, end)]; [end - start <=
    cap] is the caller's obligation (checked by the spec).  [txns] counts
    the transactions ever logged — the durable half of the WAL's txn-id
    counter, which is how [Wal.flush] decides whether an id is durable.

    The protocol is two-phase and the header is the only commit point:

    1. write the new records into free slots past [end] (any order, any
       tearing — they are dead until the header says otherwise);
    2. install the header with ONE atomic write advancing [end] (append)
       or [start] (trim).

    A crash anywhere therefore exposes exactly a prefix of the installed
    header writes: the abstract ring state is always the last header to
    hit the disk, and the spec's crash transition is [ret ()].

    Like {!Journal.Txn_log}, the protocol is lens-parameterized over the
    world so larger systems (the [Wal] layer, the journal's WAL backend)
    can drive a ring embedded in their own disk.  A standalone single-lock
    system with its own spec, checker configuration and a seeded bug lives
    below. *)

module V = Tslang.Value
module T = Tslang.Transition
module Spec = Tslang.Spec
module P = Sched.Prog
module Block = Disk.Block
module Fault = Sched.Fault

type layout = { base : int; cap : int }

let layout ~base ~cap =
  if base < 0 || cap <= 0 then invalid_arg "Circ.layout";
  { base; cap }

let hdr_addr ly = ly.base
let slot_addr ly pos = ly.base + 1 + (2 * (pos mod ly.cap))
let slot_val ly pos = ly.base + 2 + (2 * (pos mod ly.cap))
let region_size ly = 1 + (2 * ly.cap)
let free_space ly ~start ~end_ = ly.cap - (end_ - start)

(** Addresses and counts are decimal strings, as in {!Journal.Txn_log}. *)
let int_block n = Block.of_string (string_of_int n)

let block_int b = match int_of_string_opt (Block.to_string b) with Some n -> n | None -> 0

(** ["start,end,txns"].  [Block.zero] is ["0"] — not three fields — so a
    fresh disk parses as the empty ring [(0, 0, 0)], and so does any
    corrupt header. *)
let header_block ~start ~end_ ~txns =
  Block.of_string (Printf.sprintf "%d,%d,%d" start end_ txns)

let parse_header b =
  match String.split_on_char ',' (Block.to_string b) with
  | [ s; e; t ] -> (
    match (int_of_string_opt s, int_of_string_opt e, int_of_string_opt t) with
    | Some s, Some e, Some t -> (s, e, t)
    | _ -> (0, 0, 0))
  | _ -> (0, 0, 0)

(* A record list as a spec-level value and back. *)
let value_of_records records =
  V.list (List.map (fun (a, b) -> V.pair (V.int a) (Block.to_value b)) records)

let records_of_value v =
  List.map
    (fun e ->
      let a, b = V.get_pair e in
      (V.get_int a, Block.of_value b))
    (V.get_list v)

(* ------------------------------------------------------------------ *)
(* The ring protocol, over any world with a disk lens                    *)
(* ------------------------------------------------------------------ *)

open P.Syntax

let read_header ~get_disk ly : ('w, int * int * int) P.t =
  let* v = Disk.Single_disk.read ~get_disk (hdr_addr ly) in
  P.return (parse_header (Block.of_value v))

(** Write [records] into the slots for positions [pos, pos + len).  Dead
    until a header install advances [end] over them. *)
let write_records ~get_disk ~set_disk ly ~pos records : ('w, unit) P.t =
  let dw a b = Disk.Single_disk.write ~get_disk ~set_disk a b in
  let rec go pos = function
    | [] -> P.return ()
    | (a, b) :: rest ->
      let* () = dw (slot_addr ly pos) (int_block a) in
      let* () = dw (slot_val ly pos) b in
      go (pos + 1) rest
  in
  go pos records

(** The atomic commit point: one header write. *)
let install_header ~get_disk ~set_disk ly ~start ~end_ ~txns : ('w, unit) P.t =
  Disk.Single_disk.write ~get_disk ~set_disk (hdr_addr ly)
    (header_block ~start ~end_ ~txns)

let read_record ~get_disk ly pos : ('w, int * Block.t) P.t =
  let dr a = Disk.Single_disk.read ~get_disk a in
  let* a = dr (slot_addr ly pos) in
  let* b = dr (slot_val ly pos) in
  P.return (block_int (Block.of_value a), Block.of_value b)

(* Fallible variants: the record batch is ONE multi-block write (so a
   [Torn_write] can tear it — harmless pre-header and idempotent to
   retry), the header install a single fallible write.  Success returns
   [V.unit]; a transient fault returns {!Sched.Fault.eio}. *)

let write_records_f ~get_disk ~set_disk ly ~pos records : ('w, V.t) P.t =
  let blocks =
    List.concat
      (List.mapi
         (fun i (a, b) -> [ (slot_addr ly (pos + i), int_block a); (slot_val ly (pos + i), b) ])
         records)
  in
  Disk.Single_disk.write_multi_f ~get_disk ~set_disk blocks

let install_header_f ~get_disk ~set_disk ly ~start ~end_ ~txns : ('w, V.t) P.t =
  Disk.Single_disk.write_f ~get_disk ~set_disk (hdr_addr ly)
    (header_block ~start ~end_ ~txns)

(* ------------------------------------------------------------------ *)
(* Specification: an atomic ring of records                              *)
(* ------------------------------------------------------------------ *)

type state = { s_start : int; s_end : int; s_recs : (int * Block.t) list }
(** [s_recs] are the live records, positions [s_start .. s_end), oldest
    first. *)

let pp_record ppf (a, b) = Fmt.pf ppf "%d:%a" a Block.pp b

let pp_state ppf st =
  Fmt.pf ppf "ring[%d,%d){%a}" st.s_start st.s_end
    (Fmt.list ~sep:Fmt.comma pp_record)
    st.s_recs

let compare_record (a1, b1) (a2, b2) =
  let c = Int.compare a1 a2 in
  if c <> 0 then c else Block.compare b1 b2

let compare_state x y =
  let c = Int.compare x.s_start y.s_start in
  if c <> 0 then c
  else
    let c = Int.compare x.s_end y.s_end in
    if c <> 0 then c else List.compare compare_record x.s_recs y.s_recs

let rec drop n xs = if n <= 0 then xs else match xs with [] -> [] | _ :: tl -> drop (n - 1) tl

let spec ly : state Spec.t =
  let open T.Syntax in
  {
    Spec.name = "circ-log";
    init = { s_start = 0; s_end = 0; s_recs = [] };
    compare_state;
    pp_state;
    step =
      (fun op args ->
        match (op, args) with
        | "c_append", [ v ] ->
          let records = records_of_value v in
          let k = List.length records in
          let* st = T.reads in
          (* overflowing the ring is a caller bug: the protocol would
             overwrite live slots *)
          let* () = T.check (k <= free_space ly ~start:st.s_start ~end_:st.s_end) in
          let* () =
            T.modify (fun st -> { st with s_end = st.s_end + k; s_recs = st.s_recs @ records })
          in
          T.ret V.unit
        | "c_trim", [ n ] ->
          let n = V.get_int n in
          let* st = T.reads in
          let* () = T.check (st.s_start <= n && n <= st.s_end) in
          let* () =
            T.modify (fun st -> { st with s_start = n; s_recs = drop (n - st.s_start) st.s_recs })
          in
          T.ret V.unit
        | "c_snapshot", [] ->
          let* st = T.reads in
          T.ret (V.pair (V.pair (V.int st.s_start) (V.int st.s_end)) (value_of_records st.s_recs))
        | _ -> invalid_arg "circ-log spec: unknown op");
    (* the header is the single commit point: installed appends/trims are
       durable, in-flight ones simply happened or not *)
    crash = T.ret ();
  }

(* ------------------------------------------------------------------ *)
(* Standalone world and implementation (single lock, ring at base 0)     *)
(* ------------------------------------------------------------------ *)

type world = { disk : Disk.Single_disk.t; locks : Disk.Locks.t }

let init_world ly = { disk = Disk.Single_disk.init (ly.base + region_size ly); locks = Disk.Locks.empty }
let crash_world w = { w with locks = Disk.Locks.empty }

let pp_world ppf w = Fmt.pf ppf "%a %a" Disk.Single_disk.pp w.disk Disk.Locks.pp w.locks

let get_disk w = w.disk
let set_disk w disk = { w with disk }
let get_locks w = w.locks
let set_locks w locks = { w with locks }

let the_lock = 0
let lock () = Disk.Locks.acquire ~get:get_locks ~set:set_locks the_lock
let unlock () = Disk.Locks.release ~get:get_locks ~set:set_locks the_lock

let append_prog ly records : (world, V.t) P.t =
  let* () = lock () in
  let* s, e, t = read_header ~get_disk ly in
  let* () = write_records ~get_disk ~set_disk ly ~pos:e records in
  let* () =
    install_header ~get_disk ~set_disk ly ~start:s
      ~end_:(e + List.length records)
      ~txns:(t + 1)
  in
  let* () = unlock () in
  P.return V.unit

let trim_prog ly n : (world, V.t) P.t =
  let* () = lock () in
  let* _, e, t = read_header ~get_disk ly in
  let* () = install_header ~get_disk ~set_disk ly ~start:n ~end_:e ~txns:t in
  let* () = unlock () in
  P.return V.unit

let snapshot_prog ly : (world, V.t) P.t =
  let* () = lock () in
  let* s, e, _ = read_header ~get_disk ly in
  let rec scan pos acc =
    if pos >= e then P.return (List.rev acc)
    else
      let* r = read_record ~get_disk ly pos in
      scan (pos + 1) (r :: acc)
  in
  let* recs = scan s [] in
  let* () = unlock () in
  P.return (V.pair (V.pair (V.int s) (V.int e)) (value_of_records recs))

let append_call ly records = (Spec.call "c_append" [ value_of_records records ], append_prog ly records)
let trim_call ly n = (Spec.call "c_trim" [ V.int n ], trim_prog ly n)
let snapshot_call ly = (Spec.call "c_snapshot" [], snapshot_prog ly)

(** The ring needs no recovery: the header is always consistent. *)
let recover : (world, V.t) P.t = P.return V.unit

let checker_config ly ?(max_crashes = 1) ?(fault_budget = 0) threads :
    (world, state) Perennial_core.Refinement.config =
  Perennial_core.Refinement.config ~spec:(spec ly) ~init_world:(init_world ly) ~crash_world
    ~pp_world ~threads ~recovery:recover
    ~post:[ snapshot_call ly ]
    ~max_crashes ~fault_budget ()

(* ------------------------------------------------------------------ *)
(* Seeded bug                                                            *)
(* ------------------------------------------------------------------ *)

module Buggy = struct
  (** Install the header BEFORE the record slots are written: a crash in
      between makes the ring expose whatever the slots previously held. *)
  let append_header_first ly records : (world, V.t) P.t =
    let* () = lock () in
    let* s, e, t = read_header ~get_disk ly in
    let* () =
      install_header ~get_disk ~set_disk ly ~start:s
        ~end_:(e + List.length records)
        ~txns:(t + 1)
    in
    let* () = write_records ~get_disk ~set_disk ly ~pos:e records in
    let* () = unlock () in
    P.return V.unit

  let append_call_header_first ly records =
    (Spec.call "c_append" [ value_of_records records ], append_header_first ly records)
end
