(** The write-ahead log: multiwrites buffered in memory, drained to the
    {!Circ} ring by a logger with group commit, applied home and trimmed by
    an installer, with log absorption and a [flush] durability barrier —
    the concurrent WAL of the paper's §7 artifact, over the ring
    [circ_proof_crash.v] proves.

    Disk layout for [{ n_data; cap; _ }]:
    - blocks [0 .. n_data-1]:  the home (data) region
    - blocks [n_data ..]:      a {!Circ} ring of [cap] record slots

    The volatile side is one buffer of accepted-but-unlogged transactions
    plus [vtail], the id of the last accepted transaction.  The durable
    side is the ring: its header's [txns] field counts the transactions
    ever logged, so [txn id is durable <=> header txns >= id] — that is
    the whole of [flush].

    The logger drains the buffer in batches: absorption first collapses
    buffered writes to the same address (last writer wins, survivors
    ordered by last occurrence), then one record-batch write plus ONE
    header install covers every transaction in the batch (group commit).
    The installer applies the live ring records to their home blocks and
    advances [start]; the logger falls back to installing inline when the
    ring is too full to take the next batch, so draining never waits on
    another thread.

    Everything below the buffer steps is driven through the fallible disk
    ops with unbounded retry — transient errors and torn record batches
    are absorbed (a torn batch is dead until the header says otherwise, so
    rewriting it is idempotent), which is what makes the WAL's fault
    dimension interesting to check. *)

module V = Tslang.Value
module T = Tslang.Transition
module Spec = Tslang.Spec
module P = Sched.Prog
module Block = Disk.Block
module Fault = Sched.Fault
module Fp = Sched.Footprint

type params = { n_data : int; cap : int; absorb : bool }

let params ?(absorb = true) ~n_data ~cap () =
  if n_data <= 0 || cap <= 0 then invalid_arg "Wal.params";
  { n_data; cap; absorb }

let circ p = Circ.layout ~base:p.n_data ~cap:p.cap
let disk_size p = p.n_data + Circ.region_size (circ p)

type txn = (int * Block.t) list

(* ------------------------------------------------------------------ *)
(* Log absorption                                                        *)
(* ------------------------------------------------------------------ *)

module ISet = Set.Make (Int)

(** Last writer wins per address; survivors keep the order of their last
    occurrence. *)
let absorb records =
  let rec go seen acc = function
    | [] -> acc
    | (a, b) :: rest ->
      if ISet.mem a seen then go seen acc rest
      else go (ISet.add a seen) ((a, b) :: acc) rest
  in
  go ISet.empty [] (List.rev records)

(** The records one drained batch of transactions logs. *)
let batch_records p txns =
  let records = List.concat txns in
  if p.absorb then absorb records else records

let rec take k xs = if k <= 0 then [] else match xs with [] -> [] | x :: tl -> x :: take (k - 1) tl
let rec drop k xs = if k <= 0 then xs else match xs with [] -> [] | _ :: tl -> drop (k - 1) tl

(** Longest prefix of [buf] whose absorbed records fit in [free] slots
    (0 if even the first transaction does not fit — absorption is
    monotone in the prefix, so greedy is exact). *)
let take_batch p ~free buf =
  let n = List.length buf in
  let rec go k best =
    if k > n then best
    else if List.length (batch_records p (take k buf)) <= free then go (k + 1) k
    else best
  in
  go 1 0

(* ------------------------------------------------------------------ *)
(* Specification: an atomic multiwrite log                               *)
(* ------------------------------------------------------------------ *)

type state = {
  durable : Block.t list;  (** home values as of the last logged txn *)
  pending : txn list;  (** accepted but not yet durable, oldest first *)
  logged : int;  (** ids [1 .. logged] are durable *)
}

let set_nth xs i v = List.mapi (fun j x -> if i = j then v else x) xs
let apply_txn st txn = List.fold_left (fun st (a, b) -> set_nth st a b) st txn
let view st = List.fold_left apply_txn st.durable st.pending

(** Settle the first [k] pending transactions: they become durable, in
    order. *)
let settle k st =
  {
    durable = List.fold_left apply_txn st.durable (take k st.pending);
    pending = drop k st.pending;
    logged = st.logged + k;
  }

let pp_record ppf (a, b) = Fmt.pf ppf "%d:%a" a Block.pp b
let pp_txn ppf txn = Fmt.pf ppf "[%a]" (Fmt.list ~sep:Fmt.comma pp_record) txn

let pp_state ppf st =
  Fmt.pf ppf "wal{durable=[%a] pending=%a logged=%d}"
    (Fmt.list ~sep:Fmt.semi Block.pp)
    st.durable
    (Fmt.list ~sep:Fmt.comma pp_txn)
    st.pending st.logged

let compare_txn = List.compare (fun (a1, b1) (a2, b2) ->
    let c = Int.compare a1 a2 in
    if c <> 0 then c else Block.compare b1 b2)

let compare_state x y =
  let c = List.compare Block.compare x.durable y.durable in
  if c <> 0 then c
  else
    let c = List.compare compare_txn x.pending y.pending in
    if c <> 0 then c else Int.compare x.logged y.logged

let spec p : state Spec.t =
  let open T.Syntax in
  let in_bounds a = a >= 0 && a < p.n_data in
  let choose_settle =
    let* st = T.reads in
    let* k = T.choose (List.init (List.length st.pending + 1) Fun.id) in
    T.modify (settle k)
  in
  {
    Spec.name = "wal";
    init =
      { durable = List.init p.n_data (fun _ -> Block.zero); pending = []; logged = 0 };
    compare_state;
    pp_state;
    step =
      (fun op args ->
        match (op, args) with
        | "w_mwrite", [ v ] ->
          let entries = Circ.records_of_value v in
          let* () =
            T.check
              (entries <> []
              && List.length entries <= p.cap
              && List.for_all (fun (a, _) -> in_bounds a) entries)
          in
          let* st = T.reads in
          let id = st.logged + List.length st.pending + 1 in
          let* () = T.modify (fun st -> { st with pending = st.pending @ [ entries ] }) in
          T.ret (V.int id)
        | "w_read", [ a ] ->
          let a = V.get_int a in
          let* () = T.check (in_bounds a) in
          let* st = T.reads in
          T.ret (Block.to_value (List.nth (view st) a))
        | "w_flush", [ id ] ->
          (* the barrier: however many transactions the logger settled by
             now, [id] must be among them.  [guard], not [check]: a
             candidate branch that settled too few is pruned, it is not
             undefined behaviour. *)
          let id = V.get_int id in
          let* () = choose_settle in
          let* st = T.reads in
          let* () = T.guard (st.logged >= id) in
          T.ret V.unit
        | "w_log", [] ->
          (* a logger pass settles some prefix of the pending txns *)
          let* () = choose_settle in
          T.ret V.unit
        | "w_install", [] ->
          (* moving records ring -> home changes no abstract state *)
          T.ret V.unit
        | _ -> invalid_arg "wal spec: unknown op");
    (* accepted-but-unlogged transactions vanish at a crash *)
    crash = T.modify (fun st -> { st with pending = [] });
  }

(* ------------------------------------------------------------------ *)
(* World and implementation (single WAL lock)                            *)
(* ------------------------------------------------------------------ *)

type world = {
  disk : Disk.Single_disk.t;
  buffer : txn list;  (** accepted, not yet logged; oldest first *)
  vtail : int;  (** last accepted txn id = header txns + |buffer| *)
  locks : Disk.Locks.t;
}

let init_world p =
  { disk = Disk.Single_disk.init (disk_size p); buffer = []; vtail = 0; locks = Disk.Locks.empty }

let crash_world w = { w with buffer = []; vtail = 0; locks = Disk.Locks.empty }

let pp_world ppf w =
  Fmt.pf ppf "%a buf=%a vtail=%d %a" Disk.Single_disk.pp w.disk
    (Fmt.list ~sep:Fmt.comma pp_txn)
    w.buffer w.vtail Disk.Locks.pp w.locks

let get_disk w = w.disk
let set_disk w disk = { w with disk }
let get_locks w = w.locks
let set_locks w locks = { w with locks }

let the_lock = 0
let lock () = Disk.Locks.acquire ~get:get_locks ~set:set_locks the_lock
let unlock () = Disk.Locks.release ~get:get_locks ~set:set_locks the_lock

let buf_reads = Fp.const (Fp.reads [ Fp.cell "walbuf" ])
let buf_writes = Fp.const (Fp.writes [ Fp.cell "walbuf" ])

open P.Syntax

let retry_step what : ('w, unit) P.t =
  P.read ~fp:(Fp.const Fp.pure) ("retry(" ^ what ^ ")") (fun _ -> ())

let unbounded what write : ('w, unit) P.t =
  let rec attempt () =
    let* r = write () in
    if Fault.is_eio r then
      let* () = retry_step what in
      attempt ()
    else P.return ()
  in
  attempt ()

(** Apply the live ring records home and trim — the installer's body.
    Caller holds the WAL lock. *)
let install_body p : (world, unit) P.t =
  let c = circ p in
  let* s, e, t = Circ.read_header ~get_disk c in
  if s = e then P.return ()
  else
    let rec go pos =
      if pos >= e then P.return ()
      else
        let* a, b = Circ.read_record ~get_disk c pos in
        let* () =
          unbounded "install" (fun () -> Disk.Single_disk.write_f ~get_disk ~set_disk a b)
        in
        go (pos + 1)
    in
    let* () = go s in
    unbounded "trim" (fun () ->
        Circ.install_header_f ~get_disk ~set_disk c ~start:e ~end_:e ~txns:t)

(** Drain the whole buffer to the ring, batch by batch — the logger's
    body, also run inline by [flush].  Installs inline when the ring is
    too full for the next batch.  Caller holds the WAL lock. *)
let rec drain p : (world, unit) P.t =
  let c = circ p in
  let* buf = P.read ~fp:buf_reads "wal_buffer_snapshot" (fun w -> w.buffer) in
  if buf = [] then P.return ()
  else
    let* s, e, t = Circ.read_header ~get_disk c in
    let free = Circ.free_space c ~start:s ~end_:e in
    let k = take_batch p ~free buf in
    if k = 0 then
      (* no room even for one txn: make room, then retry the batch *)
      let* () = install_body p in
      drain p
    else
      let txns = take k buf in
      let records = batch_records p txns in
      let* () =
        unbounded "log" (fun () ->
            Circ.write_records_f ~get_disk ~set_disk c ~pos:e records)
      in
      (* group commit: ONE header install covers all k transactions *)
      let* () =
        unbounded "header" (fun () ->
            Circ.install_header_f ~get_disk ~set_disk c ~start:s
              ~end_:(e + List.length records)
              ~txns:(t + k))
      in
      let* () =
        P.write ~fp:buf_writes "wal_buffer_drop" (fun w -> { w with buffer = drop k w.buffer })
      in
      drain p

let mwrite_prog p entries : (world, V.t) P.t =
  ignore p;
  P.span ~cat:"wal" "wal_mwrite"
  @@ let* () = lock () in
  let* id =
    P.det ~fp:buf_writes "wal_buffer_append" (fun w ->
        let id = w.vtail + 1 in
        ({ w with buffer = w.buffer @ [ entries ]; vtail = id }, id))
  in
  let* () = unlock () in
  P.return (V.int id)

let logger_tick_prog p : (world, V.t) P.t =
  P.span ~cat:"wal" "wal_logger"
  @@ let* () = lock () in
  let* () = drain p in
  let* () = unlock () in
  P.return V.unit

let installer_tick_prog p : (world, V.t) P.t =
  P.span ~cat:"wal" "wal_installer"
  @@ let* () = lock () in
  let* () = install_body p in
  let* () = unlock () in
  P.return V.unit

(** Wait until txn [id] is durable.  Self-draining: if the logger has not
    logged far enough, flush drains the buffer itself rather than
    blocking on another thread. *)
let flush_prog p id : (world, V.t) P.t =
  P.span ~cat:"wal" "wal_flush"
  @@ let* () = lock () in
  let* _, _, t = Circ.read_header ~get_disk (circ p) in
  let* () = if t >= id then P.return () else drain p in
  let* () = unlock () in
  P.return V.unit

(** Read through buffer, then ring (newest first), then home. *)
let read_prog p a : (world, V.t) P.t =
  let c = circ p in
  P.span ~cat:"wal" "wal_read"
  @@ let* () = lock () in
  let* buffered =
    P.read ~fp:buf_reads "wal_buffer_find" (fun w ->
        List.find_map (fun txn -> List.assoc_opt a (List.rev txn)) (List.rev w.buffer))
  in
  let* v =
    match buffered with
    | Some b -> P.return (Block.to_value b)
    | None ->
      let* s, e, _ = Circ.read_header ~get_disk c in
      let rec scan pos =
        if pos < s then Disk.Single_disk.read ~get_disk a
        else
          let* ra, rb = Circ.read_record ~get_disk c pos in
          if ra = a then P.return (Block.to_value rb) else scan (pos - 1)
      in
      scan (e - 1)
  in
  let* () = unlock () in
  P.return v

(** Recovery: replay the live ring home, trim, and rebuild the volatile
    txn counter from the header.  Idempotent; may itself crash and
    re-run. *)
let recover_prog p : (world, V.t) P.t =
  let c = circ p in
  P.span ~cat:"wal" "wal_recover"
  @@ let* s, e, t = Circ.read_header ~get_disk c in
  let rec replay pos =
    if pos >= e then P.return ()
    else
      let* a, b = Circ.read_record ~get_disk c pos in
      let* () = Disk.Single_disk.write ~get_disk ~set_disk a b in
      replay (pos + 1)
  in
  let* () = replay s in
  let* () =
    if s = e then P.return ()
    else Circ.install_header ~get_disk ~set_disk c ~start:e ~end_:e ~txns:t
  in
  let* () =
    P.write ~fp:buf_writes "wal_vtail_restore" (fun w -> { w with buffer = []; vtail = t })
  in
  P.return V.unit

(* ------------------------------------------------------------------ *)
(* Checker configuration                                                 *)
(* ------------------------------------------------------------------ *)

let value_of_txn = Circ.value_of_records

let mwrite_call p entries = (Spec.call "w_mwrite" [ value_of_txn entries ], mwrite_prog p entries)
let read_call p a = (Spec.call "w_read" [ V.int a ], read_prog p a)
let flush_call p id = (Spec.call "w_flush" [ V.int id ], flush_prog p id)
let logger_call p = (Spec.call "w_log" [], logger_tick_prog p)
let installer_call p = (Spec.call "w_install" [], installer_tick_prog p)

(** Post probes: read back every home address. *)
let probe p = List.init p.n_data (fun a -> read_call p a)

let checker_config p ?(max_crashes = 1) ?(fault_budget = 0) threads :
    (world, state) Perennial_core.Refinement.config =
  Perennial_core.Refinement.config ~spec:(spec p) ~init_world:(init_world p) ~crash_world
    ~pp_world ~threads ~recovery:(recover_prog p) ~post:(probe p) ~max_crashes ~fault_budget
    ()

(* ------------------------------------------------------------------ *)
(* Seeded bugs                                                           *)
(* ------------------------------------------------------------------ *)

module Buggy = struct
  (** (a) The logger installs the header BEFORE the record batch hits the
      ring: a crash in between makes recovery replay whatever the slots
      held before — a torn log.  (Infallible writes: the bug is in the
      ordering, not the fault handling.) *)
  let drain_header_first p : (world, unit) P.t =
    let c = circ p in
    let* buf = P.read ~fp:buf_reads "wal_buffer_snapshot" (fun w -> w.buffer) in
    if buf = [] then P.return ()
    else
      let* s, e, t = Circ.read_header ~get_disk c in
      let records = batch_records p buf in
      let* () =
        (* BUG: commit point installed first *)
        Circ.install_header ~get_disk ~set_disk c ~start:s
          ~end_:(e + List.length records)
          ~txns:(t + List.length buf)
      in
      let* () = Circ.write_records ~get_disk ~set_disk c ~pos:e records in
      P.write ~fp:buf_writes "wal_buffer_drop" (fun w -> { w with buffer = [] })

  let logger_tick_header_first p : (world, V.t) P.t =
    let* () = lock () in
    let* () = drain_header_first p in
    let* () = unlock () in
    P.return V.unit

  let logger_call_header_first p = (Spec.call "w_log" [], logger_tick_header_first p)

  (** (b) The installer trims the ring BEFORE the records are applied
      home: a crash in between has discarded the only copy of a logged
      transaction — a lost write. *)
  let installer_tick_trim_first p : (world, V.t) P.t =
    let c = circ p in
    let* () = lock () in
    let* s, e, t = Circ.read_header ~get_disk c in
    let* () =
      if s = e then P.return ()
      else
        let* () =
          (* BUG: the ring is abandoned before its records are home *)
          Circ.install_header ~get_disk ~set_disk c ~start:e ~end_:e ~txns:t
        in
        let rec go pos =
          if pos >= e then P.return ()
          else
            let* a, b = Circ.read_record ~get_disk c pos in
            let* () = Disk.Single_disk.write ~get_disk ~set_disk a b in
            go (pos + 1)
        in
        go s
    in
    let* () = unlock () in
    P.return V.unit

  let installer_call_trim_first p = (Spec.call "w_install" [], installer_tick_trim_first p)

  (** (c) Absorption collapses across the flush barrier: the drain skips
      any buffered record whose address already has a record in the LIVE
      ring — "it is already logged" — while still counting the
      transactions as durable in the header.  [flush] then reports the
      new value durable when only the old one is: a durability lie. *)
  let drain_absorb_logged p : (world, unit) P.t =
    let c = circ p in
    let* buf = P.read ~fp:buf_reads "wal_buffer_snapshot" (fun w -> w.buffer) in
    if buf = [] then P.return ()
    else
      let* s, e, t = Circ.read_header ~get_disk c in
      let rec ring_addrs pos acc =
        if pos >= e then P.return acc
        else
          let* a, _ = Circ.read_record ~get_disk c pos in
          ring_addrs (pos + 1) (ISet.add a acc)
      in
      let* logged_addrs = ring_addrs s ISet.empty in
      let records = batch_records p buf in
      (* BUG: "absorbs" against records logged before the barrier *)
      let kept = List.filter (fun (a, _) -> not (ISet.mem a logged_addrs)) records in
      let* () = Circ.write_records ~get_disk ~set_disk c ~pos:e kept in
      let* () =
        Circ.install_header ~get_disk ~set_disk c ~start:s
          ~end_:(e + List.length kept)
          ~txns:(t + List.length buf)
      in
      P.write ~fp:buf_writes "wal_buffer_drop" (fun w -> { w with buffer = [] })

  let flush_absorb_logged p id : (world, V.t) P.t =
    let* () = lock () in
    let* _, _, t = Circ.read_header ~get_disk (circ p) in
    let* () = if t >= id then P.return () else drain_absorb_logged p in
    let* () = unlock () in
    P.return V.unit

  let flush_call_absorb_logged p id = (Spec.call "w_flush" [ V.int id ], flush_absorb_logged p id)
end
