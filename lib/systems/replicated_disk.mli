(** The replicated disk (paper §1, §3, Figures 3-5): two physical disks that
    behave as one logical disk, tolerating one disk failure, with per-address
    locks for linearizability and a recovery procedure that copies disk 1
    onto disk 2 to complete interrupted writes.

    [spec] is Figure 3; [read_prog]/[write_prog] are Figure 4;
    [recover_prog] is Figure 5.  [Buggy] holds the deliberately broken
    variants the checkers must reject (experiment E7). *)

module V := Tslang.Value
module Spec := Tslang.Spec
module P := Sched.Prog
module IMap := Map.Make (Int)

(** {1 Specification (Figure 3)} *)

type state = Disk.Block.t IMap.t

val spec_init : int -> state
val spec : int -> state Spec.t

(** {1 World} *)

type world = { disks : Disk.Two_disk.t; locks : Disk.Locks.t }

val init_world : ?may_fail:bool -> int -> world
val crash_world : world -> world
val pp_world : world Fmt.t

val lock : int -> (world, unit) P.t
val unlock : int -> (world, unit) P.t

(** {1 Implementation (Figures 4-5)} *)

val read_prog : int -> (world, V.t) P.t
val write_prog : int -> V.t -> (world, V.t) P.t
val recover_prog : int -> (world, V.t) P.t
(** [recover_prog size] copies every in-bounds block from disk 1 to disk 2. *)

(** {1 Fault-tolerant operations}

    Built on the fallible disk ops ({!Disk.Two_disk.read_f}): a transient
    error is retried up to [retries] times (default 1) before failing over
    to the other disk; a disk that keeps erroring while its peer is alive
    is permanently decommissioned (degraded mode).  When every avenue is
    exhausted the op returns {!Sched.Fault.err_value} with durable state
    observably untouched — the graceful-degradation contract checked by the
    [rd_read_ft]/[rd_write_ft] spec arms. *)

val read_ft_prog : ?retries:int -> int -> (world, V.t) P.t
val write_ft_prog : ?retries:int -> int -> V.t -> (world, V.t) P.t

(** {1 Checker plumbing} *)

val read_call : int -> Spec.call * (world, V.t) P.t
val write_call : int -> V.t -> Spec.call * (world, V.t) P.t
val read_ft_call : ?retries:int -> int -> Spec.call * (world, V.t) P.t
val write_ft_call : ?retries:int -> int -> V.t -> Spec.call * (world, V.t) P.t

val probe : int -> (Spec.call * (world, V.t) P.t) list
(** Read every address twice, so a disk-1 failure between the reads exposes
    any divergence between the disks. *)

val checker_config :
  ?may_fail:bool ->
  ?max_crashes:int ->
  ?fault_budget:int ->
  size:int ->
  (Spec.call * (world, V.t) P.t) list list ->
  (world, state) Perennial_core.Refinement.config

(** {1 Seeded bugs (E7, §9.5)} *)

module Buggy : sig
  val recover_nop : (world, V.t) P.t
  val recover_zero : int -> (world, V.t) P.t
  (** The §1 example of wrong recovery: zero both disks. *)

  val recover_partial : int -> (world, V.t) P.t
  val write_prog_unlocked : int -> V.t -> (world, V.t) P.t
  val write_call_unlocked : int -> V.t -> Spec.call * (world, V.t) P.t
  val write_prog_early_unlock : int -> V.t -> (world, V.t) P.t
  val write_call_early_unlock : int -> V.t -> Spec.call * (world, V.t) P.t

  val read_ft_no_retry : int -> (world, V.t) P.t
  (** Fault-handling bug #1 — "retry without re-read": a transient read
      error is answered from the zero-filled I/O buffer instead of
      re-issuing the read.  One injected [Read_error] against non-zero data
      refutes it. *)

  val read_ft_call_no_retry : int -> Spec.call * (world, V.t) P.t
end
