(** The replicated disk (paper §1, §3, Figures 3-5): two physical disks that
    together behave as one logical disk, tolerating one disk failure, with a
    per-address lock for linearizability and a recovery procedure that copies
    disk 1 onto disk 2 to complete interrupted writes.

    [spec] is the paper's Figure 3 verbatim; [read_prog]/[write_prog]
    are Figure 4 and [recover_prog] Figure 5.  The [Buggy] submodule
    contains deliberately broken variants that the refinement checker must
    reject (experiment E7). *)

module V = Tslang.Value
module T = Tslang.Transition
module Spec = Tslang.Spec
module P = Sched.Prog
module Block = Disk.Block
module IMap = Map.Make (Int)

let d1 = Disk.Two_disk.D1
let d2 = Disk.Two_disk.D2

(* ------------------------------------------------------------------ *)
(* Specification (Figure 3)                                            *)
(* ------------------------------------------------------------------ *)

type state = Block.t IMap.t

let spec_init size : state =
  List.init size (fun a -> (a, Block.zero)) |> List.to_seq |> IMap.of_seq

let spec size : state Spec.t =
  let open T.Syntax in
  {
    Spec.name = "replicated-disk";
    init = spec_init size;
    compare_state = IMap.compare Block.compare;
    pp_state =
      (fun ppf st ->
        Fmt.pf ppf "{%a}"
          (Fmt.list ~sep:Fmt.comma (fun ppf (a, b) -> Fmt.pf ppf "%d:%a" a Block.pp b))
          (IMap.bindings st));
    step =
      (fun op args ->
        match op, args with
        | "rd_read", [ V.Int a ] ->
          let* mv = T.gets (IMap.find_opt a) in
          (match mv with
          | Some v -> T.ret (Block.to_value v)
          | None -> T.undefined)
        | "rd_write", [ V.Int a; v ] ->
          let* mv = T.gets (IMap.find_opt a) in
          (match mv with
          | Some _ ->
            let* () = T.modify (IMap.add a (Block.of_value v)) in
            T.ret V.unit
          | None -> T.undefined)
        (* Graceful-degradation arms for the fault-tolerant ops: the
           operation either takes effect atomically, or returns the
           distinguished {!Sched.Fault.err_value} with the logical disk
           untouched.  Nothing in between is allowed. *)
        | "rd_read_ft", [ V.Int a ] ->
          let* mv = T.gets (IMap.find_opt a) in
          (match mv with
          | Some v ->
            let* r = T.choose [ Block.to_value v; Sched.Fault.err_value ] in
            T.ret r
          | None -> T.undefined)
        | "rd_write_ft", [ V.Int a; v ] ->
          let* mv = T.gets (IMap.find_opt a) in
          (match mv with
          | Some _ ->
            let* ok = T.choose [ true; false ] in
            if ok then
              let* () = T.modify (IMap.add a (Block.of_value v)) in
              T.ret V.unit
            else T.ret Sched.Fault.err_value
          | None -> T.undefined)
        | _ -> invalid_arg "replicated-disk spec: unknown op");
    crash = T.ret () (* no data is lost on crash *);
  }

(* ------------------------------------------------------------------ *)
(* World: two disks + per-address locks                                *)
(* ------------------------------------------------------------------ *)

type world = { disks : Disk.Two_disk.t; locks : Disk.Locks.t }

let init_world ?(may_fail = false) size =
  { disks = Disk.Two_disk.init ~may_fail size; locks = Disk.Locks.empty }

(* Volatile locks clear on crash; disks persist. *)
let crash_world w = { disks = Disk.Two_disk.crash w.disks; locks = Disk.Locks.empty }

let pp_world ppf w =
  Fmt.pf ppf "%a %a" Disk.Two_disk.pp w.disks Disk.Locks.pp w.locks

let get_disks w = w.disks
let set_disks w disks = { w with disks }
let get_locks w = w.locks
let set_locks w locks = { w with locks }

let lock a = Disk.Locks.acquire ~get:get_locks ~set:set_locks a
let unlock a = Disk.Locks.release ~get:get_locks ~set:set_locks a

let disk_read id a = Disk.Two_disk.read ~get:get_disks ~set:set_disks id a
let disk_write id a b = Disk.Two_disk.write ~get:get_disks ~set:set_disks id a b

(* ------------------------------------------------------------------ *)
(* Implementation (Figure 4)                                           *)
(* ------------------------------------------------------------------ *)

open P.Syntax

(* func rd_read(a): lock; v, ok := read(d1, a); if !ok { v = read(d2, a) };
   unlock; return v *)
let read_prog a : (world, V.t) P.t =
  let* () = lock a in
  let* r1 = disk_read d1 a in
  let* v =
    match V.get_opt r1 with
    | Some v -> P.return v
    | None ->
      (* disk 1 failed: fall back to disk 2, which cannot also have failed *)
      let* r2 = disk_read d2 a in
      (match V.get_opt r2 with
      | Some v -> P.return v
      | None -> P.ub "both disks failed")
  in
  let* () = unlock a in
  P.return v

(* func rd_write(a, v): lock; write(d1, a, v); write(d2, a, v); unlock *)
let write_prog a v : (world, V.t) P.t =
  let b = Block.of_value v in
  let* () = lock a in
  let* () = disk_write d1 a b in
  let* () = disk_write d2 a b in
  let* () = unlock a in
  P.return V.unit

(* func rd_recover(): for a := range disk { v, ok := read(d1, a);
   if ok { write(d2, a, v) } } (Figure 5) *)
let recover_prog size : (world, V.t) P.t =
  let rec loop a =
    if a >= size then P.return V.unit
    else
      let* r1 = disk_read d1 a in
      match V.get_opt r1 with
      | Some v ->
        let* () = disk_write d2 a (Block.of_value v) in
        loop (a + 1)
      | None -> loop (a + 1)
  in
  loop 0

(* ------------------------------------------------------------------ *)
(* Fault-tolerant operations: bounded retry, fail-over, degradation    *)
(* ------------------------------------------------------------------ *)

module Fault = Sched.Fault
module Fp = Sched.Footprint

let disk_read_f id a = Disk.Two_disk.read_f ~get:get_disks ~set:set_disks id a
let disk_write_f id a b = Disk.Two_disk.write_f ~get:get_disks ~set:set_disks id a b

(* A retry iteration is marked by a pure no-op step whose label starts with
   "retry" — the convention the checker's [retries_observed] stat counts.
   The step only exists on paths where a transient error already fired, so
   it costs nothing in the fault-free state space. *)
let retry_step what : (world, unit) P.t =
  P.read ~fp:(Fp.const Fp.pure) ("retry(" ^ what ^ ")") (fun _ -> ())

(* Permanently decommission [id] IF the other disk is still alive (degraded
   mode: the survivor carries the logical disk from here on); returns
   whether it did.  Reads and writes the same durable status location the
   two-disk ops do. *)
let status_loc = Fp.Durable ("td-status", 0)

let try_degrade id other : (world, bool) P.t =
  P.det
    ~fp:(Fp.const (Fp.rw ~reads:[ status_loc ] ~writes:[ status_loc ] ()))
    (Fmt.str "degrade(%a)" Disk.Two_disk.pp_id id)
    (fun w ->
      let t = get_disks w in
      match Disk.Two_disk.disk t other with
      | Some _ -> (set_disks w (Disk.Two_disk.fail t id), true)
      | None -> (w, false))

(* func rd_read_ft(a): like rd_read, but over the fallible disk ops: a
   transient error on a disk is retried up to [retries] times, then the
   other disk is tried; when both sides are exhausted the distinguished
   EIO value is returned (reads never change durable state, so degradation
   is trivially clean). *)
let read_ft_prog ?(retries = 1) a : (world, V.t) P.t =
  let* () = lock a in
  let finish v =
    let* () = unlock a in
    P.return v
  in
  let rec attempt id alt n =
    let* r = disk_read_f id a in
    if Fault.is_eio r then
      if n > 0 then
        let* () = retry_step (Fmt.str "read %a" Disk.Two_disk.pp_id id) in
        attempt id alt (n - 1)
      else next alt
    else
      match V.get_opt r with
      | Some v -> finish v
      | None -> next alt (* permanent failure: fail over *)
  and next = function
    | Some id2 -> attempt id2 None retries
    | None -> finish Fault.err_value
  in
  attempt d1 (Some d2) retries

(* func rd_write_ft(a, v): write d1 then d2 through the fallible ops, each
   with bounded retry.  A disk that keeps erroring transiently while the
   other is alive is permanently decommissioned (degraded mode) and the
   write completes on the survivor; if the other disk is already dead the
   operation gives up with EIO — in that case nothing was persisted (a
   dead disk's write is a no-op and a transiently failed write persists
   nothing), so durable state is untouched, as the spec's error arm
   demands. *)
let write_ft_prog ?(retries = 1) a v : (world, V.t) P.t =
  let b = Block.of_value v in
  let* () = lock a in
  let finish r =
    let* () = unlock a in
    P.return r
  in
  let write_one id =
    let rec attempt n =
      let* r = disk_write_f id a b in
      if Fault.is_eio r then
        if n > 0 then
          let* () = retry_step (Fmt.str "write %a" Disk.Two_disk.pp_id id) in
          attempt (n - 1)
        else P.return `Gave_up
      else
        match V.get_opt r with
        | Some _ -> P.return `Persisted
        | None -> P.return `Dead
    in
    attempt retries
  in
  let* r1 = write_one d1 in
  let* proceed =
    match r1 with
    | `Persisted | `Dead -> P.return true
    | `Gave_up -> try_degrade d1 d2
  in
  if not proceed then finish Fault.err_value
  else
    let* r2 = write_one d2 in
    match r2 with
    | `Persisted | `Dead -> finish V.unit
    | `Gave_up ->
      let* kicked = try_degrade d2 d1 in
      if kicked then finish V.unit else finish Fault.err_value

(* ------------------------------------------------------------------ *)
(* Calls and checker configuration                                     *)
(* ------------------------------------------------------------------ *)

let read_call a = (Spec.call "rd_read" [ V.int a ], read_prog a)
let write_call a v = (Spec.call "rd_write" [ V.int a; v ], write_prog a v)

let read_ft_call ?retries a = (Spec.call "rd_read_ft" [ V.int a ], read_ft_prog ?retries a)

let write_ft_call ?retries a v =
  (Spec.call "rd_write_ft" [ V.int a; v ], write_ft_prog ?retries a v)

(** Probe: read an address twice, so that a disk-1 failure between the two
    reads exposes any divergence between the disks. *)
let probe size =
  List.concat_map (fun a -> [ read_call a; read_call a ]) (List.init size Fun.id)

let checker_config ?(may_fail = true) ?(max_crashes = 1) ?(fault_budget = 0) ~size threads :
    (world, state) Perennial_core.Refinement.config =
  Perennial_core.Refinement.config ~spec:(spec size)
    ~init_world:(init_world ~may_fail size)
    ~crash_world ~pp_world ~threads ~recovery:(recover_prog size)
    ~post:(probe size) ~max_crashes ~fault_budget ()

(* ------------------------------------------------------------------ *)
(* Seeded bugs (experiment E7, §9.5)                                   *)
(* ------------------------------------------------------------------ *)

module Buggy = struct
  (** No recovery at all: a crash between the two disk writes leaves the
      disks diverged forever. *)
  let recover_nop : (world, V.t) P.t = P.return V.unit

  (** "Zero both disks to make them agree": reverts completed writes,
      violating durability. *)
  let recover_zero size : (world, V.t) P.t =
    let rec loop a =
      if a >= size then P.return V.unit
      else
        let* () = disk_write d1 a Block.zero in
        let* () = disk_write d2 a Block.zero in
        loop (a + 1)
    in
    loop 0

  (** Recovery that only repairs address 0, missing divergence elsewhere. *)
  let recover_partial _size : (world, V.t) P.t =
    let* r1 = disk_read d1 0 in
    match V.get_opt r1 with
    | Some v ->
      let* () = disk_write d2 0 (Block.of_value v) in
      P.return V.unit
    | None -> P.return V.unit

  (** Write without taking the per-address lock: two concurrent writers can
      install different orders on the two disks. *)
  let write_prog_unlocked a v : (world, V.t) P.t =
    let b = Block.of_value v in
    let* () = disk_write d1 a b in
    let* () = disk_write d2 a b in
    P.return V.unit

  let write_call_unlocked a v =
    (Spec.call "rd_write" [ V.int a; v ], write_prog_unlocked a v)

  (** Write that releases the lock between the two disk writes: the lock no
      longer covers the critical section. *)
  let write_prog_early_unlock a v : (world, V.t) P.t =
    let b = Block.of_value v in
    let* () = lock a in
    let* () = disk_write d1 a b in
    let* () = unlock a in
    let* () = disk_write d2 a b in
    P.return V.unit

  let write_call_early_unlock a v =
    (Spec.call "rd_write" [ V.int a; v ], write_prog_early_unlock a v)

  (** Fault-handling bug #1 — "retry without re-read": on a transient read
      error the code returns its (zero-filled) I/O buffer instead of
      re-issuing the read, fabricating a zero block.  The spec's error arm
      only permits the distinguished EIO value, so one injected
      [Read_error] against an address holding non-zero data produces a
      counterexample (fault budget 1, no crash needed). *)
  let read_ft_no_retry a : (world, V.t) P.t =
    let* () = lock a in
    let* r = disk_read_f d1 a in
    let* v =
      if Fault.is_eio r then P.return (Block.to_value Block.zero)
      else
        match V.get_opt r with
        | Some v -> P.return v
        | None ->
          let* r2 = disk_read_f d2 a in
          if Fault.is_eio r2 then P.return Fault.err_value
          else (
            match V.get_opt r2 with
            | Some v -> P.return v
            | None -> P.return Fault.err_value)
    in
    let* () = unlock a in
    P.return v

  let read_ft_call_no_retry a = (Spec.call "rd_read_ft" [ V.int a ], read_ft_no_retry a)
end
