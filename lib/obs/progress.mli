(** Live progress reporting for long-running checks.

    When enabled, {!tick} prints a rate-limited one-line status to the
    configured channel (stderr by default): executions explored,
    executions/sec, current step count, frontier depth, fault-schedule
    index, and — when a wall-clock budget is known — an ETA.  Disabled
    by default; ticks are a single branch when off. *)

val enable : ?interval_s:float -> ?out:out_channel -> unit -> unit
(** Turn reporting on. [interval_s] is the minimum gap between printed
    lines (default 1.0s). *)

val disable : unit -> unit
val enabled : unit -> bool

val tick :
  executions:int ->
  steps:int ->
  frontier:int ->
  fault_schedule:int ->
  ?deadline_us:float ->
  unit ->
  unit
(** Record progress; prints at most once per interval.  [deadline_us]
    is the absolute wall-clock deadline (same clock as
    {!Trace.now_us}) used to derive the remaining-budget ETA. *)

val finish : unit -> unit
(** Print a final line (if enabled) and reset the rate limiter. *)
