type kind = Crash | Fault | Arm

let kind_name = function Crash -> "crash" | Fault -> "fault" | Arm -> "arm"

let on = ref false
let enabled () = !on
let set_enabled b = on := b

(* (kind, id) -> hit count.  Registration inserts with 0.  One mutex guards
   the table and every cell: parallel exploration hammers [hit] from all
   domains and the totals must be exact (test/test_parallel.ml). *)
let table : (kind * string, int ref) Hashtbl.t = Hashtbl.create 256
let lock = Mutex.create ()

let with_lock f =
  Mutex.lock lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock lock) f

let reset () = with_lock (fun () -> Hashtbl.reset table)

let cell k id =
  match Hashtbl.find_opt table (k, id) with
  | Some r -> r
  | None ->
    let r = ref 0 in
    Hashtbl.add table (k, id) r;
    r

let register k id = if !on then with_lock (fun () -> ignore (cell k id))

let hit k id =
  if !on then
    with_lock (fun () ->
        let r = cell k id in
        incr r)

let kind_order = function Crash -> 0 | Fault -> 1 | Arm -> 2

let sites () =
  with_lock (fun () -> Hashtbl.fold (fun (k, id) r acc -> (k, id, !r) :: acc) table [])
  |> List.sort (fun (k1, i1, _) (k2, i2, _) ->
         match compare (kind_order k1) (kind_order k2) with
         | 0 -> compare i1 i2
         | c -> c)

type summary = { total : int; covered : int; vacuous : (kind * string) list }

let summarize ?kind () =
  let all = sites () in
  let all = match kind with None -> all | Some k -> List.filter (fun (k', _, _) -> k' = k) all in
  let covered = List.length (List.filter (fun (_, _, n) -> n > 0) all) in
  let vacuous = List.filter_map (fun (k, id, n) -> if n = 0 then Some (k, id) else None) all in
  { total = List.length all; covered; vacuous }

let report_json () =
  let all = sites () in
  let per_kind k =
    let s = summarize ~kind:k () in
    let sites_j =
      List.filter_map
        (fun (k', id, n) ->
          if k' = k then Some (Json.Obj [ ("id", Json.Str id); ("hits", Json.Int n) ]) else None)
        all
    in
    ( kind_name k,
      Json.Obj
        [ ("total", Json.Int s.total);
          ("covered", Json.Int s.covered);
          ("sites", Json.Arr sites_j) ] )
  in
  let s = summarize () in
  Json.Obj
    [ ("schema", Json.Str "perennial-coverage/v1");
      ("total", Json.Int s.total);
      ("covered", Json.Int s.covered);
      per_kind Crash;
      per_kind Fault;
      per_kind Arm;
      ( "vacuous",
        Json.Arr
          (List.map
             (fun (k, id) ->
               Json.Obj [ ("kind", Json.Str (kind_name k)); ("id", Json.Str id) ])
             s.vacuous) ) ]

let pp_report ppf () =
  let pct c t = if t = 0 then 100. else 100. *. float_of_int c /. float_of_int t in
  Format.fprintf ppf "coverage (perennial-coverage/v1):@,";
  List.iter
    (fun k ->
      let s = summarize ~kind:k () in
      Format.fprintf ppf "  %-5s sites: %d/%d covered (%.1f%%)@," (kind_name k) s.covered
        s.total
        (pct s.covered s.total))
    [ Crash; Fault; Arm ];
  let s = summarize () in
  if s.vacuous = [] then Format.fprintf ppf "  no vacuous sites@,"
  else begin
    Format.fprintf ppf "  VACUOUS (registered, never exercised):@,";
    List.iter
      (fun (k, id) -> Format.fprintf ppf "    [%s] %s@," (kind_name k) id)
      s.vacuous
  end
