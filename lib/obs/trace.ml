type arg = I of int | F of float | S of string | B of bool

type phase =
  | Span_begin
  | Span_end
  | Complete of float
  | Instant

type event = {
  name : string;
  cat : string;
  ph : phase;
  ts : float;
  pid : int;
  tid : int;
  args : (string * arg) list;
}

type sink =
  | Null
  | Memory
  | Jsonl of out_channel
  | Chrome of out_channel

let current : sink ref = ref Null
let on = ref false
let buffer : event list ref = ref [] (* newest first; Memory and Chrome *)
let buffered = ref 0
let limit = ref 200_000
let n_dropped = ref 0

let enabled () = !on
let dropped () = !n_dropped
let set_limit n = limit := n

let clock : (unit -> float) ref = ref (fun () -> Unix.gettimeofday () *. 1e6)
let now_us () = !clock ()
let set_clock f = clock := f

(* ------------------------------------------------------------------ *)
(* Serialization                                                       *)
(* ------------------------------------------------------------------ *)

let arg_json = function
  | I i -> Json.Int i
  | F f -> Json.Float f
  | S s -> Json.Str s
  | B b -> Json.Bool b

let event_json e =
  let ph, dur =
    match e.ph with
    | Span_begin -> ("B", None)
    | Span_end -> ("E", None)
    | Complete d -> ("X", Some d)
    | Instant -> ("i", None)
  in
  let base =
    [ ("name", Json.Str e.name);
      ("cat", Json.Str e.cat);
      ("ph", Json.Str ph);
      ("ts", Json.Float e.ts);
      ("pid", Json.Int e.pid);
      ("tid", Json.Int e.tid) ]
  in
  let base = match dur with Some d -> base @ [ ("dur", Json.Float d) ] | None -> base in
  let base = match e.ph with Instant -> base @ [ ("s", Json.Str "t") ] | _ -> base in
  let base =
    match e.args with
    | [] -> base
    | args -> base @ [ ("args", Json.Obj (List.map (fun (k, v) -> (k, arg_json v)) args)) ]
  in
  Json.Obj base

let chrome_json events =
  Json.Obj
    [ ("traceEvents", Json.Arr (List.map event_json events));
      ("displayTimeUnit", Json.Str "ms") ]

(* ------------------------------------------------------------------ *)
(* Sink management                                                     *)
(* ------------------------------------------------------------------ *)

let push e =
  if !buffered >= !limit then incr n_dropped
  else begin
    buffer := e :: !buffer;
    incr buffered
  end

let emit e =
  match !current with
  | Null -> ()
  | Memory | Chrome _ -> push e
  | Jsonl oc ->
    output_string oc (Json.to_string (event_json e));
    output_char oc '\n'

let reset_state () =
  buffer := [];
  buffered := 0;
  n_dropped := 0

let close () =
  (match !current with
  | Null -> ()
  | Memory -> ()
  | Jsonl oc ->
    flush oc;
    close_out oc
  | Chrome oc ->
    output_string oc (Json.to_string (chrome_json (List.rev !buffer)));
    output_char oc '\n';
    close_out oc);
  current := Null;
  on := false;
  reset_state ()

let install s =
  close ();
  current := s;
  on := s <> Null

let install_memory () = install Memory
let open_jsonl path = install (Jsonl (open_out path))
let open_chrome path = install (Chrome (open_out path))
let memory_events () = List.rev !buffer

(* ------------------------------------------------------------------ *)
(* Emitting helpers                                                    *)
(* ------------------------------------------------------------------ *)

let instant ?(cat = "") ?(tid = 0) ?(args = []) name =
  if !on then emit { name; cat; ph = Instant; ts = now_us (); pid = 1; tid; args }

let with_span ?(cat = "") ?(tid = 0) ?(args = []) name f =
  if not !on then f ()
  else begin
    let t0 = now_us () in
    Fun.protect
      ~finally:(fun () ->
        let t1 = now_us () in
        emit { name; cat; ph = Complete (t1 -. t0); ts = t0; pid = 1; tid; args })
      f
  end
