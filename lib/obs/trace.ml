type arg = I of int | F of float | S of string | B of bool

type phase =
  | Span_begin
  | Span_end
  | Complete of float
  | Instant

type event = {
  name : string;
  cat : string;
  ph : phase;
  ts : float;
  pid : int;
  tid : int;
  args : (string * arg) list;
}

type sink =
  | Null
  | Memory
  | Jsonl of out_channel
  | Chrome of out_channel

let current : sink ref = ref Null
let on = ref false
let buffer : event list ref = ref [] (* newest first; Memory and Chrome *)
let buffered = ref 0
let limit = ref 200_000
let n_dropped = ref 0

let enabled () = !on
let dropped () = !n_dropped
let set_limit n = limit := n

let clock : (unit -> float) ref = ref (fun () -> Unix.gettimeofday () *. 1e6)
let now_us () = !clock ()
let set_clock f = clock := f

(* ------------------------------------------------------------------ *)
(* Serialization                                                       *)
(* ------------------------------------------------------------------ *)

let arg_json = function
  | I i -> Json.Int i
  | F f -> Json.Float f
  | S s -> Json.Str s
  | B b -> Json.Bool b

let event_json e =
  let ph, dur =
    match e.ph with
    | Span_begin -> ("B", None)
    | Span_end -> ("E", None)
    | Complete d -> ("X", Some d)
    | Instant -> ("i", None)
  in
  let base =
    [ ("name", Json.Str e.name);
      ("cat", Json.Str e.cat);
      ("ph", Json.Str ph);
      ("ts", Json.Float e.ts);
      ("pid", Json.Int e.pid);
      ("tid", Json.Int e.tid) ]
  in
  let base = match dur with Some d -> base @ [ ("dur", Json.Float d) ] | None -> base in
  let base = match e.ph with Instant -> base @ [ ("s", Json.Str "t") ] | _ -> base in
  let base =
    match e.args with
    | [] -> base
    | args -> base @ [ ("args", Json.Obj (List.map (fun (k, v) -> (k, arg_json v)) args)) ]
  in
  Json.Obj base

let chrome_json events =
  Json.Obj
    [ ("traceEvents", Json.Arr (List.map event_json events));
      ("displayTimeUnit", Json.Str "ms") ]

(* ------------------------------------------------------------------ *)
(* Sink management                                                     *)
(* ------------------------------------------------------------------ *)

(* One mutex guards the buffer, the jsonl channel and the span stacks:
   tracing from parallel exploration domains must not corrupt them.  The
   [!on] fast path stays lock-free. *)
let lock = Mutex.create ()

let with_lock f =
  Mutex.lock lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock lock) f

let push e =
  if !buffered >= !limit then incr n_dropped
  else begin
    buffer := e :: !buffer;
    incr buffered
  end

let emit e =
  with_lock (fun () ->
      match !current with
      | Null -> ()
      | Memory | Chrome _ -> push e
      | Jsonl oc ->
        output_string oc (Json.to_string (event_json e));
        output_char oc '\n')

let reset_state () =
  buffer := [];
  buffered := 0;
  n_dropped := 0

let close () =
  (match !current with
  | Null -> ()
  | Memory -> ()
  | Jsonl oc ->
    flush oc;
    close_out oc
  | Chrome oc ->
    output_string oc (Json.to_string (chrome_json (List.rev !buffer)));
    output_char oc '\n';
    close_out oc);
  current := Null;
  on := false;
  reset_state ()

let install s =
  close ();
  current := s;
  on := s <> Null

let install_memory () = install Memory
let open_jsonl path = install (Jsonl (open_out path))
let open_chrome path = install (Chrome (open_out path))
let memory_events () = with_lock (fun () -> List.rev !buffer)

(* ------------------------------------------------------------------ *)
(* Emitting helpers                                                    *)
(* ------------------------------------------------------------------ *)

let instant ?(cat = "") ?(tid = 0) ?(args = []) name =
  if !on then emit { name; cat; ph = Instant; ts = now_us (); pid = 1; tid; args }

(* ------------------------------------------------------------------ *)
(* Span context: per-tid stacks of open spans with parent links         *)
(* ------------------------------------------------------------------ *)

type open_span = { sp_id : int; sp_name : string; sp_cat : string; sp_t0 : float }

let next_span_id = ref 0
let stacks : (int, open_span list) Hashtbl.t = Hashtbl.create 8

let stack_of tid = Option.value ~default:[] (Hashtbl.find_opt stacks tid)

let reset_spans () =
  with_lock (fun () ->
      Hashtbl.reset stacks;
      next_span_id := 0)

let span_depth ?(tid = 0) () = with_lock (fun () -> List.length (stack_of tid))

(* The stack updates run under the lock but the emits happen outside it
   (the mutex is not reentrant and [emit] locks too). *)
let span_begin ?(cat = "") ?(tid = 0) ?(args = []) name =
  if !on then begin
    let t0 = now_us () in
    let id, parent =
      with_lock (fun () ->
          let id = !next_span_id in
          incr next_span_id;
          let parent =
            match stack_of tid with [] -> [] | p :: _ -> [ ("parent", I p.sp_id) ]
          in
          Hashtbl.replace stacks tid
            ({ sp_id = id; sp_name = name; sp_cat = cat; sp_t0 = t0 } :: stack_of tid);
          (id, parent))
    in
    emit
      { name; cat; ph = Span_begin; ts = t0; pid = 1; tid;
        args = (("span", I id) :: parent) @ args }
  end

let span_end ?(tid = 0) () =
  if not !on then None
  else
    match
      with_lock (fun () ->
          match stack_of tid with
          | [] -> None
          | sp :: rest ->
            Hashtbl.replace stacks tid rest;
            Some sp)
    with
    | None -> None
    | Some sp ->
      let t1 = now_us () in
      emit
        { name = sp.sp_name; cat = sp.sp_cat; ph = Span_end; ts = t1; pid = 1; tid;
          args = [ ("span", I sp.sp_id) ] };
      Some (t1 -. sp.sp_t0)

let with_span ?(cat = "") ?(tid = 0) ?(args = []) name f =
  if not !on then f ()
  else begin
    let t0 = now_us () in
    Fun.protect
      ~finally:(fun () ->
        let t1 = now_us () in
        emit { name; cat; ph = Complete (t1 -. t0); ts = t0; pid = 1; tid; args })
      f
  end
