(** Site registry + coverage accounting for the refinement checker.

    Every crash point, fault point, and spec arm the checker {e could}
    exercise registers a stable site id here; every site it actually
    {e does} exercise records a hit.  After a check, the report tells
    you which sites were covered, and the vacuity detector flags sites
    that were registered but never hit — a check that "passes" without
    ever injecting a crash at some step, or never taking a spec's error
    arm, is vacuous evidence for that site.

    Site-id stability rules (see DESIGN.md S20): ids are derived from
    program-step labels, spec names, and fault-kind names — never from
    exploration order, timestamps, or memory addresses — so the same
    check produces the same id set across runs, strategies, and
    machines.  Coverage is disabled by default (zero cost on the hot
    loop); {!set_enabled} turns it on for a run. *)

type kind =
  | Crash  (** a crash-injection point: [<phase>:<step label>] *)
  | Fault  (** a fault-injection point: [<step label>:<fault kind>] *)
  | Arm  (** a spec outcome arm: [<spec name>:<op>:<ok|err>] *)

val kind_name : kind -> string

val enabled : unit -> bool
val set_enabled : bool -> unit

val reset : unit -> unit
(** Forget all registered sites and hits. *)

val register : kind -> string -> unit
(** Declare that a site exists (0 hits so far is fine). No-op when disabled. *)

val hit : kind -> string -> unit
(** Register the site if new and increment its hit count. No-op when disabled. *)

val sites : unit -> (kind * string * int) list
(** All registered sites with hit counts, sorted by (kind, id). *)

type summary = {
  total : int;
  covered : int;  (** sites with at least one hit *)
  vacuous : (kind * string) list;  (** registered but never hit *)
}

val summarize : ?kind:kind -> unit -> summary
(** Summary over all sites, or over one [kind]. *)

val report_json : unit -> Json.t
(** The [perennial-coverage/v1] report: per-kind totals, per-site hit
    counts, and the vacuity list. *)

val pp_report : Format.formatter -> unit -> unit
(** Human-readable coverage report ([--coverage] output). *)
