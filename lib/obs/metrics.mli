(** A zero-dependency metrics registry: counters, gauges and histograms,
    each identified by a name plus a label set.

    Handles are resolved once (get-or-create, typically at module
    initialization) and updating through a handle is a single mutable-field
    write, so instrumentation left in a hot path costs a few nanoseconds —
    the checkers keep their handles in module-level bindings and bump them
    unconditionally.

    The {!default} registry is the process-wide one used by the
    instrumented subsystems ([lib/core], [lib/sched], [lib/mcsim],
    [lib/goose]); fresh registries exist mainly for tests. *)

type labels = (string * string) list
(** Label pairs; order is irrelevant (canonicalized by key). *)

type registry

val create : unit -> registry
val default : registry

val reset : registry -> unit
(** Zero every metric's value.  Handles stay valid, which is how tests and
    the bench harness take per-section deltas. *)

(** {2 Counters} — monotonically non-decreasing integers *)

type counter

val counter : ?registry:registry -> ?labels:labels -> string -> counter
(** Get or create.  Raises [Invalid_argument] if the name+labels pair is
    already registered as a different metric kind. *)

val inc : ?by:int -> counter -> unit
(** Raises [Invalid_argument] on a negative increment (monotonicity). *)

val counter_value : counter -> int

(** {2 Gauges} — floats that can move both ways *)

type gauge

val gauge : ?registry:registry -> ?labels:labels -> string -> gauge
val set : gauge -> float -> unit
val add : gauge -> float -> unit

val record_max : gauge -> float -> unit
(** Set the gauge to [max current v] — high-water-mark tracking. *)

val gauge_value : gauge -> float

(** {2 Histograms} — cumulative-bucket distributions *)

type histogram

val histogram :
  ?registry:registry -> ?labels:labels -> ?buckets:float list -> string -> histogram
(** [buckets] are upper bounds (sorted ascending internally); an implicit
    +infinity bucket always exists.  The default buckets suit latencies in
    seconds: 5us .. 10s in a 1-2.5-5 progression. *)

val observe : histogram -> float -> unit
val hist_count : histogram -> int
val hist_sum : histogram -> float

val hist_buckets : histogram -> (float * int) list
(** [(upper_bound, cumulative_count)] pairs, ending with [(infinity, count)]. *)

(** {2 Snapshots} *)

type value =
  | Counter of int
  | Gauge of float
  | Histogram of { sum : float; count : int; buckets : (float * int) list }

type sample = { name : string; labels : labels; value : value }

val snapshot : ?registry:registry -> unit -> sample list
(** All metrics, sorted by name then labels. *)

val to_json : ?registry:registry -> unit -> Json.t
(** An object mapping ["name{k=v,...}"] to the metric's value (counters and
    gauges as numbers, histograms as [{sum; count; buckets}]). *)

val counters_delta : before:sample list -> after:sample list -> (string * int) list
(** Counter differences between two snapshots (only nonzero ones), keyed by
    the rendered ["name{k=v,...}"] — the per-section metrics the bench
    harness attaches to its JSON records. *)

val pp_samples : sample list Fmt.t
val pp : ?registry:registry -> unit Fmt.t
