(** Structured trace events — spans and instants with thread/phase
    attribution — behind a pluggable sink.

    With the default {!Null} sink every hook compiles to a load of one
    boolean ref and a conditional jump, so instrumentation can stay in the
    checkers' hot paths permanently.  Install a sink to capture:

    - {!Memory}: events accumulate in a buffer ({!memory_events});
    - Jsonl ({!open_jsonl}): one JSON object per line, streamed;
    - Chrome ({!open_chrome}): the Chrome [trace_event] format — load the
      file in [chrome://tracing] or [ui.perfetto.dev] to see a failing
      interleaving or a checker run on a timeline. *)

type arg = I of int | F of float | S of string | B of bool

type phase =
  | Span_begin
  | Span_end
  | Complete of float  (** a finished span carrying its duration in us *)
  | Instant

type event = {
  name : string;
  cat : string;  (** category, e.g. ["refinement"], ["crash"] *)
  ph : phase;
  ts : float;  (** microseconds since an arbitrary origin *)
  pid : int;
  tid : int;
  args : (string * arg) list;
}

(** {2 Sinks} *)

val enabled : unit -> bool
(** [false] under the [Null] sink — guard any hook whose argument
    construction is not free. *)

val install_memory : unit -> unit
val open_jsonl : string -> unit
val open_chrome : string -> unit

val close : unit -> unit
(** Flush and close the current sink (writing the Chrome trailer if
    applicable) and revert to the null sink.  Idempotent. *)

val memory_events : unit -> event list
(** Events captured since [install_memory], oldest first. *)

val dropped : unit -> int
(** Events discarded because the in-memory buffer hit its cap. *)

val set_limit : int -> unit
(** Cap on buffered events for the Memory and Chrome sinks
    (default 200_000); further events are counted in {!dropped}. *)

(** {2 Clock} *)

val now_us : unit -> float

val set_clock : (unit -> float) -> unit
(** Override the microsecond clock — deterministic tests install a
    counter. *)

(** {2 Emitting} *)

val emit : event -> unit

val instant : ?cat:string -> ?tid:int -> ?args:(string * arg) list -> string -> unit

val with_span : ?cat:string -> ?tid:int -> ?args:(string * arg) list -> string -> (unit -> 'a) -> 'a
(** Runs the thunk inside a complete-span event ([ph = Complete]); the
    event is emitted when the thunk returns (or raises — the span is still
    recorded, via [Fun.protect]).  Under the null sink this is just the
    thunk call. *)

(** {2 Span context}

    Explicit begin/end spans that carry a causal parent/child link: each
    begun span gets a fresh id and records the id of the span currently
    open on the same [tid] as its ["parent"] arg, so a sink consumer can
    reconstruct the span {e tree} of an operation as it descends layers
    (fs → txn_log → disk).  Stacks are per-tid; begin/end must nest. *)

val span_begin : ?cat:string -> ?tid:int -> ?args:(string * arg) list -> string -> unit
(** Open a span on [tid]'s stack and emit a [Span_begin] event whose args
    include [("span", I id)] and, when nested, [("parent", I parent_id)]. *)

val span_end : ?tid:int -> unit -> float option
(** Close the innermost open span on [tid], emit its [Span_end] event,
    and return its duration in microseconds ([None] if no span is open
    or tracing is off). *)

val span_depth : ?tid:int -> unit -> int
(** Number of currently-open spans on [tid]. *)

val reset_spans : unit -> unit
(** Drop all open span stacks and restart span-id numbering (tests). *)

(** {2 Serialization} *)

val event_json : event -> Json.t
(** One Chrome [trace_event] object. *)

val chrome_json : event list -> Json.t
(** The full Chrome trace document: [{"traceEvents": [...]}]. *)
