let on = ref false
let interval = ref 1.0 (* seconds *)
let chan = ref stderr
let last_print = ref neg_infinity (* Unix seconds *)
let t_start = ref 0.
let last_execs = ref 0
let last_t = ref 0.

let enabled () = !on

let enable ?(interval_s = 1.0) ?(out = stderr) () =
  on := true;
  interval := interval_s;
  chan := out;
  let now = Unix.gettimeofday () in
  t_start := now;
  last_print := neg_infinity;
  last_execs := 0;
  last_t := now

let disable () = on := false

let line ~executions ~steps ~frontier ~fault_schedule ?deadline_us () =
  let now = Unix.gettimeofday () in
  let dt = now -. !last_t in
  let rate = if dt > 0. then float_of_int (executions - !last_execs) /. dt else 0. in
  last_execs := executions;
  last_t := now;
  let eta =
    match deadline_us with
    | None -> ""
    | Some d ->
      let remaining = (d -. Trace.now_us ()) /. 1e6 in
      Printf.sprintf " budget_eta=%.0fs" (Float.max 0. remaining)
  in
  Printf.fprintf !chan
    "[perennial] execs=%d (%.0f/s) steps=%d frontier=%d fault_schedule=%d elapsed=%.1fs%s\n%!"
    executions rate steps frontier fault_schedule (now -. !t_start) eta

let lock = Mutex.create ()

let tick ~executions ~steps ~frontier ~fault_schedule ?deadline_us () =
  if !on then begin
    let now = Unix.gettimeofday () in
    if now -. !last_print >= !interval then begin
      Mutex.lock lock;
      let due = now -. !last_print >= !interval in
      if due then last_print := now;
      Mutex.unlock lock;
      if due then line ~executions ~steps ~frontier ~fault_schedule ?deadline_us ()
    end
  end

let finish () =
  if !on then last_print := neg_infinity
