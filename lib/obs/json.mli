(** A minimal JSON value type with an emitter and a parser.

    Deliberately dependency-free: the observability layer must not drag a
    JSON library into the checker's build.  The emitter produces compact
    RFC 8259 output; the parser accepts everything the emitter produces
    (and ordinary hand-written JSON), which is what the round-trip tests
    rely on. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

val to_string : t -> string
(** Compact single-line rendering.  Non-finite floats render as [null]
    (JSON has no NaN/infinity). *)

val pp : t Fmt.t

val of_string : string -> (t, string) result
(** Parse a complete JSON document; trailing non-whitespace is an error. *)

(** {2 Accessors} (total: [None] on shape mismatch) *)

val member : string -> t -> t option
val to_list : t -> t list option
val to_int : t -> int option
val to_float : t -> float option
(** [to_float] also accepts [Int]. *)

val to_str : t -> string option
