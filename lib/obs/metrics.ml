type labels = (string * string) list

let canon labels =
  List.sort (fun (a, _) (b, _) -> String.compare a b) labels

(* Domain-safety: counters are atomic ints, gauges are atomic (boxed)
   floats updated by CAS loops, histograms take a per-histogram mutex, and
   the registry table itself is guarded by a per-registry mutex.  Updating
   through a handle never touches the registry lock, so the hot path stays
   one atomic op (counters/gauges) or one uncontended lock (histograms) —
   and a 4-domain hammer loses no increments (test/test_parallel.ml). *)

type hist_state = {
  bounds : float array; (* sorted ascending; implicit +inf bucket at the end *)
  counts : int array; (* length = Array.length bounds + 1, per-bucket *)
  mutable h_sum : float;
  mutable h_count : int;
  h_lock : Mutex.t;
}

type metric =
  | M_counter of int Atomic.t
  | M_gauge of float Atomic.t
  | M_hist of hist_state

type registry = { tbl : (string * labels, metric) Hashtbl.t; lock : Mutex.t }

type counter = int Atomic.t
type gauge = float Atomic.t
type histogram = hist_state

let with_lock m f =
  Mutex.lock m;
  Fun.protect ~finally:(fun () -> Mutex.unlock m) f

let create () : registry = { tbl = Hashtbl.create 64; lock = Mutex.create () }
let default : registry = create ()

let reset (r : registry) =
  with_lock r.lock (fun () ->
      Hashtbl.iter
        (fun _ m ->
          match m with
          | M_counter c -> Atomic.set c 0
          | M_gauge g -> Atomic.set g 0.
          | M_hist h ->
            with_lock h.h_lock (fun () ->
                Array.fill h.counts 0 (Array.length h.counts) 0;
                h.h_sum <- 0.;
                h.h_count <- 0))
        r.tbl)

let kind_name = function
  | M_counter _ -> "counter"
  | M_gauge _ -> "gauge"
  | M_hist _ -> "histogram"

let resolve (r : registry) name labels (fresh : unit -> metric) ~(want : string) =
  with_lock r.lock (fun () ->
      let key = (name, canon labels) in
      match Hashtbl.find_opt r.tbl key with
      | Some m ->
        if kind_name m <> want then
          invalid_arg
            (Printf.sprintf "Obs.Metrics: %s already registered as a %s, not a %s" name
               (kind_name m) want);
        m
      | None ->
        let m = fresh () in
        Hashtbl.add r.tbl key m;
        m)

let counter ?(registry = default) ?(labels = []) name : counter =
  match
    resolve registry name labels ~want:"counter" (fun () -> M_counter (Atomic.make 0))
  with
  | M_counter c -> c
  | _ -> assert false

let inc ?(by = 1) (c : counter) =
  if by < 0 then invalid_arg "Obs.Metrics.inc: counters are monotonic";
  ignore (Atomic.fetch_and_add c by)

let counter_value (c : counter) = Atomic.get c

let gauge ?(registry = default) ?(labels = []) name : gauge =
  match resolve registry name labels ~want:"gauge" (fun () -> M_gauge (Atomic.make 0.)) with
  | M_gauge g -> g
  | _ -> assert false

let set (g : gauge) v = Atomic.set g v

let rec add (g : gauge) v =
  let cur = Atomic.get g in
  if not (Atomic.compare_and_set g cur (cur +. v)) then add g v

let rec record_max (g : gauge) v =
  let cur = Atomic.get g in
  if v > cur && not (Atomic.compare_and_set g cur v) then record_max g v

let gauge_value (g : gauge) = Atomic.get g

let default_buckets =
  [ 5e-6; 1e-5; 2.5e-5; 5e-5; 1e-4; 2.5e-4; 5e-4; 1e-3; 2.5e-3; 5e-3; 1e-2; 2.5e-2;
    5e-2; 0.1; 0.25; 0.5; 1.; 2.5; 5.; 10. ]

let histogram ?(registry = default) ?(labels = []) ?(buckets = default_buckets) name :
    histogram =
  let fresh () =
    let bounds = Array.of_list (List.sort_uniq compare buckets) in
    M_hist
      { bounds; counts = Array.make (Array.length bounds + 1) 0; h_sum = 0.;
        h_count = 0; h_lock = Mutex.create () }
  in
  match resolve registry name labels ~want:"histogram" fresh with
  | M_hist h -> h
  | _ -> assert false

let observe (h : histogram) v =
  let n = Array.length h.bounds in
  let rec bucket i = if i >= n then n else if v <= h.bounds.(i) then i else bucket (i + 1) in
  let i = bucket 0 in
  with_lock h.h_lock (fun () ->
      h.counts.(i) <- h.counts.(i) + 1;
      h.h_sum <- h.h_sum +. v;
      h.h_count <- h.h_count + 1)

let hist_count (h : histogram) = with_lock h.h_lock (fun () -> h.h_count)
let hist_sum (h : histogram) = with_lock h.h_lock (fun () -> h.h_sum)

let hist_buckets (h : histogram) =
  with_lock h.h_lock (fun () ->
      let acc = ref 0 in
      let below =
        Array.to_list
          (Array.mapi
             (fun i b ->
               acc := !acc + h.counts.(i);
               (b, !acc))
             h.bounds)
      in
      below @ [ (infinity, h.h_count) ])

(* ------------------------------------------------------------------ *)
(* Snapshots                                                           *)
(* ------------------------------------------------------------------ *)

type value =
  | Counter of int
  | Gauge of float
  | Histogram of { sum : float; count : int; buckets : (float * int) list }

type sample = { name : string; labels : labels; value : value }

let snapshot ?(registry = default) () =
  let entries =
    with_lock registry.lock (fun () ->
        Hashtbl.fold (fun k m acc -> (k, m) :: acc) registry.tbl [])
  in
  let samples =
    List.map
      (fun ((name, labels), m) ->
        let value =
          match m with
          | M_counter c -> Counter (Atomic.get c)
          | M_gauge g -> Gauge (Atomic.get g)
          | M_hist h ->
            let buckets = hist_buckets h in
            with_lock h.h_lock (fun () ->
                Histogram { sum = h.h_sum; count = h.h_count; buckets })
        in
        { name; labels; value })
      entries
  in
  List.sort
    (fun a b ->
      let c = String.compare a.name b.name in
      if c <> 0 then c else compare a.labels b.labels)
    samples

let render_key s =
  match s.labels with
  | [] -> s.name
  | ls ->
    Printf.sprintf "%s{%s}" s.name
      (String.concat "," (List.map (fun (k, v) -> Printf.sprintf "%s=%s" k v) ls))

let to_json ?(registry = default) () =
  Json.Obj
    (List.map
       (fun s ->
         let v =
           match s.value with
           | Counter c -> Json.Int c
           | Gauge g -> Json.Float g
           | Histogram { sum; count; buckets } ->
             Json.Obj
               [ ("sum", Json.Float sum);
                 ("count", Json.Int count);
                 ( "buckets",
                   Json.Arr
                     (List.map
                        (fun (b, c) ->
                          Json.Obj
                            [ ( "le",
                                if Float.is_finite b then Json.Float b
                                else Json.Str "+Inf" );
                              ("count", Json.Int c) ])
                        buckets) ) ]
         in
         (render_key s, v))
       (snapshot ~registry ()))

let counters_delta ~before ~after =
  let tbl = Hashtbl.create 32 in
  List.iter
    (fun s -> match s.value with Counter c -> Hashtbl.replace tbl (render_key s) c | _ -> ())
    before;
  List.filter_map
    (fun s ->
      match s.value with
      | Counter c ->
        let prev = Option.value ~default:0 (Hashtbl.find_opt tbl (render_key s)) in
        if c - prev <> 0 then Some (render_key s, c - prev) else None
      | _ -> None)
    after

let pp_samples ppf samples =
  List.iter
    (fun s ->
      match s.value with
      | Counter c -> Fmt.pf ppf "%-56s %d@." (render_key s) c
      | Gauge g -> Fmt.pf ppf "%-56s %g@." (render_key s) g
      | Histogram { sum; count; _ } ->
        Fmt.pf ppf "%-56s count=%d sum=%g@." (render_key s) count sum)
    samples

let pp ?(registry = default) ppf () = pp_samples ppf (snapshot ~registry ())
