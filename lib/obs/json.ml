type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

(* ------------------------------------------------------------------ *)
(* Emitter                                                             *)
(* ------------------------------------------------------------------ *)

let escape buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\b' -> Buffer.add_string buf "\\b"
      | '\012' -> Buffer.add_string buf "\\f"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

let float_repr f =
  if not (Float.is_finite f) then "null"
  else if Float.is_integer f && Float.abs f < 1e15 then
    Printf.sprintf "%.1f" f (* keep a decimal point so it re-parses as Float *)
  else
    let short = Printf.sprintf "%.12g" f in
    let s = if float_of_string short = f then short else Printf.sprintf "%.17g" f in
    if String.exists (fun c -> c = '.' || c = 'e' || c = 'E') s then s else s ^ ".0"

let rec emit buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int i -> Buffer.add_string buf (string_of_int i)
  | Float f -> Buffer.add_string buf (float_repr f)
  | Str s -> escape buf s
  | Arr xs ->
    Buffer.add_char buf '[';
    List.iteri
      (fun i x ->
        if i > 0 then Buffer.add_char buf ',';
        emit buf x)
      xs;
    Buffer.add_char buf ']'
  | Obj kvs ->
    Buffer.add_char buf '{';
    List.iteri
      (fun i (k, v) ->
        if i > 0 then Buffer.add_char buf ',';
        escape buf k;
        Buffer.add_char buf ':';
        emit buf v)
      kvs;
    Buffer.add_char buf '}'

let to_string v =
  let buf = Buffer.create 256 in
  emit buf v;
  Buffer.contents buf

let pp ppf v = Fmt.string ppf (to_string v)

(* ------------------------------------------------------------------ *)
(* Parser                                                              *)
(* ------------------------------------------------------------------ *)

exception Err of string

let of_string s =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Err (Printf.sprintf "%s at offset %d" msg !pos)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | _ -> fail (Printf.sprintf "expected '%c'" c)
  in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
      advance ();
      skip_ws ()
    | _ -> ()
  in
  let literal word v =
    let l = String.length word in
    if !pos + l <= n && String.sub s !pos l = word then begin
      pos := !pos + l;
      v
    end
    else fail (Printf.sprintf "expected %s" word)
  in
  let add_utf8 buf cp =
    if cp < 0x80 then Buffer.add_char buf (Char.chr cp)
    else if cp < 0x800 then begin
      Buffer.add_char buf (Char.chr (0xC0 lor (cp lsr 6)));
      Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3F)))
    end
    else if cp < 0x10000 then begin
      Buffer.add_char buf (Char.chr (0xE0 lor (cp lsr 12)));
      Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 6) land 0x3F)));
      Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3F)))
    end
    else begin
      Buffer.add_char buf (Char.chr (0xF0 lor (cp lsr 18)));
      Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 12) land 0x3F)));
      Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 6) land 0x3F)));
      Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3F)))
    end
  in
  let hex4 () =
    if !pos + 4 > n then fail "truncated \\u escape";
    let h = String.sub s !pos 4 in
    pos := !pos + 4;
    match int_of_string_opt ("0x" ^ h) with
    | Some v -> v
    | None -> fail "bad \\u escape"
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      match peek () with
      | None -> fail "unterminated string"
      | Some '"' ->
        advance ();
        Buffer.contents buf
      | Some '\\' ->
        advance ();
        (match peek () with
        | None -> fail "unterminated escape"
        | Some c ->
          advance ();
          (match c with
          | '"' -> Buffer.add_char buf '"'
          | '\\' -> Buffer.add_char buf '\\'
          | '/' -> Buffer.add_char buf '/'
          | 'n' -> Buffer.add_char buf '\n'
          | 'r' -> Buffer.add_char buf '\r'
          | 't' -> Buffer.add_char buf '\t'
          | 'b' -> Buffer.add_char buf '\b'
          | 'f' -> Buffer.add_char buf '\012'
          | 'u' ->
            let cp = hex4 () in
            (* surrogate pair *)
            if cp >= 0xD800 && cp <= 0xDBFF && !pos + 1 < n && s.[!pos] = '\\'
               && s.[!pos + 1] = 'u'
            then begin
              pos := !pos + 2;
              let lo = hex4 () in
              if lo >= 0xDC00 && lo <= 0xDFFF then
                add_utf8 buf (0x10000 + (((cp - 0xD800) lsl 10) lor (lo - 0xDC00)))
              else begin
                add_utf8 buf cp;
                add_utf8 buf lo
              end
            end
            else add_utf8 buf cp
          | c -> fail (Printf.sprintf "bad escape \\%c" c));
          go ())
      | Some c ->
        advance ();
        Buffer.add_char buf c;
        go ()
    in
    go ()
  in
  let parse_number () =
    let start = !pos in
    let is_float = ref false in
    if peek () = Some '-' then advance ();
    let rec digits () =
      match peek () with
      | Some '0' .. '9' ->
        advance ();
        digits ()
      | _ -> ()
    in
    digits ();
    if peek () = Some '.' then begin
      is_float := true;
      advance ();
      digits ()
    end;
    (match peek () with
    | Some ('e' | 'E') ->
      is_float := true;
      advance ();
      (match peek () with Some ('+' | '-') -> advance () | _ -> ());
      digits ()
    | _ -> ());
    let tok = String.sub s start (!pos - start) in
    if tok = "" || tok = "-" then fail "bad number";
    if !is_float then Float (float_of_string tok)
    else
      match int_of_string_opt tok with
      | Some i -> Int i
      | None -> Float (float_of_string tok)
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some 'n' -> literal "null" Null
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some '"' -> Str (parse_string ())
    | Some '[' ->
      advance ();
      skip_ws ();
      if peek () = Some ']' then begin
        advance ();
        Arr []
      end
      else begin
        let rec elems acc =
          let v = parse_value () in
          skip_ws ();
          match peek () with
          | Some ',' ->
            advance ();
            elems (v :: acc)
          | Some ']' ->
            advance ();
            List.rev (v :: acc)
          | _ -> fail "expected ',' or ']'"
        in
        Arr (elems [])
      end
    | Some '{' ->
      advance ();
      skip_ws ();
      if peek () = Some '}' then begin
        advance ();
        Obj []
      end
      else begin
        let pair () =
          skip_ws ();
          let k = parse_string () in
          skip_ws ();
          expect ':';
          let v = parse_value () in
          (k, v)
        in
        let rec pairs acc =
          let kv = pair () in
          skip_ws ();
          match peek () with
          | Some ',' ->
            advance ();
            pairs (kv :: acc)
          | Some '}' ->
            advance ();
            List.rev (kv :: acc)
          | _ -> fail "expected ',' or '}'"
        in
        Obj (pairs [])
      end
    | Some ('-' | '0' .. '9') -> parse_number ()
    | Some c -> fail (Printf.sprintf "unexpected character '%c'" c)
  in
  match
    let v = parse_value () in
    skip_ws ();
    if !pos <> n then fail "trailing garbage";
    v
  with
  | v -> Ok v
  | exception Err msg -> Error msg

(* ------------------------------------------------------------------ *)
(* Accessors                                                           *)
(* ------------------------------------------------------------------ *)

let member k = function Obj kvs -> List.assoc_opt k kvs | _ -> None
let to_list = function Arr xs -> Some xs | _ -> None
let to_int = function Int i -> Some i | _ -> None

let to_float = function
  | Float f -> Some f
  | Int i -> Some (float_of_int i)
  | _ -> None

let to_str = function Str s -> Some s | _ -> None
