(** The Goose semantics: an interpreter from the Go-subset AST into
    atomic-step programs (the "Perennial model" of the code, §6).

    Every heap, lock and file-system access is one atomic step of the
    resulting {!Sched.Prog.t}; pure local computation costs no steps.  In
    race-detection mode (the default, matching the paper), a heap store is
    *two* atomic steps — a start and an end — and any concurrent access to
    the same cell in between is undefined behaviour, which is exactly how
    Goose makes racy Go programs unverifiable (§6.1).

    The world carries the Go heap, the modeled file system and a lock map;
    a crash clears heap and locks and drops file descriptors (§6.2). *)

module V = Tslang.Value
module P = Sched.Prog
module G = Gvalue
module IMap = Map.Make (Int)
module SMap = Map.Make (String)
open P.Syntax

type heap_cell = { content : G.cell; being_written : bool }

type world = {
  heap : heap_cell IMap.t;
  next_ref : int;
  fs : Gfs.Fs.t;
  disk : Disk.Single_disk.t;
  tdisk : Disk.Two_disk.t;
  locks : Disk.Locks.t;
}

let init_world ?(dirs = []) ?(disk_size = 0) ?(tdisk_size = 0) ?(may_fail = false) () =
  {
    heap = IMap.empty;
    next_ref = 0;
    fs = Gfs.Fs.init dirs;
    disk = Disk.Single_disk.init disk_size;
    tdisk = Disk.Two_disk.init ~may_fail tdisk_size;
    locks = Disk.Locks.empty;
  }

(** Crash (§6.2): the heap and locks are volatile; files and disk blocks
    persist; file descriptors are lost. *)
let crash_world w =
  {
    heap = IMap.empty;
    next_ref = 0;
    fs = Gfs.Fs.crash w.fs;
    disk = Disk.Single_disk.crash w.disk;
    tdisk = Disk.Two_disk.crash w.tdisk;
    locks = Disk.Locks.empty;
  }

let compare_world a b =
  let c =
    IMap.compare
      (fun c1 c2 ->
        let c = G.compare_cell c1.content c2.content in
        if c <> 0 then c else Bool.compare c1.being_written c2.being_written)
      a.heap b.heap
  in
  if c <> 0 then c
  else
    let c = Int.compare a.next_ref b.next_ref in
    if c <> 0 then c
    else
      let c = Gfs.Fs.compare a.fs b.fs in
      if c <> 0 then c
      else
        let c = Disk.Single_disk.compare a.disk b.disk in
        if c <> 0 then c
        else
          let c = Disk.Two_disk.compare a.tdisk b.tdisk in
          if c <> 0 then c else Disk.Locks.compare a.locks b.locks

let pp_world ppf w =
  Fmt.pf ppf "heap{%a} %a %a"
    (Fmt.list ~sep:Fmt.comma (fun ppf (r, c) -> Fmt.pf ppf "%d:%a" r G.pp_cell c.content))
    (IMap.bindings w.heap) Gfs.Fs.pp w.fs Disk.Locks.pp w.locks

let pp_world ppf w =
  if Disk.Single_disk.size w.disk = 0 then pp_world ppf w
  else Fmt.pf ppf "%a %a" pp_world w Disk.Single_disk.pp w.disk

let get_fs w = w.fs
let set_fs w fs = { w with fs }
let get_locks w = w.locks
let set_locks w locks = { w with locks }

type config = {
  race_detect : bool;  (** model stores as two steps (§6.1) *)
  random_universe : int list;  (** the values RandomUint64 may produce *)
}

let default_config = { race_detect = true; random_universe = [ 0; 1 ] }

(** Static (pre-execution) errors: unsupported constructs, unknown
    identifiers.  Dynamic type confusion inside a run is reported as
    undefined behaviour instead. *)
exception Goose_error of string

let failf fmt = Fmt.kstr (fun s -> raise (Goose_error s)) fmt

(* Observability: executed heap steps, function calls and FFI dispatches.
   Counters are bumped as the atomic actions actually run, so under the
   exhaustive checker they count steps across all explored paths. *)
module Mx = struct
  open Obs.Metrics

  let allocs = counter "perennial_goose_allocs_total"
  let loads = counter "perennial_goose_loads_total"
  let stores = counter "perennial_goose_stores_total"
  let calls = counter "perennial_goose_func_calls_total"
  let ffi pkg = counter ~labels:[ ("pkg", pkg) ] "perennial_goose_ffi_calls_total"
  let ffi_disk = ffi "disk"
  let ffi_twodisk = ffi "twodisk"
  let ffi_filesys = ffi "filesys"
end

(* ------------------------------------------------------------------ *)
(* Heap access as atomic steps                                          *)
(* ------------------------------------------------------------------ *)

let alloc cell : (world, G.t) P.t =
  P.det "alloc" (fun w ->
      Obs.Metrics.inc Mx.allocs;
      let r = w.next_ref in
      let heap = IMap.add r { content = cell; being_written = false } w.heap in
      ({ w with heap; next_ref = r + 1 }, G.VRef r))

let read_cell r : (world, G.cell) P.t =
  P.atomic
    (Printf.sprintf "load(&%d)" r)
    (fun w ->
      match IMap.find_opt r w.heap with
      | None -> P.Ub (Printf.sprintf "load of dangling reference %d" r)
      | Some { being_written = true; _ } ->
        P.Ub (Printf.sprintf "racy load of reference %d during a store (§6.1)" r)
      | Some { content; _ } ->
        Obs.Metrics.inc Mx.loads;
        P.Steps [ (w, content) ])

(** Store: in race-detection mode this is two atomic steps with a marked
    write in between; any concurrent load or store of the same cell hits
    undefined behaviour. *)
let write_cell cfg r (f : G.cell -> (G.cell, string) result) : (world, unit) P.t =
  if cfg.race_detect then
    let* () =
      P.atomic
        (Printf.sprintf "store-start(&%d)" r)
        (fun w ->
          match IMap.find_opt r w.heap with
          | None -> P.Ub (Printf.sprintf "store to dangling reference %d" r)
          | Some { being_written = true; _ } ->
            P.Ub (Printf.sprintf "racy store to reference %d (§6.1)" r)
          | Some cell ->
            P.Steps [ ({ w with heap = IMap.add r { cell with being_written = true } w.heap }, ()) ])
    in
    P.atomic
      (Printf.sprintf "store-end(&%d)" r)
      (fun w ->
        match IMap.find_opt r w.heap with
        | Some { content; being_written = true } -> (
          match f content with
          | Ok content ->
            Obs.Metrics.inc Mx.stores;
            P.Steps
              [ ({ w with heap = IMap.add r { content; being_written = false } w.heap }, ()) ]
          | Error e -> P.Ub e)
        | Some { being_written = false; _ } | None ->
          P.Ub (Printf.sprintf "store to reference %d lost its write mark" r))
  else
    P.atomic
      (Printf.sprintf "store(&%d)" r)
      (fun w ->
        match IMap.find_opt r w.heap with
        | None -> P.Ub (Printf.sprintf "store to dangling reference %d" r)
        | Some { content; _ } -> (
          match f content with
          | Ok content ->
            Obs.Metrics.inc Mx.stores;
            P.Steps
              [ ({ w with heap = IMap.add r { content; being_written = false } w.heap }, ()) ]
          | Error e -> P.Ub e))

(* ------------------------------------------------------------------ *)
(* Environments                                                         *)
(* ------------------------------------------------------------------ *)

type env = G.t SMap.t

(* ------------------------------------------------------------------ *)
(* The interpreter                                                      *)
(* ------------------------------------------------------------------ *)

type outcome =
  | Next of env
  | Ret of G.t
  | Brk of env
  | Cont of env

(* Go scoping: a block's assignments to variables of the enclosing scope
   persist; its own declarations do not.  [merge_scope outer inner] keeps
   the outer domain with the inner values. *)
let merge_scope outer inner =
  SMap.mapi (fun x v -> match SMap.find_opt x inner with Some v' -> v' | None -> v) outer

let as_int = function G.VInt n -> n | v -> failf "expected uint64, got %a" G.pp v
let as_bool = function G.VBool b -> b | v -> failf "expected bool, got %a" G.pp v
let as_string = function G.VString s -> s | v -> failf "expected string, got %a" G.pp v
let as_ref = function G.VRef r -> r | v -> failf "expected reference, got %a" G.pp v

let eval_binop op a b =
  let module A = Ast in
  match op, a, b with
  | A.Add, G.VInt x, G.VInt y -> G.VInt (x + y)
  | A.Add, G.VString x, G.VString y -> G.VString (x ^ y)
  | A.Sub, G.VInt x, G.VInt y -> G.VInt (x - y)
  | A.Mul, G.VInt x, G.VInt y -> G.VInt (x * y)
  | A.Div, G.VInt x, G.VInt y ->
    if y = 0 then failf "division by zero" else G.VInt (x / y)
  | A.Mod, G.VInt x, G.VInt y ->
    if y = 0 then failf "modulo by zero" else G.VInt (x mod y)
  | A.Eq, x, y -> G.VBool (G.equal x y)
  | A.Ne, x, y -> G.VBool (not (G.equal x y))
  | A.Lt, G.VInt x, G.VInt y -> G.VBool (x < y)
  | A.Gt, G.VInt x, G.VInt y -> G.VBool (x > y)
  | A.Le, G.VInt x, G.VInt y -> G.VBool (x <= y)
  | A.Ge, G.VInt x, G.VInt y -> G.VBool (x >= y)
  | A.Lt, G.VString x, G.VString y -> G.VBool (String.compare x y < 0)
  | A.Gt, G.VString x, G.VString y -> G.VBool (String.compare x y > 0)
  | A.And, G.VBool x, G.VBool y -> G.VBool (x && y)
  | A.Or, G.VBool x, G.VBool y -> G.VBool (x || y)
  | _ -> failf "type error in binary operation %a" Ast.pp_binop op

type t = {
  file : Ast.file;
  cfg : config;
}

let make ?(cfg = default_config) file = { file; cfg }

let rec eval (it : t) (env : env) (e : Ast.expr) : (world, G.t) P.t =
  match e with
  | Ast.Int_lit n -> P.return (G.VInt n)
  | Ast.Bool_lit b -> P.return (G.VBool b)
  | Ast.Str_lit s -> P.return (G.VString s)
  | Ast.Ident x -> (
    match SMap.find_opt x env with
    | Some v -> P.return v
    | None -> (
      match List.assoc_opt x it.file.Ast.consts with
      | Some ce -> eval it env ce
      | None -> failf "unbound identifier %s" x))
  | Ast.Binop (Ast.And, a, b) ->
    (* short-circuit *)
    let* va = eval it env a in
    if as_bool va then eval it env b else P.return (G.VBool false)
  | Ast.Binop (Ast.Or, a, b) ->
    let* va = eval it env a in
    if as_bool va then P.return (G.VBool true) else eval it env b
  | Ast.Binop (op, a, b) ->
    let* va = eval it env a in
    let* vb = eval it env b in
    P.return (eval_binop op va vb)
  | Ast.Unop (Ast.Not, a) ->
    let* va = eval it env a in
    P.return (G.VBool (not (as_bool va)))
  | Ast.Unop (Ast.Neg, a) ->
    let* va = eval it env a in
    P.return (G.VInt (-as_int va))
  | Ast.Call (path, args) -> eval_call it env path args
  | Ast.Index (e1, e2) ->
    let* v1 = eval it env e1 in
    let* ix = eval it env e2 in
    (match v1 with
    | G.VRef r ->
      let* cell = read_cell r in
      (match cell, ix with
      | G.CSlice vs, G.VInt i ->
        if i < 0 || i >= List.length vs then P.ub "slice index out of range"
        else P.return (List.nth vs i)
      | G.CBytes s, G.VInt i ->
        if i < 0 || i >= String.length s then P.ub "byte-slice index out of range"
        else P.return (G.VInt (Char.code s.[i]))
      | G.CMap kvs, k -> (
        match List.assoc_opt k kvs with
        | Some v -> P.return v
        | None -> P.return (zero_of_map_range it))
      | _ -> failf "index on non-indexable value")
    | G.VString s ->
      let i = as_int ix in
      if i < 0 || i >= String.length s then P.ub "string index out of range"
      else P.return (G.VInt (Char.code s.[i]))
    | v -> failf "index on %a" G.pp v)
  | Ast.Map_lookup2 (me, ke) ->
    let* m = eval it env me in
    let* k = eval it env ke in
    let* cell = read_cell (as_ref m) in
    (match cell with
    | G.CMap kvs -> (
      match List.assoc_opt k kvs with
      | Some v -> P.return (G.VTuple [ v; G.VBool true ])
      | None -> P.return (G.VTuple [ zero_of_map_range it; G.VBool false ]))
    | _ -> failf "two-result lookup on non-map")
  | Ast.Field (e1, f) ->
    let* v1 = eval it env e1 in
    (match v1 with
    | G.VStruct fields -> (
      match List.assoc_opt f fields with
      | Some v -> P.return v
      | None -> failf "no field %s" f)
    | G.VRef r ->
      let* cell = read_cell r in
      (match cell with
      | G.CCell (G.VStruct fields) -> (
        match List.assoc_opt f fields with
        | Some v -> P.return v
        | None -> failf "no field %s" f)
      | _ -> failf "field access through non-struct pointer")
    | v -> failf "field access on %a" G.pp v)
  | Ast.Slice_lit (t, elems) ->
    let rec go acc = function
      | [] -> P.return (List.rev acc)
      | e :: rest ->
        let* v = eval it env e in
        go (v :: acc) rest
    in
    let* vs = go [] elems in
    (match t with
    | Ast.Tbyte ->
      let bytes = String.init (List.length vs) (fun i -> Char.chr (as_int (List.nth vs i) land 255)) in
      alloc (G.CBytes bytes)
    | _ -> alloc (G.CSlice vs))
  | Ast.Struct_lit (name, fields) ->
    let decl =
      match Ast.find_struct it.file name with
      | Some d -> d
      | None -> failf "unknown struct %s" name
    in
    let rec go acc = function
      | [] -> P.return (List.rev acc)
      | (f, e) :: rest ->
        let* v = eval it env e in
        go ((f, v) :: acc) rest
    in
    let* given = go [] fields in
    let all =
      List.map
        (fun (f, ft) ->
          match List.assoc_opt f given with
          | Some v -> (f, v)
          | None -> (f, zero_value it ft))
        decl.Ast.sfields
    in
    P.return (G.VStruct all)
  | Ast.Make_map (_, _) -> alloc (G.CMap [])
  | Ast.Make_slice (elt, n) ->
    let* vn = eval it env n in
    (match elt with
    | Ast.Tbyte -> alloc (G.CBytes (String.make (as_int vn) '\000'))
    | _ -> alloc (G.CSlice (List.init (as_int vn) (fun _ -> zero_value it elt))))
  | Ast.Len e1 ->
    let* v1 = eval it env e1 in
    (match v1 with
    | G.VString s -> P.return (G.VInt (String.length s))
    | G.VRef r ->
      let* cell = read_cell r in
      (match cell with
      | G.CSlice vs -> P.return (G.VInt (List.length vs))
      | G.CBytes s -> P.return (G.VInt (String.length s))
      | G.CMap kvs -> P.return (G.VInt (List.length kvs))
      | G.CCell _ -> failf "len of pointer")
    | v -> failf "len of %a" G.pp v)
  | Ast.Append (se, elems) ->
    let* sv = eval it env se in
    let r = as_ref sv in
    let rec go acc = function
      | [] -> P.return (List.rev acc)
      | e :: rest ->
        let* v = eval it env e in
        go (v :: acc) rest
    in
    let* vs = go [] elems in
    let* () =
      write_cell it.cfg r (fun cell ->
          match cell with
          | G.CSlice old -> Ok (G.CSlice (old @ vs))
          | G.CBytes old ->
            Ok
              (G.CBytes
                 (old
                 ^ String.init (List.length vs) (fun i ->
                       Char.chr (as_int (List.nth vs i) land 255))))
          | _ -> Error "append to non-slice")
    in
    P.return (G.VRef r)
  | Ast.Sub_slice (se, lo, hi) ->
    let* sv = eval it env se in
    let* vlo = match lo with Some e -> eval it env e | None -> P.return (G.VInt 0) in
    (match sv with
    | G.VString s ->
      let* vhi =
        match hi with Some e -> eval it env e | None -> P.return (G.VInt (String.length s))
      in
      let a = as_int vlo and b = as_int vhi in
      if a < 0 || b > String.length s || a > b then P.ub "string slice out of range"
      else P.return (G.VString (String.sub s a (b - a)))
    | G.VRef r ->
      let* cell = read_cell r in
      (match cell with
      | G.CBytes s ->
        let* vhi =
          match hi with
          | Some e -> eval it env e
          | None -> P.return (G.VInt (String.length s))
        in
        let a = as_int vlo and b = as_int vhi in
        if a < 0 || b > String.length s || a > b then P.ub "byte-slice slice out of range"
        else alloc (G.CBytes (String.sub s a (b - a)))
      | G.CSlice vs ->
        let* vhi =
          match hi with
          | Some e -> eval it env e
          | None -> P.return (G.VInt (List.length vs))
        in
        let a = as_int vlo and b = as_int vhi in
        if a < 0 || b > List.length vs || a > b then P.ub "slice out of range"
        else alloc (G.CSlice (List.filteri (fun i _ -> i >= a && i < b) vs))
      | _ -> failf "slice of non-slice")
    | v -> failf "slice of %a" G.pp v)
  | Ast.Addr_of e1 ->
    let* v1 = eval it env e1 in
    alloc (G.CCell v1)
  | Ast.Deref e1 ->
    let* v1 = eval it env e1 in
    let* cell = read_cell (as_ref v1) in
    (match cell with
    | G.CCell v -> P.return v
    | _ -> failf "dereference of non-pointer cell")
  | Ast.Conv (t, e1) ->
    let* v1 = eval it env e1 in
    (match t, v1 with
    | Ast.Tstring, G.VString s -> P.return (G.VString s)
    | Ast.Tstring, G.VRef r ->
      let* cell = read_cell r in
      (match cell with
      | G.CBytes s -> P.return (G.VString s)
      | _ -> failf "string(...) of non-bytes")
    | Ast.Tslice Ast.Tbyte, G.VString s -> alloc (G.CBytes s)
    | Ast.Tuint64, G.VInt n -> P.return (G.VInt n)
    | Ast.Tbyte, G.VInt n -> P.return (G.VInt (n land 255))
    | _ -> failf "unsupported conversion to %a" Ast.pp_typ t)

and zero_value it = function
  | Ast.Tuint64 | Ast.Tbyte -> G.VInt 0
  | Ast.Tbool -> G.VBool false
  | Ast.Tstring -> G.VString ""
  | Ast.Tnamed name -> (
    match Ast.find_struct it.file name with
    | Some d -> G.VStruct (List.map (fun (f, ft) -> (f, zero_value it ft)) d.Ast.sfields)
    | None -> failf "unknown type %s" name)
  | Ast.Tslice _ | Ast.Tmap _ | Ast.Tptr _ -> G.VUnit (* nil; unusable until assigned *)
  | Ast.Tunit -> G.VUnit
  | Ast.Ttuple _ -> G.VUnit

and zero_of_map_range _it = G.VInt 0
(* a simplification: map lookups of absent keys return the uint64 zero
   value; Goose code in this repository only uses uint64/string ranges
   where absent lookups are guarded by the ok flag *)

(* --- calls --- *)

and eval_args it env args =
  let rec go acc = function
    | [] -> P.return (List.rev acc)
    | e :: rest ->
      let* v = eval it env e in
      go (v :: acc) rest
  in
  go [] args

and eval_call it env path args : (world, G.t) P.t =
  let* vs = eval_args it env args in
  match path with
  | [ "filesys"; fn ] -> filesys_call fn vs
  | [ "disk"; fn ] -> disk_call fn vs
  | [ "twodisk"; fn ] -> twodisk_call fn vs
  | [ "machine"; "RandomUint64" ] ->
    P.atomic "RandomUint64" (fun w ->
        P.Steps (List.map (fun n -> (w, G.VInt n)) it.cfg.random_universe))
  | [ "machine"; "UInt64ToString" ] -> (
    match vs with
    | [ G.VInt n ] -> P.return (G.VString (string_of_int n))
    | _ -> failf "UInt64ToString expects one uint64")
  | [ "sync"; "Lock" ] -> (
    match vs with
    | [ G.VInt id ] ->
      let* () = Disk.Locks.acquire ~get:get_locks ~set:set_locks id in
      P.return G.VUnit
    | _ -> failf "sync.Lock expects a lock id")
  | [ "sync"; "Unlock" ] -> (
    match vs with
    | [ G.VInt id ] ->
      let* () = Disk.Locks.release ~get:get_locks ~set:set_locks id in
      P.return G.VUnit
    | _ -> failf "sync.Unlock expects a lock id")
  | [ name ] -> (
    match Ast.find_func it.file name with
    | Some f -> call_func it f vs
    | None -> failf "unknown function %s" name)
  | _ -> failf "unknown package function %s" (String.concat "." path)

and disk_call fn vs : (world, G.t) P.t =
  Obs.Metrics.inc Mx.ffi_disk;
  match fn, vs with
  | "Read", [ G.VInt a ] ->
    let* b =
      P.atomic
        (Printf.sprintf "disk.Read(%d)" a)
        (fun w ->
          if Disk.Single_disk.in_bounds w.disk a then
            P.Steps [ (w, Disk.Block.to_string (Disk.Single_disk.get w.disk a)) ]
          else P.Ub (Printf.sprintf "disk.Read out of bounds: %d" a))
    in
    alloc (G.CBytes b)
  | "Write", [ G.VInt a; data ] ->
    let* bytes =
      match data with
      | G.VString s -> P.return s
      | G.VRef r ->
        let* cell = read_cell r in
        (match cell with
        | G.CBytes s -> P.return s
        | _ -> failf "disk.Write expects bytes")
      | v -> failf "disk.Write expects bytes, got %a" G.pp v
    in
    let* _ =
      P.atomic
        (Printf.sprintf "disk.Write(%d)" a)
        (fun w ->
          if Disk.Single_disk.in_bounds w.disk a then
            P.Steps
              [ ({ w with disk = Disk.Single_disk.set w.disk a (Disk.Block.of_string bytes) },
                 ()) ]
          else P.Ub (Printf.sprintf "disk.Write out of bounds: %d" a))
    in
    P.return G.VUnit
  | "Size", [] -> P.read "disk.Size" (fun w -> G.VInt (Disk.Single_disk.size w.disk))
  | _ -> failf "unknown disk.%s/%d" fn (List.length vs)

and twodisk_call fn vs : (world, G.t) P.t =
  Obs.Metrics.inc Mx.ffi_twodisk;
  let get w = w.tdisk in
  let set w tdisk = { w with tdisk } in
  let disk_of = function
    | 1 -> Disk.Two_disk.D1
    | 2 -> Disk.Two_disk.D2
    | n -> failf "twodisk: disk id must be 1 or 2, got %d" n
  in
  match fn, vs with
  | "Read", [ G.VInt d; G.VInt a ] ->
    let* r = Disk.Two_disk.read ~get ~set (disk_of d) a in
    (match V.get_opt r with
    | Some b ->
      let* bytes = alloc (G.CBytes (V.get_str b)) in
      P.return (G.VTuple [ bytes; G.VBool true ])
    | None ->
      let* bytes = alloc (G.CBytes "") in
      P.return (G.VTuple [ bytes; G.VBool false ]))
  | "Write", [ G.VInt d; G.VInt a; data ] ->
    let* bytes =
      match data with
      | G.VString s -> P.return s
      | G.VRef r ->
        let* cell = read_cell r in
        (match cell with
        | G.CBytes s -> P.return s
        | _ -> failf "twodisk.Write expects bytes")
      | v -> failf "twodisk.Write expects bytes, got %a" G.pp v
    in
    let* () = Disk.Two_disk.write ~get ~set (disk_of d) a (Disk.Block.of_string bytes) in
    P.return G.VUnit
  | "Size", [] -> P.read "twodisk.Size" (fun w -> G.VInt (Disk.Two_disk.size w.tdisk))
  | _ -> failf "unknown twodisk.%s/%d" fn (List.length vs)

and filesys_call fn vs : (world, G.t) P.t =
  Obs.Metrics.inc Mx.ffi_filesys;
  let str = as_string and int = as_int in
  match fn, vs with
  | "Create", [ d; n ] ->
    let* r = Gfs.Ops.create ~get:get_fs ~set:set_fs (str d) (str n) in
    let fd, ok = V.get_pair r in
    P.return (G.VTuple [ G.VInt (V.get_int fd); G.VBool (V.get_bool ok) ])
  | "Open", [ d; n ] ->
    let* r = Gfs.Ops.open_read ~get:get_fs ~set:set_fs (str d) (str n) in
    let fd, ok = V.get_pair r in
    P.return (G.VTuple [ G.VInt (V.get_int fd); G.VBool (V.get_bool ok) ])
  | "Append", [ fd; data ] ->
    (* data is a []byte reference or a string *)
    let* bytes =
      match data with
      | G.VString s -> P.return s
      | G.VRef r ->
        let* cell = read_cell r in
        (match cell with
        | G.CBytes s -> P.return s
        | _ -> failf "filesys.Append expects bytes")
      | v -> failf "filesys.Append expects bytes, got %a" G.pp v
    in
    let* () = Gfs.Ops.append ~get:get_fs ~set:set_fs (int fd) bytes in
    P.return G.VUnit
  | "Close", [ fd ] ->
    let* () = Gfs.Ops.close ~get:get_fs ~set:set_fs (int fd) in
    P.return G.VUnit
  | "Fsync", [ fd ] ->
    let* () = Gfs.Ops.fsync ~get:get_fs ~set:set_fs (int fd) in
    P.return G.VUnit
  | "ReadAt", [ fd; off; len ] ->
    let* r = Gfs.Ops.read_at ~get:get_fs (int fd) (int off) (int len) in
    alloc (G.CBytes (V.get_str r))
  | "Size", [ fd ] ->
    let* r = Gfs.Ops.size ~get:get_fs (int fd) in
    P.return (G.VInt (V.get_int r))
  | "Link", [ d1; n1; d2; n2 ] ->
    let* r = Gfs.Ops.link ~get:get_fs ~set:set_fs ~src:(str d1, str n1) ~dst:(str d2, str n2) in
    P.return (G.VBool (V.get_bool r))
  | "Delete", [ d; n ] ->
    let* r = Gfs.Ops.delete ~get:get_fs ~set:set_fs (str d) (str n) in
    P.return (G.VBool (V.get_bool r))
  | "List", [ d ] ->
    let* r = Gfs.Ops.list_dir ~get:get_fs (str d) in
    alloc (G.CSlice (List.map (fun v -> G.VString (V.get_str v)) (V.get_list r)))
  | _ -> failf "unknown filesys.%s/%d" fn (List.length vs)

and call_func it (f : Ast.func_decl) (vs : G.t list) : (world, G.t) P.t =
  Obs.Metrics.inc Mx.calls;
  if List.length vs <> List.length f.Ast.params then
    failf "%s expects %d arguments" f.Ast.fname (List.length f.Ast.params);
  let env =
    List.fold_left2
      (fun env (p, _) v -> SMap.add p v env)
      SMap.empty f.Ast.params vs
  in
  let* out = exec_block it env f.Ast.body in
  match out with
  | Ret v -> P.return v
  | Next _ -> P.return G.VUnit
  | Brk _ | Cont _ -> failf "break/continue outside a loop in %s" f.Ast.fname

(* --- statements --- *)

and exec_block it env (b : Ast.block) : (world, outcome) P.t =
  match b with
  | [] -> P.return (Next env)
  | s :: rest ->
    let* out = exec_stmt it env s in
    (match out with
    | Next env' -> exec_block it env' rest
    | (Ret _ | Brk _ | Cont _) as o -> P.return o)

and exec_stmt it env (s : Ast.stmt) : (world, outcome) P.t =
  match s with
  | Ast.Define (names, e) ->
    let* v = eval it env e in
    (match names, v with
    | [ x ], v -> P.return (Next (SMap.add x v env))
    | xs, G.VTuple vs when List.length xs = List.length vs ->
      P.return (Next (List.fold_left2 (fun env x v -> if x = "_" then env else SMap.add x v env) env xs vs))
    | _ -> failf "arity mismatch in :=")
  | Ast.Var_decl (x, t, e) ->
    (match e with
    | Some e ->
      let* v = eval it env e in
      P.return (Next (SMap.add x v env))
    | None ->
      let t = match t with Some t -> t | None -> failf "var %s needs a type or initializer" x in
      P.return (Next (SMap.add x (zero_value it t) env)))
  | Ast.Assign (lvs, e) ->
    let* v = eval it env e in
    (match lvs, v with
    | [ lv ], v -> assign it env lv v
    | lvs, G.VTuple vs when List.length lvs = List.length vs ->
      let rec go env = function
        | [] -> P.return (Next env)
        | (lv, v) :: rest ->
          let* out = assign it env lv v in
          (match out with
          | Next env' -> go env' rest
          | o -> P.return o)
      in
      go env (List.combine lvs vs)
    | _ -> failf "arity mismatch in assignment")
  | Ast.Expr_stmt e ->
    let* _ = eval it env e in
    P.return (Next env)
  | Ast.If (c, then_, else_) ->
    let* vc = eval it env c in
    let* out = exec_block it env (if as_bool vc then then_ else else_) in
    (match out with
    | Next env' -> P.return (Next (merge_scope env env'))
    | Brk env' -> P.return (Brk (merge_scope env env'))
    | Cont env' -> P.return (Cont (merge_scope env env'))
    | Ret _ as o -> P.return o)
  | Ast.For (init, cond, post, body) ->
    let* env =
      match init with
      | None -> P.return env
      | Some s ->
        let* out = exec_stmt it env s in
        (match out with
        | Next env' -> P.return env'
        | _ -> failf "unexpected control flow in for-init")
    in
    let rec loop envl fuel =
      if fuel <= 0 then P.ub "loop fuel exhausted (possible infinite loop)"
      else
        let* continue_ =
          match cond with
          | None -> P.return true
          | Some c ->
            let* vc = eval it envl c in
            P.return (as_bool vc)
        in
        if not continue_ then P.return (Next envl)
        else
          let* out = exec_block it envl body in
          match out with
          | Ret v -> P.return (Ret v)
          | Brk env' -> P.return (Next (merge_scope envl env'))
          | Next env' | Cont env' -> (
            let envl = merge_scope envl env' in
            match post with
            | None -> loop envl (fuel - 1)
            | Some s ->
              let* out = exec_stmt it envl s in
              (match out with
              | Next env'' -> loop env'' (fuel - 1)
              | _ -> failf "unexpected control flow in for-post"))
    in
    let* out = loop env 100_000 in
    (match out with
    | Next env' -> P.return (Next (merge_scope env env'))
    | o -> P.return o)
  | Ast.For_range (kx, vx, e, body) ->
    let* v = eval it env e in
    let* items =
      match v with
      | G.VString s ->
        P.return (List.init (String.length s) (fun i -> (G.VInt i, G.VInt (Char.code s.[i]))))
      | G.VRef r ->
        let* cell = read_cell r in
        (match cell with
        | G.CSlice vs -> P.return (List.mapi (fun i x -> (G.VInt i, x)) vs)
        | G.CBytes s ->
          P.return (List.init (String.length s) (fun i -> (G.VInt i, G.VInt (Char.code s.[i]))))
        | G.CMap kvs -> P.return kvs
        | G.CCell _ -> failf "range over pointer")
      | v -> failf "range over %a" G.pp v
    in
    let rec loop envl = function
      | [] -> P.return (Next envl)
      | (k, x) :: rest ->
        let env' = SMap.add kx k envl in
        let env' = if vx = "_" then env' else SMap.add vx x env' in
        let* out = exec_block it env' body in
        (match out with
        | Ret v -> P.return (Ret v)
        | Brk env'' -> P.return (Next (merge_scope envl env''))
        | Next env'' | Cont env'' -> loop (merge_scope envl env'') rest)
    in
    let* out = loop env items in
    (match out with
    | Next env' -> P.return (Next (merge_scope env env'))
    | o -> P.return o)
  | Ast.Return [] -> P.return (Ret G.VUnit)
  | Ast.Return [ e ] ->
    let* v = eval it env e in
    P.return (Ret v)
  | Ast.Return es ->
    let* vs = eval_args it env es in
    P.return (Ret (G.VTuple vs))
  | Ast.Go_stmt _ ->
    failf "goroutines are spawned by the harness, not inside checked code"
  | Ast.Break -> P.return (Brk env)
  | Ast.Continue -> P.return (Cont env)
  | Ast.Block b ->
    let* out = exec_block it env b in
    (match out with
    | Next env' -> P.return (Next (merge_scope env env'))
    | Brk env' -> P.return (Brk (merge_scope env env'))
    | Cont env' -> P.return (Cont (merge_scope env env'))
    | Ret _ as o -> P.return o)

and assign it env lv v : (world, outcome) P.t =
  match lv with
  | Ast.Lwild -> P.return (Next env)
  | Ast.Lident x ->
    if SMap.mem x env then P.return (Next (SMap.add x v env))
    else failf "assignment to undeclared variable %s" x
  | Ast.Lindex (se, ie) ->
    let* sv = eval it env se in
    let* iv = eval it env ie in
    let r = as_ref sv in
    let* () =
      write_cell it.cfg r (fun cell ->
          match cell, iv with
          | G.CSlice vs, G.VInt i ->
            if i < 0 || i >= List.length vs then Error "slice store out of range"
            else Ok (G.CSlice (List.mapi (fun j x -> if j = i then v else x) vs))
          | G.CBytes s, G.VInt i ->
            if i < 0 || i >= String.length s then Error "byte store out of range"
            else
              Ok
                (G.CBytes
                   (String.mapi (fun j c -> if j = i then Char.chr (as_int v land 255) else c) s))
          | G.CMap kvs, k ->
            Ok (G.CMap (List.sort (fun (k1, _) (k2, _) -> G.compare k1 k2) ((k, v) :: List.remove_assoc k kvs)))
          | _ -> Error "indexed store on non-slice/map")
    in
    P.return (Next env)
  | Ast.Lfield (e, f) ->
    (* only struct-through-pointer assignment mutates shared state *)
    let* sv = eval it env e in
    (match sv with
    | G.VRef r ->
      let* () =
        write_cell it.cfg r (fun cell ->
            match cell with
            | G.CCell (G.VStruct fields) ->
              if List.mem_assoc f fields then
                Ok (G.CCell (G.VStruct (List.map (fun (g, x) -> if g = f then (g, v) else (g, x)) fields)))
              else Error ("no field " ^ f)
            | _ -> Error "field store through non-struct pointer")
      in
      P.return (Next env)
    | G.VStruct fields ->
      (* value struct held in a local: update the local *)
      (match e with
      | Ast.Ident x ->
        if List.mem_assoc f fields then
          P.return
            (Next
               (SMap.add x
                  (G.VStruct (List.map (fun (g, y) -> if g = f then (g, v) else (g, y)) fields))
                  env))
        else failf "no field %s" f
      | _ -> failf "cannot assign to a field of a temporary struct")
    | v -> failf "field store on %a" G.pp v)
  | Ast.Lderef e ->
    let* pv = eval it env e in
    let* () =
      write_cell it.cfg (as_ref pv) (fun cell ->
          match cell with
          | G.CCell _ -> Ok (G.CCell v)
          | _ -> Error "store through non-pointer")
    in
    P.return (Next env)

(* ------------------------------------------------------------------ *)
(* Entry points                                                        *)
(* ------------------------------------------------------------------ *)

(** Run a named function as a program; arguments are Goose values. *)
let run_func it name (args : G.t list) : (world, G.t) P.t =
  match Ast.find_func it.file name with
  | Some f -> call_func it f args
  | None -> failf "unknown function %s" name

(** Run a named function and convert its result to a universal value by
    dereferencing through the final heap — the form the refinement checker
    compares against the spec. *)
let run_func_value it name (args : G.t list) : (world, V.t) P.t =
  let* v = run_func it name args in
  P.read "snapshot-result" (fun w ->
      G.to_value (fun r -> Option.map (fun c -> c.content) (IMap.find_opt r w.heap)) v)
