(** The Goose file-system model (paper §6.2): a subset of the POSIX API over
    a fixed set of directories, with every operation atomic with respect to
    other threads, and a crash model in which all file data persists but
    open file descriptors are lost.

    The state deliberately mirrors the four capability kinds of the paper:
    directories (name sets), directory entries (name -> inode), file
    descriptors (volatile, mode-tagged), and inode contents (byte strings).

    Beyond the paper's model, the file system supports *deferred
    durability* — the extension §1 calls non-fundamental future work.  In
    [`Deferred] mode an append lands in a volatile tail that only becomes
    crash-proof after [fsync]; a crash truncates every inode back to its
    synced prefix.  The paper's model is [`Sync], where every append is
    immediately durable.  The Mailboat variants in the test suite show a
    delivery that skips fsync losing (truncating) messages across a crash,
    and the fsync-before-link version verifying again.

    This is a pure value — the world type used by the refinement checker and
    the Goose interpreter.  [Tmpfs] provides the mutable, lock-protected
    variant used by the running mail servers. *)

module SMap = Map.Make (String)
module IMap = Map.Make (Int)

type mode = Read | Append

type fd = { ino : int; mode : mode }

type durability = [ `Sync  (** the paper's model: writes are durable *)
                  | `Deferred  (** writes buffer until [fsync] *) ]

type t = {
  dirs : int SMap.t SMap.t;  (** directory -> file name -> inode *)
  inodes : string IMap.t;  (** inode -> contents (including unsynced tail) *)
  synced : int IMap.t;  (** inode -> durable prefix length ([`Deferred]) *)
  durability : durability;
  nlink : int IMap.t;  (** inode -> number of directory entries *)
  fds : fd IMap.t;  (** open descriptors; volatile *)
  next_ino : int;
  next_fd : int;
}

let empty = {
  dirs = SMap.empty;
  inodes = IMap.empty;
  synced = IMap.empty;
  durability = `Sync;
  nlink = IMap.empty;
  fds = IMap.empty;
  next_ino = 0;
  next_fd = 0;
}

(** Create the fixed directory layout (directories cannot be made at run
    time, matching the paper's "fixed layout" restriction). *)
let init ?(durability = `Sync) dirs =
  List.fold_left
    (fun fs d -> { fs with dirs = SMap.add d SMap.empty fs.dirs })
    { empty with durability } dirs

let has_dir fs dir = SMap.mem dir fs.dirs

(** Directory names, sorted — the observable content of the root. *)
let dir_names fs = List.map fst (SMap.bindings fs.dirs)

(** [mkdir fs dir]: add an empty directory; [None] if it exists.  An
    extension over the paper's fixed layout, needed once the file system is
    an implementation target ({!Perennial_fs}) rather than an axiom. *)
let mkdir fs dir =
  if SMap.mem dir fs.dirs then None
  else Some { fs with dirs = SMap.add dir SMap.empty fs.dirs }

(** Crash: directories persist and descriptors are lost; file contents
    survive up to their synced prefix — everything in [`Sync] mode, only
    what [fsync] reached in [`Deferred] mode. *)
let crash fs =
  let inodes =
    match fs.durability with
    | `Sync -> fs.inodes
    | `Deferred ->
      IMap.mapi
        (fun ino contents ->
          let keep =
            match IMap.find_opt ino fs.synced with Some n -> n | None -> 0
          in
          String.sub contents 0 (min keep (String.length contents)))
        fs.inodes
  in
  (* whatever survived the crash is, by definition, durable now *)
  let synced = IMap.map String.length inodes in
  { fs with inodes; synced; fds = IMap.empty; next_fd = 0 }

(* --- comparison / printing --- *)

let compare_fd a b =
  let c = Int.compare a.ino b.ino in
  if c <> 0 then c else Stdlib.compare a.mode b.mode

let compare a b =
  let c = SMap.compare (SMap.compare Int.compare) a.dirs b.dirs in
  if c <> 0 then c
  else
    let c = IMap.compare String.compare a.inodes b.inodes in
    if c <> 0 then c
    else
      let c = IMap.compare Int.compare a.synced b.synced in
      if c <> 0 then c
      else
      let c = IMap.compare compare_fd a.fds b.fds in
      if c <> 0 then c
      else
        let c = Int.compare a.next_ino b.next_ino in
        if c <> 0 then c else Int.compare a.next_fd b.next_fd

let equal a b = compare a b = 0

let pp ppf fs =
  let dir ppf (d, entries) =
    Fmt.pf ppf "%s/{%a}" d
      (Fmt.list ~sep:Fmt.comma (fun ppf (n, i) -> Fmt.pf ppf "%s:%d" n i))
      (SMap.bindings entries)
  in
  Fmt.pf ppf "fs{%a | inodes %a}"
    (Fmt.list ~sep:Fmt.sp dir) (SMap.bindings fs.dirs)
    (Fmt.list ~sep:Fmt.comma (fun ppf (i, c) -> Fmt.pf ppf "%d:%S" i c))
    (IMap.bindings fs.inodes)

(* --- core operations (pure, total; [ok] results mirror the Go API) --- *)

let lookup fs dir name =
  match SMap.find_opt dir fs.dirs with
  | None -> None
  | Some entries -> SMap.find_opt name entries

(** [create fs dir name] makes an empty file and opens it for append;
    fails (returning [None]) if the name already exists.  The atomic
    create-if-absent that Mailboat's random-ID retry loop relies on. *)
let create fs dir name =
  if not (has_dir fs dir) then invalid_arg ("Fs.create: no directory " ^ dir)
  else
    match lookup fs dir name with
    | Some _ -> None
    | None ->
      let ino = fs.next_ino in
      let fd_num = fs.next_fd in
      let fs =
        {
          fs with
          dirs = SMap.add dir (SMap.add name ino (SMap.find dir fs.dirs)) fs.dirs;
          inodes = IMap.add ino "" fs.inodes;
          synced = IMap.add ino 0 fs.synced;
          nlink = IMap.add ino 1 fs.nlink;
          fds = IMap.add fd_num { ino; mode = Append } fs.fds;
          next_ino = ino + 1;
          next_fd = fd_num + 1;
        }
      in
      Some (fs, fd_num)

(** [open_read fs dir name] opens an existing file for reading. *)
let open_read fs dir name =
  match lookup fs dir name with
  | None -> None
  | Some ino ->
    let fd_num = fs.next_fd in
    let fs =
      { fs with fds = IMap.add fd_num { ino; mode = Read } fs.fds; next_fd = fd_num + 1 }
    in
    Some (fs, fd_num)

let fd_of fs fd = IMap.find_opt fd fs.fds

(** [append fs fd data]: append to a descriptor opened with [create].
    [None] if the descriptor is invalid or read-only. *)
let append fs fd data =
  match fd_of fs fd with
  | Some { ino; mode = Append } ->
    let contents = match IMap.find_opt ino fs.inodes with Some c -> c | None -> "" in
    let contents = contents ^ data in
    let synced =
      match fs.durability with
      | `Sync -> IMap.add ino (String.length contents) fs.synced
      | `Deferred -> fs.synced
    in
    Some { fs with inodes = IMap.add ino contents fs.inodes; synced }
  | Some { mode = Read; _ } | None -> None

(** [fsync fs fd]: make the descriptor's inode contents durable.  A no-op
    in [`Sync] mode.  [None] on an invalid descriptor. *)
let fsync fs fd =
  match fd_of fs fd with
  | Some { ino; _ } ->
    let len =
      String.length (match IMap.find_opt ino fs.inodes with Some c -> c | None -> "")
    in
    Some { fs with synced = IMap.add ino len fs.synced }
  | None -> None

(** Number of durable bytes of an inode — exposed for tests. *)
let synced_length fs ino = match IMap.find_opt ino fs.synced with Some n -> n | None -> 0

(** [read_at fs fd off len]: up to [len] bytes from offset [off]. *)
let read_at fs fd off len =
  match fd_of fs fd with
  | Some { ino; _ } ->
    let contents = match IMap.find_opt ino fs.inodes with Some c -> c | None -> "" in
    let total = String.length contents in
    if off >= total then Some ""
    else Some (String.sub contents off (min len (total - off)))
  | None -> None

let size fs fd =
  match fd_of fs fd with
  | Some { ino; _ } ->
    Some (String.length (match IMap.find_opt ino fs.inodes with Some c -> c | None -> ""))
  | None -> None

let close fs fd =
  if IMap.mem fd fs.fds then Some { fs with fds = IMap.remove fd fs.fds } else None

(** [link fs ~src ~dst]: atomically give the file at [src] a second name at
    [dst]; fails if [dst] exists (the Mailboat commit point). *)
let link fs ~src:(sdir, sname) ~dst:(ddir, dname) =
  match lookup fs sdir sname with
  | None -> None
  | Some ino -> (
    if not (has_dir fs ddir) then invalid_arg ("Fs.link: no directory " ^ ddir)
    else
      match lookup fs ddir dname with
      | Some _ -> None
      | None ->
        let links = match IMap.find_opt ino fs.nlink with Some n -> n | None -> 0 in
        Some
          {
            fs with
            dirs = SMap.add ddir (SMap.add dname ino (SMap.find ddir fs.dirs)) fs.dirs;
            nlink = IMap.add ino (links + 1) fs.nlink;
          })

(** [delete fs dir name]: unlink; contents are freed when the last link
    goes.  [None] if the name does not exist. *)
let delete fs dir name =
  match lookup fs dir name with
  | None -> None
  | Some ino ->
    let links = match IMap.find_opt ino fs.nlink with Some n -> n | None -> 1 in
    let fs =
      { fs with dirs = SMap.add dir (SMap.remove name (SMap.find dir fs.dirs)) fs.dirs }
    in
    if links <= 1 then
      Some
        {
          fs with
          inodes = IMap.remove ino fs.inodes;
          synced = IMap.remove ino fs.synced;
          nlink = IMap.remove ino fs.nlink;
        }
    else Some { fs with nlink = IMap.add ino (links - 1) fs.nlink }

(** [rename fs ~src ~dst]: atomically move the entry at [src] to [dst],
    replacing (and freeing, on last link) any displaced target — POSIX
    rename.  [None] if [src] does not exist; a same-path rename succeeds
    without effect. *)
let rename fs ~src:(sdir, sname) ~dst:(ddir, dname) =
  if not (has_dir fs ddir) then invalid_arg ("Fs.rename: no directory " ^ ddir)
  else
    match lookup fs sdir sname with
    | None -> None
    | Some ino ->
      if sdir = ddir && sname = dname then Some fs
      else
        let fs =
          match delete fs ddir dname with Some fs' -> fs' | None -> fs
        in
        let fs =
          { fs with
            dirs = SMap.add sdir (SMap.remove sname (SMap.find sdir fs.dirs)) fs.dirs }
        in
        Some
          { fs with
            dirs = SMap.add ddir (SMap.add dname ino (SMap.find ddir fs.dirs)) fs.dirs }

(** [append_path fs dir name data]: descriptor-less append, for specs that
    keep no volatile descriptor table.  Same durability semantics as
    {!append}.  [None] if the file does not exist. *)
let append_path fs dir name data =
  match lookup fs dir name with
  | None -> None
  | Some ino ->
    let contents =
      (match IMap.find_opt ino fs.inodes with Some c -> c | None -> "") ^ data
    in
    let synced =
      match fs.durability with
      | `Sync -> IMap.add ino (String.length contents) fs.synced
      | `Deferred -> fs.synced
    in
    Some { fs with inodes = IMap.add ino contents fs.inodes; synced }

(** [fsync_path fs dir name]: descriptor-less {!fsync}. *)
let fsync_path fs dir name =
  match lookup fs dir name with
  | None -> None
  | Some ino ->
    let len =
      String.length (match IMap.find_opt ino fs.inodes with Some c -> c | None -> "")
    in
    Some { fs with synced = IMap.add ino len fs.synced }

(** [list_dir fs dir]: the file names in a directory, sorted. *)
let list_dir fs dir =
  match SMap.find_opt dir fs.dirs with
  | None -> invalid_arg ("Fs.list_dir: no directory " ^ dir)
  | Some entries -> List.map fst (SMap.bindings entries)

(** Whole-file read by path, for tests and probes (not part of the modeled
    API — real code must go through descriptors). *)
let read_file fs dir name =
  match lookup fs dir name with
  | None -> None
  | Some ino -> IMap.find_opt ino fs.inodes
