(** The Goose file-system model (paper §6.2): a POSIX subset over a fixed
    set of directories, every operation atomic, with the paper's crash model
    (file data persists, descriptors are lost) — plus the deferred-
    durability extension ([`Deferred] mode buffers appends until {!fsync}).

    A pure value: the world type used by the refinement checker and the
    Goose interpreter.  {!Tmpfs} is the mutable, lock-protected variant the
    running mail servers use. *)

type mode = Read | Append

type fd = { ino : int; mode : mode }

type durability = [ `Sync  (** the paper's model: writes are durable *)
                  | `Deferred  (** writes buffer until [fsync] *) ]

type t
(** Whole-file-system state; immutable. *)

val empty : t

val init : ?durability:durability -> string list -> t
(** [init dirs] creates the fixed directory layout (directories cannot be
    made at run time, matching the paper's restriction).  Default
    durability is [`Sync]. *)

val has_dir : t -> string -> bool

val dir_names : t -> string list
(** Directory names, sorted — the observable content of the root. *)

val mkdir : t -> string -> t option
(** Add an empty directory; [None] if it exists.  An extension over the
    paper's fixed layout, for use as a specification of {!Perennial_fs}. *)

val crash : t -> t
(** Directories persist and descriptors are lost; file contents survive up
    to their synced prefix — everything in [`Sync] mode, only what
    [fsync] reached in [`Deferred] mode. *)

val equal : t -> t -> bool
val compare : t -> t -> int
val pp : t Fmt.t

(** {1 Operations}

    All return [None] (or fail with an [ok=false] flag at the {!Ops}
    level) rather than raising, except for structurally-impossible
    arguments (unknown directory), which are programming errors. *)

val lookup : t -> string -> string -> int option
(** [lookup fs dir name] is the inode of [dir/name], if any. *)

val create : t -> string -> string -> (t * int) option
(** Atomic create-if-absent; opens the new file for append.  [None] if the
    name exists — the primitive Mailboat's random-ID retry loop relies on. *)

val open_read : t -> string -> string -> (t * int) option
val fd_of : t -> int -> fd option

val append : t -> int -> string -> t option
(** [None] on an invalid or read-only descriptor. *)

val fsync : t -> int -> t option
(** Make the descriptor's inode contents durable; a no-op under [`Sync]. *)

val synced_length : t -> int -> int
(** Durable bytes of an inode — exposed for tests. *)

val read_at : t -> int -> int -> int -> string option
(** [read_at fs fd off len]: up to [len] bytes from [off]; reads observe
    buffered (unsynced) data, like a page cache. *)

val size : t -> int -> int option
val close : t -> int -> t option

val link : t -> src:string * string -> dst:string * string -> t option
(** Atomically give the file at [src] a second name at [dst]; [None] if
    [dst] exists or [src] does not — the Mailboat commit point. *)

val delete : t -> string -> string -> t option
(** Unlink; contents are freed with the last link.  [None] if absent. *)

val rename : t -> src:string * string -> dst:string * string -> t option
(** Atomically move [src] to [dst], replacing (and freeing, on last link)
    any displaced target — POSIX rename.  [None] if [src] is absent. *)

val append_path : t -> string -> string -> string -> t option
(** Descriptor-less append (same durability semantics as {!append});
    [None] if the file does not exist. *)

val fsync_path : t -> string -> string -> t option
(** Descriptor-less {!fsync}. *)

val list_dir : t -> string -> string list
(** Sorted file names; raises [Invalid_argument] on an unknown directory. *)

val read_file : t -> string -> string -> string option
(** Whole-file read by path, for tests and probes (not part of the modeled
    API — modeled code must go through descriptors). *)
