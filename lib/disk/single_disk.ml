(** Single-disk semantics (Table 3): one durable array of blocks with atomic
    per-block reads and writes.  The substrate under the shadow-copy,
    write-ahead-log and group-commit examples. *)

module V = Tslang.Value
module IMap = Map.Make (Int)

type t = { size : int; blocks : Block.t IMap.t }
(** [blocks] maps addresses with non-[zero] content; absent = [Block.zero].
    A persistent map keeps worlds cheap to snapshot during model checking. *)

let init size = { size; blocks = IMap.empty }
let size t = t.size
let in_bounds t a = a >= 0 && a < t.size

let get t a =
  if not (in_bounds t a) then invalid_arg "Single_disk.get: out of bounds";
  match IMap.find_opt a t.blocks with Some b -> b | None -> Block.zero

let set t a b =
  if not (in_bounds t a) then invalid_arg "Single_disk.set: out of bounds";
  if Block.equal b Block.zero then { t with blocks = IMap.remove a t.blocks }
  else { t with blocks = IMap.add a b t.blocks }

let equal a b = a.size = b.size && IMap.equal Block.equal a.blocks b.blocks

let compare a b =
  let c = Int.compare a.size b.size in
  if c <> 0 then c else IMap.compare Block.compare a.blocks b.blocks

let pp ppf t =
  let binding ppf (a, b) = Fmt.pf ppf "%d:%a" a Block.pp b in
  Fmt.pf ppf "disk[%d]{%a}" t.size
    (Fmt.list ~sep:Fmt.comma binding)
    (IMap.bindings t.blocks)

(** Disk contents survive crashes unchanged. *)
let crash t = t

(* Program-level operations, lens-composed into a larger world. *)

let read ~get_disk a : ('w, V.t) Sched.Prog.t =
  Sched.Prog.span ~cat:"disk"
    (Printf.sprintf "disk_read(%d)" a)
  @@ Sched.Prog.atomic
    ~fp:(Sched.Footprint.const (Sched.Footprint.reads [ Sched.Footprint.disk a ]))
    (Printf.sprintf "disk_read(%d)" a)
    (fun w ->
      let d = get_disk w in
      if in_bounds d a then Sched.Prog.Steps [ (w, Block.to_value (get d a)) ]
      else Sched.Prog.Ub (Printf.sprintf "disk_read out of bounds: %d" a))

let write ~get_disk ~set_disk a b : ('w, unit) Sched.Prog.t =
  Sched.Prog.span ~cat:"disk"
    (Printf.sprintf "disk_write(%d)" a)
  @@ Sched.Prog.bind
    (Sched.Prog.atomic
       ~fp:(Sched.Footprint.const (Sched.Footprint.writes [ Sched.Footprint.disk a ]))
       (Printf.sprintf "disk_write(%d)" a)
       (fun w ->
         let d = get_disk w in
         if in_bounds d a then Sched.Prog.Steps [ (set_disk w (set d a b), V.unit) ]
         else Sched.Prog.Ub (Printf.sprintf "disk_write out of bounds: %d" a)))
    (fun _ -> Sched.Prog.return ())

(* --- fallible operations ---

   Same semantics as read/write plus declared fault points.  The infallible
   ops above stay untouched: existing systems keep compiling and keep their
   exact state spaces.  Success returns the raw value; a transient fault
   returns {!Sched.Fault.eio} (distinguishable with [Fault.is_eio] — blocks
   are [Str] values, never [Pair ("EIO", _)]), with nothing persisted for a
   failed write. *)

module Fault = Sched.Fault

let eio k = Fault.eio (Fault.Eio k)

let read_f ~get_disk a : ('w, V.t) Sched.Prog.t =
  Sched.Prog.span ~cat:"disk"
    (Printf.sprintf "disk_read_f(%d)" a)
  @@ Sched.Prog.atomic
    ~fp:(Sched.Footprint.const (Sched.Footprint.reads [ Sched.Footprint.disk a ]))
    ~faults:(fun w ->
      if in_bounds (get_disk w) a then
        [ (Fault.Read_error, w, eio Fault.Read_error) ]
      else [])
    (Printf.sprintf "disk_read_f(%d)" a)
    (fun w ->
      let d = get_disk w in
      if in_bounds d a then Sched.Prog.Steps [ (w, Block.to_value (get d a)) ]
      else Sched.Prog.Ub (Printf.sprintf "disk_read_f out of bounds: %d" a))

let write_f ~get_disk ~set_disk a b : ('w, V.t) Sched.Prog.t =
  Sched.Prog.span ~cat:"disk"
    (Printf.sprintf "disk_write_f(%d)" a)
  @@ Sched.Prog.atomic
    ~fp:(Sched.Footprint.const (Sched.Footprint.writes [ Sched.Footprint.disk a ]))
    ~faults:(fun w ->
      if in_bounds (get_disk w) a then
        [ (Fault.Write_error, w, eio Fault.Write_error) ]
      else [])
    (Printf.sprintf "disk_write_f(%d)" a)
    (fun w ->
      let d = get_disk w in
      if in_bounds d a then Sched.Prog.Steps [ (set_disk w (set d a b), V.unit) ]
      else Sched.Prog.Ub (Printf.sprintf "disk_write_f out of bounds: %d" a))

(* A multi-block write is atomic on success, but a [Torn_write k] fault
   persists only the first [k] entries (in list order).  Crashing after a
   torn write is therefore indistinguishable from the old model's crash
   between the [k]-th and [k+1]-th of a sequence of single-block writes —
   tearing adds no new crash states, only new *surviving* states where the
   caller observes the error and keeps running. *)
let write_multi_f ~get_disk ~set_disk entries : ('w, V.t) Sched.Prog.t =
  let n = List.length entries in
  let label =
    Printf.sprintf "disk_write_multi(%s)"
      (String.concat "," (List.map (fun (a, _) -> string_of_int a) entries))
  in
  let prefix k = List.filteri (fun i _ -> i < k) entries in
  let persist w k =
    set_disk w (List.fold_left (fun d (a, b) -> set d a b) (get_disk w) (prefix k))
  in
  let ok w = List.for_all (fun (a, _) -> in_bounds (get_disk w) a) entries in
  Sched.Prog.span ~cat:"disk" label
  @@ Sched.Prog.atomic
    ~fp:
      (Sched.Footprint.const
         (Sched.Footprint.writes
            (List.map (fun (a, _) -> Sched.Footprint.disk a) entries)))
    ~faults:(fun w ->
      if not (ok w) then []
      else
        (Fault.Write_error, w, eio Fault.Write_error)
        :: List.init (max 0 (n - 1)) (fun i ->
               let k = i + 1 in
               (Fault.Torn_write k, persist w k, eio (Fault.Torn_write k))))
    label
    (fun w ->
      if ok w then Sched.Prog.Steps [ (persist w n, V.unit) ]
      else Sched.Prog.Ub (label ^ ": out of bounds"))
