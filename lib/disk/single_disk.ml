(** Single-disk semantics (Table 3): one durable array of blocks with atomic
    per-block reads and writes.  The substrate under the shadow-copy,
    write-ahead-log and group-commit examples. *)

module V = Tslang.Value
module IMap = Map.Make (Int)

type t = { size : int; blocks : Block.t IMap.t }
(** [blocks] maps addresses with non-[zero] content; absent = [Block.zero].
    A persistent map keeps worlds cheap to snapshot during model checking. *)

let init size = { size; blocks = IMap.empty }
let size t = t.size
let in_bounds t a = a >= 0 && a < t.size

let get t a =
  if not (in_bounds t a) then invalid_arg "Single_disk.get: out of bounds";
  match IMap.find_opt a t.blocks with Some b -> b | None -> Block.zero

let set t a b =
  if not (in_bounds t a) then invalid_arg "Single_disk.set: out of bounds";
  if Block.equal b Block.zero then { t with blocks = IMap.remove a t.blocks }
  else { t with blocks = IMap.add a b t.blocks }

let equal a b = a.size = b.size && IMap.equal Block.equal a.blocks b.blocks

let compare a b =
  let c = Int.compare a.size b.size in
  if c <> 0 then c else IMap.compare Block.compare a.blocks b.blocks

let pp ppf t =
  let binding ppf (a, b) = Fmt.pf ppf "%d:%a" a Block.pp b in
  Fmt.pf ppf "disk[%d]{%a}" t.size
    (Fmt.list ~sep:Fmt.comma binding)
    (IMap.bindings t.blocks)

(** Disk contents survive crashes unchanged. *)
let crash t = t

(* Program-level operations, lens-composed into a larger world. *)

let read ~get_disk a : ('w, V.t) Sched.Prog.t =
  Sched.Prog.atomic
    ~fp:(Sched.Footprint.const (Sched.Footprint.reads [ Sched.Footprint.disk a ]))
    (Printf.sprintf "disk_read(%d)" a)
    (fun w ->
      let d = get_disk w in
      if in_bounds d a then Sched.Prog.Steps [ (w, Block.to_value (get d a)) ]
      else Sched.Prog.Ub (Printf.sprintf "disk_read out of bounds: %d" a))

let write ~get_disk ~set_disk a b : ('w, unit) Sched.Prog.t =
  Sched.Prog.bind
    (Sched.Prog.atomic
       ~fp:(Sched.Footprint.const (Sched.Footprint.writes [ Sched.Footprint.disk a ]))
       (Printf.sprintf "disk_write(%d)" a)
       (fun w ->
         let d = get_disk w in
         if in_bounds d a then Sched.Prog.Steps [ (set_disk w (set d a b), V.unit) ]
         else Sched.Prog.Ub (Printf.sprintf "disk_write out of bounds: %d" a)))
    (fun _ -> Sched.Prog.return ())
