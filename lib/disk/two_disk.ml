(** Two-disk semantics (Table 3, §1): two physical disks of which at most one
    may fail, the substrate of the replicated-disk example.

    Failure is modeled explicitly: a read of a failed disk reports failure
    (the [ok] flag of the paper's [disk_read]), a write to a failed disk is a
    silent no-op.  In [may_fail] mode every read/write also nondeterministically
    branches into "this disk just failed", which is how the checker covers
    fail-over paths.  At most one disk ever fails. *)

module V = Tslang.Value

type id = D1 | D2

let pp_id ppf = function D1 -> Fmt.string ppf "d1" | D2 -> Fmt.string ppf "d2"

type t = {
  d1 : Single_disk.t option;  (** [None] = failed *)
  d2 : Single_disk.t option;
  may_fail : bool;
  offline : id option;
      (** a disk transiently detached by a [Disk_offline] fault; its
          contents survive, but the fallible ops report errors until a
          [Disk_online] fault (or a power cycle) re-attaches it.  Only the
          [_f] ops consult this — the plain ops model the fault-free
          layer. *)
}

let init ?(may_fail = false) size =
  { d1 = Some (Single_disk.init size); d2 = Some (Single_disk.init size);
    may_fail; offline = None }

let size t =
  match t.d1, t.d2 with
  | Some d, _ | None, Some d -> Single_disk.size d
  | None, None -> 0

let disk t = function D1 -> t.d1 | D2 -> t.d2

let with_disk t id d =
  match id with D1 -> { t with d1 = d } | D2 -> { t with d2 = d }

let one_failed t = t.d1 = None || t.d2 = None

let fail t id =
  if one_failed t then t (* at most one failure *)
  else
    let t = with_disk t id None in
    if t.offline = Some id then { t with offline = None } else t

let is_offline t id = t.offline = Some id
let set_offline t id = { t with offline = Some id }
let set_online t = { t with offline = None }

let compare_id a b =
  match (a, b) with D1, D1 | D2, D2 -> 0 | D1, D2 -> -1 | D2, D1 -> 1

let equal a b =
  Option.equal Single_disk.equal a.d1 b.d1
  && Option.equal Single_disk.equal a.d2 b.d2
  && Bool.equal a.may_fail b.may_fail
  && Option.equal (fun x y -> compare_id x y = 0) a.offline b.offline

let compare a b =
  let c = Option.compare Single_disk.compare a.d1 b.d1 in
  if c <> 0 then c
  else
    let c = Option.compare Single_disk.compare a.d2 b.d2 in
    if c <> 0 then c
    else
      let c = Bool.compare a.may_fail b.may_fail in
      if c <> 0 then c else Option.compare compare_id a.offline b.offline

let pp ppf t =
  let pd ppf = function
    | Some d -> Single_disk.pp ppf d
    | None -> Fmt.string ppf "FAILED"
  in
  Fmt.pf ppf "@[<h>{d1 = %a; d2 = %a%a}@]" pd t.d1 pd t.d2
    (fun ppf -> function
      | None -> ()
      | Some id -> Fmt.pf ppf "; offline = %a" pp_id id)
    t.offline

(** Disk contents (and permanent-failure status) survive crashes; a power
    cycle re-attaches a transiently offline disk. *)
let crash t = { t with offline = None }

(* --- program-level operations --- *)

(* Footprints: every operation consults the failure status (a failed disk
   changes read results and turns writes into no-ops), and in [may_fail]
   worlds that still have both disks it may also *set* it.  The status is
   durable — it survives crashes, so recovery depends on it. *)
module Fp = Sched.Footprint

let region = function D1 -> "d1" | D2 -> "d2"
let status_loc = Fp.Durable ("td-status", 0)

let op_fp ~get id a ~durable_write w =
  let t = get w in
  let addr = Fp.Durable (region id, a) in
  let fail_write = if t.may_fail && not (one_failed t) then [ status_loc ] else [] in
  Fp.rw
    ~reads:(addr :: status_loc :: [])
    ~writes:((if durable_write then [ addr ] else []) @ fail_write)
    ()

(** [read ~get ~set id a] returns [Some block] or [None] on a failed disk
    (encoded as a [Value.Opt]).  With [may_fail] the disk may also fail at
    this very step. *)
let read ~get ~set id a : ('w, V.t) Sched.Prog.t =
  Sched.Prog.atomic
    ~fp:(op_fp ~get id a ~durable_write:false)
    (Fmt.str "disk_read(%a,%d)" pp_id id a)
    (fun w ->
      let t = get w in
      if a < 0 || a >= size t then
        Sched.Prog.Ub (Printf.sprintf "disk_read out of bounds: %d" a)
      else
        let normal =
          match disk t id with
          | Some d -> (w, V.some (Block.to_value (Single_disk.get d a)))
          | None -> (w, V.none)
        in
        let failure_branch =
          if t.may_fail && not (one_failed t) then
            [ (set w (fail t id), V.none) ]
          else []
        in
        Sched.Prog.Steps (normal :: failure_branch))

(** [write ~get ~set id a b]: no-op on a failed disk; with [may_fail] the
    disk may fail just before the write (so the write is lost). *)
let write ~get ~set id a b : ('w, unit) Sched.Prog.t =
  Sched.Prog.bind
    (Sched.Prog.atomic
       ~fp:(op_fp ~get id a ~durable_write:true)
       (Fmt.str "disk_write(%a,%d)" pp_id id a)
       (fun w ->
         let t = get w in
         if a < 0 || a >= size t then
           Sched.Prog.Ub (Printf.sprintf "disk_write out of bounds: %d" a)
         else
           let normal =
             match disk t id with
             | Some d -> (set w (with_disk t id (Some (Single_disk.set d a b))), V.unit)
             | None -> (w, V.unit)
           in
           let failure_branch =
             if t.may_fail && not (one_failed t) then
               [ (set w (fail t id), V.unit) ]
             else []
           in
           Sched.Prog.Steps (normal :: failure_branch)))
    (fun _ -> Sched.Prog.return ())

(* --- fallible operations ---

   Like read/write, with declared fault points and an offline dimension.
   Return-value convention (all encoded as {!Tslang.Value}):
   - [Some v] / [Unit]-wrapped success;
   - [None]: the disk failed *permanently* (the tolerated Table 3 failure);
   - [Fault.eio]: a *transient* error — retrying may succeed.
   Fault points while alive and attached: [Read_error]/[Write_error]
   (state unchanged, nothing persisted) and [Disk_offline] (detaches the
   disk; at most one disk is offline at a time).  While detached, the only
   fault point is [Disk_online], which re-attaches and performs the
   operation; the normal outcome is a transient error.  A permanently
   failed disk has no fault points left. *)

module Fault = Sched.Fault

let eio k = Fault.eio (Fault.Eio k)
let offline_loc = Fp.Volatile ("td-offline", 0)

(* The _f ops also read — and their fault branches may write — the offline
   status.  Folding [offline_loc] into both sides is conservative: steps
   with live fault branches are globally dependent anyway, and once the
   budget is spent the offline status can no longer change. *)
let op_fp_f ~get id a ~durable_write w =
  let t = get w in
  let addr = Fp.Durable (region id, a) in
  let fail_write = if t.may_fail && not (one_failed t) then [ status_loc ] else [] in
  Fp.rw
    ~reads:[ addr; status_loc; offline_loc ]
    ~writes:((if durable_write then [ addr ] else []) @ fail_write @ [ offline_loc ])
    ()

let read_f ~get ~set id a : ('w, V.t) Sched.Prog.t =
  Sched.Prog.atomic
    ~fp:(op_fp_f ~get id a ~durable_write:false)
    ~faults:(fun w ->
      let t = get w in
      if a < 0 || a >= size t then []
      else
        match disk t id with
        | None -> []
        | Some d ->
          if is_offline t id then
            [ (Fault.Disk_online, set w (set_online t),
               V.some (Block.to_value (Single_disk.get d a))) ]
          else
            (Fault.Read_error, w, eio Fault.Read_error)
            :: (if t.offline = None then
                  [ (Fault.Disk_offline, set w (set_offline t id),
                     eio Fault.Disk_offline) ]
                else []))
    (Fmt.str "disk_read_f(%a,%d)" pp_id id a)
    (fun w ->
      let t = get w in
      if a < 0 || a >= size t then
        Sched.Prog.Ub (Printf.sprintf "disk_read_f out of bounds: %d" a)
      else
        let normal =
          match disk t id with
          | None -> (w, V.none)
          | Some d ->
            if is_offline t id then (w, eio Fault.Disk_offline)
            else (w, V.some (Block.to_value (Single_disk.get d a)))
        in
        let failure_branch =
          if t.may_fail && not (one_failed t) then [ (set w (fail t id), V.none) ]
          else []
        in
        Sched.Prog.Steps (normal :: failure_branch))

let write_f ~get ~set id a b : ('w, V.t) Sched.Prog.t =
  Sched.Prog.atomic
    ~fp:(op_fp_f ~get id a ~durable_write:true)
    ~faults:(fun w ->
      let t = get w in
      if a < 0 || a >= size t then []
      else
        match disk t id with
        | None -> []
        | Some d ->
          if is_offline t id then
            [ (Fault.Disk_online,
               set w (with_disk (set_online t) id (Some (Single_disk.set d a b))),
               V.some V.unit) ]
          else
            (Fault.Write_error, w, eio Fault.Write_error)
            :: (if t.offline = None then
                  [ (Fault.Disk_offline, set w (set_offline t id),
                     eio Fault.Disk_offline) ]
                else []))
    (Fmt.str "disk_write_f(%a,%d)" pp_id id a)
    (fun w ->
      let t = get w in
      if a < 0 || a >= size t then
        Sched.Prog.Ub (Printf.sprintf "disk_write_f out of bounds: %d" a)
      else
        let normal =
          match disk t id with
          | None -> (w, V.none)
          | Some d ->
            if is_offline t id then (w, eio Fault.Disk_offline)
            else
              (set w (with_disk t id (Some (Single_disk.set d a b))), V.some V.unit)
        in
        let failure_branch =
          if t.may_fail && not (one_failed t) then [ (set w (fail t id), V.none) ]
          else []
        in
        Sched.Prog.Steps (normal :: failure_branch))
