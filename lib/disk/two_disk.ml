(** Two-disk semantics (Table 3, §1): two physical disks of which at most one
    may fail, the substrate of the replicated-disk example.

    Failure is modeled explicitly: a read of a failed disk reports failure
    (the [ok] flag of the paper's [disk_read]), a write to a failed disk is a
    silent no-op.  In [may_fail] mode every read/write also nondeterministically
    branches into "this disk just failed", which is how the checker covers
    fail-over paths.  At most one disk ever fails. *)

module V = Tslang.Value

type id = D1 | D2

let pp_id ppf = function D1 -> Fmt.string ppf "d1" | D2 -> Fmt.string ppf "d2"

type t = {
  d1 : Single_disk.t option;  (** [None] = failed *)
  d2 : Single_disk.t option;
  may_fail : bool;
}

let init ?(may_fail = false) size =
  { d1 = Some (Single_disk.init size); d2 = Some (Single_disk.init size); may_fail }

let size t =
  match t.d1, t.d2 with
  | Some d, _ | None, Some d -> Single_disk.size d
  | None, None -> 0

let disk t = function D1 -> t.d1 | D2 -> t.d2

let with_disk t id d =
  match id with D1 -> { t with d1 = d } | D2 -> { t with d2 = d }

let one_failed t = t.d1 = None || t.d2 = None

let fail t id =
  if one_failed t then t (* at most one failure *) else with_disk t id None

let equal a b =
  Option.equal Single_disk.equal a.d1 b.d1
  && Option.equal Single_disk.equal a.d2 b.d2
  && Bool.equal a.may_fail b.may_fail

let compare a b =
  let c = Option.compare Single_disk.compare a.d1 b.d1 in
  if c <> 0 then c
  else
    let c = Option.compare Single_disk.compare a.d2 b.d2 in
    if c <> 0 then c else Bool.compare a.may_fail b.may_fail

let pp ppf t =
  let pd ppf = function
    | Some d -> Single_disk.pp ppf d
    | None -> Fmt.string ppf "FAILED"
  in
  Fmt.pf ppf "@[<h>{d1 = %a; d2 = %a}@]" pd t.d1 pd t.d2

(** Disks (and their failure status) survive crashes. *)
let crash t = t

(* --- program-level operations --- *)

(* Footprints: every operation consults the failure status (a failed disk
   changes read results and turns writes into no-ops), and in [may_fail]
   worlds that still have both disks it may also *set* it.  The status is
   durable — it survives crashes, so recovery depends on it. *)
module Fp = Sched.Footprint

let region = function D1 -> "d1" | D2 -> "d2"
let status_loc = Fp.Durable ("td-status", 0)

let op_fp ~get id a ~durable_write w =
  let t = get w in
  let addr = Fp.Durable (region id, a) in
  let fail_write = if t.may_fail && not (one_failed t) then [ status_loc ] else [] in
  Fp.rw
    ~reads:(addr :: status_loc :: [])
    ~writes:((if durable_write then [ addr ] else []) @ fail_write)
    ()

(** [read ~get ~set id a] returns [Some block] or [None] on a failed disk
    (encoded as a [Value.Opt]).  With [may_fail] the disk may also fail at
    this very step. *)
let read ~get ~set id a : ('w, V.t) Sched.Prog.t =
  Sched.Prog.atomic
    ~fp:(op_fp ~get id a ~durable_write:false)
    (Fmt.str "disk_read(%a,%d)" pp_id id a)
    (fun w ->
      let t = get w in
      if a < 0 || a >= size t then
        Sched.Prog.Ub (Printf.sprintf "disk_read out of bounds: %d" a)
      else
        let normal =
          match disk t id with
          | Some d -> (w, V.some (Block.to_value (Single_disk.get d a)))
          | None -> (w, V.none)
        in
        let failure_branch =
          if t.may_fail && not (one_failed t) then
            [ (set w (fail t id), V.none) ]
          else []
        in
        Sched.Prog.Steps (normal :: failure_branch))

(** [write ~get ~set id a b]: no-op on a failed disk; with [may_fail] the
    disk may fail just before the write (so the write is lost). *)
let write ~get ~set id a b : ('w, unit) Sched.Prog.t =
  Sched.Prog.bind
    (Sched.Prog.atomic
       ~fp:(op_fp ~get id a ~durable_write:true)
       (Fmt.str "disk_write(%a,%d)" pp_id id a)
       (fun w ->
         let t = get w in
         if a < 0 || a >= size t then
           Sched.Prog.Ub (Printf.sprintf "disk_write out of bounds: %d" a)
         else
           let normal =
             match disk t id with
             | Some d -> (set w (with_disk t id (Some (Single_disk.set d a b))), V.unit)
             | None -> (w, V.unit)
           in
           let failure_branch =
             if t.may_fail && not (one_failed t) then
               [ (set w (fail t id), V.unit) ]
             else []
           in
           Sched.Prog.Steps (normal :: failure_branch)))
    (fun _ -> Sched.Prog.return ())
