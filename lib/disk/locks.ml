(** In-memory lock maps, lens-composed into a larger world.

    Locks are volatile: a crash clears them ([empty]).  The runner/checker
    treats a failed [try_acquire] as a blocked step, so acquisition is
    naturally fair-less blocking; releasing a lock nobody holds is undefined
    behaviour (it means the program's lock discipline is broken). *)

module Iset = Set.Make (Int)
module V = Tslang.Value

type t = Iset.t
(** The set of currently-held lock ids. *)

let empty = Iset.empty
let is_held id t = Iset.mem id t
let equal = Iset.equal
let compare = Iset.compare

let pp ppf t =
  Fmt.pf ppf "{held: %a}" (Fmt.list ~sep:Fmt.comma Fmt.int) (Iset.elements t)

(** [acquire ~get ~set id] blocks while [id] is held, then takes it. *)
let acquire ~get ~set id : ('w, unit) Sched.Prog.t =
  Sched.Prog.bind
    (Sched.Prog.blocked_until
       ~fp:(Sched.Footprint.const (Sched.Footprint.acquire (Sched.Footprint.lock id)))
       (Printf.sprintf "acquire(%d)" id)
       (fun w ->
         let locks = get w in
         if Iset.mem id locks then None
         else Some (set w (Iset.add id locks), V.unit)))
    (fun _ -> Sched.Prog.return ())

(** [release ~get ~set id] frees the lock; UB if it was not held. *)
let release ~get ~set id : ('w, unit) Sched.Prog.t =
  Sched.Prog.bind
    (Sched.Prog.atomic
       ~fp:(Sched.Footprint.const (Sched.Footprint.release (Sched.Footprint.lock id)))
       (Printf.sprintf "release(%d)" id)
       (fun w ->
         let locks = get w in
         if Iset.mem id locks then Sched.Prog.Steps [ (set w (Iset.remove id locks), V.unit) ]
         else Sched.Prog.Ub (Printf.sprintf "release of un-held lock %d" id)))
    (fun _ -> Sched.Prog.return ())
