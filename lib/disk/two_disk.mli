(** Two-disk semantics (Table 3, §1): two physical disks of which at most
    one may fail — the substrate of the replicated-disk example.

    A read of a failed disk reports failure (the [ok] flag of the paper's
    [disk_read], encoded as an option value); a write to a failed disk is a
    silent no-op.  In [may_fail] mode every read/write also
    nondeterministically branches into "this disk just failed", which is
    how the checker covers fail-over paths. *)

type id = D1 | D2

val pp_id : id Fmt.t

type t = {
  d1 : Single_disk.t option;  (** [None] = failed *)
  d2 : Single_disk.t option;
  may_fail : bool;
  offline : id option;
      (** a disk transiently detached by a {!Sched.Fault.Disk_offline}
          fault; contents survive, and only the [_f] ops consult it *)
}

val init : ?may_fail:bool -> int -> t
val size : t -> int
val disk : t -> id -> Single_disk.t option
val one_failed : t -> bool

val fail : t -> id -> t
(** Fail a disk permanently; a no-op if the other disk already failed (the
    model tolerates exactly one permanent failure).  Clears the offline
    mark of the failed disk. *)

val is_offline : t -> id -> bool
val set_offline : t -> id -> t
val set_online : t -> t

val equal : t -> t -> bool
val compare : t -> t -> int
val pp : t Fmt.t

val crash : t -> t
(** Disk contents and permanent-failure status survive crashes; a power
    cycle re-attaches a transiently offline disk. *)

(** {1 Program-level operations} *)

val read :
  get:('w -> t) -> set:('w -> t -> 'w) -> id -> int -> ('w, Tslang.Value.t) Sched.Prog.t
(** Returns [Some block] or [None] (failed disk), as a [Value.Opt]. *)

val write :
  get:('w -> t) -> set:('w -> t -> 'w) -> id -> int -> Block.t -> ('w, unit) Sched.Prog.t

(** {1 Fallible operations}

    Return-value convention: [Opt (Some v)] success, [Opt None] permanent
    disk failure (the tolerated Table 3 failure), {!Sched.Fault.eio} a
    transient error worth retrying.  Fault points while alive and attached:
    [Read_error]/[Write_error] (nothing persisted) and [Disk_offline]
    (detaches the disk — at most one at a time); while detached, the only
    fault point is [Disk_online], which re-attaches and performs the
    operation, and the normal outcome is a transient error.  The plain ops
    above ignore the offline dimension entirely. *)

val read_f :
  get:('w -> t) -> set:('w -> t -> 'w) -> id -> int -> ('w, Tslang.Value.t) Sched.Prog.t

val write_f :
  get:('w -> t) ->
  set:('w -> t -> 'w) ->
  id ->
  int ->
  Block.t ->
  ('w, Tslang.Value.t) Sched.Prog.t
