(** Single-disk semantics (Table 3): one durable array of blocks with atomic
    per-block reads and writes — the substrate under the shadow-copy,
    write-ahead-log and group-commit examples. *)

type t

val init : int -> t
(** [init size]: all blocks zero. *)

val size : t -> int
val in_bounds : t -> int -> bool

val get : t -> int -> Block.t
(** Raises [Invalid_argument] out of bounds (a harness bug; program-level
    access goes through {!read}, where it is undefined behaviour). *)

val set : t -> int -> Block.t -> t
(** Raises [Invalid_argument] out of bounds. *)

val equal : t -> t -> bool
val compare : t -> t -> int
val pp : t Fmt.t

val crash : t -> t
(** Disk contents survive crashes unchanged. *)

(** {1 Program-level operations} (atomic steps, lens-composed) *)

val read : get_disk:('w -> t) -> int -> ('w, Tslang.Value.t) Sched.Prog.t
(** Out-of-bounds access is undefined behaviour. *)

val write :
  get_disk:('w -> t) -> set_disk:('w -> t -> 'w) -> int -> Block.t -> ('w, unit) Sched.Prog.t

(** {1 Fallible operations}

    Same semantics as {!read}/{!write} plus declared fault points
    ({!Sched.Fault}); the infallible ops remain as-is, so systems that
    ignore faults keep their exact state spaces.  Success returns the raw
    value ([Str] block or [Unit]); a transient fault returns
    {!Sched.Fault.eio} — callers test with {!Sched.Fault.is_eio}.  A failed
    write persists nothing; a {!Sched.Fault.Torn_write}[ k] on
    {!write_multi_f} persists exactly the first [k] entries. *)

val read_f : get_disk:('w -> t) -> int -> ('w, Tslang.Value.t) Sched.Prog.t
(** Fault points: [Read_error] (state unchanged). *)

val write_f :
  get_disk:('w -> t) ->
  set_disk:('w -> t -> 'w) ->
  int ->
  Block.t ->
  ('w, Tslang.Value.t) Sched.Prog.t
(** Fault points: [Write_error] (nothing persisted). *)

val write_multi_f :
  get_disk:('w -> t) ->
  set_disk:('w -> t -> 'w) ->
  (int * Block.t) list ->
  ('w, Tslang.Value.t) Sched.Prog.t
(** One atomic step writing all entries.  Fault points: [Write_error]
    (nothing persisted) and [Torn_write k] for every proper prefix length
    [1 <= k < n] (first [k] entries persisted).  Crash-equivalent to the
    same blocks written as a sequence of single writes. *)
