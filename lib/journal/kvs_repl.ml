(* The command interpreter behind [bin/kvs_server]: a line-oriented front
   end over the journaled transactional KVS.  It lives in the library so the
   test suite can drive it directly — the REPL loop in the binary is just
   [input_line] + [exec_line].

   Robustness contract: [exec_line] never raises on any input.  Malformed
   or oversized input yields an ["ERR ..."] response; an unexpected
   exception from the store is caught and reported as ["ERR internal: ..."]
   rather than killing the session. *)

module K = Kvs
module V = Tslang.Value
module Block = Disk.Block

type t = { params : K.params; timeout_steps : int option; mutable world : K.world }

(* --timeout-ms is converted to a step budget: the simulated backend has no
   wall clock, so one millisecond of patience buys a fixed number of
   committed program steps.  Deterministic on purpose — the regression test
   must see the same verdict on every machine. *)
let steps_per_ms = 1000

let create ?(n_keys = 8) ?timeout_ms () =
  let params = K.params ~n_keys () in
  let timeout_steps = Option.map (fun ms -> max 0 ms * steps_per_ms) timeout_ms in
  { params; timeout_steps; world = K.init_world params }

let params t = t.params

let max_line = 4096

let help = "GET/PUT/TXN/ASYNC/FLUSH/CRASH/RECOVER/DUMP/QUIT"

exception Quit
exception Timeout

let run t prog =
  match t.timeout_steps with
  | None ->
    let w, v = Sched.Runner.run1 t.world prog in
    t.world <- w;
    v
  | Some max_steps -> (
    (* a command that exceeds its budget — a degraded _ft path spinning
       through retries, or any runaway backend program — is abandoned with
       the world at its pre-command state, like a client giving up *)
    match Sched.Runner.run ~max_steps t.world [ prog ] with
    | o ->
      t.world <- o.Sched.Runner.world;
      o.Sched.Runner.results.(0)
    | exception Failure _ -> raise Timeout)

let dump t =
  let p = t.params in
  List.init p.K.n_keys (fun k ->
      let v = run t (K.get_prog p k) in
      Printf.sprintf "  %d -> %s" k (Block.to_string (Block.of_value v)))

let exec_unsafe t line : string list =
  let p = t.params in
  let words = String.split_on_char ' ' (String.trim line) in
  let words = List.filter (fun w -> w <> "") words in
  let in_bounds k = k >= 0 && k < p.K.n_keys in
  let key s = match int_of_string_opt s with Some k when in_bounds k -> Some k | _ -> None in
  match words with
  | [] -> []
  | cmd :: args -> (
    match String.uppercase_ascii cmd, args with
    | "GET", [ k ] -> (
      match key k with
      | Some k -> [ Block.to_string (Block.of_value (run t (K.get_prog p k))) ]
      | None -> [ "ERR bad key" ])
    | "GET", _ -> [ "ERR usage: GET <k>" ]
    | "PUT", [ k; v ] -> (
      match key k with
      | Some k ->
        ignore (run t (K.put_prog p k (V.str v)));
        [ "OK durable" ]
      | None -> [ "ERR bad key" ])
    | "PUT", _ -> [ "ERR usage: PUT <k> <v>" ]
    | "ASYNC", [ k; v ] -> (
      match key k with
      | Some k ->
        ignore (run t (K.put_async_prog p k (V.str v)));
        [ "OK buffered" ]
      | None -> [ "ERR bad key" ])
    | "ASYNC", _ -> [ "ERR usage: ASYNC <k> <v>" ]
    | "TXN", (_ :: _ as pairs) -> (
      let parse pair =
        match String.index_opt pair '=' with
        | Some i ->
          let k = String.sub pair 0 i in
          let v = String.sub pair (i + 1) (String.length pair - i - 1) in
          Option.map (fun k -> (k, Block.of_string v)) (key k)
        | None -> None
      in
      let entries = List.map parse pairs in
      if List.exists Option.is_none entries then [ "ERR usage: TXN k=v [k=v ...]" ]
      else
        let entries = List.filter_map Fun.id entries in
        let keys = List.map fst entries in
        if List.length (List.sort_uniq compare keys) < List.length keys then
          [ "ERR duplicate key in transaction" ]
        else if List.length entries > p.K.max_slots then [ "ERR transaction too large" ]
        else begin
          ignore (run t (K.txn_prog p entries));
          [ Printf.sprintf "OK committed %d keys" (List.length entries) ]
        end)
    | "TXN", [] -> [ "ERR usage: TXN k=v [k=v ...]" ]
    | "FLUSH", [] ->
      ignore (run t (K.flush_prog p));
      [ "OK flushed" ]
    | "CRASH", [] ->
      t.world <- K.crash_world t.world;
      [ "OK crashed (buffer lost)" ]
    | "RECOVER", [] ->
      ignore (run t (K.recover p));
      [ "OK recovered" ]
    | "DUMP", [] -> dump t
    | "QUIT", [] -> raise Quit
    | ("FLUSH" | "CRASH" | "RECOVER" | "DUMP"), _ :: _ ->
      [ Printf.sprintf "ERR %s takes no arguments" (String.uppercase_ascii cmd) ]
    | _ -> [ "ERR unknown command (" ^ help ^ ")" ])

let exec_line t line : string list =
  if String.length line > max_line then
    [ Printf.sprintf "ERR line too long (%d bytes max)" max_line ]
  else
    try exec_unsafe t line with
    | Quit -> raise Quit
    | Timeout -> [ "ERR timeout" ]
    | e -> [ "ERR internal: " ^ Printexc.to_string e ]
