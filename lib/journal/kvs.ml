(** A crash-safe transactional key-value store on the multi-address journal
    ({!Txn_log}) — the GoJournal/dafny-jrnl layering, reproduced inside the
    outline/refinement checking stack.

    The store holds a fixed capacity of [n_keys] keys (key = data-region
    address, value = one block).  Operations:

    - [kv_get k]        read key [k];
    - [kv_put k v]      durable single-key put (commits a journal txn);
    - [kv_txn entries]  durable multi-key put — all or nothing;
    - [kv_put_async]    buffered put: acknowledged before it is durable;
    - [kv_flush]        make every buffered put durable in ONE journal txn.

    Locking: one lock per key (ids [0..n_keys-1]) guarding that key's data
    block, plus a commit lock (id [n_keys]) guarding the log region and the
    volatile group-commit buffer.  Gets take only their key's lock; a
    durable commit takes every key lock (ascending, then the commit lock —
    a total order, so no deadlock) because flushing merges the whole buffer
    into one transaction.

    The group-commit loss window is visible in the specification, exactly
    as for {!Systems.Group_commit}: abstract state is (committed map,
    pending transaction queue) and the crash transition DROPS the pending
    queue — committed puts survive, acknowledged-but-unflushed ones may be
    lost, in-flight transactions are never partially applied.  Checking the
    implementation against [strict_spec] (crash loses nothing) must fail;
    that rejection is what shows the spec needs the loss window. *)

module V = Tslang.Value
module T = Tslang.Transition
module Spec = Tslang.Spec
module P = Sched.Prog
module Block = Disk.Block

type params = { n_keys : int; max_slots : int; backend : Txn_log.backend }

(** [max_slots] defaults to [n_keys]: a merged group commit has at most one
    entry per key, so the log can always hold a full flush.  [backend]
    (default [`Direct]) selects the journal's commit protocol — [`Wal]
    batches commits through the circular log. *)
let params ?(backend = `Direct) ?max_slots ~n_keys () =
  let max_slots = match max_slots with Some m -> m | None -> n_keys in
  if n_keys <= 0 then invalid_arg "Kvs.params";
  if max_slots < n_keys then invalid_arg "Kvs.params: log smaller than a full flush";
  { n_keys; max_slots; backend }

let layout p = Txn_log.layout ~n_data:p.n_keys ~max_slots:p.max_slots

type txn = (int * Block.t) list

(* ------------------------------------------------------------------ *)
(* Specification: finite map + pending queue, lossy crash               *)
(* ------------------------------------------------------------------ *)

type state = {
  committed : Block.t list;  (** durable value per key *)
  pending : txn list;  (** acknowledged, not yet flushed; newest last *)
}

let apply_txn m (t : txn) =
  List.fold_left (fun m (k, b) -> List.mapi (fun i x -> if i = k then b else x) m) m t

let view st = List.fold_left apply_txn st.committed st.pending
let view_key st k = List.nth (view st) k

let compare_txn = List.compare (fun (k1, b1) (k2, b2) ->
    let c = Int.compare k1 k2 in
    if c <> 0 then c else Block.compare b1 b2)

let entries_of_value = Txn_log.entries_of_value
let value_of_entries = Txn_log.value_of_entries

let spec p : state Spec.t =
  let open T.Syntax in
  let in_bounds k = k >= 0 && k < p.n_keys in
  (* A durable commit linearizes the whole pending queue plus [extra]. *)
  let settle extra st =
    { committed = view { st with pending = st.pending @ [ extra ] }; pending = [] }
  in
  {
    Spec.name = "kvs";
    init = { committed = List.init p.n_keys (fun _ -> Block.zero); pending = [] };
    compare_state =
      (fun s1 s2 ->
        let c = List.compare Block.compare s1.committed s2.committed in
        if c <> 0 then c else List.compare compare_txn s1.pending s2.pending);
    pp_state =
      (fun ppf st ->
        let entry ppf (k, b) = Fmt.pf ppf "%d:%a" k Block.pp b in
        Fmt.pf ppf "{committed=[%a] pending=[%a]}"
          (Fmt.list ~sep:Fmt.semi Block.pp) st.committed
          (Fmt.list ~sep:Fmt.sp (Fmt.brackets (Fmt.list ~sep:Fmt.semi entry)))
          st.pending);
    step =
      (fun op args ->
        match op, args with
        | "kv_get", [ k ] ->
          let k = V.get_int k in
          let* () = T.check (in_bounds k) in
          let* st = T.reads in
          T.ret (Block.to_value (view_key st k))
        | "kv_put", [ k; v ] ->
          let k = V.get_int k in
          let* () = T.check (in_bounds k) in
          let* () = T.modify (settle [ (k, Block.of_value v) ]) in
          T.ret V.unit
        | "kv_txn", [ v ] ->
          let entries = entries_of_value v in
          let* () = T.check (List.for_all (fun (k, _) -> in_bounds k) entries) in
          let* () = T.modify (settle entries) in
          T.ret V.unit
        | "kv_put_async", [ k; v ] ->
          let k = V.get_int k in
          let* () = T.check (in_bounds k) in
          let* () =
            T.modify (fun st -> { st with pending = st.pending @ [ [ (k, Block.of_value v) ] ] })
          in
          T.ret V.unit
        | "kv_flush", [] ->
          let* () = T.modify (settle []) in
          T.ret V.unit
        (* Graceful-degradation arms: the op either takes effect atomically
           or returns {!Sched.Fault.err_value} with state untouched. *)
        | "kv_get_ft", [ k ] ->
          let k = V.get_int k in
          let* () = T.check (in_bounds k) in
          let* st = T.reads in
          let* r = T.choose [ Block.to_value (view_key st k); Sched.Fault.err_value ] in
          T.ret r
        | "kv_put_ft", [ k; v ] ->
          let k = V.get_int k in
          let* () = T.check (in_bounds k) in
          let* ok = T.choose [ true; false ] in
          if ok then
            let* () = T.modify (settle [ (k, Block.of_value v) ]) in
            T.ret V.unit
          else T.ret Sched.Fault.err_value
        | "kv_txn_ft", [ v ] ->
          let entries = entries_of_value v in
          let* () = T.check (List.for_all (fun (k, _) -> in_bounds k) entries) in
          let* ok = T.choose [ true; false ] in
          if ok then
            let* () = T.modify (settle entries) in
            T.ret V.unit
          else T.ret Sched.Fault.err_value
        | _ -> invalid_arg "kvs spec: unknown op");
    (* The loss window: a crash drops everything not yet flushed. *)
    crash = T.modify (fun st -> { st with pending = [] });
  }

(** The lossless crash spec the implementation must FAIL against — the
    experiment showing the group-commit window is real. *)
let strict_spec p : state Spec.t = { (spec p) with crash = T.ret () }

(* ------------------------------------------------------------------ *)
(* World and implementation                                             *)
(* ------------------------------------------------------------------ *)

type world = {
  disk : Disk.Single_disk.t;
  buffer : txn list;  (** volatile group-commit buffer, newest last *)
  locks : Disk.Locks.t;
}

let init_world p =
  { disk = Disk.Single_disk.init (Txn_log.disk_size (layout p));
    buffer = [];
    locks = Disk.Locks.empty }

let crash_world w = { w with buffer = []; locks = Disk.Locks.empty }

let pp_world ppf w =
  let entry ppf (k, b) = Fmt.pf ppf "%d:%a" k Block.pp b in
  Fmt.pf ppf "%a buf=[%a] %a" Disk.Single_disk.pp w.disk
    (Fmt.list ~sep:Fmt.sp (Fmt.brackets (Fmt.list ~sep:Fmt.semi entry)))
    w.buffer Disk.Locks.pp w.locks

let get_disk w = w.disk
let set_disk w disk = { w with disk }
let get_locks w = w.locks
let set_locks w locks = { w with locks }

let commit_lock p = p.n_keys
let lock l = Disk.Locks.acquire ~get:get_locks ~set:set_locks l
let unlock l = Disk.Locks.release ~get:get_locks ~set:set_locks l
let disk_read a = Disk.Single_disk.read ~get_disk a

open P.Syntax

(* Every key lock in ascending order, then the commit lock: the global
   acquisition order that makes the full-flush path deadlock-free. *)
let lock_all p = P.seq (List.init (p.n_keys + 1) (fun l -> lock l))
let unlock_all p = P.seq (List.init (p.n_keys + 1) (fun i -> unlock (p.n_keys - i)))

(* Last-write-wins merge of a transaction queue into at most one entry per
   key (sorted), mirroring the spec's sequential [apply_txn]. *)
let merge (txns : txn list) : txn =
  let latest =
    List.fold_left (fun acc (k, b) -> (k, b) :: List.remove_assoc k acc) [] (List.concat txns)
  in
  List.sort (fun (k1, _) (k2, _) -> Int.compare k1 k2) latest

(* The buffered value a get must prefer over the data region: the newest
   pending write to [k], if any. *)
let buffered_value k buffer =
  List.fold_left
    (fun acc (k', b) -> if k' = k then Some b else acc)
    None (List.concat buffer)

(** Commit the whole buffer plus [extra] as ONE journal transaction.
    Caller holds every key lock and the commit lock. *)
let commit_pending_prog p (extra : txn list) : (world, unit) P.t =
  let* mv = P.read ~fp:(Sched.Footprint.const (Sched.Footprint.reads [ Sched.Footprint.cell "buffer" ])) "buffer_merge" (fun w -> value_of_entries (merge (w.buffer @ extra))) in
  match entries_of_value mv with
  | [] -> P.return ()
  | entries ->
    let* () = Txn_log.commit_prog ~backend:p.backend ~get_disk ~set_disk (layout p) entries in
    P.write ~fp:(Sched.Footprint.const (Sched.Footprint.writes [ Sched.Footprint.cell "buffer" ])) "buffer_clear" (fun w -> { w with buffer = [] })

(** Read key [k] under its key lock alone: a committing transaction holds
    the key locks of its whole footprint from log-append to record-clear,
    so the data block can never be observed mid-apply. *)
let get_prog p k : (world, V.t) P.t =
  ignore p;
  let* () = lock k in
  let* buf =
    P.read ~fp:(Sched.Footprint.const (Sched.Footprint.reads [ Sched.Footprint.cell "buffer" ])) "buffer_find" (fun w ->
        match buffered_value k w.buffer with
        | Some b -> V.some (Block.to_value b)
        | None -> V.none)
  in
  let* v = match V.get_opt buf with Some v -> P.return v | None -> disk_read k in
  let* () = unlock k in
  P.return v

(** The coarser get the proof outline ({!Kvs_proof}) covers exactly: key
    lock then commit lock, so the pinned commit record rules out the
    committed-but-unapplied window by lease agreement alone. *)
let get_sync_prog p k : (world, V.t) P.t =
  let* () = lock k in
  let* () = lock (commit_lock p) in
  let* buf =
    P.read ~fp:(Sched.Footprint.const (Sched.Footprint.reads [ Sched.Footprint.cell "buffer" ])) "buffer_find" (fun w ->
        match buffered_value k w.buffer with
        | Some b -> V.some (Block.to_value b)
        | None -> V.none)
  in
  let* v = match V.get_opt buf with Some v -> P.return v | None -> disk_read k in
  let* () = unlock (commit_lock p) in
  let* () = unlock k in
  P.return v

let put_prog p k v : (world, V.t) P.t =
  let* () = lock_all p in
  let* () = commit_pending_prog p [ [ (k, Block.of_value v) ] ] in
  let* () = unlock_all p in
  P.return V.unit

let txn_prog p (entries : txn) : (world, V.t) P.t =
  let* () = lock_all p in
  let* () = commit_pending_prog p [ entries ] in
  let* () = unlock_all p in
  P.return V.unit

(** Acknowledge a put after ONE volatile buffer append — the group-commit
    fast path, and the whole reason the spec's crash transition must drop
    the pending queue. *)
let put_async_prog p k v : (world, V.t) P.t =
  let* () = lock (commit_lock p) in
  let* () =
    P.write ~fp:(Sched.Footprint.const (Sched.Footprint.writes [ Sched.Footprint.cell "buffer" ])) "buffer_append" (fun w ->
        { w with buffer = w.buffer @ [ [ (k, Block.of_value v) ] ] })
  in
  let* () = unlock (commit_lock p) in
  P.return V.unit

let flush_prog p : (world, V.t) P.t =
  let* () = lock_all p in
  let* () = commit_pending_prog p [] in
  let* () = unlock_all p in
  P.return V.unit

(* ------------------------------------------------------------------ *)
(* Fault-tolerant operations                                            *)
(* ------------------------------------------------------------------ *)

(** Commit the buffer plus [extra] through the fault-tolerant journal
    protocol ({!Txn_log.commit_ft_prog}).  On a clean abort the buffer is
    left alone — the acknowledged puts stay pending, so observable state
    is untouched, as the [_ft] spec arms demand. *)
let commit_pending_ft_prog ?retries p (extra : txn list) : (world, V.t) P.t =
  let* mv = P.read ~fp:(Sched.Footprint.const (Sched.Footprint.reads [ Sched.Footprint.cell "buffer" ])) "buffer_merge" (fun w -> value_of_entries (merge (w.buffer @ extra))) in
  match entries_of_value mv with
  | [] -> P.return V.unit
  | entries ->
    let* r = Txn_log.commit_ft_prog ~backend:p.backend ~get_disk ~set_disk ?retries (layout p) entries in
    if Sched.Fault.is_eio r then P.return r
    else
      let* () = P.write ~fp:(Sched.Footprint.const (Sched.Footprint.writes [ Sched.Footprint.cell "buffer" ])) "buffer_clear" (fun w -> { w with buffer = [] }) in
      P.return V.unit

(** Like {!get_prog}, through the fallible disk read with bounded retry;
    degrades to {!Sched.Fault.err_value} when the retries are exhausted.
    Buffered values never touch the disk, so that path cannot fail. *)
let get_ft_prog ?(retries = 1) p k : (world, V.t) P.t =
  ignore p;
  let* () = lock k in
  let* buf =
    P.read ~fp:(Sched.Footprint.const (Sched.Footprint.reads [ Sched.Footprint.cell "buffer" ])) "buffer_find" (fun w ->
        match buffered_value k w.buffer with
        | Some b -> V.some (Block.to_value b)
        | None -> V.none)
  in
  let* v =
    match V.get_opt buf with
    | Some v -> P.return v
    | None ->
      let rec attempt n =
        let* r = Disk.Single_disk.read_f ~get_disk k in
        if Sched.Fault.is_eio r then
          if n > 0 then
            let* () = P.read ~fp:(Sched.Footprint.const Sched.Footprint.pure) "retry(get)" (fun _ -> ()) in
            attempt (n - 1)
          else P.return Sched.Fault.err_value
        else P.return r
      in
      attempt retries
  in
  let* () = unlock k in
  P.return v

let put_ft_prog ?retries p k v : (world, V.t) P.t =
  let* () = lock_all p in
  let* r = commit_pending_ft_prog ?retries p [ [ (k, Block.of_value v) ] ] in
  let* () = unlock_all p in
  P.return r

let txn_ft_prog ?retries p (entries : txn) : (world, V.t) P.t =
  let* () = lock_all p in
  let* r = commit_pending_ft_prog ?retries p [ entries ] in
  let* () = unlock_all p in
  P.return r

(** Recovery is the journal's: replay a committed-but-unapplied transaction
    (helping), clear the record.  The buffer died with the crash. *)
let recover p : (world, V.t) P.t = Txn_log.recover_prog ~backend:p.backend ~get_disk ~set_disk (layout p)

(* ------------------------------------------------------------------ *)
(* Checker configuration                                                *)
(* ------------------------------------------------------------------ *)

let get_call p k = (Spec.call "kv_get" [ V.int k ], get_prog p k)
let get_sync_call p k = (Spec.call "kv_get" [ V.int k ], get_sync_prog p k)
let put_call p k v = (Spec.call "kv_put" [ V.int k; v ], put_prog p k v)
let txn_call p entries = (Spec.call "kv_txn" [ value_of_entries entries ], txn_prog p entries)
let put_async_call p k v = (Spec.call "kv_put_async" [ V.int k; v ], put_async_prog p k v)
let flush_call p = (Spec.call "kv_flush" [], flush_prog p)

let get_ft_call ?retries p k = (Spec.call "kv_get_ft" [ V.int k ], get_ft_prog ?retries p k)
let put_ft_call ?retries p k v = (Spec.call "kv_put_ft" [ V.int k; v ], put_ft_prog ?retries p k v)

let txn_ft_call ?retries p entries =
  (Spec.call "kv_txn_ft" [ value_of_entries entries ], txn_ft_prog ?retries p entries)

(** Post-crash probes: read back every key. *)
let probe p = List.init p.n_keys (fun k -> get_call p k)

let checker_config p ?spec:(sp = spec p) ?(max_crashes = 1) ?(fault_budget = 0) threads :
    (world, state) Perennial_core.Refinement.config =
  Perennial_core.Refinement.config ~spec:sp ~init_world:(init_world p) ~crash_world
    ~pp_world ~threads ~recovery:(recover p) ~post:(probe p) ~max_crashes ~fault_budget ()

(* ------------------------------------------------------------------ *)
(* Seeded bugs                                                          *)
(* ------------------------------------------------------------------ *)

module Buggy = struct
  (** A get that goes straight to the data region: it misses acknowledged
      buffered puts — caught with no crash at all. *)
  let get_skip_buffer p k : (world, V.t) P.t =
    ignore p;
    let* () = lock k in
    let* v = disk_read k in
    let* () = unlock k in
    P.return v

  let get_call_skip_buffer p k = (Spec.call "kv_get" [ V.int k ], get_skip_buffer p k)

  (* Commit through a broken journal protocol. *)
  let commit_via buggy_commit p extra : (world, V.t) P.t =
    let* () = lock_all p in
    let* mv = P.read ~fp:(Sched.Footprint.const (Sched.Footprint.reads [ Sched.Footprint.cell "buffer" ])) "buffer_merge" (fun w -> value_of_entries (merge (w.buffer @ extra))) in
    let* () =
      match entries_of_value mv with
      | [] -> P.return ()
      | entries ->
        let* () = buggy_commit ~get_disk ~set_disk (layout p) entries in
        P.write ~fp:(Sched.Footprint.const (Sched.Footprint.writes [ Sched.Footprint.cell "buffer" ])) "buffer_clear" (fun w -> { w with buffer = [] })
    in
    let* () = unlock_all p in
    P.return V.unit

  (** Commit record written before the log entries: recovery can replay
      stale slots as if they were this transaction. *)
  let txn_record_first p entries =
    (Spec.call "kv_txn" [ value_of_entries entries ],
     commit_via Txn_log.Buggy.commit_record_first p [ entries ])

  (** In-place multi-key update without the journal: a crash mid-apply
      tears the transaction. *)
  let txn_no_log p entries =
    (Spec.call "kv_txn" [ value_of_entries entries ],
     commit_via Txn_log.Buggy.commit_no_log p [ entries ])

  (** Recovery that ignores the commit record. *)
  let recover_nop : (world, V.t) P.t = P.return V.unit

  (** Fault-handling bug #3 at the store level — error swallowed after a
      partial apply ({!Txn_log.Buggy.commit_ft_swallow_apply}): the put
      reports success while the key's data block was never written and the
      commit record is already cleared.  The next get of the key reads the
      stale block — fault budget 1, no crash needed. *)
  let put_ft_swallow_apply p k v : (world, V.t) P.t =
    let* () = lock_all p in
    let* mv = P.read ~fp:(Sched.Footprint.const (Sched.Footprint.reads [ Sched.Footprint.cell "buffer" ])) "buffer_merge" (fun w -> value_of_entries (merge (w.buffer @ [ [ (k, Block.of_value v) ] ]))) in
    let* r =
      match entries_of_value mv with
      | [] -> P.return V.unit
      | entries ->
        let* r = Txn_log.Buggy.commit_ft_swallow_apply ~get_disk ~set_disk (layout p) entries in
        let* () = P.write ~fp:(Sched.Footprint.const (Sched.Footprint.writes [ Sched.Footprint.cell "buffer" ])) "buffer_clear" (fun w -> { w with buffer = [] }) in
        P.return r
    in
    let* () = unlock_all p in
    P.return r

  let put_ft_call_swallow_apply p k v =
    (Spec.call "kv_put_ft" [ V.int k; v ], put_ft_swallow_apply p k v)
end
