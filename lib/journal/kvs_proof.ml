(** The Perennial proof of the journaled key-value store, as checkable
    outlines — the {!Systems.Wal_proof} argument lifted to the
    multi-address journal, on the 2-key instance
    ([Kvs.params ~n_keys:2 ()]).

    Disk locations (cf. {!Txn_log} layout for [n_data = 2],
    [max_slots = 2]):

    - [k0], [k1]        the data region (one block per key);
    - [rec]             the commit record (entry count, "0" = idle);
    - [a0] [v0] [a1] [v1]  the two log slots (address, value).

    Locks: key lock 0 owns the lease on [k0], key lock 1 owns the lease on
    [k1], and the commit lock 2 owns the log-region leases — with the
    record lease pinned to "0", so any outline holding the commit lock can
    cut the committed disjuncts by constant disagreement, exactly like the
    WAL's flag-pinning trick.

    The crash invariant tracks the journal commit protocol for a
    full-footprint transaction [kv_txn(w0, w1)]:

    - [E]   record "0": data pair matches the abstract cells;
    - [C0]  record "2": slots hold (0,l0) (1,l1), a helping token
            [j ⤇ kv_txn(l0,l1)] is stored, data untouched;
    - [C1]  as [C0], key 0 already applied;
    - [C2]  as [C0], both applied, record not yet cleared.

    Two deliberate gaps between this outline and {!Kvs}, both covered by
    the exhaustive {!Perennial_core.Refinement} checker instead:

    - the outline's get ([Kvs.get_sync_prog]) takes key lock then commit
      lock; the implementation's fast-path get takes only its key lock.
      Its safety rests on the committer holding the key locks of its whole
      footprint, a per-key ownership argument the per-location lease
      language cannot express (the GoJournal follow-on work adds exactly
      such lifting predicates);
    - the group-commit buffer is volatile, so it cannot appear in a crash
      invariant at all; the buffered path (async put / flush) is checked
      purely by refinement, as for {!Systems.Group_commit}.  The symbolic
      crash transition is therefore the identity on the committed cells
      ([crash_cells = []]). *)

module A = Seplogic.Assertion
module Sv = Seplogic.Sval
module O = Perennial_core.Outline

let l_k0 = "k0"
let l_k1 = "k1"
let l_rec = "rec"
let l_a0 = "a0"
let l_v0 = "v0"
let l_a1 = "a1"
let l_v1 = "v1"
let c_k0 = "sk0"
let c_k1 = "sk1"
let s_idle = Sv.str "0"
let s_committed = Sv.str "2"

let key0_lock = 0
let key1_lock = 1
let commit_lock = 2

(* --- symbolic spec operations --- *)

(** [kv_get k] for a concrete key "0" | "1". *)
let get_op : O.sym_op =
  {
    O.op_name = "kv_get";
    sym_apply =
      (fun ~lookup args ->
        let cell k =
          match lookup k with
          | Some v -> Ok ([], v)
          | None -> Error "abstract cell not at hand"
        in
        match args with
        | [ k ] when Sv.equal k (Sv.str "0") -> cell c_k0
        | [ k ] when Sv.equal k (Sv.str "1") -> cell c_k1
        | _ -> Error "kv_get expects a concrete key");
  }

(** Full-footprint transaction: write both keys atomically. *)
let txn_op : O.sym_op =
  {
    O.op_name = "kv_txn";
    sym_apply =
      (fun ~lookup:_ args ->
        match args with
        | [ w0; w1 ] -> Ok ([ (c_k0, w0); (c_k1, w1) ], Sv.unit)
        | _ -> Error "kv_txn expects two values");
  }

(* --- invariants --- *)

let key0_inv : A.t = [ A.heap [ A.lease l_k0 (Sv.var "a") ] ]
let key1_inv : A.t = [ A.heap [ A.lease l_k1 (Sv.var "b") ] ]

(** The commit lock owns the log region; the record lease is pinned to
    "0" whenever the lock is free. *)
let commit_inv : A.t =
  [
    A.heap
      [ A.lease l_rec s_idle; A.lease l_a0 (Sv.var "p"); A.lease l_v0 (Sv.var "q");
        A.lease l_a1 (Sv.var "r"); A.lease l_v1 (Sv.var "s") ];
  ]

let crash_inv : A.t =
  let masters rcd d0 d1 a0 v0 a1 v1 =
    [ A.master l_rec rcd; A.master l_k0 d0; A.master l_k1 d1;
      A.master l_a0 a0; A.master l_v0 v0; A.master l_a1 a1; A.master l_v1 v1 ]
  in
  let committed d0 d1 =
    A.heap
      (masters s_committed d0 d1 (Sv.str "0") (Sv.var "l0") (Sv.str "1") (Sv.var "l1")
      @ [ A.spec_cell c_k0 (Sv.var "x0"); A.spec_cell c_k1 (Sv.var "x1");
          A.spec_tok (Sv.var "jh") "kv_txn" [ Sv.var "l0"; Sv.var "l1" ] ])
  in
  [
    (* E: idle; data = abstract cells, log contents irrelevant *)
    A.heap
      (masters s_idle (Sv.var "x0") (Sv.var "x1") (Sv.var "g0") (Sv.var "g1")
         (Sv.var "g2") (Sv.var "g3")
      @ [ A.spec_cell c_k0 (Sv.var "x0"); A.spec_cell c_k1 (Sv.var "x1") ]);
    (* C0: committed, not yet applied *)
    committed (Sv.var "x0") (Sv.var "x1");
    (* C1: key 0 applied *)
    committed (Sv.var "l0") (Sv.var "x1");
    (* C2: both applied, record not yet cleared *)
    committed (Sv.var "l0") (Sv.var "l1");
  ]

let cinv = "kvs"

let system : O.system =
  {
    O.sys_name = "journal-kvs";
    ops = [ get_op; txn_op ];
    (* committed puts survive a crash untouched; the pending queue is
       volatile and outside the symbolic state *)
    crash_cells = (fun ~lookup:_ -> []);
    lock_invs = [ (key0_lock, key0_inv); (key1_lock, key1_inv); (commit_lock, commit_inv) ];
    crash_invs = [ (cinv, crash_inv) ];
  }

(* --- outlines --- *)

(** [kv_get 0] under key lock + commit lock ({!Kvs.get_sync_prog}): the
    pinned record lease makes the committed disjuncts vacuous, so the data
    block provably equals the abstract cell. *)
let get_outline : O.op_outline =
  {
    O.o_op = "kv_get";
    o_args = [ Sv.str "0" ];
    o_ret = Sv.var "x";
    o_body =
      [
        O.Acquire key0_lock;
        O.Acquire commit_lock;
        O.Read_durable { loc = l_k0; bind = "x" };
        O.Open_inv
          {
            name = cinv;
            body = [ O.Simulate { op = "kv_get"; args = [ Sv.str "0" ]; bind_ret = "r" } ];
          };
        O.Release commit_lock;
        O.Release key0_lock;
      ];
  }

(** The journal commit protocol for [kv_txn(w0,w1)]: log both entries,
    commit by writing the record (depositing the helping token), apply,
    clear (retrieving the token and linearizing). *)
let txn_outline : O.op_outline =
  let wr loc value = O.Open_inv { name = cinv; body = [ O.Write_durable { loc; value } ] } in
  {
    O.o_op = "kv_txn";
    o_args = [ Sv.var "w0"; Sv.var "w1" ];
    o_ret = Sv.unit;
    o_body =
      [
        O.Acquire key0_lock;
        O.Acquire key1_lock;
        O.Acquire commit_lock;
        (* log the entries *)
        wr l_a0 (Sv.str "0");
        wr l_v0 (Sv.var "w0");
        wr l_a1 (Sv.str "1");
        wr l_v1 (Sv.var "w1");
        (* commit: one atomic record write, token deposited into C0 *)
        wr l_rec s_committed;
        (* apply *)
        wr l_k0 (Sv.var "w0");
        wr l_k1 (Sv.var "w1");
        (* clear: take the token back and linearize *)
        O.Open_inv
          {
            name = cinv;
            body =
              [
                O.Write_durable { loc = l_rec; value = s_idle };
                O.Simulate
                  { op = "kv_txn"; args = [ Sv.var "w0"; Sv.var "w1" ]; bind_ret = "r" };
              ];
          };
        O.Release commit_lock;
        O.Release key1_lock;
        O.Release key0_lock;
      ];
  }

(** Recovery: synthesize every lease, read the record and the logged
    values; if a transaction committed, replay it and simulate the stored
    token (helping, §5.4) — the idempotence check after every step is what
    rules out replaying from the idle state. *)
let recovery_outline : O.recovery_outline =
  {
    O.r_body =
      [
        O.Synthesize l_k0;
        O.Synthesize l_k1;
        O.Synthesize l_rec;
        O.Synthesize l_a0;
        O.Synthesize l_v0;
        O.Synthesize l_a1;
        O.Synthesize l_v1;
        O.Read_durable { loc = l_rec; bind = "f" };
        O.Read_durable { loc = l_v0; bind = "rv0" };
        O.Read_durable { loc = l_v1; bind = "rv1" };
        O.Choice
          [
            (* committed: replay the log and complete the transaction *)
            [
              O.Atomic [ O.Write_durable { loc = l_k0; value = Sv.var "rv0" } ];
              O.Atomic [ O.Write_durable { loc = l_k1; value = Sv.var "rv1" } ];
              O.Atomic
                [
                  O.Write_durable { loc = l_rec; value = s_idle };
                  O.Simulate
                    { op = "kv_txn"; args = [ Sv.var "rv0"; Sv.var "rv1" ]; bind_ret = "hr" };
                ];
            ];
            (* idle: nothing to do *)
            [];
          ];
        O.Crash_step;
      ];
  }

let check () =
  O.check_system system ~op_outlines:[ get_outline; txn_outline ] ~recovery:recovery_outline

(* --- a seeded proof bug the outline checker must reject --- *)

(** The commit record written BEFORE the log slots ([Txn_log.Buggy.
    commit_record_first]): closing into [C0] at the record write demands
    the slots already hold (w0,w1), which the stale slot contents cannot
    prove. *)
let txn_record_first_outline : O.op_outline =
  let wr loc value = O.Open_inv { name = cinv; body = [ O.Write_durable { loc; value } ] } in
  {
    txn_outline with
    O.o_body =
      [
        O.Acquire key0_lock;
        O.Acquire key1_lock;
        O.Acquire commit_lock;
        wr l_rec s_committed;
        wr l_a0 (Sv.str "0");
        wr l_v0 (Sv.var "w0");
        wr l_a1 (Sv.str "1");
        wr l_v1 (Sv.var "w1");
        wr l_k0 (Sv.var "w0");
        wr l_k1 (Sv.var "w1");
        O.Open_inv
          {
            name = cinv;
            body =
              [
                O.Write_durable { loc = l_rec; value = s_idle };
                O.Simulate
                  { op = "kv_txn"; args = [ Sv.var "w0"; Sv.var "w1" ]; bind_ret = "r" };
              ];
          };
        O.Release commit_lock;
        O.Release key1_lock;
        O.Release key0_lock;
      ];
  }

let check_buggy () = O.check_op system txn_record_first_outline
