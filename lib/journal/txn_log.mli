(** Multi-address journaling: the generalization of the fixed-pair
    write-ahead log ([Systems.Wal]) that GoJournal-style systems are built
    on.  A transaction is a {e list} of (address, block) writes, made
    atomic and durable by the same commit protocol the WAL uses for its
    pair:

    + write every entry — address and value — into the log region;
    + commit with ONE atomic write of the entry count into the commit
      record (count 0 = no transaction in flight);
    + apply the entries to the data region in order;
    + clear the commit record.

    A crash between (2) and (4) leaves a committed-but-unapplied
    transaction; recovery replays the first [count] log slots and clears
    the record — completing the crashed transaction on the writer's behalf
    (recovery helping, §5.4).  Replay is idempotent, so recovery may
    itself crash at any point and re-run (§5.5).

    The commit and recovery programs are lens-parameterized over the world
    (like {!Disk.Single_disk.read}) so that larger systems — the
    transactional key-value store {!Kvs}, the inode file system
    [Perennial_fs.Fs] — can embed a journal in their own world.  A
    standalone single-lock journal system with its own spec, checker
    configuration and seeded-bug variants makes the protocol checkable on
    its own. *)

(** {1 Layout} *)

type layout = { n_data : int; max_slots : int }
(** Disk layout for [{ n_data; max_slots }]:
    - blocks [0 .. n_data-1]: the data region;
    - block [n_data]: the commit record (entry count, decimal);
    - blocks [n_data+1 ..]: [max_slots] log slots, 2 blocks each — entry
      address, then entry value. *)

val layout : n_data:int -> max_slots:int -> layout
(** Raises [Invalid_argument] unless both are positive. *)

val rec_addr : layout -> int
val slot_addr : layout -> int -> int
val slot_val : layout -> int -> int
val disk_size : layout -> int

(** {1 Marshalling} *)

val int_block : int -> Disk.Block.t
(** Counts and addresses are stored as decimal strings; [Block.zero] is
    ["0"], so a fresh disk already holds an empty commit record. *)

val block_int : Disk.Block.t -> int
(** Total: unparseable content reads as [0] (empty record). *)

val value_of_entries : (int * Disk.Block.t) list -> Tslang.Value.t
val entries_of_value : Tslang.Value.t -> (int * Disk.Block.t) list

(** {1 Backends}

    The journal's commit/recovery protocol comes in two interchangeable
    flavours over the SAME disk layout:

    - [`Direct] (the default): the original single-transaction protocol —
      log slots, then one atomic count write into the commit record;
    - [`Wal]: the log region is driven as a {!Perennial_wal.Circ} circular
      log — the commit record doubles as the ring header, commits append
      records and install the header atomically (the commit point), and
      recovery replays the live ring.  This is the paper's WAL slotted
      under the journal: same atomic-transaction spec, checked unchanged.

    [Block.zero] parses as both an empty commit record and an empty ring,
    so a fresh disk works under either backend; a given disk must be
    driven by one backend per lifetime (the header encodings differ). *)

type backend = [ `Direct | `Wal ]

val pp_backend : backend Fmt.t

val circ : layout -> Perennial_wal.Circ.layout
(** The ring the [`Wal] backend drives: header at [rec_addr], [max_slots]
    record slots — the direct layout's blocks, verbatim. *)

(** {1 The lens-parameterized protocol}

    ['w] is the host system's world; [get_disk]/[set_disk] locate the
    embedded disk.  The caller is responsible for mutual exclusion over
    the log region (one committer at a time). *)

val commit_prog :
  ?backend:backend ->
  get_disk:('w -> Disk.Single_disk.t) ->
  set_disk:('w -> Disk.Single_disk.t -> 'w) ->
  layout ->
  (int * Disk.Block.t) list ->
  ('w, unit) Sched.Prog.t
(** Commit one transaction.  The empty transaction commits immediately
    (no steps); more than [max_slots] entries is undefined behaviour
    (caller's overflow bug, surfaced as UB not silent truncation). *)

val commit_ft_prog :
  ?backend:backend ->
  get_disk:('w -> Disk.Single_disk.t) ->
  set_disk:('w -> Disk.Single_disk.t -> 'w) ->
  ?retries:int ->
  layout ->
  (int * Disk.Block.t) list ->
  ('w, Tslang.Value.t) Sched.Prog.t
(** Fault-tolerant commit through the fallible disk writes: before the
    commit point (the record write, or the [`Wal] header install) every
    failed write is retried at most [retries] times (default 1) and then
    the whole transaction ABORTS cleanly, returning
    {!Sched.Fault.err_value}; once the commit point is durable the
    transaction is committed, so apply/clear retry without bound (recovery
    would finish the job anyway).  Returns [V.unit] on success. *)

val recover_prog :
  ?backend:backend ->
  get_disk:('w -> Disk.Single_disk.t) ->
  set_disk:('w -> Disk.Single_disk.t -> 'w) ->
  layout ->
  ('w, Tslang.Value.t) Sched.Prog.t
(** Read the commit record; if a transaction is pending, replay its slots
    in order and clear the record.  Idempotent — safe to crash during and
    re-run.  Must be called with the backend that wrote the disk. *)

(** {1 Standalone journal system} *)

type state = Disk.Block.t list
(** Spec state: the data region, one block per address. *)

val spec : layout -> state Tslang.Spec.t
(** Ops [j_commit]/[j_read] plus graceful-degradation arms
    [j_commit_ft]/[j_read_ft] (effect-or-[err_value]); crash-durable
    ([crash = ret ()]): committed transactions are never torn or lost. *)

type world = { disk : Disk.Single_disk.t; locks : Disk.Locks.t }

val init_world : layout -> world
val crash_world : world -> world
val pp_world : world Fmt.t
val get_disk : world -> Disk.Single_disk.t
val set_disk : world -> Disk.Single_disk.t -> world
val get_locks : world -> Disk.Locks.t
val set_locks : world -> Disk.Locks.t -> world

val the_lock : int
(** The single lock serializing committers. *)

val commit_txn_prog :
  ?backend:backend -> layout -> (int * Disk.Block.t) list -> (world, Tslang.Value.t) Sched.Prog.t

val read_prog : layout -> int -> (world, Tslang.Value.t) Sched.Prog.t
val recover : ?backend:backend -> layout -> (world, Tslang.Value.t) Sched.Prog.t

val commit_txn_ft_prog :
  ?backend:backend ->
  ?retries:int ->
  layout ->
  (int * Disk.Block.t) list ->
  (world, Tslang.Value.t) Sched.Prog.t

val read_ft_prog : ?retries:int -> layout -> int -> (world, Tslang.Value.t) Sched.Prog.t
(** Bounded-retry read; degrades to {!Sched.Fault.err_value}. *)

(** {2 Calls and checker configuration} *)

val commit_call :
  ?backend:backend ->
  layout ->
  (int * Disk.Block.t) list ->
  Tslang.Spec.call * (world, Tslang.Value.t) Sched.Prog.t

val read_call : layout -> int -> Tslang.Spec.call * (world, Tslang.Value.t) Sched.Prog.t

val commit_ft_call :
  ?backend:backend ->
  ?retries:int ->
  layout ->
  (int * Disk.Block.t) list ->
  Tslang.Spec.call * (world, Tslang.Value.t) Sched.Prog.t

val read_ft_call :
  ?retries:int -> layout -> int -> Tslang.Spec.call * (world, Tslang.Value.t) Sched.Prog.t

val probe : layout -> (Tslang.Spec.call * (world, Tslang.Value.t) Sched.Prog.t) list
(** Post-crash probes: read back every data address. *)

val checker_config :
  ?backend:backend ->
  layout ->
  ?max_crashes:int ->
  ?fault_budget:int ->
  (Tslang.Spec.call * (world, Tslang.Value.t) Sched.Prog.t) list list ->
  (world, state) Perennial_core.Refinement.config
(** [?backend] selects the recovery program; build the threads with the
    matching [commit_call ?backend]. *)

(** {1 Seeded bugs}

    Each is a deliberately broken variant of the protocol, kept for the
    negative (bug-catching) checks and the golden counterexamples. *)

module Buggy : sig
  val commit_record_first :
    get_disk:('w -> Disk.Single_disk.t) ->
    set_disk:('w -> Disk.Single_disk.t -> 'w) ->
    layout ->
    (int * Disk.Block.t) list ->
    ('w, unit) Sched.Prog.t
  (** Commit record written before the log entries: recovery can replay
      stale slots as if they were this transaction. *)

  val commit_no_log :
    get_disk:('w -> Disk.Single_disk.t) ->
    set_disk:('w -> Disk.Single_disk.t -> 'w) ->
    layout ->
    (int * Disk.Block.t) list ->
    ('w, unit) Sched.Prog.t
  (** In-place multi-address update without the journal: a crash mid-apply
      tears the transaction. *)

  val commit_txn_record_first :
    layout -> (int * Disk.Block.t) list -> (world, Tslang.Value.t) Sched.Prog.t

  val commit_txn_no_log :
    layout -> (int * Disk.Block.t) list -> (world, Tslang.Value.t) Sched.Prog.t

  val commit_call_record_first :
    layout -> (int * Disk.Block.t) list -> Tslang.Spec.call * (world, Tslang.Value.t) Sched.Prog.t

  val commit_call_no_log :
    layout -> (int * Disk.Block.t) list -> Tslang.Spec.call * (world, Tslang.Value.t) Sched.Prog.t

  val recover_clear_first : layout -> (world, Tslang.Value.t) Sched.Prog.t
  (** Clears the commit record before replaying: a crash in between loses
      the committed transaction. *)

  val recover_nop : (world, Tslang.Value.t) Sched.Prog.t
  (** Recovery that ignores the commit record entirely. *)

  val commit_ft_ignore_torn :
    get_disk:('w -> Disk.Single_disk.t) ->
    set_disk:('w -> Disk.Single_disk.t -> 'w) ->
    layout ->
    (int * Disk.Block.t) list ->
    ('w, Tslang.Value.t) Sched.Prog.t
  (** Treats a torn multi-slot log write as success and commits anyway. *)

  val commit_ft_swallow_apply :
    get_disk:('w -> Disk.Single_disk.t) ->
    set_disk:('w -> Disk.Single_disk.t -> 'w) ->
    layout ->
    (int * Disk.Block.t) list ->
    ('w, Tslang.Value.t) Sched.Prog.t
  (** Swallows a failed apply write after the commit record: reports
      success with a data block never written and the record cleared. *)

  val commit_txn_ft_ignore_torn :
    layout -> (int * Disk.Block.t) list -> (world, Tslang.Value.t) Sched.Prog.t

  val commit_txn_ft_swallow_apply :
    layout -> (int * Disk.Block.t) list -> (world, Tslang.Value.t) Sched.Prog.t

  val commit_ft_call_ignore_torn :
    layout -> (int * Disk.Block.t) list -> Tslang.Spec.call * (world, Tslang.Value.t) Sched.Prog.t

  val commit_ft_call_swallow_apply :
    layout -> (int * Disk.Block.t) list -> Tslang.Spec.call * (world, Tslang.Value.t) Sched.Prog.t
end
