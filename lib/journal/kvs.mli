(** A crash-safe transactional key-value store on the multi-address journal
    ({!Txn_log}) — the GoJournal/dafny-jrnl layering, reproduced inside the
    outline/refinement checking stack.

    The store holds a fixed capacity of [n_keys] keys (key = data-region
    address, value = one block).  Operations:

    - [kv_get k]        read key [k];
    - [kv_put k v]      durable single-key put (commits a journal txn);
    - [kv_txn entries]  durable multi-key put — all or nothing;
    - [kv_put_async]    buffered put: acknowledged before it is durable;
    - [kv_flush]        make every buffered put durable in ONE journal txn.

    Locking: one lock per key (ids [0..n_keys-1]) guarding that key's data
    block, plus a commit lock (id [n_keys]) guarding the log region and the
    volatile group-commit buffer.  Gets take only their key's lock; a
    durable commit takes every key lock (ascending, then the commit lock —
    a total order, so no deadlock) because flushing merges the whole buffer
    into one transaction.

    The group-commit loss window is visible in the specification, exactly
    as for [Systems.Group_commit]: abstract state is (committed map,
    pending transaction queue) and the crash transition DROPS the pending
    queue — committed puts survive, acknowledged-but-unflushed ones may be
    lost, in-flight transactions are never partially applied.  Checking
    the implementation against {!strict_spec} (crash loses nothing) must
    fail; that rejection is what shows the spec needs the loss window. *)

type params = { n_keys : int; max_slots : int; backend : Txn_log.backend }

val params : ?backend:Txn_log.backend -> ?max_slots:int -> n_keys:int -> unit -> params
(** [max_slots] defaults to [n_keys]: a merged group commit has at most
    one entry per key, so the log can always hold a full flush.
    [backend] (default [`Direct]) selects the journal's commit protocol;
    [`Wal] routes every commit and recovery through the circular log.
    Raises [Invalid_argument] if [n_keys <= 0] or [max_slots < n_keys]. *)

val layout : params -> Txn_log.layout

type txn = (int * Disk.Block.t) list

(** {1 Specification} *)

type state = {
  committed : Disk.Block.t list;  (** durable value per key *)
  pending : txn list;  (** acknowledged, not yet flushed; newest last *)
}

val view : state -> Disk.Block.t list
(** The observable map: committed with every pending txn applied in
    order. *)

val view_key : state -> int -> Disk.Block.t
val entries_of_value : Tslang.Value.t -> txn
val value_of_entries : txn -> Tslang.Value.t

val spec : params -> state Tslang.Spec.t
(** Ops [kv_get]/[kv_put]/[kv_txn]/[kv_put_async]/[kv_flush] plus
    graceful-degradation arms [kv_get_ft]/[kv_put_ft]/[kv_txn_ft]
    (effect-or-{!Sched.Fault.err_value}); the crash transition drops the
    pending queue — the group-commit loss window. *)

val strict_spec : params -> state Tslang.Spec.t
(** The lossless crash spec the implementation must FAIL against — the
    experiment showing the group-commit window is real. *)

(** {1 World and implementation} *)

type world = {
  disk : Disk.Single_disk.t;
  buffer : txn list;  (** volatile group-commit buffer, newest last *)
  locks : Disk.Locks.t;
}

val init_world : params -> world
val crash_world : world -> world
val pp_world : world Fmt.t
val get_disk : world -> Disk.Single_disk.t
val set_disk : world -> Disk.Single_disk.t -> world
val get_locks : world -> Disk.Locks.t
val set_locks : world -> Disk.Locks.t -> world

val commit_lock : params -> int
(** Key lock ids are [0..n_keys-1]; the commit lock is [n_keys]. *)

val get_prog : params -> int -> (world, Tslang.Value.t) Sched.Prog.t
(** Read under the key lock alone: a committing transaction holds the key
    locks of its whole footprint from log-append to record-clear, so the
    data block can never be observed mid-apply. *)

val get_sync_prog : params -> int -> (world, Tslang.Value.t) Sched.Prog.t
(** The coarser get the proof outline ([Kvs_proof]) covers exactly: key
    lock then commit lock, so the pinned commit record rules out the
    committed-but-unapplied window by lease agreement alone. *)

val put_prog : params -> int -> Tslang.Value.t -> (world, Tslang.Value.t) Sched.Prog.t
val txn_prog : params -> txn -> (world, Tslang.Value.t) Sched.Prog.t

val put_async_prog : params -> int -> Tslang.Value.t -> (world, Tslang.Value.t) Sched.Prog.t
(** Acknowledge after ONE volatile buffer append — the group-commit fast
    path, and the whole reason the spec's crash drops the pending queue. *)

val flush_prog : params -> (world, Tslang.Value.t) Sched.Prog.t

val get_ft_prog : ?retries:int -> params -> int -> (world, Tslang.Value.t) Sched.Prog.t
(** Like {!get_prog} through the fallible disk read with bounded retry;
    degrades to {!Sched.Fault.err_value} when the retries are exhausted. *)

val put_ft_prog : ?retries:int -> params -> int -> Tslang.Value.t -> (world, Tslang.Value.t) Sched.Prog.t
val txn_ft_prog : ?retries:int -> params -> txn -> (world, Tslang.Value.t) Sched.Prog.t

val recover : params -> (world, Tslang.Value.t) Sched.Prog.t
(** The journal's recovery: replay a committed-but-unapplied transaction
    (helping), clear the record.  The buffer died with the crash. *)

(** {1 Calls and checker configuration} *)

val get_call : params -> int -> Tslang.Spec.call * (world, Tslang.Value.t) Sched.Prog.t
val get_sync_call : params -> int -> Tslang.Spec.call * (world, Tslang.Value.t) Sched.Prog.t

val put_call :
  params -> int -> Tslang.Value.t -> Tslang.Spec.call * (world, Tslang.Value.t) Sched.Prog.t

val txn_call : params -> txn -> Tslang.Spec.call * (world, Tslang.Value.t) Sched.Prog.t

val put_async_call :
  params -> int -> Tslang.Value.t -> Tslang.Spec.call * (world, Tslang.Value.t) Sched.Prog.t

val flush_call : params -> Tslang.Spec.call * (world, Tslang.Value.t) Sched.Prog.t

val get_ft_call :
  ?retries:int -> params -> int -> Tslang.Spec.call * (world, Tslang.Value.t) Sched.Prog.t

val put_ft_call :
  ?retries:int ->
  params ->
  int ->
  Tslang.Value.t ->
  Tslang.Spec.call * (world, Tslang.Value.t) Sched.Prog.t

val txn_ft_call :
  ?retries:int -> params -> txn -> Tslang.Spec.call * (world, Tslang.Value.t) Sched.Prog.t

val probe : params -> (Tslang.Spec.call * (world, Tslang.Value.t) Sched.Prog.t) list
(** Post-crash probes: read back every key. *)

val checker_config :
  params ->
  ?spec:state Tslang.Spec.t ->
  ?max_crashes:int ->
  ?fault_budget:int ->
  (Tslang.Spec.call * (world, Tslang.Value.t) Sched.Prog.t) list list ->
  (world, state) Perennial_core.Refinement.config

(** {1 Seeded bugs} *)

module Buggy : sig
  val get_skip_buffer : params -> int -> (world, Tslang.Value.t) Sched.Prog.t
  (** A get straight from the data region: misses acknowledged buffered
      puts — caught with no crash at all. *)

  val get_call_skip_buffer :
    params -> int -> Tslang.Spec.call * (world, Tslang.Value.t) Sched.Prog.t

  val txn_record_first : params -> txn -> Tslang.Spec.call * (world, Tslang.Value.t) Sched.Prog.t
  (** Commit through {!Txn_log.Buggy.commit_record_first}. *)

  val txn_no_log : params -> txn -> Tslang.Spec.call * (world, Tslang.Value.t) Sched.Prog.t
  (** Commit through {!Txn_log.Buggy.commit_no_log}. *)

  val recover_nop : (world, Tslang.Value.t) Sched.Prog.t

  val put_ft_swallow_apply :
    params -> int -> Tslang.Value.t -> (world, Tslang.Value.t) Sched.Prog.t
  (** Store-level wrapper of {!Txn_log.Buggy.commit_ft_swallow_apply}: the
      put reports success while the key's data block was never written —
      fault budget 1, no crash needed. *)

  val put_ft_call_swallow_apply :
    params -> int -> Tslang.Value.t -> Tslang.Spec.call * (world, Tslang.Value.t) Sched.Prog.t
end
