(** Multi-address journaling: the generalization of the fixed-pair
    write-ahead log ([Systems.Wal]) that GoJournal-style systems are built
    on.  A transaction is a *list* of (address, block) writes, made atomic
    and durable by the same commit protocol the WAL uses for its pair:

    1. write every entry — address and value — into the log region;
    2. commit with ONE atomic write of the entry count into the commit
       record (count 0 = no transaction in flight);
    3. apply the entries to the data region in order;
    4. clear the commit record.

    A crash between (2) and (4) leaves a committed-but-unapplied
    transaction; recovery replays the first [count] log slots and clears
    the record — completing the crashed transaction on the writer's behalf
    (recovery helping, §5.4).  Replay is idempotent, so recovery may itself
    crash at any point and re-run (§5.5).

    Disk layout for [{ n_data; max_slots }]:
    - blocks [0 .. n_data-1]:     the data region
    - block  [n_data]:            the commit record (entry count, decimal)
    - blocks [n_data+1 ..]:       [max_slots] log slots, 2 blocks each:
                                  entry address, then entry value

    The commit and recovery programs are lens-parameterized over the world
    (like {!Disk.Single_disk.read}) so that larger systems — the
    transactional key-value store in {!Kvs} — can embed a journal in their
    own world.  A standalone single-lock journal system with its own spec,
    checker configuration and seeded-bug variants lives below. *)

module V = Tslang.Value
module T = Tslang.Transition
module Spec = Tslang.Spec
module P = Sched.Prog
module Block = Disk.Block

type layout = { n_data : int; max_slots : int }

let layout ~n_data ~max_slots =
  if n_data <= 0 || max_slots <= 0 then invalid_arg "Txn_log.layout";
  { n_data; max_slots }

let rec_addr ly = ly.n_data
let slot_addr ly i = ly.n_data + 1 + (2 * i)
let slot_val ly i = ly.n_data + 2 + (2 * i)
let disk_size ly = ly.n_data + 1 + (2 * ly.max_slots)

(** Counts and addresses are stored as decimal strings; [Block.zero] is
    ["0"], so a fresh disk already holds an empty commit record. *)
let int_block n = Block.of_string (string_of_int n)

let block_int b = match int_of_string_opt (Block.to_string b) with Some n -> n | None -> 0

(* An entry list as a spec-level value and back. *)
let value_of_entries entries =
  V.list (List.map (fun (a, b) -> V.pair (V.int a) (Block.to_value b)) entries)

let entries_of_value v =
  List.map
    (fun e ->
      let a, b = V.get_pair e in
      (V.get_int a, Block.of_value b))
    (V.get_list v)

(* ------------------------------------------------------------------ *)
(* The commit and recovery protocols, over any world with a disk lens   *)
(* ------------------------------------------------------------------ *)

open P.Syntax

(** Atomically install [entries].  The caller must hold whatever locks
    protect the log region and the touched data blocks.  Durable once the
    commit-record write (the single atomic commit point) has hit the
    disk. *)
let commit_direct_prog ~get_disk ~set_disk ly entries : ('w, unit) P.t =
  let dw a b = Disk.Single_disk.write ~get_disk ~set_disk a b in
  if List.length entries > ly.max_slots then P.ub "journal transaction overflows the log"
  else if entries = [] then P.return ()
  else
    P.span ~cat:"txn_log" "txn_commit"
    @@
    let rec log i = function
      | [] -> P.return ()
      | (a, b) :: rest ->
        let* () = dw (slot_addr ly i) (int_block a) in
        let* () = dw (slot_val ly i) b in
        log (i + 1) rest
    in
    let rec apply = function
      | [] -> P.return ()
      | (a, b) :: rest ->
        let* () = dw a b in
        apply rest
    in
    let* () = log 0 entries in
    (* the commit point: one atomic write of the entry count *)
    let* () = dw (rec_addr ly) (int_block (List.length entries)) in
    let* () = apply entries in
    dw (rec_addr ly) (int_block 0)

(* ------------------------------------------------------------------ *)
(* Fault-tolerant commit: bounded retry before the commit point,        *)
(* unbounded retry after it                                             *)
(* ------------------------------------------------------------------ *)

module Fault = Sched.Fault
module Fp = Sched.Footprint

(* A retry iteration is marked by a pure no-op step whose label starts with
   "retry" — the convention the checker's [retries_observed] stat counts.
   It only exists on paths where a transient error already fired. *)
let retry_step what : ('w, unit) P.t =
  P.read ~fp:(Fp.const Fp.pure) ("retry(" ^ what ^ ")") (fun _ -> ())

(** Like {!commit_prog}, over the fallible disk ops.  Returns [V.unit] on
    success or {!Sched.Fault.err_value} on a clean abort.

    The commit-record write is the dividing line.  Before it, a transient
    error is retried at most [retries] times and then the transaction is
    ABORTED: the record still reads 0, so whatever made it into the log
    slots is unobservable and durable state is untouched — the spec's
    error arm.  After it, the transaction is committed and must not be
    abandoned: apply and record-clear writes retry WITHOUT bound (each
    iteration exists only under one more injected fault, so exhaustive
    exploration under a finite fault budget still terminates).

    The log slots are installed with ONE {!Disk.Single_disk.write_multi_f},
    so a [Torn_write] fault can tear them; the retry re-writes every slot,
    which is idempotent pre-commit. *)
let commit_ft_direct_prog ~get_disk ~set_disk ?(retries = 1) ly entries : ('w, V.t) P.t =
  let dwm es = Disk.Single_disk.write_multi_f ~get_disk ~set_disk es in
  let dwf a b = Disk.Single_disk.write_f ~get_disk ~set_disk a b in
  if List.length entries > ly.max_slots then P.ub "journal transaction overflows the log"
  else if entries = [] then P.return V.unit
  else
    P.span ~cat:"txn_log" "txn_commit_ft"
    @@
    let slot_blocks =
      List.concat
        (List.mapi
           (fun i (a, b) -> [ (slot_addr ly i, int_block a); (slot_val ly i, b) ])
           entries)
    in
    let bounded what n write =
      let rec attempt n =
        let* r = write () in
        if Fault.is_eio r then
          if n > 0 then
            let* () = retry_step what in
            attempt (n - 1)
          else P.return false
        else P.return true
      in
      attempt n
    in
    let unbounded what write =
      let rec attempt () =
        let* r = write () in
        if Fault.is_eio r then
          let* () = retry_step what in
          attempt ()
        else P.return ()
      in
      attempt ()
    in
    let rec apply = function
      | [] -> P.return ()
      | (a, b) :: rest ->
        let* () = unbounded "apply" (fun () -> dwf a b) in
        apply rest
    in
    let* logged = bounded "log" retries (fun () -> dwm slot_blocks) in
    if not logged then P.return Fault.err_value
    else
      let* committed =
        bounded "record" retries (fun () ->
            dwf (rec_addr ly) (int_block (List.length entries)))
      in
      if not committed then P.return Fault.err_value
      else
        let* () = apply entries in
        let* () = unbounded "clear" (fun () -> dwf (rec_addr ly) (int_block 0)) in
        P.return V.unit

(** Replay a committed-but-unapplied transaction, if any, then clear the
    commit record.  Idempotent: safe to crash anywhere inside and re-run. *)
let recover_direct_prog ~get_disk ~set_disk ly : ('w, V.t) P.t =
  let dr a = Disk.Single_disk.read ~get_disk a in
  let dw a b = Disk.Single_disk.write ~get_disk ~set_disk a b in
  P.span ~cat:"txn_log" "txn_recover"
  @@ let* r = dr (rec_addr ly) in
  let n = block_int (Block.of_value r) in
  if n = 0 then P.return V.unit
  else
    let rec replay i =
      if i >= n then P.return ()
      else
        let* a = dr (slot_addr ly i) in
        let* b = dr (slot_val ly i) in
        let* () = dw (block_int (Block.of_value a)) (Block.of_value b) in
        replay (i + 1)
    in
    let* () = replay 0 in
    let* () = dw (rec_addr ly) (int_block 0) in
    P.return V.unit

(* ------------------------------------------------------------------ *)
(* The WAL backend: the same log region driven as a circular log        *)
(* ------------------------------------------------------------------ *)

module C = Perennial_wal.Circ

(** The WAL backend reuses the direct layout's blocks verbatim: the commit
    record becomes the ring header, the [max_slots] log slots the ring
    slots.  [Block.zero] parses as the empty ring, so a fresh disk works
    under either backend — but the two protocols store different header
    encodings, so a disk must be driven by one backend per lifetime. *)
let circ ly = C.layout ~base:ly.n_data ~cap:ly.max_slots

(** Commit through the circular log: records past [end], then ONE atomic
    header install (the commit point, bumping the durable txn count), then
    apply home and trim.  The ring is drained synchronously — empty again
    before the commit returns — so consecutive commits never run out of
    ring space. *)
let commit_wal_prog ~get_disk ~set_disk ly entries : ('w, unit) P.t =
  let c = circ ly in
  let dw a b = Disk.Single_disk.write ~get_disk ~set_disk a b in
  if List.length entries > ly.max_slots then P.ub "journal transaction overflows the log"
  else if entries = [] then P.return ()
  else
    P.span ~cat:"txn_log" "txn_commit_wal"
    @@
    let rec apply = function
      | [] -> P.return ()
      | (a, b) :: rest ->
        let* () = dw a b in
        apply rest
    in
    let k = List.length entries in
    let* s, e, t = C.read_header ~get_disk c in
    let* () = C.write_records ~get_disk ~set_disk c ~pos:e entries in
    (* the commit point: one atomic header install *)
    let* () = C.install_header ~get_disk ~set_disk c ~start:s ~end_:(e + k) ~txns:(t + 1) in
    let* () = apply entries in
    C.install_header ~get_disk ~set_disk c ~start:(e + k) ~end_:(e + k) ~txns:(t + 1)

(** Fault-tolerant WAL commit, mirroring {!commit_ft_direct_prog}'s
    discipline: bounded retry then clean abort before the header install
    (uninstalled records are dead, so durable state is untouched),
    unbounded retry after it. *)
let commit_ft_wal_prog ~get_disk ~set_disk ?(retries = 1) ly entries : ('w, V.t) P.t =
  let c = circ ly in
  let dwf a b = Disk.Single_disk.write_f ~get_disk ~set_disk a b in
  if List.length entries > ly.max_slots then P.ub "journal transaction overflows the log"
  else if entries = [] then P.return V.unit
  else
    P.span ~cat:"txn_log" "txn_commit_ft_wal"
    @@
    let bounded what n write =
      let rec attempt n =
        let* r = write () in
        if Fault.is_eio r then
          if n > 0 then
            let* () = retry_step what in
            attempt (n - 1)
          else P.return false
        else P.return true
      in
      attempt n
    in
    let unbounded what write =
      let rec attempt () =
        let* r = write () in
        if Fault.is_eio r then
          let* () = retry_step what in
          attempt ()
        else P.return ()
      in
      attempt ()
    in
    let rec apply = function
      | [] -> P.return ()
      | (a, b) :: rest ->
        let* () = unbounded "apply" (fun () -> dwf a b) in
        apply rest
    in
    let k = List.length entries in
    let* s, e, t = C.read_header ~get_disk c in
    let* logged =
      bounded "log" retries (fun () -> C.write_records_f ~get_disk ~set_disk c ~pos:e entries)
    in
    if not logged then P.return Fault.err_value
    else
      let* committed =
        bounded "record" retries (fun () ->
            C.install_header_f ~get_disk ~set_disk c ~start:s ~end_:(e + k) ~txns:(t + 1))
      in
      if not committed then P.return Fault.err_value
      else
        let* () = apply entries in
        let* () =
          unbounded "clear" (fun () ->
              C.install_header_f ~get_disk ~set_disk c ~start:(e + k) ~end_:(e + k)
                ~txns:(t + 1))
        in
        P.return V.unit

(** Replay the live ring home and trim; a no-op when the ring is empty.
    Idempotent, like {!recover_direct_prog}. *)
let recover_wal_prog ~get_disk ~set_disk ly : ('w, V.t) P.t =
  let c = circ ly in
  P.span ~cat:"txn_log" "txn_recover_wal"
  @@ let* s, e, t = C.read_header ~get_disk c in
  if s = e then P.return V.unit
  else
    let rec replay pos =
      if pos >= e then P.return ()
      else
        let* a, b = C.read_record ~get_disk c pos in
        let* () = Disk.Single_disk.write ~get_disk ~set_disk a b in
        replay (pos + 1)
    in
    let* () = replay s in
    let* () = C.install_header ~get_disk ~set_disk c ~start:e ~end_:e ~txns:t in
    P.return V.unit

(* ------------------------------------------------------------------ *)
(* Backend dispatch                                                     *)
(* ------------------------------------------------------------------ *)

type backend = [ `Direct | `Wal ]

let pp_backend ppf = function
  | `Direct -> Fmt.string ppf "direct"
  | `Wal -> Fmt.string ppf "wal"

let commit_prog ?(backend = `Direct) ~get_disk ~set_disk ly entries : ('w, unit) P.t =
  match backend with
  | `Direct -> commit_direct_prog ~get_disk ~set_disk ly entries
  | `Wal -> commit_wal_prog ~get_disk ~set_disk ly entries

let commit_ft_prog ?(backend = `Direct) ~get_disk ~set_disk ?retries ly entries :
    ('w, V.t) P.t =
  match backend with
  | `Direct -> commit_ft_direct_prog ~get_disk ~set_disk ?retries ly entries
  | `Wal -> commit_ft_wal_prog ~get_disk ~set_disk ?retries ly entries

let recover_prog ?(backend = `Direct) ~get_disk ~set_disk ly : ('w, V.t) P.t =
  match backend with
  | `Direct -> recover_direct_prog ~get_disk ~set_disk ly
  | `Wal -> recover_wal_prog ~get_disk ~set_disk ly

(* ------------------------------------------------------------------ *)
(* Specification of the standalone journal: an atomic array of blocks   *)
(* ------------------------------------------------------------------ *)

type state = Block.t list  (** the data region, one block per address *)

let set_nth xs i v = List.mapi (fun j x -> if i = j then v else x) xs

let spec ly : state Spec.t =
  let open T.Syntax in
  let in_bounds a = a >= 0 && a < ly.n_data in
  {
    Spec.name = "txn-journal";
    init = List.init ly.n_data (fun _ -> Block.zero);
    compare_state = List.compare Block.compare;
    pp_state = (fun ppf st -> Fmt.pf ppf "[%a]" (Fmt.list ~sep:Fmt.semi Block.pp) st);
    step =
      (fun op args ->
        match op, args with
        | "j_commit", [ v ] ->
          let entries = entries_of_value v in
          let* () =
            T.check
              (List.length entries <= ly.max_slots
              && List.for_all (fun (a, _) -> in_bounds a) entries)
          in
          let* () =
            T.modify (fun st -> List.fold_left (fun st (a, b) -> set_nth st a b) st entries)
          in
          T.ret V.unit
        | "j_read", [ a ] ->
          let a = V.get_int a in
          let* () = T.check (in_bounds a) in
          let* st = T.reads in
          T.ret (Block.to_value (List.nth st a))
        (* Graceful-degradation arms: the op either takes effect atomically
           or returns {!Sched.Fault.err_value} with state untouched. *)
        | "j_commit_ft", [ v ] ->
          let entries = entries_of_value v in
          let* () =
            T.check
              (List.length entries <= ly.max_slots
              && List.for_all (fun (a, _) -> in_bounds a) entries)
          in
          let* ok = T.choose [ true; false ] in
          if ok then
            let* () =
              T.modify (fun st -> List.fold_left (fun st (a, b) -> set_nth st a b) st entries)
            in
            T.ret V.unit
          else T.ret Fault.err_value
        | "j_read_ft", [ a ] ->
          let a = V.get_int a in
          let* () = T.check (in_bounds a) in
          let* st = T.reads in
          let* r = T.choose [ Block.to_value (List.nth st a); Fault.err_value ] in
          T.ret r
        | _ -> invalid_arg "txn-journal spec: unknown op");
    (* Committed transactions are durable; in-flight ones simply vanish. *)
    crash = T.ret ();
  }

(* ------------------------------------------------------------------ *)
(* Standalone world and implementation (single log lock)                *)
(* ------------------------------------------------------------------ *)

type world = { disk : Disk.Single_disk.t; locks : Disk.Locks.t }

let init_world ly = { disk = Disk.Single_disk.init (disk_size ly); locks = Disk.Locks.empty }
let crash_world w = { w with locks = Disk.Locks.empty }

let pp_world ppf w =
  Fmt.pf ppf "%a %a" Disk.Single_disk.pp w.disk Disk.Locks.pp w.locks

let get_disk w = w.disk
let set_disk w disk = { w with disk }
let get_locks w = w.locks
let set_locks w locks = { w with locks }

let the_lock = 0
let lock () = Disk.Locks.acquire ~get:get_locks ~set:set_locks the_lock
let unlock () = Disk.Locks.release ~get:get_locks ~set:set_locks the_lock

let commit_txn_prog ?backend ly entries : (world, V.t) P.t =
  let* () = lock () in
  let* () = commit_prog ?backend ~get_disk ~set_disk ly entries in
  let* () = unlock () in
  P.return V.unit

let read_prog ly a : (world, V.t) P.t =
  ignore ly;
  let* () = lock () in
  let* v = Disk.Single_disk.read ~get_disk a in
  let* () = unlock () in
  P.return v

let recover ?backend ly : (world, V.t) P.t = recover_prog ?backend ~get_disk ~set_disk ly

let commit_txn_ft_prog ?backend ?retries ly entries : (world, V.t) P.t =
  let* () = lock () in
  let* r = commit_ft_prog ?backend ~get_disk ~set_disk ?retries ly entries in
  let* () = unlock () in
  P.return r

(** Read through the fallible op with bounded retry; degrades to
    {!Sched.Fault.err_value} when the retries are exhausted. *)
let read_ft_prog ?(retries = 1) ly a : (world, V.t) P.t =
  ignore ly;
  let* () = lock () in
  let rec attempt n =
    let* r = Disk.Single_disk.read_f ~get_disk a in
    if Fault.is_eio r then
      if n > 0 then
        let* () = retry_step "read" in
        attempt (n - 1)
      else P.return Fault.err_value
    else P.return r
  in
  let* v = attempt retries in
  let* () = unlock () in
  P.return v

(* ------------------------------------------------------------------ *)
(* Checker configuration                                                *)
(* ------------------------------------------------------------------ *)

let commit_call ?backend ly entries =
  (Spec.call "j_commit" [ value_of_entries entries ], commit_txn_prog ?backend ly entries)

let read_call ly a = (Spec.call "j_read" [ V.int a ], read_prog ly a)

let commit_ft_call ?backend ?retries ly entries =
  (Spec.call "j_commit_ft" [ value_of_entries entries ], commit_txn_ft_prog ?backend ?retries ly entries)

let read_ft_call ?retries ly a = (Spec.call "j_read_ft" [ V.int a ], read_ft_prog ?retries ly a)

(** Post-crash probes: read back every data address. *)
let probe ly = List.init ly.n_data (fun a -> read_call ly a)

let checker_config ?backend ly ?(max_crashes = 1) ?(fault_budget = 0) threads :
    (world, state) Perennial_core.Refinement.config =
  Perennial_core.Refinement.config ~spec:(spec ly) ~init_world:(init_world ly)
    ~crash_world ~pp_world ~threads ~recovery:(recover ?backend ly) ~post:(probe ly)
    ~max_crashes ~fault_budget ()

(* ------------------------------------------------------------------ *)
(* Seeded bugs                                                          *)
(* ------------------------------------------------------------------ *)

module Buggy = struct
  (** Write the commit record BEFORE the log entries: a crash between the
      record write and the slot writes makes recovery replay whatever
      garbage the slots held. *)
  let commit_record_first ~get_disk ~set_disk ly entries : ('w, unit) P.t =
    let dw a b = Disk.Single_disk.write ~get_disk ~set_disk a b in
    if entries = [] then P.return ()
    else
      let rec log i = function
        | [] -> P.return ()
        | (a, b) :: rest ->
          let* () = dw (slot_addr ly i) (int_block a) in
          let* () = dw (slot_val ly i) b in
          log (i + 1) rest
      in
      let rec apply = function
        | [] -> P.return ()
        | (a, b) :: rest ->
          let* () = dw a b in
          apply rest
      in
      let* () = dw (rec_addr ly) (int_block (List.length entries)) in
      let* () = log 0 entries in
      let* () = apply entries in
      dw (rec_addr ly) (int_block 0)

  (** Apply in place without logging: a crash mid-apply tears the
      transaction across addresses. *)
  let commit_no_log ~get_disk ~set_disk ly entries : ('w, unit) P.t =
    ignore ly;
    let dw a b = Disk.Single_disk.write ~get_disk ~set_disk a b in
    let rec apply = function
      | [] -> P.return ()
      | (a, b) :: rest ->
        let* () = dw a b in
        apply rest
    in
    apply entries

  let commit_txn_record_first ly entries : (world, V.t) P.t =
    let* () = lock () in
    let* () = commit_record_first ~get_disk ~set_disk ly entries in
    let* () = unlock () in
    P.return V.unit

  let commit_txn_no_log ly entries : (world, V.t) P.t =
    let* () = lock () in
    let* () = commit_no_log ~get_disk ~set_disk ly entries in
    let* () = unlock () in
    P.return V.unit

  let commit_call_record_first ly entries =
    (Spec.call "j_commit" [ value_of_entries entries ], commit_txn_record_first ly entries)

  let commit_call_no_log ly entries =
    (Spec.call "j_commit" [ value_of_entries entries ], commit_txn_no_log ly entries)

  (** Recovery that clears the record before replaying: a crash in between
      loses the committed transaction. *)
  let recover_clear_first ly : (world, V.t) P.t =
    let dr a = Disk.Single_disk.read ~get_disk a in
    let dw a b = Disk.Single_disk.write ~get_disk ~set_disk a b in
    let* r = dr (rec_addr ly) in
    let n = block_int (Block.of_value r) in
    if n = 0 then P.return V.unit
    else
      let* () = dw (rec_addr ly) (int_block 0) in
      let rec replay i =
        if i >= n then P.return V.unit
        else
          let* a = dr (slot_addr ly i) in
          let* b = dr (slot_val ly i) in
          let* () = dw (block_int (Block.of_value a)) (Block.of_value b) in
          replay (i + 1)
      in
      replay 0

  (** Recovery that ignores the log entirely. *)
  let recover_nop : (world, V.t) P.t = P.return V.unit

  (** Fault-handling bug #2 — a torn log write treated as committed: the
      error from the slot multi-write is swallowed and the commit record is
      written anyway, so the record can point at half-written slots.  A
      crash between the record write and the apply phase makes recovery
      replay the torn garbage — e.g. [Torn_write 3] on a two-entry
      transaction persists the second slot's address block but not its
      value block, and replay then zeroes that address.  Caught with fault
      budget 1 and one crash. *)
  let commit_ft_ignore_torn ~get_disk ~set_disk ly entries : ('w, V.t) P.t =
    let dw a b = Disk.Single_disk.write ~get_disk ~set_disk a b in
    let dwm es = Disk.Single_disk.write_multi_f ~get_disk ~set_disk es in
    if entries = [] then P.return V.unit
    else
      let slot_blocks =
        List.concat
          (List.mapi
             (fun i (a, b) -> [ (slot_addr ly i, int_block a); (slot_val ly i, b) ])
             entries)
      in
      let rec apply = function
        | [] -> P.return ()
        | (a, b) :: rest ->
          let* () = dw a b in
          apply rest
      in
      let* _r = dwm slot_blocks in
      (* BUG: _r may be a torn-write error — committed regardless *)
      let* () = dw (rec_addr ly) (int_block (List.length entries)) in
      let* () = apply entries in
      let* () = dw (rec_addr ly) (int_block 0) in
      P.return V.unit

  (** Fault-handling bug #3 — error swallowed after partial apply: the
      post-commit apply loop drops a failed write on the floor and still
      clears the commit record and reports success, leaving a committed
      transaction half-applied with recovery disarmed.  Caught with fault
      budget 1 and no crash: the very next read of the skipped address
      sees the stale block. *)
  let commit_ft_swallow_apply ~get_disk ~set_disk ly entries : ('w, V.t) P.t =
    let dw a b = Disk.Single_disk.write ~get_disk ~set_disk a b in
    let dwf a b = Disk.Single_disk.write_f ~get_disk ~set_disk a b in
    if entries = [] then P.return V.unit
    else
      let rec log i = function
        | [] -> P.return ()
        | (a, b) :: rest ->
          let* () = dw (slot_addr ly i) (int_block a) in
          let* () = dw (slot_val ly i) b in
          log (i + 1) rest
      in
      let rec apply = function
        | [] -> P.return ()
        | (a, b) :: rest ->
          let* _r = dwf a b in
          (* BUG: _r may be a transient write error — entry skipped *)
          apply rest
      in
      let* () = log 0 entries in
      let* () = dw (rec_addr ly) (int_block (List.length entries)) in
      let* () = apply entries in
      let* () = dw (rec_addr ly) (int_block 0) in
      P.return V.unit

  let commit_txn_ft_ignore_torn ly entries : (world, V.t) P.t =
    let* () = lock () in
    let* r = commit_ft_ignore_torn ~get_disk ~set_disk ly entries in
    let* () = unlock () in
    P.return r

  let commit_txn_ft_swallow_apply ly entries : (world, V.t) P.t =
    let* () = lock () in
    let* r = commit_ft_swallow_apply ~get_disk ~set_disk ly entries in
    let* () = unlock () in
    P.return r

  let commit_ft_call_ignore_torn ly entries =
    (Spec.call "j_commit_ft" [ value_of_entries entries ], commit_txn_ft_ignore_torn ly entries)

  let commit_ft_call_swallow_apply ly entries =
    (Spec.call "j_commit_ft" [ value_of_entries entries ], commit_txn_ft_swallow_apply ly entries)
end
