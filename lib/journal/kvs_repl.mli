(** The line-oriented command interpreter behind [bin/kvs_server].

    Commands: [GET <k>], [PUT <k> <v>], [TXN k=v [k=v ...]],
    [ASYNC <k> <v>], [FLUSH], [CRASH], [RECOVER], [DUMP], [QUIT].

    Robustness contract: {!exec_line} never raises on any input except
    {!Quit} (for the QUIT command).  Malformed input — bad keys, wrong
    arity, duplicate transaction keys, transactions larger than the log —
    and oversized input (lines beyond {!max_line} bytes) all produce
    ["ERR ..."] responses; unexpected exceptions from the store are caught
    and reported as ["ERR internal: ..."] so no input can kill the
    session.  With a [timeout_ms] budget, a command whose backend program
    runs away — a degraded [_ft] path spinning through retries — answers
    ["ERR timeout"] with the store untouched instead of hanging the
    session. *)

type t
(** A session: parameters plus the current world, threaded through
    {!exec_line}. *)

val create : ?n_keys:int -> ?timeout_ms:int -> unit -> t
(** A fresh store; [n_keys] defaults to 8.  [timeout_ms] bounds each
    command's execution (the [--timeout-ms] knob of [bin/kvs_server]):
    the simulated backend has no wall clock, so the budget is a
    deterministic step allowance of 1000 committed steps per
    millisecond.  A command that exceeds it is abandoned — the response
    is ["ERR timeout"] and the world keeps its pre-command state.
    Omitted (the default), commands run without a bound, as before. *)

val params : t -> Kvs.params

val max_line : int
(** Longest accepted input line, in bytes (longer lines get an error
    response rather than being processed). *)

val help : string
(** The command list, as shown in the greeting line. *)

exception Quit
(** Raised by {!exec_line} on QUIT — the only exception it lets escape. *)

val exec_line : t -> string -> string list
(** Execute one input line, returning the response lines (empty for a blank
    line, [DUMP] returns one line per key). *)
