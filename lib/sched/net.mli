(** Message-passing network model with an enumerable adversary.

    Channels are named FIFO queues of {!Tslang.Value} messages living inside
    the program world behind a [~get]/[~set] lens.  The adversary — message
    loss, duplication, reordering, bounded delay — rides the SAME machinery
    as storage faults: each send/recv step declares its adversary events on
    {!Prog.Atomic}'s [faults] channel (as the [Fault.Msg_*] kinds), so

    - the refinement checker's fault-budget enumeration explores network
      schedules composed with crash points and interleavings exactly as it
      explores disk-fault schedules;
    - the runner's [?fault_schedule] oracle can replay a specific network
      schedule deterministically;
    - DPOR stays sound (steps with live fault branches are globally
      dependent; every step also carries a per-channel footprint);
    - every [(channel, event-kind)] pair registers a coverage site
      ([net_send(ch):msg_drop], …) in {!Obs.Coverage}, and fired events
      render as FAULT lines in counterexample lanes.

    Crash semantics: channels are volatile — a crash loses every in-flight
    message ({!clear}).  Recovery runs over a reliable network: the
    adversary only fires inside the main phase, mirroring the
    reliable-recovery fault assumption. *)

(** {1 Adversary event kinds} *)

type kind =
  | Drop  (** the sent message is lost in flight *)
  | Dup  (** the sent message is delivered twice *)
  | Reorder of int
      (** a receive delivers the [k]-th waiting message ([k >= 1])
          instead of the head *)
  | Delay
      (** delivery delayed past the receiver's timeout: a non-blocking
          receive times out even though a message is queued *)

val kind_name : kind -> string
val pp_kind : kind Fmt.t
val compare_kind : kind -> kind -> int
val equal_kind : kind -> kind -> bool

val to_fault : kind -> Fault.kind
(** The [Fault.Msg_*] embedding network steps declare their events with. *)

val of_fault : Fault.kind -> kind option
(** Partial inverse of {!to_fault}: [None] on storage-fault kinds. *)

(** {1 Network schedules} *)

type injection = { at : int; kind : kind }
(** Fire network event [kind] at the [at]-th fault-eligible step of the
    execution — the same step numbering as {!Fault.injection}, so network
    and storage injections share one schedule space. *)

type schedule = injection list

val pp_injection : injection Fmt.t
val pp_schedule : schedule Fmt.t
val compare_injection : injection -> injection -> int
val compare_schedule : schedule -> schedule -> int

val enumerate : budget:int -> (int * kind list) list -> schedule list
(** [enumerate ~budget sites] lists every network schedule drawing at most
    [budget] events from [sites], a list of [(site_index, kinds_available)]
    pairs — the network mirror of {!Fault.enumerate}: deterministic in the
    input, duplicate-free (sites and kinds de-duplicated first), the empty
    schedule first, and each dimension (loss, duplication, reordering,
    delay) contributing independently. *)

val to_fault_schedule : schedule -> Fault.schedule
(** Embed a network schedule into the runner's fault-schedule oracle. *)

(** {1 Channel state} *)

type state
(** Canonical (sorted, no empty queues), so structural equality of worlds
    containing a [state] is semantic equality. *)

val empty : state
val is_empty : state -> bool

val send : string -> Tslang.Value.t -> state -> state
(** Enqueue at the tail of the named channel. *)

val recv : string -> state -> (Tslang.Value.t * state) option
(** Dequeue the head; [None] if the channel is empty. *)

val recv_at : string -> int -> state -> (Tslang.Value.t * state) option
(** Dequeue the [i]-th waiting message (0-based) — out-of-order delivery. *)

val peek : string -> state -> Tslang.Value.t option
val length : string -> state -> int
val channels : state -> string list

val clear : state -> state
(** Crash transition: every in-flight message is lost. *)

val compare : state -> state -> int
val equal : state -> state -> bool
val pp : state Fmt.t

(** {1 Program steps}

    Every step embeds the channel name in its label, so coverage sites are
    per [(channel, event-kind)] and lanes show which channel an event hit. *)

val chan_loc : string -> Footprint.loc
(** The volatile footprint location of a channel ([Volatile ("net:"^ch)]). *)

val send_step :
  get:('w -> state) ->
  set:('w -> state -> 'w) ->
  ?reliable:bool ->
  string ->
  Tslang.Value.t ->
  ('w, unit) Prog.t
(** One send.  Unless [~reliable:true], declares [Drop] (message lost,
    state unchanged) and [Dup] (enqueued twice) as adversary events. *)

val recv_step :
  get:('w -> state) ->
  set:('w -> state -> 'w) ->
  ?window:int ->
  string ->
  ('w, Tslang.Value.t) Prog.t
(** Blocking receive: unschedulable while the channel is empty.  Declares
    [Reorder k] for [1 <= k <= window] (default 1) when at least [k+1]
    messages wait.  No [Delay] event: delaying delivery to a receiver
    willing to wait forever is subsumed by the scheduler not running it. *)

val try_recv_step :
  get:('w -> state) ->
  set:('w -> state -> 'w) ->
  ?window:int ->
  string ->
  ('w, Tslang.Value.t option) Prog.t
(** Non-blocking receive with a timeout outcome: an empty channel returns
    [None] (the caller's timeout fired).  Declares [Delay] — timeout fires
    even though a message IS queued, delivery delayed past the deadline —
    and [Reorder] like {!recv_step}. *)

val recv_until :
  get:('w -> state) ->
  set:('w -> state -> 'w) ->
  ?window:int ->
  until:('w -> bool) ->
  ?until_reads:Footprint.loc list ->
  string ->
  ('w, Tslang.Value.t option) Prog.t
(** Server-loop receive: blocks until a message arrives ([Some m]) or the
    harness-level [until] predicate holds with the channel drained ([None]
    — orderly shutdown).  [until_reads] lists the locations [until] reads,
    so DPOR keeps the step ordered against whatever changes them. *)
