(** Resumable concurrent programs over an explicit world.

    A [('w, 'a) t] is a program whose every primitive step is an explicit
    atomic action on a world of type ['w].  Programs are *data*: a scheduler
    (or the refinement checker) picks which thread steps next, applies the
    action, and resumes the continuation.  This is the execution format every
    implementation in the repository compiles to — the primitive storage
    language of the Table 3 examples and the Goose interpreter both target
    it.

    Atomic actions are nondeterministic ([Steps] lists every possible
    outcome, e.g. a disk read that may fail over) and may be *blocked*
    (empty list: a lock that is currently held) or *undefined* (a detected
    race, paper §6.1).  The intermediate type ['b] carried between an action
    and its continuation is existential — schedulers apply the action and
    feed each outcome to [k] without inspecting it.

    Actions MUST be pure functions of the world: schedulers probe an action
    (to detect blocking) without committing its outcome, and the exhaustive
    checker applies the same action along many branches.  Worlds are
    immutable values; effects happen only by returning an updated world. *)

type ('w, 'b) step_result =
  | Steps of ('w * 'b) list
      (** possible outcomes; [[]] means blocked at this instant *)
  | Ub of string  (** undefined behaviour, with a reason for diagnostics *)

type mark = Enter of { sm_name : string; sm_cat : string } | Exit
(** Span markers: zero-cost causal annotations a program can carry between
    steps.  Marks are {e not} steps — schedulers consume every pending mark
    for free before looking at the next [Atomic], so wrapping a program in
    {!span} never changes the explored state space, only the trace. *)

type ('w, 'a) t =
  | Done of 'a
  | Mark of mark * ('w, 'a) t
      (** a span annotation followed by the rest of the program *)
  | Atomic : {
      label : string;  (** for traces, e.g. ["disk_write d1[0]"] *)
      fp : 'w -> Footprint.t;
          (** read/write footprint of the step in the given world, for
              partial-order reduction; defaults to {!Footprint.Unknown},
              which is always sound *)
      action : 'w -> ('w, 'b) step_result;
      faults : 'w -> (Fault.kind * 'w * 'b) list;
          (** fault points: the partial failures this step can absorb in the
              given world, each with the faulted post-world and return value
              (e.g. a transient read error leaving the world unchanged and
              returning {!Fault.eio}).  Defaults to none.  An oracle — the
              runner's [?fault_schedule] or the checker's fault-budget
              enumeration — decides whether a declared fault fires instead
              of a normal [action] outcome; left alone, faults never fire. *)
      k : 'b -> ('w, 'a) t;
    }
      -> ('w, 'a) t

val return : 'a -> ('w, 'a) t
val bind : ('w, 'a) t -> ('a -> ('w, 'b) t) -> ('w, 'b) t
val map : ('a -> 'b) -> ('w, 'a) t -> ('w, 'b) t

val atomic :
  ?fp:('w -> Footprint.t) ->
  ?faults:('w -> (Fault.kind * 'w * 'b) list) ->
  string ->
  ('w -> ('w, 'b) step_result) ->
  ('w, 'b) t
(** One atomic step. *)

val det : ?fp:('w -> Footprint.t) -> string -> ('w -> 'w * 'b) -> ('w, 'b) t
(** Deterministic atomic step. *)

val read : ?fp:('w -> Footprint.t) -> string -> ('w -> 'b) -> ('w, 'b) t
(** Deterministic read-only step. *)

val write : ?fp:('w -> Footprint.t) -> string -> ('w -> 'w) -> ('w, unit) t
(** Deterministic world update returning unit. *)

val blocked_until : ?fp:('w -> Footprint.t) -> string -> ('w -> ('w * 'b) option) -> ('w, 'b) t
(** Step that blocks (is unschedulable) while the function returns [None] —
    the shape of lock acquisition. *)

val ub : string -> ('w, 'a) t
(** Immediately-undefined program. *)

val seq : ('w, unit) t list -> ('w, unit) t

module Syntax : sig
  val ( let* ) : ('w, 'a) t -> ('a -> ('w, 'b) t) -> ('w, 'b) t
  val ( let+ ) : ('w, 'a) t -> ('a -> 'b) -> ('w, 'b) t
end

val lift : get:('w -> 'v) -> set:('w -> 'v -> 'w) -> ('v, 'a) t -> ('w, 'a) t
(** [lift ~get ~set p] runs a program over a component world ['v] inside a
    larger world ['w] through a lens — every step's action, footprint, and
    declared faults are mapped through [get]/[set].  This is how a host
    world embeds a whole subsystem (e.g. a shard's {!Journal.Kvs} world
    inside a distributed-service world) without rewriting its programs.
    Labels, marks, and fault kinds pass through unchanged, so traces,
    coverage sites, and DPOR dependence are those of the inner program. *)

val span : ?cat:string -> string -> ('w, 'a) t -> ('w, 'a) t
(** [span ~cat name p] wraps [p] in [Enter]/[Exit] marks so an
    interpreter that understands marks (the runner) emits a causal span
    covering [p]'s steps.  Transparent to the checker: contributes no
    steps, labels, footprints, or faults. *)

val strip_marks : ('w, 'a) t -> ('w, 'a) t
(** Drop any leading marks, exposing [Done] or [Atomic].  Interpreters
    that do not consume marks must call this before matching. *)

val marks_of : ('w, 'a) t -> mark list
(** The leading marks of a program, outermost first. *)

val label_of : ('w, 'a) t -> string option
(** Label of the next step, if the program is not finished. *)

val footprint_of : 'w -> ('w, 'a) t -> Footprint.t option
(** Footprint of the next step in world [w], if the program is not
    finished. *)

val fault_kinds_of : 'w -> ('w, 'a) t -> Fault.kind list
(** Fault kinds the next step declares in world [w]; [[]] if finished or
    fault-free.  A step with a non-empty list is a fault *site*. *)
