(** Fault kinds, injections, and fault schedules.

    A fault is a *partial* failure — strictly smaller than a whole-system
    crash: one I/O step misbehaves while every thread keeps running.  Steps
    declare which faults they can absorb (see {!Prog.atomic}'s [?faults]);
    an oracle — the runner's [?fault_schedule] or the refinement checker's
    exhaustive enumeration ([?faults] on [Refinement.check]) — decides which
    declared fault actually fires. *)

type kind =
  | Read_error  (** transient: the read fails, disk state unchanged *)
  | Write_error  (** transient: nothing is persisted *)
  | Torn_write of int
      (** a multi-block write persists only its first [k] blocks *)
  | Disk_offline  (** a disk detaches mid-operation (two-disk only) *)
  | Disk_online  (** a detached disk re-attaches (two-disk only) *)
  | Msg_drop  (** network: a sent message is lost in flight *)
  | Msg_dup  (** network: a sent message is delivered twice *)
  | Msg_reorder of int
      (** network: a receive delivers the [k]-th waiting message
          ([k >= 1]) instead of the head *)
  | Msg_delay
      (** network: delivery is delayed past the receiver's timeout — a
          non-blocking receive times out even though a message is queued *)

val kind_name : kind -> string
val pp_kind : kind Fmt.t
val compare_kind : kind -> kind -> int
val equal_kind : kind -> kind -> bool

type io_error = Eio of kind  (** carries the kind that caused it *)

val io_error_name : io_error -> string
val pp_io_error : io_error Fmt.t

val eio : io_error -> Tslang.Value.t
(** Distinguished error payload: fallible operations return either their
    normal value or [eio e], and {!is_eio} tells them apart.  Rendered as
    [Pair (Str "EIO", Str kind)] so counterexample traces show the cause. *)

val is_eio : Tslang.Value.t -> bool

val err_value : Tslang.Value.t
(** Client-visible degraded result: what a retry/degradation path returns
    once it gives up, and the error arm of graceful-degradation specs
    ("the operation completes atomically OR returns this distinguished
    error with durable state untouched").  Satisfies {!is_eio}; can never
    collide with a block ([Str]) or unit result. *)

val result_value : (Tslang.Value.t, io_error) result -> Tslang.Value.t

type injection = { at : int; kind : kind }
(** Fire fault [kind] at the [at]-th fault-eligible step of the execution
    (0-based, counting only steps that declare at least one fault). *)

type schedule = injection list

val pp_injection : injection Fmt.t
val pp_schedule : schedule Fmt.t
val compare_injection : injection -> injection -> int
val compare_schedule : schedule -> schedule -> int

val enumerate : budget:int -> (int * kind list) list -> schedule list
(** [enumerate ~budget sites] lists every schedule drawing at most [budget]
    injections from [sites], a list of [(site_index, kinds_available)]
    pairs.  Deterministic in the input and duplicate-free; the empty
    schedule comes first. *)
