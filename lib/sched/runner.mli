(** Concrete execution of concurrent programs under one schedule.

    Where the refinement checker explores *all* schedules, the runner picks
    one — round-robin, seeded-random, or an explicit thread sequence — and
    runs it to completion.  Used by the examples, the stress tests, and for
    replaying counterexample traces from the checker. *)

type policy =
  | Round_robin
  | Random of int  (** seed *)
  | Fixed of int list
      (** explicit schedule: thread index per step; falls back to
          round-robin when exhausted or when the named thread is blocked *)

type 'w outcome = {
  world : 'w;
  results : Tslang.Value.t array;  (** per-thread final values *)
  trace : (int * string) list;  (** (thread, step label) in execution order *)
  footprints : Footprint.t list;
      (** footprint of each committed step, evaluated in its pre-state;
          aligned with [trace] — this is what makes dependence between the
          steps of a concrete execution computable (see
          {!Perennial_core.Explore}) *)
  steps : int;
  per_thread_steps : int array;  (** steps committed by each thread *)
  context_switches : int;
      (** times the scheduler ran a different thread than the previous step *)
  injected : (int * Fault.kind) list;
      (** faults actually fired, as (site index, kind) in execution order *)
}

exception Undefined_behaviour of string
exception Deadlock of string

val run :
  ?policy:policy ->
  ?max_steps:int ->
  ?fault_schedule:Fault.schedule ->
  'w ->
  ('w, Tslang.Value.t) Prog.t list ->
  'w outcome
(** Run threads to completion.  Nondeterministic actions take their first
    outcome under [Round_robin]/[Fixed] and a seeded choice under [Random].
    [fault_schedule] is the injection oracle: committed steps that declare
    fault points are numbered 0, 1, … in execution order, and an injection
    [{at; kind}] makes the [at]-th such step take its declared fault of
    that [kind] (injections naming an undeclared kind are skipped).
    Raises {!Undefined_behaviour} if any thread steps into UB, {!Deadlock}
    if unfinished threads are all blocked, and [Failure] past [max_steps]
    (default 1_000_000). *)

val run1 : 'w -> ('w, Tslang.Value.t) Prog.t -> 'w * Tslang.Value.t
(** Run a single program to completion (round-robin trivially). *)
