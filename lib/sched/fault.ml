(** Fault kinds, injections, and fault schedules.

    A fault is a *partial* failure — strictly smaller than a whole-system
    crash: one I/O step misbehaves while every thread keeps running.  Steps
    declare which faults they can absorb (see {!Prog.atomic}'s [?faults]);
    an oracle — the runner's [?fault_schedule] or the refinement checker's
    exhaustive enumeration — decides which declared fault actually fires. *)

type kind =
  | Read_error
  | Write_error
  | Torn_write of int
  | Disk_offline
  | Disk_online
  | Msg_drop
  | Msg_dup
  | Msg_reorder of int
  | Msg_delay

let kind_name = function
  | Read_error -> "read_error"
  | Write_error -> "write_error"
  | Torn_write k -> Printf.sprintf "torn_write(%d)" k
  | Disk_offline -> "disk_offline"
  | Disk_online -> "disk_online"
  | Msg_drop -> "msg_drop"
  | Msg_dup -> "msg_dup"
  | Msg_reorder k -> Printf.sprintf "msg_reorder(%d)" k
  | Msg_delay -> "msg_delay"

let pp_kind ppf k = Format.pp_print_string ppf (kind_name k)

let compare_kind (a : kind) (b : kind) = Stdlib.compare a b
let equal_kind (a : kind) (b : kind) = a = b

type io_error = Eio of kind

let io_error_name (Eio k) = Printf.sprintf "EIO(%s)" (kind_name k)
let pp_io_error ppf e = Format.pp_print_string ppf (io_error_name e)

(* Program results travel between atomic steps as {!Tslang.Value} payloads,
   so fallible operations encode [(v, io_error) result] as values: *)

module V = Tslang.Value

let eio (Eio k) = V.pair (V.str "EIO") (V.str (kind_name k))

let is_eio v =
  match v with
  | V.Pair (V.Str "EIO", _) -> true
  | _ -> false

(* Client-visible degraded result: what a retry/degradation path returns to
   its caller once it gives up, and what graceful-degradation specs offer
   as the error arm of their outcome choice.  A [Pair], so it can never
   collide with a block ([Str]) or a unit result. *)
let err_value = V.pair (V.str "EIO") (V.str "degraded")

let result_value = function Ok v -> v | Error e -> eio e

type injection = { at : int; kind : kind }
(** Fire fault [kind] at the [at]-th fault-eligible step of the execution
    (0-based, counting only steps that declare at least one fault). *)

type schedule = injection list

let pp_injection ppf i = Format.fprintf ppf "%d:%s" i.at (kind_name i.kind)

let pp_schedule ppf s =
  Format.fprintf ppf "[%s]"
    (String.concat "; "
       (List.map (fun i -> Printf.sprintf "%d:%s" i.at (kind_name i.kind)) s))

let compare_injection a b =
  let c = Int.compare a.at b.at in
  if c <> 0 then c else compare_kind a.kind b.kind

let compare_schedule = List.compare compare_injection

(** All schedules drawing at most [budget] injections from [sites], a list
    of [(site_index, kinds_available)] pairs.  Schedules are sorted by site
    index; the result is deterministic in the input and duplicate-free
    (sites and their kinds are de-duplicated first).  The empty schedule is
    always first. *)
let enumerate ~budget sites =
  let sites =
    List.sort_uniq
      (fun (a, _) (b, _) -> Int.compare a b)
      (List.map (fun (at, ks) -> (at, List.sort_uniq compare_kind ks)) sites)
  in
  let rec go budget = function
    | [] -> [ [] ]
    | (at, kinds) :: rest ->
      let without = go budget rest in
      if budget <= 0 then without
      else
        let tails = go (budget - 1) rest in
        without
        @ List.concat_map
            (fun kind -> List.map (fun tl -> { at; kind } :: tl) tails)
            kinds
  in
  go (max 0 budget) sites
