type loc =
  | Durable of string * int
  | Volatile of string * int

type kind =
  | Plain
  | Acquire of loc
  | Release of loc

type t =
  | Unknown
  | Rw of { reads : loc list; writes : loc list; kind : kind }

let unknown = Unknown
let rw ?(kind = Plain) ~reads ~writes () = Rw { reads; writes; kind }
let reads locs = Rw { reads = locs; writes = []; kind = Plain }
let writes locs = Rw { reads = []; writes = locs; kind = Plain }
let pure = Rw { reads = []; writes = []; kind = Plain }
let acquire l = Rw { reads = [ l ]; writes = [ l ]; kind = Acquire l }
let release l = Rw { reads = [ l ]; writes = [ l ]; kind = Release l }
let const fp _w = fp
let disk ?(region = "disk") a = Durable (region, a)
let lock id = Volatile ("lock", id)
let cell name = Volatile (name, 0)
let cell_at name i = Volatile (name, i)

let loc_equal (a : loc) (b : loc) = a = b
let mem l ls = List.exists (loc_equal l) ls

let union a b =
  match (a, b) with
  | Unknown, _ | _, Unknown -> Unknown
  | Rw a, Rw b ->
    Rw { reads = a.reads @ b.reads; writes = a.writes @ b.writes; kind = Plain }

let conflicts a b =
  match (a, b) with
  | Unknown, _ | _, Unknown -> true
  | Rw a, Rw b ->
    List.exists (fun l -> mem l b.reads || mem l b.writes) a.writes
    || List.exists (fun l -> mem l a.reads || mem l a.writes) b.writes

let writes_durable = function
  | Unknown -> true
  | Rw { writes; _ } ->
    List.exists (function Durable _ -> true | Volatile _ -> false) writes

(* Two steps may be simultaneously enabled unless the lock discipline rules
   it out: [acquire l] needs the lock free while [release l] needs it held,
   and two [release l] would need two holders. *)
let may_be_coenabled a b =
  match (a, b) with
  | Rw { kind = Acquire l; _ }, Rw { kind = Release l'; _ }
  | Rw { kind = Release l; _ }, Rw { kind = Acquire l'; _ }
  | Rw { kind = Release l; _ }, Rw { kind = Release l'; _ } ->
    not (loc_equal l l')
  | _ -> true

let pp_loc ppf = function
  | Durable (r, a) -> Fmt.pf ppf "%s[%d]!" r a
  | Volatile (r, a) -> Fmt.pf ppf "%s[%d]" r a

let pp ppf = function
  | Unknown -> Fmt.string ppf "?"
  | Rw { reads; writes; kind } ->
    let pk ppf = function
      | Plain -> ()
      | Acquire l -> Fmt.pf ppf " acq:%a" pp_loc l
      | Release l -> Fmt.pf ppf " rel:%a" pp_loc l
    in
    Fmt.pf ppf "r{%a} w{%a}%a"
      (Fmt.list ~sep:Fmt.comma pp_loc) reads
      (Fmt.list ~sep:Fmt.comma pp_loc) writes
      pk kind
