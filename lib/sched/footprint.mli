(** Read/write footprints of atomic steps, for dependence analysis.

    The partial-order-reduction strategies in the refinement checker
    ({!Perennial_core.Explore}) reorder commuting thread steps.  Whether two
    steps commute is decided from their *footprints*: the locations each
    step may read or write.  A location is either {e durable} (it survives a
    crash and is visible to recovery — disk blocks) or {e volatile} (lock
    table entries, in-memory cells — wiped by [crash_world]).

    Footprints are conservative by construction: a step with an [Unknown]
    footprint conflicts with everything, so un-annotated steps are always
    treated as dependent and reduction degrades gracefully to naive
    exploration around them.  Over-approximating a footprint (claiming
    extra reads or writes) is always sound; under-approximating is not. *)

type loc =
  | Durable of string * int
      (** address [i] of a named durable region, e.g. [Durable ("disk", 3)] *)
  | Volatile of string * int
      (** volatile location: a lock-table entry or a named in-memory cell *)

type kind =
  | Plain
  | Acquire of loc  (** blocks until the lock location is free *)
  | Release of loc  (** requires the lock location to be held *)

type t =
  | Unknown  (** conflicts with everything — the safe default *)
  | Rw of { reads : loc list; writes : loc list; kind : kind }

val unknown : t
val rw : ?kind:kind -> reads:loc list -> writes:loc list -> unit -> t
val reads : loc list -> t
val writes : loc list -> t
val pure : t  (** touches nothing; commutes with every known footprint *)

val acquire : loc -> t
(** Footprint of a lock acquisition: reads and writes the lock location. *)

val release : loc -> t
(** Footprint of a lock release. *)

val const : t -> 'w -> t
(** Lift a static footprint to the world-dependent form {!Prog.Atomic}
    carries: [const fp] ignores the world. *)

val disk : ?region:string -> int -> loc
(** [disk a] is durable address [a] of region ["disk"]. *)

val lock : int -> loc
(** The volatile lock-table entry for lock [id]. *)

val cell : string -> loc
(** A named volatile cell (an in-memory buffer, a cache). *)

val cell_at : string -> int -> loc
(** Slot [i] of a named volatile region (e.g. one inode's page-cache
    entry): [cell_at name 0 = cell name]. *)

val union : t -> t -> t
(** Combined footprint; [Unknown] absorbs. The kind degrades to [Plain]. *)

val conflicts : t -> t -> bool
(** [conflicts a b] iff one step may write a location the other may touch —
    the steps do not commute.  [Unknown] conflicts with everything. *)

val writes_durable : t -> bool
(** Does the step write state that survives a crash?  Such steps are
    dependent with crash injection; [Unknown] counts as durable. *)

val may_be_coenabled : t -> t -> bool
(** Conservative co-enabledness: [false] only when the lock discipline
    proves the two steps can never both be enabled in the same state
    (e.g. [acquire l] vs [release l]).  Used to place DPOR backtrack
    points at genuine races only. *)

val pp_loc : loc Fmt.t
val pp : t Fmt.t
