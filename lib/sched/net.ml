(** Message-passing network model with an enumerable adversary.

    Channels are named FIFO queues of {!Tslang.Value} messages living inside
    the program world (behind a [~get]/[~set] lens, like every other piece
    of shared state).  The network adversary — loss, duplication,
    reordering, bounded delay — is expressed through the SAME machinery as
    storage faults: each send/recv step declares its adversary events on
    {!Prog.Atomic}'s [faults] channel, so the refinement checker's
    fault-budget enumeration, the runner's fault-schedule oracle, DPOR's
    dependence rule for fault sites, coverage-site registration, and FAULT
    lane rendering all compose with network schedules exactly as they do
    with disk faults today. *)

module V = Tslang.Value
module P = Prog
module Fp = Footprint

(* ------------------------------------------------------------------ *)
(* Adversary event kinds                                               *)
(* ------------------------------------------------------------------ *)

type kind =
  | Drop
  | Dup
  | Reorder of int
  | Delay

let kind_name = function
  | Drop -> "msg_drop"
  | Dup -> "msg_dup"
  | Reorder k -> Printf.sprintf "msg_reorder(%d)" k
  | Delay -> "msg_delay"

let pp_kind ppf k = Format.pp_print_string ppf (kind_name k)
let compare_kind (a : kind) (b : kind) = Stdlib.compare a b
let equal_kind (a : kind) (b : kind) = a = b

let to_fault = function
  | Drop -> Fault.Msg_drop
  | Dup -> Fault.Msg_dup
  | Reorder k -> Fault.Msg_reorder k
  | Delay -> Fault.Msg_delay

let of_fault = function
  | Fault.Msg_drop -> Some Drop
  | Fault.Msg_dup -> Some Dup
  | Fault.Msg_reorder k -> Some (Reorder k)
  | Fault.Msg_delay -> Some Delay
  | Fault.Read_error | Fault.Write_error | Fault.Torn_write _ | Fault.Disk_offline
  | Fault.Disk_online ->
    None

(* ------------------------------------------------------------------ *)
(* Network schedules                                                   *)
(* ------------------------------------------------------------------ *)

type injection = { at : int; kind : kind }
type schedule = injection list

let pp_injection ppf i = Format.fprintf ppf "%d:%s" i.at (kind_name i.kind)

let pp_schedule ppf s =
  Format.fprintf ppf "[%s]"
    (String.concat "; "
       (List.map (fun i -> Printf.sprintf "%d:%s" i.at (kind_name i.kind)) s))

let compare_injection a b =
  let c = Int.compare a.at b.at in
  if c <> 0 then c else compare_kind a.kind b.kind

let compare_schedule = List.compare compare_injection

(* Same recursion as {!Fault.enumerate}: deterministic in the input,
   duplicate-free (sites and kinds de-duplicated first), empty schedule
   first. *)
let enumerate ~budget sites =
  let sites =
    List.sort_uniq
      (fun (a, _) (b, _) -> Int.compare a b)
      (List.map (fun (at, ks) -> (at, List.sort_uniq compare_kind ks)) sites)
  in
  let rec go budget = function
    | [] -> [ [] ]
    | (at, kinds) :: rest ->
      let without = go budget rest in
      if budget <= 0 then without
      else
        let tails = go (budget - 1) rest in
        without
        @ List.concat_map
            (fun kind -> List.map (fun tl -> { at; kind } :: tl) tails)
            kinds
  in
  go (max 0 budget) sites

let to_fault_schedule s =
  List.map (fun { at; kind } -> { Fault.at; kind = to_fault kind }) s

(* ------------------------------------------------------------------ *)
(* Channel state                                                       *)
(* ------------------------------------------------------------------ *)

(* Sorted assoc of non-empty queues (oldest message first): the
   representation is canonical, so structural compare/equal are semantic. *)
type state = (string * V.t list) list

let empty : state = []
let is_empty (st : state) = st = []

let rec send ch m (st : state) : state =
  match st with
  | [] -> [ (ch, [ m ]) ]
  | (c, q) :: rest ->
    let cmp = String.compare ch c in
    if cmp < 0 then (ch, [ m ]) :: st
    else if cmp = 0 then (c, q @ [ m ]) :: rest
    else (c, q) :: send ch m rest

let queue ch (st : state) = match List.assoc_opt ch st with None -> [] | Some q -> q
let length ch st = List.length (queue ch st)
let peek ch st = match queue ch st with [] -> None | m :: _ -> Some m
let channels (st : state) = List.map fst st

(* Deliver the [i]-th waiting message (0-based) out of order. *)
let recv_at ch i (st : state) =
  let q = queue ch st in
  if i < 0 || i >= List.length q then None
  else
    let m = List.nth q i in
    let q' = List.filteri (fun j _ -> j <> i) q in
    let st' =
      if q' = [] then List.remove_assoc ch st
      else List.map (fun (c, x) -> if c = ch then (c, q') else (c, x)) st
    in
    Some (m, st')

let recv ch st = recv_at ch 0 st

let clear (_ : state) : state = []
(** Crash semantics: channels are volatile — every in-flight message is
    lost with the machines.  (Recovery itself runs over a reliable network:
    the adversary only fires inside the main phase, mirroring the
    reliable-recovery fault assumption in {!Refinement}.) *)

let compare (a : state) (b : state) =
  List.compare
    (fun (c1, q1) (c2, q2) ->
      let c = String.compare c1 c2 in
      if c <> 0 then c else List.compare V.compare q1 q2)
    a b

let equal a b = compare a b = 0

let pp ppf (st : state) =
  Format.fprintf ppf "{%s}"
    (String.concat "; "
       (List.map
          (fun (c, q) ->
            Printf.sprintf "%s:[%s]" c
              (String.concat ", " (List.map (Format.asprintf "%a" V.pp) q)))
          st))

(* ------------------------------------------------------------------ *)
(* Program steps                                                       *)
(* ------------------------------------------------------------------ *)

let chan_loc ch = Fp.cell ("net:" ^ ch)

(* The reorder events a receive can absorb in [st]: deliver the k-th
   waiting message instead of the head, for k up to [window] (and within
   the queue).  Needs at least two queued messages to differ from a normal
   receive. *)
let reorder_alts ~window ch st deliver =
  let n = length ch st in
  let rec ks k = if k > window || k >= n then [] else k :: ks (k + 1) in
  List.map
    (fun k ->
      match recv_at ch k st with
      | None -> assert false
      | Some (m, st') -> (Fault.Msg_reorder k, st', deliver m st'))
    (ks 1)

let send_step ~get ~set ?(reliable = false) ch msg =
  let fp _w = Fp.rw ~reads:[ chan_loc ch ] ~writes:[ chan_loc ch ] () in
  let action w = P.Steps [ (set w (send ch msg (get w)), ()) ] in
  let faults w =
    if reliable then []
    else
      [
        (Fault.Msg_drop, w, ());
        (Fault.Msg_dup, set w (send ch msg (send ch msg (get w))), ());
      ]
  in
  P.atomic ~fp ~faults ("net_send(" ^ ch ^ ")") action

(* Blocking receive: unschedulable while the channel is empty.  No [Delay]
   event here — in an interleaving semantics, delaying delivery to a
   receiver that is willing to wait forever is subsumed by the scheduler
   simply not running it yet; delay is only observable against a timeout
   (see {!try_recv_step}). *)
let recv_step ~get ~set ?(window = 1) ch =
  let fp _w = Fp.rw ~reads:[ chan_loc ch ] ~writes:[ chan_loc ch ] () in
  let action w =
    match recv ch (get w) with
    | None -> P.Steps []
    | Some (m, st') -> P.Steps [ (set w st', m) ]
  in
  let faults w =
    reorder_alts ~window ch (get w) (fun m st' -> ignore st'; m)
    |> List.map (fun (kd, st', m) -> (kd, set w st', m))
  in
  P.atomic ~fp ~faults ("net_recv(" ^ ch ^ ")") action

(* Non-blocking receive with a timeout outcome: an empty channel returns
   [None] immediately (the caller's timeout fired), and the [Delay] event
   makes the timeout fire even though a message IS queued — delivery
   delayed past the deadline, message still in flight. *)
let try_recv_step ~get ~set ?(window = 1) ch =
  let fp _w = Fp.rw ~reads:[ chan_loc ch ] ~writes:[ chan_loc ch ] () in
  let action w =
    match recv ch (get w) with
    | None -> P.Steps [ (w, None) ]
    | Some (m, st') -> P.Steps [ (set w st', Some m) ]
  in
  let faults w =
    let st = get w in
    let delay = if length ch st = 0 then [] else [ (Fault.Msg_delay, w, None) ] in
    delay
    @ (reorder_alts ~window ch st (fun m _ -> Some m)
      |> List.map (fun (kd, st', m) -> (kd, set w st', m)))
  in
  P.atomic ~fp ~faults ("net_try_recv(" ^ ch ^ ")") action

(* Server-loop receive: blocks until a message arrives OR the harness-level
   [until] predicate holds with the channel drained (all clients done →
   [None] → orderly shutdown).  [until_reads] lists the locations [until]
   reads so DPOR keeps it ordered against the steps that change them. *)
let recv_until ~get ~set ?(window = 1) ~until ?(until_reads = []) ch =
  let fp _w = Fp.rw ~reads:(chan_loc ch :: until_reads) ~writes:[ chan_loc ch ] () in
  let action w =
    match recv ch (get w) with
    | Some (m, st') -> P.Steps [ (set w st', Some m) ]
    | None -> if until w then P.Steps [ (w, None) ] else P.Steps []
  in
  let faults w =
    reorder_alts ~window ch (get w) (fun m _ -> Some m)
    |> List.map (fun (kd, st', m) -> (kd, set w st', m))
  in
  P.atomic ~fp ~faults ("net_recv(" ^ ch ^ ")") action
