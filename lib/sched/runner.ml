module V = Tslang.Value

type policy =
  | Round_robin
  | Random of int
  | Fixed of int list

type 'w outcome = {
  world : 'w;
  results : V.t array;
  trace : (int * string) list;
  footprints : Footprint.t list;
  steps : int;
  per_thread_steps : int array;
  context_switches : int;
  injected : (int * Fault.kind) list;
}

(* Observability: scheduler-level counters on the default registry. *)
module Mx = struct
  open Obs.Metrics

  let runs = counter "perennial_sched_runs_total"
  let steps = counter "perennial_sched_steps_total"
  let switches = counter "perennial_sched_context_switches_total"
  let injected = counter "perennial_sched_faults_injected_total"
end

exception Undefined_behaviour of string
exception Deadlock of string

type 'w thread_state =
  | Running of ('w, V.t) Prog.t
  | Finished of V.t

let run ?(policy = Round_robin) ?(max_steps = 1_000_000) ?(fault_schedule = [])
    world threads =
  let n = List.length threads in
  let states = Array.of_list (List.map (fun p -> Running p) threads) in
  let world = ref world in
  let trace = ref [] in
  let fps = ref [] in
  let steps = ref 0 in
  let per_thread = Array.make n 0 in
  let switches = ref 0 in
  let last_ran = ref (-1) in
  (* Fault-injection oracle: [site] counts committed fault-eligible steps;
     an injection [{at; kind}] in [fault_schedule] fires at the [at]-th such
     step if the step declares [kind]. *)
  let site = ref 0 in
  let injected = ref [] in
  Obs.Metrics.inc Mx.runs;
  let rng = match policy with Random seed -> Some (Random.State.make [| seed |]) | Round_robin | Fixed _ -> None
  in
  let fixed = ref (match policy with Fixed l -> l | Round_robin | Random _ -> []) in
  let rr = ref 0 in
  (* A thread is runnable if unfinished and its next action is not blocked. *)
  (* Returns the next step of thread [i] as (label, outcome count, commit):
     [commit idx] applies outcome [idx] and resumes the continuation.  The
     closure keeps the step's existential payload type from escaping. *)
  (* Marks are free: consume every pending span annotation on thread [i]
     (emitting begin/end events and per-layer latency observations) before
     looking at its next real step. *)
  let span_cats = Array.make n [] in
  let rec consume_marks i =
    match states.(i) with
    | Running (Prog.Mark (m, p)) ->
      (match m with
      | Prog.Enter { sm_name; sm_cat } ->
        span_cats.(i) <- sm_cat :: span_cats.(i);
        if Obs.Trace.enabled () then Obs.Trace.span_begin ~cat:sm_cat ~tid:i sm_name
      | Prog.Exit ->
        let cat = match span_cats.(i) with [] -> "" | c :: rest -> span_cats.(i) <- rest; c in
        if Obs.Trace.enabled () then
          match Obs.Trace.span_end ~tid:i () with
          | None -> ()
          | Some dur ->
            Obs.Metrics.observe
              (Obs.Metrics.histogram
                 ~labels:[ ("layer", (if cat = "" then "unknown" else cat)) ]
                 "perennial_span_us")
              dur);
      states.(i) <- Running p;
      consume_marks i
    | Running _ | Finished _ -> ()
  in
  let step_of i =
    consume_marks i;
    match states.(i) with
    | Finished _ -> None
    | Running (Prog.Done v) ->
      states.(i) <- Finished v;
      None
    | Running (Prog.Mark _) -> assert false (* consumed above *)
    | Running (Prog.Atomic { label; fp; action; faults; k }) ->
      (match action !world with
      | Prog.Ub reason ->
        raise (Undefined_behaviour (Printf.sprintf "thread %d at %s: %s" i label reason))
      | Prog.Steps [] -> None (* blocked *)
      | Prog.Steps outs ->
        let fp = fp !world in
        let flts = faults !world in
        (* [commit idx] applies normal outcome [idx]; [commit_fault kind]
           applies the declared fault of that kind instead, returning false
           if the step does not declare it (the injection is then skipped
           and the normal outcome commits). *)
        let commit idx =
          let w', v = List.nth outs idx in
          world := w';
          states.(i) <- Running (k v)
        in
        let commit_fault kind =
          match
            List.find_opt (fun (kd, _, _) -> Fault.equal_kind kd kind) flts
          with
          | None -> false
          | Some (_, w', v) ->
            world := w';
            states.(i) <- Running (k v);
            true
        in
        Some (label, fp, List.length outs, flts <> [], commit, commit_fault))
  in
  let unfinished () =
    let acc = ref [] in
    for i = n - 1 downto 0 do
      consume_marks i;
      (match states.(i) with
      | Running (Prog.Done v) -> states.(i) <- Finished v
      | Running _ | Finished _ -> ());
      match states.(i) with Running _ -> acc := i :: !acc | Finished _ -> ()
    done;
    !acc
  in
  let pick runnable =
    match rng with
    | Some st -> List.nth runnable (Random.State.int st (List.length runnable))
    | None ->
      (match !fixed with
      | i :: rest when List.mem i runnable ->
        fixed := rest;
        i
      | _ :: rest ->
        fixed := rest;
        (* fall through to round-robin on a blocked/finished choice *)
        (match List.find_opt (fun i -> i >= !rr) runnable with
        | Some i -> i
        | None -> List.hd runnable)
      | [] ->
        (match List.find_opt (fun i -> i >= !rr) runnable with
        | Some i -> i
        | None -> List.hd runnable))
  in
  let rec loop () =
    match unfinished () with
    | [] -> ()
    | pending ->
      let runnable = List.filter (fun i -> step_of i <> None) pending in
      (match runnable with
      | [] ->
        raise
          (Deadlock
             (Printf.sprintf "threads %s blocked"
                (String.concat "," (List.map string_of_int pending))))
      | _ ->
        let i = pick runnable in
        (match step_of i with
        | None -> ()
        | Some (label, fp, n_outs, fault_eligible, commit, commit_fault) ->
          let fault_fired =
            if not fault_eligible then false
            else begin
              let here = !site in
              incr site;
              match
                List.find_opt (fun (inj : Fault.injection) -> inj.at = here)
                  fault_schedule
              with
              | Some inj when commit_fault inj.kind ->
                injected := (here, inj.kind) :: !injected;
                true
              | Some _ | None -> false
            end
          in
          if not fault_fired then begin
            let idx =
              match rng with Some st -> Random.State.int st n_outs | None -> 0
            in
            commit idx
          end;
          fps := fp :: !fps;
          trace := (i, label) :: !trace;
          incr steps;
          per_thread.(i) <- per_thread.(i) + 1;
          if !last_ran >= 0 && !last_ran <> i then incr switches;
          last_ran := i;
          if !steps > max_steps then failwith "Runner.run: step budget exceeded");
        rr := (i + 1) mod n;
        loop ())
  in
  loop ();
  Obs.Metrics.inc ~by:!steps Mx.steps;
  Obs.Metrics.inc ~by:!switches Mx.switches;
  Obs.Metrics.inc ~by:(List.length !injected) Mx.injected;
  let results =
    Array.map (function Finished v -> v | Running _ -> assert false) states
  in
  { world = !world; results; trace = List.rev !trace;
    footprints = List.rev !fps; steps = !steps;
    per_thread_steps = per_thread; context_switches = !switches;
    injected = List.rev !injected }

let run1 world prog =
  let out = run world [ prog ] in
  (out.world, out.results.(0))
