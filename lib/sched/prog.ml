module V = Tslang.Value

type ('w, 'b) step_result =
  | Steps of ('w * 'b) list
  | Ub of string

type mark = Enter of { sm_name : string; sm_cat : string } | Exit

type ('w, 'a) t =
  | Done of 'a
  | Mark of mark * ('w, 'a) t
  | Atomic : {
      label : string;
      fp : 'w -> Footprint.t;
      action : 'w -> ('w, 'b) step_result;
      faults : 'w -> (Fault.kind * 'w * 'b) list;
      k : 'b -> ('w, 'a) t;
    }
      -> ('w, 'a) t

let return a = Done a

let rec bind : type a b. ('w, a) t -> (a -> ('w, b) t) -> ('w, b) t =
 fun m f ->
  match m with
  | Done a -> f a
  | Mark (m, p) -> Mark (m, bind p f)
  | Atomic { label; fp; action; faults; k } ->
    Atomic { label; fp; action; faults; k = (fun v -> bind (k v) f) }

let map f m = bind m (fun a -> Done (f a))

let unknown_fp _w = Footprint.Unknown
let no_faults _w = []

let atomic ?(fp = unknown_fp) ?(faults = no_faults) label action =
  Atomic { label; fp; action; faults; k = (fun v -> Done v) }

let det ?fp label f = atomic ?fp label (fun w -> Steps [ f w ])
let read ?fp label f = det ?fp label (fun w -> (w, f w))

let write ?fp label f =
  bind (det ?fp label (fun w -> (f w, V.unit))) (fun _ -> Done ())

let blocked_until ?fp label f =
  atomic ?fp label (fun w -> match f w with None -> Steps [] | Some out -> Steps [ out ])

let ub reason =
  Atomic
    {
      label = "UB";
      fp = unknown_fp;
      action = (fun _ -> (Ub reason : ('w, unit) step_result));
      faults = no_faults;
      k = (fun () -> assert false);
    }

let rec seq = function
  | [] -> Done ()
  | m :: rest -> bind m (fun () -> seq rest)

module Syntax = struct
  let ( let* ) = bind
  let ( let+ ) m f = map f m
end

let rec lift : type a. get:('w -> 'v) -> set:('w -> 'v -> 'w) -> ('v, a) t -> ('w, a) t =
 fun ~get ~set -> function
  | Done a -> Done a
  | Mark (m, p) -> Mark (m, lift ~get ~set p)
  | Atomic { label; fp; action; faults; k } ->
    Atomic
      {
        label;
        fp = (fun w -> fp (get w));
        action =
          (fun w ->
            match action (get w) with
            | Ub r -> Ub r
            | Steps outs -> Steps (List.map (fun (v', b) -> (set w v', b)) outs));
        faults =
          (fun w -> List.map (fun (kd, v', b) -> (kd, set w v', b)) (faults (get w)));
        k = (fun b -> lift ~get ~set (k b));
      }

let span ?(cat = "") name p =
  Mark (Enter { sm_name = name; sm_cat = cat }, bind p (fun v -> Mark (Exit, Done v)))

let rec strip_marks : type a. ('w, a) t -> ('w, a) t = function
  | Mark (_, p) -> strip_marks p
  | p -> p

let rec marks_of : type a. ('w, a) t -> mark list = function
  | Mark (m, p) -> m :: marks_of p
  | _ -> []

let rec label_of : type a. ('w, a) t -> string option = function
  | Done _ -> None
  | Mark (_, p) -> label_of p
  | Atomic { label; _ } -> Some label

let rec footprint_of : type a. 'w -> ('w, a) t -> Footprint.t option =
 fun w -> function
  | Done _ -> None
  | Mark (_, p) -> footprint_of w p
  | Atomic { fp; _ } -> Some (fp w)

let rec fault_kinds_of : type a. 'w -> ('w, a) t -> Fault.kind list =
 fun w -> function
  | Done _ -> []
  | Mark (_, p) -> fault_kinds_of w p
  | Atomic { faults; _ } -> List.map (fun (kd, _, _) -> kd) (faults w)
