module V = Tslang.Value

type ('w, 'b) step_result =
  | Steps of ('w * 'b) list
  | Ub of string

type ('w, 'a) t =
  | Done of 'a
  | Atomic : {
      label : string;
      fp : 'w -> Footprint.t;
      action : 'w -> ('w, 'b) step_result;
      faults : 'w -> (Fault.kind * 'w * 'b) list;
      k : 'b -> ('w, 'a) t;
    }
      -> ('w, 'a) t

let return a = Done a

let rec bind : type a b. ('w, a) t -> (a -> ('w, b) t) -> ('w, b) t =
 fun m f ->
  match m with
  | Done a -> f a
  | Atomic { label; fp; action; faults; k } ->
    Atomic { label; fp; action; faults; k = (fun v -> bind (k v) f) }

let map f m = bind m (fun a -> Done (f a))

let unknown_fp _w = Footprint.Unknown
let no_faults _w = []

let atomic ?(fp = unknown_fp) ?(faults = no_faults) label action =
  Atomic { label; fp; action; faults; k = (fun v -> Done v) }

let det ?fp label f = atomic ?fp label (fun w -> Steps [ f w ])
let read ?fp label f = det ?fp label (fun w -> (w, f w))

let write ?fp label f =
  bind (det ?fp label (fun w -> (f w, V.unit))) (fun _ -> Done ())

let blocked_until ?fp label f =
  atomic ?fp label (fun w -> match f w with None -> Steps [] | Some out -> Steps [ out ])

let ub reason =
  Atomic
    {
      label = "UB";
      fp = unknown_fp;
      action = (fun _ -> (Ub reason : ('w, unit) step_result));
      faults = no_faults;
      k = (fun () -> assert false);
    }

let rec seq = function
  | [] -> Done ()
  | m :: rest -> bind m (fun () -> seq rest)

module Syntax = struct
  let ( let* ) = bind
  let ( let+ ) m f = map f m
end

let label_of = function Done _ -> None | Atomic { label; _ } -> Some label

let footprint_of w = function
  | Done _ -> None
  | Atomic { fp; _ } -> Some (fp w)

let fault_kinds_of w = function
  | Done _ -> []
  | Atomic { faults; _ } -> List.map (fun (kd, _, _) -> kd) (faults w)
