module Block = Disk.Block

type entry = string * int

let reserved c = c = ':' || c = ';' || c = '|' || c = '/' || c = ','

let valid_name s = s <> "" && String.for_all (fun c -> not (reserved c)) s

let to_block = function
  | [] -> Block.zero
  | entries ->
    Block.of_string
      (String.concat ";"
         (List.map (fun (n, i) -> n ^ ":" ^ string_of_int i) entries))

let of_block b =
  if Block.equal b Block.zero then []
  else
    List.filter_map
      (fun piece ->
        match String.split_on_char ':' piece with
        | [ name; ino ] when valid_name name -> (
          match int_of_string_opt ino with
          | Some i when i >= 0 -> Some (name, i)
          | _ -> None)
        | _ -> None)
      (String.split_on_char ';' (Block.to_string b))

let sort entries = List.sort (fun (a, _) (b, _) -> String.compare a b) entries

let pp ppf entries =
  Fmt.pf ppf "{%a}"
    (Fmt.list ~sep:Fmt.semi (fun ppf (n, i) -> Fmt.pf ppf "%s:%d" n i))
    entries
