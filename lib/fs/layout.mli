(** Disk geometry of the inode file system ({!Fs}), layered on the journal.

    The journal's *data region* ({!Journal.Txn_log.layout}) is carved into
    three fixed areas, in address order:

    - block [0]: the allocation bitmap for the data blocks ({!Bitmap});
    - blocks [1 .. n_inodes]: the inode table, one inode per block
      ({!Inode}; [Block.zero] marks a free inode);
    - blocks [n_inodes+1 ..]: [n_blocks] data blocks, holding file bytes
      and packed directory entries ({!Dirent}).

    Beyond the data region lie the journal's commit record and log slots
    — the file system never addresses those directly; every mutation goes
    through {!Journal.Txn_log.commit_prog}.

    Inode 0 is the root directory: its entries name the directories, whose
    own entries name the files — the same two-level namespace as the
    {!Gfs.Fs} specification. *)

type t = private {
  n_inodes : int;  (** inode-table size, including the root *)
  n_blocks : int;  (** data blocks governed by the bitmap *)
  block_bytes : int;  (** file bytes per data block *)
  dir_entries : int;  (** directory entries per data block *)
  inode_ptrs : int;  (** direct block pointers per inode *)
}

val v :
  ?block_bytes:int ->
  ?dir_entries:int ->
  ?inode_ptrs:int ->
  n_inodes:int ->
  n_blocks:int ->
  unit ->
  t
(** Defaults keep exhaustive checking tractable: [block_bytes = 2],
    [dir_entries = 2], [inode_ptrs = 3].  Raises [Invalid_argument] on a
    non-positive dimension. *)

val root_ino : int
(** [0] — the root directory's inode. *)

val bitmap_addr : t -> int
val inode_addr : t -> int -> int
val data_addr : t -> int -> int

val n_data : t -> int
(** Size of the journal's data region. *)

val max_slots : t -> int
(** Journal log slots — one per data-region address, since transactions
    are per-address deduplicated. *)

val journal : t -> Journal.Txn_log.layout
val disk_size : t -> int

val max_file_bytes : t -> int
(** [inode_ptrs * block_bytes] — the direct-block file-size cap, checked
    identically by the implementation and the specification. *)

val max_dir_entries : t -> int
(** [inode_ptrs * dir_entries] — entries one directory can hold. *)
