(** Mailboat's spool re-hosted on the inode file system — see spool.mli. *)

module V = Tslang.Value
module Spec = Tslang.Spec
module P = Sched.Prog
module Fp = Sched.Footprint
module Core = Mailboat.Core

let user_lock u = 1 + u

let params ?(durability = `Sync) ?backend ?(users = 1) ?(msg_blocks = 2) () =
  let n_inodes = 2 + users + 2 in
  let n_blocks = 4 + users + (2 * msg_blocks) in
  Fs.params ~durability ?backend (Layout.v ~n_inodes ~n_blocks ())

let init_world p ~users = Fs.init_world p ~dirs:(Core.dirs ~users) ~files:[]

open P.Syntax

(** Model of [machine.RandomUint64], as in {!Mailboat.Core}: a
    nondeterministic draw without replacement per round. *)
let random_id candidates : ('w, V.t) P.t =
  P.atomic
    ~fp:(fun _ -> Fp.pure)
    "random_id"
    (fun w -> P.Steps (List.map (fun id -> (w, V.str id)) candidates))

let chunk_size = Core.chunk_size

let rec write_chunks p name msg : (Fs.world, unit) P.t =
  if String.length msg = 0 then P.return ()
  else
    let n = min chunk_size (String.length msg) in
    let* r = Fs.append_prog p Core.spool name (String.sub msg 0 n) in
    if not (V.get_bool r) then P.ub "spool: append to missing temporary"
    else write_chunks p name (String.sub msg n (String.length msg - n))

(** Deliver: create [spool/tmp-id], write the message in chunks, optionally
    fsync it, then move it into the mailbox with the no-replace rename —
    one atomic commit point that also unspools (no separate delete, unlike
    the {!Gfs}-backed original whose link/unlink are two steps).  Both
    random-ID draws retry in rounds over the finite universe, exactly like
    {!Mailboat.Core.deliver_prog}. *)
let deliver_gen ~fsync p u msg : (Fs.world, V.t) P.t =
  let rec create_round candidates rounds_left =
    match candidates with
    | [] ->
      if rounds_left > 0 then create_round Core.id_universe (rounds_left - 1)
      else P.ub "spool: message-ID space exhausted"
    | _ ->
      let* id = random_id candidates in
      let id = V.get_str id in
      let* ok = Fs.create_prog p Core.spool ("tmp-" ^ id) in
      if V.get_bool ok then P.return id
      else create_round (List.filter (fun c -> c <> id) candidates) rounds_left
  in
  let* tmp_id = create_round Core.id_universe 2 in
  let tmp = "tmp-" ^ tmp_id in
  let* () = write_chunks p tmp msg in
  let* () =
    if not fsync then P.return ()
    else
      let* r = Fs.fsync_prog p Core.spool tmp in
      if V.get_bool r then P.return () else P.ub "spool: fsync of missing temporary"
  in
  let rec link_round candidates rounds_left =
    match candidates with
    | [] ->
      if rounds_left > 0 then link_round Core.id_universe (rounds_left - 1)
      else P.ub "spool: mailbox ID space exhausted"
    | _ ->
      let* id = random_id candidates in
      let id = V.get_str id in
      let* ok = Fs.rename_nr_prog p ~src:(Core.spool, tmp) ~dst:(Core.user_dir u, id) in
      if V.get_bool ok then P.return ()
      else link_round (List.filter (fun c -> c <> id) candidates) rounds_left
  in
  let* () = link_round Core.id_universe 2 in
  P.return V.unit

let deliver_prog p u msg = deliver_gen ~fsync:true p u msg

(** The seeded "missing fsync before the directory commit" bug: under
    [`Deferred] durability the message bytes are still volatile when the
    rename publishes the mailbox name, so a crash right after the commit
    leaves a truncated (typically empty) message that the Mailboat spec —
    whose delivered mail survives crashes — cannot explain.  Harmless
    under [`Sync], exactly like {!Mailboat.Core.deliver_prog} vs
    {!Mailboat.Core.deliver_fsync_prog}. *)
let deliver_nofsync_prog p u msg = deliver_gen ~fsync:false p u msg

(** Pickup: under the user lock, list the mailbox and read every message. *)
let pickup_prog p u : (Fs.world, V.t) P.t =
  let* () = Disk.Locks.acquire ~get:Fs.get_locks ~set:Fs.set_locks (user_lock u) in
  let* r = Fs.readdir_prog p (Core.user_dir u) in
  let names, ok = V.get_pair r in
  if not (V.get_bool ok) then P.ub "spool: mailbox directory missing"
  else
    let rec read_each acc = function
      | [] -> P.return (V.list (List.rev acc))
      | name :: rest ->
        let name = V.get_str name in
        let* r = Fs.read_prog p (Core.user_dir u) name in
        let contents, ok = V.get_pair r in
        if not (V.get_bool ok) then P.ub ("spool: mailbox entry vanished: " ^ name)
        else read_each (V.pair (V.str name) contents :: acc) rest
    in
    read_each [] (V.get_list names)

(** Delete: requires the user lock (taken by pickup). *)
let delete_prog p u id : (Fs.world, V.t) P.t =
  let* ok = Fs.unlink_prog p (Core.user_dir u) id in
  if V.get_bool ok then P.return V.unit
  else P.ub ("spool: delete of unknown message " ^ id)

let unlock_prog u : (Fs.world, V.t) P.t =
  let* () = Disk.Locks.release ~get:Fs.get_locks ~set:Fs.set_locks (user_lock u) in
  P.return V.unit

(** Recover: replay the journal (completing any committed file-system
    transaction), then unspool leftover temporaries. *)
let recover_prog p : (Fs.world, V.t) P.t =
  let* _ = Fs.recover p in
  let* r = Fs.readdir_prog p Core.spool in
  let names, _ok = V.get_pair r in
  let rec del = function
    | [] -> P.return V.unit
    | name :: rest ->
      let* _ = Fs.unlink_prog p Core.spool (V.get_str name) in
      del rest
  in
  del (V.get_list names)

let deliver_call p u msg = (Spec.call "deliver" [ V.int u; V.str msg ], deliver_prog p u msg)

let deliver_nofsync_call p u msg =
  (Spec.call "deliver" [ V.int u; V.str msg ], deliver_nofsync_prog p u msg)

let pickup_call p u = (Spec.call "pickup" [ V.int u ], pickup_prog p u)
let delete_call p u id = (Spec.call "delete" [ V.int u; V.str id ], delete_prog p u id)
let unlock_call u = (Spec.call "unlock" [ V.int u ], unlock_prog u)
let session_calls p u = [ pickup_call p u; unlock_call u ]

let checker_config p ?(users = 1) ?(max_crashes = 1) ?(fault_budget = 0)
    ?(step_budget = 20_000_000) threads :
    (Fs.world, Core.state) Perennial_core.Refinement.config =
  Perennial_core.Refinement.config ~spec:(Core.spec ~users) ~init_world:(init_world p ~users)
    ~crash_world:Fs.crash_world ~pp_world:Fs.pp_world ~threads ~recovery:(recover_prog p)
    ~post:(List.concat_map (session_calls p) (List.init users Fun.id))
    ~max_crashes ~fault_budget ~step_budget ()
