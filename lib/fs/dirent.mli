(** Directory entries — (name, inode) pairs — packed into directory-file
    blocks, at most {!Layout.t.dir_entries} per block.

    Directories are rewritten whole on every change, so their entries stay
    sorted and densely packed: equal namespaces marshal to byte-identical
    blocks, and {!of_block} ∘ {!to_block} is the identity on sorted valid
    groups. *)

type entry = string * int

val valid_name : string -> bool
(** Nonempty and free of the marshalling metacharacters
    [':' ';' '|' '/' ',']; the file system (and its spec) reject other
    names uniformly. *)

val to_block : entry list -> Disk.Block.t
(** ["a:3;b:7"]; the empty group marshals to [Block.zero]. *)

val of_block : Disk.Block.t -> entry list
(** Total: unparseable pieces are dropped (the file system only ever reads
    blocks it wrote). *)

val sort : entry list -> entry list
val pp : entry list Fmt.t
