(** A crash-safe inode file system on the journal stack — the capstone
    layering of the repo's storage tower:

    {v
      Spool (Mailboat re-hosted)          lib/fs/spool.ml
        Fs  (this module)                 POSIX subset, atomic ops
          Journal.Txn_log                 multi-address transactions
            Disk.Single_disk              crash-prone block device
    v}

    On-disk format (see {!Layout}): block 0 the allocation {!Bitmap},
    blocks [1..n_inodes] the {!Inode} table, then the data region, then
    the journal's commit record and log slots.  Inode 0 is the root
    directory; its entries name directories, whose entries name files —
    the same two-level namespace as the atomic {!Gfs.Fs} specification the
    implementation is checked against.

    {b Crash argument.}  Every mutating operation is: take the single
    file-system lock, make one pure {e decision} step that reads the
    locked state and computes a whole transaction (a canonical
    [(address, block) list]: freed blocks zeroed, per-address
    deduplicated, sorted), commit it through
    {!Journal.Txn_log.commit_prog}, release the lock.  The journal makes
    the transaction all-or-nothing across crashes and recovery replays a
    committed-but-unapplied one, so every operation is crash-atomic —
    which is exactly the [Gfs.Fs] spec's step granularity.  Allocation
    lives inside the same transaction as the structures that reference
    the allocated blocks; that single fact is what rules out double-free
    and leak across crashes (cf. {!Buggy.unlink_free_first}).

    {b Durability.}  Under [`Sync] every operation is durable at return.
    Under [`Deferred], [append] buffers in a volatile per-inode cache and
    [fsync] commits the tail; a crash truncates each file to its synced
    prefix — mirroring [Gfs.Fs]'s durability modes and crash transition.

    Reads batch into the one decision step with a conservative read-only
    footprint over the whole file-system region; all mutation happens in
    the journal's per-block write steps, which carry precise footprints —
    so partial-order reduction stays sound and crash injection keeps
    per-block granularity where it matters. *)

type params = private { lay : Layout.t; durability : Gfs.Fs.durability; backend : Journal.Txn_log.backend }

val params : ?durability:Gfs.Fs.durability -> ?backend:Journal.Txn_log.backend -> Layout.t -> params
(** [durability] defaults to [`Sync]; [backend] (default [`Direct])
    selects the journal's commit protocol — [`Wal] routes every fs
    transaction and recovery through the circular log. *)

(** {1 World} *)

module IMap : Map.S with type key = int

type world = {
  disk : Disk.Single_disk.t;
  cache : string IMap.t;
      (** per-inode unsynced tail ([`Deferred] mode); volatile *)
  locks : Disk.Locks.t;
}

val get_disk : world -> Disk.Single_disk.t
val set_disk : world -> Disk.Single_disk.t -> world
val get_locks : world -> Disk.Locks.t
val set_locks : world -> Disk.Locks.t -> world

val crash_world : world -> world
(** Cache and locks are volatile; the disk survives. *)

val pp_world : world Fmt.t

val fs_lock : int
(** The single lock serializing file-system operations (coarse, like the
    paper's per-structure locks scaled down to the tiny model); {!Spool}
    claims ids from 1 up for its per-user locks. *)

val init_world : params -> dirs:string list -> files:(string * string * string) list -> world
(** A freshly formatted disk seeded with [dirs] and [files]
    [(dir, name, contents)], built through the same pure decision
    functions the operations use.  Raises [Invalid_argument] if the seed
    exceeds the layout's capacity. *)

(** {1 Operations}

    Boolean-returning operations answer [false] (never raise, never UB)
    for name/lookup failures, exactly as the spec does; resource
    exhaustion (out of inodes, data blocks, or directory slots) is
    undefined behaviour — size the instance so it cannot happen, as
    {!Layout} documents. *)

val mkdir_prog : params -> string -> (world, Tslang.Value.t) Sched.Prog.t
(** [bool]: create a directory under the root. *)

val create_prog : params -> string -> string -> (world, Tslang.Value.t) Sched.Prog.t
(** [bool]: create an empty file in a directory. *)

val append_prog : params -> string -> string -> string -> (world, Tslang.Value.t) Sched.Prog.t
(** [bool]: append bytes to a file; [false] if missing or the result
    would exceed {!Layout.max_file_bytes}.  Durable at return under
    [`Sync]; buffered until {!fsync_prog} under [`Deferred]. *)

val read_prog : params -> string -> string -> (world, Tslang.Value.t) Sched.Prog.t
(** [(contents, ok) pair]: durable bytes plus any unsynced tail. *)

val readdir_prog : params -> string -> (world, Tslang.Value.t) Sched.Prog.t
(** [(names, ok) pair]; ["/"] lists the directories, sorted. *)

val unlink_prog : params -> string -> string -> (world, Tslang.Value.t) Sched.Prog.t
(** [bool]: remove a file, freeing its inode and blocks in the same
    transaction. *)

val rename_prog :
  params -> src:string * string -> dst:string * string -> (world, Tslang.Value.t) Sched.Prog.t
(** [bool]: atomically move [src] to [dst], displacing any existing
    target — unlink and link in ONE transaction. *)

val rename_nr_prog :
  params -> src:string * string -> dst:string * string -> (world, Tslang.Value.t) Sched.Prog.t
(** No-replace rename: [false] if [dst] already exists.  The spool's
    atomic publish. *)

val fsync_prog : params -> string -> string -> (world, Tslang.Value.t) Sched.Prog.t
(** [bool]: make the file's buffered tail durable ([`Deferred]); a no-op
    under [`Sync]. *)

val create_ft_prog : ?retries:int -> params -> string -> string -> (world, Tslang.Value.t) Sched.Prog.t
(** Graceful degradation: the allocator's bitmap read goes through the
    fallible disk op with bounded retry (default 1), and the transaction
    commits through {!Journal.Txn_log.commit_ft_prog} (abort before the
    commit record, unbounded retry after).  Degrades to
    {!Sched.Fault.err_value} with durable state untouched. *)

val append_ft_prog :
  ?retries:int -> params -> string -> string -> string -> (world, Tslang.Value.t) Sched.Prog.t

val recover : params -> (world, Tslang.Value.t) Sched.Prog.t
(** The journal's recovery; idempotent under crash-during-recovery. *)

(** {1 Specification} *)

val spec :
  params -> dirs:string list -> files:(string * string * string) list -> Gfs.Fs.t Tslang.Spec.t
(** The atomic {!Gfs.Fs} transition system over ops
    [fs_mkdir]/[fs_create]/[fs_append]/[fs_read]/[fs_readdir]/
    [fs_unlink]/[fs_rename]/[fs_rename_nr]/[fs_fsync] plus
    graceful-degradation arms [fs_create_ft]/[fs_append_ft]
    (effect-or-{!Sched.Fault.err_value}).  The crash transition is
    {!Gfs.Fs.crash}: truncate to synced prefixes, drop unsynced
    handles. *)

(** {1 Calls and checker configuration} *)

val mkdir_call : params -> string -> Tslang.Spec.call * (world, Tslang.Value.t) Sched.Prog.t
val create_call : params -> string -> string -> Tslang.Spec.call * (world, Tslang.Value.t) Sched.Prog.t

val append_call :
  params -> string -> string -> string -> Tslang.Spec.call * (world, Tslang.Value.t) Sched.Prog.t

val read_call : params -> string -> string -> Tslang.Spec.call * (world, Tslang.Value.t) Sched.Prog.t
val readdir_call : params -> string -> Tslang.Spec.call * (world, Tslang.Value.t) Sched.Prog.t
val unlink_call : params -> string -> string -> Tslang.Spec.call * (world, Tslang.Value.t) Sched.Prog.t

val rename_call :
  params ->
  src:string * string ->
  dst:string * string ->
  Tslang.Spec.call * (world, Tslang.Value.t) Sched.Prog.t

val rename_nr_call :
  params ->
  src:string * string ->
  dst:string * string ->
  Tslang.Spec.call * (world, Tslang.Value.t) Sched.Prog.t

val fsync_call : params -> string -> string -> Tslang.Spec.call * (world, Tslang.Value.t) Sched.Prog.t

val create_ft_call :
  ?retries:int -> params -> string -> string -> Tslang.Spec.call * (world, Tslang.Value.t) Sched.Prog.t

val append_ft_call :
  ?retries:int ->
  params ->
  string ->
  string ->
  string ->
  Tslang.Spec.call * (world, Tslang.Value.t) Sched.Prog.t

val probe :
  params ->
  dirs:string list ->
  files:(string * string) list ->
  (Tslang.Spec.call * (world, Tslang.Value.t) Sched.Prog.t) list
(** Post-crash probes: list every directory and read every named file.
    Probes may also be WRITE operations (create/append after recovery) —
    that is how the allocator double-free becomes observable. *)

val checker_config :
  params ->
  dirs:string list ->
  files:(string * string * string) list ->
  ?post:(Tslang.Spec.call * (world, Tslang.Value.t) Sched.Prog.t) list ->
  ?max_crashes:int ->
  ?fault_budget:int ->
  ?step_budget:int ->
  (Tslang.Spec.call * (world, Tslang.Value.t) Sched.Prog.t) list list ->
  (world, Gfs.Fs.t) Perennial_core.Refinement.config
(** [post] defaults to {!probe} over the seeded dirs and files. *)

(** {1 Seeded bugs} *)

module Buggy : sig
  val unlink_free_first : params -> string -> string -> (world, Tslang.Value.t) Sched.Prog.t
  (** Allocator double-free across a crash: the freed bits are written
      straight to the bitmap block — outside the journal — before the
      unlink transaction commits.  A crash in between leaves blocks both
      free (per the bitmap) and referenced (per the directory); the next
      allocation hands them out again and overwrites live file data.
      Expose with post probes that create-and-append after recovery, then
      read the original file. *)

  val unlink_call_free_first :
    params -> string -> string -> Tslang.Spec.call * (world, Tslang.Value.t) Sched.Prog.t

  val rename_two_txns :
    params -> src:string * string -> dst:string * string -> (world, Tslang.Value.t) Sched.Prog.t
  (** Rename as TWO journal transactions — unlink the displaced target
      first, then move the source.  Each transaction is atomic, but a
      crash between them has deleted the target without installing the
      new name: the composite is not. *)

  val rename_call_two_txns :
    params ->
    src:string * string ->
    dst:string * string ->
    Tslang.Spec.call * (world, Tslang.Value.t) Sched.Prog.t
end
