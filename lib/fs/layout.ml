(* See layout.mli for the disk geometry this module fixes. *)

type t = {
  n_inodes : int;
  n_blocks : int;
  block_bytes : int;
  dir_entries : int;
  inode_ptrs : int;
}

let v ?(block_bytes = 2) ?(dir_entries = 2) ?(inode_ptrs = 3) ~n_inodes ~n_blocks () =
  if n_inodes < 1 || n_blocks < 1 || block_bytes < 1 || dir_entries < 1 || inode_ptrs < 1
  then invalid_arg "Layout.v";
  { n_inodes; n_blocks; block_bytes; dir_entries; inode_ptrs }

let root_ino = 0
let bitmap_addr _t = 0
let inode_addr _t i = 1 + i
let data_addr t b = 1 + t.n_inodes + b
let n_data t = 1 + t.n_inodes + t.n_blocks

(* Transactions are deduplicated per address before commit, so a single
   operation can never journal more than one entry per data-region block. *)
let max_slots t = n_data t

let journal t = Journal.Txn_log.layout ~n_data:(n_data t) ~max_slots:(max_slots t)
let disk_size t = Journal.Txn_log.disk_size (journal t)
let max_file_bytes t = t.inode_ptrs * t.block_bytes
let max_dir_entries t = t.inode_ptrs * t.dir_entries
