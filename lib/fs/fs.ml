(** The inode file system over the journal — see fs.mli for the layer
    picture and the crash argument. *)

module V = Tslang.Value
module T = Tslang.Transition
module Spec = Tslang.Spec
module P = Sched.Prog
module Fp = Sched.Footprint
module Fault = Sched.Fault
module Block = Disk.Block
module Txn = Journal.Txn_log
module IMap = Map.Make (Int)

type params = { lay : Layout.t; durability : Gfs.Fs.durability; backend : Txn.backend }

let params ?(durability = `Sync) ?(backend = `Direct) lay = { lay; durability; backend }

(* ------------------------------------------------------------------ *)
(* World                                                                *)
(* ------------------------------------------------------------------ *)

type world = {
  disk : Disk.Single_disk.t;
  cache : string IMap.t;
      (** per-inode unsynced tail ([`Deferred] mode); volatile *)
  locks : Disk.Locks.t;
}

let get_disk w = w.disk
let set_disk w disk = { w with disk }
let get_locks w = w.locks
let set_locks w locks = { w with locks }
let crash_world w = { w with cache = IMap.empty; locks = Disk.Locks.empty }

let pp_world ppf w =
  Fmt.pf ppf "%a cache:{%a} %a" Disk.Single_disk.pp w.disk
    (Fmt.list ~sep:Fmt.comma (fun ppf (i, s) -> Fmt.pf ppf "%d=%S" i s))
    (IMap.bindings w.cache) Disk.Locks.pp w.locks

(** One global lock serializes the file-system operations (coarse, like the
    paper's per-structure locks scaled down to the tiny model); {!Spool}
    claims ids from 1 up for its per-user locks. *)
let fs_lock = 0

let lock () = Disk.Locks.acquire ~get:get_locks ~set:set_locks fs_lock
let unlock () = Disk.Locks.release ~get:get_locks ~set:set_locks fs_lock

(* ------------------------------------------------------------------ *)
(* Pure views of the on-disk state                                      *)
(* ------------------------------------------------------------------ *)

(* Total: every function below must be safe on ANY disk content (the
   checker evaluates them mid-crash and under seeded bugs). *)

let bget d a = if Disk.Single_disk.in_bounds d a then Disk.Single_disk.get d a else Block.zero
let bitmap p d = Bitmap.of_block ~n:p.lay.Layout.n_blocks (bget d (Layout.bitmap_addr p.lay))

let inode p d i =
  if i >= 0 && i < p.lay.Layout.n_inodes then Inode.of_block (bget d (Layout.inode_addr p.lay i))
  else None

let ptrs_of p d i = match inode p d i with Some n -> n.Inode.ptrs | None -> []

let dir_entries_at p d ino =
  match inode p d ino with
  | Some { Inode.kind = Dir; ptrs; _ } ->
    Dirent.sort
      (List.concat_map (fun b -> Dirent.of_block (bget d (Layout.data_addr p.lay b))) ptrs)
  | _ -> []

(* Root entries name the directories; "/" itself is not a file directory. *)
let resolve_dir p d name =
  if name = "/" then None
  else
    match List.assoc_opt name (dir_entries_at p d Layout.root_ino) with
    | Some i -> (
      match inode p d i with Some { Inode.kind = Dir; _ } -> Some i | _ -> None)
    | None -> None

let lookup p d dir name =
  match resolve_dir p d dir with
  | None -> None
  | Some di -> List.assoc_opt name (dir_entries_at p d di)

let file_contents p d ino =
  match inode p d ino with
  | Some { Inode.kind = File; len; ptrs } ->
    let full =
      String.concat ""
        (List.map (fun b -> Block.to_string (bget d (Layout.data_addr p.lay b))) ptrs)
    in
    Some (String.sub full 0 (min len (String.length full)))
  | _ -> None

let cache_tail w ino = match IMap.find_opt ino w.cache with Some s -> s | None -> ""
let cache_set c ino tail = if tail = "" then IMap.remove ino c else IMap.add ino tail c

let free_inode p d =
  let rec find i =
    if i >= p.lay.Layout.n_inodes then None
    else if Inode.is_free (bget d (Layout.inode_addr p.lay i)) then Some i
    else find (i + 1)
  in
  find 1

(* ------------------------------------------------------------------ *)
(* Pure transaction builder                                             *)
(* ------------------------------------------------------------------ *)

let rec take n = function x :: r when n > 0 -> x :: take (n - 1) r | _ -> []
let rec drop n l = if n <= 0 then l else match l with [] -> [] | _ :: r -> drop (n - 1) r
let rec group n l = if l = [] then [] else take n l :: group n (drop n l)

let chunks p s =
  let bb = p.lay.Layout.block_bytes in
  let rec go i acc =
    if i >= String.length s then List.rev acc
    else
      let n = min bb (String.length s - i) in
      go (i + n) (String.sub s i n :: acc)
  in
  go 0 []

type txn = { bm0 : Bitmap.t; bm : Bitmap.t; writes : (int * Block.t) list (* latest first *) }

let txn_begin p d =
  let b = bitmap p d in
  { bm0 = b; bm = b; writes = [] }

let txn_write t a b = { t with writes = (a, b) :: t.writes }

(* Freed blocks are zeroed in the same transaction, so equal file-system
   states have byte-identical disks (canonical form; helps dedup). *)
let txn_free p t ptrs =
  let t = { t with bm = Bitmap.clear_all t.bm ptrs } in
  List.fold_left (fun t b -> txn_write t (Layout.data_addr p.lay b) Block.zero) t ptrs

let txn_alloc p t blocks =
  match Bitmap.alloc_n t.bm (List.length blocks) with
  | None -> None
  | Some (bm, idxs) ->
    let t = { t with bm } in
    Some
      ( List.fold_left2
          (fun t i b -> txn_write t (Layout.data_addr p.lay i) b)
          t idxs blocks,
        idxs )

let txn_set_inode p t i ino = txn_write t (Layout.inode_addr p.lay i) (Inode.to_block ino)
let txn_clear_inode p t i = txn_write t (Layout.inode_addr p.lay i) Inode.free

(* Rewrite inode [i]'s data wholesale: free the old blocks, allocate for
   the new ones first-fit.  [None] = out of data blocks. *)
let rewrite_inode p t i ~kind ~len ~old_ptrs blocks =
  let t = txn_free p t old_ptrs in
  match txn_alloc p t blocks with
  | None -> None
  | Some (t, ptrs) -> Some (txn_set_inode p t i (Inode.v ~kind ~len ~ptrs))

let rewrite_dir p t i ~old_ptrs entries =
  let entries = Dirent.sort entries in
  rewrite_inode p t i ~kind:Inode.Dir ~len:(List.length entries) ~old_ptrs
    (List.map Dirent.to_block (group p.lay.Layout.dir_entries entries))

let rewrite_file p t i ~old_ptrs contents =
  rewrite_inode p t i ~kind:Inode.File ~len:(String.length contents) ~old_ptrs
    (List.map Block.of_string (chunks p contents))

(* Finished entries: bitmap write if it changed, per-address deduplicated
   (latest write wins), in ascending address order — a canonical txn. *)
let txn_entries p t =
  let ws =
    if Bitmap.equal t.bm t.bm0 then t.writes
    else (Layout.bitmap_addr p.lay, Bitmap.to_block t.bm) :: t.writes
  in
  let rec dedup acc = function
    | [] -> acc
    | (a, b) :: rest -> if List.mem_assoc a acc then dedup acc rest else dedup ((a, b) :: acc) rest
  in
  List.sort (fun (a, _) (b, _) -> compare a b) (dedup [] ws)

let apply_writes d writes = List.fold_left (fun d (a, b) -> Disk.Single_disk.set d a b) d writes

(* ------------------------------------------------------------------ *)
(* Operation plans: one pure decision over the locked world             *)
(* ------------------------------------------------------------------ *)

type plan =
  | Plan of {
      txn : (int * Block.t) list;  (** journal this atomically (maybe []) *)
      cache : (int * string) option;  (** then set inode's tail ([""] clears) *)
      ret : V.t;
    }
  | No_space of string  (** resource exhaustion — modeled as code-level UB *)

let plan_ret v = Plan { txn = []; cache = None; ret = v }
let ret_false = plan_ret (V.bool false)
let plan_txn ?cache t ~p ~ret = Plan { txn = txn_entries p t; cache; ret }
let no_blocks = No_space "fs: out of data blocks"

let decide_mkdir p name w =
  let d = w.disk in
  if not (Dirent.valid_name name) then ret_false
  else
    let root = dir_entries_at p d Layout.root_ino in
    if List.mem_assoc name root then ret_false
    else if List.length root + 1 > Layout.max_dir_entries p.lay then No_space "fs: root full"
    else
      match free_inode p d with
      | None -> No_space "fs: out of inodes"
      | Some i -> (
        let t = txn_begin p d in
        match
          rewrite_dir p t Layout.root_ino ~old_ptrs:(ptrs_of p d Layout.root_ino)
            ((name, i) :: root)
        with
        | None -> no_blocks
        | Some t -> plan_txn (txn_set_inode p t i Inode.dir) ~p ~ret:(V.bool true))

let decide_create p dir name w =
  let d = w.disk in
  if not (Dirent.valid_name name) then ret_false
  else
    match resolve_dir p d dir with
    | None -> ret_false
    | Some di -> (
      let entries = dir_entries_at p d di in
      if List.mem_assoc name entries then ret_false
      else if List.length entries + 1 > Layout.max_dir_entries p.lay then
        No_space "fs: directory full"
      else
        match free_inode p d with
        | None -> No_space "fs: out of inodes"
        | Some i -> (
          let t = txn_begin p d in
          match rewrite_dir p t di ~old_ptrs:(ptrs_of p d di) ((name, i) :: entries) with
          | None -> no_blocks
          | Some t -> plan_txn (txn_set_inode p t i Inode.file) ~p ~ret:(V.bool true)))

let decide_append p dir name data w =
  let d = w.disk in
  match lookup p d dir name with
  | None -> ret_false
  | Some ino -> (
    let durable = Option.value ~default:"" (file_contents p d ino) in
    let tail = cache_tail w ino in
    if String.length durable + String.length tail + String.length data > Layout.max_file_bytes p.lay
    then ret_false
    else
      match p.durability with
      | `Deferred -> Plan { txn = []; cache = Some (ino, tail ^ data); ret = V.bool true }
      | `Sync -> (
        let t = txn_begin p d in
        match rewrite_file p t ino ~old_ptrs:(ptrs_of p d ino) (durable ^ data) with
        | None -> no_blocks
        | Some t -> plan_txn t ~p ~ret:(V.bool true)))

let decide_read p dir name w =
  let d = w.disk in
  match lookup p d dir name with
  | None -> plan_ret (V.pair (V.str "") (V.bool false))
  | Some ino ->
    let durable = Option.value ~default:"" (file_contents p d ino) in
    plan_ret (V.pair (V.str (durable ^ cache_tail w ino)) (V.bool true))

let decide_readdir p dir w =
  let d = w.disk in
  let names entries = V.list (List.map (fun (n, _) -> V.str n) entries) in
  if dir = "/" then
    plan_ret (V.pair (names (dir_entries_at p d Layout.root_ino)) (V.bool true))
  else
    match resolve_dir p d dir with
    | None -> plan_ret (V.pair (V.list []) (V.bool false))
    | Some di -> plan_ret (V.pair (names (dir_entries_at p d di)) (V.bool true))

let decide_unlink p dir name w =
  let d = w.disk in
  match resolve_dir p d dir with
  | None -> ret_false
  | Some di -> (
    let entries = dir_entries_at p d di in
    match List.assoc_opt name entries with
    | None -> ret_false
    | Some ino -> (
      let t = txn_begin p d in
      match rewrite_dir p t di ~old_ptrs:(ptrs_of p d di) (List.remove_assoc name entries) with
      | None -> no_blocks
      | Some t ->
        let t = txn_clear_inode p (txn_free p t (ptrs_of p d ino)) ino in
        plan_txn t ~p ~ret:(V.bool true) ~cache:(ino, "")))

let decide_rename p ~replace ~src:(sd, sn) ~dst:(dd, dn) w =
  let d = w.disk in
  if not (Dirent.valid_name dn) then ret_false
  else
    match resolve_dir p d sd, resolve_dir p d dd with
    | Some sdi, Some ddi -> (
      let sentries = dir_entries_at p d sdi in
      match List.assoc_opt sn sentries with
      | None -> ret_false
      | Some ino ->
        let dentries = if sdi = ddi then sentries else dir_entries_at p d ddi in
        let target = List.assoc_opt dn dentries in
        if (not replace) && target <> None then ret_false
        else if sd = dd && sn = dn then plan_ret (V.bool true)
        else
          let t = txn_begin p d in
          let t =
            match target with
            | Some tino -> txn_clear_inode p (txn_free p t (ptrs_of p d tino)) tino
            | None -> t
          in
          let cache = Option.map (fun tino -> (tino, "")) target in
          let finishp t = plan_txn t ~p ~ret:(V.bool true) ?cache in
          if sdi = ddi then
            let entries' = (dn, ino) :: List.remove_assoc dn (List.remove_assoc sn sentries) in
            match rewrite_dir p t sdi ~old_ptrs:(ptrs_of p d sdi) entries' with
            | None -> no_blocks
            | Some t -> finishp t
          else
            let dentries' = (dn, ino) :: List.remove_assoc dn dentries in
            if List.length dentries' > Layout.max_dir_entries p.lay then
              No_space "fs: directory full"
            else (
              match rewrite_dir p t sdi ~old_ptrs:(ptrs_of p d sdi) (List.remove_assoc sn sentries) with
              | None -> no_blocks
              | Some t -> (
                match rewrite_dir p t ddi ~old_ptrs:(ptrs_of p d ddi) dentries' with
                | None -> no_blocks
                | Some t -> finishp t)))
    | _ -> ret_false

let decide_fsync p dir name w =
  let d = w.disk in
  match lookup p d dir name with
  | None -> ret_false
  | Some ino -> (
    match p.durability with
    | `Sync -> plan_ret (V.bool true)
    | `Deferred -> (
      let tail = cache_tail w ino in
      if tail = "" then plan_ret (V.bool true)
      else
        let durable = Option.value ~default:"" (file_contents p d ino) in
        let t = txn_begin p d in
        match rewrite_file p t ino ~old_ptrs:(ptrs_of p d ino) (durable ^ tail) with
        | None -> no_blocks
        | Some t -> plan_txn t ~p ~ret:(V.bool true) ~cache:(ino, "")))

(* ------------------------------------------------------------------ *)
(* Programs                                                             *)
(* ------------------------------------------------------------------ *)

open P.Syntax

(* The decision step reads (only reads) the whole file-system region plus
   every cache cell — conservative and sound; all mutation happens in the
   journal commit's per-block steps, which carry precise footprints and
   give crash injection its granularity. *)
let decide_fp p =
  Fp.const
    (Fp.reads
       (List.init (Layout.n_data p.lay) Fp.disk
       @ List.init p.lay.Layout.n_inodes (Fp.cell_at "fscache")))

let cache_step label (ino, tail) =
  P.write
    ~fp:(Fp.const (Fp.writes [ Fp.cell_at "fscache" ino ]))
    label
    (fun w -> { w with cache = cache_set w.cache ino tail })

let commit p txn =
  if txn = [] then P.return ()
  else Txn.commit_prog ~backend:p.backend ~get_disk ~set_disk (Layout.journal p.lay) txn

let finish p label plan =
  match plan with
  | No_space msg -> P.ub msg
  | Plan { txn; cache; ret } ->
    let* () = commit p txn in
    let* () =
      match cache with
      | None -> P.return ()
      | Some c -> cache_step ("fs_cache(" ^ label ^ ")") c
    in
    let* () = unlock () in
    P.return ret

let run_op p label decide : (world, V.t) P.t =
  P.span ~cat:"fs" label
  @@ let* () = lock () in
  let* plan = P.read ~fp:(decide_fp p) label decide in
  finish p label plan

let retry_step what : ('w, unit) P.t =
  P.read ~fp:(Fp.const Fp.pure) ("retry(" ^ what ^ ")") (fun _ -> ())

(** Graceful-degradation wrapper: the allocator's bitmap read goes through
    the fallible disk op with bounded retry, and the transaction commits
    through {!Journal.Txn_log.commit_ft_prog} (abort before the commit
    record, unbounded retry after it).  Degrades to
    {!Sched.Fault.err_value} with durable state untouched. *)
let run_op_ft p ?(retries = 1) label decide : (world, V.t) P.t =
  P.span ~cat:"fs" label
  @@ let* () = lock () in
  let rec attempt n =
    let* r = Disk.Single_disk.read_f ~get_disk (Layout.bitmap_addr p.lay) in
    if Fault.is_eio r then
      if n > 0 then
        let* () = retry_step "fs_alloc" in
        attempt (n - 1)
      else P.return false
    else P.return true
  in
  let* ok = attempt retries in
  if not ok then
    let* () = unlock () in
    P.return Fault.err_value
  else
    let* plan = P.read ~fp:(decide_fp p) label decide in
    match plan with
    | No_space msg -> P.ub msg
    | Plan { txn; cache; ret } ->
      let* r =
        if txn = [] then P.return V.unit
        else Txn.commit_ft_prog ~backend:p.backend ~get_disk ~set_disk ~retries (Layout.journal p.lay) txn
      in
      if Fault.is_eio r then
        let* () = unlock () in
        P.return Fault.err_value
      else
        let* () =
          match cache with
          | None -> P.return ()
          | Some c -> cache_step ("fs_cache(" ^ label ^ ")") c
        in
        let* () = unlock () in
        P.return ret

let mkdir_prog p name = run_op p (Printf.sprintf "fs_mkdir(%s)" name) (decide_mkdir p name)

let create_prog p dir name =
  run_op p (Printf.sprintf "fs_create(%s/%s)" dir name) (decide_create p dir name)

let append_prog p dir name data =
  run_op p (Printf.sprintf "fs_append(%s/%s,%S)" dir name data) (decide_append p dir name data)

let read_prog p dir name =
  run_op p (Printf.sprintf "fs_read(%s/%s)" dir name) (decide_read p dir name)

let readdir_prog p dir = run_op p (Printf.sprintf "fs_readdir(%s)" dir) (decide_readdir p dir)

let unlink_prog p dir name =
  run_op p (Printf.sprintf "fs_unlink(%s/%s)" dir name) (decide_unlink p dir name)

let rename_prog p ~src:(sd, sn) ~dst:(dd, dn) =
  run_op p
    (Printf.sprintf "fs_rename(%s/%s,%s/%s)" sd sn dd dn)
    (decide_rename p ~replace:true ~src:(sd, sn) ~dst:(dd, dn))

let rename_nr_prog p ~src:(sd, sn) ~dst:(dd, dn) =
  run_op p
    (Printf.sprintf "fs_rename_nr(%s/%s,%s/%s)" sd sn dd dn)
    (decide_rename p ~replace:false ~src:(sd, sn) ~dst:(dd, dn))

let fsync_prog p dir name =
  run_op p (Printf.sprintf "fs_fsync(%s/%s)" dir name) (decide_fsync p dir name)

let create_ft_prog ?retries p dir name =
  run_op_ft p ?retries
    (Printf.sprintf "fs_create_ft(%s/%s)" dir name)
    (decide_create p dir name)

let append_ft_prog ?retries p dir name data =
  run_op_ft p ?retries
    (Printf.sprintf "fs_append_ft(%s/%s,%S)" dir name data)
    (decide_append p dir name data)

let recover p : (world, V.t) P.t =
  Txn.recover_prog ~backend:p.backend ~get_disk ~set_disk (Layout.journal p.lay)

(* ------------------------------------------------------------------ *)
(* Specification: the atomic Gfs.Fs transition system                   *)
(* ------------------------------------------------------------------ *)

let close_or st fd = match Gfs.Fs.close st fd with Some s -> s | None -> st

let spec_init p ~dirs ~files : Gfs.Fs.t =
  let st = Gfs.Fs.init ~durability:p.durability dirs in
  List.fold_left
    (fun st (dir, name, contents) ->
      match Gfs.Fs.create st dir name with
      | None -> invalid_arg "Fs.spec_init: duplicate seed file"
      | Some (st, fd) ->
        let st = if contents = "" then st else Option.value ~default:st (Gfs.Fs.append st fd contents) in
        let st = Option.value ~default:st (Gfs.Fs.fsync st fd) in
        close_or st fd)
    st files

let spec p ~dirs ~files : Gfs.Fs.t Spec.t =
  let open T.Syntax in
  let err_or v = T.choose [ v; Fault.err_value ] in
  {
    Spec.name = "fs";
    init = spec_init p ~dirs ~files;
    compare_state = Gfs.Fs.compare;
    pp_state = Gfs.Fs.pp;
    step =
      (fun op args ->
        match op, args with
        | "fs_mkdir", [ V.Str n ] ->
          let* st = T.reads in
          if not (Dirent.valid_name n) then T.ret (V.bool false)
          else (
            match Gfs.Fs.mkdir st n with
            | None -> T.ret (V.bool false)
            | Some st' ->
              let* () = T.puts st' in
              T.ret (V.bool true))
        | "fs_create", [ V.Str d; V.Str n ] ->
          let* st = T.reads in
          if not (Dirent.valid_name n) || not (Gfs.Fs.has_dir st d) then T.ret (V.bool false)
          else (
            match Gfs.Fs.create st d n with
            | None -> T.ret (V.bool false)
            | Some (st', fd) ->
              let* () = T.puts (close_or st' fd) in
              T.ret (V.bool true))
        | "fs_append", [ V.Str d; V.Str n; V.Str data ] ->
          let* st = T.reads in
          if not (Gfs.Fs.has_dir st d) then T.ret (V.bool false)
          else (
            match Gfs.Fs.lookup st d n with
            | None -> T.ret (V.bool false)
            | Some _ ->
              let cur = Option.value ~default:"" (Gfs.Fs.read_file st d n) in
              if String.length cur + String.length data > Layout.max_file_bytes p.lay then
                T.ret (V.bool false)
              else (
                match Gfs.Fs.append_path st d n data with
                | None -> T.ret (V.bool false)
                | Some st' ->
                  let* () = T.puts st' in
                  T.ret (V.bool true)))
        | "fs_read", [ V.Str d; V.Str n ] ->
          let* st = T.reads in
          if not (Gfs.Fs.has_dir st d) then T.ret (V.pair (V.str "") (V.bool false))
          else (
            match Gfs.Fs.read_file st d n with
            | None -> T.ret (V.pair (V.str "") (V.bool false))
            | Some c -> T.ret (V.pair (V.str c) (V.bool true)))
        | "fs_readdir", [ V.Str d ] ->
          let* st = T.reads in
          let names ns = V.list (List.map V.str ns) in
          if d = "/" then T.ret (V.pair (names (Gfs.Fs.dir_names st)) (V.bool true))
          else if Gfs.Fs.has_dir st d then T.ret (V.pair (names (Gfs.Fs.list_dir st d)) (V.bool true))
          else T.ret (V.pair (V.list []) (V.bool false))
        | "fs_unlink", [ V.Str d; V.Str n ] ->
          let* st = T.reads in
          if not (Gfs.Fs.has_dir st d) then T.ret (V.bool false)
          else (
            match Gfs.Fs.delete st d n with
            | None -> T.ret (V.bool false)
            | Some st' ->
              let* () = T.puts st' in
              T.ret (V.bool true))
        | "fs_rename", [ V.Str sd; V.Str sn; V.Str dd; V.Str dn ] ->
          let* st = T.reads in
          if
            not (Dirent.valid_name dn)
            || (not (Gfs.Fs.has_dir st sd))
            || not (Gfs.Fs.has_dir st dd)
          then T.ret (V.bool false)
          else (
            match Gfs.Fs.rename st ~src:(sd, sn) ~dst:(dd, dn) with
            | None -> T.ret (V.bool false)
            | Some st' ->
              let* () = T.puts st' in
              T.ret (V.bool true))
        | "fs_rename_nr", [ V.Str sd; V.Str sn; V.Str dd; V.Str dn ] ->
          let* st = T.reads in
          if
            not (Dirent.valid_name dn)
            || (not (Gfs.Fs.has_dir st sd))
            || not (Gfs.Fs.has_dir st dd)
          then T.ret (V.bool false)
          else if Gfs.Fs.lookup st sd sn = None then T.ret (V.bool false)
          else if Gfs.Fs.lookup st dd dn <> None then T.ret (V.bool false)
          else (
            match Gfs.Fs.rename st ~src:(sd, sn) ~dst:(dd, dn) with
            | None -> T.ret (V.bool false)
            | Some st' ->
              let* () = T.puts st' in
              T.ret (V.bool true))
        | "fs_fsync", [ V.Str d; V.Str n ] ->
          let* st = T.reads in
          if not (Gfs.Fs.has_dir st d) then T.ret (V.bool false)
          else (
            match Gfs.Fs.fsync_path st d n with
            | None -> T.ret (V.bool false)
            | Some st' ->
              let* () = T.puts st' in
              T.ret (V.bool true))
        (* Graceful-degradation arms: the op completes atomically with its
           normal result OR returns err_value with durable state untouched. *)
        | "fs_create_ft", [ V.Str d; V.Str n ] ->
          let* st = T.reads in
          if not (Dirent.valid_name n) || not (Gfs.Fs.has_dir st d) then
            let* r = err_or (V.bool false) in
            T.ret r
          else (
            match Gfs.Fs.create st d n with
            | None ->
              let* r = err_or (V.bool false) in
              T.ret r
            | Some (st', fd) ->
              let* ok = T.choose [ true; false ] in
              if ok then
                let* () = T.puts (close_or st' fd) in
                T.ret (V.bool true)
              else T.ret Fault.err_value)
        | "fs_append_ft", [ V.Str d; V.Str n; V.Str data ] ->
          let* st = T.reads in
          let fail () =
            let* r = err_or (V.bool false) in
            T.ret r
          in
          if not (Gfs.Fs.has_dir st d) then fail ()
          else (
            match Gfs.Fs.lookup st d n with
            | None -> fail ()
            | Some _ ->
              let cur = Option.value ~default:"" (Gfs.Fs.read_file st d n) in
              if String.length cur + String.length data > Layout.max_file_bytes p.lay then fail ()
              else (
                match Gfs.Fs.append_path st d n data with
                | None -> fail ()
                | Some st' ->
                  let* ok = T.choose [ true; false ] in
                  if ok then
                    let* () = T.puts st' in
                    T.ret (V.bool true)
                  else T.ret Fault.err_value))
        | _ -> invalid_arg "fs spec: unknown op");
    crash = T.modify Gfs.Fs.crash;
  }

(* ------------------------------------------------------------------ *)
(* Formatting: build the initial world through the same pure builders   *)
(* ------------------------------------------------------------------ *)

let init_world p ~dirs ~files : world =
  let ps = { p with durability = `Sync } in
  let d0 =
    Disk.Single_disk.set
      (Disk.Single_disk.init (Layout.disk_size p.lay))
      (Layout.inode_addr p.lay Layout.root_ino)
      (Inode.to_block Inode.dir)
  in
  let w0 = { disk = d0; cache = IMap.empty; locks = Disk.Locks.empty } in
  let step w = function
    | Plan { txn; ret = V.Bool true; _ } -> { w with disk = apply_writes w.disk txn }
    | _ -> invalid_arg "Fs.init_world: seed layout rejected (capacity or duplicate)"
  in
  let w = List.fold_left (fun w dir -> step w (decide_mkdir ps dir w)) w0 dirs in
  List.fold_left
    (fun w (dir, name, contents) ->
      let w = step w (decide_create ps dir name w) in
      if contents = "" then w else step w (decide_append ps dir name contents w))
    w files

(* ------------------------------------------------------------------ *)
(* Calls and checker configuration                                      *)
(* ------------------------------------------------------------------ *)

let mkdir_call p name = (Spec.call "fs_mkdir" [ V.str name ], mkdir_prog p name)
let create_call p dir name = (Spec.call "fs_create" [ V.str dir; V.str name ], create_prog p dir name)

let append_call p dir name data =
  (Spec.call "fs_append" [ V.str dir; V.str name; V.str data ], append_prog p dir name data)

let read_call p dir name = (Spec.call "fs_read" [ V.str dir; V.str name ], read_prog p dir name)
let readdir_call p dir = (Spec.call "fs_readdir" [ V.str dir ], readdir_prog p dir)
let unlink_call p dir name = (Spec.call "fs_unlink" [ V.str dir; V.str name ], unlink_prog p dir name)

let rename_call p ~src:(sd, sn) ~dst:(dd, dn) =
  ( Spec.call "fs_rename" [ V.str sd; V.str sn; V.str dd; V.str dn ],
    rename_prog p ~src:(sd, sn) ~dst:(dd, dn) )

let rename_nr_call p ~src:(sd, sn) ~dst:(dd, dn) =
  ( Spec.call "fs_rename_nr" [ V.str sd; V.str sn; V.str dd; V.str dn ],
    rename_nr_prog p ~src:(sd, sn) ~dst:(dd, dn) )

let fsync_call p dir name = (Spec.call "fs_fsync" [ V.str dir; V.str name ], fsync_prog p dir name)

let create_ft_call ?retries p dir name =
  (Spec.call "fs_create_ft" [ V.str dir; V.str name ], create_ft_prog ?retries p dir name)

let append_ft_call ?retries p dir name data =
  ( Spec.call "fs_append_ft" [ V.str dir; V.str name; V.str data ],
    append_ft_prog ?retries p dir name data )

(** Post-crash probes: list every directory and read every named file. *)
let probe p ~dirs ~files =
  (readdir_call p "/" :: List.map (fun d -> readdir_call p d) dirs)
  @ List.map (fun (d, n) -> read_call p d n) files

let checker_config p ~dirs ~files ?post ?(max_crashes = 1) ?(fault_budget = 0) ?step_budget
    threads : (world, Gfs.Fs.t) Perennial_core.Refinement.config =
  let post =
    match post with
    | Some post -> post
    | None -> probe p ~dirs ~files:(List.map (fun (d, n, _) -> (d, n)) files)
  in
  Perennial_core.Refinement.config ~spec:(spec p ~dirs ~files)
    ~init_world:(init_world p ~dirs ~files) ~crash_world ~pp_world ~threads ~recovery:(recover p)
    ~post ~max_crashes ~fault_budget ?step_budget ()

(* ------------------------------------------------------------------ *)
(* Seeded bugs                                                          *)
(* ------------------------------------------------------------------ *)

module Buggy = struct
  (** Allocator double-free across a crash: the freed bits are written
      straight to the bitmap block — outside the journal — before the
      unlink transaction commits.  A crash in between leaves blocks both
      free (per the bitmap) and referenced (per the directory); the next
      allocation hands them out again and overwrites live file data.
      Expose with post probes that create-and-append after recovery, then
      read the original file. *)
  let unlink_free_first p dir name : (world, V.t) P.t =
    let label = Printf.sprintf "fs_unlink(%s/%s)" dir name in
    let* () = lock () in
    let* plan = P.read ~fp:(decide_fp p) label (decide_unlink p dir name) in
    match plan with
    | No_space msg -> P.ub msg
    | Plan { txn; cache; ret } ->
      let bm_addr = Layout.bitmap_addr p.lay in
      let bm, rest = List.partition (fun (a, _) -> a = bm_addr) txn in
      (* BUG: non-journaled free *)
      let* () =
        P.seq (List.map (fun (a, b) -> Disk.Single_disk.write ~get_disk ~set_disk a b) bm)
      in
      let* () = commit p rest in
      let* () =
        match cache with
        | None -> P.return ()
        | Some c -> cache_step ("fs_cache(" ^ label ^ ")") c
      in
      let* () = unlock () in
      P.return ret

  let unlink_call_free_first p dir name =
    (Spec.call "fs_unlink" [ V.str dir; V.str name ], unlink_free_first p dir name)

  (** Rename as TWO journal transactions — unlink the displaced target
      first, then move the source.  Each transaction is atomic, but a
      crash between them has deleted the target without installing the
      new name: the composite is not. *)
  let rename_two_txns p ~src:(sd, sn) ~dst:(dd, dn) : (world, V.t) P.t =
    let label = Printf.sprintf "fs_rename(%s/%s,%s/%s)" sd sn dd dn in
    let* () = lock () in
    let* plans =
      P.read ~fp:(decide_fp p) label (fun w ->
          let d = w.disk in
          let target =
            match resolve_dir p d sd, resolve_dir p d dd with
            | Some sdi, Some ddi when List.assoc_opt sn (dir_entries_at p d sdi) <> None
                                      && not (sd = dd && sn = dn) -> (
              match List.assoc_opt dn (dir_entries_at p d ddi) with
              | Some tino -> Some (ddi, tino)
              | None -> None)
            | _ -> None
          in
          match target with
          | None -> [ decide_rename p ~replace:true ~src:(sd, sn) ~dst:(dd, dn) w ]
          | Some (ddi, tino) -> (
            let dentries = dir_entries_at p d ddi in
            let t = txn_begin p d in
            let t = txn_clear_inode p (txn_free p t (ptrs_of p d tino)) tino in
            match rewrite_dir p t ddi ~old_ptrs:(ptrs_of p d ddi) (List.remove_assoc dn dentries) with
            | None -> [ no_blocks ]
            | Some t ->
              let txn1 = txn_entries p t in
              let plan1 = Plan { txn = txn1; cache = Some (tino, ""); ret = V.bool true } in
              let w1 = { w with disk = apply_writes d txn1 } in
              [ plan1; decide_rename p ~replace:true ~src:(sd, sn) ~dst:(dd, dn) w1 ]))
    in
    let rec commit_all = function
      | [] -> finish p label ret_false
      | [ last ] -> finish p label last
      | plan :: rest -> (
        match plan with
        | No_space msg -> P.ub msg
        | Plan { txn; cache; _ } ->
          let* () = commit p txn in
          let* () =
            match cache with
            | None -> P.return ()
            | Some c -> cache_step ("fs_cache(" ^ label ^ ")") c
          in
          commit_all rest)
    in
    commit_all plans

  let rename_call_two_txns p ~src ~dst =
    let sd, sn = src and dd, dn = dst in
    ( Spec.call "fs_rename" [ V.str sd; V.str sn; V.str dd; V.str dn ],
      rename_two_txns p ~src ~dst )
end
