(* A '0'/'1' character per data block; the whole map fits one disk block
   on the tiny instances the checker explores. *)

type t = string

let create n = String.make n '0'
let size = String.length
let in_bounds t i = i >= 0 && i < String.length t
let mem t i = in_bounds t i && t.[i] = '1'

let put t i c =
  let b = Bytes.of_string t in
  Bytes.set b i c;
  Bytes.to_string b

let set t i = if in_bounds t i then put t i '1' else t
let clear t i = if in_bounds t i then put t i '0' else t
let free_count t = String.fold_left (fun n c -> if c = '0' then n + 1 else n) 0 t

let used t =
  List.filter (mem t) (List.init (String.length t) Fun.id)

let alloc t =
  let rec find i =
    if i >= String.length t then None
    else if t.[i] = '0' then Some (put t i '1', i)
    else find (i + 1)
  in
  find 0

let alloc_n t n =
  let rec go t acc n =
    if n = 0 then Some (t, List.rev acc)
    else
      match alloc t with
      | None -> None
      | Some (t, i) -> go t (i :: acc) (n - 1)
  in
  go t [] n

let clear_all t is = List.fold_left clear t is
let equal = String.equal
let to_block t = Disk.Block.of_string t

let valid n s =
  String.length s = n && String.for_all (fun c -> c = '0' || c = '1') s

let of_block ~n b =
  let s = Disk.Block.to_string b in
  if valid n s then s else create n

let pp ppf t = Fmt.string ppf t
