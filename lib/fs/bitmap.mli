(** The data-block allocation bitmap: one ['0'] (free) / ['1'] (used)
    character per block, marshalled to and from the single disk block at
    {!Layout.bitmap_addr}.

    Allocation is first-fit and pure, so equal file-system histories
    produce byte-identical disks — which is what lets the checker's
    state-dedup collapse equivalent branches. *)

type t

val create : int -> t
(** All [n] blocks free. *)

val size : t -> int
val in_bounds : t -> int -> bool

val mem : t -> int -> bool
(** Is block [i] allocated?  Out of bounds is simply [false]. *)

val set : t -> int -> t
val clear : t -> int -> t
val clear_all : t -> int list -> t

val alloc : t -> (t * int) option
(** First-fit: lowest free index, or [None] when full. *)

val alloc_n : t -> int -> (t * int list) option
(** [n] fresh blocks, in ascending order; [None] if fewer are free. *)

val used : t -> int list
val free_count : t -> int
val equal : t -> t -> bool

val to_block : t -> Disk.Block.t

val of_block : n:int -> Disk.Block.t -> t
(** Inverse of {!to_block}; any non-bitmap content — in particular the
    [Block.zero] of a freshly formatted disk — reads as all-free. *)

val pp : t Fmt.t
