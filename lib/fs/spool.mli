(** Mailboat's mail spool re-hosted on the inode file system {!Fs} — the
    paper's flagship application running on a {e real} (small) file
    system instead of the abstract {!Gfs.Fs} world.

    The protocol is the Maildir idiom, unchanged from {!Mailboat.Core}:
    deliver writes [spool/tmp-<id>] in chunks and publishes it into
    [user<u>/] — but where the Gfs-backed original needs a link then a
    separate spool unlink (two steps, recovery cleans the overlap), here
    the publish is {!Fs.rename_nr_prog}: ONE journal transaction that
    atomically installs the mailbox name and removes the spool entry.
    Pickup and delete run under a per-user lock ({!user_lock}, ids [1+u]
    so they never collide with {!Fs.fs_lock}).  Recovery replays the
    journal, then unspools leftover temporaries.

    Checked against the unchanged {!Mailboat.Core.spec} — the abstract
    mailbox map with crash-durable delivered mail — so the whole stack
    spool → fs → journal → disk refines one atomic spec. *)

val user_lock : int -> int

val params :
  ?durability:Gfs.Fs.durability ->
  ?backend:Journal.Txn_log.backend ->
  ?users:int ->
  ?msg_blocks:int ->
  unit ->
  Fs.params
(** A layout sized so the checker never hits resource exhaustion:
    [users] mailboxes (default 1) and headroom for [msg_blocks] (default
    2) data blocks per in-flight message. *)

val init_world : Fs.params -> users:int -> Fs.world
(** Fresh file system with the spool and per-user mailbox directories. *)

val chunk_size : int
(** Bytes per append while spooling — {!Mailboat.Core.chunk_size}. *)

(** {1 Programs} *)

val deliver_prog : Fs.params -> int -> string -> (Fs.world, Tslang.Value.t) Sched.Prog.t
(** Create [spool/tmp-id], write the message in chunks, [fsync] it, then
    rename (no-replace) into the mailbox.  Random-ID draws retry in
    rounds over the finite universe, exactly like
    {!Mailboat.Core.deliver_prog}. *)

val deliver_nofsync_prog : Fs.params -> int -> string -> (Fs.world, Tslang.Value.t) Sched.Prog.t
(** The seeded "missing fsync before the directory commit" bug: under
    [`Deferred] durability the message bytes are still volatile when the
    rename publishes the mailbox name, so a crash right after the commit
    leaves a truncated (typically empty) message that the Mailboat spec —
    whose delivered mail survives crashes — cannot explain.  Harmless
    under [`Sync]. *)

val pickup_prog : Fs.params -> int -> (Fs.world, Tslang.Value.t) Sched.Prog.t
(** Under the user lock (NOT released — delete may follow): list the
    mailbox and read every message; returns a list of (id, contents)
    pairs. *)

val delete_prog : Fs.params -> int -> string -> (Fs.world, Tslang.Value.t) Sched.Prog.t
(** Unlink one picked-up message; caller holds the user lock. *)

val unlock_prog : int -> (Fs.world, Tslang.Value.t) Sched.Prog.t

val recover_prog : Fs.params -> (Fs.world, Tslang.Value.t) Sched.Prog.t
(** Replay the journal (completing any committed file-system
    transaction), then unspool leftover temporaries. *)

(** {1 Calls and checker configuration} *)

val deliver_call :
  Fs.params -> int -> string -> Tslang.Spec.call * (Fs.world, Tslang.Value.t) Sched.Prog.t

val deliver_nofsync_call :
  Fs.params -> int -> string -> Tslang.Spec.call * (Fs.world, Tslang.Value.t) Sched.Prog.t

val pickup_call : Fs.params -> int -> Tslang.Spec.call * (Fs.world, Tslang.Value.t) Sched.Prog.t

val delete_call :
  Fs.params -> int -> string -> Tslang.Spec.call * (Fs.world, Tslang.Value.t) Sched.Prog.t

val unlock_call : int -> Tslang.Spec.call * (Fs.world, Tslang.Value.t) Sched.Prog.t

val session_calls :
  Fs.params -> int -> (Tslang.Spec.call * (Fs.world, Tslang.Value.t) Sched.Prog.t) list
(** Pickup then unlock — the post-crash probe for one user. *)

val checker_config :
  Fs.params ->
  ?users:int ->
  ?max_crashes:int ->
  ?fault_budget:int ->
  ?step_budget:int ->
  (Tslang.Spec.call * (Fs.world, Tslang.Value.t) Sched.Prog.t) list list ->
  (Fs.world, Mailboat.Core.state) Perennial_core.Refinement.config
(** Refinement of the fs-backed spool against the unchanged
    {!Mailboat.Core.spec}. *)
