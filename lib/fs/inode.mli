(** Fixed-size inodes, one per block of the inode table: a kind, a byte
    length, and direct block pointers — the dafny-jrnl shape, with the
    marshalled form kept printable for readable counterexample traces.

    For a [File], [len] counts durable bytes and [ptrs] lists the data
    blocks carrying them in order.  For a [Dir], [len] counts directory
    entries and [ptrs] lists the blocks of packed {!Dirent} groups.  A
    free inode-table slot holds [Block.zero]. *)

type kind = File | Dir

type t = { kind : kind; len : int; ptrs : int list }

val file : t
(** A fresh empty file: [len = 0], no blocks. *)

val dir : t
(** A fresh empty directory. *)

val v : kind:kind -> len:int -> ptrs:int list -> t
val equal : t -> t -> bool

val to_block : t -> Disk.Block.t
(** ["F|3|5,6"]: kind, length, comma-separated pointers. *)

val of_block : Disk.Block.t -> t option
(** [None] on a free slot or unparseable content. *)

val free : Disk.Block.t
(** The free-slot marker ([Block.zero]). *)

val is_free : Disk.Block.t -> bool
val pp : t Fmt.t
