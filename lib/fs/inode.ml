module Block = Disk.Block

type kind = File | Dir

type t = { kind : kind; len : int; ptrs : int list }

let file = { kind = File; len = 0; ptrs = [] }
let dir = { kind = Dir; len = 0; ptrs = [] }
let v ~kind ~len ~ptrs = { kind; len; ptrs }

let equal a b = a.kind = b.kind && a.len = b.len && a.ptrs = b.ptrs

let kind_char = function File -> 'F' | Dir -> 'D'

let to_block { kind; len; ptrs } =
  Block.of_string
    (Printf.sprintf "%c|%d|%s" (kind_char kind) len
       (String.concat "," (List.map string_of_int ptrs)))

let free = Block.zero
let is_free b = Block.equal b Block.zero

let of_block b =
  match String.split_on_char '|' (Block.to_string b) with
  | [ k; len; ptrs ] ->
    let kind = match k with "F" -> Some File | "D" -> Some Dir | _ -> None in
    let len = int_of_string_opt len in
    let ptrs =
      if ptrs = "" then Some []
      else
        let ps = List.map int_of_string_opt (String.split_on_char ',' ptrs) in
        if List.for_all Option.is_some ps then Some (List.filter_map Fun.id ps)
        else None
    in
    (match kind, len, ptrs with
    | Some kind, Some len, Some ptrs when len >= 0 -> Some { kind; len; ptrs }
    | _ -> None)
  | _ -> None

let pp ppf i =
  Fmt.pf ppf "%c(len=%d,ptrs=[%a])" (kind_char i.kind) i.len
    (Fmt.list ~sep:Fmt.comma Fmt.int) i.ptrs
