(** A leased, sharded KV service over an unreliable network, verified
    against an atomic map spec.

    Architecture (one world, many nodes — every node boundary is a
    {!Sched.Net} channel):

    - [n_clients] clients issue [put]/[get]/[inc] RPCs.  Key [k] lives on
      shard [k mod n_shards]; shard [s] serves requests from channel
      ["s<s>"], client [c] takes replies on channel ["c<c>"].
    - Each shard runs a single server loop: receive, classify against the
      per-client reply cache (exactly-once: duplicates are answered from
      the cache, stale duplicates dropped), execute, cache, reply.
    - A lock/lease service with epoch numbers guards read-modify-write
      ops: a holder fences every shard it touches with its epoch at
      acquire time (lease {e recovery}), shards remember the highest
      fencing epoch and reject writes from anything older — a zombie
      holder whose lease expired cannot corrupt state it no longer owns.

    The network adversary (loss, duplication, reordering, delay) rides the
    fault-schedule machinery, so checking composes network schedules with
    crash points and interleavings; clients whose retry budget the
    adversary exhausts degrade to {!Sched.Fault.err_value}, matching the
    spec's degradation arms.

    Harness conventions (not part of the protocol): each client thread
    ends with a [bye] step bumping a volatile done-counter, and the server
    loop shuts down once every client is done AND its channel is drained —
    termination signalling the checker can see through, with no idle
    polling.  The reply cache and store are durable (crash-safe
    exactly-once); channels and the lease holder are volatile; recovery
    runs over a reliable network (the adversary fires only in the main
    phase), mirroring the reliable-recovery fault assumption. *)

module V = Tslang.Value
module T = Tslang.Transition
module Spec = Tslang.Spec
module P = Sched.Prog
module Fp = Sched.Footprint
module Net = Sched.Net
module Fault = Sched.Fault
open P.Syntax

type params = {
  n_keys : int;
  n_shards : int;
  n_clients : int;
  retries : int;  (** client resends after the first attempt *)
  init_val : V.t;  (** initial value of every key *)
}

let params ?(n_shards = 1) ?(retries = 1) ?(init_val = V.int 0) ~n_keys ~n_clients () =
  if n_keys <= 0 || n_shards <= 0 || n_shards > n_keys || n_clients <= 0 || retries < 0
  then invalid_arg "Shard_kv.params";
  { n_keys; n_shards; n_clients; retries; init_val }

let shard_of p k = k mod p.n_shards
let req_chan s = "s" ^ string_of_int s
let reply_chan c = "c" ^ string_of_int c

(* ------------------------------------------------------------------ *)
(* Specification: an atomic map                                        *)
(* ------------------------------------------------------------------ *)

type state = V.t list  (** one value per key *)

let sput k v st = List.mapi (fun i x -> if i = k then v else x) st

(** Every network-facing op has three arms: applied and acknowledged;
    applied with the acknowledgement lost (the client reports
    {!Sched.Fault.err_value} but the effect is durable — a client cannot
    tell a lost request from a lost reply, so "gave up" never promises
    "didn't happen"); never delivered.  Lease ops ([linc]) run directly
    against the shards, so they have no applied-unacked arm: a fenced or
    lease-less holder reports degraded with no effect. *)
let spec p : state Spec.t =
  let open T.Syntax in
  let in_bounds k = k >= 0 && k < p.n_keys in
  let err = Sched.Fault.err_value in
  let key args = match args with k :: _ -> V.get_int k | [] -> -1 in
  {
    Spec.name = "shard_kv";
    init = List.init p.n_keys (fun _ -> p.init_val);
    compare_state = List.compare V.compare;
    pp_state =
      (fun ppf st -> Fmt.pf ppf "[%a]" (Fmt.list ~sep:Fmt.semi V.pp) st);
    step =
      (fun op args ->
        match (op, args) with
        | "probe", [ k ] ->
          let k = V.get_int k in
          let* () = T.check (in_bounds k) in
          let* st = T.reads in
          T.ret (List.nth st k)
        | "nput", [ _; v ] ->
          let k = key args in
          let* () = T.check (in_bounds k) in
          let* arm = T.choose [ `Acked; `Applied_unacked; `Lost ] in
          (match arm with
          | `Acked ->
            let* () = T.modify (sput k v) in
            T.ret V.unit
          | `Applied_unacked ->
            let* () = T.modify (sput k v) in
            T.ret err
          | `Lost -> T.ret err)
        | "nget", [ k ] ->
          let k = V.get_int k in
          let* () = T.check (in_bounds k) in
          let* st = T.reads in
          let* r = T.choose [ List.nth st k; err ] in
          T.ret r
        | "ninc", [ k ] ->
          let k = V.get_int k in
          let* () = T.check (in_bounds k) in
          let* st = T.reads in
          let old = List.nth st k in
          let* arm = T.choose [ `Acked; `Applied_unacked; `Lost ] in
          (match arm with
          | `Acked ->
            let* () = T.modify (sput k (V.int (V.get_int old + 1))) in
            T.ret old
          | `Applied_unacked ->
            let* () = T.modify (sput k (V.int (V.get_int old + 1))) in
            T.ret err
          | `Lost -> T.ret err)
        | "linc", [ k ] ->
          let k = V.get_int k in
          let* () = T.check (in_bounds k) in
          let* st = T.reads in
          let old = List.nth st k in
          let* ok = T.choose [ true; false ] in
          if ok then
            let* () = T.modify (sput k (V.int (V.get_int old + 1))) in
            T.ret old
          else T.ret err
        | "srv", [] | "bye", [] | "lease_expire", [] -> T.ret V.unit
        | _ -> invalid_arg "shard_kv spec: unknown op");
    (* Store and reply cache are durable: a crash changes nothing the
       client-visible map can see. *)
    crash = T.ret ();
  }

(* ------------------------------------------------------------------ *)
(* World                                                               *)
(* ------------------------------------------------------------------ *)

type world = {
  net : Net.state;  (** volatile: in-flight messages die with a crash *)
  vals : V.t list;  (** durable: per-key value *)
  fences : int list;  (** durable: per-shard highest fencing epoch *)
  caches : Rpc.cache list;  (** durable: per-shard reply cache *)
  lease : Lease.t;  (** volatile holder, durable epoch *)
  done_clients : int;  (** volatile harness signal: clients finished *)
}

let init_world p =
  {
    net = Net.empty;
    vals = List.init p.n_keys (fun _ -> p.init_val);
    fences = List.init p.n_shards (fun _ -> 0);
    caches = List.init p.n_shards (fun _ -> Rpc.cache_empty);
    lease = Lease.init;
    done_clients = 0;
  }

let crash_world w =
  { w with net = Net.clear w.net; lease = Lease.crash w.lease; done_clients = 0 }

let pp_world ppf w =
  Fmt.pf ppf "net=%a vals=[%a] fences=[%a] caches=[%a] %a done=%d" Net.pp w.net
    (Fmt.list ~sep:Fmt.semi V.pp) w.vals
    (Fmt.list ~sep:Fmt.semi Fmt.int)
    w.fences
    (Fmt.list ~sep:Fmt.semi Rpc.pp_cache)
    w.caches Lease.pp w.lease w.done_clients

let get_net w = w.net
let set_net w net = { w with net }
let upd i f l = List.mapi (fun j x -> if j = i then f x else x) l

(* Footprint locations.  The lease epoch and the fences survive crashes,
   so their writes are durable (dependent with crash injection). *)
let key_loc k = Fp.disk ~region:"kv" k
let fence_loc s = Fp.disk ~region:"fence" s
let cache_loc s = Fp.disk ~region:"cache" s
let lease_loc = Fp.disk ~region:"lease" 0
let done_loc = Fp.cell "done"

(* ------------------------------------------------------------------ *)
(* Shard server                                                        *)
(* ------------------------------------------------------------------ *)

(** Local execution of a decoded request on shard [s]'s slice of the
    store.  Returns the reply payload. *)
let exec_req r w =
  match (r.Rpc.op, r.Rpc.args) with
  | "put", [ V.Int k; v ] -> ({ w with vals = sput k v w.vals }, V.unit)
  | "get", [ V.Int k ] -> (w, List.nth w.vals k)
  | "inc", [ V.Int k ] ->
    let old = List.nth w.vals k in
    ({ w with vals = sput k (V.int (V.get_int old + 1)) w.vals }, old)
  | _ -> (w, V.str "bad_op")

let exec_fp s r _w =
  let k = match r.Rpc.args with V.Int k :: _ -> k | _ -> 0 in
  Fp.rw
    ~reads:[ key_loc k; cache_loc s ]
    ~writes:[ key_loc k; cache_loc s ]
    ()

(** The server loop for shard [s].  [~no_cache:true] is seeded bug 1: the
    reply cache is never consulted or written, so a duplicated request
    re-executes — double execution the atomic spec cannot explain (visible
    on the non-idempotent [inc]).

    One request costs three scheduler steps (receive, classify+execute,
    reply) plus a pure ["rpc_cache_hit(s<s>)"] marker when a duplicate is
    answered from the cache — the label convention behind the checker's
    [cache_hits] stat.  Classification and execution share one atomic
    step: a real server orders them under a per-client latch; here a shard
    is served by a single loop, so the step is atomic by construction (and
    the hosted variant makes it a single journal transaction). *)
let serve ?(no_cache = false) p s : (world, V.t) P.t =
  let sn = string_of_int s in
  let rc = req_chan s in
  let until w = w.done_clients >= p.n_clients in
  let rec loop fuel : (world, V.t) P.t =
    if fuel <= 0 then P.return V.unit
    else
      let* m = Net.recv_until ~get:get_net ~set:set_net ~until ~until_reads:[ done_loc ] rc in
      match m with
      | None -> P.return V.unit
      | Some msg -> (
        match Rpc.decode_req msg with
        | None -> loop (fuel - 1)
        | Some r ->
          let* reply =
            P.atomic ~fp:(exec_fp s r)
              ("rpc_exec(s" ^ sn ^ ")")
              (fun w ->
                let verdict =
                  if no_cache then Rpc.Fresh
                  else Rpc.classify r.Rpc.client ~seq:r.Rpc.seq (List.nth w.caches s)
                in
                match verdict with
                | Rpc.Hit cached -> P.Steps [ (w, `Hit cached) ]
                | Rpc.Stale -> P.Steps [ (w, `Stale) ]
                | Rpc.Fresh ->
                  let w', reply = exec_req r w in
                  let w' =
                    if no_cache || r.Rpc.seq < 0 then w'
                    else
                      {
                        w' with
                        caches =
                          upd s (Rpc.cache_store r.Rpc.client ~seq:r.Rpc.seq ~reply) w'.caches;
                      }
                  in
                  P.Steps [ (w', `Reply reply) ])
          in
          (match reply with
          | `Stale -> loop (fuel - 1) (* an older duplicate: drop silently *)
          | `Hit cached ->
            let* () =
              P.read ~fp:(Fp.const Fp.pure) ("rpc_cache_hit(s" ^ sn ^ ")") (fun _ -> ())
            in
            let* () =
              Net.send_step ~get:get_net ~set:set_net (reply_chan r.Rpc.client)
                (Rpc.encode_reply ~seq:r.Rpc.seq cached)
            in
            loop (fuel - 1)
          | `Reply reply ->
            let* () =
              Net.send_step ~get:get_net ~set:set_net (reply_chan r.Rpc.client)
                (Rpc.encode_reply ~seq:r.Rpc.seq reply)
            in
            loop (fuel - 1)))
  in
  (* Fuel bounds the constructed program tree; any execution delivers at
     most (sends + dup budget) messages, far below this. *)
  loop 64

(* ------------------------------------------------------------------ *)
(* Client calls                                                        *)
(* ------------------------------------------------------------------ *)

let rpc_call ?send_seq p ~client ~seq op k args =
  Rpc.call ~get:get_net ~set:set_net ~retries:p.retries ?send_seq
    ~req_chan:(req_chan (shard_of p k))
    ~reply_chan:(reply_chan client) ~client ~seq op args

let nput_call p ~client ~seq k v =
  (Spec.call "nput" [ V.int k; v ], rpc_call p ~client ~seq "put" k [ V.int k; v ])

let nget_call p ~client ~seq k =
  (Spec.call "nget" [ V.int k ], rpc_call p ~client ~seq "get" k [ V.int k ])

let ninc_call p ~client ~seq k =
  (Spec.call "ninc" [ V.int k ], rpc_call p ~client ~seq "inc" k [ V.int k ])

let srv_call p s = (Spec.call "srv" [], serve p s)

(** The harness-level end-of-client marker the server shutdown predicate
    reads — reliable (not a message), identity in the spec. *)
let bye_call =
  ( Spec.call "bye" [],
    P.det
      ~fp:(Fp.const (Fp.rw ~reads:[ done_loc ] ~writes:[ done_loc ] ()))
      "client_bye"
      (fun w -> ({ w with done_clients = w.done_clients + 1 }, V.unit)) )

(* ------------------------------------------------------------------ *)
(* Lease-guarded read-modify-write                                     *)
(* ------------------------------------------------------------------ *)

let lease_fp = Fp.const (Fp.rw ~reads:[ lease_loc ] ~writes:[ lease_loc ] ())

let try_acquire_step client =
  P.atomic ~fp:lease_fp
    ("lease_acquire(c" ^ string_of_int client ^ ")")
    (fun w ->
      match Lease.acquire client w.lease with
      | None -> P.Steps [ (w, None) ]
      | Some (e, lease) -> P.Steps [ ({ w with lease }, Some e) ])

let acquire_retry p client : (world, int option) P.t =
  let rec go n =
    let* r = try_acquire_step client in
    match r with
    | Some e -> P.return (Some e)
    | None ->
      if n >= p.retries then P.return None
      else
        let* () =
          P.read ~fp:(Fp.const Fp.pure)
            (Printf.sprintf "retry_acquire(c%d#%d)" client (n + 1))
            (fun _ -> ())
        in
        go (n + 1)
  in
  go 0

let fence_step s e =
  P.write
    ~fp:(Fp.const (Fp.rw ~reads:[ fence_loc s ] ~writes:[ fence_loc s ] ()))
    (Printf.sprintf "lease_fence(s%d)" s)
    (fun w -> { w with fences = upd s (max e) w.fences })

let release_step client e =
  P.write ~fp:lease_fp
    ("lease_release(c" ^ string_of_int client ^ ")")
    (fun w -> { w with lease = Lease.release client e w.lease })

let expire_call =
  ( Spec.call "lease_expire" [],
    P.det ~fp:lease_fp "lease_expire" (fun w ->
        ({ w with lease = Lease.expire w.lease }, V.unit)) )

(** Read-modify-write increment under the lease.  The holder fences its
    shard with its epoch right after acquiring (lease RECOVERY: any older
    holder's pending writes are fenced out before we read), then reads,
    then writes — the write step re-checks the fence, so a zombie whose
    lease expired and was re-fenced cannot apply a stale update.

    [~fence:false] is seeded bug 3: no fence at acquire, no check at
    write.  A zombie holder then applies a lost update (two [linc]s both
    return the same old value) — the atomic spec has no explanation. *)
let linc_prog ?(fence = true) p ~client k : (world, V.t) P.t =
  let s = shard_of p k in
  let* e = acquire_retry p client in
  match e with
  | None -> P.return Fault.err_value
  | Some e ->
    let* () = if fence then fence_step s e else P.return () in
    let* v =
      P.read
        ~fp:(Fp.const (Fp.reads [ key_loc k ]))
        (Printf.sprintf "lease_read(k%d)" k)
        (fun w -> List.nth w.vals k)
    in
    let* ok =
      P.atomic
        ~fp:
          (Fp.const
             (Fp.rw
                ~reads:[ key_loc k; fence_loc s ]
                ~writes:[ key_loc k; fence_loc s ]
                ()))
        (Printf.sprintf "lease_write(k%d)" k)
        (fun w ->
          if (not fence) || e >= List.nth w.fences s then
            P.Steps
              [
                ( {
                    w with
                    vals = sput k (V.int (V.get_int v + 1)) w.vals;
                    fences = (if fence then upd s (max e) w.fences else w.fences);
                  },
                  true );
              ]
          else P.Steps [ (w, false) ])
    in
    if ok then
      let* () = release_step client e in
      P.return v
    else P.return Fault.err_value

let linc_call p ~client k = (Spec.call "linc" [ V.int k ], linc_prog p ~client k)

(* ------------------------------------------------------------------ *)
(* Probes, recovery, checker configuration                             *)
(* ------------------------------------------------------------------ *)

(** Post-crash probes read the store directly (the network died with the
    crash; recovery runs over a reliable network). *)
let probe_call p k =
  ignore p;
  ( Spec.call "probe" [ V.int k ],
    P.read
      ~fp:(Fp.const (Fp.reads [ key_loc k ]))
      (Printf.sprintf "probe(k%d)" k)
      (fun w -> List.nth w.vals k) )

let probe p = List.init p.n_keys (fun k -> probe_call p k)

(** Nothing to replay: store, caches, and fences are durable; the lease
    holder and the channels died with the crash. *)
let recover = P.return V.unit

let checker_config p ?spec:sp ?(max_crashes = 1) ?(fault_budget = 0) threads :
    (world, state) Perennial_core.Refinement.config =
  let sp = match sp with Some s -> s | None -> spec p in
  Perennial_core.Refinement.config ~spec:sp ~init_world:(init_world p) ~crash_world
    ~pp_world ~threads ~recovery:recover ~post:(probe p) ~max_crashes ~fault_budget ()

(* ------------------------------------------------------------------ *)
(* Seeded bugs                                                         *)
(* ------------------------------------------------------------------ *)

module Buggy = struct
  (** Bug 1 — reply-cache miss on duplicate request: the server executes
      every message it receives.  A [Dup]ed [inc] request executes twice;
      the spec linearizes the op once, so the probe sees an impossible
      count. *)
  let srv_call_no_cache p s = (Spec.call "srv" [], serve ~no_cache:true p s)

  (** Bug 2 — retry without a sequence number: the first attempt is
      labeled, every retry is raw ({!Rpc.no_seq}), so the server cannot
      recognize the retry as a duplicate and executes whatever arrives,
      whenever it arrives.  A delayed retry of an old [put], reordered
      behind a newer one, makes the stale write win after the client
      already observed the new one. *)
  let nput_call_raw_retry p ~client ~seq k v =
    ( Spec.call "nput" [ V.int k; v ],
      rpc_call
        ~send_seq:(fun ~attempt seq -> if attempt = 0 then seq else Rpc.no_seq)
        p ~client ~seq "put" k
        [ V.int k; v ] )

  (** Bug 3 — missing epoch fence: no fencing at acquire, no check at
      write.  A zombie holder (lease expired mid-RMW) applies its stale
      update over the new holder's — a lost update. *)
  let linc_call_no_fence p ~client k =
    (Spec.call "linc" [ V.int k ], linc_prog ~fence:false p ~client k)
end

(* ------------------------------------------------------------------ *)
(* Shards hosted on Journal.Kvs                                        *)
(* ------------------------------------------------------------------ *)

(** The production-shaped backend: every shard is its own
    {!Journal.Kvs} instance (its own journal, locks, and disk — a real
    shard node), embedded in the service world through {!Sched.Prog.lift}.
    Each shard's key space holds its slice of the data keys plus one
    reply-cache slot per client, so EXECUTE + CACHE is one journal
    transaction — the exactly-once state commits atomically with the data
    it guards, and survives crashes with it.  Values are block strings
    ({!Disk.Block}); use [init_val = V.str "0"] params. *)
module Hosted = struct
  module K = Journal.Kvs
  module Block = Disk.Block

  (** Data keys of shard [s]: global keys [k] with [k mod n_shards = s],
      locally indexed [k / n_shards]. *)
  let local_keys p s = (p.n_keys - s + p.n_shards - 1) / p.n_shards

  let local_of p k = k / p.n_shards
  let cache_slot p s c = local_keys p s + c
  let kparams p s = K.params ~n_keys:(local_keys p s + p.n_clients) ()

  type hworld = {
    net : Net.state;
    shards : K.world list;  (** one journal world per shard node *)
    done_clients : int;
  }

  let init_world p =
    {
      net = Net.empty;
      shards = List.init p.n_shards (fun s -> K.init_world (kparams p s));
      done_clients = 0;
    }

  let crash_world w =
    {
      net = Net.clear w.net;
      shards = List.map K.crash_world w.shards;
      done_clients = 0;
    }

  let pp_world ppf w =
    Fmt.pf ppf "net=%a shards=[%a] done=%d" Net.pp w.net
      (Fmt.list ~sep:Fmt.sp K.pp_world)
      w.shards w.done_clients

  let get_net w = w.net
  let set_net w net = { w with net }
  let get_shard s w = List.nth w.shards s
  let set_shard s w kv = { w with shards = upd s (fun _ -> kv) w.shards }

  (** Run a shard-local journal program inside the service world. *)
  let on_shard s prog = P.lift ~get:(get_shard s) ~set:(set_shard s) prog

  (* The reply-cache slot stores ["s:<seq>"] — distinguishable from the
     zero block, parsed back by [cached_seq]. *)
  let seq_block seq = Block.of_string ("s:" ^ string_of_int seq)

  let cached_seq v =
    match V.get_str v with
    | s when String.length s > 2 && String.sub s 0 2 = "s:" ->
      int_of_string_opt (String.sub s 2 (String.length s - 2))
    | _ -> None
    | exception Invalid_argument _ -> None

  (** The hosted server loop: classification reads the cache slot through
      the journal, execution commits data + cache slot in ONE transaction.
      Only [put] and [get] are served ([put] is idempotent per sequence
      number; [inc] needs the lease path, which the light store covers). *)
  let serve p s : (hworld, V.t) P.t =
    let sn = string_of_int s in
    let kp = kparams p s in
    let until w = w.done_clients >= p.n_clients in
    let reply_to r reply =
      Net.send_step ~get:get_net ~set:set_net (reply_chan r.Rpc.client)
        (Rpc.encode_reply ~seq:r.Rpc.seq reply)
    in
    let rec loop fuel : (hworld, V.t) P.t =
      if fuel <= 0 then P.return V.unit
      else
        let* m =
          Net.recv_until ~get:get_net ~set:set_net ~until ~until_reads:[ done_loc ]
            (req_chan s)
        in
        match m with
        | None -> P.return V.unit
        | Some msg -> (
          match Rpc.decode_req msg with
          | None -> loop (fuel - 1)
          | Some r -> (
            match (r.Rpc.op, r.Rpc.args) with
            | "get", [ V.Int k ] ->
              (* Gets are idempotent: no cache traffic. *)
              let* v = on_shard s (K.get_prog kp (local_of p k)) in
              let* () = reply_to r v in
              loop (fuel - 1)
            | "put", [ V.Int k; v ] when r.Rpc.seq >= 0 ->
              let* cached = on_shard s (K.get_prog kp (cache_slot p s r.Rpc.client)) in
              (match cached_seq cached with
              | Some s0 when r.Rpc.seq = s0 ->
                let* () =
                  P.read ~fp:(Fp.const Fp.pure) ("rpc_cache_hit(s" ^ sn ^ ")")
                    (fun _ -> ())
                in
                let* () = reply_to r V.unit in
                loop (fuel - 1)
              | Some s0 when r.Rpc.seq < s0 -> loop (fuel - 1)
              | _ ->
                (* Execute + cache in one journal transaction: the
                   exactly-once state commits atomically with the data. *)
                let* _ =
                  on_shard s
                    (K.txn_prog kp
                       [
                         (local_of p k, Block.of_value v);
                         (cache_slot p s r.Rpc.client, seq_block r.Rpc.seq);
                       ])
                in
                let* () = reply_to r V.unit in
                loop (fuel - 1))
            | _ -> loop (fuel - 1)))
    in
    loop 64

  let srv_call p s = (Spec.call "srv" [], serve p s)

  let rpc_call p ~client ~seq op k args : (hworld, V.t) P.t =
    Rpc.call ~get:get_net ~set:set_net ~retries:p.retries
      ~req_chan:(req_chan (shard_of p k))
      ~reply_chan:(reply_chan client) ~client ~seq op args

  let nput_call p ~client ~seq k v =
    (Spec.call "nput" [ V.int k; v ], rpc_call p ~client ~seq "put" k [ V.int k; v ])

  let nget_call p ~client ~seq k =
    (Spec.call "nget" [ V.int k ], rpc_call p ~client ~seq "get" k [ V.int k ])

  let bye_call =
    ( Spec.call "bye" [],
      P.det
        ~fp:(Fp.const (Fp.rw ~reads:[ done_loc ] ~writes:[ done_loc ] ()))
        "client_bye"
        (fun w -> ({ w with done_clients = w.done_clients + 1 }, V.unit)) )

  let probe_call p k =
    ( Spec.call "probe" [ V.int k ],
      on_shard (shard_of p k) (K.get_prog (kparams p (shard_of p k)) (local_of p k)) )

  let probe p = List.init p.n_keys (fun k -> probe_call p k)

  (** Recovery replays every shard's journal, sequentially, over a
      reliable network. *)
  let recover p : (hworld, V.t) P.t =
    let rec go s =
      if s >= p.n_shards then P.return V.unit
      else
        let* _ = on_shard s (K.recover (kparams p s)) in
        go (s + 1)
    in
    go 0

  let checker_config p ?spec:sp ?(max_crashes = 1) ?(fault_budget = 0) threads :
      (hworld, state) Perennial_core.Refinement.config =
    let sp = match sp with Some s -> s | None -> spec p in
    Perennial_core.Refinement.config ~spec:sp ~init_world:(init_world p) ~crash_world
      ~pp_world ~threads ~recovery:(recover p) ~post:(probe p) ~max_crashes
      ~fault_budget ()
end
