(** Lease state for the lock/lease service: a single lease with a
    monotonically increasing epoch number.

    Acquiring a free lease bumps the epoch; the holder uses that epoch to
    fence its storage writes ({!Shard_kv}: shards remember the highest
    epoch that fenced them and reject anything older).  Expiry — modeled
    as an explicit harness step the scheduler can place anywhere — only
    clears the holder; the epoch survives, and survives crashes too, so a
    post-crash or post-expiry acquirer always fences with a strictly
    newer epoch than any zombie. *)

type t = { epoch : int; holder : int option }

let init = { epoch = 0; holder = None }

(** Crash: the lease is lost with the machines, the epoch is durable. *)
let crash t = { t with holder = None }

(** Expiry: the holder's time is up.  Epoch unchanged — the NEXT acquire
    bumps it. *)
let expire t = { t with holder = None }

(** [acquire c t] grants the lease to [c] under a fresh epoch if it is
    free. *)
let acquire c t =
  match t.holder with
  | Some _ -> None
  | None ->
    let epoch = t.epoch + 1 in
    Some (epoch, { epoch; holder = Some c })

(** [release c e t] frees the lease if [c] still holds it under epoch [e];
    a zombie release (expired, or a newer holder) is a no-op. *)
let release c e t = if t.holder = Some c && t.epoch = e then { t with holder = None } else t

let compare a b =
  let c = Int.compare a.epoch b.epoch in
  if c <> 0 then c else Option.compare Int.compare a.holder b.holder

let equal a b = compare a b = 0

let pp ppf t =
  Fmt.pf ppf "lease{e%d %s}" t.epoch
    (match t.holder with None -> "free" | Some c -> "c" ^ string_of_int c)
