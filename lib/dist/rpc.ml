(** Exactly-once RPC plumbing: request ids, per-client sequence numbers, a
    reply cache for at-most-once execution, and a client-side call with
    retry/timeout/backoff expressed as scheduler steps.

    The contract is the classic one (Grove's eRPC, the lockservice proofs):
    every request carries [(client, seq)]; the server remembers, per
    client, the highest sequence number it executed and the reply it sent.
    A duplicate ([seq] = cached) is answered from the cache WITHOUT
    re-executing; a stale duplicate ([seq] < cached) is dropped; anything
    newer executes and overwrites the cache entry.  Acknowledged requests
    therefore execute exactly once; unacknowledged ones at most once — the
    client cannot tell a lost request from a lost reply, which is why the
    spec's degradation arms allow "applied but reported degraded"
    ({!Shard_kv.spec}). *)

module V = Tslang.Value
module P = Sched.Prog
module Fp = Sched.Footprint
module Net = Sched.Net
open P.Syntax

type req = { client : int; seq : int; op : string; args : V.t list }

let no_seq = -1
(** A request without a sequence number — what a broken client's retries
    degenerate to ({!Shard_kv.Buggy}).  Servers cannot deduplicate it. *)

let encode_req r =
  V.pair
    (V.pair (V.int r.client) (V.int r.seq))
    (V.pair (V.str r.op) (V.list r.args))

let decode_req = function
  | V.Pair (V.Pair (V.Int client, V.Int seq), V.Pair (V.Str op, V.List args)) ->
    Some { client; seq; op; args }
  | _ -> None

let encode_reply ~seq payload = V.pair (V.int seq) payload

let decode_reply = function
  | V.Pair (V.Int seq, payload) -> Some (seq, payload)
  | _ -> None

(* ------------------------------------------------------------------ *)
(* Reply cache                                                         *)
(* ------------------------------------------------------------------ *)

type cache = (int * (int * V.t)) list
(** Per client: the highest executed sequence number and its reply.
    Sorted by client id — canonical, so world comparison is semantic. *)

let cache_empty : cache = []
let cache_lookup c (cache : cache) = List.assoc_opt c cache

let cache_store c ~seq ~reply (cache : cache) : cache =
  List.sort
    (fun (a, _) (b, _) -> Int.compare a b)
    ((c, (seq, reply)) :: List.remove_assoc c cache)

let compare_cache : cache -> cache -> int =
  List.compare (fun (c1, (s1, r1)) (c2, (s2, r2)) ->
      let c = Int.compare c1 c2 in
      if c <> 0 then c
      else
        let c = Int.compare s1 s2 in
        if c <> 0 then c else V.compare r1 r2)

let pp_cache ppf (cache : cache) =
  Fmt.pf ppf "{%a}"
    (Fmt.list ~sep:Fmt.semi (fun ppf (c, (s, r)) -> Fmt.pf ppf "c%d:%d=%a" c s V.pp r))
    cache

type verdict = Hit of V.t | Stale | Fresh

(** At-most-once classification of an incoming request against the cache.
    Requests without a sequence number are always [Fresh] — they cannot be
    deduplicated, which is exactly the seeded bug 2 surface. *)
let classify c ~seq cache =
  if seq < 0 then Fresh
  else
    match cache_lookup c cache with
    | Some (s0, r0) when seq = s0 -> Hit r0
    | Some (s0, _) when seq < s0 -> Stale
    | _ -> Fresh

(* ------------------------------------------------------------------ *)
(* Client-side call                                                    *)
(* ------------------------------------------------------------------ *)

(** [call ~get ~set ~req_chan ~reply_chan ~client ~seq op args] sends the
    request and waits for the matching reply, retrying up to [retries]
    times.  Every timing decision is a scheduler step, so the checker
    explores the whole retry storm:

    - the non-blocking receive's [None] outcome IS the timeout (it can
      fire before the server even ran — a premature timeout — and the
      [Delay] adversary event makes it fire despite a queued reply);
    - each retry announces itself with a pure ["retry_rpc(op#n)"] step —
      the backoff delay rendered as a step the adversary can place
      anywhere, and the ["retry…"] label convention the checker counts;
    - when the retry budget is exhausted the call degrades to
      {!Sched.Fault.err_value}, matching the spec's degradation arms.

    Replies with a non-matching sequence number (stale, duplicate, or
    foreign) are drained and treated as a timeout.  [send_seq] rewrites
    the sequence number per attempt — the hook {!Shard_kv.Buggy} uses to
    model a client whose retries carry no sequence number. *)
let call ~get ~set ?(retries = 1) ?(send_seq = fun ~attempt:_ seq -> seq)
    ~req_chan ~reply_chan ~client ~seq op args : ('w, V.t) P.t =
  let payload attempt =
    encode_req { client; seq = send_seq ~attempt seq; op; args }
  in
  let backoff attempt =
    P.read ~fp:(Fp.const Fp.pure)
      (Printf.sprintf "retry_rpc(%s#%d)" op attempt)
      (fun _ -> ())
  in
  let rec attempt n : ('w, V.t) P.t =
    let* () = Net.send_step ~get ~set req_chan (payload n) in
    let* r = Net.try_recv_step ~get ~set reply_chan in
    match r with
    | Some m -> (
      match decode_reply m with
      | Some (s, payload) when s = seq || s = no_seq -> P.return payload
      | _ -> next n (* drained a stale/foreign reply: same as a timeout *))
    | None -> next n
  and next n =
    if n >= retries then P.return Sched.Fault.err_value
    else
      let* () = backoff (n + 1) in
      attempt (n + 1)
  in
  attempt 0
