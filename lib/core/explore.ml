module Fp = Sched.Footprint

type strategy = Naive | Dpor | Dpor_sleep

let all_strategies = [ Naive; Dpor; Dpor_sleep ]

let strategy_name = function
  | Naive -> "naive"
  | Dpor -> "dpor"
  | Dpor_sleep -> "dpor+sleep"

let strategy_of_string s =
  match String.lowercase_ascii (String.trim s) with
  | "naive" -> Some Naive
  | "dpor" -> Some Dpor
  | "dpor+sleep" | "dpor_sleep" | "sleep" -> Some Dpor_sleep
  | _ -> None

let pp_strategy ppf s = Fmt.string ppf (strategy_name s)

(* ------------------------------------------------------------------ *)
(* Step infos, nodes, race detection                                    *)
(* ------------------------------------------------------------------ *)

type 'w step_info = {
  si_tid : int;
  si_label : string;
  si_fp : Fp.t;
  si_visible : bool;
  si_branches : ('w * ('w, Tslang.Value.t) Sched.Prog.t) list;
  si_faults : (Sched.Fault.kind * ('w * ('w, Tslang.Value.t) Sched.Prog.t)) list;
  si_fault_site : bool;
}

let crash_relevant fp = Fp.writes_durable fp

let dependent a b =
  a.si_visible || b.si_visible || Fp.conflicts a.si_fp b.si_fp

type 'w node = {
  n_enabled : 'w step_info list;
  mutable n_backtrack : int list;
  mutable n_done : int list;
}

type 'w frame = { f_node : 'w node; f_step : 'w step_info }

let node ~sleep enabled =
  let asleep si = List.mem si.si_tid sleep in
  let init =
    match List.find_opt (fun si -> (not si.si_visible) && not (asleep si)) enabled with
    | Some si -> Some si.si_tid
    | None ->
      (match List.find_opt (fun si -> not (asleep si)) enabled with
      | Some si -> Some si.si_tid
      | None -> None (* every enabled thread is asleep: prune the node *))
  in
  {
    n_enabled = enabled;
    n_backtrack = (match init with Some t -> [ t ] | None -> []);
    n_done = [];
  }

let add_backtrack n tid =
  if not (List.mem tid n.n_backtrack) then n.n_backtrack <- tid :: n.n_backtrack

let enabled_at n tid = List.exists (fun q -> q.si_tid = tid) n.n_enabled

(* Flanagan–Godefroid race detection.  For each step [p] enabled at the new
   node, walk the path (newest frame first) to the most recent step by a
   *different* thread that is dependent with [p] and may be co-enabled with
   it, and schedule [p] for exploration at that frame's node — or, if [p]
   was not enabled there, every thread that was (the conservative
   fallback).  The co-enabledness filter is not an optimization: a
   dependent-but-never-co-enabled step (a release of the very lock [p]
   wants) would otherwise shadow the real race deeper in the path. *)
let detect_races (stack : 'w frame list) (n : 'w node) =
  List.iter
    (fun p ->
      let rec scan = function
        | [] -> ()
        | f :: rest ->
          if
            f.f_step.si_tid <> p.si_tid
            && dependent f.f_step p
            && Fp.may_be_coenabled f.f_step.si_fp p.si_fp
          then
            if enabled_at f.f_node p.si_tid then add_backtrack f.f_node p.si_tid
            else List.iter (fun q -> add_backtrack f.f_node q.si_tid) f.f_node.n_enabled
          else scan rest
      in
      scan stack)
    n.n_enabled

let next_candidate n =
  List.find_opt
    (fun si -> List.mem si.si_tid n.n_backtrack && not (List.mem si.si_tid n.n_done))
    n.n_enabled

(* ------------------------------------------------------------------ *)
(* Pruning provenance                                                   *)
(* ------------------------------------------------------------------ *)

module Prov = struct
  type rule = Commutation | Sleep | Clean_crash

  let rule_name = function
    | Commutation -> "commutation"
    | Sleep -> "sleep-set"
    | Clean_crash -> "clean-crash"

  let on = ref false
  let enabled () = !on
  let set_enabled b = on := b

  (* (rule, pruned site, witness site) -> times the rule fired.  The
     witness is the step the pruned one was judged against: the explored
     representative for a commutation, the step whose sleep set swallowed
     the skip, or [None] for a clean-crash node. *)
  let table : (rule * string * string option, int ref) Hashtbl.t = Hashtbl.create 128

  (* Parallel exploration records provenance from several domains at once;
     the mutex keeps the table and its cells exact. *)
  let lock = Mutex.create ()

  let with_lock f =
    Mutex.lock lock;
    Fun.protect ~finally:(fun () -> Mutex.unlock lock) f

  let reset () = with_lock (fun () -> Hashtbl.reset table)

  let record rule ~site ?witness () =
    if !on then
      with_lock (fun () ->
          let key = (rule, site, witness) in
          match Hashtbl.find_opt table key with
          | Some r -> incr r
          | None -> Hashtbl.add table key (ref 1))

  let entries () =
    with_lock (fun () ->
        Hashtbl.fold (fun (rule, site, w) r acc -> (rule, site, w, !r) :: acc) table [])
    |> List.sort (fun (_, s1, _, n1) (_, s2, _, n2) ->
           match compare n2 n1 with 0 -> compare s1 s2 | c -> c)

  let total () = with_lock (fun () -> Hashtbl.fold (fun _ r acc -> acc + !r) table 0)

  let pp_report ppf () =
    let es = entries () in
    Format.fprintf ppf "pruning provenance: %d skips across %d distinct (rule, site) pairs@,"
      (total ()) (List.length es);
    List.iteri
      (fun i (rule, site, witness, n) ->
        if i < 40 then
          match witness with
          | Some w ->
            Format.fprintf ppf "  %6dx %-11s %s  (vs %s)@," n (rule_name rule) site w
          | None -> Format.fprintf ppf "  %6dx %-11s %s@," n (rule_name rule) site)
      es;
    if List.length es > 40 then
      Format.fprintf ppf "  ... %d more@," (List.length es - 40)
end

(* ------------------------------------------------------------------ *)
(* Observability                                                        *)
(* ------------------------------------------------------------------ *)

module Mx = struct
  open Obs.Metrics

  let commutations = counter "perennial_explore_commutations_pruned_total"
  let sleep_skips = counter "perennial_explore_sleep_skips_total"
  let crash_skips = counter "perennial_explore_crash_skips_total"
end

let strategy_us s =
  Obs.Metrics.gauge
    ~labels:[ ("strategy", strategy_name s) ]
    "perennial_explore_strategy_us"
