(** Pluggable exploration strategies for the refinement checker.

    The exhaustive checker ({!Refinement.check}) enumerates every thread
    interleaving and crash point.  Most interleavings differ only in the
    order of {e commuting} steps — steps whose footprints
    ({!Sched.Footprint}) are disjoint — and checking one representative per
    commutation class is enough.  This module provides the machinery of
    dynamic partial-order reduction (DPOR, Flanagan–Godefroid style) that
    {!Refinement.check} uses to prune such redundant schedules:

    - {b Naive}: the original exhaustive enumeration, unchanged;
    - {b Dpor}: backtracking-based DPOR over thread steps, plus crash-point
      pruning (a crash branch is skipped when it would reach the exact same
      recovery state and linearization obligations as an already-explored
      crash at the nearest "dirty" ancestor);
    - {b Dpor_sleep}: DPOR with sleep sets stacked on top, filtering
      already-explored siblings out of re-exploration.

    Dependence is conservative: a step is {e globally dependent} (never
    reordered) if it writes durable state, has an [Unknown] footprint, or
    may complete its operation (responses and the invocations they trigger
    reorder the linearization obligations, so they must keep their place in
    the path).  Soundness is cross-validated empirically by the
    differential harness in [test/test_explore.ml]: naive and reduced
    exploration must agree on pass/fail for every bundled system and
    seeded-bug variant. *)

type strategy = Naive | Dpor | Dpor_sleep

val all_strategies : strategy list

val strategy_name : strategy -> string
(** ["naive"], ["dpor"], ["dpor+sleep"] — the [--strategy] spellings. *)

val strategy_of_string : string -> strategy option
val pp_strategy : strategy Fmt.t

(** {2 DPOR machinery}

    Used by {!Refinement.check}; exposed for the differential harness and
    the property tests over the dependence relation. *)

type 'w step_info = {
  si_tid : int;
  si_label : string;
  si_fp : Sched.Footprint.t;  (** footprint in the node's world *)
  si_visible : bool;
      (** globally dependent: durable write, [Unknown] footprint, some
          outcome completes the operation, or a fault branch will be
          explored here (faulted steps are never reordered) *)
  si_branches : ('w * ('w, Tslang.Value.t) Sched.Prog.t) list;
      (** the step's outcomes, pre-applied: next world and continuation *)
  si_faults : (Sched.Fault.kind * ('w * ('w, Tslang.Value.t) Sched.Prog.t)) list;
      (** fault outcomes to explore at this step (empty once the path's
          fault budget is spent), pre-applied like [si_branches] *)
  si_fault_site : bool;
      (** the step declares fault points, whether or not budget remains —
          drives the path's canonical fault-site numbering *)
}

val crash_relevant : Sched.Footprint.t -> bool
(** Does a step with this footprint interfere with crash injection?  True
    iff it writes durable state ([Unknown] counts). *)

val dependent : 'w step_info -> 'w step_info -> bool
(** Steps that may not be reordered: either is globally dependent or their
    footprints conflict. *)

type 'w node = {
  n_enabled : 'w step_info list;  (** runnable threads at this node *)
  mutable n_backtrack : int list;  (** tids scheduled for exploration *)
  mutable n_done : int list;  (** tids already explored (or slept) here *)
}

type 'w frame = { f_node : 'w node; f_step : 'w step_info }
(** One executed step on the current DFS path: the node it left and the
    step taken. *)

val node : sleep:int list -> 'w step_info list -> 'w node
(** Fresh node over the given enabled steps.  The initial backtrack choice
    prefers a non-visible, non-sleeping thread; if every enabled thread is
    asleep the backtrack set starts empty and the node is pruned. *)

val add_backtrack : 'w node -> int -> unit
val enabled_at : 'w node -> int -> bool

val detect_races : 'w frame list -> 'w node -> unit
(** For each enabled step of the node, find the most recent dependent,
    may-be-co-enabled step by another thread on the path (newest frame
    first) and add backtrack points at that frame's node. *)

val next_candidate : 'w node -> 'w step_info option
(** Next backtrack candidate not yet done, in enabled order. *)

(** Pruning provenance: {e why} was the state space this small?  When
    enabled, every skip the reduction performs records the rule that
    justified it, the site (step label or crash-site id) it pruned, and
    the witness site it was judged against; {!Prov.pp_report} ranks the
    (rule, site) pairs by skip count — the [perennial_check --explain]
    output.  Disabled by default (a single branch on the hot path). *)
module Prov : sig
  type rule =
    | Commutation  (** enabled step never explored: no race required it *)
    | Sleep  (** step skipped by its sleep set *)
    | Clean_crash  (** crash branch skipped at a clean (non-dirty) node *)

  val rule_name : rule -> string
  val enabled : unit -> bool
  val set_enabled : bool -> unit
  val reset : unit -> unit

  val record : rule -> site:string -> ?witness:string -> unit -> unit
  (** Count one skip of [site] under [rule]; [witness] is the explored
      step it commuted with (or that put it to sleep). No-op when
      disabled. *)

  val entries : unit -> (rule * string * string option * int) list
  (** Ranked by count, descending. *)

  val total : unit -> int
  val pp_report : Format.formatter -> unit -> unit
end

(** Obs counters for the reduction itself (on the default registry). *)
module Mx : sig
  val commutations : Obs.Metrics.counter
      (** enabled steps never explored because no race required them *)

  val sleep_skips : Obs.Metrics.counter
  val crash_skips : Obs.Metrics.counter
end

val strategy_us : strategy -> Obs.Metrics.gauge
(** Accumulated wall time of checks run under the given strategy
    ([perennial_explore_strategy_us{strategy=...}]). *)
