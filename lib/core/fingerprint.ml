type pend = {
  f_ptid : int;
  f_op : string;
  f_args : string list;
  f_result : string option;
}

type cand = { f_state : string; f_pend : pend list }

type thr = { f_tid : int; f_class : string; f_hist : string list }

type state = {
  f_world : string;
  f_cands : cand list;
  f_phase : string;
  f_crashes : int;
  f_fused : int;
  f_fsite : int;
  f_threads : thr list;
}

(* ------------------------------------------------------------------ *)
(* Token renaming (key symmetry)                                       *)
(* ------------------------------------------------------------------ *)

let is_digit c = c >= '0' && c <= '9'

let rename_tokens ~prefix s =
  let plen = String.length prefix in
  if plen = 0 then invalid_arg "Fingerprint.rename_tokens: empty prefix";
  let n = String.length s in
  let buf = Buffer.create n in
  let names : (string, int) Hashtbl.t = Hashtbl.create 8 in
  let next = ref 0 in
  let i = ref 0 in
  while !i < n do
    if !i + plen < n && String.sub s !i plen = prefix && is_digit s.[!i + plen] then begin
      let j = ref (!i + plen) in
      while !j < n && is_digit s.[!j] do incr j done;
      let tok = String.sub s !i (!j - !i) in
      let id =
        match Hashtbl.find_opt names tok with
        | Some id -> id
        | None ->
          let id = !next in
          incr next;
          Hashtbl.add names tok id;
          id
      in
      Buffer.add_string buf prefix;
      Buffer.add_string buf (string_of_int id);
      i := !j
    end
    else begin
      Buffer.add_char buf s.[!i];
      incr i
    end
  done;
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Canonical rendering                                                 *)
(* ------------------------------------------------------------------ *)

(* Render with [m] mapping original tids to canonical ones and [order]
   giving the thread listing order.  '\x1f' (unit separator) delimits
   records so no rendered payload can collide across fields.  Pending
   entries are sorted by their *mapped* tid and candidate renderings are
   sorted lexicographically: the result must be a function of the state up
   to tid relabeling, never of the original tid numbers' order. *)
let render st ~(m : int -> int) ~(order : thr list) =
  let buf = Buffer.create 256 in
  let sep () = Buffer.add_char buf '\x1f' in
  Buffer.add_string buf "W|";
  Buffer.add_string buf st.f_world;
  sep ();
  Buffer.add_string buf
    (Printf.sprintf "P|%s|c=%d|f=%d|s=%d" st.f_phase st.f_crashes st.f_fused st.f_fsite);
  sep ();
  List.iter
    (fun t ->
      Buffer.add_string buf
        (Printf.sprintf "T|%d|%s|h=%s" (m t.f_tid) t.f_class (String.concat ";" t.f_hist));
      sep ())
    order;
  let cand_strs =
    List.map
      (fun c ->
        let pends =
          List.map
            (fun p ->
              Printf.sprintf "|%d:%s(%s)%s" (m p.f_ptid) p.f_op
                (String.concat "," p.f_args)
                (match p.f_result with None -> "" | Some r -> "->" ^ r))
            c.f_pend
          |> List.sort String.compare
        in
        "C|" ^ c.f_state ^ String.concat "" pends)
      st.f_cands
    |> List.sort String.compare
  in
  List.iter
    (fun s ->
      Buffer.add_string buf s;
      sep ())
    cand_strs;
  Buffer.contents buf

let rec permutations = function
  | [] -> [ [] ]
  | l ->
    List.concat_map
      (fun x ->
        let rest = List.filter (fun y -> y != x) l in
        List.map (fun p -> x :: p) (permutations rest))
      l

(* All ways to permute each group independently, as full thread orders. *)
let group_orders groups =
  List.fold_right
    (fun group acc ->
      let perms = permutations group in
      List.concat_map (fun p -> List.map (fun rest -> p @ rest) acc) perms)
    groups [ [] ]

let canonical ?(symmetry = false) ?key_prefix st =
  let finish s = match key_prefix with
    | Some p when symmetry -> rename_tokens ~prefix:p s
    | _ -> s
  in
  if not symmetry then finish (render st ~m:(fun t -> t) ~order:st.f_threads)
  else begin
    (* Group threads by (class, history); within a group they are
       interchangeable candidates.  Canonical = lexicographic min of the
       rendering over every within-group permutation, with tids remapped
       to their position in the chosen order. *)
    let keyed =
      List.map (fun t -> ((t.f_class, t.f_hist), t)) st.f_threads
      |> List.sort (fun (k1, t1) (k2, t2) ->
             match compare k1 k2 with 0 -> compare t1.f_tid t2.f_tid | c -> c)
    in
    let groups =
      List.fold_right
        (fun (k, t) acc ->
          match acc with
          | (k', g) :: rest when k = k' -> (k', t :: g) :: rest
          | _ -> (k, [ t ]) :: acc)
        keyed []
      |> List.map snd
    in
    let best = ref None in
    List.iter
      (fun order ->
        let slot = Hashtbl.create 8 in
        List.iteri (fun i t -> Hashtbl.replace slot t.f_tid i) order;
        let m tid = match Hashtbl.find_opt slot tid with Some i -> i | None -> tid in
        let s = finish (render st ~m ~order) in
        match !best with
        | Some b when String.compare b s <= 0 -> ()
        | _ -> best := Some s)
      (group_orders groups);
    match !best with Some s -> s | None -> finish (render st ~m:(fun t -> t) ~order:[])
  end

(* ------------------------------------------------------------------ *)
(* Global sharded intern table                                         *)
(* ------------------------------------------------------------------ *)

type t = { fp_id : int; fp_key : string }

let id t = t.fp_id
let key t = t.fp_key
let equal a b = String.equal a.fp_key b.fp_key
let compare a b = String.compare a.fp_key b.fp_key

let n_shards = 16

type shard = { tbl : (string, int) Hashtbl.t; lock : Mutex.t }

let shards =
  Array.init n_shards (fun _ -> { tbl = Hashtbl.create 1024; lock = Mutex.create () })

let next_id = Atomic.make 0

let shard_of s = shards.(Hashtbl.hash s land (n_shards - 1))

let intern s =
  let sh = shard_of s in
  Mutex.lock sh.lock;
  let r =
    match Hashtbl.find_opt sh.tbl s with
    | Some id -> ({ fp_id = id; fp_key = s }, false)
    | None ->
      let id = Atomic.fetch_and_add next_id 1 in
      Hashtbl.add sh.tbl s id;
      ({ fp_id = id; fp_key = s }, true)
  in
  Mutex.unlock sh.lock;
  r

let digest ?symmetry ?key_prefix st = intern (canonical ?symmetry ?key_prefix st)

let table_size () =
  Array.fold_left
    (fun acc sh ->
      Mutex.lock sh.lock;
      let n = Hashtbl.length sh.tbl in
      Mutex.unlock sh.lock;
      acc + n)
    0 shards

let reset () =
  Array.iter
    (fun sh ->
      Mutex.lock sh.lock;
      Hashtbl.reset sh.tbl;
      Mutex.unlock sh.lock)
    shards;
  Atomic.set next_id 0
