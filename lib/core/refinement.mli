(** Concurrent recovery refinement, checked exhaustively on finite instances.

    This module is the executable counterpart of the paper's definition of
    correctness (§3.1) and of Theorems 1 and 2 (§5.5): every interleaving of
    the implementation's atomic steps — including a crash at any step,
    recovery, and crashes during recovery — must be explained by an atomic
    interleaving of specification transitions:

    - every completed operation appears to take effect atomically between
      its invocation and its response, with the observed return value
      (linearizability against the spec transition system);
    - a crash + recovery sequence simulates a single atomic spec crash
      transition, before which any subset of the operations in flight at the
      crash may appear to have executed (recovery helping, §5.4);
    - the implementation must never step into code-level undefined behaviour
      (races, out-of-bounds), while *spec-level* undefined behaviour makes
      the obligations vacuous for that client (§8.3 "exploiting undefined
      behaviour").

    The checker tracks a set of linearization candidates (abstract state +
    per-pending-operation status) through a depth-first exploration of every
    schedule and crash point. *)

module V := Tslang.Value
module Spec := Tslang.Spec

type ('w, 's) config = {
  spec : 's Spec.t;
  init_world : 'w;
  crash_world : 'w -> 'w;  (** volatile state clears; durable survives *)
  pp_world : 'w Fmt.t;
  threads : (Spec.call * ('w, V.t) Sched.Prog.t) list list;
      (** one inner list per thread: the ops it performs in sequence *)
  recovery : ('w, V.t) Sched.Prog.t;
      (** run single-threaded after every crash; may itself crash *)
  post : (Spec.call * ('w, V.t) Sched.Prog.t) list;
      (** probe ops run sequentially after normal completion and after
          recovery — typically reads of all state, to force the abstract
          and concrete states to agree observably *)
  max_crashes : int;  (** 0 disables crash injection *)
  fault_budget : int;
      (** max faults injected per execution; 0 disables fault injection.
          While budget remains, every step that declares fault points
          (see {!Sched.Prog.atomic}'s [?faults]) also branches into each
          declared fault, exploring all fault schedules up to the budget
          alongside all crash points.  Faults fire only in the main phase:
          recovery and post probes run fault-free (the reliable-recovery
          assumption — recovery retried forever eventually sees good
          I/O).  Network events ({!Sched.Fault.Msg_drop} etc., see
          {!Sched.Net}) are fault kinds, so the same assumption covers
          them: the network is reliable during recovery — a recovering
          lease service eventually reaches its shards. *)
  max_seconds : float option;
      (** wall-clock budget for the whole check; [None] = unlimited.
          Exceeding it yields {!Budget_exhausted}, like [step_budget]. *)
  step_budget : int;
  fail_on_deadlock : bool;
}

val config :
  spec:'s Spec.t ->
  init_world:'w ->
  crash_world:('w -> 'w) ->
  pp_world:'w Fmt.t ->
  threads:(Spec.call * ('w, V.t) Sched.Prog.t) list list ->
  recovery:('w, V.t) Sched.Prog.t ->
  ?post:(Spec.call * ('w, V.t) Sched.Prog.t) list ->
  ?max_crashes:int ->
  ?fault_budget:int ->
  ?max_seconds:float ->
  ?step_budget:int ->
  ?fail_on_deadlock:bool ->
  unit ->
  ('w, 's) config
(** Defaults: no post probes, [max_crashes = 1], [fault_budget = 0],
    no wall-clock budget, [step_budget = 5_000_000],
    [fail_on_deadlock = true]. *)

type stats = {
  executions : int;  (** complete explored paths *)
  steps : int;  (** atomic steps applied across all paths *)
  crashes_injected : int;
  vacuous : int;  (** paths pruned by spec-level undefined behaviour *)
  max_candidates : int;  (** high-water mark of the linearization set *)
  dedup_hits : int;  (** duplicate linearization candidates collapsed *)
  frontier_hwm : int;  (** deepest schedule prefix explored *)
  commutations_pruned : int;
      (** enabled steps never explored because no race required them
          (partial-order reduction; 0 under {!Explore.Naive}) *)
  sleep_skips : int;  (** backtrack candidates skipped by sleep sets *)
  crash_skips : int;  (** crash branches pruned as state-equivalent *)
  faults_injected : int;  (** fault branches explored *)
  fault_schedules : int;
      (** distinct non-empty fault schedules over completed executions *)
  retries_observed : int;
      (** committed steps labelled ["retry…"] — the retry-loop convention *)
  cache_hits : int;
      (** committed steps labelled ["rpc_cache_hit…"] — an RPC server
          answering a duplicate request from its reply cache instead of
          re-executing it (the at-most-once convention) *)
  fingerprint_hits : int;
      (** settled nodes pruned because an equal fingerprint was already
          explored in this check (0 unless [~fingerprint:true]) *)
  fingerprint_misses : int;  (** settled nodes fingerprinted and explored *)
}

val pp_stats : stats Fmt.t

(** {2 Counterexamples}

    A failing path is kept as structured events — thread id, kind, phase —
    so it can be rendered as per-thread lanes ({!pp_failure_lanes}) or
    exported as a Chrome trace ({!failure_chrome}), in addition to the
    classic flat listing ({!pp_failure}). *)

type event_kind = Invoke | Step | Return | Crash | Fault

type event_phase = Main | Recovery | Post

type event = {
  ev_tid : int option;  (** [None] for global events (crash, recovery, post steps) *)
  ev_kind : event_kind;
  ev_phase : event_phase;
  ev_label : string;  (** short label: op name or atomic-step label *)
  ev_text : string;  (** the classic one-line rendering of this event *)
}

type failure = {
  reason : string;
  trace : string list;  (** events on the failing path, oldest first —
                            exactly [List.map (fun e -> e.ev_text) events] *)
  events : event list;  (** the same path, structured *)
}

val pp_failure : failure Fmt.t

val pp_failure_lanes : failure Fmt.t
(** The failing path as one column per thread (order of first appearance)
    plus a rightmost lane for crash/recovery/post events. *)

val failure_chrome : failure -> Obs.Json.t
(** The failing path as a Chrome [trace_event] document: one timeline lane
    per thread (tid 1000 holds global events), each event a fixed-width box
    at its position in the interleaving, crashes as instants. *)

type result =
  | Refinement_holds of stats
  | Refinement_violated of failure * stats
  | Budget_exhausted of stats

val check :
  ?strategy:Explore.strategy ->
  ?faults:int ->
  ?max_seconds:float ->
  ?domains:int ->
  ?split_depth:int ->
  ?fingerprint:bool ->
  ?symmetry:bool ->
  ?key_prefix:string ->
  ('w, 's) config ->
  result
(** Exhaustive check under the given exploration strategy (default
    {!Explore.Naive}).  The partial-order-reduced strategies
    ({!Explore.Dpor}, {!Explore.Dpor_sleep}) explore a sound subset of the
    interleavings — same verdict, fewer executions; the reduction is
    measurable in the returned {!stats} ([commutations_pruned],
    [crash_skips], [sleep_skips]).

    [?faults] overrides the config's [fault_budget]: all fault schedules
    with at most that many injections are enumerated alongside all crash
    points.  Faulted steps are globally dependent under DPOR (never
    reordered), so the reduced strategies stay sound with faults on.
    [?max_seconds] overrides the config's wall-clock budget.

    {b Parallel exploration.}  [~domains:n] runs the check on [n] domains
    (OCaml 5 multicore; [n >= 1], [Invalid_argument] otherwise).  A
    sequential splitting phase first explores every schedule prefix
    shallower than [split_depth] (default 2), turning each subtree rooted
    at that depth into a work item; idle domains then pull items and
    explore the subtrees concurrently.  The partition is a fixed function
    of [split_depth] — {e never} of [n] — and every item runs to
    completion, so the verdict, the reported counterexample (the first in
    sequential DFS order), and every field of {!stats} are identical for
    every [n] at a fixed [split_depth].  (On a {e violating} instance the
    parallel stats exceed a plain sequential run's: the sequential checker
    aborts at the first violation, while parallel items all run to
    completion — stopping early would make the merged stats depend on
    timing.  The counterexample reported is still the sequential one.)
    Only wall-clock-dependent
    behaviour escapes that guarantee: a [max_seconds] deadline may trip at
    a different point under a different domain count, and the
    [perennial_refinement_steals_total] metric is timing-dependent by
    design.  The step budget is shared: each item starts from the
    splitting phase's spend, so {!Budget_exhausted} fires under the same
    total-step ceiling as a sequential run.  Under DPOR strategies, nodes
    above the cutoff are explored conservatively (all enabled steps, no
    sleep sets), so a parallel DPOR run may explore {e more} executions
    than a sequential one — but the same number at any two domain counts.

    {b Fingerprint pruning.}  [~fingerprint:true] digests every settled
    node with {!Fingerprint.digest} and prunes the subtree when an equal
    digest was already explored in this check ([fingerprint_hits] /
    [fingerprint_misses] in {!stats}).  Sound for the verdict — equal
    fingerprints have identical subtrees (DESIGN.md §S21) — and requires
    the {!Explore.Naive} strategy ([Invalid_argument] otherwise): pruning
    by state reached along a different path would starve DPOR's
    backtrack-set computation.  Under [~domains] each work item prunes
    against its own seen-set (cross-item sharing would make stats depend
    on timing), so parallel fingerprint runs prune less than sequential
    ones but stay deterministic.  [~symmetry:true] (requires
    [~fingerprint:true]) additionally canonicalizes interchangeable
    threads — and, with [?key_prefix], renamable resource tokens — before
    digesting; see {!Fingerprint.canonical} for the obligations. *)

val check_exn :
  ?strategy:Explore.strategy ->
  ?faults:int ->
  ?max_seconds:float ->
  ?domains:int ->
  ?split_depth:int ->
  ?fingerprint:bool ->
  ?symmetry:bool ->
  ?key_prefix:string ->
  ('w, 's) config ->
  stats
(** Like {!check} but raises [Failure] with a rendered report on violation
    or budget exhaustion; convenient in tests and examples.  The message is
    prefixed ["Refinement_violated: "] or ["Budget_exhausted: "] so callers
    (and test suites) can tell the two apart, and both variants include the
    rendered {!stats}. *)

val check_random :
  ?schedules:int ->
  ?seed:int ->
  ?crash_prob:float ->
  ?domains:int ->
  ('w, 's) config ->
  result
(** Randomized exploration: [schedules] independent random walks through the
    schedule/outcome/crash space, with the same linearization bookkeeping as
    {!check}.  Use on instances too large to exhaust — a reported violation
    is a real counterexample; a pass is evidence, not proof.  [crash_prob]
    is the per-step probability of injecting a crash (while the crash budget
    lasts).  A failure's [reason] is prefixed ["[seed=S schedule=I/N] "].

    Walk [i] draws every choice — schedule picks, nondeterministic outcome
    picks, crash coins (including those flipped while recovery re-runs) —
    from its own RNG seeded by [(seed, i)], so the prefix identifies the
    walk completely: {!check_random_replay} re-runs it in isolation.

    [~domains:n] distributes the walks over [n] domains.  Per-walk RNG
    isolation makes this sound with no further ceremony; determinism is
    kept by running {e every} walk (no early stop at the first failure),
    giving each walk its own step budget, and reporting the lowest-index
    failing walk — so verdict, reason prefix, and merged stats match at
    any domain count.  The sequential path ([?domains] omitted) stops at
    the first failure with a cumulative step budget, exactly as before. *)

val check_random_replay :
  ?schedules:int ->
  ?seed:int ->
  ?crash_prob:float ->
  ?domains:int ->
  schedule:int ->
  ('w, 's) config ->
  result
(** Replay exactly one walk of {!check_random}: [check_random_replay ~seed
    ~schedule cfg] reproduces walk [schedule] of [check_random ~seed cfg] —
    same trace, same verdict, same [reason] prefix — without re-running the
    preceding walks.  [schedules] (default 200) only scales the ["I/N"] in
    the reason and must match the original run for byte-identical output.
    Raises [Invalid_argument] if [schedule] is outside [1..schedules]. *)
