module V = Tslang.Value
module Spec = Tslang.Spec

type ('w, 's) config = {
  spec : 's Spec.t;
  init_world : 'w;
  crash_world : 'w -> 'w;
  pp_world : 'w Fmt.t;
  threads : (Spec.call * ('w, V.t) Sched.Prog.t) list list;
  recovery : ('w, V.t) Sched.Prog.t;
  post : (Spec.call * ('w, V.t) Sched.Prog.t) list;
  max_crashes : int;
  fault_budget : int;
  max_seconds : float option;
  step_budget : int;
  fail_on_deadlock : bool;
}

let config ~spec ~init_world ~crash_world ~pp_world ~threads ~recovery ?(post = [])
    ?(max_crashes = 1) ?(fault_budget = 0) ?max_seconds ?(step_budget = 5_000_000)
    ?(fail_on_deadlock = true) () =
  {
    spec; init_world; crash_world; pp_world; threads; recovery; post; max_crashes;
    fault_budget; max_seconds; step_budget; fail_on_deadlock;
  }

type stats = {
  executions : int;
  steps : int;
  crashes_injected : int;
  vacuous : int;
  max_candidates : int;
  dedup_hits : int;
  frontier_hwm : int;
  commutations_pruned : int;
  sleep_skips : int;
  crash_skips : int;
  faults_injected : int;
  fault_schedules : int;
  retries_observed : int;
  cache_hits : int;
  fingerprint_hits : int;
  fingerprint_misses : int;
}

let pp_stats ppf s =
  Fmt.pf ppf
    "executions=%d steps=%d crashes=%d vacuous=%d max_candidates=%d dedup=%d frontier=%d"
    s.executions s.steps s.crashes_injected s.vacuous s.max_candidates s.dedup_hits
    s.frontier_hwm;
  if s.commutations_pruned > 0 || s.sleep_skips > 0 || s.crash_skips > 0 then
    Fmt.pf ppf " pruned=%d sleep_skips=%d crash_skips=%d" s.commutations_pruned
      s.sleep_skips s.crash_skips;
  if s.faults_injected > 0 || s.fault_schedules > 0 || s.retries_observed > 0 then
    Fmt.pf ppf " faults=%d fault_schedules=%d retries=%d" s.faults_injected
      s.fault_schedules s.retries_observed;
  if s.cache_hits > 0 then Fmt.pf ppf " cache_hits=%d" s.cache_hits;
  if s.fingerprint_hits > 0 || s.fingerprint_misses > 0 then
    Fmt.pf ppf " fp_hits=%d fp_misses=%d" s.fingerprint_hits s.fingerprint_misses

(* ------------------------------------------------------------------ *)
(* Structured counterexample events                                     *)
(* ------------------------------------------------------------------ *)

type event_kind = Invoke | Step | Return | Crash | Fault

type event_phase = Main | Recovery | Post

type event = {
  ev_tid : int option;
  ev_kind : event_kind;
  ev_phase : event_phase;
  ev_label : string;
  ev_text : string;
}

let ev_invoke tid call =
  { ev_tid = Some tid; ev_kind = Invoke; ev_phase = Main;
    ev_label = "invoke " ^ call.Spec.op;
    ev_text = Fmt.str "t%d: invoke %a" tid Spec.pp_call call }

let ev_return tid call v =
  { ev_tid = Some tid; ev_kind = Return; ev_phase = Main;
    ev_label = "return " ^ call.Spec.op;
    ev_text = Fmt.str "t%d: %a returns %a" tid Spec.pp_call call V.pp v }

let ev_step tid label =
  { ev_tid = Some tid; ev_kind = Step; ev_phase = Main; ev_label = label;
    ev_text = Fmt.str "t%d: %s" tid label }

(* A fault replaces the step's normal outcome, so one event carries both
   the step label and the injected kind; it renders inline in the faulting
   thread's lane. *)
let ev_fault tid label kind =
  { ev_tid = Some tid; ev_kind = Fault; ev_phase = Main;
    ev_label = "FAULT " ^ Sched.Fault.kind_name kind;
    ev_text = Fmt.str "t%d: %s FAULT %s" tid label (Sched.Fault.kind_name kind) }

let ev_crash ~during_recovery =
  { ev_tid = None; ev_kind = Crash;
    ev_phase = (if during_recovery then Recovery else Main); ev_label = "CRASH";
    ev_text = (if during_recovery then "CRASH (during recovery)" else "CRASH") }

let ev_rstep label =
  { ev_tid = None; ev_kind = Step; ev_phase = Recovery; ev_label = label;
    ev_text = "recovery: " ^ label }

let ev_pstep label =
  { ev_tid = None; ev_kind = Step; ev_phase = Post; ev_label = label;
    ev_text = "post: " ^ label }

let ev_post_return tid call v =
  { ev_tid = Some tid; ev_kind = Return; ev_phase = Post;
    ev_label = "return " ^ call.Spec.op;
    ev_text = Fmt.str "post t%d: %a returns %a" tid Spec.pp_call call V.pp v }

type failure = { reason : string; trace : string list; events : event list }

(* [revents] is newest-first, as accumulated during exploration. *)
let mk_failure reason revents =
  let events = List.rev revents in
  { reason; trace = List.map (fun e -> e.ev_text) events; events }

let pp_failure ppf f =
  Fmt.pf ppf "@[<v>refinement violated: %s@,trace:@,  @[<v>%a@]@]" f.reason
    (Fmt.list ~sep:Fmt.cut Fmt.string)
    f.trace

(* Per-thread lanes: one column per thread id (in order of appearance),
   plus a rightmost lane for global events (crash, recovery, post steps). *)
let pp_failure_lanes ppf f =
  let tids =
    List.fold_left
      (fun acc e ->
        match e.ev_tid with
        | Some t when not (List.mem t acc) -> acc @ [ t ]
        | _ -> acc)
      [] f.events
  in
  let width = 26 in
  let n_lanes = List.length tids + 1 in
  let lane_of e =
    match e.ev_tid with
    | Some t ->
      let rec idx i = function
        | [] -> n_lanes - 1
        | t' :: _ when t' = t -> i
        | _ :: rest -> idx (i + 1) rest
      in
      idx 0 tids
    | None -> n_lanes - 1
  in
  let clip s = if String.length s > width - 2 then String.sub s 0 (width - 2) else s in
  Fmt.pf ppf "@[<v>refinement violated: %s@," f.reason;
  let header =
    List.map (fun t -> Printf.sprintf "t%d" t) tids @ [ "(crash/recovery/post)" ]
  in
  List.iteri
    (fun i h -> Fmt.pf ppf "%s%-*s" (if i = 0 then "  " else "| ") (width - 2) (clip h))
    header;
  Fmt.pf ppf "@,";
  List.iter
    (fun e ->
      let lane = lane_of e in
      for i = 0 to n_lanes - 1 do
        let cell = if i = lane then clip e.ev_label else "" in
        Fmt.pf ppf "%s%-*s" (if i = 0 then "  " else "| ") (width - 2) cell
      done;
      Fmt.pf ppf "@,")
    f.events;
  Fmt.pf ppf "@]"

(* Counterexample as a Chrome trace: one lane per thread, each event a
   1ms-wide box at its position in the interleaving; crashes are instants.
   Global (crash/recovery/post) events land on tid 1000. *)
let failure_chrome f =
  let cat_of = function Main -> "main" | Recovery -> "recovery" | Post -> "post" in
  let events =
    List.mapi
      (fun i e ->
        {
          Obs.Trace.name = e.ev_label;
          cat = cat_of e.ev_phase;
          ph =
            (match e.ev_kind with
            | Crash | Fault -> Obs.Trace.Instant
            | Invoke | Step | Return -> Obs.Trace.Complete 900.);
          ts = float_of_int (i * 1000);
          pid = 1;
          tid = (match e.ev_tid with Some t -> t | None -> 1000);
          args = [ ("text", Obs.Trace.S e.ev_text) ];
        })
      f.events
  in
  Obs.Trace.chrome_json events

type result =
  | Refinement_holds of stats
  | Refinement_violated of failure * stats
  | Budget_exhausted of stats

(* ------------------------------------------------------------------ *)
(* Observability                                                        *)
(* ------------------------------------------------------------------ *)

(* Registry handles are resolved once here; the hot exploration loop only
   touches its own [counters] record, and the totals are added to the
   registry in one [snapshot] call per check — with no sink installed the
   per-step cost of observability is zero.  Trace spans (phases) and
   instants (crash injections) are emitted live, gated on
   [Obs.Trace.enabled]. *)
module Mx = struct
  open Obs.Metrics

  let checks = counter "perennial_refinement_checks_total"
  let executions = counter "perennial_refinement_executions_total"
  let steps = counter "perennial_refinement_steps_total"
  let crashes = counter "perennial_refinement_crash_injections_total"
  let vacuous = counter "perennial_refinement_vacuous_prunes_total"
  let dedup_hits = counter "perennial_refinement_dedup_hits_total"
  let violations = counter "perennial_refinement_violations_total"
  let max_candidates = gauge "perennial_refinement_max_candidates"
  let frontier = gauge "perennial_refinement_frontier_depth_hwm"

  let cand_sizes =
    histogram ~buckets:[ 1.; 2.; 4.; 8.; 16.; 32.; 64.; 128.; 256. ]
      "perennial_refinement_candidate_set_size"

  let faults = counter "perennial_refinement_faults_injected_total"
  let fault_scheds = counter "perennial_refinement_fault_schedules_total"
  let retries = counter "perennial_refinement_retries_observed_total"
  let cache_hits = counter "perennial_refinement_cache_hits_total"

  let fp_hits = counter "perennial_refinement_fingerprint_hits_total"
  let fp_misses = counter "perennial_refinement_fingerprint_misses_total"

  let domains_g = gauge "perennial_refinement_domains"
  let work_items = counter "perennial_refinement_work_items_total"

  let steals = counter "perennial_refinement_steals_total"
  (** work items executed by a non-primary domain — timing-dependent, never
      part of deterministic {!stats} *)

  let check_seconds = histogram "perennial_refinement_check_seconds"
  let explore_us = gauge ~labels:[ ("phase", "explore") ] "perennial_refinement_phase_us"
  let recovery_us = gauge ~labels:[ ("phase", "recovery") ] "perennial_refinement_phase_us"
  let post_us = gauge ~labels:[ ("phase", "post") ] "perennial_refinement_phase_us"
end

(* Internal mutable counters; one record per engine instance (the legacy
   whole-run engine, the phase-1 splitter, or one parallel work item), never
   shared between domains — merged with [merge_into] and snapshotted into
   [stats] once per check. *)
type counters = {
  mutable c_executions : int;
  mutable c_steps : int;
  mutable c_crashes : int;
  mutable c_vacuous : int;
  mutable c_max_candidates : int;
  mutable c_dedup : int;
  mutable c_frontier : int;
  mutable c_commut : int;
  mutable c_sleep : int;
  mutable c_crash_skips : int;
  mutable c_faults : int;
  mutable c_fault_scheds : int;
  mutable c_retries : int;
  mutable c_cache_hits : int;
  mutable c_fp_hits : int;
  mutable c_fp_misses : int;
  mutable c_recovery_us : float;
  mutable c_post_us : float;
}

let fresh_counters () =
  { c_executions = 0; c_steps = 0; c_crashes = 0; c_vacuous = 0; c_max_candidates = 0;
    c_dedup = 0; c_frontier = 0; c_commut = 0; c_sleep = 0; c_crash_skips = 0;
    c_faults = 0; c_fault_scheds = 0; c_retries = 0; c_cache_hits = 0;
    c_fp_hits = 0; c_fp_misses = 0;
    c_recovery_us = 0.; c_post_us = 0. }

(* Counts add; high-water marks take the max.  [c_fault_scheds] increments
   only on globally-fresh schedule keys (the shared seen-table below), so
   the sum over instances is the cardinality of the union — independent of
   how the work was partitioned. *)
let merge_into dst src =
  dst.c_executions <- dst.c_executions + src.c_executions;
  dst.c_steps <- dst.c_steps + src.c_steps;
  dst.c_crashes <- dst.c_crashes + src.c_crashes;
  dst.c_vacuous <- dst.c_vacuous + src.c_vacuous;
  dst.c_max_candidates <- max dst.c_max_candidates src.c_max_candidates;
  dst.c_dedup <- dst.c_dedup + src.c_dedup;
  dst.c_frontier <- max dst.c_frontier src.c_frontier;
  dst.c_commut <- dst.c_commut + src.c_commut;
  dst.c_sleep <- dst.c_sleep + src.c_sleep;
  dst.c_crash_skips <- dst.c_crash_skips + src.c_crash_skips;
  dst.c_faults <- dst.c_faults + src.c_faults;
  dst.c_fault_scheds <- dst.c_fault_scheds + src.c_fault_scheds;
  dst.c_retries <- dst.c_retries + src.c_retries;
  dst.c_cache_hits <- dst.c_cache_hits + src.c_cache_hits;
  dst.c_fp_hits <- dst.c_fp_hits + src.c_fp_hits;
  dst.c_fp_misses <- dst.c_fp_misses + src.c_fp_misses;
  dst.c_recovery_us <- dst.c_recovery_us +. src.c_recovery_us;
  dst.c_post_us <- dst.c_post_us +. src.c_post_us

let snapshot ctr =
  Obs.Metrics.inc ~by:ctr.c_executions Mx.executions;
  Obs.Metrics.inc ~by:ctr.c_steps Mx.steps;
  Obs.Metrics.inc ~by:ctr.c_crashes Mx.crashes;
  Obs.Metrics.inc ~by:ctr.c_vacuous Mx.vacuous;
  Obs.Metrics.inc ~by:ctr.c_dedup Mx.dedup_hits;
  Obs.Metrics.record_max Mx.max_candidates (float_of_int ctr.c_max_candidates);
  Obs.Metrics.record_max Mx.frontier (float_of_int ctr.c_frontier);
  Obs.Metrics.inc ~by:ctr.c_commut Explore.Mx.commutations;
  Obs.Metrics.inc ~by:ctr.c_sleep Explore.Mx.sleep_skips;
  Obs.Metrics.inc ~by:ctr.c_crash_skips Explore.Mx.crash_skips;
  Obs.Metrics.inc ~by:ctr.c_faults Mx.faults;
  Obs.Metrics.inc ~by:ctr.c_fault_scheds Mx.fault_scheds;
  Obs.Metrics.inc ~by:ctr.c_retries Mx.retries;
  Obs.Metrics.inc ~by:ctr.c_cache_hits Mx.cache_hits;
  Obs.Metrics.inc ~by:ctr.c_fp_hits Mx.fp_hits;
  Obs.Metrics.inc ~by:ctr.c_fp_misses Mx.fp_misses;
  Obs.Metrics.add Mx.recovery_us ctr.c_recovery_us;
  Obs.Metrics.add Mx.post_us ctr.c_post_us;
  {
    executions = ctr.c_executions;
    steps = ctr.c_steps;
    crashes_injected = ctr.c_crashes;
    vacuous = ctr.c_vacuous;
    max_candidates = ctr.c_max_candidates;
    dedup_hits = ctr.c_dedup;
    frontier_hwm = ctr.c_frontier;
    commutations_pruned = ctr.c_commut;
    sleep_skips = ctr.c_sleep;
    crash_skips = ctr.c_crash_skips;
    faults_injected = ctr.c_faults;
    fault_schedules = ctr.c_fault_scheds;
    retries_observed = ctr.c_retries;
    cache_hits = ctr.c_cache_hits;
    fingerprint_hits = ctr.c_fp_hits;
    fingerprint_misses = ctr.c_fp_misses;
  }

(* Time one top-level phase run, accumulating wall time into [cell] and
   emitting a span when a trace sink is installed. *)
let timed_phase name cell f =
  let t0 = Obs.Trace.now_us () in
  let finally () = cell (Obs.Trace.now_us () -. t0) in
  if Obs.Trace.enabled () then
    Obs.Trace.with_span ~cat:"refinement" name (fun () -> Fun.protect ~finally f)
  else Fun.protect ~finally f

(* Run a whole check under a span, timing it into the metrics. *)
let timed_check name f =
  let t0 = Obs.Trace.now_us () in
  let finish r =
    let dt = Obs.Trace.now_us () -. t0 in
    Obs.Metrics.observe Mx.check_seconds (dt /. 1e6);
    Obs.Metrics.add Mx.explore_us dt;
    (match r with
    | Refinement_violated _ -> Obs.Metrics.inc Mx.violations
    | Refinement_holds _ | Budget_exhausted _ -> ());
    r
  in
  if Obs.Trace.enabled () then
    finish (Obs.Trace.with_span ~cat:"refinement" name f)
  else finish (f ())

exception Violation of failure
exception Budget

(* A pending-or-linearized operation on the spec side.  [result = None]
   means not yet linearized. *)
type pending = { ptid : int; pcall : Spec.call; result : V.t option }

(* A linearization candidate: one way the spec could have explained the
   execution so far. *)
type 's cand = { st : 's; pend : pending list (* sorted by ptid *) }

(* A running thread: its current operation, its program position, and the
   operations it has yet to invoke. *)
type 'w live = {
  tid : int;
  call : Spec.call;
  prog : ('w, V.t) Sched.Prog.t;
  rest : (Spec.call * ('w, V.t) Sched.Prog.t) list;
}

(* Spec-level undefined behaviour reachable: obligations become vacuous. *)
exception Vacuous

(* ------------------------------------------------------------------ *)
(* Candidate tracking, shared by the exhaustive and randomized checkers *)
(* ------------------------------------------------------------------ *)

type 's tracker = {
  saturate : 's cand list -> 's cand list;
      (** close under linearizing any pending operation; raises [Vacuous]
          on reachable spec-level undefined behaviour *)
  add_pending : int -> Spec.call -> 's cand list -> 's cand list;
  respond : int -> V.t -> event list -> 's cand list -> 's cand list;
      (** filter candidates by an observed response; raises [Violation] *)
  crash_cands : event list -> 's cand list -> 's cand list;
      (** apply the atomic spec crash transition, dropping in-flight ops;
          raises [Violation] if unsatisfiable *)
}

(* [live] gates the stat/coverage side effects: during work-item replay the
   tracker must recompute candidate sets without re-counting what the
   splitting phase already counted. *)
let make_tracker (type s) (spec : s Spec.t) (ctr : counters) ~(live : bool ref) :
    s tracker =
  let compare_pending a b =
    let c = Int.compare a.ptid b.ptid in
    if c <> 0 then c
    else
      let c = String.compare a.pcall.Spec.op b.pcall.Spec.op in
      if c <> 0 then c
      else
        let c = List.compare V.compare a.pcall.Spec.args b.pcall.Spec.args in
        if c <> 0 then c else Option.compare V.compare a.result b.result
  in
  let compare_cand c1 c2 =
    let c = spec.Spec.compare_state c1.st c2.st in
    if c <> 0 then c else List.compare compare_pending c1.pend c2.pend
  in
  let dedup cands =
    let n0 = List.length cands in
    let sorted = List.sort_uniq compare_cand cands in
    if !live then begin
      let n = List.length sorted in
      ctr.c_dedup <- ctr.c_dedup + (n0 - n);
      Obs.Metrics.observe Mx.cand_sizes (float_of_int n);
      if n > ctr.c_max_candidates then ctr.c_max_candidates <- n
    end;
    sorted
  in
  let saturate cands =
    let seen = ref (dedup cands) in
    let rec grow frontier =
      let fresh = ref [] in
      List.iter
        (fun c ->
          List.iter
            (fun p ->
              match p.result with
              | Some _ -> ()
              | None ->
                if Spec.op_has_undefined spec c.st p.pcall then raise Vacuous;
                List.iter
                  (fun (st', v) ->
                    let pend =
                      List.map
                        (fun q -> if q.ptid = p.ptid then { q with result = Some v } else q)
                        c.pend
                    in
                    let c' = { st = st'; pend } in
                    if
                      not
                        (List.exists (fun x -> compare_cand x c' = 0) !seen
                        || List.exists (fun x -> compare_cand x c' = 0) !fresh)
                    then fresh := c' :: !fresh)
                  (Spec.op_outcomes spec c.st p.pcall))
            c.pend)
        frontier;
      match !fresh with
      | [] -> ()
      | fs ->
        seen := dedup (fs @ !seen);
        grow fs
    in
    grow !seen;
    !seen
  in
  (* Spec-arm coverage: each invocation registers the outcome arms the spec
     offers in the invoking state ([<system>:<op>:ok|err], DESIGN.md S20);
     each response hits the arm it actually took.  An arm registered but
     never hit — an error arm under fault budget 0, say — is vacuous. *)
  let arm_site call cls = spec.Spec.name ^ ":" ^ call.Spec.op ^ ":" ^ cls in
  let arm_class v = if Sched.Fault.is_eio v then "err" else "ok" in
  let register_arms call cands =
    if !live && Obs.Coverage.enabled () then
      match cands with
      | [] -> ()
      | c :: _ ->
        if not (Spec.op_has_undefined spec c.st call) then
          List.iter
            (fun (_, v) ->
              Obs.Coverage.register Obs.Coverage.Arm (arm_site call (arm_class v)))
            (Spec.op_outcomes spec c.st call)
  in
  let hit_arm tid v cands =
    if !live && Obs.Coverage.enabled () then
      let rec find = function
        | [] -> None
        | c :: rest ->
          (match List.find_opt (fun p -> p.ptid = tid) c.pend with
          | Some p -> Some p.pcall
          | None -> find rest)
      in
      match find cands with
      | Some call -> Obs.Coverage.hit Obs.Coverage.Arm (arm_site call (arm_class v))
      | None -> ()
  in
  let add_pending tid call cands =
    register_arms call cands;
    List.map
      (fun c ->
        { c with
          pend =
            List.sort compare_pending
              ({ ptid = tid; pcall = call; result = None } :: c.pend)
        })
      cands
  in
  let respond tid v trace cands =
    hit_arm tid v cands;
    let sat = saturate cands in
    let kept =
      List.filter_map
        (fun c ->
          match List.find_opt (fun p -> p.ptid = tid) c.pend with
          | Some { result = Some v'; _ } when V.equal v v' ->
            Some { c with pend = List.filter (fun p -> p.ptid <> tid) c.pend }
          | Some _ | None -> None)
        sat
    in
    match dedup kept with
    | [] ->
      raise
        (Violation
           (mk_failure
              (Fmt.str "no linearization explains thread %d returning %a" tid V.pp v)
              trace))
    | cs -> cs
  in
  let crash_cands trace cands =
    let crashed =
      List.concat_map
        (fun c ->
          List.map (fun st' -> { st = st'; pend = [] }) (Spec.crash_outcomes spec c.st))
        cands
    in
    match dedup crashed with
    | [] ->
      raise (Violation (mk_failure "spec crash transition unsatisfiable" trace))
    | cs -> cs
  in
  { saturate; add_pending; respond; crash_cands }

(* ------------------------------------------------------------------ *)
(* One exploration engine instance                                      *)
(* ------------------------------------------------------------------ *)

(* Outcome of a single engine instance; Violation/Budget never escape an
   instance, so parallel work items can report independently and the driver
   picks the deterministic winner. *)
type inst_outcome = I_ok | I_viol of failure | I_budget

(* Replay selection stops branch enumeration at the chosen index, so
   branches past it (whose [action w] phase 1 never evaluated before the
   point this work item was emitted) are not re-executed. *)
exception Break

(* Run one DFS engine over the schedule tree.  Three modes share the code:

   - whole run ([cutoff = max_int], no [emit], empty [replay]): the legacy
     sequential checker, bit-for-bit;
   - splitting phase ([emit = Some f]): explores (and fully accounts) the
     region above [cutoff]; on reaching a node at depth >= [cutoff] it
     emits the path of branch indices leading there as a work item and
     backs off — the node itself is untouched;
   - work item ([replay = path]): replays the recorded branch choices from
     the root without counting anything (phase 1 owns those stats), then
     explores the subtree below the cutoff node live.

   Branch indices number, per node, the deterministic enumeration the live
   code performs: for each runnable thread in order, each normal outcome
   then each fault branch.  Crash branches are never indexed — they hang
   off a node and are wholly explored by whichever instance visits that
   node live.  The decomposition [phase-1 work + each item at its emission
   point] is exactly the sequential DFS, so merged stats and the first
   counterexample are independent of the domain count. *)
let run_instance (type w s) (cfg : (w, s) config) ~strategy ~fault_budget ~deadline
    ~step_base ~cutoff ~emit ~replay_path
    ~(fp : (bool * string option) option) ~sched_seen ~sched_lock ~(ctr : counters) :
    inst_outcome =
  let spec = cfg.spec in
  let replay = ref replay_path in
  let counting = ref (replay_path = []) in
  let tk = make_tracker spec ctr ~live:counting in
  let emitting = emit <> None in
  let fp_on = fp <> None in
  let fp_seen : (int, unit) Hashtbl.t = Hashtbl.create (if fp_on then 4096 else 1) in
  let vstr v = Fmt.str "%a" V.pp v in
  let next_tid = ref 0 in
  let fresh_tid () =
    let t = !next_tid in
    incr next_tid;
    t
  in

  (* Coverage sites (DESIGN.md S20).  A crash site is named by the newest
     trace event at the injection point ([<phase>:<label>], or ["init"]
     before any event) — a function of the path, never of exploration
     order.  A fault site is [<step label>:<fault kind>].  Sites register
     where the checker *could* branch and record a hit where it *does*;
     a pruned crash branch registers without hitting, so reduced
     strategies report exactly which crash points they relied on pruning
     for. *)
  let phase_name = function Main -> "main" | Recovery -> "recovery" | Post -> "post" in
  let crash_site = function
    | [] -> "init"
    | e :: _ -> phase_name e.ev_phase ^ ":" ^ e.ev_label
  in
  let cov_crash_hit trace =
    if Obs.Coverage.enabled () then Obs.Coverage.hit Obs.Coverage.Crash (crash_site trace)
  in
  let cov_crash_skip trace =
    if Obs.Coverage.enabled () then
      Obs.Coverage.register Obs.Coverage.Crash (crash_site trace);
    if Explore.Prov.enabled () then
      Explore.Prov.record Explore.Prov.Clean_crash ~site:(crash_site trace) ()
  in
  let fault_site label kind = label ^ ":" ^ Sched.Fault.kind_name kind in
  let cov_fault_sites label kinds =
    if Obs.Coverage.enabled () then
      List.iter
        (fun kind -> Obs.Coverage.register Obs.Coverage.Fault (fault_site label kind))
        kinds
  in
  let cov_fault_hit label kind =
    if Obs.Coverage.enabled () then
      Obs.Coverage.hit Obs.Coverage.Fault (fault_site label kind)
  in

  (* Process all finished threads' responses eagerly, invoking each thread's
     next operation as the previous one completes.  Span marks are stripped
     here: the checker explores each step along many branches, so per-branch
     span events would be meaningless — marks only matter to the runner. *)
  let rec settle lives cands trace =
    let lives =
      List.map (fun l -> { l with prog = Sched.Prog.strip_marks l.prog }) lives
    in
    let rec find acc = function
      | [] -> None
      | ({ prog = Sched.Prog.Done v; _ } as l) :: rest -> Some (List.rev_append acc rest, l, v)
      | l :: rest -> find (l :: acc) rest
    in
    match find [] lives with
    | None -> (lives, cands, trace)
    | Some (others, l, v) ->
      let trace = ev_return l.tid l.call v :: trace in
      let cands = tk.respond l.tid v trace cands in
      (match l.rest with
      | [] -> settle others cands trace
      | (call', prog') :: rest' ->
        let tid = fresh_tid () in
        let live' = { tid; call = call'; prog = prog'; rest = rest' } in
        let trace = ev_invoke tid call' :: trace in
        settle (live' :: others) (tk.add_pending tid call' cands) trace)
  in

  (* The step budget is shared between the splitting phase and each work
     item ([step_base] carries phase 1's spend into the items), so a
     parallel run's per-item budget matches what the item's subtree would
     have had left sequentially at its emission point. *)
  let bump_steps () =
    ctr.c_steps <- ctr.c_steps + 1;
    if step_base + ctr.c_steps > cfg.step_budget then raise Budget;
    if Obs.Progress.enabled () && ctr.c_steps land 4095 = 0 then
      Obs.Progress.tick ~executions:ctr.c_executions ~steps:(step_base + ctr.c_steps)
        ~frontier:ctr.c_frontier ~fault_schedule:ctr.c_fault_scheds
        ?deadline_us:deadline ();
    (* The wall clock is polled once per 1024 steps: cheap enough to leave
       on, coarse enough that a check never overshoots by much. *)
    match deadline with
    | Some t when ctr.c_steps land 1023 = 0 && Obs.Trace.now_us () > t ->
      raise Budget
    | Some _ | None -> ()
  in

  (* Fault bookkeeping.  [fpath] is the fault schedule of the current DFS
     path, newest injection first, as (site, kind): fault-eligible steps
     are numbered 0, 1, … per path in commit order, mirroring the runner's
     oracle.  Distinct non-empty schedules across completed executions
     feed the [fault_schedules] stat; the seen-table is shared across the
     check's instances (mutex-guarded), so the count is the cardinality of
     the union however the tree was partitioned. *)
  let fpath = ref [] in
  let in_fault_branch ~live site kind f =
    if live then begin
      ctr.c_faults <- ctr.c_faults + 1;
      Obs.Trace.instant ~cat:"fault" "fault_injection"
    end;
    fpath := (site, kind) :: !fpath;
    Fun.protect ~finally:(fun () -> fpath := List.tl !fpath) f
  in
  let record_execution () =
    ctr.c_executions <- ctr.c_executions + 1;
    match !fpath with
    | [] -> ()
    | path ->
      let key =
        String.concat ";"
          (List.rev_map
             (fun (site, kind) ->
               Printf.sprintf "%d:%s" site (Sched.Fault.kind_name kind))
             path)
      in
      Mutex.lock sched_lock;
      if not (Hashtbl.mem sched_seen key) then begin
        Hashtbl.add sched_seen key ();
        ctr.c_fault_scheds <- ctr.c_fault_scheds + 1
      end;
      Mutex.unlock sched_lock
  in
  (* Retry loops announce themselves by labelling their steps "retry…";
     counting committed retry steps gives the [retries_observed] stat. *)
  let note_label label =
    if String.length label >= 5 && String.sub label 0 5 = "retry" then
      ctr.c_retries <- ctr.c_retries + 1
    else if String.length label >= 13 && String.sub label 0 13 = "rpc_cache_hit" then
      ctr.c_cache_hits <- ctr.c_cache_hits + 1
  in

  (* A path that reaches spec-level undefined behaviour is vacuously
     correct: the spec constrains nothing for such clients (§8.3). *)
  let vacuous_ok f = try f () with Vacuous -> ctr.c_vacuous <- ctr.c_vacuous + 1 in

  (* Thread ids must be a function of the path, not of how many sibling
     paths the DFS visited first: each exploration subtree restores the
     tid counter on exit, so the rendered counterexample for a given path
     is identical whichever strategy (or sibling order) found it. *)
  let scoped_tids f =
    let saved = !next_tid in
    Fun.protect ~finally:(fun () -> next_tid := saved) f
  in

  (* Run the post-phase probe operations sequentially (exploring any
     nondeterminism in their actions), then count one finished execution. *)
  let rec run_post w cands trace ops =
    scoped_tids @@ fun () ->
    match ops with
    | [] -> record_execution ()
    | (call, prog) :: rest ->
      let tid = fresh_tid () in
      let cands = tk.add_pending tid call cands in
      let rec go w prog trace =
        match prog with
        | Sched.Prog.Mark (_, p) -> go w p trace
        | Sched.Prog.Done v ->
          let trace = ev_post_return tid call v :: trace in
          vacuous_ok (fun () ->
              let cands = tk.respond tid v trace cands in
              run_post w cands trace rest)
        | Sched.Prog.Atomic { label; action; k; _ } ->
          bump_steps ();
          (match action w with
          | Sched.Prog.Ub reason ->
            raise
              (Violation
                 (mk_failure
                    (Fmt.str "post op hit undefined behaviour at %s: %s" label reason)
                    trace))
          | Sched.Prog.Steps [] ->
            raise (Violation (mk_failure (Fmt.str "post op blocked at %s" label) trace))
          | Sched.Prog.Steps outs ->
            List.iter (fun (w', v) -> go w' (k v) (ev_pstep label :: trace)) outs)
      in
      go w prog trace
  in
  let timed_post w cands trace =
    timed_phase "post" (fun us -> ctr.c_post_us <- ctr.c_post_us +. us) (fun () ->
        run_post w cands trace cfg.post)
  in

  (* After recovery completes: one atomic spec crash transition; all
     operations still in flight at the crash are dropped (those that
     linearized keep their effect in the candidate state). *)
  let finish_recovery w cands trace =
    run_post w (tk.crash_cands trace cands) trace cfg.post
  in

  (* Recovery runs single-threaded; it may crash and restart (idempotence,
     §5.5).  [crashes] counts injected crashes on this path. *)
  let rec run_recovery w cands crashes trace =
    let rec go w prog crashes trace =
      (* marks are instantaneous annotations: consume them before branching
         so the crash opportunity at this world is explored exactly once *)
      let prog = Sched.Prog.strip_marks prog in
      (* crash-during-recovery branch *)
      if crashes < cfg.max_crashes then begin
        ctr.c_crashes <- ctr.c_crashes + 1;
        Obs.Trace.instant ~cat:"crash" "crash_injection";
        cov_crash_hit trace;
        run_recovery (cfg.crash_world w) cands (crashes + 1)
          (ev_crash ~during_recovery:true :: trace)
      end;
      match prog with
      | Sched.Prog.Mark _ -> assert false (* stripped above *)
      | Sched.Prog.Done _ -> finish_recovery w cands trace
      | Sched.Prog.Atomic { label; action; k; _ } ->
        bump_steps ();
        (match action w with
        | Sched.Prog.Ub reason ->
          raise
            (Violation
               (mk_failure
                  (Fmt.str "recovery hit undefined behaviour at %s: %s" label reason)
                  trace))
        | Sched.Prog.Steps [] ->
          raise (Violation (mk_failure (Fmt.str "recovery blocked at %s" label) trace))
        | Sched.Prog.Steps outs ->
          List.iter (fun (w', v) -> go w' (k v) crashes (ev_rstep label :: trace)) outs)
    in
    scoped_tids (fun () -> go w cfg.recovery crashes trace)
  in
  let timed_recovery w cands crashes trace =
    timed_phase "recovery" (fun us -> ctr.c_recovery_us <- ctr.c_recovery_us +. us)
      (fun () -> run_recovery w cands crashes trace)
  in

  (* A thread's continuation identity: MD5 over the structural serialization
     of (current call, program position, remaining ops), with [Closures] so
     the program's continuation closures — code pointer plus captured
     environment — serialize too.  Equal keys mean structurally identical
     continuations, hence identical future behaviour; distinct keys for
     behaviourally equal threads only cost pruning, never soundness.  Code
     pointers are stable within a process (and across its domains), which is
     exactly the lifetime of the intern table's relevance. *)
  let thread_key l =
    Digest.to_hex (Digest.string (Marshal.to_string (l.call, l.prog, l.rest) [ Marshal.Closures ]))
  in

  (* Global fingerprint pruning (DESIGN.md S21): at a settled node, digest
     everything the subtree is a function of; if this instance has explored
     an equal digest before, the whole subtree (crash branch included) is
     redundant.  Naive strategy only — under DPOR the backtrack sets of the
     pruned path's nodes would be lost. *)
  let fp_prune w lives cands crashes fused fsite =
    match fp with
    | None -> false
    | Some (symmetry, key_prefix) ->
      let st =
        {
          Fingerprint.f_world = Fmt.str "%a" cfg.pp_world w;
          f_cands =
            List.map
              (fun c ->
                {
                  Fingerprint.f_state = Fmt.str "%a" spec.Spec.pp_state c.st;
                  f_pend =
                    List.map
                      (fun p ->
                        {
                          Fingerprint.f_ptid = p.ptid;
                          f_op = p.pcall.Spec.op;
                          f_args = List.map vstr p.pcall.Spec.args;
                          f_result = Option.map vstr p.result;
                        })
                      c.pend;
                })
              cands;
          f_phase = "main";
          f_crashes = crashes;
          f_fused = fused;
          f_fsite = fsite;
          f_threads =
            List.map
              (fun l -> { Fingerprint.f_tid = l.tid; f_class = thread_key l; f_hist = [] })
              (List.sort (fun a b -> Int.compare a.tid b.tid) lives);
        }
      in
      let t, _fresh = Fingerprint.digest ~symmetry ?key_prefix st in
      let id = Fingerprint.id t in
      if Hashtbl.mem fp_seen id then begin
        ctr.c_fp_hits <- ctr.c_fp_hits + 1;
        true
      end
      else begin
        Hashtbl.add fp_seen id ();
        ctr.c_fp_misses <- ctr.c_fp_misses + 1;
        false
      end
  in

  (* Pop the next replayed branch index, if any.  [None] means this node is
     explored live. *)
  let pop_replay () =
    match !replay with
    | [] -> None
    | i :: rest ->
      replay := rest;
      Some i
  in

  (* Main exploration: interleave threads; crash at any point; while the
     fault budget [fused < fault_budget] lasts, every fault point also
     branches.  [depth] is the schedule depth of this path, tracked as a
     high-water mark; [fsite] numbers the fault-eligible steps committed on
     this path; [rpath] is the reversed branch-index path (maintained only
     when emitting work items). *)
  let rec explore w lives cands crashes trace depth fused fsite rpath =
    scoped_tids @@ fun () ->
    let sel = pop_replay () in
    let live = sel = None in
    match emit with
    | Some e when live && depth >= cutoff -> e (List.rev rpath)
    | _ ->
      counting := live;
      if live && depth > ctr.c_frontier then ctr.c_frontier <- depth;
      (match settle lives cands trace with
      | exception Vacuous -> if live then ctr.c_vacuous <- ctr.c_vacuous + 1
      | lives, cands, trace ->
        counting := true;
        if live && fp_prune w lives cands crashes fused fsite then ()
        else begin
          (* crash branch: a crash may strike at any point, including after
             all operations completed (durability of acknowledged writes).
             Never replayed: the instance that visits this node live owns
             it. *)
          if live && crashes < cfg.max_crashes then begin
            ctr.c_crashes <- ctr.c_crashes + 1;
            Obs.Trace.instant ~cat:"crash" "crash_injection";
            cov_crash_hit trace;
            vacuous_ok (fun () ->
                let sat = tk.saturate cands in
                timed_recovery (cfg.crash_world w) sat (crashes + 1)
                  (ev_crash ~during_recovery:false :: trace))
          end;
          if lives = [] then (if live then timed_post w cands trace)
          else begin
            (* schedule branches *)
            let ran = ref false in
            let brc = ref 0 in
            (try
               List.iteri
                 (fun i l ->
                   match l.prog with
                   | Sched.Prog.Done _ | Sched.Prog.Mark _ ->
                     assert false (* settled/stripped above *)
                   | Sched.Prog.Atomic { label; action; faults; k; _ } ->
                     (match action w with
                     | Sched.Prog.Ub reason ->
                       raise
                         (Violation
                            (mk_failure
                               (Fmt.str "thread %d hit undefined behaviour at %s: %s"
                                  l.tid label reason)
                               trace))
                     | Sched.Prog.Steps [] -> () (* blocked *)
                     | Sched.Prog.Steps outs ->
                       ran := true;
                       if live then begin
                         bump_steps ();
                         note_label label
                       end;
                       let flts = faults w in
                       if live then
                         cov_fault_sites label (List.map (fun (kd, _, _) -> kd) flts);
                       let fsite' = if flts <> [] then fsite + 1 else fsite in
                       let resume j v =
                         List.mapi
                           (fun j' l' -> if j = j' then { l' with prog = k v } else l')
                           lives
                       in
                       List.iter
                         (fun (w', v) ->
                           let idx = !brc in
                           incr brc;
                           let child () =
                             explore w' (resume i v) cands crashes
                               (ev_step l.tid label :: trace)
                               (depth + 1) fused fsite'
                               (if emitting then idx :: rpath else rpath)
                           in
                           match sel with
                           | None -> child ()
                           | Some s when s = idx ->
                             child ();
                             raise Break
                           | Some _ -> ())
                         outs;
                       (* fault branches, after the normal outcomes so the
                          first counterexample found is path-deterministic *)
                       if fused < fault_budget then
                         List.iter
                           (fun (kind, w', v) ->
                             let idx = !brc in
                             incr brc;
                             let child () =
                               if live then cov_fault_hit label kind;
                               in_fault_branch ~live fsite kind (fun () ->
                                   explore w' (resume i v) cands crashes
                                     (ev_fault l.tid label kind :: trace)
                                     (depth + 1) (fused + 1) fsite'
                                     (if emitting then idx :: rpath else rpath))
                             in
                             match sel with
                             | None -> child ()
                             | Some s when s = idx ->
                               child ();
                               raise Break
                             | Some _ -> ())
                           flts))
                 lives
             with Break -> ());
            if live && (not !ran) && cfg.fail_on_deadlock then
              raise
                (Violation
                   (mk_failure
                      (Fmt.str "deadlock: threads %s all blocked"
                         (String.concat ","
                            (List.map (fun l -> string_of_int l.tid) lives)))
                      trace))
          end
        end)
  in

  (* Partial-order-reduced exploration: Flanagan–Godefroid DPOR over thread
     steps, optional sleep sets, plus crash-point pruning.  Soundness rests
     on three conservative rules (cross-validated against [Naive] by the
     differential harness in test/test_explore.ml):
     - a crash branch is skipped only at "clean" nodes — the step into the
       node wrote no durable state ([dirty] from its footprint) and settling
       observed no response/invocation (trace unchanged) — so crashing here
       reaches exactly the recovery state and candidate set already explored
       at the nearest dirty ancestor;
     - a step is globally dependent (kept in order w.r.t. everything) if it
       writes durable state, has an [Unknown] footprint, or may complete its
       operation: responses and the invocations they trigger reorder the
       linearization obligations, so only footprint-disjoint steps strictly
       between those points commute;
     - threads blocked or unannotated degrade to naive exploration around
       them.

     Parallel mode adds a fourth, also conservative, rule: every node above
     the split cutoff explores ALL enabled steps (full backtrack set, no
     sleep) — so no deep race ever needs to add a backtrack point to a
     shallow node owned by another instance (the add would be a no-op
     anyway).  The shallow region loses some reduction; the subtrees keep
     full DPOR.  Within parallel mode the exploration is a fixed function
     of [split_depth], hence identical for every domain count. *)
  let explore_por ~sleep_sets w0 lives0 cands0 =
    let module E = Explore in
    let rec go w lives cands crashes trace depth fused fsite rpath ~dirty ~stack ~sleep =
      scoped_tids @@ fun () ->
      let sel = pop_replay () in
      let live = sel = None in
      match emit with
      | Some e when live && depth >= cutoff -> e (List.rev rpath)
      | _ ->
        (* conservative node: a shallow node in parallel mode (splitting
           live, or mirrored during item replay) *)
        let conservative = (emitting && live) || sel <> None in
        counting := live;
        if live && depth > ctr.c_frontier then ctr.c_frontier <- depth;
        (match settle lives cands trace with
        | exception Vacuous -> if live then ctr.c_vacuous <- ctr.c_vacuous + 1
        | lives, cands, trace' ->
          counting := true;
          let dirty = dirty || not (trace' == trace) in
          let trace = trace' in
          if live && crashes < cfg.max_crashes then begin
            if dirty then begin
              ctr.c_crashes <- ctr.c_crashes + 1;
              Obs.Trace.instant ~cat:"crash" "crash_injection";
              cov_crash_hit trace;
              vacuous_ok (fun () ->
                  let sat = tk.saturate cands in
                  timed_recovery (cfg.crash_world w) sat (crashes + 1)
                    (ev_crash ~during_recovery:false :: trace))
            end
            else begin
              ctr.c_crash_skips <- ctr.c_crash_skips + 1;
              cov_crash_skip trace
            end
          end;
          if lives = [] then (if live then timed_post w cands trace)
          else begin
            let infos =
              List.filter_map
                (fun l ->
                  match l.prog with
                  | Sched.Prog.Done _ | Sched.Prog.Mark _ ->
                    assert false (* settled/stripped above *)
                  | Sched.Prog.Atomic { label; fp; action; faults; k } ->
                    (match action w with
                    | Sched.Prog.Ub reason ->
                      raise
                        (Violation
                           (mk_failure
                              (Fmt.str "thread %d hit undefined behaviour at %s: %s"
                                 l.tid label reason)
                              trace))
                    | Sched.Prog.Steps [] -> None (* blocked *)
                    | Sched.Prog.Steps outs ->
                      let branches = List.map (fun (w', v) -> (w', k v)) outs in
                      let flts = faults w in
                      if live then
                        cov_fault_sites label (List.map (fun (kd, _, _) -> kd) flts);
                      let fault_branches =
                        if fused < fault_budget then
                          List.map (fun (kind, w', v) -> (kind, (w', k v))) flts
                        else []
                      in
                      let fp = fp w in
                      let responds =
                        List.exists
                          (fun (_, p) ->
                            match Sched.Prog.strip_marks p with
                            | Sched.Prog.Done _ -> true
                            | _ -> false)
                          branches
                      in
                      Some
                        { E.si_tid = l.tid; si_label = label; si_fp = fp;
                          (* a step whose fault branches will be explored is
                             globally dependent, like an [Unknown] footprint:
                             faulted and normal outcomes may diverge
                             arbitrarily, so it is never reordered *)
                          si_visible =
                            E.crash_relevant fp || responds || fault_branches <> [];
                          si_branches = branches;
                          si_faults = fault_branches;
                          si_fault_site = flts <> [] }))
                lives
            in
            match infos with
            | [] ->
              if live && cfg.fail_on_deadlock then
                raise
                  (Violation
                     (mk_failure
                        (Fmt.str "deadlock: threads %s all blocked"
                           (String.concat ","
                              (List.map (fun l -> string_of_int l.tid) lives)))
                        trace))
            | _ :: _ ->
              let node = E.node ~sleep:(if conservative then [] else sleep) infos in
              if conservative then
                node.E.n_backtrack <- List.map (fun si -> si.E.si_tid) infos;
              if not conservative then E.detect_races stack node;
              let resume si prog' =
                List.map
                  (fun l -> if l.tid = si.E.si_tid then { l with prog = prog' } else l)
                  lives
              in
              (match sel with
              | Some s ->
                (* replay: execute only the selected branch, with the node
                   mirrored on the stack so deep race detection sees the
                   same frames (its backtrack adds are no-ops here) *)
                let brc = ref 0 in
                (try
                   List.iter
                     (fun si ->
                       node.E.n_done <- si.E.si_tid :: node.E.n_done;
                       let fsite' = if si.E.si_fault_site then fsite + 1 else fsite in
                       List.iter
                         (fun (w', prog') ->
                           let idx = !brc in
                           incr brc;
                           if idx = s then begin
                             go w' (resume si prog') cands crashes
                               (ev_step si.E.si_tid si.E.si_label :: trace)
                               (depth + 1) fused fsite' rpath
                               ~dirty:(E.crash_relevant si.E.si_fp)
                               ~stack:({ E.f_node = node; f_step = si } :: stack)
                               ~sleep:[];
                             raise Break
                           end)
                         si.E.si_branches;
                       List.iter
                         (fun (kind, (w', prog')) ->
                           let idx = !brc in
                           incr brc;
                           if idx = s then begin
                             in_fault_branch ~live:false fsite kind (fun () ->
                                 go w' (resume si prog') cands crashes
                                   (ev_fault si.E.si_tid si.E.si_label kind :: trace)
                                   (depth + 1) (fused + 1) fsite' rpath ~dirty:true
                                   ~stack:({ E.f_node = node; f_step = si } :: stack)
                                   ~sleep:[]);
                             raise Break
                           end)
                         si.E.si_faults)
                     infos
                 with Break -> ())
              | None ->
                let explored = ref 0 and slept = ref 0 in
                let first_explored = ref None in
                let z = ref sleep in
                let brc = ref 0 in
                let rec drive () =
                  match E.next_candidate node with
                  | None -> ()
                  | Some si ->
                    node.E.n_done <- si.E.si_tid :: node.E.n_done;
                    if (not conservative) && sleep_sets && List.mem si.E.si_tid !z
                    then begin
                      incr slept;
                      ctr.c_sleep <- ctr.c_sleep + 1;
                      if E.Prov.enabled () then
                        E.Prov.record E.Prov.Sleep ~site:si.E.si_label
                          ?witness:!first_explored ();
                      drive ()
                    end
                    else begin
                      incr explored;
                      if !first_explored = None then first_explored := Some si.E.si_label;
                      bump_steps ();
                      note_label si.E.si_label;
                      let fsite' = if si.E.si_fault_site then fsite + 1 else fsite in
                      let child_sleep =
                        if conservative || not sleep_sets then []
                        else
                          List.filter
                            (fun tid ->
                              match
                                List.find_opt (fun q -> q.E.si_tid = tid) node.E.n_enabled
                              with
                              | Some q -> not (E.dependent q si)
                              | None -> false (* blocked or finished: wake it *))
                            !z
                      in
                      List.iter
                        (fun (w', prog') ->
                          let idx = !brc in
                          incr brc;
                          go w' (resume si prog') cands crashes
                            (ev_step si.E.si_tid si.E.si_label :: trace)
                            (depth + 1) fused fsite'
                            (if emitting then idx :: rpath else rpath)
                            ~dirty:(E.crash_relevant si.E.si_fp)
                            ~stack:({ E.f_node = node; f_step = si } :: stack)
                            ~sleep:child_sleep)
                        si.E.si_branches;
                      (* fault branches, after the normal outcomes; a torn
                         write persists a durable prefix, so fault children are
                         always crash-dirty *)
                      List.iter
                        (fun (kind, (w', prog')) ->
                          let idx = !brc in
                          incr brc;
                          cov_fault_hit si.E.si_label kind;
                          in_fault_branch ~live:true fsite kind (fun () ->
                              go w' (resume si prog') cands crashes
                                (ev_fault si.E.si_tid si.E.si_label kind :: trace)
                                (depth + 1) (fused + 1) fsite'
                                (if emitting then idx :: rpath else rpath)
                                ~dirty:true
                                ~stack:({ E.f_node = node; f_step = si } :: stack)
                                ~sleep:child_sleep))
                        si.E.si_faults;
                      if sleep_sets && not conservative then z := si.E.si_tid :: !z;
                      drive ()
                    end
                in
                drive ();
                let pruned = List.length infos - !explored - !slept in
                if pruned > 0 then begin
                  ctr.c_commut <- ctr.c_commut + pruned;
                  if E.Prov.enabled () then
                    List.iter
                      (fun si ->
                        if not (List.mem si.E.si_tid node.E.n_done) then
                          E.Prov.record E.Prov.Commutation ~site:si.E.si_label
                            ?witness:!first_explored ())
                      infos
                end)
          end)
    in
    (* [dirty = true] at the root: the crash before any step is always
       explored. *)
    go w0 lives0 cands0 0 [] 0 0 0 [] ~dirty:true ~stack:[] ~sleep:[]
  in

  let initial_lives, initial_cands =
    List.fold_left
      (fun (lives, cands) ops ->
        match ops with
        | [] -> (lives, cands)
        | (call, prog) :: rest ->
          let tid = fresh_tid () in
          ({ tid; call; prog; rest } :: lives, tk.add_pending tid call cands))
      ([], [ { st = spec.Spec.init; pend = [] } ])
      cfg.threads
  in
  let run () =
    match strategy with
    | Explore.Naive ->
      explore cfg.init_world (List.rev initial_lives) initial_cands 0 [] 0 0 0 []
    | Explore.Dpor ->
      explore_por ~sleep_sets:false cfg.init_world (List.rev initial_lives) initial_cands
    | Explore.Dpor_sleep ->
      explore_por ~sleep_sets:true cfg.init_world (List.rev initial_lives) initial_cands
  in
  match run () with
  | () -> I_ok
  | exception Violation f -> I_viol f
  | exception Budget -> I_budget

(* ------------------------------------------------------------------ *)
(* The exhaustive checker                                               *)
(* ------------------------------------------------------------------ *)

let check (type w s) ?(strategy = Explore.Naive) ?faults ?max_seconds ?domains
    ?(split_depth = 2) ?(fingerprint = false) ?(symmetry = false) ?key_prefix
    (cfg : (w, s) config) : result =
  if symmetry && not fingerprint then
    invalid_arg "Refinement.check: ~symmetry requires ~fingerprint:true";
  if fingerprint && strategy <> Explore.Naive then
    invalid_arg
      "Refinement.check: ~fingerprint requires the Naive strategy (global state \
       caching breaks DPOR backtrack-set computation; see DESIGN.md S21)";
  (match domains with
  | Some n when n < 1 -> invalid_arg "Refinement.check: domains must be >= 1"
  | _ -> ());
  if split_depth < 1 then invalid_arg "Refinement.check: split_depth must be >= 1";
  Obs.Metrics.inc Mx.checks;
  let fault_budget =
    match faults with Some n -> max 0 n | None -> cfg.fault_budget
  in
  let deadline =
    match (match max_seconds with Some _ as s -> s | None -> cfg.max_seconds) with
    | None -> None
    | Some s -> Some (Obs.Trace.now_us () +. (s *. 1e6))
  in
  let fp = if fingerprint then Some (symmetry, key_prefix) else None in
  let sched_seen : (string, unit) Hashtbl.t = Hashtbl.create 16 in
  let sched_lock = Mutex.create () in
  let run_one ~step_base ~cutoff ~emit ~replay_path ~ctr =
    run_instance cfg ~strategy ~fault_budget ~deadline ~step_base ~cutoff ~emit
      ~replay_path ~fp ~sched_seen ~sched_lock ~ctr
  in
  let t0 = Obs.Trace.now_us () in
  let r =
    timed_check "refinement.check" (fun () ->
        match domains with
        | None ->
          (* Sequential whole-run engine: the legacy checker, unchanged. *)
          let ctr = fresh_counters () in
          (match
             run_one ~step_base:0 ~cutoff:max_int ~emit:None ~replay_path:[] ~ctr
           with
          | I_ok -> Refinement_holds (snapshot ctr)
          | I_viol f -> Refinement_violated (f, snapshot ctr)
          | I_budget -> Budget_exhausted (snapshot ctr))
        | Some n ->
          Obs.Metrics.set Mx.domains_g (float_of_int n);
          (* Phase 1: sequential split.  Everything above [split_depth] is
             explored (and counted) here; each subtree root at the cutoff
             becomes a work item, in DFS order. *)
          let items_rev = ref [] in
          let p1 = fresh_counters () in
          let o1 =
            run_one ~step_base:0 ~cutoff:split_depth
              ~emit:(Some (fun path -> items_rev := path :: !items_rev))
              ~replay_path:[] ~ctr:p1
          in
          (match o1 with
          | I_budget ->
            (* The split phase itself blew the budget; items would only
               re-spend it. *)
            Budget_exhausted (snapshot p1)
          | _ ->
            let items = Array.of_list (List.rev !items_rev) in
            let n_items = Array.length items in
            Obs.Metrics.inc ~by:n_items Mx.work_items;
            let ctrs = Array.init n_items (fun _ -> fresh_counters ()) in
            let results = Array.make n_items I_ok in
            let next = Atomic.make 0 in
            let step_base = p1.c_steps in
            (* Every emitted item runs to completion even after another
               finds a violation: early cancellation would make the merged
               stats depend on timing.  The *winner* is chosen by item
               order below, never by finish order. *)
            let worker primary () =
              let rec loop () =
                let i = Atomic.fetch_and_add next 1 in
                if i < n_items then begin
                  if not primary then Obs.Metrics.inc Mx.steals;
                  results.(i) <-
                    run_one ~step_base ~cutoff:max_int ~emit:None
                      ~replay_path:items.(i) ~ctr:ctrs.(i);
                  loop ()
                end
              in
              loop ()
            in
            let n_workers = min n (max 1 n_items) in
            let doms =
              List.init (n_workers - 1) (fun _ ->
                  Domain.spawn (fun () -> worker false ()))
            in
            worker true ();
            List.iter Domain.join doms;
            let merged = p1 in
            Array.iter (fun c -> merge_into merged c) ctrs;
            let stats = snapshot merged in
            (* First counterexample wins, in sequential DFS order: every
               emitted item precedes the splitting phase's own outcome
               (emission stops at its raise), so scan items 0..n-1 first. *)
            let rec scan i =
              if i >= n_items then
                match o1 with
                | I_ok -> Refinement_holds stats
                | I_viol f -> Refinement_violated (f, stats)
                | I_budget -> assert false
              else
                match results.(i) with
                | I_viol f -> Refinement_violated (f, stats)
                | I_budget -> Budget_exhausted stats
                | I_ok -> scan (i + 1)
            in
            scan 0))
  in
  Obs.Metrics.add (Explore.strategy_us strategy) (Obs.Trace.now_us () -. t0);
  r

let check_exn ?strategy ?faults ?max_seconds ?domains ?split_depth ?fingerprint
    ?symmetry ?key_prefix cfg =
  let t0 = Obs.Trace.now_us () in
  match
    check ?strategy ?faults ?max_seconds ?domains ?split_depth ?fingerprint ?symmetry
      ?key_prefix cfg
  with
  | Refinement_holds stats -> stats
  | Refinement_violated (f, stats) ->
    failwith (Fmt.str "@[<v>Refinement_violated: %a@,stats: %a@]" pp_failure f pp_stats stats)
  | Budget_exhausted stats ->
    let elapsed_s = (Obs.Trace.now_us () -. t0) /. 1e6 in
    let max_s =
      match (match max_seconds with Some _ as s -> s | None -> cfg.max_seconds) with
      | Some s -> Fmt.str "%g" s
      | None -> "none"
    in
    failwith
      (Fmt.str
         "Budget_exhausted: step or wall-clock budget exceeded before the state space was covered after %.2fs (max_seconds=%s, step_budget=%d) (stats: %a)"
         elapsed_s max_s cfg.step_budget pp_stats stats)

(* ------------------------------------------------------------------ *)
(* The randomized checker                                               *)
(* ------------------------------------------------------------------ *)

(* One random walk through the schedule/outcome/crash space.  Same
   linearization bookkeeping as the exhaustive checker, but each choice
   point picks a single alternative.  Sound for bug-finding on instances
   too large to exhaust; a pass is evidence, not proof.

   Every schedule draws from its own RNG, seeded by [(seed, index)]: a
   failure tagged [seed=S schedule=I/N] replays from those numbers alone
   (see {!check_random_replay}), independent of the draws — schedule
   choices, outcome picks, crash coins during recovery — consumed by the
   preceding N-1 walks.  That per-walk isolation is also what makes
   [?domains] sound: walks share no RNG, tid counter, or tracker state, so
   they can run on any domain in any order and still produce the walk the
   seed names. *)
let check_random_walks (type w s) ~schedules ~first ~last ~seed ~crash_prob ?domains
    (cfg : (w, s) config) : result =
  let spec = cfg.spec in
  Obs.Metrics.inc Mx.checks;
  (* A walker instance: private counters, tracker, RNG and tid counter.
     [walk i] runs schedule [i] from scratch; Violation/Budget escape to
     the caller. *)
  let make_walker (ctr : counters) =
    let tk = make_tracker spec ctr ~live:(ref true) in
    let current_rng = ref (Random.State.make [| seed; first |]) in
    let next_tid = ref 0 in
    let fresh_tid () =
      let t = !next_tid in
      incr next_tid;
      t
    in
    let bump_steps () =
      ctr.c_steps <- ctr.c_steps + 1;
      if ctr.c_steps > cfg.step_budget then raise Budget
    in
    let pick xs = List.nth xs (Random.State.int !current_rng (List.length xs)) in

    (* run a single program to completion with random outcome choices *)
    let run_solo ~what ~mk_ev w prog trace =
      let rec go w prog trace =
        match prog with
        | Sched.Prog.Mark (_, p) -> go w p trace
        | Sched.Prog.Done v -> (w, v, trace)
        | Sched.Prog.Atomic { label; action; k; _ } ->
          bump_steps ();
          (match action w with
          | Sched.Prog.Ub reason ->
            raise
              (Violation
                 (mk_failure
                    (Fmt.str "%s hit undefined behaviour at %s: %s" what label reason)
                    trace))
          | Sched.Prog.Steps [] ->
            raise (Violation (mk_failure (Fmt.str "%s blocked at %s" what label) trace))
          | Sched.Prog.Steps outs ->
            let w', v = pick outs in
            go w' (k v) (mk_ev label :: trace))
      in
      go w prog trace
    in

    let run_post w cands trace =
      let _, _ =
        List.fold_left
          (fun (w, cands) (call, prog) ->
            let tid = fresh_tid () in
            let cands = tk.add_pending tid call cands in
            let w, v, trace' = run_solo ~what:"post" ~mk_ev:ev_pstep w prog trace in
            let trace' = ev_post_return tid call v :: trace' in
            (w, tk.respond tid v trace' cands))
          (w, cands) cfg.post
      in
      ctr.c_executions <- ctr.c_executions + 1
    in
    let timed_post w cands trace =
      timed_phase "post" (fun us -> ctr.c_post_us <- ctr.c_post_us +. us) (fun () ->
          run_post w cands trace)
    in

    (* crash, then recovery (itself subject to random crashes), then the spec
       crash transition and the post probes *)
    let do_crash w cands crashes trace =
      ctr.c_crashes <- ctr.c_crashes + 1;
      Obs.Trace.instant ~cat:"crash" "crash_injection";
      let sat = tk.saturate cands in
      let rec recover w crashes trace =
        let rec go w prog trace =
          let prog = Sched.Prog.strip_marks prog in
          if crashes < cfg.max_crashes && Random.State.float !current_rng 1.0 < crash_prob
          then begin
            ctr.c_crashes <- ctr.c_crashes + 1;
            Obs.Trace.instant ~cat:"crash" "crash_injection";
            recover (cfg.crash_world w) (crashes + 1)
              (ev_crash ~during_recovery:true :: trace)
          end
          else
            match prog with
            | Sched.Prog.Mark _ -> assert false (* stripped above *)
            | Sched.Prog.Done _ -> (w, trace)
            | Sched.Prog.Atomic { label; action; k; _ } ->
              bump_steps ();
              (match action w with
              | Sched.Prog.Ub reason ->
                raise
                  (Violation
                     (mk_failure
                        (Fmt.str "recovery hit undefined behaviour at %s: %s" label reason)
                        trace))
              | Sched.Prog.Steps [] ->
                raise
                  (Violation (mk_failure (Fmt.str "recovery blocked at %s" label) trace))
              | Sched.Prog.Steps outs ->
                let w', v = pick outs in
                go w' (k v) (ev_rstep label :: trace))
        in
        go w cfg.recovery trace
      in
      let w, trace =
        timed_phase "recovery" (fun us -> ctr.c_recovery_us <- ctr.c_recovery_us +. us)
          (fun () ->
            recover (cfg.crash_world w) crashes (ev_crash ~during_recovery:false :: trace))
      in
      timed_post w (tk.crash_cands trace sat) trace
    in

    let walk_body () =
      let lives, cands =
        List.fold_left
          (fun (lives, cands) ops ->
            match ops with
            | [] -> (lives, cands)
            | (call, prog) :: rest ->
              let tid = fresh_tid () in
              ({ tid; call; prog; rest } :: lives, tk.add_pending tid call cands))
          ([], [ { st = spec.Spec.init; pend = [] } ])
          cfg.threads
      in
      let rec main w lives cands crashes trace depth =
        if depth > ctr.c_frontier then ctr.c_frontier <- depth;
        (* settle finished threads first *)
        let rec settle lives cands trace =
          let lives =
            List.map (fun l -> { l with prog = Sched.Prog.strip_marks l.prog }) lives
          in
          let rec find acc = function
            | [] -> None
            | ({ prog = Sched.Prog.Done v; _ } as l) :: rest ->
              Some (List.rev_append acc rest, l, v)
            | l :: rest -> find (l :: acc) rest
          in
          match find [] lives with
          | None -> (lives, cands, trace)
          | Some (others, l, v) ->
            let trace = ev_return l.tid l.call v :: trace in
            let cands = tk.respond l.tid v trace cands in
            (match l.rest with
            | [] -> settle others cands trace
            | (call', prog') :: rest' ->
              let tid = fresh_tid () in
              let live' = { tid; call = call'; prog = prog'; rest = rest' } in
              settle (live' :: others) (tk.add_pending tid call' cands)
                (ev_invoke tid call' :: trace))
        in
        let lives, cands, trace = settle lives cands trace in
        if lives = [] then
          if crashes < cfg.max_crashes && Random.State.float !current_rng 1.0 < crash_prob
          then do_crash w cands crashes trace
          else timed_post w cands trace
        else if
          crashes < cfg.max_crashes && Random.State.float !current_rng 1.0 < crash_prob
        then do_crash w cands crashes trace
        else begin
          (* collect the runnable threads as commit closures (the step's
             payload type must not escape the match arm) *)
          let steppable =
            List.concat
              (List.mapi
                 (fun i l ->
                   match l.prog with
                   | Sched.Prog.Done _ | Sched.Prog.Mark _ -> []
                   | Sched.Prog.Atomic { label; action; k; _ } -> (
                     match action w with
                     | Sched.Prog.Ub reason ->
                       raise
                         (Violation
                            (mk_failure
                               (Fmt.str "thread %d hit undefined behaviour at %s: %s" l.tid
                                  label reason)
                               trace))
                     | Sched.Prog.Steps [] -> []
                     | Sched.Prog.Steps outs ->
                       [ (fun () ->
                           let w', v = pick outs in
                           let lives' =
                             List.mapi
                               (fun j l' -> if i = j then { l' with prog = k v } else l')
                               lives
                           in
                           (w', lives', ev_step l.tid label :: trace)) ]))
                 lives)
          in
          match steppable with
          | [] ->
            if crashes < cfg.max_crashes then do_crash w cands crashes trace
            else if cfg.fail_on_deadlock then
              raise
                (Violation
                   (mk_failure
                      (Fmt.str "deadlock: threads %s all blocked"
                         (String.concat ","
                            (List.map (fun l -> string_of_int l.tid) lives)))
                      trace))
            else ()
          | _ ->
            bump_steps ();
            let w', lives', trace' = (pick steppable) () in
            main w' lives' cands crashes trace' (depth + 1)
        end
      in
      main cfg.init_world (List.rev lives) cands 0 [] 0
    in
    (* The schedule index makes a randomized counterexample reproducible:
       walk [i] draws only from [Random.State.make [| seed; i |]], so the
       failing schedule replays from [seed=.. schedule=i/n] alone. *)
    fun i ->
      current_rng := Random.State.make [| seed; i |];
      next_tid := 0;
      try walk_body () with Vacuous -> ctr.c_vacuous <- ctr.c_vacuous + 1
  in
  let prefix i reason = Fmt.str "[seed=%d schedule=%d/%d] %s" seed i schedules reason in
  match domains with
  | None ->
    (* Legacy sequential run: shared counters, cumulative step budget,
       stop at the first failing walk. *)
    let ctr = fresh_counters () in
    let walk = make_walker ctr in
    let sched_idx = ref 0 in
    timed_check "refinement.check_random" (fun () ->
        match
          for i = first to last do
            sched_idx := i;
            walk i
          done
        with
        | () -> Refinement_holds (snapshot ctr)
        | exception Violation f ->
          Refinement_violated ({ f with reason = prefix !sched_idx f.reason }, snapshot ctr)
        | exception Budget -> Budget_exhausted (snapshot ctr))
  | Some n ->
    if n < 1 then invalid_arg "Refinement.check_random: domains must be >= 1";
    (* Parallel walks: each walk gets its own counters and step budget and
       always runs (no early stop), so merged stats and the reported
       failure — the lowest-index failing walk — are identical for every
       domain count. *)
    timed_check "refinement.check_random" (fun () ->
        Obs.Metrics.set Mx.domains_g (float_of_int n);
        let n_walks = last - first + 1 in
        let ctrs = Array.init n_walks (fun _ -> fresh_counters ()) in
        let outcomes = Array.make n_walks I_ok in
        let next = Atomic.make 0 in
        let worker primary () =
          let rec loop () =
            let j = Atomic.fetch_and_add next 1 in
            if j < n_walks then begin
              if not primary then Obs.Metrics.inc Mx.steals;
              let walk = make_walker ctrs.(j) in
              outcomes.(j) <-
                (match walk (first + j) with
                | () -> I_ok
                | exception Violation f -> I_viol f
                | exception Budget -> I_budget);
              loop ()
            end
          in
          loop ()
        in
        let n_workers = min n (max 1 n_walks) in
        let doms =
          List.init (n_workers - 1) (fun _ -> Domain.spawn (fun () -> worker false ()))
        in
        worker true ();
        List.iter Domain.join doms;
        let merged = fresh_counters () in
        Array.iter (fun c -> merge_into merged c) ctrs;
        let stats = snapshot merged in
        let rec scan j =
          if j >= n_walks then Refinement_holds stats
          else
            match outcomes.(j) with
            | I_viol f ->
              Refinement_violated ({ f with reason = prefix (first + j) f.reason }, stats)
            | I_budget -> Budget_exhausted stats
            | I_ok -> scan (j + 1)
        in
        scan 0)

let check_random ?(schedules = 200) ?(seed = 17) ?(crash_prob = 0.05) ?domains cfg =
  check_random_walks ~schedules ~first:1 ~last:schedules ~seed ~crash_prob ?domains cfg

let check_random_replay ?(schedules = 200) ?(seed = 17) ?(crash_prob = 0.05) ?domains
    ~schedule cfg =
  if schedule < 1 || schedule > schedules then
    invalid_arg "Refinement.check_random_replay: schedule out of range";
  check_random_walks ~schedules ~first:schedule ~last:schedule ~seed ~crash_prob ?domains
    cfg
