(** The Perennial proof-outline checker: Table 1 as executable rules.

    An *outline* is a proof script for one operation (or for recovery): a
    sequence of physical commands (lock, durable read/write, memory access)
    and ghost commands (open/close a crash invariant, simulate a spec step,
    synthesize a lease, take the spec crash step).  The checker executes the
    script symbolically over {!Seplogic.Assertion} heaps and enforces:

    - {b lease rule} (§5.3): a durable write needs both the master copy and
      the lease, and updates both; masters and leases at the same location
      agree (camera validity), which the checker saturates as pure facts;
    - {b lease synthesis} (§5.3): only recovery may mint a fresh lease, from
      a bare master copy;
    - {b crash invariants} (§5.1): invariants may be opened only around a
      single physical step and must be re-established when closed; their
      definitions may mention only durable capabilities (crash invariance);
    - {b versioned memory} (§5.2): on entry to recovery all volatile
      capabilities (points-to, leases, receipts) are gone — the version-
      bump's observable effect — and the crash invariant must still be
      establishable after every recovery step (idempotence, §5.5);
    - {b recovery helping} (§5.4): [j ⤇ op] tokens are durable, may be
      stored in crash invariants, and recovery may [Simulate] them to
      complete crashed operations;
    - {b refinement} (§4): [Simulate] consumes [j ⤇ op], applies the
      operation's symbolic transition to the [σ] cells (which must be at
      hand, i.e. inside an opened invariant), and produces [j ⤇ ret v];
      the operation outline must end owning [j ⤇ ret] at the declared
      return value.

    [check_system] bundles the per-operation obligations, the recovery
    obligation and the syntactic side conditions — the premises of
    Theorem 2.  The {!Refinement} checker independently validates the
    *conclusion* of that theorem on finite instances. *)

module A = Seplogic.Assertion
module Sv = Seplogic.Sval
module Pu = Seplogic.Pure

(* ------------------------------------------------------------------ *)
(* System description                                                  *)
(* ------------------------------------------------------------------ *)

type sym_op = {
  op_name : string;
  sym_apply :
    lookup:(string -> Sv.t option) ->
    Sv.t list ->
    ((string * Sv.t) list * Sv.t, string) result;
      (** abstract transition on the [σ] cells: given the call's arguments
          and a reader for current cell values, return the cell updates and
          the return value (or an error for a malformed instantiation) *)
}

type system = {
  sys_name : string;
  ops : sym_op list;
  crash_cells : lookup:(string -> Sv.t option) -> (string * Sv.t) list;
      (** the spec crash transition, as cell updates (empty = crash loses
          nothing) *)
  lock_invs : (int * A.t) list;  (** lock id -> lock invariant *)
  crash_invs : (string * A.t) list;  (** named crash invariants *)
}

let find_op sys name = List.find_opt (fun o -> String.equal o.op_name name) sys.ops

(* ------------------------------------------------------------------ *)
(* Outline language                                                    *)
(* ------------------------------------------------------------------ *)

type cmd =
  | Acquire of int
  | Release of int
  | Write_durable of { loc : string; value : Sv.t }
  | Read_durable of { loc : string; bind : string }
  | Write_mem of { ptr : string; value : Sv.t }
  | Read_mem of { ptr : string; bind : string }
  | Alloc_mem of { ptr : string; value : Sv.t }
  | Open_inv of { name : string; body : cmd list }
      (** open a crash invariant around one atomic step *)
  | Atomic of cmd list
      (** group one physical step with its ghost steps (recovery) *)
  | Simulate of { op : string; args : Sv.t list; bind_ret : string }
      (** ghost: consume a matching [j ⤇ op] token, step the [σ] cells,
          produce [j ⤇ ret] *)
  | Crash_step  (** ghost: [⤇Crashing] to [⤇Done], applying [crash_cells] *)
  | Synthesize of string  (** ghost, recovery only: master -> master ∗ lease *)
  | Choice of cmd list list
      (** proof-level alternation: the first verifying alternative is used
          (case analysis whose cases need different ghost steps) *)
  | Case_eq of Sv.t * Sv.t
      (** classical case split: the remainder of the outline is checked
          twice, once assuming the values equal and once assuming them
          distinct.  Needed to pick the right crash-invariant disjunct when
          it is guarded by a (dis)equality, as in the paper's "if v1 ≠ v2
          then j ⤇ Write(a, v1)" (§5.4). *)
  | Assert_eq of Sv.t * Sv.t
      (** proof assertion: the pure facts must entail the equality.  Used
          inside [Choice] alternatives to make the wrong case fail early
          rather than at the postcondition. *)

type op_outline = {
  o_op : string;
  o_args : Sv.t list;
  o_ret : Sv.t;
  o_body : cmd list;
}

type recovery_outline = { r_body : cmd list }

(* ------------------------------------------------------------------ *)
(* Checking                                                            *)
(* ------------------------------------------------------------------ *)

exception Reject of string

let rejectf fmt = Fmt.kstr (fun s -> raise (Reject s)) fmt

type report = { branches : int; cmds_checked : int }

let pp_report ppf r =
  Fmt.pf ppf "branches=%d commands=%d" r.branches r.cmds_checked

type result = Accepted of report | Rejected of string

let pp_result ppf = function
  | Accepted r -> Fmt.pf ppf "accepted (%a)" pp_report r
  | Rejected why -> Fmt.pf ppf "REJECTED: %s" why

type mode = Normal | Recovery

type st = { heap : A.heap; held : int list }

(* Fresh rigid variables for existentials introduced into the symbolic
   heap (lock/crash invariant contents). *)
let gensym_counter = ref 0

let rename_fresh (h : A.heap) : A.heap =
  let vars = A.vars_of_heap h in
  let subst =
    List.fold_left
      (fun s x ->
        incr gensym_counter;
        Sv.Subst.add x (Sv.Var (Printf.sprintf "%s~%d" x !gensym_counter)) s)
      Sv.Subst.empty vars
  in
  A.apply_heap subst h

(* Camera validity of the lease algebra: a master and a lease for the same
   location agree on the value.  Saturated into pure facts whenever heaps
   are composed. *)
let saturate_agreement (h : A.heap) : A.heap =
  let masters =
    List.filter_map
      (function A.Master { loc; value } -> Some (loc, value) | _ -> None)
      h.atoms
  in
  let extra =
    List.filter_map
      (function
        | A.Lease { loc; value } -> (
          match List.assoc_opt loc masters with
          | Some mv when not (Sv.equal mv value) -> Some (Pu.eq mv value)
          | _ -> None)
        | _ -> None)
      h.atoms
  in
  { h with pures = extra @ h.pures }

let count_physical cmds =
  let rec atom_count = function
    | Write_durable _ | Read_durable _ | Write_mem _ | Read_mem _ | Alloc_mem _ -> 1
    | Simulate _ | Crash_step | Synthesize _ | Case_eq _ | Assert_eq _ -> 0
    | Choice alts ->
      List.fold_left (fun m alt -> max m (List.fold_left (fun a c -> a + atom_count c) 0 alt)) 0 alts
    | Acquire _ | Release _ | Open_inv _ | Atomic _ -> 1000 (* disallowed inside atomic blocks *)
  in
  List.fold_left (fun a c -> a + atom_count c) 0 cmds

let replace_atom ~what ~err h mk =
  match A.take_atom what h with
  | Some (old, h') -> (old, A.add_atom (mk old) h')
  | None -> rejectf "%s" err

(* Find a spec token matching [op]/[args] under the heap's pure facts. *)
let find_matching_tok op args h =
  let candidates =
    List.filter_map
      (function
        | A.Spec_tok { j; op = o; args = a } when String.equal o op && List.length a = List.length args ->
          Some (j, a)
        | _ -> None)
      h.A.atoms
  in
  List.find_opt
    (fun (_, a) -> Pu.entails_all h.A.pures (List.map2 Pu.eq args a))
    candidates

let check_crash_inv_durable sys =
  List.iter
    (fun (name, disjuncts) ->
      List.iter
        (fun (d : A.heap) ->
          List.iter
            (fun atom ->
              if not (A.durable atom) then
                rejectf
                  "crash invariant %s mentions volatile capability %a (crash-invariance side condition, §5.5)"
                  name A.pp_atom atom)
            d.A.atoms)
        disjuncts)
    sys.crash_invs

(* Prefix a heap's variables so that differently-named invariants never
   alias each other's existentials when starred into a combination. *)
let qualify_vars prefix (h : A.heap) : A.heap =
  let subst =
    List.fold_left
      (fun s x -> Sv.Subst.add x (Sv.Var (prefix ^ "." ^ x)) s)
      Sv.Subst.empty (A.vars_of_heap h)
  in
  A.apply_heap subst h

(* Star together one disjunct choice per named invariant, in all
   combinations, with per-invariant variable namespaces. *)
let inv_combinations invs : A.heap list =
  List.fold_left
    (fun acc (name, disjuncts) ->
      List.concat_map
        (fun h -> List.map (fun d -> A.star h (qualify_vars name d)) disjuncts)
        acc)
    [ A.emp ] invs

(* The combined crash invariant, as the product of per-name disjunct
   choices (branching).  Used for the idempotence check and for recovery's
   initial heap. *)
let crash_inv_combinations sys : A.heap list = inv_combinations sys.crash_invs

(* Check (without consuming) that the heap re-establishes every crash
   invariant simultaneously — the recovery idempotence obligation. *)
let check_idempotence sys (h : A.heap) =
  let ok =
    List.exists
      (fun combo -> A.match_heap ~scrutinee:h ~pattern:combo () <> None)
      (crash_inv_combinations sys)
  in
  if not ok then
    rejectf "crash invariant not re-establishable mid-recovery (idempotence, §5.5): %a"
      A.pp_heap h

let checked = ref 0

(* Observability: one pre-resolved counter per outline rule, bumped as the
   rule fires in [step]; obligation-level counters bumped in [run_check]
   and [check_system]. *)
module Mx = struct
  open Obs.Metrics

  let rule name = counter ~labels:[ ("rule", name) ] "perennial_outline_rule_applications_total"
  let acquire = rule "acquire"
  let release = rule "release"
  let write_durable = rule "write_durable"
  let read_durable = rule "read_durable"
  let write_mem = rule "write_mem"
  let read_mem = rule "read_mem"
  let alloc_mem = rule "alloc_mem"
  let open_inv = rule "open_inv"
  let atomic = rule "atomic"
  let simulate = rule "simulate"
  let crash_step = rule "crash_step"
  let synthesize = rule "synthesize"
  let choice = rule "choice"
  let case_eq = rule "case_eq"
  let assert_eq = rule "assert_eq"
  let obligations = counter "perennial_outline_obligations_total"
  let accepted = counter "perennial_outline_accepted_total"
  let rejected = counter "perennial_outline_rejected_total"
  let branches = counter "perennial_outline_branches_total"
  let cmds = counter "perennial_outline_cmds_checked_total"
end

let rule_counter = function
  | Acquire _ -> Mx.acquire
  | Release _ -> Mx.release
  | Write_durable _ -> Mx.write_durable
  | Read_durable _ -> Mx.read_durable
  | Write_mem _ -> Mx.write_mem
  | Read_mem _ -> Mx.read_mem
  | Alloc_mem _ -> Mx.alloc_mem
  | Open_inv _ -> Mx.open_inv
  | Atomic _ -> Mx.atomic
  | Simulate _ -> Mx.simulate
  | Crash_step -> Mx.crash_step
  | Synthesize _ -> Mx.synthesize
  | Choice _ -> Mx.choice
  | Case_eq _ -> Mx.case_eq
  | Assert_eq _ -> Mx.assert_eq

(* A symbolic state whose pure facts are contradictory, or that owns two
   copies of an exclusive capability, describes an unreachable execution:
   the branch is vacuously verified. *)
let vacuous_state (st : st) =
  Pu.inconsistent st.heap.A.pures || A.heap_invalid st.heap

let rec exec sys mode ~toplevel (st : st) (cmds : cmd list) : st list =
  match cmds with
  | [] -> [ st ]
  | cmd :: rest ->
    incr checked;
    Obs.Metrics.inc (rule_counter cmd);
    if vacuous_state st then [ st ]
    else begin
      let posts = step sys mode ~toplevel st cmd in
      if mode = Recovery && toplevel then
        List.iter
          (fun s -> if not (vacuous_state s) then check_idempotence sys s.heap)
          posts;
      List.concat_map (fun s -> exec sys mode ~toplevel s rest) posts
    end

and step sys mode ~toplevel (st : st) (cmd : cmd) : st list =
  match cmd with
  | Acquire l ->
    if List.mem l st.held then rejectf "lock %d re-acquired (self-deadlock)" l;
    let inv =
      match List.assoc_opt l sys.lock_invs with
      | Some i -> i
      | None -> rejectf "no lock invariant declared for lock %d" l
    in
    List.map
      (fun d ->
        let d = rename_fresh d in
        { heap = saturate_agreement (A.star st.heap d); held = l :: st.held })
      inv
  | Release l ->
    if not (List.mem l st.held) then rejectf "lock %d released but not held" l;
    let inv = List.assoc l sys.lock_invs in
    (match A.entails ~scrutinee:st.heap ~pattern:inv () with
    | Some (_, { A.frame; _ }) ->
      [ { heap = { st.heap with atoms = frame }; held = List.filter (( <> ) l) st.held } ]
    | None ->
      rejectf "cannot re-establish lock invariant %d on release from %a" l A.pp_heap
        st.heap)
  | Write_durable { loc; value } ->
    let _, h =
      replace_atom
        ~what:(function A.Master { loc = l; _ } -> String.equal l loc | _ -> false)
        ~err:
          (Fmt.str "durable write to %s without the master copy (open the crash invariant)"
             loc)
        st.heap
        (fun _ -> A.master loc value)
    in
    let _, h =
      replace_atom
        ~what:(function A.Lease { loc = l; _ } -> String.equal l loc | _ -> false)
        ~err:(Fmt.str "durable write to %s without holding its lease (§5.3)" loc)
        h
        (fun _ -> A.lease loc value)
    in
    [ { st with heap = h } ]
  | Read_durable { loc; bind } ->
    let value =
      match A.find_lease loc st.heap with
      | Some v -> v
      | None -> (
        match A.find_master loc st.heap with
        | Some v -> v
        | None -> rejectf "durable read of %s without lease or master" loc)
    in
    [ { st with heap = A.add_pure (Pu.eq (Sv.var bind) value) st.heap } ]
  | Write_mem { ptr; value } ->
    let _, h =
      replace_atom
        ~what:(function A.Pts { ptr = p; _ } -> String.equal p ptr | _ -> false)
        ~err:(Fmt.str "store to %s without p ↦ v" ptr)
        st.heap
        (fun _ -> A.pts ptr value)
    in
    [ { st with heap = h } ]
  | Read_mem { ptr; bind } ->
    (match A.find_pts ptr st.heap with
    | Some v -> [ { st with heap = A.add_pure (Pu.eq (Sv.var bind) v) st.heap } ]
    | None -> rejectf "load from %s without p ↦ v" ptr)
  | Alloc_mem { ptr; value } ->
    if A.find_pts ptr st.heap <> None then rejectf "allocation reuses live pointer %s" ptr;
    [ { st with heap = A.add_atom (A.pts ptr value) st.heap } ]
  | Open_inv { name; body } ->
    if mode = Recovery then
      rejectf "recovery owns the crash invariant outright; Open_inv %s is meaningless" name;
    let inv =
      match List.assoc_opt name sys.crash_invs with
      | Some i -> i
      | None -> rejectf "unknown crash invariant %s" name
    in
    if count_physical body > 1 then
      rejectf "invariant %s opened across more than one atomic step" name;
    let close st' =
      if vacuous_state st' then st'
      else
        match A.entails ~scrutinee:st'.heap ~pattern:inv () with
        | Some (_, { A.frame; _ }) -> { st' with heap = { st'.heap with atoms = frame } }
        | None -> rejectf "cannot close crash invariant %s from %a" name A.pp_heap st'.heap
    in
    List.concat_map
      (fun d ->
        let d = rename_fresh d in
        let opened = { st with heap = saturate_agreement (A.star st.heap d) } in
        List.map close (exec sys mode ~toplevel:false opened body))
      inv
  | Atomic body ->
    if count_physical body > 1 then rejectf "Atomic block with more than one physical step";
    exec sys mode ~toplevel:false st body
  | Simulate { op; args; bind_ret } ->
    let sym =
      match find_op sys op with
      | Some s -> s
      | None -> rejectf "Simulate of unknown operation %s" op
    in
    (match find_matching_tok op args st.heap with
    | None ->
      rejectf "no %s(%a) token available to simulate" op (Fmt.list ~sep:Fmt.comma Sv.pp)
        args
    | Some (j, tok_args) ->
      let h =
        match
          A.take_atom
            (function
              | A.Spec_tok { j = j'; op = o; args = a } ->
                Sv.equal j' j && String.equal o op && a == tok_args
              | _ -> false)
            st.heap
        with
        | Some (_, h) -> h
        | None -> assert false
      in
      let lookup k = A.find_spec_cell k h in
      (match sym.sym_apply ~lookup tok_args with
      | Error e -> rejectf "simulation of %s failed: %s" op e
      | Ok (updates, ret) ->
        let h =
          List.fold_left
            (fun h (k, v) ->
              let _, h =
                replace_atom
                  ~what:(function A.Spec_cell { key; _ } -> String.equal key k | _ -> false)
                  ~err:
                    (Fmt.str
                       "simulation updates σ[%s] but that cell is not at hand (open the invariant)"
                       k)
                  h
                  (fun _ -> A.spec_cell k v)
              in
              h)
            h updates
        in
        let h = A.add_atom (A.spec_ret j ret) h in
        let h = A.add_pure (Pu.eq (Sv.var bind_ret) ret) h in
        [ { st with heap = h } ]))
  | Crash_step ->
    (match A.take_atom (function A.Crash_tok A.Crashing -> true | _ -> false) st.heap with
    | None -> rejectf "Crash_step without the ⤇Crashing token"
    | Some (_, h) ->
      let lookup k = A.find_spec_cell k h in
      let updates = sys.crash_cells ~lookup in
      let h =
        List.fold_left
          (fun h (k, v) ->
            let _, h =
              replace_atom
                ~what:(function A.Spec_cell { key; _ } -> String.equal key k | _ -> false)
                ~err:(Fmt.str "crash transition updates missing cell σ[%s]" k)
                h
                (fun _ -> A.spec_cell k v)
            in
            h)
          h updates
      in
      [ { st with heap = A.add_atom (A.crash_tok A.Done_crash) h } ])
  | Synthesize loc ->
    if mode <> Recovery then
      rejectf "lease synthesis outside recovery (the version bump only happens on crash, §5.3)";
    (match A.find_master loc st.heap with
    | None -> rejectf "cannot synthesize a lease for %s without its master copy" loc
    | Some v ->
      if A.find_lease loc st.heap <> None then
        rejectf "lease for %s already exists; synthesis would duplicate it" loc;
      [ { st with heap = A.add_atom (A.lease loc v) st.heap } ])
  | Choice alts ->
    let rec first = function
      | [] -> rejectf "no alternative of a Choice verifies"
      | alt :: more -> (
        match exec sys mode ~toplevel st alt with
        | sts -> sts
        | exception Reject _ -> first more)
    in
    first alts
  | Case_eq (a, b) ->
    [ { st with heap = A.add_pure (Pu.eq a b) st.heap };
      { st with heap = A.add_pure (Pu.neq a b) st.heap } ]
  | Assert_eq (a, b) ->
    if Pu.entails st.heap.A.pures (Pu.eq a b) then [ st ]
    else rejectf "assertion %a = %a not provable" Sv.pp a Sv.pp b

(* ------------------------------------------------------------------ *)
(* Top-level obligations                                               *)
(* ------------------------------------------------------------------ *)

let run_check f =
  checked := 0;
  Obs.Metrics.inc Mx.obligations;
  match
    Obs.Trace.with_span ~cat:"outline" "outline.check" f
  with
  | branches ->
    Obs.Metrics.inc Mx.accepted;
    Obs.Metrics.inc ~by:branches Mx.branches;
    Obs.Metrics.inc ~by:!checked Mx.cmds;
    Accepted { branches; cmds_checked = !checked }
  | exception Reject why ->
    Obs.Metrics.inc Mx.rejected;
    Obs.Metrics.inc ~by:!checked Mx.cmds;
    Rejected why

(** Check one operation outline: from [j ⤇ op(args)], through the body,
    to [j ⤇ ret].  Lock invariants are implicit ambient state; crash
    invariants hold throughout by the open/close discipline. *)
let check_op sys (o : op_outline) : result =
  run_check (fun () ->
      if find_op sys o.o_op = None then rejectf "outline for unknown operation %s" o.o_op;
      let j = Sv.var "j_self" in
      let init =
        { heap = A.heap [ A.spec_tok j o.o_op o.o_args ]; held = [] }
      in
      let finals = exec sys Normal ~toplevel:true init o.o_body in
      List.iter
        (fun st ->
          if vacuous_state st then ()
          else begin
          if st.held <> [] then
            rejectf "operation finishes still holding locks %a"
              (Fmt.list ~sep:Fmt.comma Fmt.int) st.held;
          let rigid = A.vars_of_heap st.heap in
          let post = A.heap [ A.spec_ret j o.o_ret ] in
          match A.match_heap ~rigid ~scrutinee:st.heap ~pattern:post () with
          | Some _ -> ()
          | None ->
            rejectf "operation post-condition %a not derivable from %a" A.pp_heap post
              A.pp_heap st.heap
          end)
        finals;
      List.length finals)

(** Check the recovery outline: starting from the crash invariant's durable
    contents and [⤇Crashing] — everything volatile is gone, the observable
    effect of the version bump — recovery must re-establish every crash
    invariant and every lock invariant, and finish with [⤇Done]. *)
let check_recovery sys (r : recovery_outline) : result =
  run_check (fun () ->
      check_crash_inv_durable sys;
      let initials =
        List.map
          (fun combo ->
            let h = rename_fresh combo in
            { heap = A.add_atom (A.crash_tok A.Crashing) h; held = [] })
          (crash_inv_combinations sys)
      in
      let finals =
        List.concat_map (fun st -> exec sys Recovery ~toplevel:true st r.r_body) initials
      in
      List.iter
        (fun st ->
          if vacuous_state st then ()
          else begin
          if st.held <> [] then rejectf "recovery finishes holding locks";
          (* Re-establish all crash invariants and lock invariants, and own
             the ⤇Done token: the AbsR_{n+1} of Theorem 2. *)
          let lock_combos =
            inv_combinations
              (List.map (fun (l, d) -> (Printf.sprintf "lk%d" l, d)) sys.lock_invs)
          in
          let full_combos =
            List.concat_map
              (fun ci ->
                List.map
                  (fun li -> A.star (A.star ci li) (A.heap [ A.crash_tok A.Done_crash ]))
                  lock_combos)
              (crash_inv_combinations sys)
          in
          let ok =
            List.exists
              (fun combo -> A.match_heap ~scrutinee:st.heap ~pattern:combo () <> None)
              full_combos
          in
          if not ok then
            rejectf "recovery cannot re-establish the abstraction relation from %a"
              A.pp_heap st.heap
          end)
        finals;
      List.length finals)

(** All of Theorem 2's premises for a system: every operation outline, the
    recovery outline, and the syntactic crash-invariance side condition. *)
let check_system sys ~(op_outlines : op_outline list) ~(recovery : recovery_outline) :
    (string * result) list =
  let per_op =
    List.map (fun o -> (Printf.sprintf "op %s" o.o_op, check_op sys o)) op_outlines
  in
  per_op @ [ ("recovery", check_recovery sys recovery) ]
