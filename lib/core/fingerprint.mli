(** Hash-consed state fingerprints for the exhaustive checker.

    A fingerprint is a canonical rendering of everything that determines the
    {e future} of a naive-exploration node: the implementation world, the
    live linearization candidate set, the phase bookkeeping (crash budget
    used, fused fault mask, fault-site counter), and each live thread's
    continuation identity — an opaque class string (the checker passes a
    content digest of the thread's serialized continuation) plus an
    optional observation history.  Two nodes with
    equal fingerprints have identical subtrees, so the second one reached
    (along a different interleaving or fault schedule) can be pruned.
    {!Refinement.check}'s [~fingerprint] mode does exactly that; the
    soundness argument lives in DESIGN.md §S21.

    Renderings are kept as full strings and hash-consed in a global,
    sharded, mutex-protected intern table — so equality is exact string
    equality (no hash-collision unsoundness) while the per-node cost after
    interning is one int comparison.  Nothing here feeds [Hashtbl.hash] a
    boxed value whose identity could leak: digests are pure functions of
    the rendered content, stable across runs and domain counts.

    {b Process-local only.}  The continuation classes the checker feeds in
    ({!thr.f_class}) are MD5 digests of [Marshal]-serialized closures
    ([Marshal.Closures]): deterministic for structurally identical
    continuations {e within one process} — that determinism is pinned by
    the regression test in [test/test_wal.ml] — but the serialization
    embeds code pointers, so the digests are NOT comparable across
    processes or across builds of the binary.  Never persist fingerprints
    (or [id]s, or [key]s containing class digests) and reuse them in
    another process; the intern table and every digest must be recomputed
    per process.

    Symmetry reduction ([~symmetry]) additionally canonicalizes
    interchangeable thread ids (and, with [~key_prefix], renamable resource
    tokens such as KVS keys) before interning: threads are grouped by
    (class, history) and the canonical form is the lexicographic minimum of
    the rendering over all within-group permutations.  That quotient is
    sound only when the grouped threads are genuinely interchangeable —
    see the DESIGN.md note for the obligations the caller signs up for. *)

type pend = {
  f_ptid : int;  (** thread id owning the pending operation *)
  f_op : string;
  f_args : string list;
  f_result : string option;  (** linearized-but-unreturned result, if any *)
}

type cand = { f_state : string; f_pend : pend list }
(** One linearization candidate: rendered spec state + pending set. *)

type thr = {
  f_tid : int;
  f_class : string;
      (** opaque continuation identity; {!Refinement} passes the MD5 of the
          thread's serialized (call, program, remaining ops) — equal classes
          mean structurally identical continuations.  Closure serialization
          makes this identity process-local: see the module header *)
  f_hist : string list;  (** optional observation history, newest first *)
}

type state = {
  f_world : string;  (** implementation world, rendered *)
  f_cands : cand list;
  f_phase : string;
  f_crashes : int;  (** crash budget already consumed *)
  f_fused : int;  (** fault budget already consumed *)
  f_fsite : int;  (** canonical fault-site counter on this path *)
  f_threads : thr list;  (** live threads, in tid order *)
}

val rename_tokens : prefix:string -> string -> string
(** [rename_tokens ~prefix s] renames every occurrence of [prefix]
    immediately followed by digits to [prefix]{i n} where {i n} counts
    distinct tokens in first-occurrence order.  Idempotent, and invariant
    under any permutation of the original token names — the key-symmetry
    canonicalizer. *)

val canonical : ?symmetry:bool -> ?key_prefix:string -> state -> string
(** Deterministic rendering of the state.  With [~symmetry:true], the
    lexicographic minimum over all permutations of threads within equal
    (class, history) groups, with pending-entry thread ids remapped
    accordingly and [rename_tokens] applied (when [key_prefix] is given)
    to each candidate rendering before taking the minimum. *)

type t
(** An interned fingerprint: a small id plus the full canonical string. *)

val digest : ?symmetry:bool -> ?key_prefix:string -> state -> t * bool
(** Canonicalize and intern.  The boolean is [true] when the fingerprint
    was fresh (a miss: first time this canonical state is seen globally). *)

val intern : string -> t * bool
(** Intern an already-canonical string. *)

val id : t -> int
(** Dense intern id.  Stable within a run for a given string in sequential
    mode; under parallel exploration ids depend on interleaving (the
    {e string} is the portable identity — see {!key}). *)

val key : t -> string

val equal : t -> t -> bool
val compare : t -> t -> int

val table_size : unit -> int
(** Number of distinct fingerprints interned since the last {!reset}. *)

val reset : unit -> unit
(** Empty the global intern table (tests and per-check isolation). *)
