#!/usr/bin/env python3
"""Coverage-regression gate: compare a perennial-coverage/v1 report against
the committed baseline.

A change fails the gate when it *uncovers* previously-exercised evidence:
  - any site that was covered in the baseline is registered but unhit now;
  - the per-kind coverage ratio drops below the baseline's.

New sites (covered or not) and removed sites are reported but allowed —
growing the system legitimately adds sites, and the vacuity list in the
human report is where new never-exercised sites get triaged.  To accept an
intentional change, regenerate the baseline:

    dune exec bin/perennial_check.exe -- fs --coverage --coverage-out ci/coverage_baseline.json

Usage: check_coverage.py current.json baseline.json
"""
import json
import sys

KINDS = ("crash", "fault", "arm")


def fail(msg):
    print(f"check_coverage: FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def load(path):
    with open(path) as f:
        doc = json.load(f)
    if doc.get("schema") != "perennial-coverage/v1":
        fail(f"{path}: schema is {doc.get('schema')!r}, want 'perennial-coverage/v1'")
    return doc


def sites_of(doc, kind):
    return {s["id"]: s["hits"] for s in doc[kind]["sites"]}


def ratio(doc, kind):
    total = doc[kind]["total"]
    return doc[kind]["covered"] / total if total else 1.0


def main(current_path, baseline_path):
    cur = load(current_path)
    base = load(baseline_path)
    problems = []

    for kind in KINDS:
        cur_sites = sites_of(cur, kind)
        base_sites = sites_of(base, kind)

        for site, hits in base_sites.items():
            if hits > 0 and cur_sites.get(site, None) == 0:
                problems.append(
                    f"[{kind}] {site}: covered in baseline, registered but "
                    f"never exercised now"
                )

        r_cur, r_base = ratio(cur, kind), ratio(base, kind)
        if r_cur < r_base - 1e-9:
            problems.append(
                f"[{kind}] coverage ratio dropped: "
                f"{r_cur:.1%} ({cur[kind]['covered']}/{cur[kind]['total']}) "
                f"< baseline {r_base:.1%} "
                f"({base[kind]['covered']}/{base[kind]['total']})"
            )

        new = sorted(set(cur_sites) - set(base_sites))
        gone = sorted(set(base_sites) - set(cur_sites))
        if new:
            print(f"check_coverage: note: {len(new)} new {kind} site(s): {', '.join(new[:10])}")
        if gone:
            print(f"check_coverage: note: {len(gone)} removed {kind} site(s): {', '.join(gone[:10])}")

    if problems:
        for p in problems:
            print(f"check_coverage: {p}", file=sys.stderr)
        fail(f"{len(problems)} coverage regression(s) vs {baseline_path}")

    print(
        "check_coverage: OK: "
        + ", ".join(
            f"{kind} {cur[kind]['covered']}/{cur[kind]['total']}" for kind in KINDS
        )
    )


if __name__ == "__main__":
    if len(sys.argv) != 3:
        fail("usage: check_coverage.py current.json baseline.json")
    main(sys.argv[1], sys.argv[2])
