#!/usr/bin/env python3
"""Validate a perennial-bench/v2 results file (CI gate).

Checks:
  - schema is exactly "perennial-bench/v2" with a non-empty sections list;
  - every record carries name/iters/ns_per_op/metrics with the right types;
  - every metric name is perennial_*-prefixed (bare names like "executions"
    regressed once; never again);
  - at least one record carries a latency_us object, and every latency_us
    has numeric p50 <= p95 <= p99;
  - the parallel domain sweep is deterministic (identical
    perennial_refinement_executions_total at every domains=N of the same
    instance), and — only when the recording host had >= 4 cores — the
    8-domain fs run is at least 2x faster than the 1-domain run.  On
    smaller hosts the speedup gate is skipped with a message (the
    determinism gate still applies: it never depends on the hardware);
  - the network adversary-budget sweep grows schedules and executions
    strictly monotonically, enumerates nothing at budget 0, and actually
    exercises the exactly-once machinery (client retries + reply-cache
    hits) at every positive budget.

Usage: check_bench.py BENCH_results.json
"""
import json
import sys


def fail(msg):
    print(f"check_bench: FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def main(path):
    with open(path) as f:
        doc = json.load(f)

    if doc.get("schema") != "perennial-bench/v2":
        fail(f"schema is {doc.get('schema')!r}, want 'perennial-bench/v2'")
    sections = doc.get("sections")
    if not isinstance(sections, list) or not sections:
        fail("sections missing or empty")

    n_latency = 0
    for rec in sections:
        name = rec.get("name")
        if not isinstance(name, str) or not name:
            fail(f"record without a name: {rec}")
        if not isinstance(rec.get("iters"), int):
            fail(f"{name}: iters missing or not an int")
        if not isinstance(rec.get("ns_per_op"), (int, float)):
            fail(f"{name}: ns_per_op missing or not a number")
        metrics = rec.get("metrics")
        if not isinstance(metrics, dict):
            fail(f"{name}: metrics missing or not an object")
        for k in metrics:
            if not k.split("{")[0].startswith("perennial_"):
                fail(f"{name}: bare metric name {k!r} (want perennial_* prefix)")
        lat = rec.get("latency_us")
        if lat is not None:
            n_latency += 1
            for q in ("p50", "p95", "p99"):
                if not isinstance(lat.get(q), (int, float)):
                    fail(f"{name}: latency_us.{q} missing or not a number")
            if not (lat["p50"] <= lat["p95"] <= lat["p99"]):
                fail(f"{name}: latency percentiles not monotone: {lat}")

    if n_latency == 0:
        fail("no record carries latency_us percentiles")

    check_parallel(sections)
    check_wal(sections)
    check_net(sections)

    print(
        f"check_bench: OK: {len(sections)} records, "
        f"{n_latency} with latency percentiles"
    )


def check_wal(sections):
    """Group-commit gates over the 'wal: group commit [batch=K]' records:
    absorption must reduce the logged records on batched workloads (the
    sweep writes 2 hot addresses, so any batch beyond 2 txns has
    duplicates to collapse), and one drained batch must cost exactly one
    header install (group commit)."""
    batches = {}  # k -> record
    for rec in sections:
        name = rec.get("name", "")
        if not name.startswith("wal: group commit [batch="):
            continue
        k = int(name.rpartition("[batch=")[2].rstrip("]"))
        batches[k] = rec

    if not batches:
        print("check_bench: note: no wal group-commit records (section not run)")
        return

    saw_reduction = False
    for k, rec in sorted(batches.items()):
        m = rec["metrics"]
        raw = m.get("perennial_wal_logged_records_raw")
        absorbed = m.get("perennial_wal_logged_records_absorbed")
        headers = m.get("perennial_wal_header_writes")
        if raw is None or absorbed is None or headers is None:
            fail(f"wal batch={k}: missing group-commit/absorption metrics")
        if headers != 1:
            fail(f"wal batch={k}: {headers} header installs for one drained batch")
        if absorbed > raw:
            fail(f"wal batch={k}: absorption grew the log ({absorbed} > {raw})")
        if k > 2:
            if absorbed >= raw:
                fail(
                    f"wal batch={k}: absorption did not reduce logged records "
                    f"({absorbed} >= {raw})"
                )
            saw_reduction = True
    if not saw_reduction:
        fail("wal sweep has no batch > 2: absorption reduction never exercised")
    print(f"check_bench: wal group-commit sweep OK ({len(batches)} batch sizes)")


def check_net(sections):
    """Network-adversary gates over the 'net: adversary sweep [budget=K]'
    records: the schedule count and execution count must grow strictly
    monotonically with the adversary budget (each budget step admits more
    network schedules), budget 0 must enumerate no adversarial schedules,
    and every budget >= 1 must observe client retries and reply-cache hits
    (the exactly-once mechanism actually exercised, not vacuously idle)."""
    budgets = {}  # k -> record
    for rec in sections:
        name = rec.get("name", "")
        if not name.startswith("net: adversary sweep [budget="):
            continue
        k = int(name.rpartition("[budget=")[2].rstrip("]"))
        budgets[k] = rec

    if not budgets:
        print("check_bench: note: no net adversary-sweep records (section not run)")
        return

    if 0 not in budgets or len(budgets) < 2:
        fail("net sweep needs budget 0 plus at least one positive budget")
    m0 = budgets[0]["metrics"]
    if m0.get("perennial_net_schedules") != 0:
        fail(
            f"net budget=0: {m0.get('perennial_net_schedules')} adversarial "
            f"schedules enumerated (want 0)"
        )
    prev_k = None
    for k, rec in sorted(budgets.items()):
        m = rec["metrics"]
        scheds = m.get("perennial_net_schedules")
        execs = m.get("perennial_refinement_executions_total")
        retries = m.get("perennial_net_retries_total")
        hits = m.get("perennial_net_cache_hits_total")
        if None in (scheds, execs, retries, hits):
            fail(f"net budget={k}: missing adversary-sweep metrics")
        if prev_k is not None:
            pm = budgets[prev_k]["metrics"]
            if scheds <= pm["perennial_net_schedules"] and k > 0:
                fail(
                    f"net budget={k}: schedules did not grow over budget="
                    f"{prev_k} ({scheds} <= {pm['perennial_net_schedules']})"
                )
            if execs <= pm["perennial_refinement_executions_total"]:
                fail(
                    f"net budget={k}: executions did not grow over budget="
                    f"{prev_k}"
                )
        if k >= 1 and (retries <= 0 or hits <= 0):
            fail(
                f"net budget={k}: retries={retries} cache_hits={hits} "
                f"(exactly-once path never exercised)"
            )
        prev_k = k
    print(f"check_bench: net adversary sweep OK ({len(budgets)} budgets)")


def check_parallel(sections):
    """Domain-sweep gates over the 'parallel: ... [domains=N]' records."""
    sweeps = {}  # instance -> {n: record}
    for rec in sections:
        name = rec.get("name", "")
        if not name.startswith("parallel: ") or "[domains=" not in name:
            continue
        instance, _, rest = name.rpartition(" [domains=")
        n = int(rest.rstrip("]"))
        sweeps.setdefault(instance, {})[n] = rec

    if not sweeps:
        print("check_bench: note: no parallel sweep records (section not run)")
        return

    host_cores = None
    for instance, by_n in sweeps.items():
        execs = {
            n: r["metrics"].get("perennial_refinement_executions_total")
            for n, r in by_n.items()
        }
        if len(set(execs.values())) != 1:
            fail(f"{instance}: executions vary across the domain sweep: {execs}")
        for r in by_n.values():
            host_cores = r["metrics"].get("perennial_host_cores", host_cores)

    fs = next((s for k, s in sweeps.items() if k.startswith("parallel: fs ")), None)
    if fs is None or 1 not in fs or 8 not in fs:
        fail("parallel sweep lacks the fs instance at domains=1 and domains=8")
    if host_cores is None or host_cores < 4:
        print(
            f"check_bench: note: speedup gate skipped "
            f"(recorded host_cores={host_cores}, need >= 4)"
        )
        return
    speedup = fs[1]["ns_per_op"] / max(fs[8]["ns_per_op"], 1.0)
    if speedup < 2.0:
        fail(
            f"fs 8-domain speedup {speedup:.2f}x < 2x on a "
            f"{host_cores}-core host"
        )
    print(f"check_bench: parallel fs speedup {speedup:.2f}x (host_cores={host_cores})")


if __name__ == "__main__":
    if len(sys.argv) != 2:
        fail("usage: check_bench.py BENCH_results.json")
    main(sys.argv[1])
