#!/usr/bin/env python3
"""Validate a perennial-bench/v2 results file (CI gate).

Checks:
  - schema is exactly "perennial-bench/v2" with a non-empty sections list;
  - every record carries name/iters/ns_per_op/metrics with the right types;
  - every metric name is perennial_*-prefixed (bare names like "executions"
    regressed once; never again);
  - at least one record carries a latency_us object, and every latency_us
    has numeric p50 <= p95 <= p99.

Usage: check_bench.py BENCH_results.json
"""
import json
import sys


def fail(msg):
    print(f"check_bench: FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def main(path):
    with open(path) as f:
        doc = json.load(f)

    if doc.get("schema") != "perennial-bench/v2":
        fail(f"schema is {doc.get('schema')!r}, want 'perennial-bench/v2'")
    sections = doc.get("sections")
    if not isinstance(sections, list) or not sections:
        fail("sections missing or empty")

    n_latency = 0
    for rec in sections:
        name = rec.get("name")
        if not isinstance(name, str) or not name:
            fail(f"record without a name: {rec}")
        if not isinstance(rec.get("iters"), int):
            fail(f"{name}: iters missing or not an int")
        if not isinstance(rec.get("ns_per_op"), (int, float)):
            fail(f"{name}: ns_per_op missing or not a number")
        metrics = rec.get("metrics")
        if not isinstance(metrics, dict):
            fail(f"{name}: metrics missing or not an object")
        for k in metrics:
            if not k.split("{")[0].startswith("perennial_"):
                fail(f"{name}: bare metric name {k!r} (want perennial_* prefix)")
        lat = rec.get("latency_us")
        if lat is not None:
            n_latency += 1
            for q in ("p50", "p95", "p99"):
                if not isinstance(lat.get(q), (int, float)):
                    fail(f"{name}: latency_us.{q} missing or not a number")
            if not (lat["p50"] <= lat["p95"] <= lat["p99"]):
                fail(f"{name}: latency percentiles not monotone: {lat}")

    if n_latency == 0:
        fail("no record carries latency_us percentiles")

    print(
        f"check_bench: OK: {len(sections)} records, "
        f"{n_latency} with latency percentiles"
    )


if __name__ == "__main__":
    if len(sys.argv) != 2:
        fail("usage: check_bench.py BENCH_results.json")
    main(sys.argv[1])
