(* Tests for lib/obs — the metrics registry, the trace-event sinks and the
   JSON emitter/parser — plus the integration contract: the refinement
   checker's registry counters must agree with its returned stats, with
   exact values on a fixed instance, and its Chrome traces must round-trip
   through our own parser. *)

module M = Obs.Metrics
module T = Obs.Trace
module J = Obs.Json
module V = Tslang.Value
module R = Perennial_core.Refinement
module Rd = Systems.Replicated_disk

(* --- registry semantics --- *)

let test_counter_basics () =
  let r = M.create () in
  let c = M.counter ~registry:r "requests_total" in
  Alcotest.(check int) "starts at zero" 0 (M.counter_value c);
  M.inc c;
  M.inc ~by:41 c;
  Alcotest.(check int) "accumulates" 42 (M.counter_value c);
  let c' = M.counter ~registry:r "requests_total" in
  M.inc c';
  Alcotest.(check int) "get-or-create returns the same counter" 43 (M.counter_value c);
  (match M.inc ~by:(-1) c with
  | () -> Alcotest.fail "negative increment accepted"
  | exception Invalid_argument _ -> ());
  Alcotest.(check int) "value unchanged after rejected inc" 43 (M.counter_value c)

let test_label_isolation () =
  let r = M.create () in
  let a = M.counter ~registry:r ~labels:[ ("rule", "acquire") ] "rules_total" in
  let b = M.counter ~registry:r ~labels:[ ("rule", "release") ] "rules_total" in
  M.inc ~by:5 a;
  M.inc ~by:2 b;
  Alcotest.(check int) "label a isolated" 5 (M.counter_value a);
  Alcotest.(check int) "label b isolated" 2 (M.counter_value b);
  (* label order is canonicalized: same set, same metric *)
  let c1 = M.counter ~registry:r ~labels:[ ("x", "1"); ("y", "2") ] "multi" in
  let c2 = M.counter ~registry:r ~labels:[ ("y", "2"); ("x", "1") ] "multi" in
  M.inc c1;
  Alcotest.(check int) "label order irrelevant" 1 (M.counter_value c2)

let test_kind_mismatch_rejected () =
  let r = M.create () in
  let _ = M.counter ~registry:r "thing" in
  match M.gauge ~registry:r "thing" with
  | _ -> Alcotest.fail "gauge registered over a counter"
  | exception Invalid_argument _ -> ()

let test_gauge_ops () =
  let r = M.create () in
  let g = M.gauge ~registry:r "depth" in
  M.set g 3.5;
  M.add g 1.5;
  Alcotest.(check (float 0.0)) "set+add" 5.0 (M.gauge_value g);
  M.record_max g 4.0;
  Alcotest.(check (float 0.0)) "record_max keeps larger" 5.0 (M.gauge_value g);
  M.record_max g 9.0;
  Alcotest.(check (float 0.0)) "record_max takes larger" 9.0 (M.gauge_value g)

let test_histogram_buckets () =
  let r = M.create () in
  let h = M.histogram ~registry:r ~buckets:[ 1.; 10.; 100. ] "lat" in
  List.iter (M.observe h) [ 0.5; 1.0; 5.; 50.; 5000. ];
  Alcotest.(check int) "count" 5 (M.hist_count h);
  Alcotest.(check (float 1e-9)) "sum" 5056.5 (M.hist_sum h);
  (* cumulative bucket counts: <=1 has two (0.5 and the boundary 1.0),
     <=10 adds 5., <=100 adds 50., +inf catches 5000. *)
  Alcotest.(check (list (pair (float 0.0) int)))
    "cumulative buckets"
    [ (1., 2); (10., 3); (100., 4); (infinity, 5) ]
    (M.hist_buckets h)

let test_reset_zeroes_but_keeps_handles () =
  let r = M.create () in
  let c = M.counter ~registry:r "c" in
  let g = M.gauge ~registry:r "g" in
  let h = M.histogram ~registry:r ~buckets:[ 1. ] "h" in
  M.inc ~by:7 c;
  M.set g 7.;
  M.observe h 7.;
  M.reset r;
  Alcotest.(check int) "counter zeroed" 0 (M.counter_value c);
  Alcotest.(check (float 0.0)) "gauge zeroed" 0. (M.gauge_value g);
  Alcotest.(check int) "histogram zeroed" 0 (M.hist_count h);
  M.inc c;
  Alcotest.(check int) "handle still live after reset" 1 (M.counter_value c)

let test_snapshot_and_delta () =
  let r = M.create () in
  let c = M.counter ~registry:r ~labels:[ ("op", "put") ] "ops_total" in
  M.inc ~by:3 c;
  let before = M.snapshot ~registry:r () in
  M.inc ~by:4 c;
  let after = M.snapshot ~registry:r () in
  Alcotest.(check (list (pair string int)))
    "delta names the metric with labels"
    [ ("ops_total{op=put}", 4) ]
    (M.counters_delta ~before ~after);
  match M.to_json ~registry:r () with
  | J.Obj [ ("ops_total{op=put}", J.Int 7) ] -> ()
  | j -> Alcotest.failf "unexpected json: %s" (J.to_string j)

(* --- JSON emitter/parser --- *)

let test_json_roundtrip_values () =
  let doc =
    J.Obj
      [ ("s", J.Str "a \"quoted\" \\ line\nwith\ttabs");
        ("i", J.Int (-42));
        ("f", J.Float 1.5);
        ("big", J.Float 1786016675641041.);
        ("t", J.Bool true);
        ("n", J.Null);
        ("a", J.Arr [ J.Int 1; J.Obj [ ("nested", J.Bool false) ] ]) ]
  in
  match J.of_string (J.to_string doc) with
  | Ok doc' -> Alcotest.(check bool) "round-trips" true (doc = doc')
  | Error e -> Alcotest.failf "parse error: %s" e

let test_json_parse_errors () =
  List.iter
    (fun s ->
      match J.of_string s with
      | Ok _ -> Alcotest.failf "accepted malformed input %S" s
      | Error _ -> ())
    [ ""; "{"; "[1,]"; "{\"a\":}"; "tru"; "\"unterminated"; "1 2"; "{\"a\":1,}" ]

(* --- trace sinks --- *)

(* Install a deterministic microsecond clock for the duration of [f]. *)
let with_fake_clock f =
  let t = ref 0. in
  T.set_clock (fun () ->
      t := !t +. 10.;
      !t);
  Fun.protect ~finally:(fun () -> T.set_clock (fun () -> Unix.gettimeofday () *. 1e6)) f

let test_null_sink_disabled () =
  T.close ();
  Alcotest.(check bool) "disabled by default" false (T.enabled ());
  (* hooks are no-ops but still run the thunk *)
  T.instant "nothing";
  Alcotest.(check int) "with_span still runs the thunk" 7
    (T.with_span "span" (fun () -> 7))

let test_memory_sink_and_chrome_roundtrip () =
  with_fake_clock (fun () ->
      T.install_memory ();
      Alcotest.(check bool) "enabled" true (T.enabled ());
      let v = T.with_span ~cat:"refinement" "explore" (fun () -> T.instant ~cat:"crash" ~args:[ ("n", T.I 1) ] "crash_injection"; 99) in
      Alcotest.(check int) "span result" 99 v;
      let evs = T.memory_events () in
      T.close ();
      Alcotest.(check int) "two events" 2 (List.length evs);
      (* the instant fires inside the span, so it is buffered first *)
      (match evs with
      | [ i; s ] ->
        Alcotest.(check string) "instant name" "crash_injection" i.T.name;
        Alcotest.(check string) "span name" "explore" s.T.name;
        (match s.T.ph with
        | T.Complete d -> Alcotest.(check (float 1e-9)) "span duration from clock" 20. d
        | _ -> Alcotest.fail "span is not a complete event")
      | _ -> Alcotest.fail "unexpected event shapes");
      (* Chrome document round-trip through our own parser *)
      match J.of_string (J.to_string (T.chrome_json evs)) with
      | Error e -> Alcotest.failf "chrome json does not parse: %s" e
      | Ok doc ->
        let get o = match o with Some v -> v | None -> Alcotest.fail "missing field" in
        let evs' = get (J.to_list (get (J.member "traceEvents" doc))) in
        Alcotest.(check int) "both events serialized" 2 (List.length evs');
        let phs =
          List.map (fun e -> get (Option.bind (J.member "ph" e) J.to_str)) evs'
        in
        Alcotest.(check (list string)) "phases" [ "i"; "X" ] phs;
        let dur = get (Option.bind (J.member "dur" (List.nth evs' 1)) J.to_float) in
        Alcotest.(check (float 1e-9)) "duration survives" 20. dur)

let test_jsonl_sink () =
  let path = Filename.temp_file "obs_test" ".jsonl" in
  with_fake_clock (fun () ->
      T.open_jsonl path;
      T.instant ~cat:"a" "one";
      T.instant ~cat:"b" "two";
      T.close ());
  let ic = open_in path in
  let lines = ref [] in
  (try
     while true do
       lines := input_line ic :: !lines
     done
   with End_of_file -> ());
  close_in ic;
  Sys.remove path;
  let lines = List.rev !lines in
  Alcotest.(check int) "one line per event" 2 (List.length lines);
  List.iter
    (fun l ->
      match J.of_string l with
      | Ok (J.Obj _) -> ()
      | Ok _ -> Alcotest.fail "line is not an object"
      | Error e -> Alcotest.failf "line does not parse: %s" e)
    lines

let test_buffer_limit () =
  T.install_memory ();
  T.set_limit 3;
  for i = 1 to 5 do
    T.instant (string_of_int i)
  done;
  Alcotest.(check int) "buffer capped" 3 (List.length (T.memory_events ()));
  Alcotest.(check int) "overflow counted" 2 (T.dropped ());
  T.close ();
  T.set_limit 200_000

(* --- integration: deterministic metrics for a fixed refinement instance --- *)

let test_refinement_metrics_deterministic () =
  M.reset M.default;
  let cfg =
    Rd.checker_config ~may_fail:false ~max_crashes:0 ~size:1
      [ [ Rd.write_call 0 (V.str "a") ]; [ Rd.read_call 0 ] ]
  in
  (match R.check cfg with
  | R.Refinement_holds s ->
    (* exhaustive exploration of a fixed instance: exact, reproducible *)
    Alcotest.(check int) "executions" 2 s.R.executions;
    Alcotest.(check int) "steps" 26 s.R.steps;
    Alcotest.(check int) "max candidates" 5 s.R.max_candidates;
    Alcotest.(check int) "frontier high-water" 7 s.R.frontier_hwm
  | _ -> Alcotest.fail "expected the instance to hold");
  (* the registry must agree with the returned stats *)
  let counter_of name =
    M.counter_value (M.counter name)
  in
  Alcotest.(check int) "registry executions" 2
    (counter_of "perennial_refinement_executions_total");
  Alcotest.(check int) "registry steps" 26
    (counter_of "perennial_refinement_steps_total");
  Alcotest.(check int) "registry crash injections" 0
    (counter_of "perennial_refinement_crash_injections_total");
  Alcotest.(check int) "registry checks" 1
    (counter_of "perennial_refinement_checks_total");
  Alcotest.(check (float 0.0)) "registry frontier gauge" 7.
    (M.gauge_value (M.gauge "perennial_refinement_frontier_depth_hwm"))

let test_refinement_trace_crash_instants () =
  (* every injected crash must appear as an instant event in the trace *)
  M.reset M.default;
  with_fake_clock (fun () ->
      T.install_memory ();
      let stats =
        match
          R.check
            (Rd.checker_config ~may_fail:false ~max_crashes:1 ~size:1
               [ [ Rd.write_call 0 (V.str "x") ] ])
        with
        | R.Refinement_holds s -> s
        | _ -> Alcotest.fail "expected the instance to hold"
      in
      let evs = T.memory_events () in
      T.close ();
      let crashes =
        List.length (List.filter (fun e -> e.T.name = "crash_injection") evs)
      in
      Alcotest.(check int) "one instant per injected crash" stats.R.crashes_injected
        crashes;
      Alcotest.(check bool) "phase spans present" true
        (List.exists (fun e -> e.T.name = "recovery") evs
        && List.exists (fun e -> e.T.name = "refinement.check") evs))

let suite =
  [
    Alcotest.test_case "counter basics" `Quick test_counter_basics;
    Alcotest.test_case "label isolation" `Quick test_label_isolation;
    Alcotest.test_case "kind mismatch rejected" `Quick test_kind_mismatch_rejected;
    Alcotest.test_case "gauge ops" `Quick test_gauge_ops;
    Alcotest.test_case "histogram buckets" `Quick test_histogram_buckets;
    Alcotest.test_case "reset keeps handles" `Quick test_reset_zeroes_but_keeps_handles;
    Alcotest.test_case "snapshot, delta, json" `Quick test_snapshot_and_delta;
    Alcotest.test_case "json round-trip" `Quick test_json_roundtrip_values;
    Alcotest.test_case "json parse errors" `Quick test_json_parse_errors;
    Alcotest.test_case "null sink disabled" `Quick test_null_sink_disabled;
    Alcotest.test_case "memory sink + chrome round-trip" `Quick
      test_memory_sink_and_chrome_roundtrip;
    Alcotest.test_case "jsonl sink" `Quick test_jsonl_sink;
    Alcotest.test_case "buffer limit" `Quick test_buffer_limit;
    Alcotest.test_case "refinement metrics deterministic" `Quick
      test_refinement_metrics_deterministic;
    Alcotest.test_case "refinement trace crash instants" `Quick
      test_refinement_trace_crash_instants;
  ]
