(* Parallel state-space exploration: the determinism harness.

   The multicore checker's contract (Refinement.check ~domains) is that the
   domain count buys wall time and nothing else: verdict, counterexample and
   every stats field must be a fixed function of the instance and
   [split_depth].  This suite pins that down differentially:

   - every bundled system and seeded bug, under naive and dpor+sleep, run at
     domains 1/2/4/8: identical verdicts, identical stats records, identical
     [pp_failure_lanes] renderings;
   - naive parallel runs of *holding* instances match the plain sequential
     checker's stats exactly (the two-phase partition replays the very same
     DFS);
   - the golden counterexamples of test/golden/ stay byte-identical when
     found by a parallel run;
   - qcheck properties for the fingerprint canonicalizer: token-renaming
     idempotence and permutation-invariance, thread-relabeling invariance
     under symmetry, injectivity smoke, and digest stability across
     structurally-equal states (nothing physical leaks into the key);
   - fingerprint pruning never changes a verdict, prunes for real on the
     kvs instances, and the symmetry quotient prunes at least as hard on
     instances with interchangeable threads;
   - the obs layer survives a 4-domain hammer with exact totals
     (metrics registry, coverage table);
   - check_random with domains: same failing walk, same reason prefix, same
     merged stats at any domain count, and the [seed/schedule] pair replays
     the failure on its own at any domain count. *)

module V = Tslang.Value
module R = Perennial_core.Refinement
module E = Perennial_core.Explore
module Fpr = Perennial_core.Fingerprint
module Rd = Systems.Replicated_disk
module Cb = Systems.Cached_block
module Sc = Systems.Shadow_copy
module W = Systems.Wal
module Gc = Systems.Group_commit
module L = Systems.Layered
module J = Journal.Txn_log
module K = Journal.Kvs
module FL = Perennial_fs.Layout
module Fs = Perennial_fs.Fs

let b = Disk.Block.of_string
let bv s = Disk.Block.to_value (b s)
let vx = V.str "x"
let vy = V.str "y"
let ly2 = J.layout ~n_data:2 ~max_slots:2
let p = K.params ~n_keys:2 ()
let fsp = Fs.params (FL.v ~n_inodes:4 ~n_blocks:5 ())

let verdict = function
  | R.Refinement_holds _ -> "holds"
  | R.Refinement_violated _ -> "violated"
  | R.Budget_exhausted _ -> "budget"

let stats_of = function
  | R.Refinement_holds st | R.Refinement_violated (_, st) | R.Budget_exhausted st -> st

let lanes_of = function
  | R.Refinement_violated (f, _) -> Some (Fmt.str "%a" R.pp_failure_lanes f)
  | R.Refinement_holds _ | R.Budget_exhausted _ -> None

let check_stats name expected got =
  if expected <> got then
    Alcotest.failf "%s: stats diverged:@,  expected %a@,  got      %a" name R.pp_stats
      expected R.pp_stats got

(* ------------------------------------------------------------------ *)
(* The domains matrix                                                  *)
(* ------------------------------------------------------------------ *)

let domain_counts = [ 1; 2; 4; 8 ]

(* Checked strategies: naive plus the strongest reduction.  (Cross-strategy
   agreement is test_explore's job; here each strategy is compared with
   itself across domain counts.) *)
let strategies = [ E.Naive; E.Dpor_sleep ]

(* Run one instance at every domain count under each strategy: identical
   verdicts, stats, and counterexample lanes.  Under naive, the parallel
   run must also reproduce the plain sequential stats when the instance
   holds (on violations the sequential checker stops early by design). *)
let domain_deterministic name (run : strategy:E.strategy -> domains:int option -> R.result)
    =
  List.iter
    (fun strategy ->
      let sname = E.strategy_name strategy in
      let base = run ~strategy ~domains:(Some 1) in
      List.iter
        (fun n ->
          let r = run ~strategy ~domains:(Some n) in
          Alcotest.(check string)
            (Printf.sprintf "%s [%s]: verdict at domains=%d" name sname n)
            (verdict base) (verdict r);
          check_stats
            (Printf.sprintf "%s [%s]: domains=%d vs domains=1" name sname n)
            (stats_of base) (stats_of r);
          Alcotest.(check (option string))
            (Printf.sprintf "%s [%s]: lanes at domains=%d" name sname n)
            (lanes_of base) (lanes_of r))
        (List.filter (fun n -> n <> 1) domain_counts);
      let seq = run ~strategy ~domains:None in
      Alcotest.(check string)
        (Printf.sprintf "%s [%s]: parallel vs sequential verdict" name sname)
        (verdict seq) (verdict base);
      match seq with
      | R.Refinement_holds st when strategy = E.Naive ->
        check_stats (Printf.sprintf "%s: naive parallel vs sequential" name) st
          (stats_of base)
      | _ -> ())
    strategies

(* --- honest systems: every domain count must accept --- *)

let test_domains_systems () =
  domain_deterministic "rd: 2 writers + crash + disk failure"
    (fun ~strategy ~domains ->
      R.check ~strategy ?domains
        (Rd.checker_config ~may_fail:true ~max_crashes:1 ~size:1
           [ [ Rd.write_call 0 (V.str "a") ]; [ Rd.write_call 0 (V.str "b") ] ]));
  domain_deterministic "cached-block: put || get + crash" (fun ~strategy ~domains ->
      R.check ~strategy ?domains
        (Cb.checker_config ~max_crashes:1 [ [ Cb.put_call vx ]; [ Cb.get_call ] ]));
  domain_deterministic "shadow-copy: write || read + crash" (fun ~strategy ~domains ->
      R.check ~strategy ?domains
        (Sc.checker_config ~max_crashes:1 [ [ Sc.write_call vx vy ]; [ Sc.read_call ] ]));
  domain_deterministic "wal: write + 2 crashes" (fun ~strategy ~domains ->
      R.check ~strategy ?domains
        (W.checker_config ~max_crashes:2 [ [ W.write_call vx vy ] ]));
  domain_deterministic "group-commit: write; flush + crash" (fun ~strategy ~domains ->
      R.check ~strategy ?domains
        (Gc.checker_config ~max_crashes:1 [ [ Gc.write_call vx vy; Gc.flush_call ] ]));
  domain_deterministic "layered: WAL over rd" (fun ~strategy ~domains ->
      R.check ~strategy ?domains
        (L.checker_config ~may_fail:true ~max_crashes:1 [ [ L.write_call vx vy ] ]))

let test_domains_journal_kvs () =
  domain_deterministic "journal: commit || read + crash" (fun ~strategy ~domains ->
      R.check ~strategy ?domains
        (J.checker_config ly2 ~max_crashes:1
           [ [ J.commit_call ly2 [ (0, b "A"); (1, b "B") ] ]; [ J.read_call ly2 0 ] ]));
  domain_deterministic "kvs: put || get + crash" (fun ~strategy ~domains ->
      R.check ~strategy ?domains
        (K.checker_config p ~max_crashes:1
           [ [ K.put_call p 0 (bv "A") ]; [ K.get_call p 1 ] ]));
  domain_deterministic "kvs: txn + crash during recovery" (fun ~strategy ~domains ->
      R.check ~strategy ?domains
        (K.checker_config p ~max_crashes:2
           [ [ K.txn_call p [ (0, b "A"); (1, b "B") ] ] ]));
  domain_deterministic "kvs: async put; flush || get + crash" (fun ~strategy ~domains ->
      R.check ~strategy ?domains
        (K.checker_config p ~max_crashes:1
           [ [ K.put_async_call p 0 (bv "A"); K.flush_call p ]; [ K.get_call p 0 ] ]))

let test_domains_fs () =
  domain_deterministic "fs: create || append + crash" (fun ~strategy ~domains ->
      R.check ~strategy ?domains
        (Fs.checker_config fsp ~dirs:[ "a" ]
           ~files:[ ("a", "f", "xy") ]
           ~post:(Fs.probe fsp ~dirs:[ "a" ] ~files:[ ("a", "f"); ("a", "g") ])
           ~max_crashes:1
           [ [ Fs.create_call fsp "a" "g" ]; [ Fs.append_call fsp "a" "f" "z" ] ]))

(* --- seeded bugs: every domain count must reject, identically --- *)

let rd_buggy ~recovery ?(may_fail = true) ?(max_crashes = 1) ~size threads ~strategy
    ~domains =
  R.check ~strategy ?domains
    (R.config ~spec:(Rd.spec size)
       ~init_world:(Rd.init_world ~may_fail size)
       ~crash_world:Rd.crash_world ~pp_world:Rd.pp_world ~threads ~recovery
       ~post:(Rd.probe size) ~max_crashes ())

let test_domains_bugs_rd () =
  domain_deterministic "bug rd: nop recovery"
    (rd_buggy ~recovery:Rd.Buggy.recover_nop ~size:1 [ [ Rd.write_call 0 vx ] ]);
  domain_deterministic "bug rd: zeroing recovery"
    (rd_buggy ~recovery:(Rd.Buggy.recover_zero 1) ~may_fail:false ~size:1
       [ [ Rd.write_call 0 vx ] ]);
  domain_deterministic "bug rd: unlocked writers"
    (rd_buggy ~recovery:(Rd.recover_prog 1) ~max_crashes:0 ~size:1
       [ [ Rd.Buggy.write_call_unlocked 0 (V.str "a") ];
         [ Rd.Buggy.write_call_unlocked 0 (V.str "b") ] ])

let test_domains_bugs_wal_shadow () =
  domain_deterministic "bug wal: commit before log" (fun ~strategy ~domains ->
      R.check ~strategy ?domains
        (R.config ~spec:W.spec ~init_world:(W.init_world ())
           ~crash_world:W.crash_world ~pp_world:W.pp_world
           ~threads:[ [ W.Buggy.write_call_commit_first vx vy ] ]
           ~recovery:W.recover_prog ~post:[ W.read_call ] ~max_crashes:1 ()));
  domain_deterministic "bug wal: recovery clears flag first" (fun ~strategy ~domains ->
      R.check ~strategy ?domains
        (R.config ~spec:W.spec ~init_world:(W.init_world ())
           ~crash_world:W.crash_world ~pp_world:W.pp_world
           ~threads:[ [ W.write_call vx vy ] ]
           ~recovery:W.Buggy.recover_clear_first ~post:[ W.read_call ] ~max_crashes:2 ()));
  domain_deterministic "bug shadow: in-place write" (fun ~strategy ~domains ->
      R.check ~strategy ?domains
        (Sc.checker_config ~max_crashes:1 [ [ Sc.Buggy.write_call_in_place vx vy ] ]))

let test_domains_bugs_journal_kvs () =
  domain_deterministic "bug journal: record before log" (fun ~strategy ~domains ->
      R.check ~strategy ?domains
        (J.checker_config ly2 ~max_crashes:1
           [ [ J.commit_call ly2 [ (0, b "A") ];
               J.Buggy.commit_call_record_first ly2 [ (0, b "C"); (1, b "D") ] ] ]));
  domain_deterministic "bug journal: unlogged multi-write" (fun ~strategy ~domains ->
      R.check ~strategy ?domains
        (J.checker_config ly2 ~max_crashes:1
           [ [ J.Buggy.commit_call_no_log ly2 [ (0, b "A"); (1, b "B") ] ] ]));
  domain_deterministic "bug kvs: nop recovery" (fun ~strategy ~domains ->
      R.check ~strategy ?domains
        (R.config ~spec:(K.spec p) ~init_world:(K.init_world p)
           ~crash_world:K.crash_world ~pp_world:K.pp_world
           ~threads:[ [ K.txn_call p [ (0, b "A"); (1, b "B") ] ] ]
           ~recovery:K.Buggy.recover_nop ~post:(K.probe p) ~max_crashes:1 ()));
  domain_deterministic "bug kvs: async put vs strict crash spec" (fun ~strategy ~domains ->
      R.check ~strategy ?domains
        (K.checker_config p ~spec:(K.strict_spec p) ~max_crashes:1
           [ [ K.put_async_call p 0 (bv "A") ] ]))

(* --- faults: the shared schedule seen-table must stay partition-proof --- *)

let test_domains_faults () =
  domain_deterministic "faults: journal commit under 1 fault" (fun ~strategy ~domains ->
      R.check ~strategy ?domains ~faults:1
        (J.checker_config ly2 ~max_crashes:1
           [ [ J.commit_call ly2 [ (0, b "A"); (1, b "B") ] ]; [ J.read_call ly2 0 ] ]))

(* --- golden counterexamples stay byte-identical under parallel runs --- *)

let test_domains_golden () =
  let golden name (run : E.strategy -> R.result) =
    List.iter
      (fun s ->
        match run s with
        | R.Refinement_violated (f, _) ->
          Alcotest.(check string)
            (Printf.sprintf "%s lanes under %s (parallel)" name (E.strategy_name s))
            (Test_explore.read_golden name)
            (Fmt.str "%a" R.pp_failure_lanes f)
        | r ->
          Alcotest.failf "%s: expected violation under %s, got %s" name
            (E.strategy_name s) (verdict r))
      E.all_strategies
  in
  golden "journal_record_first" (fun strategy ->
      R.check ~strategy ~domains:2
        (J.checker_config ly2 ~max_crashes:1
           [ [ J.commit_call ly2 [ (0, b "A") ];
               J.Buggy.commit_call_record_first ly2 [ (0, b "C"); (1, b "D") ] ] ]));
  golden "kvs_recover_nop" (fun strategy ->
      R.check ~strategy ~domains:4
        (R.config ~spec:(K.spec p) ~init_world:(K.init_world p)
           ~crash_world:K.crash_world ~pp_world:K.pp_world
           ~threads:[ [ K.txn_call p [ (0, b "A"); (1, b "B") ] ] ]
           ~recovery:K.Buggy.recover_nop ~post:(K.probe p) ~max_crashes:1 ()));
  golden "kvs_strict_spec" (fun strategy ->
      R.check ~strategy ~domains:3
        (K.checker_config p ~spec:(K.strict_spec p) ~max_crashes:1
           [ [ K.put_async_call p 0 (bv "A") ] ]))

(* --- argument validation --- *)

let test_bad_arguments () =
  let cfg = K.checker_config p ~max_crashes:1 [ [ K.get_call p 0 ] ] in
  let expect_invalid name f =
    match f () with
    | exception Invalid_argument _ -> ()
    | _ -> Alcotest.failf "%s: expected Invalid_argument" name
  in
  expect_invalid "domains=0" (fun () -> R.check ~domains:0 cfg);
  expect_invalid "split_depth=0" (fun () -> R.check ~domains:2 ~split_depth:0 cfg);
  expect_invalid "fingerprint under dpor" (fun () ->
      R.check ~strategy:E.Dpor ~fingerprint:true cfg);
  expect_invalid "symmetry without fingerprint" (fun () -> R.check ~symmetry:true cfg);
  expect_invalid "check_random domains=0" (fun () -> R.check_random ~domains:0 cfg)

(* ------------------------------------------------------------------ *)
(* qcheck: the fingerprint canonicalizer                               *)
(* ------------------------------------------------------------------ *)

(* Strings over a small alphabet with embedded "k<digits>" tokens. *)
let gen_tokenful_string =
  QCheck.Gen.(
    let frag =
      oneof
        [ map (fun i -> "k" ^ string_of_int i) (int_range 0 12);
          oneofl [ "x"; ","; ";"; "|"; "put("; ")"; "k"; "" ] ]
    in
    map (String.concat "") (list_size (int_range 0 20) frag))

let arb_tokenful = QCheck.make ~print:(fun s -> s) gen_tokenful_string

let prop_rename_idempotent =
  QCheck.Test.make ~name:"rename_tokens is idempotent" ~count:500 arb_tokenful (fun s ->
      let r = Fpr.rename_tokens ~prefix:"k" s in
      String.equal r (Fpr.rename_tokens ~prefix:"k" r))

(* Renaming the token namespace through any injection leaves the canonical
   form untouched: rename_tokens only looks at first-occurrence order. *)
let prop_rename_permutation_invariant =
  QCheck.Test.make ~name:"rename_tokens is token-permutation invariant" ~count:500
    (QCheck.pair arb_tokenful QCheck.(int_range 1 9))
    (fun (s, shift) ->
      (* injective renaming: k<i> -> k<100 + (i * 13 + shift)> *)
      let buf = Buffer.create (String.length s) in
      let n = String.length s in
      let i = ref 0 in
      let digit c = c >= '0' && c <= '9' in
      while !i < n do
        if s.[!i] = 'k' && !i + 1 < n && digit s.[!i + 1] then begin
          let j = ref (!i + 1) in
          while !j < n && digit s.[!j] do incr j done;
          let v = int_of_string (String.sub s (!i + 1) (!j - !i - 1)) in
          Buffer.add_string buf (Printf.sprintf "k%d" (100 + (v * 13) + shift));
          i := !j
        end
        else begin
          Buffer.add_char buf s.[!i];
          incr i
        end
      done;
      String.equal
        (Fpr.rename_tokens ~prefix:"k" s)
        (Fpr.rename_tokens ~prefix:"k" (Buffer.contents buf)))

(* Random fingerprint states: a handful of threads with classes drawn from
   a small set, pends over those threads, and short rendered worlds. *)
let gen_state =
  QCheck.Gen.(
    let* n_threads = int_range 1 4 in
    let tids = List.init n_threads (fun i -> i) in
    let* classes =
      list_size (return n_threads) (oneofl [ "put+get"; "txn"; "get" ])
    in
    let* world = oneofl [ "d=[k0:A k1:B]"; "d=[k0:_ k1:B]"; "d=[]"; "log=[k1]" ] in
    let* n_cands = int_range 1 2 in
    let* cands =
      list_size (return n_cands)
        (let* st = oneofl [ "s0"; "s1:k0=A" ] in
         let* pend_tids = list_size (int_range 0 n_threads) (oneofl tids) in
         let f_pend =
           List.map
             (fun t ->
               { Fpr.f_ptid = t; f_op = "op"; f_args = [ "k1" ]; f_result = None })
             (List.sort_uniq compare pend_tids)
         in
         return { Fpr.f_state = st; f_pend })
    in
    let* crashes = int_range 0 1 in
    let f_threads =
      List.map2
        (fun tid cls -> { Fpr.f_tid = tid; f_class = cls; f_hist = [] })
        tids classes
    in
    return
      {
        Fpr.f_world = world;
        f_cands = cands;
        f_phase = "main";
        f_crashes = crashes;
        f_fused = 0;
        f_fsite = 0;
        f_threads;
      })

let arb_state =
  QCheck.make ~print:(fun st -> Fpr.canonical st) gen_state

(* Relabel every tid through a bijection, keeping each thread's class
   attached: with symmetry on, the canonical form must not move. *)
let relabel perm st =
  let m t = List.nth perm t in
  {
    st with
    Fpr.f_threads =
      List.map (fun t -> { t with Fpr.f_tid = m t.Fpr.f_tid }) st.Fpr.f_threads;
    f_cands =
      List.map
        (fun c ->
          { c with
            Fpr.f_pend = List.map (fun p -> { p with Fpr.f_ptid = m p.Fpr.f_ptid }) c.Fpr.f_pend
          })
        st.Fpr.f_cands;
  }

let permutations_4 =
  (* all permutations of [0;1;2;3]; relabel only consults the first n *)
  let rec perms = function
    | [] -> [ [] ]
    | l -> List.concat_map (fun x -> List.map (fun p -> x :: p) (perms (List.filter (( <> ) x) l))) l
  in
  perms [ 0; 1; 2; 3 ]

let prop_symmetry_relabel_invariant =
  QCheck.Test.make ~name:"canonical ~symmetry is tid-relabeling invariant" ~count:300
    (QCheck.pair arb_state (QCheck.oneofl permutations_4))
    (fun (st, perm) ->
      String.equal
        (Fpr.canonical ~symmetry:true st)
        (Fpr.canonical ~symmetry:true (relabel perm st)))

let prop_symmetry_key_rename_invariant =
  QCheck.Test.make ~name:"canonical ~key_prefix is key-renaming invariant" ~count:300
    arb_state (fun st ->
      (* consistently rename k<i> -> k<i+7> everywhere a key can appear *)
      let ren s =
        let buf = Buffer.create (String.length s) in
        let n = String.length s in
        let digit c = c >= '0' && c <= '9' in
        let i = ref 0 in
        while !i < n do
          if s.[!i] = 'k' && !i + 1 < n && digit s.[!i + 1] then begin
            let j = ref (!i + 1) in
            while !j < n && digit s.[!j] do incr j done;
            let v = int_of_string (String.sub s (!i + 1) (!j - !i - 1)) in
            Buffer.add_string buf (Printf.sprintf "k%d" (v + 7));
            i := !j
          end
          else begin
            Buffer.add_char buf s.[!i];
            incr i
          end
        done;
        Buffer.contents buf
      in
      let st' =
        {
          st with
          Fpr.f_world = ren st.Fpr.f_world;
          f_cands =
            List.map
              (fun c ->
                {
                  Fpr.f_state = ren c.Fpr.f_state;
                  f_pend =
                    List.map
                      (fun pd ->
                        { pd with Fpr.f_args = List.map ren pd.Fpr.f_args })
                      c.Fpr.f_pend;
                })
              st.Fpr.f_cands;
        }
      in
      String.equal
        (Fpr.canonical ~symmetry:true ~key_prefix:"k" st)
        (Fpr.canonical ~symmetry:true ~key_prefix:"k" st'))

let prop_world_injective =
  QCheck.Test.make ~name:"distinct worlds never collide (no symmetry)" ~count:300
    (QCheck.pair arb_state arb_state)
    (fun (s1, s2) ->
      String.equal s1.Fpr.f_world s2.Fpr.f_world
      || not
           (String.equal (Fpr.canonical s1)
              (Fpr.canonical { s1 with Fpr.f_world = s2.Fpr.f_world })))

let prop_digest_stable =
  QCheck.Test.make ~name:"digest is structural (no physical identity)" ~count:300
    arb_state (fun st ->
      (* rebuild a structurally-equal copy through fresh allocations *)
      let copy =
        {
          Fpr.f_world = String.sub (st.Fpr.f_world ^ "!") 0 (String.length st.Fpr.f_world);
          f_cands =
            List.map
              (fun c ->
                {
                  Fpr.f_state = String.concat "" [ c.Fpr.f_state ];
                  f_pend = List.map (fun pd -> { pd with Fpr.f_op = "op" }) c.Fpr.f_pend;
                })
              st.Fpr.f_cands;
          f_phase = "main";
          f_crashes = st.Fpr.f_crashes;
          f_fused = st.Fpr.f_fused;
          f_fsite = st.Fpr.f_fsite;
          f_threads = List.map (fun t -> { t with Fpr.f_tid = t.Fpr.f_tid }) st.Fpr.f_threads;
        }
      in
      let t1, _ = Fpr.digest st in
      let t2, fresh2 = Fpr.digest copy in
      Fpr.equal t1 t2 && Fpr.id t1 = Fpr.id t2 && not fresh2)

let test_intern_semantics () =
  Fpr.reset ();
  let t1, fresh1 = Fpr.intern "alpha" in
  let t2, fresh2 = Fpr.intern "alpha" in
  let t3, fresh3 = Fpr.intern "beta" in
  Alcotest.(check bool) "first intern is fresh" true fresh1;
  Alcotest.(check bool) "second intern is stale" false fresh2;
  Alcotest.(check bool) "distinct string is fresh" true fresh3;
  Alcotest.(check int) "stable id" (Fpr.id t1) (Fpr.id t2);
  Alcotest.(check bool) "distinct ids" true (Fpr.id t1 <> Fpr.id t3);
  Alcotest.(check string) "key round-trips" "alpha" (Fpr.key t1);
  Alcotest.(check int) "table size" 2 (Fpr.table_size ());
  Fpr.reset ();
  Alcotest.(check int) "reset empties" 0 (Fpr.table_size ())

(* ------------------------------------------------------------------ *)
(* Fingerprint pruning on the real checker                             *)
(* ------------------------------------------------------------------ *)

(* Fingerprinting must never change a verdict, and must actually prune. *)
let test_fingerprint_differential () =
  let fp_diff name ?(expect_pruning = true) cfg =
    let plain = R.check cfg in
    let fp = R.check ~fingerprint:true cfg in
    Alcotest.(check string)
      (Printf.sprintf "%s: fingerprint verdict" name)
      (verdict plain) (verdict fp);
    let st = stats_of fp in
    Alcotest.(check bool)
      (Printf.sprintf "%s: fingerprint misses recorded" name)
      true (st.R.fingerprint_misses > 0);
    if expect_pruning then begin
      Alcotest.(check bool)
        (Printf.sprintf "%s: fingerprint pruned for real" name)
        true (st.R.fingerprint_hits > 0);
      Alcotest.(check bool)
        (Printf.sprintf "%s: pruning shrank the execution count" name)
        true (st.R.executions < (stats_of plain).R.executions)
    end;
    (* parallel fingerprint runs stay domain-count deterministic *)
    let p2 = R.check ~fingerprint:true ~domains:2 cfg in
    let p4 = R.check ~fingerprint:true ~domains:4 cfg in
    Alcotest.(check string)
      (Printf.sprintf "%s: parallel fingerprint verdict" name)
      (verdict plain) (verdict p2);
    check_stats (Printf.sprintf "%s: fingerprint domains=2 vs 4" name) (stats_of p2)
      (stats_of p4)
  in
  fp_diff "kvs put||get"
    (K.checker_config p ~max_crashes:1
       [ [ K.put_call p 0 (bv "A") ]; [ K.get_call p 1 ] ]);
  fp_diff "kvs async put"
    (K.checker_config p ~max_crashes:1
       [ [ K.put_async_call p 0 (bv "A"); K.flush_call p ]; [ K.get_call p 0 ] ]);
  fp_diff "journal commit || read"
    (J.checker_config ly2 ~max_crashes:1
       [ [ J.commit_call ly2 [ (0, b "A"); (1, b "B") ] ]; [ J.read_call ly2 0 ] ]);
  (* seeded bugs are still caught with pruning on *)
  fp_diff "bug kvs nop recovery" ~expect_pruning:false
    (R.config ~spec:(K.spec p) ~init_world:(K.init_world p) ~crash_world:K.crash_world
       ~pp_world:K.pp_world
       ~threads:[ [ K.txn_call p [ (0, b "A"); (1, b "B") ] ] ]
       ~recovery:K.Buggy.recover_nop ~post:(K.probe p) ~max_crashes:1 ());
  fp_diff "bug journal record first" ~expect_pruning:false
    (J.checker_config ly2 ~max_crashes:1
       [ [ J.commit_call ly2 [ (0, b "A") ];
           J.Buggy.commit_call_record_first ly2 [ (0, b "C"); (1, b "D") ] ] ])

(* Interchangeable threads: the symmetry quotient prunes at least as hard
   as plain fingerprinting, with the same verdict. *)
let test_symmetry_reduction () =
  let cfg =
    Rd.checker_config ~may_fail:false ~max_crashes:1 ~size:1
      [ [ Rd.write_call 0 (V.str "a") ]; [ Rd.write_call 0 (V.str "a") ] ]
  in
  let fp = R.check ~fingerprint:true cfg in
  let sym = R.check ~fingerprint:true ~symmetry:true cfg in
  Alcotest.(check string) "symmetry verdict" (verdict fp) (verdict sym);
  let mfp = (stats_of fp).R.fingerprint_misses in
  let msym = (stats_of sym).R.fingerprint_misses in
  Alcotest.(check bool)
    (Printf.sprintf "symmetry misses (%d) <= fingerprint misses (%d)" msym mfp)
    true (msym <= mfp);
  (* and it still catches bugs: two identical writers, unlocked *)
  let buggy =
    R.config ~spec:(Rd.spec 1)
      ~init_world:(Rd.init_world ~may_fail:false 1)
      ~crash_world:Rd.crash_world ~pp_world:Rd.pp_world
      ~threads:
        [ [ Rd.Buggy.write_call_unlocked 0 (V.str "a") ];
          [ Rd.Buggy.write_call_unlocked 0 (V.str "a") ] ]
      ~recovery:(Rd.recover_prog 1) ~post:(Rd.probe 1) ~max_crashes:0 ()
  in
  Alcotest.(check string)
    "symmetry still catches the unlocked writers"
    (verdict (R.check buggy))
    (verdict (R.check ~fingerprint:true ~symmetry:true buggy))

(* ------------------------------------------------------------------ *)
(* Obs layer under domains: exact totals                               *)
(* ------------------------------------------------------------------ *)

let test_metrics_hammer () =
  let reg = Obs.Metrics.create () in
  let n_dom = 4 and per = 20_000 in
  let doms =
    List.init n_dom (fun d ->
        Domain.spawn (fun () ->
            (* resolve through the registry inside the domain: exercises
               concurrent resolve as well as concurrent increments *)
            let c = Obs.Metrics.counter ~registry:reg "hammer_total" in
            let g = Obs.Metrics.gauge ~registry:reg "hammer_hwm" in
            let h =
              Obs.Metrics.histogram ~registry:reg ~buckets:[ 10.; 100. ] "hammer_obs"
            in
            for i = 1 to per do
              Obs.Metrics.inc c;
              Obs.Metrics.record_max g (float_of_int ((d * per) + i));
              Obs.Metrics.observe h (float_of_int (i mod 150))
            done))
  in
  List.iter Domain.join doms;
  let c = Obs.Metrics.counter ~registry:reg "hammer_total" in
  let g = Obs.Metrics.gauge ~registry:reg "hammer_hwm" in
  let h = Obs.Metrics.histogram ~registry:reg ~buckets:[ 10.; 100. ] "hammer_obs" in
  Alcotest.(check int) "counter total exact" (n_dom * per) (Obs.Metrics.counter_value c);
  Alcotest.(check (float 0.)) "gauge max exact"
    (float_of_int (n_dom * per))
    (Obs.Metrics.gauge_value g);
  Alcotest.(check int) "histogram count exact" (n_dom * per) (Obs.Metrics.hist_count h);
  let expect_sum = ref 0. in
  for i = 1 to per do
    expect_sum := !expect_sum +. float_of_int (i mod 150)
  done;
  Alcotest.(check (float 0.))
    "histogram sum exact (integer-valued observations)"
    (!expect_sum *. float_of_int n_dom)
    (Obs.Metrics.hist_sum h)

let test_coverage_hammer () =
  let was = Obs.Coverage.enabled () in
  Obs.Coverage.set_enabled true;
  Obs.Coverage.reset ();
  let n_dom = 4 and per = 10_000 in
  let doms =
    List.init n_dom (fun d ->
        Domain.spawn (fun () ->
            let site = Printf.sprintf "hammer:site%d" (d mod 2) in
            for _ = 1 to per do
              Obs.Coverage.register Obs.Coverage.Arm site;
              Obs.Coverage.hit Obs.Coverage.Arm site
            done;
            Obs.Coverage.register Obs.Coverage.Arm "hammer:never"))
  in
  List.iter Domain.join doms;
  let hits site =
    match
      List.find_opt
        (fun (k, s, _) -> k = Obs.Coverage.Arm && String.equal s site)
        (Obs.Coverage.sites ())
    with
    | Some (_, _, n) -> n
    | None -> Alcotest.failf "site %s not registered" site
  in
  (* two domains hammered each site: totals must be exact *)
  Alcotest.(check int) "site0 hits exact" (2 * per) (hits "hammer:site0");
  Alcotest.(check int) "site1 hits exact" (2 * per) (hits "hammer:site1");
  Alcotest.(check int) "never-hit site registered with 0" 0 (hits "hammer:never");
  Obs.Coverage.reset ();
  Obs.Coverage.set_enabled was

(* ------------------------------------------------------------------ *)
(* check_random under domains                                          *)
(* ------------------------------------------------------------------ *)

let random_bug_cfg =
  (* zeroing recovery + crash coins flipped during recovery too: the same
     seeded bug the random-check suite replays (known to fail at seed 123) *)
  R.config ~spec:(Rd.spec 1)
    ~init_world:(Rd.init_world ~may_fail:false 1)
    ~crash_world:Rd.crash_world ~pp_world:Rd.pp_world
    ~threads:[ [ Rd.write_call 0 (V.str "x") ] ]
    ~recovery:(Rd.Buggy.recover_zero 1) ~post:(Rd.probe 1) ~max_crashes:2 ()

let random_honest_cfg =
  K.checker_config p ~max_crashes:1 [ [ K.put_call p 0 (bv "A") ]; [ K.get_call p 1 ] ]

let test_random_domains () =
  let schedules = 500 and seed = 123 and crash_prob = 0.2 in
  let run domains = R.check_random ~schedules ~seed ~crash_prob ?domains random_bug_cfg in
  let seq = run None in
  let reason_of name = function
    | R.Refinement_violated (f, _) -> f.R.reason
    | r -> Alcotest.failf "%s: expected random violation, got %s" name (verdict r)
  in
  let seq_reason = reason_of "sequential" seq in
  (* the sequential first failure is the lowest-index failing walk, which is
     exactly what every parallel run must report *)
  let d1 = run (Some 1) in
  List.iter
    (fun n ->
      let r = run (Some n) in
      Alcotest.(check string)
        (Printf.sprintf "random reason at domains=%d" n)
        seq_reason
        (reason_of (Printf.sprintf "domains=%d" n) r);
      check_stats (Printf.sprintf "random stats domains=%d vs 1" n) (stats_of d1)
        (stats_of r))
    [ 2; 4 ];
  (* the reason prefix alone replays the failure, at any domain count *)
  let schedule =
    Scanf.sscanf seq_reason "[seed=%d schedule=%d/%d]" (fun _ i _ -> i)
  in
  List.iter
    (fun domains ->
      match
        R.check_random_replay ~schedules ~seed ~crash_prob ?domains ~schedule
          random_bug_cfg
      with
      | R.Refinement_violated (f, _) ->
        Alcotest.(check string) "replayed reason" seq_reason f.R.reason
      | r -> Alcotest.failf "replay: expected violation, got %s" (verdict r))
    [ None; Some 2 ]

let test_random_domains_honest () =
  let run domains =
    R.check_random ~schedules:40 ~seed:11 ~crash_prob:0.2 ?domains random_honest_cfg
  in
  let seq = run None in
  Alcotest.(check string) "honest random holds" "holds" (verdict seq);
  (* with no failing walk the sequential and parallel runs do the same
     work, so even the stats line up across all modes *)
  List.iter
    (fun n -> check_stats (Printf.sprintf "honest random domains=%d" n) (stats_of seq)
        (stats_of (run (Some n))))
    [ 1; 2; 4 ]

let suite =
  [
    Alcotest.test_case "domains: pattern systems" `Quick test_domains_systems;
    Alcotest.test_case "domains: journal + kvs" `Quick test_domains_journal_kvs;
    Alcotest.test_case "domains: fs" `Quick test_domains_fs;
    Alcotest.test_case "domains: rd seeded bugs" `Quick test_domains_bugs_rd;
    Alcotest.test_case "domains: wal/shadow seeded bugs" `Quick
      test_domains_bugs_wal_shadow;
    Alcotest.test_case "domains: journal/kvs seeded bugs" `Quick
      test_domains_bugs_journal_kvs;
    Alcotest.test_case "domains: fault schedules" `Quick test_domains_faults;
    Alcotest.test_case "domains: golden counterexamples" `Quick test_domains_golden;
    Alcotest.test_case "domains: argument validation" `Quick test_bad_arguments;
    QCheck_alcotest.to_alcotest prop_rename_idempotent;
    QCheck_alcotest.to_alcotest prop_rename_permutation_invariant;
    QCheck_alcotest.to_alcotest prop_symmetry_relabel_invariant;
    QCheck_alcotest.to_alcotest prop_symmetry_key_rename_invariant;
    QCheck_alcotest.to_alcotest prop_world_injective;
    QCheck_alcotest.to_alcotest prop_digest_stable;
    Alcotest.test_case "fingerprint: intern semantics" `Quick test_intern_semantics;
    Alcotest.test_case "fingerprint: differential vs plain" `Quick
      test_fingerprint_differential;
    Alcotest.test_case "fingerprint: symmetry reduction" `Quick test_symmetry_reduction;
    Alcotest.test_case "obs: metrics 4-domain hammer" `Quick test_metrics_hammer;
    Alcotest.test_case "obs: coverage 4-domain hammer" `Quick test_coverage_hammer;
    Alcotest.test_case "random: domains determinism + replay" `Quick test_random_domains;
    Alcotest.test_case "random: domains honest stats" `Quick test_random_domains_honest;
  ]
