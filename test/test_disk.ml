(* Tests for the disk substrates (single disk, two-disk with failure
   injection, lock maps) and for the Runner's scheduling policies. *)

module V = Tslang.Value
module P = Sched.Prog
module Sd = Disk.Single_disk
module Td = Disk.Two_disk

(* --- single disk --- *)

let test_single_disk_basics () =
  let d = Sd.init 4 in
  Alcotest.(check int) "size" 4 (Sd.size d);
  Alcotest.(check string) "zeroed" "0" (Disk.Block.to_string (Sd.get d 2));
  let d = Sd.set d 2 (Disk.Block.of_string "x") in
  Alcotest.(check string) "written" "x" (Disk.Block.to_string (Sd.get d 2));
  Alcotest.(check bool) "crash preserves" true (Sd.equal d (Sd.crash d))

let test_single_disk_bounds () =
  let d = Sd.init 2 in
  Alcotest.check_raises "get oob" (Invalid_argument "Single_disk.get: out of bounds")
    (fun () -> ignore (Sd.get d 5));
  Alcotest.check_raises "set oob" (Invalid_argument "Single_disk.set: out of bounds")
    (fun () -> ignore (Sd.set d (-1) Disk.Block.zero))

let test_single_disk_zero_normalization () =
  (* writing the zero block must compare equal to an untouched disk *)
  let d = Sd.init 2 in
  let d' = Sd.set (Sd.set d 0 (Disk.Block.of_string "a")) 0 Disk.Block.zero in
  Alcotest.(check bool) "normalized" true (Sd.equal d d')

type w1 = { d : Sd.t }

let test_single_disk_prog_ops () =
  let get_disk w = w.d in
  let set_disk _ d = { d } in
  let open P.Syntax in
  let prog =
    let* () = Sd.write ~get_disk ~set_disk 1 (Disk.Block.of_string "v") in
    Sd.read ~get_disk 1
  in
  let _, v = Sched.Runner.run1 { d = Sd.init 2 } prog in
  Alcotest.(check bool) "roundtrip" true (V.equal v (V.str "v"));
  (* out of bounds is UB, not an exception *)
  match Sched.Runner.run1 { d = Sd.init 2 } (Sd.read ~get_disk 9) with
  | exception Sched.Runner.Undefined_behaviour _ -> ()
  | _ -> Alcotest.fail "oob read not UB"

(* --- two-disk --- *)

type w2 = { td : Td.t }

let get_td w = w.td
let set_td _ td = { td }

let test_two_disk_mirrors () =
  let open P.Syntax in
  let prog =
    let* () = Td.write ~get:get_td ~set:set_td Td.D1 0 (Disk.Block.of_string "m") in
    let* () = Td.write ~get:get_td ~set:set_td Td.D2 0 (Disk.Block.of_string "m") in
    let* a = Td.read ~get:get_td ~set:set_td Td.D1 0 in
    let* b = Td.read ~get:get_td ~set:set_td Td.D2 0 in
    P.return (V.pair a b)
  in
  let _, v = Sched.Runner.run1 { td = Td.init 1 } prog in
  let a, b = V.get_pair v in
  Alcotest.(check bool) "both read back" true
    (V.equal a (V.some (V.str "m")) && V.equal b (V.some (V.str "m")))

let test_two_disk_failure_semantics () =
  let t = Td.init 2 in
  let t = Td.fail t Td.D1 in
  Alcotest.(check bool) "one failed" true (Td.one_failed t);
  (* at most one disk fails: failing the second is a no-op *)
  let t' = Td.fail t Td.D2 in
  Alcotest.(check bool) "second failure ignored" true (Td.equal t t');
  (* reads of the failed disk return None; writes are silent no-ops *)
  let _, r = Sched.Runner.run1 { td = t } (Td.read ~get:get_td ~set:set_td Td.D1 0) in
  Alcotest.(check bool) "failed read none" true (V.equal r V.none);
  let w', _ =
    Sched.Runner.run1 { td = t }
      (P.bind (Td.write ~get:get_td ~set:set_td Td.D1 0 (Disk.Block.of_string "z"))
         (fun () -> P.return V.unit))
  in
  Alcotest.(check bool) "failed write no-op" true (Td.equal w'.td t)

let test_two_disk_nondet_failure_branches () =
  (* with may_fail, a read has both a normal and a failure outcome *)
  let t = Td.init ~may_fail:true 1 in
  match Td.read ~get:get_td ~set:set_td Td.D1 0 with
  | P.Atomic { action; _ } -> (
    match action { td = t } with
    | P.Steps outs -> Alcotest.(check int) "two outcomes" 2 (List.length outs)
    | P.Ub _ -> Alcotest.fail "unexpected UB")
  | P.Done _ | P.Mark _ -> Alcotest.fail "expected a step"

let test_two_disk_crash_preserves_failure () =
  let t = Td.fail (Td.init 1) Td.D2 in
  Alcotest.(check bool) "failure survives crash" true (Td.equal t (Td.crash t))

(* --- locks --- *)

type wl = { locks : Disk.Locks.t }

let get_l w = w.locks
let set_l _ locks = { locks }

let test_locks_block_and_release () =
  let open P.Syntax in
  (* two threads over one lock: mutual exclusion observed via a counter
     world... simplest: verify the blocked thread cannot step while held *)
  let acquire = Disk.Locks.acquire ~get:get_l ~set:set_l 7 in
  let w = { locks = Disk.Locks.empty } in
  let w1, _ =
    Sched.Runner.run1 w
      (let* () = acquire in
       P.return V.unit)
  in
  Alcotest.(check bool) "held" true (Disk.Locks.is_held 7 w1.locks);
  (* a second acquire blocks: its action yields no outcomes *)
  (match acquire with
  | P.Atomic { action; _ } -> (
    match action w1 with
    | P.Steps [] -> ()
    | P.Steps _ -> Alcotest.fail "expected blocked"
    | P.Ub _ -> Alcotest.fail "unexpected UB")
  | P.Done _ | P.Mark _ -> Alcotest.fail "expected a step");
  let w2, _ =
    Sched.Runner.run1 w1
      (let* () = Disk.Locks.release ~get:get_l ~set:set_l 7 in
       P.return V.unit)
  in
  Alcotest.(check bool) "released" false (Disk.Locks.is_held 7 w2.locks)

let test_release_unheld_is_ub () =
  match
    Sched.Runner.run1 { locks = Disk.Locks.empty }
      (P.bind (Disk.Locks.release ~get:get_l ~set:set_l 3) (fun () -> P.return V.unit))
  with
  | exception Sched.Runner.Undefined_behaviour msg ->
    Alcotest.(check bool) "reason" true (Astring_contains.contains msg "un-held")
  | _ -> Alcotest.fail "release of un-held lock not flagged"

(* --- runner policies --- *)

(* NB: actions must be pure functions of the world — the runner probes
   them to detect blocked threads — so the counter lives in the world. *)
let counter_prog label n : (int, V.t) P.t =
  let open P.Syntax in
  let rec go i =
    if i = 0 then P.return (V.str label)
    else
      let* _ = P.det (label ^ "-tick") (fun w -> (w + 1, V.unit)) in
      go (i - 1)
  in
  go n

let test_round_robin_interleaves () =
  let out = Sched.Runner.run 0 [ counter_prog "a" 3; counter_prog "b" 3 ] in
  Alcotest.(check int) "six ticks" 6 out.Sched.Runner.world;
  (* round robin alternates labels *)
  let labels = List.map snd out.Sched.Runner.trace in
  Alcotest.(check bool) "alternating" true
    (labels = [ "a-tick"; "b-tick"; "a-tick"; "b-tick"; "a-tick"; "b-tick" ])

let test_random_policy_seeded () =
  let run seed =
    let out =
      Sched.Runner.run ~policy:(Sched.Runner.Random seed) 0
        [ counter_prog "a" 5; counter_prog "b" 5 ]
    in
    List.map fst out.Sched.Runner.trace
  in
  Alcotest.(check bool) "reproducible" true (run 3 = run 3);
  Alcotest.(check bool) "seeds differ (usually)" true (run 3 <> run 4 || run 3 <> run 5)

let test_fixed_policy () =
  let out =
    Sched.Runner.run ~policy:(Sched.Runner.Fixed [ 1; 1; 0 ]) 0
      [ counter_prog "a" 2; counter_prog "b" 2 ]
  in
  let first_three =
    match out.Sched.Runner.trace with a :: b :: c :: _ -> [ a; b; c ] | _ -> []
  in
  Alcotest.(check bool) "follows schedule" true
    (List.map fst first_three = [ 1; 1; 0 ])

let test_step_budget () =
  let rec forever : (int, V.t) P.t =
    P.Atomic { label = "spin"; fp = (fun _ -> Sched.Footprint.Unknown); action = (fun w -> P.Steps [ (w, ()) ]); faults = (fun _ -> []); k = (fun () -> forever) }
  in
  match Sched.Runner.run ~max_steps:100 0 [ forever ] with
  | exception Failure msg ->
    Alcotest.(check bool) "budget msg" true (Astring_contains.contains msg "budget")
  | _ -> Alcotest.fail "runaway program not stopped"

let test_deadlock_exception () =
  let block : (wl, V.t) P.t =
    P.bind (Disk.Locks.acquire ~get:get_l ~set:set_l 0) (fun () ->
        P.bind (Disk.Locks.acquire ~get:get_l ~set:set_l 0) (fun () -> P.return V.unit))
  in
  match Sched.Runner.run { locks = Disk.Locks.empty } [ block ] with
  | exception Sched.Runner.Deadlock _ -> ()
  | _ -> Alcotest.fail "self-deadlock not detected"

let suite =
  [
    Alcotest.test_case "single disk: basics" `Quick test_single_disk_basics;
    Alcotest.test_case "single disk: bounds" `Quick test_single_disk_bounds;
    Alcotest.test_case "single disk: zero normalization" `Quick test_single_disk_zero_normalization;
    Alcotest.test_case "single disk: prog ops" `Quick test_single_disk_prog_ops;
    Alcotest.test_case "two-disk: mirrors" `Quick test_two_disk_mirrors;
    Alcotest.test_case "two-disk: failure semantics" `Quick test_two_disk_failure_semantics;
    Alcotest.test_case "two-disk: nondet failure branches" `Quick test_two_disk_nondet_failure_branches;
    Alcotest.test_case "two-disk: crash keeps failure" `Quick test_two_disk_crash_preserves_failure;
    Alcotest.test_case "locks: block and release" `Quick test_locks_block_and_release;
    Alcotest.test_case "locks: release un-held is UB" `Quick test_release_unheld_is_ub;
    Alcotest.test_case "runner: round robin" `Quick test_round_robin_interleaves;
    Alcotest.test_case "runner: random seeded" `Quick test_random_policy_seeded;
    Alcotest.test_case "runner: fixed schedule" `Quick test_fixed_policy;
    Alcotest.test_case "runner: step budget" `Quick test_step_budget;
    Alcotest.test_case "runner: deadlock" `Quick test_deadlock_exception;
  ]
