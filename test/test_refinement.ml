(* Tests for the concurrent-recovery-refinement checker, driven by the
   replicated-disk system (paper §1, §3, §5).  The correct implementation
   must pass under exhaustive interleaving + crash + disk-failure
   exploration; each seeded bug must be rejected. *)

module V = Tslang.Value
module R = Perennial_core.Refinement
module Rd = Systems.Replicated_disk

let expect_holds name cfg =
  match R.check cfg with
  | R.Refinement_holds stats ->
    Alcotest.(check bool)
      (name ^ ": explored some executions")
      true (stats.R.executions > 0)
  | R.Refinement_violated (f, _) -> Alcotest.failf "%s: %a" name R.pp_failure f
  | R.Budget_exhausted stats ->
    Alcotest.failf "%s: budget exhausted (%a)" name R.pp_stats stats

let expect_violation name cfg =
  match R.check cfg with
  | R.Refinement_violated (_, stats) ->
    Alcotest.(check bool) (name ^ ": steps counted") true (stats.R.steps > 0)
  | R.Refinement_holds stats ->
    Alcotest.failf "%s: bug not caught (%a)" name R.pp_stats stats
  | R.Budget_exhausted stats ->
    Alcotest.failf "%s: budget exhausted (%a)" name R.pp_stats stats

(* --- the correct replicated disk --- *)

let test_rd_sequential_no_crash () =
  (* One writer, no crash injection, no disk failure: the base case. *)
  let cfg =
    Rd.checker_config ~may_fail:false ~max_crashes:0 ~size:1
      [ [ Rd.write_call 0 (V.str "x") ] ]
  in
  expect_holds "sequential write" cfg

let test_rd_two_writers_same_addr () =
  let cfg =
    Rd.checker_config ~may_fail:false ~max_crashes:0 ~size:1
      [ [ Rd.write_call 0 (V.str "a") ]; [ Rd.write_call 0 (V.str "b") ] ]
  in
  expect_holds "two writers" cfg

let test_rd_writer_reader_interleaved () =
  let cfg =
    Rd.checker_config ~may_fail:false ~max_crashes:0 ~size:1
      [ [ Rd.write_call 0 (V.str "a") ]; [ Rd.read_call 0 ] ]
  in
  expect_holds "writer/reader" cfg

let test_rd_crash_during_write () =
  (* The headline check: crash at any point during a write, recovery copies
     d1 -> d2, probes must observe a consistent single disk. *)
  let cfg =
    Rd.checker_config ~may_fail:true ~max_crashes:1 ~size:1
      [ [ Rd.write_call 0 (V.str "x") ] ]
  in
  expect_holds "crash during write" cfg

let test_rd_crash_two_writers_failover () =
  let cfg =
    Rd.checker_config ~may_fail:true ~max_crashes:1 ~size:1
      [ [ Rd.write_call 0 (V.str "a") ]; [ Rd.write_call 0 (V.str "b") ] ]
  in
  expect_holds "crash + two writers + failover" cfg

let test_rd_crash_during_recovery () =
  (* max_crashes = 2 exercises crash-during-recovery (idempotence, §5.5). *)
  let cfg =
    Rd.checker_config ~may_fail:false ~max_crashes:2 ~size:1
      [ [ Rd.write_call 0 (V.str "x") ] ]
  in
  expect_holds "crash during recovery" cfg

let test_rd_two_addresses () =
  let cfg =
    Rd.checker_config ~may_fail:false ~max_crashes:1 ~size:2
      [ [ Rd.write_call 0 (V.str "a") ]; [ Rd.write_call 1 (V.str "b") ] ]
  in
  expect_holds "two addresses, independent locks" cfg

let test_rd_sequenced_ops_per_thread () =
  (* A thread writes then reads its own write: session order respected. *)
  let cfg =
    Rd.checker_config ~may_fail:false ~max_crashes:0 ~size:1
      [ [ Rd.write_call 0 (V.str "a"); Rd.read_call 0 ];
        [ Rd.write_call 0 (V.str "b") ] ]
  in
  expect_holds "sequenced ops per thread" cfg

(* --- seeded bugs must be rejected (E7) --- *)

let buggy_config ~recovery ?(may_fail = true) ?(max_crashes = 1) ~size threads =
  R.config ~spec:(Rd.spec size)
    ~init_world:(Rd.init_world ~may_fail size)
    ~crash_world:Rd.crash_world ~pp_world:Rd.pp_world ~threads ~recovery
    ~post:(Rd.probe size) ~max_crashes ()

let test_bug_no_recovery () =
  let cfg =
    buggy_config ~recovery:Rd.Buggy.recover_nop ~size:1
      [ [ Rd.write_call 0 (V.str "x") ] ]
  in
  expect_violation "missing recovery" cfg

let test_bug_zeroing_recovery () =
  (* The paper's §1 example of wrong recovery: zero both disks. *)
  let cfg =
    buggy_config ~recovery:(Rd.Buggy.recover_zero 1) ~may_fail:false ~size:1
      [ [ Rd.write_call 0 (V.str "x") ] ]
  in
  expect_violation "zeroing recovery reverts completed writes" cfg

let test_bug_partial_recovery () =
  let cfg =
    buggy_config ~recovery:(Rd.Buggy.recover_partial 2) ~size:2
      [ [ Rd.write_call 1 (V.str "x") ] ]
  in
  expect_violation "partial recovery misses address 1" cfg

let test_bug_unlocked_write () =
  (* Two lockless writers can install opposite orders on the two disks;
     a disk-1 failure between two probe reads exposes it. *)
  let cfg =
    buggy_config ~recovery:(Rd.recover_prog 1) ~may_fail:true ~max_crashes:0 ~size:1
      [ [ Rd.Buggy.write_call_unlocked 0 (V.str "a") ];
        [ Rd.Buggy.write_call_unlocked 0 (V.str "b") ] ]
  in
  expect_violation "unlocked writes" cfg

let test_bug_early_unlock () =
  let cfg =
    buggy_config ~recovery:(Rd.recover_prog 1) ~may_fail:true ~max_crashes:0 ~size:1
      [ [ Rd.Buggy.write_call_early_unlock 0 (V.str "a") ];
        [ Rd.Buggy.write_call_early_unlock 0 (V.str "b") ] ]
  in
  expect_violation "early unlock" cfg

let test_bug_double_release_is_ub () =
  (* Releasing an un-held lock is code-level UB and must be flagged. *)
  let open Sched.Prog.Syntax in
  let bad_prog : (Rd.world, V.t) Sched.Prog.t =
    let* () = Rd.unlock 0 in
    Sched.Prog.return V.unit
  in
  let cfg =
    buggy_config ~recovery:(Rd.recover_prog 1) ~may_fail:false ~max_crashes:0 ~size:1
      [ [ (Tslang.Spec.call "rd_read" [ V.int 0 ], bad_prog) ] ]
  in
  match R.check cfg with
  | R.Refinement_violated (f, _) ->
    Alcotest.(check bool) "mentions UB" true
      (Astring_contains.contains f.R.reason "undefined")
  | _ -> Alcotest.fail "double release not caught"

(* --- counterexample quality --- *)

let test_trace_contents () =
  (* the zeroing-recovery counterexample must tell the whole story: the
     write, the crash, the recovery steps, and the violating probe read *)
  let cfg =
    buggy_config ~recovery:(Rd.Buggy.recover_zero 1) ~may_fail:false ~size:1
      [ [ Rd.write_call 0 (V.str "x") ] ]
  in
  match R.check cfg with
  | R.Refinement_violated (f, _) ->
    let whole = String.concat "\n" f.R.trace in
    Alcotest.(check bool) "mentions the write" true
      (Astring_contains.contains whole "disk_write");
    Alcotest.(check bool) "mentions the crash" true (Astring_contains.contains whole "CRASH");
    Alcotest.(check bool) "mentions recovery" true
      (Astring_contains.contains whole "recovery:");
    Alcotest.(check bool) "ends at the probe" true (Astring_contains.contains whole "post");
    Alcotest.(check bool) "reason names the value" true
      (Astring_contains.contains f.R.reason "returning")
  | _ -> Alcotest.fail "expected a violation"

let test_stats_accounting () =
  (* sanity relations on the statistics of a passing run *)
  let cfg =
    Rd.checker_config ~may_fail:false ~max_crashes:1 ~size:1
      [ [ Rd.write_call 0 (V.str "x") ] ]
  in
  match R.check cfg with
  | R.Refinement_holds s ->
    Alcotest.(check bool) "steps >= executions" true (s.R.steps >= s.R.executions);
    Alcotest.(check bool) "crashes counted" true (s.R.crashes_injected > 0);
    Alcotest.(check bool) "candidates bounded" true
      (s.R.max_candidates >= 1 && s.R.max_candidates < 100);
    Alcotest.(check bool) "frontier depth tracked" true (s.R.frontier_hwm > 0);
    Alcotest.(check bool) "frontier no deeper than total steps" true
      (s.R.frontier_hwm <= s.R.steps)
  | _ -> Alcotest.fail "expected pass"

let test_structured_events () =
  (* the structured counterexample must agree with the flat trace and be
     renderable as lanes and as a Chrome trace document *)
  let cfg =
    buggy_config ~recovery:(Rd.Buggy.recover_zero 1) ~may_fail:false ~size:1
      [ [ Rd.write_call 0 (V.str "x") ] ]
  in
  match R.check cfg with
  | R.Refinement_violated (f, _) ->
    Alcotest.(check bool) "events present" true (f.R.events <> []);
    Alcotest.(check (list string))
      "trace is the rendered events" f.R.trace
      (List.map (fun e -> e.R.ev_text) f.R.events);
    Alcotest.(check bool) "a crash event is structured" true
      (List.exists (fun e -> e.R.ev_kind = R.Crash) f.R.events);
    Alcotest.(check bool) "main-phase events carry a thread id" true
      (List.exists
         (fun e -> e.R.ev_phase = R.Main && e.R.ev_tid <> None)
         f.R.events);
    let lanes = Fmt.str "%a" R.pp_failure_lanes f in
    Alcotest.(check bool) "lanes mention t0" true (Astring_contains.contains lanes "t0");
    (* the Chrome export must survive a JSON round-trip *)
    let doc = Obs.Json.to_string (R.failure_chrome f) in
    (match Obs.Json.of_string doc with
    | Ok (Obs.Json.Obj fields) ->
      (match List.assoc_opt "traceEvents" fields with
      | Some (Obs.Json.Arr evs) ->
        Alcotest.(check int) "one trace event per failure event"
          (List.length f.R.events) (List.length evs)
      | _ -> Alcotest.fail "no traceEvents array")
    | Ok _ -> Alcotest.fail "chrome doc is not an object"
    | Error e -> Alcotest.failf "chrome doc does not parse: %s" e)
  | _ -> Alcotest.fail "expected a violation"

let test_check_exn_messages () =
  (* the two check_exn failure modes must be distinguishable by prefix and
     both must include the rendered stats *)
  let violating =
    buggy_config ~recovery:Rd.Buggy.recover_nop ~size:1
      [ [ Rd.write_call 0 (V.str "x") ] ]
  in
  (match R.check_exn violating with
  | _ -> Alcotest.fail "expected check_exn to raise on a violation"
  | exception Failure msg ->
    Alcotest.(check bool) "violation prefix" true
      (String.length msg > 20 && String.sub msg 0 20 = "Refinement_violated:");
    Alcotest.(check bool) "violation includes stats" true
      (Astring_contains.contains msg "executions="));
  let starved =
    Rd.checker_config ~may_fail:false ~max_crashes:1 ~size:1
      [ [ Rd.write_call 0 (V.str "x") ] ]
  in
  let starved = { starved with R.step_budget = 3 } in
  match R.check_exn starved with
  | _ -> Alcotest.fail "expected check_exn to raise on budget exhaustion"
  | exception Failure msg ->
    Alcotest.(check bool) "budget prefix" true
      (String.length msg > 17 && String.sub msg 0 17 = "Budget_exhausted:");
    Alcotest.(check bool) "budget includes stats" true
      (Astring_contains.contains msg "steps=")

(* --- deadlock detection --- *)

let test_deadlock_detected () =
  let open Sched.Prog.Syntax in
  (* Two threads acquiring two locks in opposite orders. *)
  let t1 : (Rd.world, V.t) Sched.Prog.t =
    let* () = Rd.lock 0 in
    let* () = Rd.lock 1 in
    let* () = Rd.unlock 1 in
    let* () = Rd.unlock 0 in
    Sched.Prog.return V.unit
  in
  let t2 : (Rd.world, V.t) Sched.Prog.t =
    let* () = Rd.lock 1 in
    let* () = Rd.lock 0 in
    let* () = Rd.unlock 0 in
    let* () = Rd.unlock 1 in
    Sched.Prog.return V.unit
  in
  let cfg =
    R.config ~spec:(Rd.spec 2)
      ~init_world:(Rd.init_world ~may_fail:false 2)
      ~crash_world:Rd.crash_world ~pp_world:Rd.pp_world
      ~threads:
        [ [ (Tslang.Spec.call "rd_write" [ V.int 0; V.str "0" ], t1) ];
          [ (Tslang.Spec.call "rd_write" [ V.int 1; V.str "0" ], t2) ] ]
      ~recovery:(Rd.recover_prog 2) ~max_crashes:0 ()
  in
  (match R.check cfg with
  | R.Refinement_violated (f, _) ->
    Alcotest.(check bool) "mentions deadlock" true
      (Astring_contains.contains f.R.reason "deadlock")
  | _ -> Alcotest.fail "deadlock not detected")

let suite =
  [
    Alcotest.test_case "rd: sequential write" `Quick test_rd_sequential_no_crash;
    Alcotest.test_case "rd: two writers same addr" `Quick test_rd_two_writers_same_addr;
    Alcotest.test_case "rd: writer/reader" `Quick test_rd_writer_reader_interleaved;
    Alcotest.test_case "rd: crash during write" `Quick test_rd_crash_during_write;
    Alcotest.test_case "rd: crash + 2 writers + failover" `Slow test_rd_crash_two_writers_failover;
    Alcotest.test_case "rd: crash during recovery" `Quick test_rd_crash_during_recovery;
    Alcotest.test_case "rd: two addresses" `Quick test_rd_two_addresses;
    Alcotest.test_case "rd: sequenced ops per thread" `Quick test_rd_sequenced_ops_per_thread;
    Alcotest.test_case "bug: no recovery" `Quick test_bug_no_recovery;
    Alcotest.test_case "bug: zeroing recovery" `Quick test_bug_zeroing_recovery;
    Alcotest.test_case "bug: partial recovery" `Quick test_bug_partial_recovery;
    Alcotest.test_case "bug: unlocked writes" `Quick test_bug_unlocked_write;
    Alcotest.test_case "bug: early unlock" `Quick test_bug_early_unlock;
    Alcotest.test_case "bug: double release is UB" `Quick test_bug_double_release_is_ub;
    Alcotest.test_case "deadlock detected" `Quick test_deadlock_detected;
    Alcotest.test_case "counterexample trace contents" `Quick test_trace_contents;
    Alcotest.test_case "structured counterexample events" `Quick test_structured_events;
    Alcotest.test_case "check_exn distinct messages" `Quick test_check_exn_messages;
    Alcotest.test_case "stats accounting" `Quick test_stats_accounting;
  ]
