(* The inode file system over the journal (lib/fs):
   - qcheck properties for the bitmap allocator and the inode/dirent
     marshalling (round-trip, alloc/free disjointness, no-leak);
   - positive refinement of create/append/read/readdir/mkdir/unlink/
     rename/fsync against the atomic Gfs.Fs spec — interleavings x crash
     points (incl. crash-during-recovery) x fault schedules, under all
     three exploration strategies;
   - the seeded bugs: allocator double-free across a crash, rename split
     into two transactions, and the spool's missing fsync before the
     directory commit — each caught, one kept as a golden counterexample
     byte-identical across strategies;
   - Mailboat's spool re-hosted on the real FS: deliver/pickup/delete
     run end to end, and refinement holds with crashes. *)

module V = Tslang.Value
module R = Perennial_core.Refinement
module E = Perennial_core.Explore
module Runner = Sched.Runner
module L = Perennial_fs.Layout
module Bm = Perennial_fs.Bitmap
module In = Perennial_fs.Inode
module De = Perennial_fs.Dirent
module Fs = Perennial_fs.Fs
module Sp = Perennial_fs.Spool
module MC = Mailboat.Core
module SMap = Map.Make (String)

let expect_holds name = function
  | R.Refinement_holds stats -> stats
  | R.Refinement_violated (f, _) -> Alcotest.failf "%s: %a" name R.pp_failure f
  | R.Budget_exhausted stats ->
    Alcotest.failf "%s: budget exhausted (%a)" name R.pp_stats stats

let expect_violated name = function
  | R.Refinement_violated (f, _) -> f
  | R.Refinement_holds stats -> Alcotest.failf "%s: bug not caught (%a)" name R.pp_stats stats
  | R.Budget_exhausted stats ->
    Alcotest.failf "%s: budget exhausted (%a)" name R.pp_stats stats

let params ?durability ~ni ~nb () = Fs.params ?durability (L.v ~n_inodes:ni ~n_blocks:nb ())

(* ------------------------------------------------------------------ *)
(* Bitmap allocator (qcheck)                                            *)
(* ------------------------------------------------------------------ *)

(* A bitmap reached by an arbitrary op sequence. *)
let bitmap_gen =
  QCheck.Gen.(
    int_range 1 8 >>= fun n ->
    list_size (int_bound 12) (pair bool (int_bound 9)) >>= fun ops ->
    return
      (List.fold_left (fun t (set, i) -> if set then Bm.set t i else Bm.clear t i) (Bm.create n) ops))

let prop_bitmap_roundtrip =
  QCheck.Test.make ~count:300 ~name:"bitmap block round-trip" (QCheck.make bitmap_gen)
    (fun t -> Bm.equal (Bm.of_block ~n:(Bm.size t) (Bm.to_block t)) t)

let prop_bitmap_no_leak =
  QCheck.Test.make ~count:300 ~name:"bitmap no-leak: used + free = size" (QCheck.make bitmap_gen)
    (fun t -> List.length (Bm.used t) + Bm.free_count t = Bm.size t)

let prop_bitmap_alloc_disjoint =
  QCheck.Test.make ~count:300 ~name:"bitmap alloc: fresh, disjoint, accounted"
    (QCheck.make bitmap_gen) (fun t ->
      match Bm.alloc t with
      | None -> Bm.free_count t = 0
      | Some (t', i) ->
        (not (Bm.mem t i)) && Bm.mem t' i
        && Bm.free_count t' = Bm.free_count t - 1
        && List.length (Bm.used t') = List.length (Bm.used t) + 1)

let prop_bitmap_alloc_n =
  QCheck.Test.make ~count:300 ~name:"bitmap alloc_n: distinct and previously free"
    (QCheck.make QCheck.Gen.(pair bitmap_gen (int_bound 9))) (fun (t, k) ->
      match Bm.alloc_n t k with
      | None -> Bm.free_count t < k
      | Some (t', is) ->
        List.length is = k
        && List.length (List.sort_uniq compare is) = k
        && List.for_all (fun i -> (not (Bm.mem t i)) && Bm.mem t' i) is
        && Bm.free_count t' = Bm.free_count t - k)

(* A fresh disk block (Block.zero) reads as an all-free bitmap. *)
let test_bitmap_fresh_block () =
  let t = Bm.of_block ~n:4 Disk.Block.zero in
  Alcotest.(check int) "all free" 4 (Bm.free_count t)

(* ------------------------------------------------------------------ *)
(* Inode / directory-entry marshalling (qcheck)                         *)
(* ------------------------------------------------------------------ *)

let inode_gen =
  QCheck.Gen.(
    triple (oneofl [ In.File; In.Dir ]) (int_bound 20) (list_size (int_bound 5) (int_bound 30)))

let prop_inode_roundtrip =
  QCheck.Test.make ~count:300 ~name:"inode block round-trip" (QCheck.make inode_gen)
    (fun (kind, len, ptrs) ->
      let i = In.v ~kind ~len ~ptrs in
      match In.of_block (In.to_block i) with Some i' -> In.equal i i' | None -> false)

let test_inode_free () =
  Alcotest.(check bool) "zero block is a free slot" true (In.of_block In.free = None);
  Alcotest.(check bool) "is_free" true (In.is_free In.free)

let entries_gen =
  QCheck.Gen.(
    list_size (int_bound 5)
      (pair (string_size ~gen:(char_range 'a' 'd') (int_range 1 3)) (int_bound 9))
    >>= fun es ->
    (* sorted and name-unique, the invariant the FS maintains on disk *)
    let es = List.sort_uniq (fun (a, _) (b, _) -> String.compare a b) es in
    return es)

let prop_dirent_roundtrip =
  QCheck.Test.make ~count:300 ~name:"dirent block round-trip" (QCheck.make entries_gen)
    (fun es -> De.of_block (De.to_block es) = es)

let test_dirent_names () =
  List.iter
    (fun n -> Alcotest.(check bool) ("invalid: " ^ n) false (De.valid_name n))
    [ ""; "a:b"; "a;b"; "a|b"; "a/b"; "a,b" ];
  List.iter
    (fun n -> Alcotest.(check bool) ("valid: " ^ n) true (De.valid_name n))
    [ "a"; "tmp-m0"; "user0" ]

let test_layout_addresses () =
  let l = L.v ~n_inodes:3 ~n_blocks:4 () in
  let addrs =
    (L.bitmap_addr l :: List.init 3 (L.inode_addr l)) @ List.init 4 (L.data_addr l)
  in
  Alcotest.(check int) "distinct addresses" (L.n_data l)
    (List.length (List.sort_uniq compare addrs));
  Alcotest.(check bool) "all below n_data" true (List.for_all (fun a -> a < L.n_data l) addrs);
  Alcotest.(check bool) "journal region beyond data" true (L.disk_size l > L.n_data l)

(* ------------------------------------------------------------------ *)
(* Positive refinement against the atomic Gfs.Fs spec                   *)
(* ------------------------------------------------------------------ *)

let test_create_append_all_strategies () =
  let p = params ~ni:4 ~nb:5 () in
  let dirs = [ "a" ] and files = [ ("a", "f", "xy") ] in
  let cfg strategy =
    R.check ~strategy
      (Fs.checker_config p ~dirs ~files
         ~post:(Fs.probe p ~dirs ~files:[ ("a", "f"); ("a", "g") ])
         ~max_crashes:1
         [ [ Fs.create_call p "a" "g" ]; [ Fs.append_call p "a" "f" "z" ] ])
  in
  let stats =
    List.map
      (fun s -> expect_holds (Printf.sprintf "create+append under %s" (E.strategy_name s)) (cfg s))
      E.all_strategies
  in
  match List.map (fun (s : R.stats) -> s.executions) stats with
  | [ naive; dpor; dpor_sleep ] ->
    Alcotest.(check bool) "dpor explores no more than naive" true (dpor <= naive);
    Alcotest.(check bool) "sleep sets explore no more than dpor" true (dpor_sleep <= dpor)
  | _ -> assert false

let test_rename_concurrent_read () =
  let p = params ~ni:5 ~nb:6 () in
  ignore
    (expect_holds "rename replaces target under crashes"
       (R.check ~strategy:E.Dpor_sleep
          (Fs.checker_config p ~dirs:[ "a"; "b" ]
             ~files:[ ("a", "s", "xy"); ("b", "t", "uv") ]
             ~max_crashes:1
             [ [ Fs.rename_call p ~src:("a", "s") ~dst:("b", "t") ];
               [ Fs.read_call p "b" "t" ] ])))

let test_unlink_create_concurrent () =
  let p = params ~ni:5 ~nb:6 () in
  ignore
    (expect_holds "unlink concurrent with create"
       (R.check ~strategy:E.Dpor_sleep
          (Fs.checker_config p ~dirs:[ "a" ]
             ~files:[ ("a", "f", "xy") ]
             ~post:
               (Fs.probe p ~dirs:[ "a" ] ~files:[ ("a", "f"); ("a", "g") ])
             ~max_crashes:1
             [ [ Fs.unlink_call p "a" "f" ]; [ Fs.create_call p "a" "g" ] ])))

let test_mkdir_readdir () =
  let p = params ~ni:3 ~nb:4 () in
  ignore
    (expect_holds "mkdir concurrent with readdir of the root"
       (R.check ~strategy:E.Dpor_sleep
          (Fs.checker_config p ~dirs:[ "a" ] ~files:[] ~max_crashes:1
             [ [ Fs.mkdir_call p "b" ]; [ Fs.readdir_call p "/" ] ])))

let test_deferred_append_fsync () =
  (* `Deferred: appends buffer in the volatile cache; a crash truncates to
     the synced prefix — exactly the spec's crash transition. *)
  let p = params ~durability:`Deferred ~ni:3 ~nb:4 () in
  ignore
    (expect_holds "deferred append/fsync under crashes"
       (R.check ~strategy:E.Dpor_sleep
          (Fs.checker_config p ~dirs:[ "a" ]
             ~files:[ ("a", "f", "") ]
             ~max_crashes:1
             [ [ Fs.append_call p "a" "f" "zz"; Fs.fsync_call p "a" "f" ];
               [ Fs.read_call p "a" "f" ] ])))

let test_crash_during_recovery () =
  let p = params ~ni:3 ~nb:4 () in
  ignore
    (expect_holds "append with crash during recovery"
       (R.check
          (Fs.checker_config p ~dirs:[ "a" ]
             ~files:[ ("a", "f", "x") ]
             ~max_crashes:2
             [ [ Fs.append_call p "a" "f" "y" ] ])))

let test_ft_ops_with_faults () =
  (* Graceful degradation: bounded-retry allocator read + commit_ft
     abort-before-record, under a fault budget and a crash. *)
  let p = params ~ni:4 ~nb:5 () in
  ignore
    (expect_holds "ft create/append under faults 1 + crash"
       (R.check ~strategy:E.Dpor_sleep ~faults:1
          (Fs.checker_config p ~dirs:[ "a" ]
             ~files:[ ("a", "f", "x") ]
             ~post:(Fs.probe p ~dirs:[ "a" ] ~files:[ ("a", "f"); ("a", "g") ])
             ~max_crashes:1
             [ [ Fs.create_ft_call p "a" "g"; Fs.append_ft_call p "a" "f" "y" ] ])))

(* ------------------------------------------------------------------ *)
(* Seeded bugs                                                          *)
(* ------------------------------------------------------------------ *)

(* Post probes that WRITE after recovery: they make the double-free
   observable by re-allocating the prematurely freed blocks. *)
let double_free_post p =
  [ Fs.readdir_call p "a";
    Fs.create_call p "a" "g";
    Fs.append_call p "a" "g" "zz";
    Fs.read_call p "a" "f";
    Fs.read_call p "a" "g" ]

let double_free_cfg p unlink_call =
  Fs.checker_config p ~dirs:[ "a" ]
    ~files:[ ("a", "f", "xy") ]
    ~post:(double_free_post p) ~max_crashes:1
    [ [ unlink_call ] ]

let test_bug_double_free () =
  let p = params ~ni:4 ~nb:4 () in
  (* positive control: the journaled unlink survives the same probes *)
  ignore
    (expect_holds "journaled unlink holds"
       (R.check (double_free_cfg p (Fs.unlink_call p "a" "f"))));
  let f =
    expect_violated "allocator double-free caught"
      (R.check (double_free_cfg p (Fs.Buggy.unlink_call_free_first p "a" "f")))
  in
  Alcotest.(check bool) "counterexample crashes" true
    (List.exists (fun (e : R.event) -> e.ev_kind = R.Crash) f.events)

let rename_two_txns_cfg p =
  Fs.checker_config p ~dirs:[ "a"; "b" ]
    ~files:[ ("a", "s", "xy"); ("b", "t", "uv") ]
    ~max_crashes:1
    [ [ Fs.Buggy.rename_call_two_txns p ~src:("a", "s") ~dst:("b", "t") ] ]

let test_bug_rename_two_txns () =
  let p = params ~ni:5 ~nb:6 () in
  (* positive control first: the one-transaction rename holds *)
  ignore
    (expect_holds "one-txn rename holds"
       (R.check
          (Fs.checker_config p ~dirs:[ "a"; "b" ]
             ~files:[ ("a", "s", "xy"); ("b", "t", "uv") ]
             ~max_crashes:1
             [ [ Fs.rename_call p ~src:("a", "s") ~dst:("b", "t") ] ])));
  let f = expect_violated "two-txn rename caught" (R.check (rename_two_txns_cfg p)) in
  Alcotest.(check bool) "counterexample crashes" true
    (List.exists (fun (e : R.event) -> e.ev_kind = R.Crash) f.events)

(* ------------------------------------------------------------------ *)
(* Golden counterexample, byte-identical across strategies              *)
(* ------------------------------------------------------------------ *)

let read_golden name =
  let candidates =
    [ Filename.concat "golden" (name ^ ".lanes.txt");
      Filename.concat "test/golden" (name ^ ".lanes.txt") ]
  in
  let file =
    match List.find_opt Sys.file_exists candidates with
    | Some f -> f
    | None -> Alcotest.failf "golden file %s.lanes.txt not found" name
  in
  let ic = open_in_bin file in
  let s = really_input_string ic (in_channel_length ic) in
  close_in ic;
  s

let test_golden_rename_two_txns () =
  let p = params ~ni:5 ~nb:6 () in
  List.iter
    (fun strategy ->
      let f =
        expect_violated
          (Printf.sprintf "two-txn rename under %s" (E.strategy_name strategy))
          (R.check ~strategy (rename_two_txns_cfg p))
      in
      Alcotest.(check string)
        (Printf.sprintf "fs_rename_two_txns lanes under %s" (E.strategy_name strategy))
        (read_golden "fs_rename_two_txns")
        (Fmt.str "%a" R.pp_failure_lanes f))
    E.all_strategies

(* ------------------------------------------------------------------ *)
(* Mailboat's spool on the real file system                             *)
(* ------------------------------------------------------------------ *)

let test_spool_deliver_pickup_delete_runs () =
  (* The full Maildir cycle executed on the fs-backed world. *)
  let sp = Sp.params ~users:1 () in
  let w0 = Sp.init_world sp ~users:1 in
  let w1, _ = Runner.run1 w0 (Sp.deliver_prog sp 0 "abcd") in
  let w2, inbox = Runner.run1 w1 (Sp.pickup_prog sp 0) in
  Alcotest.(check bool) "picked up" true
    (inbox = V.list [ V.pair (V.str "m0") (V.str "abcd") ]);
  let w3, _ = Runner.run1 w2 (Sp.delete_prog sp 0 "m0") in
  let w4, _ = Runner.run1 w3 (Sp.unlock_prog 0) in
  let w5, inbox = Runner.run1 w4 (Sp.pickup_prog sp 0) in
  Alcotest.(check bool) "deleted" true (inbox = V.list []);
  (* the spool itself is empty again: the rename unspooled *)
  let _, spool = Runner.run1 w5 (Fs.readdir_prog sp MC.spool) in
  Alcotest.(check bool) "spool empty" true (fst (V.get_pair spool) = V.list [])

let test_spool_deliver_crash () =
  let sp = Sp.params ~users:1 () in
  ignore
    (expect_holds "spool deliver with crash"
       (R.check ~strategy:E.Dpor_sleep
          (Sp.checker_config sp ~users:1 ~max_crashes:1 [ [ Sp.deliver_call sp 0 "ab" ] ])))

let test_spool_deliver_pickup_concurrent () =
  let sp = Sp.params ~users:1 () in
  ignore
    (expect_holds "spool deliver concurrent with pickup"
       (R.check ~strategy:E.Dpor_sleep
          (Sp.checker_config sp ~users:1 ~max_crashes:0
             [ [ Sp.deliver_call sp 0 "ab" ];
               [ Sp.pickup_call sp 0; Sp.unlock_call 0 ] ])))

let test_spool_delete_session () =
  let sp = Sp.params ~users:1 () in
  let w = Fs.init_world sp ~dirs:(MC.dirs ~users:1) ~files:[ (MC.user_dir 0, "m0", "hi") ] in
  let st = SMap.add (MC.user_dir 0) (SMap.singleton "m0" "hi") (MC.spec_init ~users:1) in
  let spec = { (MC.spec ~users:1) with Tslang.Spec.init = st } in
  ignore
    (expect_holds "spool pickup/delete session with crash"
       (R.check ~strategy:E.Dpor_sleep
          (R.config ~spec ~init_world:w ~crash_world:Fs.crash_world ~pp_world:Fs.pp_world
             ~threads:[ [ Sp.pickup_call sp 0; Sp.delete_call sp 0 "m0"; Sp.unlock_call 0 ] ]
             ~recovery:(Sp.recover_prog sp)
             ~post:(Sp.session_calls sp 0) ~max_crashes:1 ())))

let test_spool_deferred_fsync () =
  let sp = Sp.params ~durability:`Deferred ~users:1 () in
  ignore
    (expect_holds "deferred spool deliver (with fsync) holds"
       (R.check ~strategy:E.Dpor_sleep
          (Sp.checker_config sp ~users:1 ~max_crashes:1 [ [ Sp.deliver_call sp 0 "ab" ] ])))

let test_spool_bug_nofsync () =
  (* The seeded bug: publish the mailbox name without fsyncing the spooled
     bytes; a crash after the rename truncates delivered mail. *)
  let sp = Sp.params ~durability:`Deferred ~users:1 () in
  let f =
    expect_violated "missing fsync before directory commit caught"
      (R.check ~strategy:E.Dpor_sleep
         (Sp.checker_config sp ~users:1 ~max_crashes:1
            [ [ Sp.deliver_nofsync_call sp 0 "ab" ] ]))
  in
  Alcotest.(check bool) "counterexample crashes" true
    (List.exists (fun (e : R.event) -> e.ev_kind = R.Crash) f.events);
  (* the same program is correct under the paper's always-durable model *)
  let sp_sync = Sp.params ~users:1 () in
  ignore
    (expect_holds "nofsync deliver holds under `Sync"
       (R.check ~strategy:E.Dpor_sleep
          (Sp.checker_config sp_sync ~users:1 ~max_crashes:1
             [ [ Sp.deliver_nofsync_call sp_sync 0 "ab" ] ])))

let suite =
  [
    QCheck_alcotest.to_alcotest prop_bitmap_roundtrip;
    QCheck_alcotest.to_alcotest prop_bitmap_no_leak;
    QCheck_alcotest.to_alcotest prop_bitmap_alloc_disjoint;
    QCheck_alcotest.to_alcotest prop_bitmap_alloc_n;
    Alcotest.test_case "bitmap: fresh block reads all-free" `Quick test_bitmap_fresh_block;
    QCheck_alcotest.to_alcotest prop_inode_roundtrip;
    Alcotest.test_case "inode: free slot" `Quick test_inode_free;
    QCheck_alcotest.to_alcotest prop_dirent_roundtrip;
    Alcotest.test_case "dirent: name validity" `Quick test_dirent_names;
    Alcotest.test_case "layout: address map" `Quick test_layout_addresses;
    Alcotest.test_case "fs: create+append, all strategies" `Quick test_create_append_all_strategies;
    Alcotest.test_case "fs: rename vs concurrent read" `Quick test_rename_concurrent_read;
    Alcotest.test_case "fs: unlink vs concurrent create" `Quick test_unlink_create_concurrent;
    Alcotest.test_case "fs: mkdir vs readdir" `Quick test_mkdir_readdir;
    Alcotest.test_case "fs: deferred append/fsync" `Quick test_deferred_append_fsync;
    Alcotest.test_case "fs: crash during recovery" `Quick test_crash_during_recovery;
    Alcotest.test_case "fs: ft ops under faults" `Quick test_ft_ops_with_faults;
    Alcotest.test_case "bug: allocator double-free caught" `Quick test_bug_double_free;
    Alcotest.test_case "bug: two-transaction rename caught" `Quick test_bug_rename_two_txns;
    Alcotest.test_case "golden: fs counterexample" `Quick test_golden_rename_two_txns;
    Alcotest.test_case "spool: deliver/pickup/delete on lib/fs" `Quick
      test_spool_deliver_pickup_delete_runs;
    Alcotest.test_case "spool: deliver with crash" `Quick test_spool_deliver_crash;
    Alcotest.test_case "spool: deliver vs pickup" `Quick test_spool_deliver_pickup_concurrent;
    Alcotest.test_case "spool: pickup/delete session" `Quick test_spool_delete_session;
    Alcotest.test_case "spool: deferred deliver+fsync holds" `Quick test_spool_deferred_fsync;
    Alcotest.test_case "bug: spool missing fsync caught" `Quick test_spool_bug_nofsync;
  ]
