(* Tests for the observability-v2 surfaces: the coverage site registry and
   its vacuity detector, pruning provenance, causal span trees threaded
   through fs -> txn_log -> disk, latency percentiles, and the byte-stable
   Chrome trace golden.  Also the qcheck round-trip properties for metrics
   snapshots and JSON documents. *)

module M = Obs.Metrics
module T = Obs.Trace
module J = Obs.Json
module C = Obs.Coverage
module V = Tslang.Value
module R = Perennial_core.Refinement
module E = Perennial_core.Explore
module Rd = Systems.Replicated_disk
module L = Perennial_fs.Layout
module Fs = Perennial_fs.Fs

let with_fake_clock f =
  let t = ref 0. in
  T.set_clock (fun () ->
      t := !t +. 10.;
      !t);
  Fun.protect ~finally:(fun () -> T.set_clock (fun () -> Unix.gettimeofday () *. 1e6)) f

let with_coverage f =
  C.set_enabled true;
  C.reset ();
  Fun.protect
    ~finally:(fun () ->
      C.reset ();
      C.set_enabled false)
    f

(* --- coverage registry semantics --- *)

let test_coverage_basics () =
  with_coverage (fun () ->
      C.register C.Crash "main:wal_append";
      C.register C.Crash "main:wal_append" (* idempotent *);
      C.hit C.Crash "main:commit";
      C.hit C.Crash "main:commit";
      C.register C.Arm "wal:write:err";
      let s = C.summarize () in
      Alcotest.(check int) "three sites" 3 s.C.total;
      Alcotest.(check int) "one covered" 1 s.C.covered;
      Alcotest.(check int) "two vacuous" 2 (List.length s.C.vacuous);
      let sc = C.summarize ~kind:C.Crash () in
      Alcotest.(check int) "crash sites" 2 sc.C.total;
      Alcotest.(check int) "crash covered" 1 sc.C.covered;
      (match C.sites () with
      | [ (C.Crash, "main:commit", 2); (C.Crash, "main:wal_append", 0); (C.Arm, "wal:write:err", 0) ]
        -> ()
      | ss -> Alcotest.failf "unexpected site list (%d entries)" (List.length ss));
      match C.report_json () with
      | J.Obj fields ->
        (match List.assoc_opt "schema" fields with
        | Some (J.Str "perennial-coverage/v1") -> ()
        | _ -> Alcotest.fail "report schema missing");
        (match List.assoc_opt "vacuous" fields with
        | Some (J.Arr l) -> Alcotest.(check int) "vacuous listed" 2 (List.length l)
        | _ -> Alcotest.fail "vacuous list missing")
      | _ -> Alcotest.fail "report is not an object")

let test_coverage_disabled_noop () =
  C.set_enabled false;
  C.reset ();
  C.register C.Crash "x";
  C.hit C.Fault "y";
  Alcotest.(check int) "nothing recorded when disabled" 0 (C.summarize ()).C.total

(* Under the naive (exhaustive) strategy every registered crash site is also
   explored: a full fs check reports 100% crash coverage. *)
let test_fs_crash_sites_fully_covered () =
  with_coverage (fun () ->
      let p = Fs.params (L.v ~n_inodes:4 ~n_blocks:5 ()) in
      (match
         R.check
           (Fs.checker_config p ~dirs:[ "a" ]
              ~files:[ ("a", "f", "xy") ]
              ~max_crashes:1
              [ [ Fs.create_call p "a" "g" ]; [ Fs.append_call p "a" "f" "z" ] ])
       with
      | R.Refinement_holds _ -> ()
      | _ -> Alcotest.fail "fs instance expected to hold");
      let s = C.summarize ~kind:C.Crash () in
      Alcotest.(check bool) "many crash sites registered" true (s.C.total > 10);
      Alcotest.(check int) "all crash sites covered" s.C.total s.C.covered;
      Alcotest.(check (list (pair string string))) "no vacuous crash sites" []
        (List.map (fun (k, id) -> (C.kind_name k, id)) s.C.vacuous))

(* The vacuity detector: fault-tolerant ops declare fault points, so with a
   fault budget of zero those sites register but are never exercised — the
   check "passes" as vacuous evidence for its fault-handling paths. *)
let test_vacuity_flags_unreachable_fault_sites () =
  with_coverage (fun () ->
      let cfg =
        Rd.checker_config ~may_fail:false ~size:1 ~max_crashes:0
          [ [ Rd.write_ft_call 0 (V.str "x") ]; [ Rd.read_ft_call 0 ] ]
      in
      (match R.check ~faults:0 cfg with
      | R.Refinement_holds _ -> ()
      | _ -> Alcotest.fail "rd instance expected to hold");
      let s = C.summarize ~kind:C.Fault () in
      Alcotest.(check bool) "fault sites registered" true (s.C.total > 0);
      Alcotest.(check int) "none exercised" 0 s.C.covered;
      Alcotest.(check int) "all flagged vacuous" s.C.total (List.length s.C.vacuous);
      (* and with budget they are exercised: the flags clear *)
      C.reset ();
      (match R.check ~faults:1 cfg with
      | R.Refinement_holds _ -> ()
      | _ -> Alcotest.fail "rd instance expected to hold under faults");
      let s' = C.summarize ~kind:C.Fault () in
      Alcotest.(check bool) "sites again registered" true (s'.C.total > 0);
      Alcotest.(check bool) "some sites now exercised" true (s'.C.covered > 0);
      (* retry-path fault sites remain vacuous at budget 1: they only run
         after the budget is spent — the detector keeps flagging them *)
      Alcotest.(check int) "vacuous = registered - covered"
        (s'.C.total - s'.C.covered)
        (List.length s'.C.vacuous))

(* --- pruning provenance --- *)

let test_provenance_ranked_report () =
  E.Prov.set_enabled true;
  E.Prov.reset ();
  Fun.protect
    ~finally:(fun () ->
      E.Prov.reset ();
      E.Prov.set_enabled false)
    (fun () ->
      let module K = Journal.Kvs in
      let p = K.params ~n_keys:2 () in
      (match
         R.check ~strategy:E.Dpor_sleep
           (K.checker_config p ~max_crashes:1
              [ [ K.put_call p 0 (V.str "A") ]; [ K.get_call p 1 ] ])
       with
      | R.Refinement_holds _ -> ()
      | _ -> Alcotest.fail "kvs instance expected to hold");
      let es = E.Prov.entries () in
      Alcotest.(check bool) "skips recorded" true (es <> []);
      Alcotest.(check int) "total is the sum of entry counts"
        (List.fold_left (fun acc (_, _, _, n) -> acc + n) 0 es)
        (E.Prov.total ());
      let counts = List.map (fun (_, _, _, n) -> n) es in
      Alcotest.(check (list int)) "ranked by count, descending"
        (List.sort (fun a b -> compare b a) counts)
        counts;
      (* DPOR's crash pruning fires on this instance and is attributed *)
      Alcotest.(check bool) "clean-crash skips attributed" true
        (List.exists (fun (r, _, _, _) -> r = E.Prov.Clean_crash) es))

let test_provenance_disabled_noop () =
  E.Prov.set_enabled false;
  E.Prov.reset ();
  E.Prov.record E.Prov.Sleep ~site:"x" ();
  Alcotest.(check int) "nothing recorded when disabled" 0 (E.Prov.total ())

(* --- causal span trees: fs -> txn_log -> disk --- *)

(* Trace one concrete run of [prog] and reconstruct the span tree from the
   span/parent args of the Span_begin events; returns the set of root-to-leaf
   category chains (e.g. ["fs"; "txn_log"; "disk"]). *)
let span_chains prog_of =
  with_fake_clock (fun () ->
      T.reset_spans ();
      T.install_memory ();
      let p = Fs.params (L.v ~n_inodes:7 ~n_blocks:9 ()) in
      let w =
        Fs.init_world p ~dirs:[ "a"; "b" ] ~files:[ ("a", "f", "x"); ("b", "t", "u") ]
      in
      let _ = Sched.Runner.run w [ prog_of p ] in
      let evs = T.memory_events () in
      T.close ();
      T.reset_spans ();
      let begins = List.filter (fun e -> e.T.ph = T.Span_begin) evs in
      let arg_int k e =
        match List.assoc_opt k e.T.args with Some (T.I i) -> Some i | _ -> None
      in
      let parent = Hashtbl.create 16 in
      let cat_of = Hashtbl.create 16 in
      List.iter
        (fun e ->
          match arg_int "span" e with
          | None -> Alcotest.fail "span_begin without a span id"
          | Some id ->
            Hashtbl.replace cat_of id e.T.cat;
            (match arg_int "parent" e with
            | Some pid -> Hashtbl.replace parent id pid
            | None -> ()))
        begins;
      let chain_cats id =
        let rec go id acc =
          let acc = Hashtbl.find cat_of id :: acc in
          match Hashtbl.find_opt parent id with None -> acc | Some p -> go p acc
        in
        go id []
      in
      Hashtbl.fold (fun id _ acc -> chain_cats id :: acc) cat_of [])

(* Every mutating Fs op commits through the journal: its traced run must
   contain a chain descending fs -> txn_log -> disk, >= 3 layers deep. *)
let test_span_tree_depth_three_layers () =
  List.iter
    (fun (name, prog_of) ->
      let chains = span_chains prog_of in
      let deep =
        List.exists
          (fun ch ->
            List.length ch >= 3
            && (match ch with
               | "fs" :: rest -> List.mem "txn_log" rest && List.mem "disk" rest
               | _ -> false))
          chains
      in
      if not deep then
        Alcotest.failf "%s: no fs->txn_log->disk chain among: %s" name
          (String.concat " | " (List.map (String.concat "->") chains)))
    [ ("mkdir", fun p -> Fs.mkdir_prog p "c");
      ("create", fun p -> Fs.create_prog p "a" "g");
      ("append", fun p -> Fs.append_prog p "a" "f" "y");
      ("unlink", fun p -> Fs.unlink_prog p "a" "f");
      ("rename", fun p -> Fs.rename_prog p ~src:("a", "f") ~dst:("b", "t")) ]

(* span durations land in the per-layer latency histogram *)
let test_span_layer_histogram () =
  M.reset M.default;
  with_fake_clock (fun () ->
      T.reset_spans ();
      T.install_memory ();
      let p = Fs.params (L.v ~n_inodes:3 ~n_blocks:4 ()) in
      let w = Fs.init_world p ~dirs:[ "a" ] ~files:[ ("a", "f", "") ] in
      let _ = Sched.Runner.run w [ Fs.append_prog p "a" "f" "y" ] in
      T.close ();
      T.reset_spans ());
  List.iter
    (fun layer ->
      let h = M.histogram ~labels:[ ("layer", layer) ] "perennial_span_us" in
      Alcotest.(check bool) ("histogram for layer " ^ layer) true (M.hist_count h > 0))
    [ "fs"; "disk" ]

(* --- latency percentiles --- *)

let test_percentile_nearest_rank () =
  let xs = [| 50.; 10.; 40.; 30.; 20. |] in
  Alcotest.(check (float 0.0)) "p50" 30. (Mcsim.Sim.percentile xs 50.);
  Alcotest.(check (float 0.0)) "p95" 50. (Mcsim.Sim.percentile xs 95.);
  Alcotest.(check (float 0.0)) "p0 clamps" 10. (Mcsim.Sim.percentile xs 0.);
  Alcotest.(check (float 0.0)) "p100" 50. (Mcsim.Sim.percentile xs 100.);
  Alcotest.(check (float 0.0)) "empty" 0. (Mcsim.Sim.percentile [||] 50.);
  (* input not mutated *)
  Alcotest.(check bool) "input untouched" true (xs = [| 50.; 10.; 40.; 30.; 20. |])

let test_sim_latencies_populated () =
  let reqs = Array.make 40 [ Mcsim.Sim.Cpu 5.; Mcsim.Sim.Serial ("s", 1.) ] in
  let out = Mcsim.Sim.run ~cores:4 reqs in
  Alcotest.(check int) "one latency per request" 40 (Array.length out.Mcsim.Sim.latencies_us);
  Array.iter
    (fun l -> Alcotest.(check bool) "latency covers service time" true (l >= 6.))
    out.Mcsim.Sim.latencies_us;
  let p50 = Mcsim.Sim.percentile out.Mcsim.Sim.latencies_us 50. in
  let p99 = Mcsim.Sim.percentile out.Mcsim.Sim.latencies_us 99. in
  Alcotest.(check bool) "p99 >= p50" true (p99 >= p50)

(* --- qcheck: snapshot / delta / json round-trips --- *)

let gen_name =
  QCheck.Gen.(
    map
      (fun (a, b) -> Printf.sprintf "perennial_%c%c_total" a b)
      (pair (char_range 'a' 'e') (char_range 'a' 'e')))

let gen_metric =
  QCheck.Gen.(
    triple gen_name
      (small_list (pair (string_size ~gen:(char_range 'a' 'd') (return 1)) (string_size ~gen:(char_range 'x' 'z') (return 1))))
      (int_bound 1000))

let arb_metrics =
  QCheck.make
    ~print:(fun ms ->
      String.concat ";"
        (List.map (fun (n, ls, v) ->
             Printf.sprintf "%s{%s}=%d" n
               (String.concat "," (List.map (fun (k, x) -> k ^ "=" ^ x) ls))
               v)
            ms))
    QCheck.Gen.(small_list gen_metric)

let prop_snapshot_json_roundtrip =
  QCheck.Test.make ~count:100 ~name:"metrics to_json round-trips through of_string"
    arb_metrics (fun ms ->
      let r = M.create () in
      List.iter (fun (n, labels, v) -> M.inc ~by:v (M.counter ~registry:r ~labels n)) ms;
      match J.of_string (J.to_string (M.to_json ~registry:r ())) with
      | Error _ -> false
      | Ok doc -> doc = M.to_json ~registry:r ())

let prop_counters_delta =
  QCheck.Test.make ~count:100 ~name:"counters_delta reports exactly the increments"
    QCheck.(pair arb_metrics arb_metrics)
    (fun (base, extra) ->
      let r = M.create () in
      List.iter (fun (n, labels, v) -> M.inc ~by:v (M.counter ~registry:r ~labels n)) base;
      let before = M.snapshot ~registry:r () in
      List.iter (fun (n, labels, v) -> M.inc ~by:v (M.counter ~registry:r ~labels n)) extra;
      let after = M.snapshot ~registry:r () in
      let delta = M.counters_delta ~before ~after in
      (* every reported delta is positive, and the sum matches what we added *)
      List.for_all (fun (_, d) -> d > 0) delta
      && List.fold_left (fun acc (_, d) -> acc + d) 0 delta
         = List.fold_left (fun acc (_, _, v) -> acc + v) 0 extra)

let gen_json =
  QCheck.Gen.(
    sized @@ fix (fun self n ->
        let leaf =
          oneof
            [ map (fun i -> J.Int i) small_signed_int;
              map (fun f -> J.Float (float_of_int f /. 4.)) small_signed_int;
              map (fun s -> J.Str s) (string_size ~gen:printable (int_bound 8));
              map (fun b -> J.Bool b) bool;
              return J.Null ]
        in
        if n <= 0 then leaf
        else
          frequency
            [ (3, leaf);
              (1, map (fun l -> J.Arr l) (list_size (int_bound 4) (self (n / 2))));
              ( 1,
                map
                  (fun kvs -> J.Obj kvs)
                  (list_size (int_bound 4)
                     (pair (string_size ~gen:(char_range 'a' 'f') (int_bound 5)) (self (n / 2)))) ) ]))

let prop_json_roundtrip =
  QCheck.Test.make ~count:200 ~name:"arbitrary json docs round-trip"
    (QCheck.make ~print:J.to_string gen_json)
    (fun doc ->
      match J.of_string (J.to_string doc) with Ok d -> d = doc | Error _ -> false)

(* --- golden: the Chrome trace export is byte-stable --- *)

(* cwd is test/ under `dune runtest` but the project root under
   `dune exec test/test_main.exe` *)
let golden_path () =
  let candidates = [ "golden/chrome_trace.txt"; "test/golden/chrome_trace.txt" ] in
  match List.find_opt Sys.file_exists candidates with
  | Some f -> f
  | None ->
    if Sys.getenv_opt "GOLDEN_UPDATE" <> None then
      if Sys.file_exists "golden" then List.hd candidates
      else List.nth candidates 1
    else Alcotest.fail "golden file chrome_trace.txt not found"

let test_chrome_golden () =
  let doc =
    with_fake_clock (fun () ->
        T.reset_spans ();
        T.install_memory ();
        T.span_begin ~cat:"fs" ~tid:0 "fs_append";
        T.span_begin ~cat:"txn_log" ~tid:0 "txn_commit";
        T.span_begin ~cat:"disk" ~tid:0 ~args:[ ("addr", T.I 3) ] "disk_write(3)";
        ignore (T.span_end ~tid:0 ());
        ignore (T.span_end ~tid:0 ());
        T.instant ~cat:"crash" ~args:[ ("n", T.I 1) ] "crash_injection";
        ignore (T.span_end ~tid:0 ());
        ignore (T.with_span ~cat:"refinement" ~tid:1 "recovery" (fun () -> ()));
        let evs = T.memory_events () in
        T.close ();
        T.reset_spans ();
        J.to_string (T.chrome_json evs) ^ "\n")
  in
  let path = golden_path () in
  if Sys.getenv_opt "GOLDEN_UPDATE" <> None then begin
    let oc = open_out_bin path in
    output_string oc doc;
    close_out oc
  end
  else begin
    let ic = open_in_bin path in
    let n = in_channel_length ic in
    let golden = really_input_string ic n in
    close_in ic;
    if doc <> golden then
      Alcotest.failf
        "chrome export drifted from %s (rerun with GOLDEN_UPDATE=1 if intended); got (%d bytes): %s"
        path (String.length doc)
        (if String.length doc < 2000 then doc else String.sub doc 0 2000)
  end

let suite =
  [
    Alcotest.test_case "coverage basics" `Quick test_coverage_basics;
    Alcotest.test_case "coverage disabled is a no-op" `Quick test_coverage_disabled_noop;
    Alcotest.test_case "fs crash sites fully covered (naive)" `Quick
      test_fs_crash_sites_fully_covered;
    Alcotest.test_case "vacuity flags unreachable fault sites" `Quick
      test_vacuity_flags_unreachable_fault_sites;
    Alcotest.test_case "provenance ranked report" `Quick test_provenance_ranked_report;
    Alcotest.test_case "provenance disabled is a no-op" `Quick
      test_provenance_disabled_noop;
    Alcotest.test_case "span tree: fs op descends 3 layers" `Quick
      test_span_tree_depth_three_layers;
    Alcotest.test_case "span durations feed per-layer histograms" `Quick
      test_span_layer_histogram;
    Alcotest.test_case "percentile: nearest rank" `Quick test_percentile_nearest_rank;
    Alcotest.test_case "sim populates per-request latencies" `Quick
      test_sim_latencies_populated;
    QCheck_alcotest.to_alcotest prop_snapshot_json_roundtrip;
    QCheck_alcotest.to_alcotest prop_counters_delta;
    QCheck_alcotest.to_alcotest prop_json_roundtrip;
    Alcotest.test_case "chrome trace export is byte-stable (golden)" `Quick
      test_chrome_golden;
  ]
