(* Tests for the Goose pipeline (§6-§7): lexer, parser, typechecker,
   translator output, and the interpreter's semantics — including the
   race-as-undefined-behaviour model and the crash model. *)

module V = Tslang.Value
module G = Goose.Gvalue
module I = Goose.Interp
module P = Sched.Prog

let parse src = Goose.Parser.parse_file src

let parse_and_check src =
  let f = parse src in
  Goose.Typecheck.check_file f;
  f

(* --- lexer --- *)

let test_lexer_basic () =
  let toks = Goose.Lexer.tokenize "func f() uint64 {\n\treturn 42\n}" in
  let kinds = List.map (fun l -> l.Goose.Lexer.token) toks in
  Alcotest.(check bool) "shape" true
    (kinds
    = [ Goose.Token.FUNC; Goose.Token.IDENT "f"; Goose.Token.LPAREN; Goose.Token.RPAREN;
        Goose.Token.IDENT "uint64"; Goose.Token.LBRACE; Goose.Token.RETURN;
        Goose.Token.INT 42; Goose.Token.SEMI; Goose.Token.RBRACE; Goose.Token.SEMI;
        Goose.Token.EOF ])

let test_lexer_semicolon_insertion () =
  (* a semicolon is inserted after `x` and `1` but not after `{` or `=` *)
  let toks = Goose.Lexer.tokenize "x = \n 1\n" in
  let kinds = List.map (fun l -> l.Goose.Lexer.token) toks in
  Alcotest.(check bool) "asi" true
    (kinds
    = [ Goose.Token.IDENT "x"; Goose.Token.ASSIGN; Goose.Token.INT 1; Goose.Token.SEMI;
        Goose.Token.EOF ])

let test_lexer_comments_strings () =
  let toks =
    Goose.Lexer.tokenize "// comment\n/* multi\nline */ \"a\\nb\""
  in
  let kinds = List.map (fun l -> l.Goose.Lexer.token) toks in
  Alcotest.(check bool) "comment + escape" true
    (kinds = [ Goose.Token.STRING "a\nb"; Goose.Token.SEMI; Goose.Token.EOF ])

let test_lexer_error () =
  Alcotest.(check bool) "bad char" true
    (match Goose.Lexer.tokenize "func @" with
    | exception Goose.Lexer.Lex_error _ -> true
    | _ -> false)

(* --- parser --- *)

let test_parse_mailboat () =
  let f = parse Mailboat.Goose_src.source in
  Alcotest.(check string) "package" "mailboat" f.Goose.Ast.package;
  Alcotest.(check int) "imports" 3 (List.length f.Goose.Ast.imports);
  Alcotest.(check int) "structs" 1 (List.length f.Goose.Ast.structs);
  Alcotest.(check bool) "has Deliver" true (Goose.Ast.find_func f "Deliver" <> None);
  Alcotest.(check bool) "has Pickup" true (Goose.Ast.find_func f "Pickup" <> None);
  Alcotest.(check bool) "has Recover" true (Goose.Ast.find_func f "Recover" <> None)

let test_parse_error_reported () =
  Alcotest.(check bool) "parse error" true
    (match parse "package p\nfunc f( {" with
    | exception Goose.Parser.Parse_error _ -> true
    | _ -> false)

let test_parse_for_forms () =
  let f =
    parse
      {|package p
func f(n uint64) uint64 {
	s := 0
	for i := 0; i < n; i = i + 1 {
		s = s + i
	}
	for s > 100 {
		s = s - 1
	}
	return s
}|}
  in
  Alcotest.(check int) "one function" 1 (List.length f.Goose.Ast.funcs)

(* --- typechecker --- *)

let test_typecheck_mailboat () = ignore (parse_and_check Mailboat.Goose_src.source)

let expect_type_error src =
  match parse_and_check src with
  | exception Goose.Typecheck.Type_error _ -> ()
  | _ -> Alcotest.fail "expected type error"

let test_typecheck_rejects_bad_call () =
  expect_type_error
    "package p\nfunc f() {\n\tfilesys.Create(1, 2)\n}"

let test_typecheck_rejects_unknown_fn () =
  expect_type_error "package p\nfunc f() {\n\tnosuch()\n}"

let test_typecheck_rejects_arity () =
  expect_type_error "package p\nfunc g(x uint64) uint64 {\n\treturn x\n}\nfunc f() uint64 {\n\treturn g()\n}"

let test_typecheck_rejects_bad_operands () =
  expect_type_error "package p\nfunc f() bool {\n\treturn 1 + true\n}"

let test_typecheck_rejects_return_arity () =
  expect_type_error "package p\nfunc f() (uint64, bool) {\n\treturn 1\n}"

let test_typecheck_rejects_undeclared_assign () =
  expect_type_error "package p\nfunc f() {\n\tx = 1\n}"

(* --- translator output --- *)

let test_translate_mailboat () =
  match Goose.Translate.translate Mailboat.Goose_src.source with
  | Error e -> Alcotest.failf "translate failed: %s" e
  | Ok coq ->
    Alcotest.(check bool) "has Definition Deliver" true
      (Astring_contains.contains coq "Definition Deliver");
    Alcotest.(check bool) "has FS calls" true (Astring_contains.contains coq "FS.link");
    Alcotest.(check bool) "has Message record" true
      (Astring_contains.contains coq "Module Message")

let test_translate_rejects_untypeable () =
  match Goose.Translate.translate "package p\nfunc f() {\n\tnosuch()\n}" with
  | Error e -> Alcotest.(check bool) "mentions type" true (Astring_contains.contains e "type")
  | Ok _ -> Alcotest.fail "expected translation failure"

(* --- interpreter basics --- *)

let run_fn ?(cfg = I.default_config) ?(dirs = []) src fn args =
  let file = parse_and_check src in
  let it = I.make ~cfg file in
  let w = I.init_world ~dirs () in
  Sched.Runner.run1 w (I.run_func_value it fn args)

let test_interp_arith () =
  let _, v =
    run_fn "package p\nfunc f(a uint64, b uint64) uint64 {\n\treturn a*b + 1\n}" "f"
      [ G.VInt 6; G.VInt 7 ]
  in
  Alcotest.(check bool) "6*7+1" true (V.equal v (V.int 43))

let test_interp_loop_sum () =
  let _, v =
    run_fn
      "package p\nfunc f(n uint64) uint64 {\n\ts := 0\n\tfor i := 0; i < n; i = i + 1 {\n\t\ts = s + i\n\t}\n\treturn s\n}"
      "f" [ G.VInt 10 ]
  in
  Alcotest.(check bool) "sum 0..9" true (V.equal v (V.int 45))

let test_interp_slices_maps () =
  let src =
    {|package p
func f() uint64 {
	s := []uint64{1, 2, 3}
	s = append(s, 4)
	m := make(map[string]uint64)
	m["total"] = 0
	for _, x := range s {
		m["total"] = m["total"] + x
	}
	v, ok := m["total"]
	if !ok {
		return 0
	}
	return v
}|}
  in
  let _, v = run_fn src "f" [] in
  Alcotest.(check bool) "1+2+3+4" true (V.equal v (V.int 10))

let test_interp_structs_pointers () =
  let src =
    {|package p
type Pair struct {
	A uint64
	B uint64
}
func f() uint64 {
	p := &Pair{A: 1, B: 2}
	p.A = 10
	q := *p
	return q.A + q.B
}|}
  in
  let _, v = run_fn src "f" [] in
  Alcotest.(check bool) "10+2" true (V.equal v (V.int 12))

let test_interp_strings () =
  let src =
    {|package p
func f(s string) string {
	b := []byte(s)
	t := string(b[0:2])
	return t + "!"
}|}
  in
  let _, v = run_fn src "f" [ G.VString "hello" ] in
  Alcotest.(check bool) "prefix" true (V.equal v (V.str "he!"))

let test_interp_filesystem () =
  let src =
    {|package p
func f() string {
	fd, ok := filesys.Create("d", "x")
	if !ok {
		return "create failed"
	}
	filesys.Append(fd, []byte("hi"))
	filesys.Close(fd)
	rfd, ok2 := filesys.Open("d", "x")
	if !ok2 {
		return "open failed"
	}
	data := filesys.ReadAt(rfd, 0, 10)
	filesys.Close(rfd)
	return string(data)
}|}
  in
  let _, v = run_fn ~dirs:[ "d" ] src "f" [] in
  Alcotest.(check bool) "roundtrip" true (V.equal v (V.str "hi"))

let test_interp_infinite_loop_fuel () =
  let src = "package p\nfunc f() {\n\tfor {\n\t}\n}" in
  match run_fn src "f" [] with
  | exception Sched.Runner.Undefined_behaviour msg ->
    Alcotest.(check bool) "fuel" true (Astring_contains.contains msg "fuel")
  | _ -> Alcotest.fail "infinite loop terminated"

(* --- race detection (§6.1) --- *)

let racy_src =
  {|package p
func Write(p []uint64) {
	p[0] = 1
}
func Read(p []uint64) uint64 {
	return p[0]
}|}

let test_race_detected () =
  (* Two threads, one writing one reading the same slice, explored by the
     refinement checker: some interleaving hits the store-start/store-end
     window and must be reported as UB. *)
  let file = parse_and_check racy_src in
  let it = I.make ~cfg:{ I.default_config with race_detect = true } file in
  let w0 = I.init_world () in
  (* pre-allocate the shared slice directly in the world *)
  let module IM = Map.Make (Int) in
  let w1 =
    { w0 with
      I.heap = IM.add 0 { I.content = G.CSlice [ G.VInt 0 ]; being_written = false } w0.I.heap;
      next_ref = 1
    }
  in
  let shared = G.VRef 0 in
  let spec : unit Tslang.Spec.t =
    {
      Tslang.Spec.name = "race";
      init = ();
      compare_state = compare;
      pp_state = Fmt.any "()";
      step =
        (fun _ _ ->
          (* any return value is acceptable: the property under test is
             race detection, not linearizability *)
          Tslang.Transition.choose [ V.unit; V.int 0; V.int 1 ]);
      crash = Tslang.Transition.ret ();
    }
  in
  let cfg =
    Perennial_core.Refinement.config ~spec ~init_world:w1 ~crash_world:I.crash_world
      ~pp_world:I.pp_world
      ~threads:
        [ [ (Tslang.Spec.call "op" [], I.run_func_value it "Write" [ shared ]) ];
          [ (Tslang.Spec.call "op" [], I.run_func_value it "Read" [ shared ]) ] ]
      ~recovery:(P.return V.unit) ~max_crashes:0 ()
  in
  match Perennial_core.Refinement.check cfg with
  | Perennial_core.Refinement.Refinement_violated (f, _) ->
    Alcotest.(check bool) "racy" true
      (Astring_contains.contains f.Perennial_core.Refinement.reason "racy")
  | _ -> Alcotest.fail "race not detected"

let test_no_race_without_detection () =
  (* The same program with race detection off executes fine (single-step
     stores), demonstrating what the two-step model adds. *)
  let file = parse_and_check racy_src in
  let it = I.make ~cfg:{ I.default_config with race_detect = false } file in
  let w0 = I.init_world () in
  let module IM = Map.Make (Int) in
  let w1 =
    { w0 with
      I.heap = IM.add 0 { I.content = G.CSlice [ G.VInt 0 ]; being_written = false } w0.I.heap;
      next_ref = 1
    }
  in
  let shared = G.VRef 0 in
  let out =
    Sched.Runner.run w1
      [ I.run_func_value it "Write" [ shared ]; I.run_func_value it "Read" [ shared ] ]
  in
  Alcotest.(check int) "both finished" 2 (Array.length out.Sched.Runner.results)

(* --- crash model (§6.2) --- *)

let test_crash_model () =
  let src =
    {|package p
func Setup() uint64 {
	fd, _ := filesys.Create("d", "keep")
	filesys.Append(fd, []byte("data"))
	return fd
}
func UseFd(fd uint64) string {
	data := filesys.ReadAt(fd, 0, 10)
	return string(data)
}|}
  in
  let file = parse_and_check src in
  let it = I.make file in
  let w0 = I.init_world ~dirs:[ "d" ] () in
  let w1, fd = Sched.Runner.run1 w0 (I.run_func_value it "Setup" []) in
  let crashed = I.crash_world w1 in
  (* the file survives *)
  Alcotest.(check bool) "file persists" true
    (Gfs.Fs.read_file crashed.I.fs "d" "keep" = Some "data");
  (* but the descriptor does not: using it is UB *)
  (match
     Sched.Runner.run1 crashed (I.run_func_value it "UseFd" [ G.VInt (V.get_int fd) ])
   with
  | exception Sched.Runner.Undefined_behaviour _ -> ()
  | _ -> Alcotest.fail "stale fd usable after crash");
  (* and the heap is empty *)
  Alcotest.(check bool) "heap cleared" true
    (Goose.Interp.compare_world crashed (I.crash_world crashed) = 0)

(* --- Goose mailboat: differential against the native core --- *)

let goose_mailboat ?(random = [ 0; 1 ]) () =
  let file = parse_and_check Mailboat.Goose_src.source in
  I.make ~cfg:{ I.race_detect = true; random_universe = random } file

let test_goose_mailboat_deliver_pickup () =
  let it = goose_mailboat () in
  let w = I.init_world ~dirs:[ "spool"; "user0" ] () in
  let w, _ =
    Sched.Runner.run1 w
      (I.run_func_value it "Deliver" [ G.VInt 0; G.VString "hello world" ])
  in
  Alcotest.(check (list string)) "spool cleaned" [] (Gfs.Fs.list_dir w.I.fs "spool");
  let w, picked = Sched.Runner.run1 w (I.run_func_value it "Pickup" [ G.VInt 0 ]) in
  (match V.get_list picked with
  | [ msg ] ->
    (* a struct converts to a field-name/value list *)
    let fields = List.map V.get_pair (V.get_list msg) in
    let find k = List.assoc (V.str k) (List.map (fun (a, b) -> (a, b)) fields) in
    Alcotest.(check bool) "contents" true (V.equal (find "Contents") (V.str "hello world"))
  | l -> Alcotest.failf "expected 1 message, got %d" (List.length l));
  let _, _ = Sched.Runner.run1 w (I.run_func_value it "Unlock" [ G.VInt 0 ]) in
  ()

let test_goose_mailboat_id_collision_retry () =
  (* Two delivers with a 2-value random universe: the second must hit name
     collisions and retry (a random schedule resolves the draws). *)
  let it = goose_mailboat ~random:[ 0; 1 ] () in
  let w = I.init_world ~dirs:[ "spool"; "user0" ] () in
  let out1 =
    Sched.Runner.run ~policy:(Sched.Runner.Random 7) w
      [ I.run_func_value it "Deliver" [ G.VInt 0; G.VString "a" ] ]
  in
  let out2 =
    Sched.Runner.run ~policy:(Sched.Runner.Random 11) out1.Sched.Runner.world
      [ I.run_func_value it "Deliver" [ G.VInt 0; G.VString "b" ] ]
  in
  Alcotest.(check int) "two messages" 2
    (List.length (Gfs.Fs.list_dir out2.Sched.Runner.world.I.fs "user0"))

let test_goose_mailboat_recover () =
  let it = goose_mailboat () in
  let w = I.init_world ~dirs:[ "spool"; "user0" ] () in
  (* leave junk in the spool, as if a deliver crashed mid-way *)
  let fs, fd = Option.get (Gfs.Fs.create w.I.fs "spool" "tmp0") in
  let fs = Option.get (Gfs.Fs.append fs fd "junk") in
  let w = { w with I.fs } in
  let w = I.crash_world w in
  let w, _ = Sched.Runner.run1 w (I.run_func_value it "Recover" []) in
  Alcotest.(check (list string)) "spool empty" [] (Gfs.Fs.list_dir w.I.fs "spool")

let test_goose_mailboat_refinement_single_deliver () =
  (* The Goose-compiled Deliver refines the Mailboat spec, with crash
     injection: the headline end-to-end check through the full pipeline. *)
  let it = goose_mailboat ~random:[ 0 ] () in
  let spec = Mailboat.Core.spec ~users:1 in
  (* the goose code names messages "m<random>": match the spec universe *)
  let w = I.init_world ~dirs:[ "spool"; "user0" ] () in
  let deliver =
    (Tslang.Spec.call "deliver" [ V.int 0; V.str "ab" ],
     I.run_func_value it "Deliver" [ G.VInt 0; G.VString "ab" ])
  in
  let probe_pickup =
    (Tslang.Spec.call "pickup" [ V.int 0 ],
     Sched.Prog.bind (I.run_func_value it "Pickup" [ G.VInt 0 ]) (fun v ->
         (* convert the struct list to the spec's (id, contents) pairs *)
         let pairs =
           List.map
             (fun msg ->
               match V.get_list msg with
               | [ V.Pair (_, id); V.Pair (_, contents) ] -> V.pair id contents
               | _ -> v)
             (V.get_list v)
         in
         Sched.Prog.return (V.list pairs)))
  in
  let probe_unlock =
    (Tslang.Spec.call "unlock" [ V.int 0 ], I.run_func_value it "Unlock" [ G.VInt 0 ])
  in
  let cfg =
    Perennial_core.Refinement.config ~spec ~init_world:w ~crash_world:I.crash_world
      ~pp_world:I.pp_world
      ~threads:[ [ deliver ] ]
      ~recovery:(I.run_func_value it "Recover" [])
      ~post:[ probe_pickup; probe_unlock ]
      ~max_crashes:1 ~step_budget:30_000_000 ()
  in
  match Perennial_core.Refinement.check cfg with
  | Perennial_core.Refinement.Refinement_holds _ -> ()
  | Perennial_core.Refinement.Refinement_violated (f, _) ->
    Alcotest.failf "goose mailboat: %a" Perennial_core.Refinement.pp_failure f
  | Perennial_core.Refinement.Budget_exhausted s ->
    Alcotest.failf "budget exhausted: %a" Perennial_core.Refinement.pp_stats s

(* --- deferred durability through the Goose pipeline --- *)

let test_goose_mailboat_deferred_durability () =
  (* Deliver without fsync violates refinement under buffered writes;
     DeliverFsync holds — the §1 future-work experiment, through Go
     source. *)
  let it = goose_mailboat ~random:[ 0 ] () in
  let spec = Mailboat.Core.spec ~users:1 in
  let base = I.init_world ~dirs:[ "spool"; "user0" ] () in
  let w = { base with I.fs = Gfs.Fs.init ~durability:`Deferred [ "spool"; "user0" ] } in
  let probe =
    (Tslang.Spec.call "pickup" [ V.int 0 ],
     Sched.Prog.bind (I.run_func_value it "Pickup" [ G.VInt 0 ]) (fun v ->
         let pairs =
           List.map
             (fun msg ->
               match V.get_list msg with
               | [ V.Pair (_, id); V.Pair (_, contents) ] -> V.pair id contents
               | _ -> v)
             (V.get_list v)
         in
         Sched.Prog.return (V.list pairs)))
  in
  let unlock =
    (Tslang.Spec.call "unlock" [ V.int 0 ], I.run_func_value it "Unlock" [ G.VInt 0 ])
  in
  let cfg fn =
    Perennial_core.Refinement.config ~spec ~init_world:w ~crash_world:I.crash_world
      ~pp_world:I.pp_world
      ~threads:
        [ [ (Tslang.Spec.call "deliver" [ V.int 0; V.str "ab" ],
             I.run_func_value it fn [ G.VInt 0; G.VString "ab" ]) ] ]
      ~recovery:(I.run_func_value it "Recover" [])
      ~post:[ probe; unlock ] ~max_crashes:1 ~step_budget:30_000_000 ()
  in
  (match Perennial_core.Refinement.check (cfg "Deliver") with
  | Perennial_core.Refinement.Refinement_violated _ -> ()
  | _ -> Alcotest.fail "no-fsync deliver not caught under deferred durability");
  match Perennial_core.Refinement.check (cfg "DeliverFsync") with
  | Perennial_core.Refinement.Refinement_holds _ -> ()
  | Perennial_core.Refinement.Refinement_violated (f, _) ->
    Alcotest.failf "DeliverFsync: %a" Perennial_core.Refinement.pp_failure f
  | Perennial_core.Refinement.Budget_exhausted s ->
    Alcotest.failf "budget: %a" Perennial_core.Refinement.pp_stats s

(* --- the WAL in Goose, via the disk package --- *)

let wal_goose () =
  let file = parse_and_check Systems.Wal_go.source in
  I.make file

let wal_world () =
  (* blocks 0-4, flag initialized to "e" *)
  let w = I.init_world ~disk_size:5 () in
  { w with I.disk = Disk.Single_disk.set w.I.disk 2 (Disk.Block.of_string "e") }

let test_goose_wal_write_read () =
  let it = wal_goose () in
  let w, _ =
    Sched.Runner.run1 (wal_world ())
      (I.run_func_value it "Write" [ G.VString "hello"; G.VString "world" ])
  in
  let _, v = Sched.Runner.run1 w (I.run_func_value it "Read" []) in
  (match V.get_list v with
  | [ a; b ] ->
    Alcotest.(check bool) "pair" true (V.equal a (V.str "hello") && V.equal b (V.str "world"))
  | _ -> Alcotest.fail "expected a pair")

let test_goose_wal_recover_replays () =
  let it = wal_goose () in
  (* craft a committed-but-unapplied state by hand *)
  let w = wal_world () in
  let d = w.I.disk in
  let d = Disk.Single_disk.set d 3 (Disk.Block.of_string "A") in
  let d = Disk.Single_disk.set d 4 (Disk.Block.of_string "B") in
  let d = Disk.Single_disk.set d 2 (Disk.Block.of_string "c") in
  let w = I.crash_world { w with I.disk = d } in
  let w, _ = Sched.Runner.run1 w (I.run_func_value it "Recover" []) in
  Alcotest.(check string) "data0 replayed" "A"
    (Disk.Block.to_string (Disk.Single_disk.get w.I.disk 0));
  Alcotest.(check string) "data1 replayed" "B"
    (Disk.Block.to_string (Disk.Single_disk.get w.I.disk 1));
  Alcotest.(check string) "flag cleared" "e"
    (Disk.Block.to_string (Disk.Single_disk.get w.I.disk 2))

let test_goose_wal_refinement () =
  (* the Goose-compiled WAL refines the same atomic-pair spec as the
     primitive-language implementation, under crash injection *)
  let it = wal_goose () in
  let spec = Systems.Wal.spec in
  let cfg =
    Perennial_core.Refinement.config ~spec ~init_world:(wal_world ())
      ~crash_world:I.crash_world ~pp_world:I.pp_world
      ~threads:
        [ [ (Tslang.Spec.call "log_write" [ V.str "x"; V.str "y" ],
             I.run_func_value it "Write" [ G.VString "x"; G.VString "y" ]) ] ]
      ~recovery:(I.run_func_value it "Recover" [])
      ~post:
        [ (Tslang.Spec.call "pair_read" [],
           Sched.Prog.bind (I.run_func_value it "Read" []) (fun v ->
               match V.get_list v with
               | [ a; b ] -> Sched.Prog.return (V.pair a b)
               | _ -> Sched.Prog.return v)) ]
      ~max_crashes:2 ()
  in
  match Perennial_core.Refinement.check cfg with
  | Perennial_core.Refinement.Refinement_holds _ -> ()
  | Perennial_core.Refinement.Refinement_violated (f, _) ->
    Alcotest.failf "goose wal: %a" Perennial_core.Refinement.pp_failure f
  | Perennial_core.Refinement.Budget_exhausted s ->
    Alcotest.failf "budget: %a" Perennial_core.Refinement.pp_stats s

let test_goose_wal_differential () =
  (* the Goose WAL and the primitive-language WAL compute the same final
     disk for the same operation sequence *)
  let it = wal_goose () in
  let wg, _ =
    Sched.Runner.run1 (wal_world ()) (I.run_func_value it "Write" [ G.VString "p"; G.VString "q" ])
  in
  let native =
    let w0 = Systems.Wal.init_world () in
    let w, _ = Sched.Runner.run1 w0 (Systems.Wal.write_prog (V.str "p") (V.str "q")) in
    Systems.Wal.get_disk w
  in
  List.iter
    (fun a ->
      Alcotest.(check string)
        (Printf.sprintf "block %d agrees" a)
        (Disk.Block.to_string (Disk.Single_disk.get native a))
        (Disk.Block.to_string (Disk.Single_disk.get wg.I.disk a)))
    [ 0; 1; 2; 3; 4 ]

(* --- the shadow copy in Goose --- *)

let shadow_goose () = I.make (parse_and_check Systems.Shadow_go.source)

let shadow_world () =
  let w = I.init_world ~disk_size:5 () in
  { w with I.disk = Disk.Single_disk.set w.I.disk 4 (Disk.Block.of_string "A") }

let test_goose_shadow_write_read () =
  let it = shadow_goose () in
  let w, _ =
    Sched.Runner.run1 (shadow_world ())
      (I.run_func_value it "Write" [ G.VString "left"; G.VString "right" ])
  in
  let _, v = Sched.Runner.run1 w (I.run_func_value it "Read" []) in
  (match V.get_list v with
  | [ a; b ] ->
    Alcotest.(check bool) "pair" true (V.equal a (V.str "left") && V.equal b (V.str "right"))
  | _ -> Alcotest.fail "expected a pair");
  (* the pointer flipped to B *)
  Alcotest.(check string) "flipped" "B" (Disk.Block.to_string (Disk.Single_disk.get w.I.disk 4))

let test_goose_shadow_crash_before_flip_invisible () =
  let it = shadow_goose () in
  (* run Write for its first 4 steps (lock, read ptr, write b0, write b1)
     and crash before the flip *)
  let rec steps w prog n =
    if n = 0 then w
    else
      match prog with
      | Sched.Prog.Mark (_, p) -> steps w p n
      | Sched.Prog.Done _ -> w
      | Sched.Prog.Atomic { action; k; _ } -> (
        match action w with
        | Sched.Prog.Steps ((w', v) :: _) -> steps w' (k v) (n - 1)
        | _ -> w)
  in
  let mid =
    steps (shadow_world ())
      (I.run_func_value it "Write" [ G.VString "new1"; G.VString "new2" ])
      6
  in
  let crashed = I.crash_world mid in
  let _, v = Sched.Runner.run1 crashed (I.run_func_value it "Read" []) in
  (match V.get_list v with
  | [ a; b ] ->
    (* old pair (zeros) still visible: the shadow was never flipped *)
    Alcotest.(check bool) "old pair" true (V.equal a (V.str "0") && V.equal b (V.str "0"))
  | _ -> Alcotest.fail "expected a pair")

let test_goose_shadow_refinement () =
  let it = shadow_goose () in
  let cfg =
    Perennial_core.Refinement.config ~spec:Systems.Shadow_copy.spec
      ~init_world:(shadow_world ()) ~crash_world:I.crash_world ~pp_world:I.pp_world
      ~threads:
        [ [ (Tslang.Spec.call "pair_write" [ V.str "x"; V.str "y" ],
             I.run_func_value it "Write" [ G.VString "x"; G.VString "y" ]) ] ]
      ~recovery:(I.run_func_value it "Recover" [])
      ~post:
        [ (Tslang.Spec.call "pair_read" [],
           Sched.Prog.bind (I.run_func_value it "Read" []) (fun v ->
               match V.get_list v with
               | [ a; b ] -> Sched.Prog.return (V.pair a b)
               | _ -> Sched.Prog.return v)) ]
      ~max_crashes:1 ()
  in
  match Perennial_core.Refinement.check cfg with
  | Perennial_core.Refinement.Refinement_holds _ -> ()
  | Perennial_core.Refinement.Refinement_violated (f, _) ->
    Alcotest.failf "goose shadow: %a" Perennial_core.Refinement.pp_failure f
  | Perennial_core.Refinement.Budget_exhausted s ->
    Alcotest.failf "budget: %a" Perennial_core.Refinement.pp_stats s

(* --- the replicated disk in Goose: Figures 4 and 5, runnable --- *)

let rd_goose ?(may_fail = false) () =
  (I.make (parse_and_check Systems.Rd_go.source),
   I.init_world ~tdisk_size:1 ~may_fail ())

let test_goose_rd_write_read () =
  let it, w = rd_goose () in
  let w, _ =
    Sched.Runner.run1 w (I.run_func_value it "Write" [ G.VInt 0; G.VString "fig4" ])
  in
  let _, v = Sched.Runner.run1 w (I.run_func_value it "Read" [ G.VInt 0 ]) in
  Alcotest.(check bool) "reads back" true (V.equal v (V.str "fig4"))

let test_goose_rd_failover () =
  let it, w = rd_goose () in
  let w, _ =
    Sched.Runner.run1 w (I.run_func_value it "Write" [ G.VInt 0; G.VString "kept" ])
  in
  (* fail disk 1 by hand; the read must fail over to disk 2 *)
  let w = { w with I.tdisk = Disk.Two_disk.fail w.I.tdisk Disk.Two_disk.D1 } in
  let _, v = Sched.Runner.run1 w (I.run_func_value it "Read" [ G.VInt 0 ]) in
  Alcotest.(check bool) "failover" true (V.equal v (V.str "kept"))

let test_goose_rd_recover_copies () =
  let it, w = rd_goose () in
  (* diverge the disks as a crash mid-write would *)
  let td = w.I.tdisk in
  let td =
    match Disk.Two_disk.disk td Disk.Two_disk.D1 with
    | Some d1 ->
      Disk.Two_disk.
        { td with d1 = Some (Disk.Single_disk.set d1 0 (Disk.Block.of_string "new")) }
    | None -> td
  in
  let w = I.crash_world { w with I.tdisk = td } in
  let w, _ = Sched.Runner.run1 w (I.run_func_value it "Recover" []) in
  (match Disk.Two_disk.disk w.I.tdisk Disk.Two_disk.D2 with
  | Some d2 ->
    Alcotest.(check string) "disk 2 repaired" "new"
      (Disk.Block.to_string (Disk.Single_disk.get d2 0))
  | None -> Alcotest.fail "disk 2 missing")

let test_goose_rd_refinement () =
  (* Figures 4+5 refine Figure 3, under crash + disk-failure injection,
     with the double read-back probe that exposes divergence. *)
  let it, w = rd_goose ~may_fail:true () in
  let spec = Systems.Replicated_disk.spec 1 in
  let read_probe =
    (Tslang.Spec.call "rd_read" [ V.int 0 ], I.run_func_value it "Read" [ G.VInt 0 ])
  in
  let cfg =
    Perennial_core.Refinement.config ~spec ~init_world:w ~crash_world:I.crash_world
      ~pp_world:I.pp_world
      ~threads:
        [ [ (Tslang.Spec.call "rd_write" [ V.int 0; V.str "x" ],
             I.run_func_value it "Write" [ G.VInt 0; G.VString "x" ]) ] ]
      ~recovery:(I.run_func_value it "Recover" [])
      ~post:[ read_probe; read_probe ]
      ~max_crashes:1 ~step_budget:30_000_000 ()
  in
  match Perennial_core.Refinement.check cfg with
  | Perennial_core.Refinement.Refinement_holds _ -> ()
  | Perennial_core.Refinement.Refinement_violated (f, _) ->
    Alcotest.failf "goose rd: %a" Perennial_core.Refinement.pp_failure f
  | Perennial_core.Refinement.Budget_exhausted s ->
    Alcotest.failf "budget: %a" Perennial_core.Refinement.pp_stats s

let test_goose_rd_broken_recovery_rejected () =
  (* recovery that copies the wrong direction is NOT wrong (it reverts an
     unacknowledged write), but recovery that zeroes disk 2 loses
     acknowledged data: the checker must catch it through the Goose
     pipeline too *)
  let zero_src =
    {|package rdbad
import "twodisk"
func Recover() {
	size := twodisk.Size()
	for a := 0; a < size; a = a + 1 {
		twodisk.Write(1, a, []byte("0"))
		twodisk.Write(2, a, []byte("0"))
	}
}|}
  in
  let bad = I.make (parse_and_check zero_src) in
  let it, w = rd_goose () in
  let spec = Systems.Replicated_disk.spec 1 in
  let read_probe =
    (Tslang.Spec.call "rd_read" [ V.int 0 ], I.run_func_value it "Read" [ G.VInt 0 ])
  in
  let cfg =
    Perennial_core.Refinement.config ~spec ~init_world:w ~crash_world:I.crash_world
      ~pp_world:I.pp_world
      ~threads:
        [ [ (Tslang.Spec.call "rd_write" [ V.int 0; V.str "x" ],
             I.run_func_value it "Write" [ G.VInt 0; G.VString "x" ]) ] ]
      ~recovery:(I.run_func_value bad "Recover" [])
      ~post:[ read_probe ]
      ~max_crashes:1 ()
  in
  match Perennial_core.Refinement.check cfg with
  | Perennial_core.Refinement.Refinement_violated _ -> ()
  | _ -> Alcotest.fail "zeroing recovery not caught through goose"

let suite =



  [
    Alcotest.test_case "lexer: basics" `Quick test_lexer_basic;
    Alcotest.test_case "lexer: semicolon insertion" `Quick test_lexer_semicolon_insertion;
    Alcotest.test_case "lexer: comments and strings" `Quick test_lexer_comments_strings;
    Alcotest.test_case "lexer: error" `Quick test_lexer_error;
    Alcotest.test_case "parser: mailboat.go" `Quick test_parse_mailboat;
    Alcotest.test_case "parser: error reported" `Quick test_parse_error_reported;
    Alcotest.test_case "parser: for forms" `Quick test_parse_for_forms;
    Alcotest.test_case "typecheck: mailboat.go" `Quick test_typecheck_mailboat;
    Alcotest.test_case "typecheck: bad stdlib call" `Quick test_typecheck_rejects_bad_call;
    Alcotest.test_case "typecheck: unknown function" `Quick test_typecheck_rejects_unknown_fn;
    Alcotest.test_case "typecheck: arity" `Quick test_typecheck_rejects_arity;
    Alcotest.test_case "typecheck: operands" `Quick test_typecheck_rejects_bad_operands;
    Alcotest.test_case "typecheck: return arity" `Quick test_typecheck_rejects_return_arity;
    Alcotest.test_case "typecheck: undeclared assign" `Quick test_typecheck_rejects_undeclared_assign;
    Alcotest.test_case "translate: mailboat.go -> Coq model" `Quick test_translate_mailboat;
    Alcotest.test_case "translate: rejects untypeable" `Quick test_translate_rejects_untypeable;
    Alcotest.test_case "interp: arithmetic" `Quick test_interp_arith;
    Alcotest.test_case "interp: loops" `Quick test_interp_loop_sum;
    Alcotest.test_case "interp: slices and maps" `Quick test_interp_slices_maps;
    Alcotest.test_case "interp: structs and pointers" `Quick test_interp_structs_pointers;
    Alcotest.test_case "interp: strings and bytes" `Quick test_interp_strings;
    Alcotest.test_case "interp: file system" `Quick test_interp_filesystem;
    Alcotest.test_case "interp: loop fuel" `Quick test_interp_infinite_loop_fuel;
    Alcotest.test_case "race detected (§6.1)" `Quick test_race_detected;
    Alcotest.test_case "no race without detection" `Quick test_no_race_without_detection;
    Alcotest.test_case "crash model (§6.2)" `Quick test_crash_model;
    Alcotest.test_case "goose mailboat: deliver+pickup" `Quick test_goose_mailboat_deliver_pickup;
    Alcotest.test_case "goose mailboat: ID collision retry" `Quick test_goose_mailboat_id_collision_retry;
    Alcotest.test_case "goose mailboat: recover" `Quick test_goose_mailboat_recover;
    Alcotest.test_case "goose mailboat: refinement (crash)" `Quick test_goose_mailboat_refinement_single_deliver;
    Alcotest.test_case "goose wal: write+read" `Quick test_goose_wal_write_read;
    Alcotest.test_case "goose wal: recover replays" `Quick test_goose_wal_recover_replays;
    Alcotest.test_case "goose wal: refinement (2 crashes)" `Quick test_goose_wal_refinement;
    Alcotest.test_case "goose wal: differential vs native" `Quick test_goose_wal_differential;
    Alcotest.test_case "goose shadow: write+read" `Quick test_goose_shadow_write_read;
    Alcotest.test_case "goose shadow: crash before flip" `Quick test_goose_shadow_crash_before_flip_invisible;
    Alcotest.test_case "goose shadow: refinement (crash)" `Quick test_goose_shadow_refinement;
    Alcotest.test_case "goose rd: write+read (Fig. 4)" `Quick test_goose_rd_write_read;
    Alcotest.test_case "goose rd: failover" `Quick test_goose_rd_failover;
    Alcotest.test_case "goose rd: recover copies (Fig. 5)" `Quick test_goose_rd_recover_copies;
    Alcotest.test_case "goose rd: refinement (crash+failure)" `Quick test_goose_rd_refinement;
    Alcotest.test_case "goose rd: zeroing recovery caught" `Quick test_goose_rd_broken_recovery_rejected;
    Alcotest.test_case "goose mailboat: deferred durability" `Quick test_goose_mailboat_deferred_durability;
  ]
