(* The fault-injection layer end to end:
   - [Fault.enumerate]: determinism, duplicate-freedom (qcheck), budget
     semantics;
   - the runner's injection oracle ([?fault_schedule]);
   - exhaustive fault×crash refinement for the retry/degradation paths of
     the replicated disk, the journal and the KV store (fault budget 2);
   - the three seeded fault-handling bugs, each caught with the injected
     fault visible in the counterexample;
   - one golden fault counterexample, byte-for-byte identical under all
     three exploration strategies;
   - the [?max_seconds] wall-clock budget. *)

module V = Tslang.Value
module R = Perennial_core.Refinement
module E = Perennial_core.Explore
module F = Sched.Fault
module RD = Systems.Replicated_disk
module J = Journal.Txn_log
module K = Journal.Kvs
module Block = Disk.Block

let b = Block.of_string
let bv s = Block.to_value (b s)

let expect_holds name = function
  | R.Refinement_holds stats -> stats
  | R.Refinement_violated (f, _) -> Alcotest.failf "%s: %a" name R.pp_failure f
  | R.Budget_exhausted stats ->
    Alcotest.failf "%s: budget exhausted (%a)" name R.pp_stats stats

let expect_violated name = function
  | R.Refinement_violated (f, _) -> f
  | R.Refinement_holds stats -> Alcotest.failf "%s: bug not caught (%a)" name R.pp_stats stats
  | R.Budget_exhausted stats ->
    Alcotest.failf "%s: budget exhausted (%a)" name R.pp_stats stats

(* ------------------------------------------------------------------ *)
(* Schedule enumeration                                                 *)
(* ------------------------------------------------------------------ *)

let test_enumerate_budget () =
  (* budget 0: only the empty schedule, whatever the sites *)
  Alcotest.(check int) "budget 0" 1
    (List.length (F.enumerate ~budget:0 [ (0, [ F.Read_error ]); (1, [ F.Write_error ]) ]));
  (* one site, one kind: empty + the injection *)
  Alcotest.(check int) "one site" 2
    (List.length (F.enumerate ~budget:1 [ (0, [ F.Read_error ]) ]));
  (* two sites x two kinds, budget 1: empty + 4 singletons *)
  let sites = [ (0, [ F.Read_error; F.Write_error ]); (1, [ F.Read_error; F.Write_error ]) ] in
  Alcotest.(check int) "budget 1" 5 (List.length (F.enumerate ~budget:1 sites));
  (* budget 2 adds the 4 cross-site pairs *)
  Alcotest.(check int) "budget 2" 9 (List.length (F.enumerate ~budget:2 sites));
  (* the empty schedule comes first *)
  Alcotest.(check bool) "empty first" true (List.hd (F.enumerate ~budget:2 sites) = [])

let site_gen =
  QCheck.Gen.(
    list_size (int_bound 4)
      (pair (int_bound 5)
         (list_size (int_bound 3)
            (oneofl [ F.Read_error; F.Write_error; F.Torn_write 1; F.Disk_offline ]))))

let prop_enumerate_deterministic =
  QCheck.Test.make ~count:200 ~name:"fault enumeration deterministic"
    (QCheck.make site_gen) (fun sites ->
      let a = F.enumerate ~budget:2 sites in
      let b = F.enumerate ~budget:2 sites in
      List.equal (fun x y -> F.compare_schedule x y = 0) a b)

let prop_enumerate_duplicate_free =
  QCheck.Test.make ~count:200 ~name:"fault enumeration duplicate-free"
    (QCheck.make site_gen) (fun sites ->
      let a = F.enumerate ~budget:2 sites in
      List.length (List.sort_uniq F.compare_schedule a) = List.length a)

(* ------------------------------------------------------------------ *)
(* The runner's injection oracle                                        *)
(* ------------------------------------------------------------------ *)

let test_runner_oracle () =
  let w = RD.init_world 1 in
  (* no schedule: the fallible read behaves like the plain one *)
  let o = Sched.Runner.run w [ RD.read_ft_prog 0 ] in
  Alcotest.(check bool) "clean run reads zero" true (o.Sched.Runner.results.(0) = bv "0");
  Alcotest.(check bool) "no faults fired" true (o.Sched.Runner.injected = []);
  (* inject Read_error at the first fault site: the op retries and succeeds *)
  let o =
    Sched.Runner.run ~fault_schedule:[ { F.at = 0; kind = F.Read_error } ] w
      [ RD.read_ft_prog 0 ]
  in
  Alcotest.(check bool) "retried read still succeeds" true (o.Sched.Runner.results.(0) = bv "0");
  Alcotest.(check bool) "one fault fired" true
    (o.Sched.Runner.injected = [ (0, F.Read_error) ]);
  (* injections naming an undeclared kind are skipped *)
  let o =
    Sched.Runner.run ~fault_schedule:[ { F.at = 0; kind = F.Torn_write 7 } ] w
      [ RD.read_ft_prog 0 ]
  in
  Alcotest.(check bool) "undeclared kind skipped" true (o.Sched.Runner.injected = [])

(* ------------------------------------------------------------------ *)
(* Retry/degradation paths hold under exhaustive fault x crash          *)
(* ------------------------------------------------------------------ *)

let test_rd_ft_holds () =
  let stats =
    expect_holds "rd ft read || write, faults 2, 1 crash"
      (R.check
         (RD.checker_config ~size:1 ~max_crashes:1 ~fault_budget:2
            [ [ RD.write_ft_call 0 (bv "x") ]; [ RD.read_ft_call 0 ] ]))
  in
  Alcotest.(check bool) "faults were injected" true (stats.R.faults_injected > 0);
  Alcotest.(check bool) "distinct schedules counted" true (stats.R.fault_schedules > 1);
  Alcotest.(check bool) "retries observed" true (stats.R.retries_observed > 0)

let ly2 = J.layout ~n_data:2 ~max_slots:2

let test_journal_ft_holds () =
  let stats =
    expect_holds "journal commit_ft || read_ft, faults 2, 1 crash"
      (R.check
         (J.checker_config ly2 ~max_crashes:1 ~fault_budget:2
            [ [ J.commit_ft_call ly2 [ (0, b "A"); (1, b "B") ] ]; [ J.read_ft_call ly2 0 ] ]))
  in
  Alcotest.(check bool) "faults were injected" true (stats.R.faults_injected > 0);
  Alcotest.(check bool) "retries observed" true (stats.R.retries_observed > 0)

let p = K.params ~n_keys:2 ()

let test_kvs_ft_holds () =
  let stats =
    expect_holds "kvs put_ft + get_ft, faults 2, 1 crash"
      (R.check
         (K.checker_config p ~max_crashes:1 ~fault_budget:2
            [ [ K.put_ft_call p 0 (bv "A"); K.get_ft_call p 0 ] ]))
  in
  Alcotest.(check bool) "faults were injected" true (stats.R.faults_injected > 0)

(* The fault branches compose with DPOR: every strategy agrees with naive
   on the verdict for the fault-tolerant instances. *)
let test_ft_strategies_agree () =
  List.iter
    (fun strategy ->
      ignore
        (expect_holds
           (Printf.sprintf "rd ft under %s" (E.strategy_name strategy))
           (R.check ~strategy
              (RD.checker_config ~size:1 ~max_crashes:1 ~fault_budget:2
                 [ [ RD.write_ft_call 0 (bv "x") ]; [ RD.read_ft_call 0 ] ]))))
    E.all_strategies

(* ------------------------------------------------------------------ *)
(* Seeded fault-handling bugs                                           *)
(* ------------------------------------------------------------------ *)

let assert_fault_in_lanes name f =
  let lanes = Fmt.str "%a" R.pp_failure_lanes f in
  Alcotest.(check bool)
    (name ^ ": injected fault visible in lanes")
    true
    (Astring_contains.contains lanes "FAULT")

(* Bug #1: a transient read error answered from the zero-filled buffer
   instead of retrying — one Read_error against non-zero data refutes it. *)
let test_rd_no_retry_caught () =
  let f =
    expect_violated "rd retry-without-re-read"
      (R.check
         (RD.checker_config ~may_fail:false ~size:1 ~max_crashes:0 ~fault_budget:1
            [ [ RD.write_call 0 (bv "x"); RD.Buggy.read_ft_call_no_retry 0 ] ]))
  in
  assert_fault_in_lanes "rd retry-without-re-read" f

(* Bug #2: a torn log write treated as committed — the record points at
   half-written slots, and a crash makes recovery replay the garbage. *)
let test_journal_torn_commit_caught () =
  let f =
    expect_violated "journal torn commit record"
      (R.check
         (J.checker_config ly2 ~max_crashes:1 ~fault_budget:1
            [ [ J.Buggy.commit_ft_call_ignore_torn ly2 [ (0, b "A"); (1, b "B") ] ] ]))
  in
  assert_fault_in_lanes "journal torn commit record" f

(* Bug #3: a write error swallowed mid-apply — the put reports success with
   the key never written and recovery already disarmed. *)
let test_kvs_swallow_apply_caught () =
  let f =
    expect_violated "kvs error swallowed after partial apply"
      (R.check
         (K.checker_config p ~max_crashes:0 ~fault_budget:1
            [ [ K.Buggy.put_ft_call_swallow_apply p 0 (bv "A"); K.get_call p 0 ] ]))
  in
  assert_fault_in_lanes "kvs error swallowed after partial apply" f

(* All three bugs are strategy-independent. *)
let test_bugs_all_strategies () =
  List.iter
    (fun strategy ->
      let name s = Printf.sprintf "%s under %s" s (E.strategy_name strategy) in
      ignore
        (expect_violated (name "rd no-retry")
           (R.check ~strategy
              (RD.checker_config ~may_fail:false ~size:1 ~max_crashes:0 ~fault_budget:1
                 [ [ RD.write_call 0 (bv "x"); RD.Buggy.read_ft_call_no_retry 0 ] ])));
      ignore
        (expect_violated (name "journal torn commit")
           (R.check ~strategy
              (J.checker_config ly2 ~max_crashes:1 ~fault_budget:1
                 [ [ J.Buggy.commit_ft_call_ignore_torn ly2 [ (0, b "A"); (1, b "B") ] ] ])));
      ignore
        (expect_violated (name "kvs swallowed apply error")
           (R.check ~strategy
              (K.checker_config p ~max_crashes:0 ~fault_budget:1
                 [ [ K.Buggy.put_ft_call_swallow_apply p 0 (bv "A"); K.get_call p 0 ] ]))))
    E.all_strategies

(* ------------------------------------------------------------------ *)
(* Golden fault counterexample (all three strategies)                   *)
(* ------------------------------------------------------------------ *)

let read_golden name =
  let candidates =
    [ Filename.concat "golden" (name ^ ".lanes.txt");
      Filename.concat "test/golden" (name ^ ".lanes.txt") ]
  in
  let file =
    match List.find_opt Sys.file_exists candidates with
    | Some f -> f
    | None -> Alcotest.failf "golden file %s.lanes.txt not found" name
  in
  let ic = open_in_bin file in
  let s = really_input_string ic (in_channel_length ic) in
  close_in ic;
  s

let test_golden_fault_counterexample () =
  List.iter
    (fun strategy ->
      let f =
        expect_violated
          (Printf.sprintf "rd no-retry under %s" (E.strategy_name strategy))
          (R.check ~strategy
             (RD.checker_config ~may_fail:false ~size:1 ~max_crashes:0 ~fault_budget:1
                [ [ RD.write_call 0 (bv "x"); RD.Buggy.read_ft_call_no_retry 0 ] ]))
      in
      Alcotest.(check string)
        (Printf.sprintf "rd_fault_no_retry lanes under %s" (E.strategy_name strategy))
        (read_golden "rd_fault_no_retry")
        (Fmt.str "%a" R.pp_failure_lanes f))
    E.all_strategies

(* ------------------------------------------------------------------ *)
(* Wall-clock budget                                                    *)
(* ------------------------------------------------------------------ *)

let test_max_seconds () =
  (* a zero budget exhausts on the first poll of a non-trivial instance *)
  (match
     R.check ~max_seconds:0.
       (RD.checker_config ~size:2 ~max_crashes:1
          [ [ RD.write_call 0 (bv "x") ]; [ RD.read_call 0 ] ])
   with
  | R.Budget_exhausted _ -> ()
  | R.Refinement_holds _ | R.Refinement_violated _ ->
    Alcotest.fail "expected Budget_exhausted under max_seconds:0.");
  (* check_exn surfaces it with the Budget_exhausted: prefix *)
  (try
     ignore
       (R.check_exn ~max_seconds:0.
          (RD.checker_config ~size:2 ~max_crashes:1
             [ [ RD.write_call 0 (bv "x") ]; [ RD.read_call 0 ] ]));
     Alcotest.fail "expected Failure"
   with Failure msg ->
     Alcotest.(check bool) "prefixed" true (Astring_contains.contains msg "Budget_exhausted:"));
  (* a generous budget changes nothing *)
  ignore
    (expect_holds "holds under generous max_seconds"
       (R.check ~max_seconds:300.
          (RD.checker_config ~size:1 ~max_crashes:0 [ [ RD.read_call 0 ] ])))

let suite =
  [
    Alcotest.test_case "enumerate: budget semantics" `Quick test_enumerate_budget;
    QCheck_alcotest.to_alcotest prop_enumerate_deterministic;
    QCheck_alcotest.to_alcotest prop_enumerate_duplicate_free;
    Alcotest.test_case "runner: injection oracle" `Quick test_runner_oracle;
    Alcotest.test_case "rd: ft ops hold (faults 2, crash)" `Quick test_rd_ft_holds;
    Alcotest.test_case "journal: ft commit holds (faults 2, crash)" `Quick
      test_journal_ft_holds;
    Alcotest.test_case "kvs: ft ops hold (faults 2, crash)" `Quick test_kvs_ft_holds;
    Alcotest.test_case "ft: all strategies agree" `Quick test_ft_strategies_agree;
    Alcotest.test_case "bug: rd retry-without-re-read caught" `Quick test_rd_no_retry_caught;
    Alcotest.test_case "bug: torn commit record caught" `Quick test_journal_torn_commit_caught;
    Alcotest.test_case "bug: swallowed apply error caught" `Quick test_kvs_swallow_apply_caught;
    Alcotest.test_case "bugs: caught under every strategy" `Quick test_bugs_all_strategies;
    Alcotest.test_case "golden: fault counterexample" `Quick test_golden_fault_counterexample;
    Alcotest.test_case "max_seconds: wall-clock budget" `Quick test_max_seconds;
  ]
