(* Tests for the randomized refinement checker: it must agree with the
   exhaustive checker on small instances (pass the honest systems, catch the
   seeded bugs) and scale to instances the exhaustive checker cannot touch. *)

module V = Tslang.Value
module R = Perennial_core.Refinement
module Rd = Systems.Replicated_disk
module M = Mailboat.Core

let expect_holds name result =
  match result with
  | R.Refinement_holds stats ->
    Alcotest.(check bool) (name ^ ": walked some executions") true (stats.R.executions > 0)
  | R.Refinement_violated (f, _) -> Alcotest.failf "%s: %a" name R.pp_failure f
  | R.Budget_exhausted stats -> Alcotest.failf "%s: budget (%a)" name R.pp_stats stats

let expect_violation name result =
  match result with
  | R.Refinement_violated _ -> ()
  | R.Refinement_holds stats -> Alcotest.failf "%s: missed (%a)" name R.pp_stats stats
  | R.Budget_exhausted stats -> Alcotest.failf "%s: budget (%a)" name R.pp_stats stats

let test_random_rd_holds () =
  expect_holds "rd random"
    (R.check_random ~schedules:300 ~crash_prob:0.1
       (Rd.checker_config ~may_fail:true ~max_crashes:1 ~size:1
          [ [ Rd.write_call 0 (V.str "a") ]; [ Rd.write_call 0 (V.str "b") ] ]))

let test_random_catches_zero_recovery () =
  expect_violation "rd zero recovery random"
    (R.check_random ~schedules:500 ~crash_prob:0.2
       (R.config ~spec:(Rd.spec 1)
          ~init_world:(Rd.init_world ~may_fail:false 1)
          ~crash_world:Rd.crash_world ~pp_world:Rd.pp_world
          ~threads:[ [ Rd.write_call 0 (V.str "x") ] ]
          ~recovery:(Rd.Buggy.recover_zero 1) ~post:(Rd.probe 1) ~max_crashes:1 ()))

let test_random_catches_unlocked_writes () =
  expect_violation "rd unlocked writes random"
    (R.check_random ~schedules:800 ~crash_prob:0.0
       (R.config ~spec:(Rd.spec 1)
          ~init_world:(Rd.init_world ~may_fail:true 1)
          ~crash_world:Rd.crash_world ~pp_world:Rd.pp_world
          ~threads:
            [ [ Rd.Buggy.write_call_unlocked 0 (V.str "a") ];
              [ Rd.Buggy.write_call_unlocked 0 (V.str "b") ] ]
          ~recovery:(Rd.recover_prog 1) ~post:(Rd.probe 1) ~max_crashes:0 ()))

let test_random_scales_beyond_exhaustive () =
  (* 4 delivers (2 sequential + 2 concurrent) + a pickup session across 2
     users with crash injection: beyond the exhaustive checker's reach,
     fine for 200 random walks.  At most two delivers are in flight at a
     time, matching the 2-name spool universe of the model. *)
  expect_holds "mailboat large instance"
    (R.check_random ~schedules:200 ~crash_prob:0.05
       (M.checker_config ~users:2 ~max_crashes:1
          [ [ M.deliver_call 0 "ab"; M.deliver_call 0 "cd" ];
            [ M.deliver_call 1 "ef"; M.pickup_call 0; M.unlock_call 0 ];
            [ M.pickup_call 1; M.unlock_call 1 ] ]))

let test_random_catches_unspooled_large () =
  expect_violation "mailboat unspooled random"
    (R.check_random ~schedules:600 ~crash_prob:0.1
       (M.checker_config ~users:1 ~max_crashes:1
          [ [ M.Buggy.deliver_call_unspooled 0 "abcd" ];
            [ M.pickup_call 0; M.unlock_call 0 ] ]))

let test_random_deterministic_given_seed () =
  let run () =
    R.check_random ~schedules:50 ~seed:42
      (Rd.checker_config ~may_fail:false ~max_crashes:1 ~size:1
         [ [ Rd.write_call 0 (V.str "a") ] ])
  in
  match run (), run () with
  | R.Refinement_holds s1, R.Refinement_holds s2 ->
    Alcotest.(check int) "same steps" s1.R.steps s2.R.steps
  | _ -> Alcotest.fail "expected both runs to hold"

let test_random_failure_names_seed_and_schedule () =
  (* Regression: a randomized counterexample must say which seed and which
     schedule index produced it, so the walk can be replayed exactly. *)
  match
    R.check_random ~schedules:500 ~seed:123 ~crash_prob:0.2
      (R.config ~spec:(Rd.spec 1)
         ~init_world:(Rd.init_world ~may_fail:false 1)
         ~crash_world:Rd.crash_world ~pp_world:Rd.pp_world
         ~threads:[ [ Rd.write_call 0 (V.str "x") ] ]
         ~recovery:(Rd.Buggy.recover_zero 1) ~post:(Rd.probe 1) ~max_crashes:1 ())
  with
  | R.Refinement_violated (f, _) ->
    Alcotest.(check bool) "reason names the seed" true
      (Astring_contains.contains f.R.reason "seed=123");
    Alcotest.(check bool) "reason names the schedule index" true
      (Astring_contains.contains f.R.reason "schedule=");
    Alcotest.(check bool) "reason names the schedule budget" true
      (Astring_contains.contains f.R.reason "/500]")
  | R.Refinement_holds stats -> Alcotest.failf "missed (%a)" R.pp_stats stats
  | R.Budget_exhausted stats -> Alcotest.failf "budget (%a)" R.pp_stats stats

let test_random_replay_round_trip () =
  (* A failure tagged [seed=S schedule=I/N] must replay from those numbers
     alone: check_random_replay on walk I reproduces the identical failure —
     reason, trace and all — without re-running walks 1..I-1.  The buggy
     config crashes during recovery (crash_prob 0.2, max_crashes 2), so this
     also covers the recovery-phase RNG draws. *)
  let cfg () =
    R.config ~spec:(Rd.spec 1)
      ~init_world:(Rd.init_world ~may_fail:false 1)
      ~crash_world:Rd.crash_world ~pp_world:Rd.pp_world
      ~threads:[ [ Rd.write_call 0 (V.str "x") ] ]
      ~recovery:(Rd.Buggy.recover_zero 1) ~post:(Rd.probe 1) ~max_crashes:2 ()
  in
  match R.check_random ~schedules:500 ~seed:123 ~crash_prob:0.2 (cfg ()) with
  | R.Refinement_violated (f, _) ->
    let schedule =
      (* parse the I out of "[seed=123 schedule=I/500] ..." *)
      Scanf.sscanf f.R.reason "[seed=%d schedule=%d/%d]" (fun _ i _ -> i)
    in
    (match
       R.check_random_replay ~schedules:500 ~seed:123 ~crash_prob:0.2 ~schedule (cfg ())
     with
    | R.Refinement_violated (f', _) ->
      Alcotest.(check string) "same reason" f.R.reason f'.R.reason;
      Alcotest.(check (list string)) "same trace" f.R.trace f'.R.trace
    | R.Refinement_holds stats ->
      Alcotest.failf "replay missed the failure (%a)" R.pp_stats stats
    | R.Budget_exhausted stats -> Alcotest.failf "replay budget (%a)" R.pp_stats stats)
  | R.Refinement_holds stats -> Alcotest.failf "missed (%a)" R.pp_stats stats
  | R.Budget_exhausted stats -> Alcotest.failf "budget (%a)" R.pp_stats stats

let test_random_wal_with_deep_crashes () =
  expect_holds "wal deep crashes"
    (R.check_random ~schedules:300 ~crash_prob:0.15
       (Systems.Wal.checker_config ~max_crashes:3
          [ [ Systems.Wal.write_call (V.str "a") (V.str "b");
              Systems.Wal.write_call (V.str "c") (V.str "d") ] ]))

let suite =
  [
    Alcotest.test_case "random: rd holds" `Quick test_random_rd_holds;
    Alcotest.test_case "random: catches zeroing recovery" `Quick test_random_catches_zero_recovery;
    Alcotest.test_case "random: catches unlocked writes" `Quick test_random_catches_unlocked_writes;
    Alcotest.test_case "random: scales beyond exhaustive" `Quick test_random_scales_beyond_exhaustive;
    Alcotest.test_case "random: catches unspooled deliver" `Quick test_random_catches_unspooled_large;
    Alcotest.test_case "random: deterministic given seed" `Quick test_random_deterministic_given_seed;
    Alcotest.test_case "random: failure names seed+schedule" `Quick
      test_random_failure_names_seed_and_schedule;
    Alcotest.test_case "random: replay round-trip" `Quick test_random_replay_round_trip;
    Alcotest.test_case "random: wal with 3 crashes" `Quick test_random_wal_with_deep_crashes;
  ]
