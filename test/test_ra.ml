(* Tests for the resource-algebra library: camera laws per instance, and the
   frame-preserving updates Perennial's techniques depend on. *)

module Int_eq = struct
  type t = int

  let equal = Int.equal
  let compare = Int.compare
  let pp = Fmt.int
end

module Str_eq = struct
  type t = string

  let equal = String.equal
  let compare = String.compare
  let pp = Fmt.string
end

module Ex = Ra.Excl.Make (Int_eq)
module Ag = Ra.Agree.Make (Str_eq)
module Gs = Ra.Gset.Make (Int_eq)
module ExOpt = Ra.Opt.Make (Ex)
module P = Ra.Prod.Make (ExOpt) (Ra.Max_nat)
module Sm = Ra.Sum.Make (Ex) (Ag)
module Fm = Ra.Fin_map.Make (Int_eq) (Ex)
module Au = Ra.Auth.Make (Fm)
module Ls = Ra.Lease.Make (Str_eq)

let check_laws (type a) name (module M : Ra.Ra_intf.S with type t = a) (sample : a list) =
  let module L = Ra.Laws.Make (M) in
  match L.check_sample sample with
  | None -> ()
  | Some (a, b, c) ->
    Alcotest.failf "%s law violation at (%a, %a, %a)" name M.pp a M.pp b M.pp c

let ex_sample = [ Ex.ex 1; Ex.ex 2; Ex.bot ]
let ag_sample = [ Ag.ag "x"; Ag.ag "y"; Ag.bot ]
let gs_sample = [ Gs.of_list []; Gs.of_list [ 1 ]; Gs.of_list [ 1; 2 ]; Gs.of_list [ 3 ] ]
let exopt_sample = None :: List.map Option.some ex_sample
let maxnat_sample = [ 0; 1; 2; 5 ]

let prod_sample =
  List.concat_map (fun a -> List.map (fun b -> (a, b)) maxnat_sample) exopt_sample

let sum_sample = [ Sm.inl (Ex.ex 1); Sm.inl Ex.bot; Sm.inr (Ag.ag "x"); Sm.inr (Ag.ag "y") ]

let fm_sample =
  [ Fm.unit; Fm.singleton 0 (Ex.ex 1); Fm.singleton 0 (Ex.ex 2); Fm.singleton 1 (Ex.ex 1);
    Fm.of_list [ (0, Ex.ex 1); (1, Ex.ex 2) ] ]

let auth_sample =
  List.concat_map
    (fun m -> [ Au.auth m; Au.frag m ])
    fm_sample

let lease_sample =
  [ Ls.unit; Ls.master 0 "a"; Ls.master 0 "b"; Ls.master 1 "a"; Ls.lease 0 "a";
    Ls.lease 0 "b"; Ls.lease 1 "a"; Ls.op (Ls.master 0 "a") (Ls.lease 0 "a");
    Ls.op (Ls.master 1 "b") (Ls.lease 1 "b") ]

let test_all_laws () =
  check_laws "Excl" (module Ex) ex_sample;
  check_laws "Agree" (module Ag) ag_sample;
  check_laws "Gset" (module Gs) gs_sample;
  check_laws "Opt(Excl)" (module ExOpt) exopt_sample;
  check_laws "MaxNat" (module Ra.Max_nat) maxnat_sample;
  check_laws "Prod" (module P) prod_sample;
  check_laws "Sum" (module Sm) sum_sample;
  check_laws "FinMap" (module Fm) fm_sample;
  check_laws "Auth" (module Au) auth_sample;
  check_laws "Lease" (module Ls) lease_sample

let test_unital_laws () =
  let module Lg = Ra.Laws.Unital_laws (Gs) in
  Alcotest.(check bool) "gset unit valid" true (Lg.unit_valid ());
  Alcotest.(check bool) "gset unit left" true (Lg.unit_left (Gs.of_list [ 1; 2 ]));
  Alcotest.(check bool) "gset unit core" true (Lg.unit_core ());
  let module Lf = Ra.Laws.Unital_laws (Fm) in
  Alcotest.(check bool) "finmap unit valid" true (Lf.unit_valid ());
  Alcotest.(check bool) "finmap unit left" true (Lf.unit_left (Fm.singleton 0 (Ex.ex 1)));
  let module Ll = Ra.Laws.Unital_laws (Ls) in
  Alcotest.(check bool) "lease unit valid" true (Ll.unit_valid ());
  Alcotest.(check bool) "lease unit left" true (Ll.unit_left (Ls.master 0 "a"))

(* --- behavioural tests per camera --- *)

let test_excl_exclusive () =
  Alcotest.(check bool) "two owners invalid" false (Ex.valid (Ex.op (Ex.ex 1) (Ex.ex 1)));
  Alcotest.(check bool) "no core" true (Ex.core (Ex.ex 1) = None)

let test_agree () =
  Alcotest.(check bool) "same agrees" true (Ag.valid (Ag.op (Ag.ag "v") (Ag.ag "v")));
  Alcotest.(check bool) "diff conflicts" false (Ag.valid (Ag.op (Ag.ag "v") (Ag.ag "w")));
  Alcotest.(check bool) "persistent" true
    (match Ag.core (Ag.ag "v") with Some c -> Ag.equal c (Ag.ag "v") | None -> false)

let test_frac () =
  let module F = Ra.Frac in
  Alcotest.(check bool) "halves combine to one" true
    (F.equal (F.op F.half F.half) F.one);
  Alcotest.(check bool) "one is valid" true (F.valid F.one);
  Alcotest.(check bool) "over one invalid" false (F.valid (F.op F.one F.half));
  Alcotest.(check bool) "split halves" true (F.equal (F.split F.one) F.half)

let test_q_arith () =
  let module Q = Ra.Q in
  Alcotest.(check bool) "normalization" true (Q.equal (Q.make 2 4) Q.half);
  Alcotest.(check int) "num" 1 (Q.num (Q.make 3 6));
  Alcotest.(check bool) "add" true (Q.equal (Q.add (Q.make 1 3) (Q.make 1 6)) Q.half);
  Alcotest.(check bool) "sub" true (Q.equal (Q.sub Q.one Q.half) Q.half);
  Alcotest.check_raises "bad denominator" (Invalid_argument "Q.make: nonpositive denominator")
    (fun () -> ignore (Q.make 1 0))

let test_max_nat () =
  let module N = Ra.Max_nat in
  Alcotest.(check int) "op is max" 5 (N.op 3 5);
  Alcotest.(check bool) "included" true (N.included 3 5);
  Alcotest.(check bool) "not included" false (N.included 5 3)

let test_auth_inclusion () =
  let a = Fm.of_list [ (0, Ex.ex 1); (1, Ex.ex 2) ] in
  let f_ok = Fm.singleton 0 (Ex.ex 1) in
  let f_bad = Fm.singleton 0 (Ex.ex 9) in
  Alcotest.(check bool) "frag within auth valid" true (Au.valid (Au.op (Au.auth a) (Au.frag f_ok)));
  Alcotest.(check bool) "lying frag invalid" false (Au.valid (Au.op (Au.auth a) (Au.frag f_bad)));
  Alcotest.(check bool) "two auths invalid" false (Au.valid (Au.op (Au.auth a) (Au.auth a)))

let test_finmap_disjoint () =
  let m1 = Fm.singleton 0 (Ex.ex 1) and m2 = Fm.singleton 1 (Ex.ex 2) in
  Alcotest.(check bool) "disjoint keys compose" true (Fm.valid (Fm.op m1 m2));
  Alcotest.(check bool) "same key conflicts" false
    (Fm.valid (Fm.op m1 (Fm.singleton 0 (Ex.ex 5))))

(* --- lease camera: the §5.3 rules --- *)

let test_lease_exclusivity () =
  Alcotest.(check bool) "two masters invalid" false
    (Ls.valid (Ls.op (Ls.master 0 "a") (Ls.master 0 "a")));
  Alcotest.(check bool) "two leases same version invalid" false
    (Ls.valid (Ls.op (Ls.lease 0 "a") (Ls.lease 0 "a")));
  Alcotest.(check bool) "leases at different versions coexist" true
    (Ls.valid (Ls.op (Ls.lease 0 "a") (Ls.lease 1 "b")));
  Alcotest.(check bool) "master+lease agree ok" true
    (Ls.valid (Ls.op (Ls.master 2 "v") (Ls.lease 2 "v")));
  Alcotest.(check bool) "master+lease disagree invalid" false
    (Ls.valid (Ls.op (Ls.master 2 "v") (Ls.lease 2 "w")))

let test_lease_write_rule () =
  (* Write requires both master and lease (paper §5.3 first rule). *)
  let pair = Ls.op (Ls.master 0 "old") (Ls.lease 0 "old") in
  (match Ls.write pair "new" with
  | Some x ->
    Alcotest.(check bool) "updated master" true
      (match Ls.get_master x with Some (0, "new") -> true | _ -> false);
    Alcotest.(check bool) "updated lease" true (Ls.get_lease 0 x = Some "new")
  | None -> Alcotest.fail "write should apply");
  Alcotest.(check bool) "bare master cannot write" true (Ls.write (Ls.master 0 "old") "new" = None);
  Alcotest.(check bool) "bare lease cannot write" true (Ls.write (Ls.lease 0 "old") "new" = None)

let test_lease_synthesis_rule () =
  (* Crash rule: master_n v ⇒ master_{n+1} v ⋅ lease_{n+1} v (§5.3). *)
  match Ls.synthesize (Ls.master 3 "v") with
  | Some x ->
    Alcotest.(check bool) "new master version" true
      (match Ls.get_master x with Some (4, "v") -> true | _ -> false);
    Alcotest.(check bool) "fresh lease" true (Ls.get_lease 4 x = Some "v")
  | None -> Alcotest.fail "synthesis should apply"

(* --- frame-preserving updates --- *)

let test_fpu_excl () =
  let module F = Ra.Fpu.Make (Ex) in
  (* Full ownership may be updated to anything. *)
  Alcotest.(check bool) "ex update ok" true (F.ok1 ~frames:ex_sample (Ex.ex 1) (Ex.ex 2))

let test_fpu_agree_fails () =
  let module F = Ra.Fpu.Make (Ag) in
  (* Changing an agreement element is NOT frame preserving: another thread
     may hold a copy. *)
  Alcotest.(check bool) "agree update rejected" false
    (F.ok1 ~frames:ag_sample (Ag.ag "x") (Ag.ag "y"));
  (match F.counterexample ~frames:ag_sample (Ag.ag "x") [ Ag.ag "y" ] with
  | Some f -> Alcotest.(check bool) "witness is the copy" true (Ag.equal f (Ag.ag "x"))
  | None -> Alcotest.fail "expected counterexample")

let test_fpu_lease_write () =
  let module F = Ra.Fpu.Make (Ls) in
  let pre = Ls.op (Ls.master 0 "a") (Ls.lease 0 "a") in
  let post = Ls.op (Ls.master 0 "b") (Ls.lease 0 "b") in
  Alcotest.(check bool) "write is frame-preserving" true
    (F.ok1 ~frames:lease_sample pre post);
  (* Updating the master alone is not: the lease holder would disagree. *)
  Alcotest.(check bool) "master-only update rejected" false
    (F.ok1 ~frames:lease_sample (Ls.master 0 "a") (Ls.master 0 "b"))

let test_fpu_lease_synthesis () =
  let module F = Ra.Fpu.Make (Ls) in
  (* Frames at versions <= n (the versioned-triple side condition). *)
  let frames_past =
    [ Ls.unit; Ls.lease 0 "a"; Ls.lease 0 "b"; Ls.master 0 "z" ]
  in
  let pre = Ls.master 0 "v" in
  let post = Ls.op (Ls.master 1 "v") (Ls.lease 1 "v") in
  Alcotest.(check bool) "synthesis frame-preserving vs past frames" true
    (F.ok1 ~frames:frames_past pre post);
  (* Against a frame already holding the future lease it would be unsound —
     exactly why versioning matters. *)
  Alcotest.(check bool) "unsound against future lease" false
    (F.ok1 ~frames:[ Ls.lease 1 "v" ] pre post)

let test_fpu_auth_update () =
  let module F = Ra.Fpu.Make (Au) in
  (* ●m ⋅ ◯m ⇝ ●m' ⋅ ◯m' — updating auth and frag together is allowed. *)
  let m = Fm.singleton 0 (Ex.ex 1) and m' = Fm.singleton 0 (Ex.ex 2) in
  Alcotest.(check bool) "auth+frag update" true
    (F.ok1 ~frames:auth_sample (Au.both m m) (Au.both m' m'));
  (* Updating only the authority under a fragment that pins the old value
     fails. *)
  Alcotest.(check bool) "auth-only update rejected" false
    (F.ok1 ~frames:[ Au.frag m ] (Au.auth m) (Au.auth m'))

(* --- fin_map composed under auth: the ghost heap the KVS proof uses --- *)

let auth_frames =
  (* Frame universe: fragments and authorities over the sample maps, plus
     single-cell fragments a concurrent thread would plausibly hold. *)
  auth_sample
  @ [ Au.frag (Fm.singleton 1 (Ex.ex 2)); Au.frag (Fm.singleton 2 (Ex.ex 3)) ]

let test_fpu_auth_alloc () =
  let module F = Ra.Fpu.Make (Au) in
  (* Allocation: ●m ⇝ ●(m[k↦v]) ⋅ ◯{k↦v} for fresh k — how a ghost heap
     cell is born (the KV proof allocates one per key at init). *)
  let m = Fm.of_list [ (0, Ex.ex 1); (1, Ex.ex 2) ] in
  let m' = Fm.add 7 (Ex.ex 5) m in
  Alcotest.(check bool) "alloc at fresh key ok" true
    (F.ok1 ~frames:auth_frames (Au.auth m) (Au.both m' (Fm.singleton 7 (Ex.ex 5))));
  (* At an occupied key the update is not frame-preserving: whoever holds
     that cell's fragment is the witness. *)
  let clash = Au.both (Fm.add 1 (Ex.ex 5) m) (Fm.singleton 1 (Ex.ex 5)) in
  Alcotest.(check bool) "alloc at occupied key rejected" false
    (F.ok1 ~frames:auth_frames (Au.auth m) clash);
  match F.counterexample ~frames:auth_frames (Au.auth m) [ clash ] with
  | Some f ->
    Alcotest.(check bool) "witness holds key 1" true (Fm.find 1 (Au.get_frag f) <> None)
  | None -> Alcotest.fail "expected counterexample"

let test_fpu_auth_update_pointwise () =
  let module F = Ra.Fpu.Make (Au) in
  (* The KV put: holding a cell's fragment, update authority and fragment
     together; every other key's fragment keeps composing. *)
  let m = Fm.of_list [ (0, Ex.ex 1); (1, Ex.ex 2) ] in
  let pre = Au.both m (Fm.singleton 0 (Ex.ex 1)) in
  let post = Au.both (Fm.add 0 (Ex.ex 9) m) (Fm.singleton 0 (Ex.ex 9)) in
  Alcotest.(check bool) "pointwise update ok" true (F.ok1 ~frames:auth_frames pre post);
  (* Updating a key whose fragment some other thread holds is rejected. *)
  let bad = Au.both (Fm.add 1 (Ex.ex 9) m) (Fm.singleton 0 (Ex.ex 1)) in
  Alcotest.(check bool) "updating an unowned key rejected" false
    (F.ok1 ~frames:auth_frames pre bad)

let test_fpu_auth_dealloc () =
  let module F = Ra.Fpu.Make (Au) in
  (* Deallocation: ●m ⋅ ◯{k↦v} ⇝ ●(m − k) — the authority may drop a cell
     it has reclaimed the fragment for, and only then. *)
  let m = Fm.of_list [ (0, Ex.ex 1); (1, Ex.ex 2) ] in
  Alcotest.(check bool) "dealloc owned key ok" true
    (F.ok1 ~frames:auth_frames
       (Au.both m (Fm.singleton 1 (Ex.ex 2)))
       (Au.auth (Fm.remove 1 m)));
  Alcotest.(check bool) "dealloc without fragment rejected" false
    (F.ok1 ~frames:auth_frames (Au.auth m) (Au.auth (Fm.remove 1 m)))

(* --- qcheck properties over randomly generated elements --- *)

let arb_lease =
  let gen =
    QCheck.Gen.(
      let tok =
        oneof
          [ map2 (fun n v -> Ls.master n v) (int_bound 3) (oneofl [ "a"; "b" ]);
            map2 (fun n v -> Ls.lease n v) (int_bound 3) (oneofl [ "a"; "b" ]);
            return Ls.unit ]
      in
      map (fun ts -> List.fold_left Ls.op Ls.unit ts) (list_size (int_bound 3) tok))
  in
  QCheck.make ~print:(Fmt.to_to_string Ls.pp) gen

let prop_lease_assoc =
  QCheck.Test.make ~name:"lease op associative" ~count:300
    QCheck.(triple arb_lease arb_lease arb_lease) (fun (a, b, c) ->
      Ls.equal (Ls.op a (Ls.op b c)) (Ls.op (Ls.op a b) c))

let prop_lease_comm =
  QCheck.Test.make ~name:"lease op commutative" ~count:300
    QCheck.(pair arb_lease arb_lease) (fun (a, b) -> Ls.equal (Ls.op a b) (Ls.op b a))

let prop_lease_valid_mono =
  QCheck.Test.make ~name:"lease validity down-closed" ~count:300
    QCheck.(pair arb_lease arb_lease) (fun (a, b) ->
      (not (Ls.valid (Ls.op a b))) || Ls.valid a)

let gen_fm =
  QCheck.Gen.(
    let cell = map2 (fun k v -> (k, Ex.ex v)) (int_bound 3) (int_bound 2) in
    map
      (fun cs -> List.fold_left (fun m (k, v) -> Fm.op m (Fm.singleton k v)) Fm.unit cs)
      (list_size (int_bound 4) cell))

let arb_fm = QCheck.make ~print:(Fmt.to_to_string Fm.pp) gen_fm

let arb_auth =
  QCheck.make
    ~print:(Fmt.to_to_string Au.pp)
    QCheck.Gen.(
      oneof
        [ map Au.auth gen_fm; map Au.frag gen_fm;
          map2 (fun a f -> Au.op (Au.auth a) (Au.frag f)) gen_fm gen_fm ])

let prop_fm_assoc =
  QCheck.Test.make ~name:"finmap op associative" ~count:300
    QCheck.(triple arb_fm arb_fm arb_fm) (fun (a, b, c) ->
      Fm.equal (Fm.op a (Fm.op b c)) (Fm.op (Fm.op a b) c))

let prop_fm_comm =
  QCheck.Test.make ~name:"finmap op commutative" ~count:300
    QCheck.(pair arb_fm arb_fm) (fun (a, b) -> Fm.equal (Fm.op a b) (Fm.op b a))

let prop_auth_valid_mono =
  QCheck.Test.make ~name:"auth validity down-closed" ~count:300
    QCheck.(pair arb_auth arb_auth) (fun (a, b) ->
      (not (Au.valid (Au.op a b))) || Au.valid a)

let prop_auth_frag_incl =
  (* Any summand of a valid authority is an honest fragment of it. *)
  QCheck.Test.make ~name:"auth: summands are honest fragments" ~count:300
    QCheck.(pair arb_fm arb_fm) (fun (a, b) ->
      let m = Fm.op a b in
      (not (Fm.valid m)) || Au.valid (Au.op (Au.auth m) (Au.frag a)))

let prop_fpu_auth_alloc =
  let module F = Ra.Fpu.Make (Au) in
  QCheck.Test.make ~name:"auth alloc frame-preserving at fresh keys" ~count:200
    QCheck.(pair arb_fm (int_bound 2)) (fun (m, v) ->
      let k = 9 (* outside the generator's key range: always fresh *) in
      let frames =
        Au.frag Fm.unit :: Au.frag m
        :: List.map (fun (k', v') -> Au.frag (Fm.singleton k' v')) (Fm.to_list m)
      in
      (not (Fm.valid m))
      || F.ok1 ~frames (Au.auth m)
           (Au.both (Fm.add k (Ex.ex v) m) (Fm.singleton k (Ex.ex v))))

let arb_q =
  QCheck.make
    ~print:(Fmt.to_to_string Ra.Q.pp)
    QCheck.Gen.(map2 (fun n d -> Ra.Q.make n (d + 1)) (int_bound 20) (int_bound 20))

let prop_q_add_comm =
  QCheck.Test.make ~name:"Q.add commutative" ~count:200 QCheck.(pair arb_q arb_q)
    (fun (a, b) -> Ra.Q.equal (Ra.Q.add a b) (Ra.Q.add b a))

let prop_q_sub_add =
  QCheck.Test.make ~name:"Q.sub inverts add" ~count:200 QCheck.(pair arb_q arb_q)
    (fun (a, b) -> Ra.Q.equal (Ra.Q.sub (Ra.Q.add a b) b) a)

let qcheck_tests =
  List.map QCheck_alcotest.to_alcotest
    [ prop_lease_assoc; prop_lease_comm; prop_lease_valid_mono; prop_fm_assoc;
      prop_fm_comm; prop_auth_valid_mono; prop_auth_frag_incl; prop_fpu_auth_alloc;
      prop_q_add_comm; prop_q_sub_add ]

let suite =
  [
    Alcotest.test_case "laws: all instances over samples" `Quick test_all_laws;
    Alcotest.test_case "unital laws" `Quick test_unital_laws;
    Alcotest.test_case "excl exclusivity" `Quick test_excl_exclusive;
    Alcotest.test_case "agree" `Quick test_agree;
    Alcotest.test_case "frac" `Quick test_frac;
    Alcotest.test_case "Q arithmetic" `Quick test_q_arith;
    Alcotest.test_case "max-nat" `Quick test_max_nat;
    Alcotest.test_case "auth inclusion" `Quick test_auth_inclusion;
    Alcotest.test_case "finmap disjointness" `Quick test_finmap_disjoint;
    Alcotest.test_case "lease exclusivity (§5.3)" `Quick test_lease_exclusivity;
    Alcotest.test_case "lease write rule (§5.3)" `Quick test_lease_write_rule;
    Alcotest.test_case "lease synthesis rule (§5.3)" `Quick test_lease_synthesis_rule;
    Alcotest.test_case "fpu: excl" `Quick test_fpu_excl;
    Alcotest.test_case "fpu: agree update rejected" `Quick test_fpu_agree_fails;
    Alcotest.test_case "fpu: lease write" `Quick test_fpu_lease_write;
    Alcotest.test_case "fpu: lease synthesis" `Quick test_fpu_lease_synthesis;
    Alcotest.test_case "fpu: auth update" `Quick test_fpu_auth_update;
    Alcotest.test_case "fpu: auth alloc (ghost heap)" `Quick test_fpu_auth_alloc;
    Alcotest.test_case "fpu: auth pointwise update" `Quick test_fpu_auth_update_pointwise;
    Alcotest.test_case "fpu: auth dealloc" `Quick test_fpu_auth_dealloc;
  ]
  @ qcheck_tests
