(* Tests for the running mail servers, the SMTP/POP3 protocol layer, the
   workload generator, and real multi-domain execution. *)

module S = Mailboat.Server

let new_server ?(kind = S.Mailboat_server) ?(users = 4) () = S.create ~kind ~users ()

(* --- server operations --- *)

let test_deliver_pickup_roundtrip () =
  let s = new_server () in
  let id = S.deliver s ~user:1 "hello there" in
  (match S.pickup s ~user:1 with
  | [ (id', contents) ] ->
    Alcotest.(check string) "id" id id';
    Alcotest.(check string) "contents" "hello there" contents
  | l -> Alcotest.failf "expected 1 message, got %d" (List.length l));
  S.unlock s ~user:1

let test_delete_under_lock () =
  let s = new_server () in
  let id = S.deliver s ~user:0 "m" in
  let msgs = S.pickup s ~user:0 in
  Alcotest.(check int) "one before" 1 (List.length msgs);
  S.delete s ~user:0 id;
  S.unlock s ~user:0;
  let msgs = S.pickup s ~user:0 in
  S.unlock s ~user:0;
  Alcotest.(check int) "zero after" 0 (List.length msgs)

let test_large_message_chunks () =
  let s = new_server () in
  let big = String.init 10_000 (fun i -> Char.chr (Char.code 'a' + (i mod 26))) in
  ignore (S.deliver s ~user:2 big);
  (match S.pickup s ~user:2 with
  | [ (_, contents) ] -> Alcotest.(check int) "length preserved" 10_000 (String.length contents)
  | _ -> Alcotest.fail "message lost");
  S.unlock s ~user:2

let test_recover_cleans_spool_only () =
  let s = new_server () in
  ignore (S.deliver s ~user:0 "keep me");
  ignore (Gfs.Tmpfs.create s.S.fs "spool" "tmp-leftover");
  S.crash s;
  S.recover s;
  Alcotest.(check (list string)) "spool empty" [] (Gfs.Tmpfs.list_dir s.S.fs "spool");
  Alcotest.(check int) "mailbox intact" 1 (List.length (S.peek_mailbox s ~user:0))

let test_file_lock_servers_functional () =
  List.iter
    (fun kind ->
      let s = new_server ~kind () in
      ignore (S.deliver s ~user:3 "via file locks");
      let msgs = S.pickup s ~user:3 in
      S.unlock s ~user:3;
      Alcotest.(check int) (S.kind_name kind ^ " works") 1 (List.length msgs);
      (* the lock file must not appear as a message *)
      List.iter (fun (id, _) -> Alcotest.(check bool) "no dotfile" false (id.[0] = '.')) msgs)
    [ S.Gomail; S.Cmail ]

let test_fs_call_accounting () =
  (* file-lock servers must pay more fs calls for the same work — the
     mechanism behind Figure 11's single-core gap *)
  let count kind =
    let s = new_server ~kind () in
    ignore (S.deliver s ~user:0 "x");
    ignore (S.pickup s ~user:0);
    S.unlock s ~user:0;
    s.S.fs_calls
  in
  let mailboat = count S.Mailboat_server and gomail = count S.Gomail in
  Alcotest.(check bool)
    (Printf.sprintf "gomail (%d) > mailboat (%d)" gomail mailboat)
    true (gomail > mailboat)

(* --- real concurrency with domains --- *)

let test_concurrent_domains () =
  let s = new_server ~users:8 () in
  let deliver_worker seed () =
    let rng = Random.State.make [| seed |] in
    for _ = 1 to 50 do
      ignore (S.deliver s ~user:(Random.State.int rng 8) "concurrent")
    done
  in
  let pickup_worker seed () =
    let rng = Random.State.make [| seed |] in
    for _ = 1 to 20 do
      let u = Random.State.int rng 8 in
      let msgs = S.pickup s ~user:u in
      List.iter (fun (_, c) -> assert (c = "concurrent")) msgs;
      S.unlock s ~user:u
    done
  in
  let domains =
    [ Domain.spawn (deliver_worker 1); Domain.spawn (deliver_worker 2);
      Domain.spawn (pickup_worker 3) ]
  in
  List.iter Domain.join domains;
  let total =
    List.init 8 (fun u -> List.length (S.peek_mailbox s ~user:u)) |> List.fold_left ( + ) 0
  in
  Alcotest.(check int) "all 100 delivered" 100 total;
  Alcotest.(check (list string)) "spool clean" [] (Gfs.Tmpfs.list_dir s.S.fs "spool")

(* --- SMTP --- *)

let test_smtp_happy_path () =
  let s = new_server () in
  let rs =
    Mailboat.Smtp.run_script s
      [ "HELO x"; "MAIL FROM:<a@b>"; "RCPT TO:<user1@c>"; "DATA"; "hi"; "."; "QUIT" ]
  in
  Alcotest.(check bool) "queued" true
    (List.exists (fun r -> Astring_contains.contains r "queued") rs);
  Alcotest.(check int) "delivered" 1 (List.length (S.peek_mailbox s ~user:1))

let test_smtp_bad_sequence () =
  let s = new_server () in
  let session = Mailboat.Smtp.create s in
  (match Mailboat.Smtp.input session "DATA" with
  | [ r ] -> Alcotest.(check bool) "503" true (Astring_contains.contains r "503")
  | _ -> Alcotest.fail "expected one response");
  match Mailboat.Smtp.input session "RCPT TO:<user0@x>" with
  | [ r ] -> Alcotest.(check bool) "503 again" true (Astring_contains.contains r "503")
  | _ -> Alcotest.fail "expected one response"

let test_smtp_unknown_user () =
  let s = new_server () in
  let session = Mailboat.Smtp.create s in
  ignore (Mailboat.Smtp.input session "HELO x");
  ignore (Mailboat.Smtp.input session "MAIL FROM:<a@b>");
  match Mailboat.Smtp.input session "RCPT TO:<user99@c>" with
  | [ r ] -> Alcotest.(check bool) "550" true (Astring_contains.contains r "550")
  | _ -> Alcotest.fail "expected one response"

let test_smtp_multiple_rcpt () =
  let s = new_server () in
  ignore
    (Mailboat.Smtp.run_script s
       [ "HELO x"; "MAIL FROM:<a@b>"; "RCPT TO:<user0@c>"; "RCPT TO:<user2@c>"; "DATA";
         "fanout"; "."; "QUIT" ]);
  Alcotest.(check int) "user0 got it" 1 (List.length (S.peek_mailbox s ~user:0));
  Alcotest.(check int) "user2 got it" 1 (List.length (S.peek_mailbox s ~user:2))

let test_smtp_dot_stuffing () =
  let s = new_server () in
  ignore
    (Mailboat.Smtp.run_script s
       [ "HELO x"; "MAIL FROM:<a@b>"; "RCPT TO:<user0@c>"; "DATA"; "..leading dot"; ".";
         "QUIT" ]);
  match S.peek_mailbox s ~user:0 with
  | [ (_, contents) ] ->
    Alcotest.(check string) "unstuffed" ".leading dot\n" contents
  | _ -> Alcotest.fail "message lost"

(* --- POP3 --- *)

let test_pop3_session () =
  let s = new_server () in
  ignore (S.deliver s ~user:1 "first");
  ignore (S.deliver s ~user:1 "second");
  let p = Mailboat.Pop3.create s in
  ignore (Mailboat.Pop3.input p "USER user1");
  (match Mailboat.Pop3.input p "PASS x" with
  | [ r ] -> Alcotest.(check bool) "2 messages" true (Astring_contains.contains r "2 messages")
  | _ -> Alcotest.fail "PASS");
  (match Mailboat.Pop3.input p "STAT" with
  | [ r ] -> Alcotest.(check bool) "stat 2" true (Astring_contains.contains r "+OK 2")
  | _ -> Alcotest.fail "STAT");
  (match Mailboat.Pop3.input p "RETR 1" with
  | [ _; contents; _ ] ->
    Alcotest.(check bool) "retrieved" true (contents = "first" || contents = "second")
  | _ -> Alcotest.fail "RETR");
  ignore (Mailboat.Pop3.input p "DELE 1");
  ignore (Mailboat.Pop3.input p "QUIT");
  (* deletion committed at QUIT; the lock is released *)
  let remaining = S.pickup s ~user:1 in
  S.unlock s ~user:1;
  Alcotest.(check int) "one left" 1 (List.length remaining)

let test_pop3_rset () =
  let s = new_server () in
  ignore (S.deliver s ~user:0 "precious");
  let p = Mailboat.Pop3.create s in
  ignore (Mailboat.Pop3.input p "USER user0");
  ignore (Mailboat.Pop3.input p "PASS x");
  ignore (Mailboat.Pop3.input p "DELE 1");
  ignore (Mailboat.Pop3.input p "RSET");
  ignore (Mailboat.Pop3.input p "QUIT");
  Alcotest.(check int) "survived RSET" 1 (List.length (S.peek_mailbox s ~user:0))

let test_pop3_bad_auth () =
  let s = new_server () in
  let p = Mailboat.Pop3.create s in
  match Mailboat.Pop3.input p "USER nosuch" with
  | [ r ] -> Alcotest.(check bool) "-ERR" true (Astring_contains.contains r "-ERR")
  | _ -> Alcotest.fail "expected error"

let test_pop3_lock_session_excludes_delete () =
  (* while a POP3 session is open (lock held), another pickup blocks; we
     verify by observing that the lock really is held *)
  let s = new_server () in
  ignore (S.deliver s ~user:0 "m");
  let p = Mailboat.Pop3.create s in
  ignore (Mailboat.Pop3.input p "USER user0");
  ignore (Mailboat.Pop3.input p "PASS x");
  Alcotest.(check bool) "lock held during session" false
    (Mutex.try_lock s.S.user_mutexes.(0));
  ignore (Mailboat.Pop3.input p "QUIT");
  Alcotest.(check bool) "lock free after QUIT" true (Mutex.try_lock s.S.user_mutexes.(0));
  Mutex.unlock s.S.user_mutexes.(0)

(* --- REPL/front-end hardening: malformed and oversized input must get an
   error response, never an exception --- *)

let test_kvs_repl_malformed () =
  let module Repl = Journal.Kvs_repl in
  let t = Repl.create () in
  let err l =
    match Repl.exec_line t l with
    | [ r ] ->
      Alcotest.(check bool)
        (Printf.sprintf "%S -> ERR (got %S)" l r)
        true
        (String.length r >= 3 && String.sub r 0 3 = "ERR")
    | rs -> Alcotest.failf "%S: expected one response, got %d" l (List.length rs)
  in
  List.iter err
    [ "GET"; "GET abc"; "GET 99"; "GET -1"; "GET 999999999999999999999"; "PUT 0";
      "PUT 0 x y"; "ASYNC 1"; "TXN"; "TXN nope"; "TXN 9=x"; "TXN 0=a 0=b"; "FLUSH now";
      "CRASH please"; "RECOVER x"; "DUMP all"; "BOGUS" ];
  Alcotest.(check (list string)) "blank line" [] (Repl.exec_line t "   ");
  (* the session survives all of that *)
  Alcotest.(check (list string)) "still works" [ "OK durable" ] (Repl.exec_line t "PUT 0 v");
  Alcotest.(check (list string)) "value intact" [ "v" ] (Repl.exec_line t "GET 0")

let test_kvs_repl_oversized () =
  let module Repl = Journal.Kvs_repl in
  let t = Repl.create () in
  let long = "PUT 0 " ^ String.make Repl.max_line 'v' in
  (match Repl.exec_line t long with
  | [ r ] ->
    Alcotest.(check bool) "line too long" true (Astring_contains.contains r "ERR line too long")
  | _ -> Alcotest.fail "expected one response");
  (* rejected before parsing: the store is untouched *)
  Alcotest.(check (list string)) "key untouched" [ "0" ] (Repl.exec_line t "GET 0")

(* Regression: a command whose backend program exceeds the --timeout-ms
   budget must answer `ERR timeout` (world untouched, session alive), not
   hang the session or die with `ERR internal`.  A zero budget degrades
   every backend program, which is exactly what a stuck _ft retry loop
   looks like from the REPL's side. *)
let test_kvs_repl_timeout () =
  let module Repl = Journal.Kvs_repl in
  let t = Repl.create ~timeout_ms:0 () in
  Alcotest.(check (list string)) "put times out" [ "ERR timeout" ] (Repl.exec_line t "PUT 0 v");
  Alcotest.(check (list string)) "txn times out" [ "ERR timeout" ] (Repl.exec_line t "TXN 0=a 1=b");
  (* the session survives: parsing still answers without touching the store *)
  Alcotest.(check (list string))
    "parse errors still reported" [ "ERR bad key" ] (Repl.exec_line t "GET 99");
  (* a generous budget leaves every command's behavior unchanged *)
  let t = Repl.create ~timeout_ms:1000 () in
  Alcotest.(check (list string)) "put ok" [ "OK durable" ] (Repl.exec_line t "PUT 0 v");
  Alcotest.(check (list string)) "get ok" [ "v" ] (Repl.exec_line t "GET 0");
  Alcotest.(check (list string)) "txn ok" [ "OK committed 2 keys" ] (Repl.exec_line t "TXN 1=a 2=b");
  Alcotest.(check (list string)) "crash ok" [ "OK crashed (buffer lost)" ] (Repl.exec_line t "CRASH");
  Alcotest.(check (list string)) "recover ok" [ "OK recovered" ] (Repl.exec_line t "RECOVER");
  Alcotest.(check (list string)) "durable value intact" [ "v" ] (Repl.exec_line t "GET 0")

let test_smtp_oversized_message () =
  let s = new_server () in
  let smtp = Mailboat.Smtp.create ~max_data:64 s in
  List.iter
    (fun l -> ignore (Mailboat.Smtp.input smtp l))
    [ "HELO x"; "MAIL FROM:<a@b>"; "RCPT TO:<user1@c>"; "DATA" ];
  (match Mailboat.Smtp.input smtp (String.make 100 'a') with
  | [ r ] -> Alcotest.(check bool) "552" true (Astring_contains.contains r "552")
  | _ -> Alcotest.fail "expected 552");
  Alcotest.(check int) "nothing delivered" 0 (List.length (S.peek_mailbox s ~user:1));
  (* the session resynchronized at the command level *)
  match Mailboat.Smtp.input smtp "MAIL FROM:<a@b>" with
  | [ r ] -> Alcotest.(check bool) "command level again" true (Astring_contains.contains r "250")
  | _ -> Alcotest.fail "expected 250"

let test_smtp_long_command_line () =
  let s = new_server () in
  let smtp = Mailboat.Smtp.create s in
  match Mailboat.Smtp.input smtp (String.make (Mailboat.Smtp.max_line + 1) 'H') with
  | [ r ] -> Alcotest.(check bool) "500" true (Astring_contains.contains r "500")
  | _ -> Alcotest.fail "expected 500"

let test_pop3_long_command_line () =
  let s = new_server () in
  let p = Mailboat.Pop3.create s in
  match Mailboat.Pop3.input p ("USER " ^ String.make Mailboat.Pop3.max_line 'u') with
  | [ r ] -> Alcotest.(check bool) "-ERR" true (Astring_contains.contains r "-ERR")
  | _ -> Alcotest.fail "expected -ERR"

(* --- workload --- *)

let test_workload_reproducible () =
  let a = Mailboat.Workload.generate ~seed:5 ~users:10 ~n:100 in
  let b = Mailboat.Workload.generate ~seed:5 ~users:10 ~n:100 in
  Alcotest.(check bool) "same stream" true (a = b);
  let c = Mailboat.Workload.generate ~seed:6 ~users:10 ~n:100 in
  Alcotest.(check bool) "different seed differs" true (a <> c)

let test_workload_mix () =
  let reqs = Mailboat.Workload.generate ~seed:1 ~users:100 ~n:2000 in
  let delivers =
    List.length
      (List.filter (function Mailboat.Workload.Smtp_deliver _ -> true | _ -> false) reqs)
  in
  (* roughly 50/50 *)
  Alcotest.(check bool) "balanced mix" true (delivers > 800 && delivers < 1200);
  List.iter
    (function
      | Mailboat.Workload.Smtp_deliver { user; _ } | Mailboat.Workload.Pop3_session { user } ->
        Alcotest.(check bool) "user in range" true (user >= 0 && user < 100))
    reqs

let test_workload_execution () =
  let s = new_server ~users:10 () in
  let reqs = Mailboat.Workload.generate ~seed:3 ~users:10 ~n:300 in
  List.iter (Mailboat.Workload.perform s) reqs;
  (* deliveries minus picked-up-and-deleted remain *)
  let remaining =
    List.init 10 (fun u -> List.length (S.peek_mailbox s ~user:u)) |> List.fold_left ( + ) 0
  in
  Alcotest.(check bool) "bounded residue" true (remaining >= 0 && remaining <= 300)

let test_closed_loop_workers () =
  let s = new_server ~users:10 () in
  let reqs = Array.of_list (Mailboat.Workload.generate ~seed:4 ~users:10 ~n:200) in
  let next = Atomic.make 0 in
  let d1 = Domain.spawn (Mailboat.Workload.closed_loop s ~requests:reqs ~next) in
  let d2 = Domain.spawn (Mailboat.Workload.closed_loop s ~requests:reqs ~next) in
  let c1 = Domain.join d1 and c2 = Domain.join d2 in
  Alcotest.(check int) "all requests served exactly once" 200 (c1 + c2)

let suite =
  [
    Alcotest.test_case "deliver/pickup roundtrip" `Quick test_deliver_pickup_roundtrip;
    Alcotest.test_case "delete under lock" `Quick test_delete_under_lock;
    Alcotest.test_case "large message (chunked io)" `Quick test_large_message_chunks;
    Alcotest.test_case "recover cleans spool only" `Quick test_recover_cleans_spool_only;
    Alcotest.test_case "file-lock servers functional" `Quick test_file_lock_servers_functional;
    Alcotest.test_case "fs-call accounting (Fig. 11 mechanism)" `Quick test_fs_call_accounting;
    Alcotest.test_case "concurrent domains" `Quick test_concurrent_domains;
    Alcotest.test_case "smtp: happy path" `Quick test_smtp_happy_path;
    Alcotest.test_case "smtp: bad sequence" `Quick test_smtp_bad_sequence;
    Alcotest.test_case "smtp: unknown user" `Quick test_smtp_unknown_user;
    Alcotest.test_case "smtp: multiple recipients" `Quick test_smtp_multiple_rcpt;
    Alcotest.test_case "smtp: dot stuffing" `Quick test_smtp_dot_stuffing;
    Alcotest.test_case "pop3: full session" `Quick test_pop3_session;
    Alcotest.test_case "pop3: RSET" `Quick test_pop3_rset;
    Alcotest.test_case "pop3: bad auth" `Quick test_pop3_bad_auth;
    Alcotest.test_case "pop3: session holds the user lock" `Quick test_pop3_lock_session_excludes_delete;
    Alcotest.test_case "kvs repl: malformed input" `Quick test_kvs_repl_malformed;
    Alcotest.test_case "kvs repl: oversized input" `Quick test_kvs_repl_oversized;
    Alcotest.test_case "kvs repl: command timeout (--timeout-ms)" `Quick test_kvs_repl_timeout;
    Alcotest.test_case "smtp: oversized message (552)" `Quick test_smtp_oversized_message;
    Alcotest.test_case "smtp: long command line (500)" `Quick test_smtp_long_command_line;
    Alcotest.test_case "pop3: long command line" `Quick test_pop3_long_command_line;
    Alcotest.test_case "workload: reproducible" `Quick test_workload_reproducible;
    Alcotest.test_case "workload: 50/50 mix" `Quick test_workload_mix;
    Alcotest.test_case "workload: execution" `Quick test_workload_execution;
    Alcotest.test_case "workload: closed-loop workers" `Quick test_closed_loop_workers;
  ]
