(* The circular WAL under the journal (lib/wal):
   - positive refinement of Circ (atomic append/trim ring) and Wal
     (atomic multiwrite with logger/installer threads, absorption, flush)
     against their specs — interleavings x crash points (incl. crash
     during recovery) x fault schedules, under all three strategies and
     domain counts 1/2/4;
   - the differential backend harness: Txn_log's [`Wal] backend must
     agree verdict-for-verdict with the [`Direct] backend on the existing
     journal/kvs/fs checks, and state-for-state on sequential runs;
   - qcheck properties for ring arithmetic (wraparound, free-space
     accounting) and log absorption (last-writer-wins per address, order
     of last occurrence preserved);
   - the three seeded WAL bugs, each caught with a golden
     [pp_failure_lanes] counterexample byte-identical across all three
     strategies and domain counts 1/2/4;
   - the Fingerprint regression: continuation digests (Marshal on
     closures) are stable across two identical [check ~fingerprint] runs
     in the same process. *)

module V = Tslang.Value
module R = Perennial_core.Refinement
module E = Perennial_core.Explore
module Runner = Sched.Runner
module Block = Disk.Block
module C = Perennial_wal.Circ
module W = Perennial_wal.Wal
module J = Journal.Txn_log
module K = Journal.Kvs
module L = Perennial_fs.Layout
module Fs = Perennial_fs.Fs

let b = Block.of_string
let bv s = Block.to_value (b s)

let verdict = function
  | R.Refinement_holds _ -> "holds"
  | R.Refinement_violated _ -> "violated"
  | R.Budget_exhausted _ -> "budget"

let stats_of = function
  | R.Refinement_holds st | R.Refinement_violated (_, st) | R.Budget_exhausted st -> st

let expect_holds name = function
  | R.Refinement_holds stats -> stats
  | R.Refinement_violated (f, _) -> Alcotest.failf "%s: %a" name R.pp_failure f
  | R.Budget_exhausted stats ->
    Alcotest.failf "%s: budget exhausted (%a)" name R.pp_stats stats

let expect_violated name = function
  | R.Refinement_violated (f, _) -> f
  | R.Refinement_holds stats -> Alcotest.failf "%s: bug not caught (%a)" name R.pp_stats stats
  | R.Budget_exhausted stats ->
    Alcotest.failf "%s: budget exhausted (%a)" name R.pp_stats stats

(* Same differential harness as test_explore: same verdict as naive,
   never more executions. *)
let differential name (run : E.strategy -> R.result) =
  let naive = run E.Naive in
  List.iter
    (fun s ->
      let r = run s in
      Alcotest.(check string)
        (Printf.sprintf "%s: %s verdict" name (E.strategy_name s))
        (verdict naive) (verdict r);
      if (stats_of r).R.executions > (stats_of naive).R.executions then
        Alcotest.failf "%s: %s explored %d executions > naive's %d" name
          (E.strategy_name s) (stats_of r).R.executions (stats_of naive).R.executions)
    E.all_strategies

(* ------------------------------------------------------------------ *)
(* Circ: the ring on its own                                            *)
(* ------------------------------------------------------------------ *)

let cly = C.layout ~base:0 ~cap:2

let test_circ_positive () =
  differential "circ: append || snapshot + crash" (fun strategy ->
      R.check ~strategy
        (C.checker_config cly ~max_crashes:1
           [ [ C.append_call cly [ (1, b "x") ] ]; [ C.snapshot_call cly ] ]));
  differential "circ: append; trim; append wraps + crash" (fun strategy ->
      R.check ~strategy
        (C.checker_config cly ~max_crashes:1
           [ [ C.append_call cly [ (1, b "x"); (2, b "y") ];
               C.trim_call cly 2;
               C.append_call cly [ (3, b "z") ] ] ]))

let test_circ_bug_header_first () =
  ignore
    (expect_violated "circ: header before records"
       (R.check
          (C.checker_config cly ~max_crashes:1
             [ [ C.Buggy.append_call_header_first cly [ (1, b "x") ] ] ])))

(* ------------------------------------------------------------------ *)
(* Wal: positive checks                                                 *)
(* ------------------------------------------------------------------ *)

let wp = W.params ~n_data:2 ~cap:2 ()
let wp1 = W.params ~n_data:1 ~cap:2 ()

let test_wal_positive () =
  differential "wal: mwrite || logger + crash" (fun strategy ->
      R.check ~strategy
        (W.checker_config wp1 ~max_crashes:1
           [ [ W.mwrite_call wp1 [ (0, b "A") ] ]; [ W.logger_call wp1 ] ]));
  differential "wal: mwrite; flush || installer + crash" (fun strategy ->
      R.check ~strategy
        (W.checker_config wp1 ~max_crashes:1
           [ [ W.mwrite_call wp1 [ (0, b "A") ]; W.flush_call wp1 1 ];
             [ W.installer_call wp1 ] ]));
  differential "wal: mwrite || read + crash" (fun strategy ->
      R.check ~strategy
        (W.checker_config wp1 ~max_crashes:1
           [ [ W.mwrite_call wp1 [ (0, b "A") ] ]; [ W.read_call wp1 0 ] ]))

let test_wal_crash_during_recovery () =
  differential "wal: multiwrite flush + crash during recovery" (fun strategy ->
      R.check ~strategy
        (W.checker_config wp ~max_crashes:2
           [ [ W.mwrite_call wp [ (0, b "A"); (1, b "B") ]; W.flush_call wp 1 ] ]))

let test_wal_group_commit_absorption () =
  (* two mwrites to the same address collapse into one logged record;
     with absorption off the same workload must still refine *)
  List.iter
    (fun absorb ->
      let p = W.params ~absorb ~n_data:1 ~cap:2 () in
      differential
        (Printf.sprintf "wal: group commit (absorb=%b) + crash" absorb)
        (fun strategy ->
          R.check ~strategy
            (W.checker_config p ~max_crashes:1
               [ [ W.mwrite_call p [ (0, b "A") ];
                   W.mwrite_call p [ (0, b "B") ];
                   W.flush_call p 2 ] ])))
    [ true; false ]

let test_wal_faults () =
  (* transient write errors and torn record batches in the logger and
     installer paths are absorbed by unbounded retry *)
  differential "wal: mwrite; flush + fault budget 1 + crash" (fun strategy ->
      R.check ~strategy ~faults:1
        (W.checker_config wp1 ~max_crashes:1
           [ [ W.mwrite_call wp1 [ (0, b "A") ]; W.flush_call wp1 1 ] ]));
  ignore
    (expect_holds "wal: installer under faults"
       (R.check ~faults:1
          (W.checker_config wp1 ~max_crashes:0
             [ [ W.mwrite_call wp1 [ (0, b "A") ];
                 W.flush_call wp1 1;
                 W.installer_call wp1 ] ])))

(* Parallel exploration must not leak into the verdict or the stats:
   byte-identical at every domain count. *)
let test_wal_domains () =
  let run domains =
    let r =
      R.check ~strategy:E.Dpor_sleep ~domains
        (W.checker_config wp1 ~max_crashes:1
           [ [ W.mwrite_call wp1 [ (0, b "A") ]; W.flush_call wp1 1 ];
             [ W.logger_call wp1 ] ])
    in
    Fmt.str "%s %a" (verdict r) R.pp_stats (stats_of r)
  in
  let ref_out = run 1 in
  List.iter
    (fun n ->
      Alcotest.(check string) (Printf.sprintf "wal output at domains=%d" n) ref_out (run n))
    [ 2; 4 ]

(* ------------------------------------------------------------------ *)
(* Seeded bugs: golden counterexamples                                  *)
(* ------------------------------------------------------------------ *)

let golden_file name =
  let candidates =
    [ Filename.concat "golden" (name ^ ".lanes.txt");
      Filename.concat "test/golden" (name ^ ".lanes.txt") ]
  in
  match List.find_opt Sys.file_exists candidates with
  | Some f -> Some f
  | None -> None

let read_golden name =
  match golden_file name with
  | Some file ->
    let ic = open_in_bin file in
    let s = really_input_string ic (in_channel_length ic) in
    close_in ic;
    s
  | None -> Alcotest.failf "golden file %s.lanes.txt not found" name

let write_golden name s =
  let dir = if Sys.file_exists "golden" then "golden" else "test/golden" in
  let oc = open_out_bin (Filename.concat dir (name ^ ".lanes.txt")) in
  output_string oc s;
  close_out oc

(* The rendered counterexample must be byte-identical under every
   strategy AND every domain count (1/2/4).  GOLDEN_UPDATE=1 regenerates
   from the naive single-domain run. *)
let golden_matrix name (run : E.strategy -> domains:int -> R.result) =
  let render r =
    match r with
    | R.Refinement_violated (f, _) -> Fmt.str "%a" R.pp_failure_lanes f
    | r -> Alcotest.failf "%s: expected violation, got %s" name (verdict r)
  in
  if Sys.getenv_opt "GOLDEN_UPDATE" <> None then
    write_golden name (render (run E.Naive ~domains:1));
  let want = read_golden name in
  List.iter
    (fun s ->
      List.iter
        (fun domains ->
          Alcotest.(check string)
            (Printf.sprintf "%s lanes under %s domains=%d" name (E.strategy_name s) domains)
            want
            (render (run s ~domains)))
        [ 1; 2; 4 ])
    E.all_strategies

let test_golden_logger_header_first () =
  golden_matrix "wal_logger_header_first" (fun strategy ~domains ->
      R.check ~strategy ~domains
        (W.checker_config wp1 ~max_crashes:1
           [ [ W.mwrite_call wp1 [ (0, b "A") ];
               W.flush_call wp1 1;
               W.installer_call wp1;
               W.mwrite_call wp1 [ (0, b "B") ];
               W.Buggy.logger_call_header_first wp1 ] ]))

let test_golden_installer_trim_first () =
  golden_matrix "wal_installer_trim_first" (fun strategy ~domains ->
      R.check ~strategy ~domains
        (W.checker_config wp1 ~max_crashes:1
           [ [ W.mwrite_call wp1 [ (0, b "A") ];
               W.flush_call wp1 1;
               W.Buggy.installer_call_trim_first wp1 ] ]))

let test_golden_flush_absorb_logged () =
  golden_matrix "wal_flush_absorb_logged" (fun strategy ~domains ->
      R.check ~strategy ~domains
        (W.checker_config wp1 ~max_crashes:1
           [ [ W.mwrite_call wp1 [ (0, b "A") ];
               W.logger_call wp1;
               W.mwrite_call wp1 [ (0, b "B") ];
               W.Buggy.flush_call_absorb_logged wp1 2 ] ]))

(* ------------------------------------------------------------------ *)
(* Differential backend harness: Txn_log `Direct vs `Wal                *)
(* ------------------------------------------------------------------ *)

(* Verdict-for-verdict: each workload, under each strategy, must reach
   the same verdict through both backends. *)
let backend_differential name (run : J.backend -> E.strategy -> R.result) =
  List.iter
    (fun strategy ->
      let direct = run `Direct strategy in
      let wal = run `Wal strategy in
      Alcotest.(check string)
        (Printf.sprintf "%s: backends agree under %s" name (E.strategy_name strategy))
        (verdict direct) (verdict wal))
    E.all_strategies

let jly = J.layout ~n_data:2 ~max_slots:2

let test_backend_journal () =
  backend_differential "journal: commit || read + crash" (fun backend strategy ->
      R.check ~strategy
        (J.checker_config ~backend jly ~max_crashes:1
           [ [ J.commit_call ~backend jly [ (0, b "A"); (1, b "B") ] ];
             [ J.read_call jly 0 ] ]));
  backend_differential "journal: commit + crash during recovery" (fun backend strategy ->
      R.check ~strategy
        (J.checker_config ~backend jly ~max_crashes:2
           [ [ J.commit_call ~backend jly [ (0, b "A"); (1, b "B") ] ] ]));
  backend_differential "journal: commit_ft + fault + crash" (fun backend strategy ->
      R.check ~strategy ~faults:1
        (J.checker_config ~backend jly ~max_crashes:1
           [ [ J.commit_ft_call ~backend jly [ (0, b "A"); (1, b "B") ] ] ]))

let test_backend_kvs () =
  let mk backend = K.params ~backend ~n_keys:2 () in
  backend_differential "kvs: put || get + crash" (fun backend strategy ->
      let p = mk backend in
      R.check ~strategy
        (K.checker_config p ~max_crashes:1
           [ [ K.put_call p 0 (bv "A") ]; [ K.get_call p 1 ] ]));
  backend_differential "kvs: txn + crash during recovery" (fun backend strategy ->
      let p = mk backend in
      R.check ~strategy
        (K.checker_config p ~max_crashes:2 [ [ K.txn_call p [ (0, b "A"); (1, b "B") ] ] ]));
  backend_differential "kvs: async put; flush || get + crash" (fun backend strategy ->
      let p = mk backend in
      R.check ~strategy
        (K.checker_config p ~max_crashes:1
           [ [ K.put_async_call p 0 (bv "A"); K.flush_call p ]; [ K.get_call p 0 ] ]))

let test_backend_fs () =
  let mk backend = Fs.params ~backend (L.v ~n_inodes:3 ~n_blocks:6 ()) in
  backend_differential "fs: create || append + crash" (fun backend strategy ->
      let p = mk backend in
      R.check ~strategy
        (Fs.checker_config p ~dirs:[ "a" ]
           ~files:[ ("a", "f", "x") ]
           ~max_crashes:1
           [ [ Fs.create_call p "a" "g" ]; [ Fs.append_call p "a" "f" "z" ] ]))

(* State-for-state: a sequential run of the same ops through both
   backends must leave observably identical systems. *)
let test_backend_state_journal () =
  let ops backend =
    [ J.commit_txn_prog ~backend jly [ (0, b "A"); (1, b "B") ];
      J.commit_txn_prog ~backend jly [ (1, b "C") ] ]
  in
  let final backend =
    let w =
      List.fold_left
        (fun w prog -> fst (Runner.run1 w prog))
        (J.init_world jly) (ops backend)
    in
    List.init jly.J.n_data (fun a -> snd (Runner.run1 w (J.read_prog jly a)))
  in
  Alcotest.(check (list string))
    "journal backends agree state-for-state"
    (List.map V.to_string (final `Direct))
    (List.map V.to_string (final `Wal))

let test_backend_state_kvs () =
  let final backend =
    let p = K.params ~backend ~n_keys:2 () in
    let ops =
      [ K.put_prog p 0 (bv "A");
        K.put_async_prog p 1 (bv "B");
        K.flush_prog p;
        K.txn_prog p [ (0, b "C"); (1, b "D") ] ]
    in
    let w = List.fold_left (fun w prog -> fst (Runner.run1 w prog)) (K.init_world p) ops in
    List.init 2 (fun k -> snd (Runner.run1 w (K.get_sync_prog p k)))
  in
  Alcotest.(check (list string))
    "kvs backends agree state-for-state"
    (List.map V.to_string (final `Direct))
    (List.map V.to_string (final `Wal))

let test_backend_state_fs () =
  let final backend =
    let p = Fs.params ~backend (L.v ~n_inodes:4 ~n_blocks:8 ()) in
    let w0 = Fs.init_world p ~dirs:[ "a" ] ~files:[ ("a", "f", "x") ] in
    let ops = [ Fs.create_prog p "a" "g"; Fs.append_prog p "a" "f" "yz" ] in
    let w = List.fold_left (fun w prog -> fst (Runner.run1 w prog)) w0 ops in
    [ snd (Runner.run1 w (Fs.read_prog p "a" "f"));
      snd (Runner.run1 w (Fs.readdir_prog p "a")) ]
  in
  Alcotest.(check (list string))
    "fs backends agree state-for-state"
    (List.map V.to_string (final `Direct))
    (List.map V.to_string (final `Wal))

(* ------------------------------------------------------------------ *)
(* qcheck: ring arithmetic                                              *)
(* ------------------------------------------------------------------ *)

let prop_slot_wraparound =
  QCheck.Test.make ~count:300 ~name:"circ slots wrap at cap"
    (QCheck.make QCheck.Gen.(pair (int_range 1 8) (int_bound 100)))
    (fun (cap, pos) ->
      let ly = C.layout ~base:0 ~cap in
      C.slot_addr ly (pos + cap) = C.slot_addr ly pos
      && C.slot_val ly (pos + cap) = C.slot_val ly pos
      && C.slot_addr ly pos >= 1
      && C.slot_val ly pos < C.region_size ly)

let prop_slot_window_distinct =
  QCheck.Test.make ~count:300 ~name:"circ live window occupies distinct slots"
    (QCheck.make QCheck.Gen.(triple (int_range 1 8) (int_bound 50) (int_bound 8)))
    (fun (cap, start, len) ->
      let len = min len cap in
      let ly = C.layout ~base:0 ~cap in
      let addrs = List.init len (fun i -> C.slot_addr ly (start + i)) in
      List.length (List.sort_uniq compare addrs) = len)

(* Free-space accounting, via the spec itself: drive the abstract ring
   with random append/trim ops and check the window never exceeds the
   capacity and always matches the record count. *)
let prop_ring_accounting =
  let gen =
    QCheck.Gen.(
      pair (int_range 1 6)
        (list_size (int_bound 12) (pair bool (int_range 0 6))))
  in
  QCheck.Test.make ~count:300 ~name:"circ spec: free-space accounting invariant"
    (QCheck.make gen)
    (fun (cap, ops) ->
      let ly = C.layout ~base:0 ~cap in
      let spec = C.spec ly in
      let step st (is_append, n) =
        let call =
          if is_append then
            Tslang.Spec.call "c_append"
              [ C.value_of_records (List.init n (fun i -> (i, b "r"))) ]
          else Tslang.Spec.call "c_trim" [ V.int (st.C.s_start + n) ]
        in
        if Tslang.Spec.op_has_undefined spec st call then st
        else
          match Tslang.Spec.op_outcomes spec st call with
          | [ (st', _) ] -> st'
          | _ -> st
      in
      let ok st =
        let live = st.C.s_end - st.C.s_start in
        live >= 0 && live <= cap
        && List.length st.C.s_recs = live
        && C.free_space ly ~start:st.C.s_start ~end_:st.C.s_end = cap - live
      in
      let final =
        List.fold_left
          (fun st op ->
            let st' = step st op in
            if not (ok st') then QCheck.Test.fail_reportf "invariant broken";
            st')
          spec.Tslang.Spec.init ops
      in
      ok final)

(* ------------------------------------------------------------------ *)
(* qcheck: log absorption                                               *)
(* ------------------------------------------------------------------ *)

let records_gen =
  QCheck.Gen.(
    list_size (int_bound 15)
      (pair (int_bound 4) (map Block.of_string (string_size ~gen:(char_range 'a' 'd') (return 1)))))

(* Reference implementation: keep the last binding per address, ordered
   by last occurrence. *)
let absorb_reference records =
  let tbl = Hashtbl.create 7 in
  List.iteri (fun i (a, v) -> Hashtbl.replace tbl a (i, v)) records;
  Hashtbl.fold (fun a (i, v) acc -> (i, (a, v)) :: acc) tbl []
  |> List.sort compare |> List.map snd

let prop_absorb_last_writer_wins =
  QCheck.Test.make ~count:500 ~name:"absorption: last writer wins, order of last occurrence"
    (QCheck.make records_gen)
    (fun records -> W.absorb records = absorb_reference records)

let prop_absorb_distinct_addrs =
  QCheck.Test.make ~count:500 ~name:"absorption: one record per address"
    (QCheck.make records_gen)
    (fun records ->
      let addrs = List.map fst (W.absorb records) in
      List.length (List.sort_uniq compare addrs) = List.length addrs)

let prop_absorb_off_is_concat =
  QCheck.Test.make ~count:500 ~name:"absorption off: batch is plain concat"
    (QCheck.make (QCheck.Gen.list_size (QCheck.Gen.int_bound 4) records_gen))
    (fun txns ->
      let p = W.params ~absorb:false ~n_data:8 ~cap:64 () in
      W.batch_records p txns = List.concat txns)

(* ------------------------------------------------------------------ *)
(* Fingerprint digest stability (regression)                            *)
(* ------------------------------------------------------------------ *)

(* Continuation classes are MD5 digests of Marshal-ed closures.  Within
   one process two structurally identical checks must produce identical
   digests — pinned here by comparing the full stats (hits/misses would
   drift if any rebuilt continuation digested differently).  The
   constraint that digests must NOT be persisted across processes is
   documented in fingerprint.mli. *)
let test_fingerprint_digest_stability () =
  let mk () =
    W.checker_config wp1 ~max_crashes:1
      [ [ W.mwrite_call wp1 [ (0, b "A") ]; W.flush_call wp1 1 ]; [ W.logger_call wp1 ] ]
  in
  let render () =
    let r = R.check ~strategy:E.Naive ~fingerprint:true (mk ()) in
    Fmt.str "%s %a" (verdict r) R.pp_stats (stats_of r)
  in
  let first = render () in
  let second = render () in
  Alcotest.(check string) "fingerprint stats stable across identical runs" first second;
  let st = stats_of (R.check ~strategy:E.Naive ~fingerprint:true (mk ())) in
  if st.R.fingerprint_misses = 0 then
    Alcotest.fail "fingerprint run digested nothing (misses = 0)"

(* ------------------------------------------------------------------ *)

let suite =
  [ Alcotest.test_case "circ positive (all strategies)" `Quick test_circ_positive;
    Alcotest.test_case "circ bug: header before records" `Quick test_circ_bug_header_first;
    Alcotest.test_case "wal positive (all strategies)" `Quick test_wal_positive;
    Alcotest.test_case "wal crash during recovery" `Quick test_wal_crash_during_recovery;
    Alcotest.test_case "wal group commit + absorption knob" `Quick
      test_wal_group_commit_absorption;
    Alcotest.test_case "wal under fault injection" `Quick test_wal_faults;
    Alcotest.test_case "wal domain-count invariance" `Quick test_wal_domains;
    Alcotest.test_case "golden: logger header-first" `Quick test_golden_logger_header_first;
    Alcotest.test_case "golden: installer trim-first" `Quick test_golden_installer_trim_first;
    Alcotest.test_case "golden: flush absorbs across barrier" `Quick
      test_golden_flush_absorb_logged;
    Alcotest.test_case "backend differential: journal" `Quick test_backend_journal;
    Alcotest.test_case "backend differential: kvs" `Quick test_backend_kvs;
    Alcotest.test_case "backend differential: fs" `Quick test_backend_fs;
    Alcotest.test_case "backend state: journal" `Quick test_backend_state_journal;
    Alcotest.test_case "backend state: kvs" `Quick test_backend_state_kvs;
    Alcotest.test_case "backend state: fs" `Quick test_backend_state_fs;
    QCheck_alcotest.to_alcotest prop_slot_wraparound;
    QCheck_alcotest.to_alcotest prop_slot_window_distinct;
    QCheck_alcotest.to_alcotest prop_ring_accounting;
    QCheck_alcotest.to_alcotest prop_absorb_last_writer_wins;
    QCheck_alcotest.to_alcotest prop_absorb_distinct_addrs;
    QCheck_alcotest.to_alcotest prop_absorb_off_is_concat;
    Alcotest.test_case "fingerprint digest stability" `Quick
      test_fingerprint_digest_stability ]
