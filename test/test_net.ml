(* The network adversary and the exactly-once RPC stack end to end:
   - the [Net] channel-state model (canonical queues, crash clearing);
   - the [Net.kind] embedding into [Fault.kind] and the runner's
     injection oracle replaying network schedules;
   - [Net.enumerate]: determinism, duplicate-freedom, budget monotonicity
     and dimension independence (qcheck);
   - exhaustive network x crash refinement for the exactly-once contract:
     retries, reply-cache hits, contention, cross-shard routing, the
     epoch-fenced lease RMW, and the journal-hosted shards;
   - verdict/stats/lane agreement across all three strategies and
     domain counts 1/2/4;
   - the three seeded network bugs, each caught with committed golden
     lanes.

   Instance sizes are tuned: configs with three or more threads use
   [retries:0] clients (a timeout degrades to the spec's err arm instead
   of branching into a retry storm), which keeps every check exhaustive
   in seconds while the 1-client flagship keeps [retries:1] and exercises
   the full retry/timeout/backoff surface. *)

module V = Tslang.Value
module R = Perennial_core.Refinement
module E = Perennial_core.Explore
module F = Sched.Fault
module P = Sched.Prog
module Net = Sched.Net
module C = Obs.Coverage
module SK = Dist.Shard_kv

let expect_holds name = function
  | R.Refinement_holds stats -> stats
  | R.Refinement_violated (f, _) -> Alcotest.failf "%s: %a" name R.pp_failure f
  | R.Budget_exhausted stats ->
    Alcotest.failf "%s: budget exhausted (%a)" name R.pp_stats stats

let expect_violated name = function
  | R.Refinement_violated (f, _) -> f
  | R.Refinement_holds stats -> Alcotest.failf "%s: bug not caught (%a)" name R.pp_stats stats
  | R.Budget_exhausted stats ->
    Alcotest.failf "%s: budget exhausted (%a)" name R.pp_stats stats

(* ------------------------------------------------------------------ *)
(* Channel state model                                                  *)
(* ------------------------------------------------------------------ *)

let test_state_model () =
  Alcotest.(check bool) "empty is empty" true (Net.is_empty Net.empty);
  let s = Net.send "a" (V.int 1) Net.empty in
  let s = Net.send "a" (V.int 2) s in
  let s = Net.send "b" (V.int 3) s in
  Alcotest.(check int) "two queued on a" 2 (Net.length "a" s);
  Alcotest.(check int) "one queued on b" 1 (Net.length "b" s);
  Alcotest.(check bool) "peek is FIFO head" true (Net.peek "a" s = Some (V.int 1));
  Alcotest.(check (list string)) "channels sorted" [ "a"; "b" ] (Net.channels s);
  (match Net.recv "a" s with
  | Some (m, s') ->
    Alcotest.(check bool) "recv head" true (m = V.int 1);
    Alcotest.(check int) "tail remains" 1 (Net.length "a" s')
  | None -> Alcotest.fail "recv on non-empty channel");
  (match Net.recv_at "a" 1 s with
  | Some (m, s') ->
    Alcotest.(check bool) "recv_at skips head" true (m = V.int 2);
    Alcotest.(check bool) "head still queued" true (Net.peek "a" s' = Some (V.int 1))
  | None -> Alcotest.fail "recv_at 1 on a 2-deep channel");
  Alcotest.(check bool) "recv on absent channel" true (Net.recv "zzz" s = None);
  (* canonical form: a drained channel disappears, so structural equality
     is semantic equality *)
  let s1 = Net.send "c" (V.int 9) Net.empty in
  (match Net.recv "c" s1 with
  | Some (_, s2) -> Alcotest.(check bool) "drained = empty" true (Net.equal s2 Net.empty)
  | None -> Alcotest.fail "recv c");
  (* crash: every in-flight message is lost *)
  Alcotest.(check bool) "clear = empty" true (Net.equal (Net.clear s) Net.empty)

let test_kind_embedding () =
  List.iter
    (fun k ->
      Alcotest.(check bool)
        ("roundtrip " ^ Net.kind_name k)
        true
        (Net.of_fault (Net.to_fault k) = Some k))
    [ Net.Drop; Net.Dup; Net.Reorder 1; Net.Reorder 3; Net.Delay ];
  Alcotest.(check bool) "storage faults are not network kinds" true
    (Net.of_fault F.Read_error = None);
  Alcotest.(check bool) "schedule embedding preserves sites" true
    (Net.to_fault_schedule [ { Net.at = 2; kind = Net.Dup }; { Net.at = 0; kind = Net.Drop } ]
    = [ { F.at = 2; kind = F.Msg_dup }; { F.at = 0; kind = F.Msg_drop } ])

(* ------------------------------------------------------------------ *)
(* Schedule enumeration                                                 *)
(* ------------------------------------------------------------------ *)

let test_enumerate_budget () =
  (* budget 0: only the empty schedule *)
  Alcotest.(check int) "budget 0" 1
    (List.length (Net.enumerate ~budget:0 [ (0, [ Net.Drop ]); (1, [ Net.Dup ]) ]));
  (* one site, one kind: empty + the injection *)
  Alcotest.(check int) "one site" 2 (List.length (Net.enumerate ~budget:1 [ (0, [ Net.Drop ]) ]));
  (* two sites x two kinds, budget 1: empty + 4 singletons *)
  let sites = [ (0, [ Net.Drop; Net.Dup ]); (1, [ Net.Drop; Net.Dup ]) ] in
  Alcotest.(check int) "budget 1" 5 (List.length (Net.enumerate ~budget:1 sites));
  (* budget 2 adds the 4 cross-site pairs *)
  Alcotest.(check int) "budget 2" 9 (List.length (Net.enumerate ~budget:2 sites));
  Alcotest.(check bool) "empty first" true (List.hd (Net.enumerate ~budget:2 sites) = [])

let net_site_gen =
  QCheck.Gen.(
    list_size (int_bound 4)
      (pair (int_bound 5)
         (list_size (int_bound 3) (oneofl [ Net.Drop; Net.Dup; Net.Reorder 1; Net.Delay ]))))

let prop_enumerate_deterministic =
  QCheck.Test.make ~count:200 ~name:"net enumeration deterministic"
    (QCheck.make net_site_gen) (fun sites ->
      let a = Net.enumerate ~budget:2 sites in
      let b = Net.enumerate ~budget:2 sites in
      List.equal (fun x y -> Net.compare_schedule x y = 0) a b)

let prop_enumerate_duplicate_free =
  QCheck.Test.make ~count:200 ~name:"net enumeration duplicate-free"
    (QCheck.make net_site_gen) (fun sites ->
      let a = Net.enumerate ~budget:2 sites in
      List.length (List.sort_uniq Net.compare_schedule a) = List.length a)

let prop_enumerate_budget_monotone =
  QCheck.Test.make ~count:200 ~name:"net enumeration budget-monotone"
    (QCheck.make net_site_gen) (fun sites ->
      let small = Net.enumerate ~budget:1 sites in
      let large = Net.enumerate ~budget:2 sites in
      List.for_all
        (fun s -> List.exists (fun t -> Net.compare_schedule s t = 0) large)
        small)

(* Each adversary dimension contributes independently: the singleton
   schedules at budget 1 are exactly the distinct (site, kind) pairs of
   the canonicalized input (sites de-duplicated by index, kinds per
   site), no kind masking or merging with another. *)
let prop_enumerate_dimensions_independent =
  QCheck.Test.make ~count:200 ~name:"net enumeration dimensions independent"
    (QCheck.make net_site_gen) (fun sites ->
      let singletons =
        List.filter (fun s -> List.length s = 1) (Net.enumerate ~budget:1 sites)
      in
      let canonical =
        List.sort_uniq
          (fun (a, _) (b, _) -> Int.compare a b)
          (List.map (fun (at, ks) -> (at, List.sort_uniq Net.compare_kind ks)) sites)
      in
      let pairs =
        List.concat_map (fun (at, kinds) -> List.map (fun k -> (at, k)) kinds) canonical
      in
      List.length singletons = List.length pairs
      && List.for_all
           (fun (at, kind) ->
             List.exists (fun s -> s = [ { Net.at; kind } ]) singletons)
           pairs)

(* ------------------------------------------------------------------ *)
(* The runner's injection oracle replays network schedules              *)
(* ------------------------------------------------------------------ *)

(* The channel state itself is the whole world: the lens is the identity. *)
let nget (s : Net.state) = s
let nset (_ : Net.state) s = s

let send_then_try ch =
  let open P.Syntax in
  let* () = Net.send_step ~get:nget ~set:nset ch (V.int 1) in
  let* r = Net.try_recv_step ~get:nget ~set:nset ch in
  P.return (match r with Some m -> m | None -> V.str "timeout")

let test_runner_oracle () =
  (* clean run: the message arrives *)
  let o = Sched.Runner.run Net.empty [ send_then_try "ch" ] in
  Alcotest.(check bool) "clean delivery" true (o.Sched.Runner.results.(0) = V.int 1);
  Alcotest.(check bool) "no events fired" true (o.Sched.Runner.injected = []);
  (* Drop at the send: the receive times out, nothing in flight *)
  let o =
    Sched.Runner.run ~fault_schedule:(Net.to_fault_schedule [ { Net.at = 0; kind = Net.Drop } ])
      Net.empty
      [ send_then_try "ch" ]
  in
  Alcotest.(check bool) "dropped: timeout" true (o.Sched.Runner.results.(0) = V.str "timeout");
  Alcotest.(check bool) "dropped: channel empty" true (Net.is_empty o.Sched.Runner.world);
  Alcotest.(check bool) "drop fired" true (o.Sched.Runner.injected = [ (0, F.Msg_drop) ]);
  (* Dup at the send: the receive consumes one copy, one stays in flight *)
  let o =
    Sched.Runner.run ~fault_schedule:(Net.to_fault_schedule [ { Net.at = 0; kind = Net.Dup } ])
      Net.empty
      [ send_then_try "ch" ]
  in
  Alcotest.(check bool) "dup: delivered" true (o.Sched.Runner.results.(0) = V.int 1);
  Alcotest.(check int) "dup: one copy left" 1 (Net.length "ch" o.Sched.Runner.world);
  (* Delay at the receive: timeout fires even though the message IS queued *)
  let o =
    Sched.Runner.run ~fault_schedule:(Net.to_fault_schedule [ { Net.at = 1; kind = Net.Delay } ])
      Net.empty
      [ send_then_try "ch" ]
  in
  Alcotest.(check bool) "delay: timeout" true (o.Sched.Runner.results.(0) = V.str "timeout");
  Alcotest.(check int) "delay: message still queued" 1 (Net.length "ch" o.Sched.Runner.world);
  (* Reorder at a 2-deep receive: the second message overtakes the head *)
  let two_then_recv =
    let open P.Syntax in
    let* () = Net.send_step ~get:nget ~set:nset "ch" (V.int 1) in
    let* () = Net.send_step ~get:nget ~set:nset "ch" (V.int 2) in
    Net.recv_step ~get:nget ~set:nset "ch"
  in
  let o = Sched.Runner.run Net.empty [ two_then_recv ] in
  Alcotest.(check bool) "in order by default" true (o.Sched.Runner.results.(0) = V.int 1);
  let o =
    Sched.Runner.run
      ~fault_schedule:(Net.to_fault_schedule [ { Net.at = 2; kind = Net.Reorder 1 } ])
      Net.empty [ two_then_recv ]
  in
  Alcotest.(check bool) "reordered delivery" true (o.Sched.Runner.results.(0) = V.int 2);
  Alcotest.(check bool) "reorder fired" true
    (o.Sched.Runner.injected = [ (2, F.Msg_reorder 1) ])

(* A dropped request against the full client/server stack: the retry makes
   the call succeed, deterministically replayable. *)
let test_drop_retry_oracle () =
  let p = SK.params ~n_keys:1 ~n_clients:1 () in
  let client =
    let open P.Syntax in
    let* _ = snd (SK.nput_call p ~client:0 ~seq:0 0 (V.str "A")) in
    snd SK.bye_call
  in
  let o =
    Sched.Runner.run ~fault_schedule:(Net.to_fault_schedule [ { Net.at = 0; kind = Net.Drop } ])
      (SK.init_world p)
      [ client; snd (SK.srv_call p 0) ]
  in
  Alcotest.(check bool) "request drop fired" true
    (List.mem (0, F.Msg_drop) o.Sched.Runner.injected);
  Alcotest.(check bool) "client retried" true
    (List.exists (fun (_, l) -> l = "retry_rpc(put#1)") o.Sched.Runner.trace);
  Alcotest.(check bool) "the retried put landed" true
    (List.nth o.Sched.Runner.world.SK.vals 0 = V.str "A")

(* ------------------------------------------------------------------ *)
(* The exactly-once contract holds exhaustively                         *)
(* ------------------------------------------------------------------ *)

(* Flagship: one client, one server, non-idempotent inc, full
   retry/timeout/backoff surface, network budget 1 composed with one
   crash.  Duplicates (adversary Dup or the client's own premature-timeout
   retry) are answered from the reply cache without re-executing. *)
let inc1_config () =
  let p = SK.params ~n_keys:1 ~n_clients:1 () in
  SK.checker_config p ~max_crashes:1 ~fault_budget:1
    [ [ SK.ninc_call p ~client:0 ~seq:0 0; SK.bye_call ]; [ SK.srv_call p 0 ] ]

let test_exactly_once_holds () =
  let stats = expect_holds "exactly-once inc, net 1, 1 crash" (R.check (inc1_config ())) in
  Alcotest.(check bool) "network events injected" true (stats.R.faults_injected > 0);
  Alcotest.(check bool) "distinct network schedules" true (stats.R.fault_schedules > 1);
  Alcotest.(check bool) "retries observed" true (stats.R.retries_observed > 0);
  Alcotest.(check bool) "reply-cache hits observed" true (stats.R.cache_hits > 0)

(* Verdict agrees across all three strategies; stats are byte-identical
   across domain counts 1/2/4 at every fixed strategy. *)
let test_strategies_domains_agree () =
  List.iter
    (fun strategy ->
      ignore
        (expect_holds
           (Printf.sprintf "exactly-once inc under %s" (E.strategy_name strategy))
           (R.check ~strategy (inc1_config ())));
      let stats_str d =
        Fmt.str "%a" R.pp_stats
          (expect_holds
             (Printf.sprintf "exactly-once inc under %s, %d domains" (E.strategy_name strategy) d)
             (R.check ~strategy ~domains:d (inc1_config ())))
      in
      let s1 = stats_str 1 in
      List.iter
        (fun d ->
          Alcotest.(check string)
            (Printf.sprintf "stats identical under %s at %d domains" (E.strategy_name strategy) d)
            s1 (stats_str d))
        [ 2; 4 ])
    E.all_strategies

(* Two clients racing non-idempotent incs through one server: the reply
   cache is per client, so neither client's duplicate absorbs the other's
   execution. *)
let test_contention_holds () =
  let p = SK.params ~n_keys:1 ~n_clients:2 ~retries:0 () in
  let stats =
    expect_holds "2-client contention, net 1"
      (R.check ~strategy:E.Dpor_sleep
         (SK.checker_config p ~max_crashes:0 ~fault_budget:1
            [ [ SK.ninc_call p ~client:0 ~seq:0 0; SK.bye_call ];
              [ SK.ninc_call p ~client:1 ~seq:0 0; SK.bye_call ];
              [ SK.srv_call p 0 ] ]))
  in
  Alcotest.(check bool) "duplicates deduplicated" true (stats.R.cache_hits > 0)

(* Sequential puts to one key with a retrying first call: a correct
   client's retry carries its sequence number, so a late duplicate is
   classified Stale (or answered from the cache) and the newer write is
   never overwritten — the correct twin of seeded bug 2. *)
let test_retry_storm_holds () =
  let p1 = SK.params ~n_keys:1 ~n_clients:1 ~retries:1 () in
  let p0 = SK.params ~n_keys:1 ~n_clients:1 ~retries:0 () in
  let stats =
    expect_holds "put;put with retries, net 1"
      (R.check ~strategy:E.Dpor_sleep
         (SK.checker_config p1 ~max_crashes:0 ~fault_budget:1
            [ [ SK.nput_call p1 ~client:0 ~seq:0 0 (V.str "A");
                SK.nput_call p0 ~client:0 ~seq:1 0 (V.str "B");
                SK.bye_call ];
              [ SK.srv_call p1 0 ] ]))
  in
  Alcotest.(check bool) "retries observed" true (stats.R.retries_observed > 0);
  Alcotest.(check bool) "duplicates deduplicated" true (stats.R.cache_hits > 0)

(* Two shards, two server threads: requests route by key, replies come
   back tagged, and the idle shard still shuts down cleanly. *)
let test_cross_shard_holds () =
  let p = SK.params ~n_keys:2 ~n_shards:2 ~n_clients:1 ~retries:0 () in
  let stats =
    expect_holds "cross-shard put/get, net 1"
      (R.check ~strategy:E.Dpor_sleep
         (SK.checker_config p ~max_crashes:0 ~fault_budget:1
            [ [ SK.nput_call p ~client:0 ~seq:0 0 (V.str "A");
                SK.nget_call p ~client:0 ~seq:1 1;
                SK.bye_call ];
              [ SK.srv_call p 0 ]; [ SK.srv_call p 1 ] ]))
  in
  Alcotest.(check bool) "duplicates deduplicated" true (stats.R.cache_hits > 0)

(* Two holders racing a fenced read-modify-write with an expiry the
   scheduler can place anywhere, under crashes: the epoch fence taken at
   acquire keeps every zombie write out. *)
let test_lease_fencing_holds () =
  let p = SK.params ~n_keys:1 ~n_clients:2 () in
  let threads =
    [ [ SK.linc_call p ~client:0 0 ]; [ SK.linc_call p ~client:1 0 ]; [ SK.expire_call ] ]
  in
  List.iter
    (fun strategy ->
      let stats =
        expect_holds
          (Printf.sprintf "fenced lease RMW under %s" (E.strategy_name strategy))
          (R.check ~strategy (SK.checker_config p ~max_crashes:1 ~fault_budget:0 threads))
      in
      Alcotest.(check bool) "acquire retries observed" true (stats.R.retries_observed > 0))
    [ E.Naive; E.Dpor_sleep ]

(* The journal-hosted shards: data key and reply-cache slot commit in one
   transaction, so exactly-once survives crashes of the storage stack. *)
let test_hosted_holds () =
  let p1 = SK.params ~n_keys:1 ~n_shards:1 ~n_clients:1 ~retries:0 ~init_val:(V.str "0") () in
  let stats =
    expect_holds "hosted shard, net 1, 1 crash"
      (R.check ~strategy:E.Dpor_sleep
         (SK.Hosted.checker_config p1 ~max_crashes:1 ~fault_budget:1
            [ [ SK.Hosted.nput_call p1 ~client:0 ~seq:0 0 (V.str "A"); SK.Hosted.bye_call ];
              [ SK.Hosted.srv_call p1 0 ] ]))
  in
  Alcotest.(check bool) "hosted cache hits observed" true (stats.R.cache_hits > 0);
  let p2 = SK.params ~n_keys:2 ~n_shards:2 ~n_clients:1 ~retries:0 ~init_val:(V.str "0") () in
  ignore
    (expect_holds "hosted 2 shards, net 1, 1 crash"
       (R.check ~strategy:E.Dpor_sleep
          (SK.Hosted.checker_config p2 ~max_crashes:1 ~fault_budget:1
             [ [ SK.Hosted.nput_call p2 ~client:0 ~seq:0 0 (V.str "A"); SK.Hosted.bye_call ];
               [ SK.Hosted.srv_call p2 0 ]; [ SK.Hosted.srv_call p2 1 ] ])))

(* Every (channel, event-kind) pair the adversary can hit is a coverage
   site, and the flagship check exercises all four dimensions. *)
let with_coverage f =
  C.set_enabled true;
  C.reset ();
  Fun.protect
    ~finally:(fun () ->
      C.reset ();
      C.set_enabled false)
    f

let test_net_coverage_sites () =
  with_coverage (fun () ->
      ignore (expect_holds "exactly-once inc for coverage" (R.check (inc1_config ())));
      let sites = C.sites () in
      List.iter
        (fun site ->
          match List.find_opt (fun (k, id, _) -> k = C.Fault && id = site) sites with
          | Some (_, _, hits) ->
            Alcotest.(check bool) (site ^ " exercised") true (hits > 0)
          | None -> Alcotest.failf "site %s not registered" site)
        [ "net_send(s0):msg_drop";
          "net_send(s0):msg_dup";
          "net_try_recv(c0):msg_delay";
          "net_recv(s0):msg_reorder(1)" ])

(* ------------------------------------------------------------------ *)
(* Seeded network bugs                                                  *)
(* ------------------------------------------------------------------ *)

let assert_in_lanes name needle f =
  let lanes = Fmt.str "%a" R.pp_failure_lanes f in
  Alcotest.(check bool)
    (Printf.sprintf "%s: %s visible in lanes" name needle)
    true
    (Astring_contains.contains lanes needle)

(* Bug #1 — reply-cache miss on duplicate: the server executes every
   message it receives, so a [Dup]ed non-idempotent inc executes twice. *)
let bug1_config () =
  let p = SK.params ~n_keys:1 ~n_clients:1 ~retries:0 () in
  SK.checker_config p ~max_crashes:0 ~fault_budget:1
    [ [ SK.Buggy.srv_call_no_cache p 0 ];
      [ SK.ninc_call p ~client:0 ~seq:0 0; SK.bye_call ] ]

let test_bug_no_cache_caught () =
  let f = expect_violated "no-cache double execution" (R.check (bug1_config ())) in
  assert_in_lanes "no-cache double execution" "FAULT" f

(* Bug #2 — retry without a sequence number: the raw retry cannot be
   recognized as a duplicate, so its write (and its unmatchable reply)
   interferes with the client's later operations and the stale write
   wins. *)
let bug2_config () =
  let p1 = SK.params ~n_keys:1 ~n_clients:1 ~retries:1 () in
  let p0 = SK.params ~n_keys:1 ~n_clients:1 ~retries:0 () in
  SK.checker_config p1 ~max_crashes:0 ~fault_budget:1
    [ [ SK.srv_call p1 0 ];
      [ SK.Buggy.nput_call_raw_retry p1 ~client:0 ~seq:0 0 (V.str "A");
        SK.nput_call p0 ~client:0 ~seq:1 0 (V.str "B");
        SK.bye_call ] ]

let test_bug_raw_retry_caught () =
  let f = expect_violated "raw retry stale write" (R.check (bug2_config ())) in
  assert_in_lanes "raw retry stale write" "FAULT" f;
  assert_in_lanes "raw retry stale write" "retry_rpc" f

(* Bug #3 — missing epoch fence: an expired holder's write lands after a
   newer holder's, losing the newer update.  Needs no network events at
   all — pure interleaving with the expiry step. *)
let bug3_config () =
  let p = SK.params ~n_keys:1 ~n_clients:2 () in
  SK.checker_config p ~max_crashes:0 ~fault_budget:0
    [ [ SK.Buggy.linc_call_no_fence p ~client:0 0 ];
      [ SK.Buggy.linc_call_no_fence p ~client:1 0 ];
      [ SK.expire_call ] ]

let test_bug_no_fence_caught () =
  let f = expect_violated "zombie write without fence" (R.check (bug3_config ())) in
  assert_in_lanes "zombie write without fence" "lease_write" f;
  assert_in_lanes "zombie write without fence" "lease_expire" f

(* ------------------------------------------------------------------ *)
(* Golden counterexamples                                               *)
(* ------------------------------------------------------------------ *)

let read_golden name =
  let candidates =
    [ Filename.concat "golden" (name ^ ".lanes.txt");
      Filename.concat "test/golden" (name ^ ".lanes.txt") ]
  in
  let file =
    match List.find_opt Sys.file_exists candidates with
    | Some f -> f
    | None -> Alcotest.failf "golden file %s.lanes.txt not found" name
  in
  let ic = open_in_bin file in
  let s = really_input_string ic (in_channel_length ic) in
  close_in ic;
  s

(* Run [cfg] under [strategy], sequentially and at domain counts 1/2/4,
   and check every reported counterexample is byte-identical to the
   golden.  Also checks the violating run's stats are identical across
   domain counts (the work partition never depends on the domain count). *)
let check_golden name golden strategy cfg =
  let lanes_and_stats tag r =
    match r with
    | R.Refinement_violated (f, stats) ->
      (Fmt.str "%a" R.pp_failure_lanes f, Fmt.str "%a" R.pp_stats stats)
    | R.Refinement_holds stats -> Alcotest.failf "%s: bug not caught (%a)" tag R.pp_stats stats
    | R.Budget_exhausted stats ->
      Alcotest.failf "%s: budget exhausted (%a)" tag R.pp_stats stats
  in
  let tag d =
    Printf.sprintf "%s under %s%s" name (E.strategy_name strategy)
      (match d with None -> "" | Some d -> Printf.sprintf ", %d domains" d)
  in
  let lanes0, _ = lanes_and_stats (tag None) (R.check ~strategy (cfg ())) in
  Alcotest.(check string) (tag None ^ " lanes") golden lanes0;
  let stats_ref = ref None in
  List.iter
    (fun d ->
      let lanes, stats = lanes_and_stats (tag (Some d)) (R.check ~strategy ~domains:d (cfg ())) in
      Alcotest.(check string) (tag (Some d) ^ " lanes") golden lanes;
      match !stats_ref with
      | None -> stats_ref := Some stats
      | Some s0 -> Alcotest.(check string) (tag (Some d) ^ " stats") s0 stats)
    [ 1; 2; 4 ]

let test_golden_bug_no_cache () =
  let golden = read_golden "net_bug1_dup_no_cache" in
  List.iter (fun s -> check_golden "net bug1" golden s bug1_config) E.all_strategies

(* The naive strategy reports a different — equally valid — representative
   of bug 2's violation class: the server's [rpc_exec] commutes with the
   client's channel steps, and naive's DFS places it earlier.  Both
   goldens are committed; each strategy family is byte-stable across
   domain counts. *)
let test_golden_bug_raw_retry () =
  let naive_golden = read_golden "net_bug2_raw_retry.naive" in
  let dpor_golden = read_golden "net_bug2_raw_retry" in
  check_golden "net bug2" naive_golden E.Naive bug2_config;
  List.iter
    (fun s -> check_golden "net bug2" dpor_golden s bug2_config)
    [ E.Dpor; E.Dpor_sleep ]

let test_golden_bug_no_fence () =
  let golden = read_golden "net_bug3_no_fence" in
  List.iter (fun s -> check_golden "net bug3" golden s bug3_config) E.all_strategies

let suite =
  [
    Alcotest.test_case "net: channel state model" `Quick test_state_model;
    Alcotest.test_case "net: fault-kind embedding" `Quick test_kind_embedding;
    Alcotest.test_case "net: enumerate budget semantics" `Quick test_enumerate_budget;
    QCheck_alcotest.to_alcotest prop_enumerate_deterministic;
    QCheck_alcotest.to_alcotest prop_enumerate_duplicate_free;
    QCheck_alcotest.to_alcotest prop_enumerate_budget_monotone;
    QCheck_alcotest.to_alcotest prop_enumerate_dimensions_independent;
    Alcotest.test_case "net: runner injection oracle" `Quick test_runner_oracle;
    Alcotest.test_case "rpc: dropped request retried (oracle)" `Quick test_drop_retry_oracle;
    Alcotest.test_case "rpc: exactly-once inc holds (net 1, crash)" `Quick
      test_exactly_once_holds;
    Alcotest.test_case "rpc: strategies and domains agree" `Quick test_strategies_domains_agree;
    Alcotest.test_case "rpc: 2-client contention holds" `Quick test_contention_holds;
    Alcotest.test_case "rpc: retry storm put;put holds" `Quick test_retry_storm_holds;
    Alcotest.test_case "shard: cross-shard ops hold" `Quick test_cross_shard_holds;
    Alcotest.test_case "lease: fenced RMW holds (expiry, crash)" `Quick test_lease_fencing_holds;
    Alcotest.test_case "hosted: journal-backed shards hold" `Quick test_hosted_holds;
    Alcotest.test_case "net: coverage sites per channel x kind" `Quick test_net_coverage_sites;
    Alcotest.test_case "bug: duplicate double-executes without cache" `Quick
      test_bug_no_cache_caught;
    Alcotest.test_case "bug: raw retry lets stale write win" `Quick test_bug_raw_retry_caught;
    Alcotest.test_case "bug: zombie write without fence" `Quick test_bug_no_fence_caught;
    Alcotest.test_case "golden: dup without cache" `Quick test_golden_bug_no_cache;
    Alcotest.test_case "golden: raw retry" `Quick test_golden_bug_raw_retry;
    Alcotest.test_case "golden: missing fence" `Quick test_golden_bug_no_fence;
  ]
