(* Tests for the multi-address journal ({!Journal.Txn_log}) and the
   transactional KV store on top of it ({!Journal.Kvs}): recovery replay,
   crash-during-recovery idempotence, refinement on finite instances with
   crashes (including during recovery), seeded-bug rejection, and the
   proof outlines of {!Journal.Kvs_proof}. *)

module V = Tslang.Value
module R = Perennial_core.Refinement
module O = Perennial_core.Outline
module J = Journal.Txn_log
module K = Journal.Kvs
module KP = Journal.Kvs_proof
module Block = Disk.Block

let b = Block.of_string
let bv s = Block.to_value (b s)

let expect_holds name = function
  | R.Refinement_holds _ -> ()
  | R.Refinement_violated (f, _) -> Alcotest.failf "%s: %a" name R.pp_failure f
  | R.Budget_exhausted stats ->
    Alcotest.failf "%s: budget exhausted (%a)" name R.pp_stats stats

let expect_violated name = function
  | R.Refinement_violated _ -> ()
  | R.Refinement_holds stats ->
    Alcotest.failf "%s: bug not caught (%a)" name R.pp_stats stats
  | R.Budget_exhausted stats ->
    Alcotest.failf "%s: budget exhausted (%a)" name R.pp_stats stats

(* Run a program for exactly [n] atomic steps — the world as it stood at
   the crash. *)
let run_steps w prog n =
  let rec go w prog n =
    if n = 0 then w
    else
      match prog with
      | Sched.Prog.Mark (_, p) -> go w p n
      | Sched.Prog.Done _ -> w
      | Sched.Prog.Atomic { action; k; _ } -> (
        match action w with
        | Sched.Prog.Steps ((w', v) :: _) -> go w' (k v) (n - 1)
        | Sched.Prog.Steps [] | Sched.Prog.Ub _ -> w)
  in
  go w prog n

let data_blocks ly w =
  List.init ly.J.n_data (fun a -> Disk.Single_disk.get (J.get_disk w) a)

let check_data name ly w expected =
  Alcotest.(check (list string))
    name expected
    (List.map Block.to_string (data_blocks ly w))

(* --- journal: commit, replay, idempotence --- *)

let ly = J.layout ~n_data:3 ~max_slots:2

let test_commit_applies () =
  let w, _ = Sched.Runner.run1 (J.init_world ly) (J.commit_txn_prog ly [ (0, b "A"); (2, b "C") ]) in
  check_data "data region" ly w [ "A"; "0"; "C" ];
  Alcotest.(check string)
    "record cleared" "0"
    (Block.to_string (Disk.Single_disk.get (J.get_disk w) (J.rec_addr ly)))

(* Crash after the commit-record write, before the apply: recovery must
   replay the log (helping). commit_txn_prog steps: lock, 2x2 slot
   writes, record write = 6. *)
let test_recovery_replays_committed () =
  let prog = J.commit_txn_prog ly [ (0, b "A"); (2, b "C") ] in
  let mid = run_steps (J.init_world ly) prog 6 in
  check_data "not yet applied" ly mid [ "0"; "0"; "0" ];
  let w, _ = Sched.Runner.run1 (J.crash_world mid) (J.recover ly) in
  check_data "replayed" ly w [ "A"; "0"; "C" ];
  Alcotest.(check string)
    "record cleared" "0"
    (Block.to_string (Disk.Single_disk.get (J.get_disk w) (J.rec_addr ly)))

(* Crash before the record write: nothing committed, nothing replayed. *)
let test_recovery_ignores_uncommitted () =
  let prog = J.commit_txn_prog ly [ (0, b "A"); (2, b "C") ] in
  let mid = run_steps (J.init_world ly) prog 5 in
  let w, _ = Sched.Runner.run1 (J.crash_world mid) (J.recover ly) in
  check_data "untouched" ly w [ "0"; "0"; "0" ]

(* Recovery may crash at any point and re-run: the final state must be the
   same as an uninterrupted recovery, for every cut point. *)
let test_recovery_idempotent () =
  let prog = J.commit_txn_prog ly [ (0, b "A"); (2, b "C") ] in
  let committed = J.crash_world (run_steps (J.init_world ly) prog 6) in
  let full, _ = Sched.Runner.run1 committed (J.recover ly) in
  for n = 0 to 8 do
    let partial = J.crash_world (run_steps committed (J.recover ly) n) in
    let again, _ = Sched.Runner.run1 partial (J.recover ly) in
    check_data
      (Printf.sprintf "recovery cut at step %d" n)
      ly again
      (List.map Block.to_string (data_blocks ly full))
  done

(* --- journal: refinement on finite instances --- *)

let ly2 = J.layout ~n_data:2 ~max_slots:2

let test_journal_refinement_holds () =
  expect_holds "commit || read, 1 crash"
    (R.check
       (J.checker_config ly2 ~max_crashes:1
          [ [ J.commit_call ly2 [ (0, b "A"); (1, b "B") ] ]; [ J.read_call ly2 0 ] ]))

let test_journal_crash_during_recovery () =
  expect_holds "commit, 2 crashes (incl. during recovery)"
    (R.check
       (J.checker_config ly2 ~max_crashes:2
          [ [ J.commit_call ly2 [ (0, b "A"); (1, b "B") ] ] ]))

(* Commit record before the log entries: after a first transaction has
   left stale slot contents, a crash right after the record write makes
   recovery replay garbage over committed data. *)
let test_journal_record_first_caught () =
  expect_violated "record-before-log"
    (R.check
       (J.checker_config ly2 ~max_crashes:1
          [
            [
              J.commit_call ly2 [ (0, b "A") ];
              J.Buggy.commit_call_record_first ly2 [ (0, b "C"); (1, b "D") ];
            ];
          ]))

let test_journal_no_log_caught () =
  expect_violated "in-place multi-address write"
    (R.check
       (J.checker_config ly2 ~max_crashes:1
          [ [ J.Buggy.commit_call_no_log ly2 [ (0, b "A"); (1, b "B") ] ] ]))

let test_journal_recover_clear_first_caught () =
  expect_violated "recovery clears record before replay"
    (R.check
       (R.config ~spec:(J.spec ly2) ~init_world:(J.init_world ly2) ~crash_world:J.crash_world
          ~pp_world:J.pp_world
          ~threads:[ [ J.commit_call ly2 [ (0, b "A"); (1, b "B") ] ] ]
          ~recovery:(J.Buggy.recover_clear_first ly2) ~post:(J.probe ly2) ~max_crashes:2 ()))

(* --- kvs: refinement --- *)

let p = K.params ~n_keys:2 ()

let test_kvs_put_get_holds () =
  expect_holds "put || get, 1 crash"
    (R.check
       (K.checker_config p ~max_crashes:1
          [ [ K.put_call p 0 (bv "A") ]; [ K.get_call p 1 ] ]))

let test_kvs_txn_crash_during_recovery () =
  expect_holds "txn, 2 crashes (incl. during recovery)"
    (R.check
       (K.checker_config p ~max_crashes:2
          [ [ K.txn_call p [ (0, b "A"); (1, b "B") ] ] ]))

let test_kvs_txn_vs_gets_holds () =
  expect_holds "txn || get (both flavours), no crash"
    (R.check
       (K.checker_config p ~max_crashes:0
          [
            [ K.txn_call p [ (0, b "A"); (1, b "B") ] ];
            [ K.get_call p 0 ];
            [ K.get_sync_call p 1 ];
          ]))

let test_kvs_group_commit_holds () =
  expect_holds "async put; flush || get, 1 crash"
    (R.check
       (K.checker_config p ~max_crashes:1
          [ [ K.put_async_call p 0 (bv "A"); K.flush_call p ]; [ K.get_call p 0 ] ]))

(* The loss window is real: against the strict (lossless-crash) spec the
   same store is rejected — an acknowledged async put can vanish. *)
let test_kvs_strict_spec_rejected () =
  expect_violated "async put vs strict crash spec"
    (R.check
       (K.checker_config p ~spec:(K.strict_spec p) ~max_crashes:1
          [ [ K.put_async_call p 0 (bv "A") ] ]))

let test_kvs_lossy_spec_accepts_same_instance () =
  expect_holds "async put vs lossy crash spec"
    (R.check (K.checker_config p ~max_crashes:1 [ [ K.put_async_call p 0 (bv "A") ] ]))

(* --- kvs: seeded bugs --- *)

let test_kvs_get_skip_buffer_caught () =
  expect_violated "get that skips the group-commit buffer"
    (R.check
       (K.checker_config p ~max_crashes:0
          [ [ K.put_async_call p 0 (bv "A"); K.Buggy.get_call_skip_buffer p 0 ] ]))

let test_kvs_record_first_caught () =
  expect_violated "kvs commit record before log entries"
    (R.check
       (K.checker_config p ~max_crashes:1
          [
            [
              K.put_call p 0 (bv "A");
              K.Buggy.txn_record_first p [ (0, b "C"); (1, b "D") ];
            ];
          ]))

let test_kvs_no_log_caught () =
  expect_violated "kvs txn without the journal"
    (R.check
       (K.checker_config p ~max_crashes:1
          [ [ K.Buggy.txn_no_log p [ (0, b "A"); (1, b "B") ] ] ]))

let test_kvs_recover_nop_caught () =
  expect_violated "kvs recovery that ignores the record"
    (R.check
       (R.config ~spec:(K.spec p) ~init_world:(K.init_world p) ~crash_world:K.crash_world
          ~pp_world:K.pp_world
          ~threads:[ [ K.txn_call p [ (0, b "A"); (1, b "B") ] ] ]
          ~recovery:K.Buggy.recover_nop ~post:(K.probe p) ~max_crashes:1 ()))

(* --- kvs: proof outlines --- *)

let test_kvs_outlines_accepted () =
  List.iter
    (fun (name, result) ->
      match result with
      | O.Accepted _ -> ()
      | O.Rejected why -> Alcotest.failf "%s rejected: %s" name why)
    (KP.check ())

let test_kvs_buggy_outline_rejected () =
  match KP.check_buggy () with
  | O.Rejected _ -> ()
  | O.Accepted r -> Alcotest.failf "record-first outline accepted (%a)" O.pp_report r

let suite =
  [
    Alcotest.test_case "journal: commit applies" `Quick test_commit_applies;
    Alcotest.test_case "journal: recovery replays committed txn" `Quick
      test_recovery_replays_committed;
    Alcotest.test_case "journal: recovery ignores uncommitted txn" `Quick
      test_recovery_ignores_uncommitted;
    Alcotest.test_case "journal: recovery idempotent at every cut" `Quick
      test_recovery_idempotent;
    Alcotest.test_case "journal: refinement holds (commit || read)" `Quick
      test_journal_refinement_holds;
    Alcotest.test_case "journal: holds with crash during recovery" `Quick
      test_journal_crash_during_recovery;
    Alcotest.test_case "journal: record-before-log caught" `Quick
      test_journal_record_first_caught;
    Alcotest.test_case "journal: unlogged multi-write caught" `Quick
      test_journal_no_log_caught;
    Alcotest.test_case "journal: clear-before-replay recovery caught" `Quick
      test_journal_recover_clear_first_caught;
    Alcotest.test_case "kvs: put || get holds with crash" `Quick test_kvs_put_get_holds;
    Alcotest.test_case "kvs: txn holds with crash during recovery" `Quick
      test_kvs_txn_crash_during_recovery;
    Alcotest.test_case "kvs: txn vs concurrent gets holds" `Quick test_kvs_txn_vs_gets_holds;
    Alcotest.test_case "kvs: group commit holds with crash" `Quick test_kvs_group_commit_holds;
    Alcotest.test_case "kvs: strict crash spec rejected" `Quick test_kvs_strict_spec_rejected;
    Alcotest.test_case "kvs: lossy crash spec accepted" `Quick
      test_kvs_lossy_spec_accepts_same_instance;
    Alcotest.test_case "kvs: buffer-skipping get caught" `Quick test_kvs_get_skip_buffer_caught;
    Alcotest.test_case "kvs: record-before-log caught" `Quick test_kvs_record_first_caught;
    Alcotest.test_case "kvs: unjournaled txn caught" `Quick test_kvs_no_log_caught;
    Alcotest.test_case "kvs: nop recovery caught" `Quick test_kvs_recover_nop_caught;
    Alcotest.test_case "kvs proof: outlines accepted" `Quick test_kvs_outlines_accepted;
    Alcotest.test_case "kvs proof: record-first outline rejected" `Quick
      test_kvs_buggy_outline_rejected;
  ]
