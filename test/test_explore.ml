(* The soundness argument for the partial-order-reduced strategies is
   differential: for every bundled system and every seeded-bug variant,
   {!Explore.Dpor} and {!Explore.Dpor_sleep} must reach exactly the verdict
   of {!Explore.Naive} — while never exploring more executions.  On top of
   that:

   - qcheck properties over the dependence relation: swapping adjacent
     steps that the footprints classify as independent never changes the
     final state or either step's observation, and the seeded dependent
     pairs (same-address write/write, crash vs durable write, [Unknown]
     vs anything) are never classified independent;
   - golden counterexample snapshots: the [pp_failure_lanes] rendering of
     the seeded journal/kvs bugs and the refuted strict-KVS spec is
     byte-for-byte identical under every strategy (test/golden/);
   - the reduction is real: on the kvs put||get instance DPOR must explore
     at least 3x fewer executions than naive, with nonzero
     [commutations_pruned] and [crash_skips]. *)

module V = Tslang.Value
module R = Perennial_core.Refinement
module E = Perennial_core.Explore
module Fp = Sched.Footprint
module Sd = Disk.Single_disk
module Rd = Systems.Replicated_disk
module Cb = Systems.Cached_block
module Sc = Systems.Shadow_copy
module W = Systems.Wal
module Gc = Systems.Group_commit
module L = Systems.Layered
module J = Journal.Txn_log
module K = Journal.Kvs

let b = Disk.Block.of_string
let bv s = Disk.Block.to_value (b s)
let vx = V.str "x"
let vy = V.str "y"
let ly2 = J.layout ~n_data:2 ~max_slots:2
let p = K.params ~n_keys:2 ()

let verdict = function
  | R.Refinement_holds _ -> "holds"
  | R.Refinement_violated _ -> "violated"
  | R.Budget_exhausted _ -> "budget"

let stats_of = function
  | R.Refinement_holds st | R.Refinement_violated (_, st) | R.Budget_exhausted st -> st

(* ------------------------------------------------------------------ *)
(* Differential harness                                                *)
(* ------------------------------------------------------------------ *)

(* Run one instance under every strategy: same verdict as naive, never
   more executions than naive. *)
let differential name (run : E.strategy -> R.result) =
  let naive = run E.Naive in
  List.iter
    (fun s ->
      let r = run s in
      Alcotest.(check string)
        (Printf.sprintf "%s: %s verdict" name (E.strategy_name s))
        (verdict naive) (verdict r);
      if (stats_of r).R.executions > (stats_of naive).R.executions then
        Alcotest.failf "%s: %s explored %d executions > naive's %d" name
          (E.strategy_name s) (stats_of r).R.executions (stats_of naive).R.executions)
    E.all_strategies

(* --- honest systems: every strategy must accept --- *)

let test_diff_systems () =
  differential "rd: 2 writers + crash + disk failure" (fun strategy ->
      R.check ~strategy
        (Rd.checker_config ~may_fail:true ~max_crashes:1 ~size:1
           [ [ Rd.write_call 0 (V.str "a") ]; [ Rd.write_call 0 (V.str "b") ] ]));
  differential "cached-block: put || get + crash" (fun strategy ->
      R.check ~strategy
        (Cb.checker_config ~max_crashes:1 [ [ Cb.put_call vx ]; [ Cb.get_call ] ]));
  differential "shadow-copy: write || read + crash" (fun strategy ->
      R.check ~strategy
        (Sc.checker_config ~max_crashes:1 [ [ Sc.write_call vx vy ]; [ Sc.read_call ] ]));
  differential "wal: write + 2 crashes" (fun strategy ->
      R.check ~strategy (W.checker_config ~max_crashes:2 [ [ W.write_call vx vy ] ]));
  differential "group-commit: write; flush + crash" (fun strategy ->
      R.check ~strategy
        (Gc.checker_config ~max_crashes:1 [ [ Gc.write_call vx vy; Gc.flush_call ] ]))

let test_diff_layered () =
  differential "layered: WAL over rd + crash + disk failure" (fun strategy ->
      R.check ~strategy
        (L.checker_config ~may_fail:true ~max_crashes:1 [ [ L.write_call vx vy ] ]))

let test_diff_journal_kvs () =
  differential "journal: commit || read + crash" (fun strategy ->
      R.check ~strategy
        (J.checker_config ly2 ~max_crashes:1
           [ [ J.commit_call ly2 [ (0, b "A"); (1, b "B") ] ]; [ J.read_call ly2 0 ] ]));
  differential "kvs: put || get + crash" (fun strategy ->
      R.check ~strategy
        (K.checker_config p ~max_crashes:1
           [ [ K.put_call p 0 (bv "A") ]; [ K.get_call p 1 ] ]));
  differential "kvs: txn + crash during recovery" (fun strategy ->
      R.check ~strategy
        (K.checker_config p ~max_crashes:2 [ [ K.txn_call p [ (0, b "A"); (1, b "B") ] ] ]));
  differential "kvs: async put; flush || get + crash" (fun strategy ->
      R.check ~strategy
        (K.checker_config p ~max_crashes:1
           [ [ K.put_async_call p 0 (bv "A"); K.flush_call p ]; [ K.get_call p 0 ] ]))

(* --- seeded bugs: every strategy must reject --- *)

let rd_buggy ~recovery ?(may_fail = true) ?(max_crashes = 1) ~size threads strategy =
  R.check ~strategy
    (R.config ~spec:(Rd.spec size)
       ~init_world:(Rd.init_world ~may_fail size)
       ~crash_world:Rd.crash_world ~pp_world:Rd.pp_world ~threads ~recovery
       ~post:(Rd.probe size) ~max_crashes ())

let test_diff_bugs_rd () =
  differential "bug rd: nop recovery"
    (rd_buggy ~recovery:Rd.Buggy.recover_nop ~size:1 [ [ Rd.write_call 0 vx ] ]);
  differential "bug rd: zeroing recovery"
    (rd_buggy ~recovery:(Rd.Buggy.recover_zero 1) ~may_fail:false ~size:1
       [ [ Rd.write_call 0 vx ] ]);
  differential "bug rd: unlocked writers"
    (rd_buggy ~recovery:(Rd.recover_prog 1) ~max_crashes:0 ~size:1
       [ [ Rd.Buggy.write_call_unlocked 0 (V.str "a") ];
         [ Rd.Buggy.write_call_unlocked 0 (V.str "b") ] ])

let test_diff_bugs_wal_shadow () =
  differential "bug wal: commit before log" (fun strategy ->
      R.check ~strategy
        (R.config ~spec:W.spec ~init_world:(W.init_world ())
           ~crash_world:W.crash_world ~pp_world:W.pp_world
           ~threads:[ [ W.Buggy.write_call_commit_first vx vy ] ]
           ~recovery:W.recover_prog ~post:[ W.read_call ] ~max_crashes:1 ()));
  differential "bug wal: recovery clears flag first" (fun strategy ->
      R.check ~strategy
        (R.config ~spec:W.spec ~init_world:(W.init_world ())
           ~crash_world:W.crash_world ~pp_world:W.pp_world
           ~threads:[ [ W.write_call vx vy ] ]
           ~recovery:W.Buggy.recover_clear_first ~post:[ W.read_call ] ~max_crashes:2 ()));
  differential "bug shadow: in-place write" (fun strategy ->
      R.check ~strategy
        (Sc.checker_config ~max_crashes:1 [ [ Sc.Buggy.write_call_in_place vx vy ] ]))

let test_diff_bugs_journal_kvs () =
  differential "bug journal: record before log" (fun strategy ->
      R.check ~strategy
        (J.checker_config ly2 ~max_crashes:1
           [ [ J.commit_call ly2 [ (0, b "A") ];
               J.Buggy.commit_call_record_first ly2 [ (0, b "C"); (1, b "D") ] ] ]));
  differential "bug journal: unlogged multi-write" (fun strategy ->
      R.check ~strategy
        (J.checker_config ly2 ~max_crashes:1
           [ [ J.Buggy.commit_call_no_log ly2 [ (0, b "A"); (1, b "B") ] ] ]));
  differential "bug kvs: nop recovery" (fun strategy ->
      R.check ~strategy
        (R.config ~spec:(K.spec p) ~init_world:(K.init_world p)
           ~crash_world:K.crash_world ~pp_world:K.pp_world
           ~threads:[ [ K.txn_call p [ (0, b "A"); (1, b "B") ] ] ]
           ~recovery:K.Buggy.recover_nop ~post:(K.probe p) ~max_crashes:1 ()));
  differential "bug kvs: async put vs strict crash spec" (fun strategy ->
      R.check ~strategy
        (K.checker_config p ~spec:(K.strict_spec p) ~max_crashes:1
           [ [ K.put_async_call p 0 (bv "A") ] ]))

(* ------------------------------------------------------------------ *)
(* The reduction is real                                               *)
(* ------------------------------------------------------------------ *)

let test_kvs_reduction () =
  let run strategy =
    R.check ~strategy
      (K.checker_config p ~max_crashes:1
         [ [ K.put_call p 0 (bv "A") ]; [ K.get_call p 1 ] ])
  in
  let st name r =
    match r with
    | R.Refinement_holds st -> st
    | _ -> Alcotest.failf "kvs put||get should hold under %s" name
  in
  let naive = st "naive" (run E.Naive) in
  let dpor = st "dpor" (run E.Dpor) in
  if dpor.R.executions * 3 > naive.R.executions then
    Alcotest.failf "dpor explored %d executions, naive %d: less than the required 3x reduction"
      dpor.R.executions naive.R.executions;
  Alcotest.(check bool) "dpor pruned commutations" true (dpor.R.commutations_pruned > 0);
  Alcotest.(check bool) "dpor skipped clean crash points" true (dpor.R.crash_skips > 0);
  let sleep = st "dpor+sleep" (run E.Dpor_sleep) in
  Alcotest.(check bool) "sleep sets explore no more than dpor" true
    (sleep.R.executions <= dpor.R.executions)

(* ------------------------------------------------------------------ *)
(* qcheck: the dependence relation                                     *)
(* ------------------------------------------------------------------ *)

(* A tiny concrete step language over a 4-block disk: enough to state the
   commutation property the whole reduction rests on. *)
type op = Wr of int * int | Rd_ of int

let op_fp = function
  | Wr (a, _) -> Fp.writes [ Fp.disk a ]
  | Rd_ a -> Fp.reads [ Fp.disk a ]

let apply w = function
  | Wr (a, v) -> (Sd.set w a (b (string_of_int v)), "()")
  | Rd_ a -> (w, Disk.Block.to_string (Sd.get w a))

let print_op = function
  | Wr (a, v) -> Printf.sprintf "disk[%d]:=%d" a v
  | Rd_ a -> Printf.sprintf "read disk[%d]" a

let gen_op =
  QCheck.Gen.(
    let addr = int_range 0 3 in
    oneof [ map2 (fun a v -> Wr (a, v)) addr (int_range 0 9); map (fun a -> Rd_ a) addr ])

let arb_case =
  QCheck.make
    ~print:(fun (o1, o2, init) ->
      Printf.sprintf "%s; %s from [%s]" (print_op o1) (print_op o2)
        (String.concat ";" (List.map string_of_int init)))
    QCheck.Gen.(triple gen_op gen_op (list_size (return 4) (int_range 0 9)))

let init_disk init =
  List.fold_left
    (fun (w, a) v -> (Sd.set w a (b (string_of_int v)), a + 1))
    (Sd.init 4, 0) init
  |> fst

(* Steps whose footprints are classified independent commute: running them
   in either order from any state yields the same final state and the same
   per-step observations.  This is exactly what lets DPOR explore one of
   the two orders. *)
let prop_independent_steps_commute =
  QCheck.Test.make ~name:"independent steps commute (state + observations)" ~count:500
    arb_case (fun (o1, o2, init) ->
      Fp.conflicts (op_fp o1) (op_fp o2)
      ||
      let w0 = init_disk init in
      let w1, r1 = apply w0 o1 in
      let w12, r2 = apply w1 o2 in
      let w2, r2' = apply w0 o2 in
      let w21, r1' = apply w2 o1 in
      Sd.equal w12 w21 && String.equal r1 r1' && String.equal r2 r2')

(* The converse guard: any pair sharing an address where at least one side
   writes must be classified dependent — including write/write. *)
let prop_same_address_write_dependent =
  QCheck.Test.make ~name:"same-address pair with a write is dependent" ~count:500 arb_case
    (fun (o1, o2, _) ->
      let addr = function Wr (a, _) -> a | Rd_ a -> a in
      let is_wr = function Wr _ -> true | Rd_ _ -> false in
      addr o1 <> addr o2
      || (not (is_wr o1 || is_wr o2))
      || Fp.conflicts (op_fp o1) (op_fp o2))

(* Dummy step_infos over a unit world, to exercise Explore.dependent
   itself (not just Footprint.conflicts). *)
let info ?(visible = false) tid fp =
  { E.si_tid = tid; si_label = "step"; si_fp = fp; si_visible = visible; si_branches = [];
    si_faults = []; si_fault_site = false }

let prop_visible_always_dependent =
  QCheck.Test.make ~name:"visible steps are dependent on everything" ~count:200 arb_case
    (fun (o1, o2, _) ->
      E.dependent (info ~visible:true 0 (op_fp o1)) (info 1 (op_fp o2))
      && E.dependent (info 0 (op_fp o1)) (info ~visible:true 1 (op_fp o2)))

let test_dependence_seeded_pairs () =
  let w0 = Fp.writes [ Fp.disk 0 ] in
  let r0 = Fp.reads [ Fp.disk 0 ] in
  let w1 = Fp.writes [ Fp.disk 1 ] in
  let c = Fp.writes [ Fp.cell "buffer" ] in
  Alcotest.(check bool) "write/write same address conflicts" true (Fp.conflicts w0 w0);
  Alcotest.(check bool) "write/read same address conflicts" true (Fp.conflicts w0 r0);
  Alcotest.(check bool) "write/write distinct addresses commute" false (Fp.conflicts w0 w1);
  Alcotest.(check bool) "read/read same address commutes" false (Fp.conflicts r0 r0);
  Alcotest.(check bool) "unknown conflicts with a read" true (Fp.conflicts Fp.unknown r0);
  Alcotest.(check bool) "unknown conflicts with pure" true (Fp.conflicts Fp.unknown Fp.pure);
  (* crash vs durable write: only durable writes are crash-relevant *)
  Alcotest.(check bool) "durable write is crash-relevant" true (E.crash_relevant w0);
  Alcotest.(check bool) "volatile write is not crash-relevant" false (E.crash_relevant c);
  Alcotest.(check bool) "read is not crash-relevant" false (E.crash_relevant r0);
  Alcotest.(check bool) "unknown is crash-relevant" true (E.crash_relevant Fp.unknown);
  (* lock discipline: an acquire is never co-enabled with the release of
     the same lock — load-bearing for catching lock-order deadlocks *)
  let l = Fp.lock 0 in
  Alcotest.(check bool) "acquire vs release same lock never co-enabled" false
    (Fp.may_be_coenabled (Fp.acquire l) (Fp.release l));
  Alcotest.(check bool) "acquire vs release distinct locks may be co-enabled" true
    (Fp.may_be_coenabled (Fp.acquire l) (Fp.release (Fp.lock 1)));
  (* Explore.dependent is conflicts + visibility *)
  Alcotest.(check bool) "disjoint invisible steps independent" false
    (E.dependent (info 0 w0) (info 1 w1))

(* ------------------------------------------------------------------ *)
(* Golden counterexamples                                              *)
(* ------------------------------------------------------------------ *)

let read_golden name =
  (* cwd is test/ under `dune runtest` but the project root under
     `dune exec test/test_main.exe` *)
  let candidates =
    [ Filename.concat "golden" (name ^ ".lanes.txt");
      Filename.concat "test/golden" (name ^ ".lanes.txt") ]
  in
  let file =
    match List.find_opt Sys.file_exists candidates with
    | Some f -> f
    | None -> Alcotest.failf "golden file %s.lanes.txt not found" name
  in
  let ic = open_in_bin file in
  let s = really_input_string ic (in_channel_length ic) in
  close_in ic;
  s

let golden name (run : E.strategy -> R.result) =
  List.iter
    (fun s ->
      match run s with
      | R.Refinement_violated (f, _) ->
        Alcotest.(check string)
          (Printf.sprintf "%s lanes under %s" name (E.strategy_name s))
          (read_golden name)
          (Fmt.str "%a" R.pp_failure_lanes f)
      | r -> Alcotest.failf "%s: expected violation under %s, got %s" name
               (E.strategy_name s) (verdict r))
    E.all_strategies

let test_golden_journal () =
  golden "journal_record_first" (fun strategy ->
      R.check ~strategy
        (J.checker_config ly2 ~max_crashes:1
           [ [ J.commit_call ly2 [ (0, b "A") ];
               J.Buggy.commit_call_record_first ly2 [ (0, b "C"); (1, b "D") ] ] ]));
  golden "journal_no_log" (fun strategy ->
      R.check ~strategy
        (J.checker_config ly2 ~max_crashes:1
           [ [ J.Buggy.commit_call_no_log ly2 [ (0, b "A"); (1, b "B") ] ] ]));
  golden "journal_recover_clear_first" (fun strategy ->
      R.check ~strategy
        (R.config ~spec:(J.spec ly2) ~init_world:(J.init_world ly2)
           ~crash_world:J.crash_world ~pp_world:J.pp_world
           ~threads:[ [ J.commit_call ly2 [ (0, b "A"); (1, b "B") ] ] ]
           ~recovery:(J.Buggy.recover_clear_first ly2) ~post:(J.probe ly2)
           ~max_crashes:2 ()))

let test_golden_kvs () =
  golden "kvs_recover_nop" (fun strategy ->
      R.check ~strategy
        (R.config ~spec:(K.spec p) ~init_world:(K.init_world p)
           ~crash_world:K.crash_world ~pp_world:K.pp_world
           ~threads:[ [ K.txn_call p [ (0, b "A"); (1, b "B") ] ] ]
           ~recovery:K.Buggy.recover_nop ~post:(K.probe p) ~max_crashes:1 ()));
  golden "kvs_strict_spec" (fun strategy ->
      R.check ~strategy
        (K.checker_config p ~spec:(K.strict_spec p) ~max_crashes:1
           [ [ K.put_async_call p 0 (bv "A") ] ]))

let suite =
  [
    Alcotest.test_case "differential: pattern systems" `Quick test_diff_systems;
    Alcotest.test_case "differential: layered" `Quick test_diff_layered;
    Alcotest.test_case "differential: journal + kvs" `Quick test_diff_journal_kvs;
    Alcotest.test_case "differential: rd seeded bugs" `Quick test_diff_bugs_rd;
    Alcotest.test_case "differential: wal/shadow seeded bugs" `Quick
      test_diff_bugs_wal_shadow;
    Alcotest.test_case "differential: journal/kvs seeded bugs" `Quick
      test_diff_bugs_journal_kvs;
    Alcotest.test_case "kvs reduction: >=3x fewer executions" `Quick test_kvs_reduction;
    Alcotest.test_case "dependence: seeded pairs" `Quick test_dependence_seeded_pairs;
    QCheck_alcotest.to_alcotest prop_independent_steps_commute;
    QCheck_alcotest.to_alcotest prop_same_address_write_dependent;
    QCheck_alcotest.to_alcotest prop_visible_always_dependent;
    Alcotest.test_case "golden: journal counterexamples" `Quick test_golden_journal;
    Alcotest.test_case "golden: kvs counterexamples" `Quick test_golden_kvs;
  ]
