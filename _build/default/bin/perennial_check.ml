(* perennial_check: run every verification artifact in the repository and
   print a report — the outline proofs (Theorem 2's premises) and the
   exhaustive refinement checks (its conclusion) for each system.

   Usage: perennial_check [outlines|refinement|all] *)

module V = Tslang.Value
module R = Perennial_core.Refinement
module O = Perennial_core.Outline

let ok = ref 0
let failed = ref 0

let report name result =
  match result with
  | Ok detail ->
    incr ok;
    Printf.printf "  [OK]   %-50s %s\n%!" name detail
  | Error detail ->
    incr failed;
    Printf.printf "  [FAIL] %-50s %s\n%!" name detail

let outline_result = function
  | O.Accepted r -> Ok (Fmt.str "%a" O.pp_report r)
  | O.Rejected why -> Error why

let refinement_result = function
  | R.Refinement_holds stats -> Ok (Fmt.str "%a" R.pp_stats stats)
  | R.Refinement_violated (f, _) -> Error f.R.reason
  | R.Budget_exhausted stats -> Error (Fmt.str "budget exhausted (%a)" R.pp_stats stats)

let run_outlines () =
  print_endline "Proof outlines (premises of Theorem 2, per system):";
  List.iter
    (fun (name, r) -> report ("replicated-disk " ^ name) (outline_result r))
    (Systems.Rd_proof.check 2);
  List.iter
    (fun (name, r) -> report ("write-ahead-log " ^ name) (outline_result r))
    (Systems.Wal_proof.check ());
  List.iter
    (fun (name, r) -> report ("shadow-copy " ^ name) (outline_result r))
    (Systems.Shadow_proof.check ());
  List.iter
    (fun (name, r) -> report ("cached-block " ^ name) (outline_result r))
    (Systems.Cached_proof.check ())

let run_refinement () =
  print_endline "Exhaustive concurrent-recovery-refinement checks:";
  let vx = V.str "x" and vy = V.str "y" in
  report "replicated-disk: 2 writers + crash + disk failure"
    (refinement_result
       (R.check
          (Systems.Replicated_disk.checker_config ~may_fail:true ~max_crashes:1 ~size:1
             [ [ Systems.Replicated_disk.write_call 0 vx ];
               [ Systems.Replicated_disk.write_call 0 vy ] ])));
  report "cached-block: put + get + crash (versioned memory)"
    (refinement_result
       (R.check
          (Systems.Cached_block.checker_config ~max_crashes:1
             [ [ Systems.Cached_block.put_call (V.str "x") ];
               [ Systems.Cached_block.get_call ] ])));
  report "shadow-copy: writer + reader + crash"
    (refinement_result
       (R.check
          (Systems.Shadow_copy.checker_config ~max_crashes:1
             [ [ Systems.Shadow_copy.write_call vx vy ]; [ Systems.Shadow_copy.read_call ] ])));
  report "write-ahead-log: writer + crash during recovery"
    (refinement_result
       (R.check (Systems.Wal.checker_config ~max_crashes:2 [ [ Systems.Wal.write_call vx vy ] ])));
  report "group-commit: write+flush + crash (lossy spec)"
    (refinement_result
       (R.check
          (Systems.Group_commit.checker_config ~max_crashes:1
             [ [ Systems.Group_commit.write_call vx vy; Systems.Group_commit.flush_call ] ])));
  report "mailboat: deliver + crash + recovery"
    (refinement_result
       (R.check
          (Mailboat.Core.checker_config ~users:1 ~max_crashes:1
             [ [ Mailboat.Core.deliver_call 0 "ab" ] ])));
  report "mailboat: fsync deliver under deferred durability"
    (refinement_result
       (R.check
          (Mailboat.Core.checker_config ~users:1 ~max_crashes:1 ~durability:`Deferred
             [ [ Mailboat.Core.deliver_fsync_call 0 "ab" ] ])));
  report "layered: WAL over replicated disk + crash + disk failure"
    (refinement_result
       (R.check
          (Systems.Layered.checker_config ~may_fail:true ~max_crashes:1
             [ [ Systems.Layered.write_call (V.str "x") (V.str "y") ] ])));
  report "mailboat: randomized check, larger instance"
    (refinement_result
       (R.check_random ~schedules:100 ~crash_prob:0.05
          (Mailboat.Core.checker_config ~users:2 ~max_crashes:1
             [ [ Mailboat.Core.deliver_call 0 "ab"; Mailboat.Core.deliver_call 0 "cd" ];
               [ Mailboat.Core.deliver_call 1 "ef" ];
               [ Mailboat.Core.pickup_call 1; Mailboat.Core.unlock_call 1 ] ])))

let () =
  let what = if Array.length Sys.argv > 1 then Sys.argv.(1) else "all" in
  if what = "outlines" || what = "all" then run_outlines ();
  if what = "refinement" || what = "all" then run_refinement ();
  Printf.printf "\n%d checks passed, %d failed\n" !ok !failed;
  if !failed > 0 then exit 1
