(* Quick calibration probe for the Figure 11 simulator. *)
let () =
  let requests = try int_of_string Sys.argv.(1) with _ -> 20_000 in
  let series = Mcsim.Mail_model.figure11 ~requests () in
  List.iter
    (fun s ->
      Printf.printf "%-9s" (Mailboat.Server.kind_name s.Mcsim.Mail_model.kind);
      List.iter
        (fun p ->
          Printf.printf " %6.1fk" (p.Mcsim.Mail_model.throughput_rps /. 1000.))
        s.Mcsim.Mail_model.points;
      print_newline ())
    series
