(* Mailboat as a running mail server (§8): drive the SMTP and POP3 front
   ends with the §9.3 workload, crash it in the middle, recover, and verify
   no acknowledged mail was lost.

   Run with: dune exec examples/mail_demo.exe *)

let () =
  let users = 10 in
  let server = Mailboat.Server.create ~kind:Mailboat.Server.Mailboat_server ~users () in

  Fmt.pr "== 1. A full SMTP dialogue ==@.";
  let responses =
    Mailboat.Smtp.run_script server
      [ "EHLO demo"; "MAIL FROM:<postmaster@demo>"; "RCPT TO:<user3@mailboat>";
        "RCPT TO:<user7@mailboat>"; "DATA"; "Subject: minutes"; "";
        "The meeting is moved to Thursday."; "."; "QUIT" ]
  in
  List.iter (fun r -> Fmt.pr "  S: %s@." r) responses;

  Fmt.pr "@.== 2. A batch of deliveries, then a crash mid-delivery ==@.";
  let reqs = Mailboat.Workload.generate ~seed:7 ~users ~n:200 in
  List.iter (Mailboat.Workload.perform server) reqs;
  let delivered_before =
    List.init users (fun u -> List.length (Mailboat.Server.peek_mailbox server ~user:u))
    |> List.fold_left ( + ) 0
  in
  Fmt.pr "  after 200 requests: %d messages across %d mailboxes@." delivered_before users;

  (* simulate a crash: descriptors dangle, spool may hold partial files *)
  ignore (Gfs.Tmpfs.create server.Mailboat.Server.fs "spool" "tmp-interrupted");
  Mailboat.Server.crash server;
  Fmt.pr "  crash! spool holds %d entries@."
    (List.length (Gfs.Tmpfs.list_dir server.Mailboat.Server.fs "spool"));
  Mailboat.Server.recover server;
  Fmt.pr "  recovery: spool holds %d entries@."
    (List.length (Gfs.Tmpfs.list_dir server.Mailboat.Server.fs "spool"));
  let delivered_after =
    List.init users (fun u -> List.length (Mailboat.Server.peek_mailbox server ~user:u))
    |> List.fold_left ( + ) 0
  in
  Fmt.pr "  delivered mail intact: %d messages (was %d)@." delivered_after delivered_before;

  Fmt.pr "@.== 3. POP3 retrieval after the crash ==@.";
  let target =
    match
      List.find_opt
        (fun u -> Mailboat.Server.peek_mailbox server ~user:u <> [])
        (List.init users Fun.id)
    with
    | Some u -> u
    | None -> 0
  in
  let pop = Mailboat.Pop3.create server in
  List.iter
    (fun line ->
      Fmt.pr "  C: %s@." line;
      List.iter (fun r -> Fmt.pr "  S: %s@." r) (Mailboat.Pop3.input pop line))
    [ Printf.sprintf "USER user%d" target; "PASS x"; "STAT"; "QUIT" ];

  Fmt.pr "@.== 4. The three servers agree functionally ==@.";
  List.iter
    (fun kind ->
      let s = Mailboat.Server.create ~kind ~users:4 () in
      let reqs = Mailboat.Workload.generate ~seed:99 ~users:4 ~n:100 in
      List.iter (Mailboat.Workload.perform s) reqs;
      let total =
        List.init 4 (fun u -> List.length (Mailboat.Server.peek_mailbox s ~user:u))
        |> List.fold_left ( + ) 0
      in
      Fmt.pr "  %-9s 100 requests -> %d messages resident, %d fs calls, %d lock ops@."
        (Mailboat.Server.kind_name kind)
        total s.Mailboat.Server.fs_calls s.Mailboat.Server.lock_ops)
    [ Mailboat.Server.Mailboat_server; Mailboat.Server.Gomail; Mailboat.Server.Cmail ]
