(* The Goose pipeline, end to end (§6-§7): take Go source, translate it to
   the Perennial model, execute it through the modeled semantics, and show
   the race detector doing its job.

   Run with: dune exec examples/goose_pipeline.exe *)

module V = Tslang.Value
module G = Goose.Gvalue
module I = Goose.Interp

let kv_demo_src =
  {|package kvdemo

// A tiny crash-safe key-value store: one file per key, values replaced by
// spool-and-link (the Mailboat pattern in miniature).

func Put(key string, value []byte) {
	fd, ok := filesys.Create("spool", key)
	if !ok {
		return
	}
	filesys.Append(fd, value)
	filesys.Close(fd)
	filesys.Delete("data", key)
	filesys.Link("spool", key, "data", key)
	filesys.Delete("spool", key)
}

func Get(key string) (string, bool) {
	fd, ok := filesys.Open("data", key)
	if !ok {
		return "", false
	}
	contents := ""
	var off uint64 = 0
	for {
		chunk := filesys.ReadAt(fd, off, 4)
		contents = contents + string(chunk)
		off = off + len(chunk)
		if len(chunk) < 4 {
			break
		}
	}
	filesys.Close(fd)
	return contents, true
}
|}

let () =
  Fmt.pr "== 1. Translate Go to the Perennial model ==@.";
  (match Goose.Translate.translate kv_demo_src with
  | Ok coq ->
    let lines = String.split_on_char '\n' coq in
    List.iteri (fun i l -> if i < 14 then Fmt.pr "  %s@." l) lines;
    Fmt.pr "  ... (%d lines total)@." (List.length lines)
  | Error e -> Fmt.pr "  translation failed: %s@." e);

  Fmt.pr "@.== 2. Execute the model ==@.";
  let file = Goose.Parser.parse_file kv_demo_src in
  Goose.Typecheck.check_file file;
  let it = I.make file in
  let w = I.init_world ~dirs:[ "spool"; "data" ] () in
  let w, _ =
    Sched.Runner.run1 w (I.run_func_value it "Put" [ G.VString "greeting"; G.VString "hello" ])
  in
  let w, got = Sched.Runner.run1 w (I.run_func_value it "Get" [ G.VString "greeting" ]) in
  Fmt.pr "  Put then Get: %a@." V.pp got;

  Fmt.pr "@.== 3. Crash model: descriptors are volatile, files persist ==@.";
  let crashed = I.crash_world w in
  let _, got' = Sched.Runner.run1 crashed (I.run_func_value it "Get" [ G.VString "greeting" ]) in
  Fmt.pr "  after a crash, Get still returns %a@." V.pp got';

  Fmt.pr "@.== 4. Race detection (§6.1) ==@.";
  let racy =
    {|package racy
func Store(p []uint64, v uint64) {
	p[0] = v
}
func Load(p []uint64) uint64 {
	return p[0]
}|}
  in
  let rfile = Goose.Parser.parse_file racy in
  Goose.Typecheck.check_file rfile;
  let rit = I.make rfile in
  let module IM = Map.Make (Int) in
  let rw =
    { (I.init_world ()) with
      I.heap = IM.singleton 0 { I.content = G.CSlice [ G.VInt 0 ]; being_written = false };
      next_ref = 1
    }
  in
  let spec : unit Tslang.Spec.t =
    {
      Tslang.Spec.name = "any";
      init = ();
      compare_state = compare;
      pp_state = Fmt.any "()";
      step = (fun _ _ -> Tslang.Transition.choose [ V.unit; V.int 0; V.int 1; V.int 7 ]);
      crash = Tslang.Transition.ret ();
    }
  in
  let cfg =
    Perennial_core.Refinement.config ~spec ~init_world:rw ~crash_world:I.crash_world
      ~pp_world:I.pp_world
      ~threads:
        [ [ (Tslang.Spec.call "op" [], I.run_func_value rit "Store" [ G.VRef 0; G.VInt 7 ]) ];
          [ (Tslang.Spec.call "op" [], I.run_func_value rit "Load" [ G.VRef 0 ]) ] ]
      ~recovery:(Sched.Prog.return V.unit) ~max_crashes:0 ()
  in
  match Perennial_core.Refinement.check cfg with
  | Perennial_core.Refinement.Refinement_violated (f, _) ->
    Fmt.pr "  unsynchronized Store/Load rejected: %s@." f.Perennial_core.Refinement.reason
  | _ -> Fmt.pr "  UNEXPECTED: race not flagged@."
