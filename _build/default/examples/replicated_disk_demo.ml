(* The paper's running example, end to end (§1, §3, §5).

   This demo shows all three layers of the reproduction on the replicated
   disk:
   1. the proof-outline checker accepting the Perennial-style proof
      (versioned leases, crash invariant with a helping token);
   2. the refinement checker exhaustively validating the implementation
      under crashes and disk failures — and exhibiting a counterexample
      trace for the §1 "zero both disks" recovery;
   3. a concrete execution with fail-over.

   Run with: dune exec examples/replicated_disk_demo.exe *)

module V = Tslang.Value
module R = Perennial_core.Refinement
module O = Perennial_core.Outline
module Rd = Systems.Replicated_disk

let () =
  Fmt.pr "== 1. Proof outlines (Theorem 2 premises) ==@.";
  List.iter
    (fun (name, result) -> Fmt.pr "  %-16s %a@." name O.pp_result result)
    (Systems.Rd_proof.check 1);
  Fmt.pr "@.== 2. Exhaustive refinement check ==@.";
  Fmt.pr "  two writers to the same address, crash injection,@.";
  Fmt.pr "  disk-1 failure injection, recovery, double read-back:@.";
  let cfg =
    Rd.checker_config ~may_fail:true ~max_crashes:1 ~size:1
      [ [ Rd.write_call 0 (V.str "a") ]; [ Rd.write_call 0 (V.str "b") ] ]
  in
  (match R.check cfg with
  | R.Refinement_holds stats -> Fmt.pr "  refinement holds: %a@." R.pp_stats stats
  | R.Refinement_violated (f, _) -> Fmt.pr "  UNEXPECTED %a@." R.pp_failure f
  | R.Budget_exhausted _ -> Fmt.pr "  budget exhausted@.");

  Fmt.pr "@.== 3. The §1 wrong recovery: zero both disks ==@.";
  let bad =
    R.config ~spec:(Rd.spec 1)
      ~init_world:(Rd.init_world ~may_fail:false 1)
      ~crash_world:Rd.crash_world ~pp_world:Rd.pp_world
      ~threads:[ [ Rd.write_call 0 (V.str "x") ] ]
      ~recovery:(Rd.Buggy.recover_zero 1) ~post:(Rd.probe 1) ~max_crashes:1 ()
  in
  (match R.check bad with
  | R.Refinement_violated (f, _) ->
    Fmt.pr "  rejected with counterexample:@.  %a@." R.pp_failure f
  | R.Refinement_holds _ -> Fmt.pr "  UNEXPECTED: accepted@."
  | R.Budget_exhausted _ -> Fmt.pr "  budget exhausted@.");

  Fmt.pr "@.== 4. Concrete execution with fail-over ==@.";
  let w0 = Rd.init_world ~may_fail:false 2 in
  let out =
    Sched.Runner.run w0
      [ Rd.write_prog 0 (V.str "hello"); Rd.write_prog 1 (V.str "world") ]
  in
  Fmt.pr "  after two writes: %a@." Rd.pp_world out.Sched.Runner.world;
  (* fail disk 1 by hand, then read through the library *)
  let failed =
    { out.Sched.Runner.world with
      Rd.disks = Disk.Two_disk.fail out.Sched.Runner.world.Rd.disks Disk.Two_disk.D1
    }
  in
  let _, v = Sched.Runner.run1 failed (Rd.read_prog 0) in
  Fmt.pr "  disk 1 failed; rd_read(0) fails over to disk 2 and returns %a@." V.pp v;
  Fmt.pr "@.All three layers agree: the replicated disk implements Figure 3.@."
