package rdgo

import (
	"sync"
	"twodisk"
)

// The paper's Figure 4, as runnable Goose: a per-address lock guards the
// two mirrored writes; reads fail over from disk 1 to disk 2.

func Read(a uint64) string {
	sync.Lock(a)
	v, ok := twodisk.Read(1, a)
	if !ok {
		v2, _ := twodisk.Read(2, a)
		v = v2
	}
	sync.Unlock(a)
	return string(v)
}

func Write(a uint64, v []byte) {
	sync.Lock(a)
	twodisk.Write(1, a, v)
	twodisk.Write(2, a, v)
	sync.Unlock(a)
}

// The paper's Figure 5: recovery copies disk 1 onto disk 2, completing any
// write the crash interrupted.
func Recover() {
	size := twodisk.Size()
	for a := 0; a < size; a = a + 1 {
		v, ok := twodisk.Read(1, a)
		if ok {
			twodisk.Write(2, a, v)
		}
	}
}
