package shadowgo

import (
	"disk"
	"sync"
)

// areaBase returns the first block of the named area: "A" at 0, "B" at 2.
func areaBase(area []byte) uint64 {
	if string(area) == "A" {
		return 0
	}
	return 2
}

// otherArea flips between the two areas.
func otherArea(area []byte) []byte {
	if string(area) == "A" {
		return []byte("B")
	}
	return []byte("A")
}

// Write installs the pair (v1, v2) atomically: fill the inactive area,
// then flip the pointer block (the commit point).
func Write(v1 []byte, v2 []byte) {
	sync.Lock(0)
	cur := disk.Read(4)
	shadow := otherArea(cur)
	base := areaBase(shadow)
	disk.Write(base, v1)
	disk.Write(base+1, v2)
	disk.Write(4, shadow)
	sync.Unlock(0)
}

// Read returns the current pair from the active area.
func Read() (string, string) {
	sync.Lock(0)
	cur := disk.Read(4)
	base := areaBase(cur)
	a := disk.Read(base)
	b := disk.Read(base + 1)
	sync.Unlock(0)
	return string(a), string(b)
}

// Recover does nothing: an unflipped shadow area is invisible.
func Recover() {
}
