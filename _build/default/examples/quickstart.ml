(* Quickstart: verify your first concurrent, crash-safe system.

   We build the smallest interesting system — a durable counter with an
   increment operation — write its specification as a transition system
   (paper §3.1), implement it over a one-block disk with a lock, and let
   the checker explore every interleaving and crash point.

   Run with: dune exec examples/quickstart.exe *)

module V = Tslang.Value
module T = Tslang.Transition
module Spec = Tslang.Spec
module P = Sched.Prog
module R = Perennial_core.Refinement
open P.Syntax

(* 1. The specification: the abstract state is one integer; [incr] adds one
   and returns the old value; a crash loses nothing. *)
let spec : int Spec.t =
  {
    Spec.name = "durable-counter";
    init = 5;
    compare_state = Int.compare;
    pp_state = Fmt.int;
    step =
      (fun op args ->
        match op, args with
        | "incr", [] ->
          let open T.Syntax in
          let* n = T.reads in
          let* () = T.puts (n + 1) in
          T.ret (V.int n)
        | "get", [] -> T.gets (fun n -> V.int n)
        | _ -> invalid_arg "unknown op");
    crash = T.ret ();
  }

(* 2. The implementation world: one disk block holding the counter in
   decimal, plus a lock. *)
type world = { disk : Disk.Single_disk.t; locks : Disk.Locks.t }

let init_world =
  { disk = Disk.Single_disk.set (Disk.Single_disk.init 1) 0 (Disk.Block.of_string "5");
    locks = Disk.Locks.empty }
let crash_world w = { w with locks = Disk.Locks.empty }

let pp_world ppf w =
  Fmt.pf ppf "%a %a" Disk.Single_disk.pp w.disk Disk.Locks.pp w.locks

let get_disk w = w.disk
let set_disk w disk = { w with disk }
let get_locks w = w.locks
let set_locks w locks = { w with locks }

let decode b = match int_of_string_opt (Disk.Block.to_string b) with Some n -> n | None -> 0
let encode n = Disk.Block.of_string (string_of_int n)

(* 3. The implementation: read-modify-write under a lock.  The single disk
   write is the atomic commit point, so a crash either sees the old or the
   new counter — never anything else. *)
let incr_prog : (world, V.t) P.t =
  let* () = Disk.Locks.acquire ~get:get_locks ~set:set_locks 0 in
  let* b = Disk.Single_disk.read ~get_disk 0 in
  let n = decode (Disk.Block.of_value b) in
  let* () = Disk.Single_disk.write ~get_disk ~set_disk 0 (encode (n + 1)) in
  let* () = Disk.Locks.release ~get:get_locks ~set:set_locks 0 in
  P.return (V.int n)

let get_prog : (world, V.t) P.t =
  let* () = Disk.Locks.acquire ~get:get_locks ~set:set_locks 0 in
  let* b = Disk.Single_disk.read ~get_disk 0 in
  let* () = Disk.Locks.release ~get:get_locks ~set:set_locks 0 in
  P.return (V.int (decode (Disk.Block.of_value b)))

(* 4. No recovery work is needed: the commit point is atomic.  Recovery is
   a no-op, and the checker verifies that this is actually sound. *)
let recovery : (world, V.t) P.t = P.return V.unit

let () =
  Fmt.pr "Checking the durable counter: 2 concurrent increments,@.";
  Fmt.pr "a crash at every step, recovery, and a read-back probe...@.@.";
  let cfg =
    R.config ~spec ~init_world ~crash_world ~pp_world
      ~threads:[ [ (Spec.call "incr" [], incr_prog) ]; [ (Spec.call "incr" [], incr_prog) ] ]
      ~recovery
      ~post:[ (Spec.call "get" [], get_prog) ]
      ~max_crashes:1 ()
  in
  (match R.check cfg with
  | R.Refinement_holds stats ->
    Fmt.pr "  refinement holds: %a@.@." R.pp_stats stats
  | R.Refinement_violated (f, _) -> Fmt.pr "  UNEXPECTED: %a@." R.pp_failure f
  | R.Budget_exhausted _ -> Fmt.pr "  budget exhausted@.");

  (* Now seed a bug: write the new value in two half-writes (tens digit,
     then ones digit) — a crash in between tears the counter. *)
  Fmt.pr "Now the same system with a torn two-phase write seeded in...@.@.";
  let torn_incr : (world, V.t) P.t =
    let* () = Disk.Locks.acquire ~get:get_locks ~set:set_locks 0 in
    let* b = Disk.Single_disk.read ~get_disk 0 in
    let n = decode (Disk.Block.of_value b) in
    (* first write garbage, then the real value: the window is the bug *)
    let* () = Disk.Single_disk.write ~get_disk ~set_disk 0 (Disk.Block.of_string "??") in
    let* () = Disk.Single_disk.write ~get_disk ~set_disk 0 (encode (n + 1)) in
    let* () = Disk.Locks.release ~get:get_locks ~set:set_locks 0 in
    P.return (V.int n)
  in
  let cfg_bug =
    R.config ~spec ~init_world ~crash_world ~pp_world
      ~threads:[ [ (Spec.call "incr" [], torn_incr) ] ]
      ~recovery
      ~post:[ (Spec.call "get" [], get_prog) ]
      ~max_crashes:1 ()
  in
  match R.check cfg_bug with
  | R.Refinement_violated (f, _) ->
    Fmt.pr "  caught, as it must be:@.  %a@." R.pp_failure f
  | R.Refinement_holds _ -> Fmt.pr "  UNEXPECTED: bug not caught@."
  | R.Budget_exhausted _ -> Fmt.pr "  budget exhausted@."
