(* Tests for the assertion layer: symbolic values, the pure congruence
   solver, and heap entailment with frame inference. *)

module Sv = Seplogic.Sval
module Pu = Seplogic.Pure
module A = Seplogic.Assertion
module V = Tslang.Value

(* --- symbolic values --- *)

let test_sval_equal () =
  Alcotest.(check bool) "const eq" true (Sv.equal (Sv.int 3) (Sv.int 3));
  Alcotest.(check bool) "var eq" true (Sv.equal (Sv.var "x") (Sv.var "x"));
  Alcotest.(check bool) "var neq" false (Sv.equal (Sv.var "x") (Sv.var "y"));
  (* concrete pairs and structural pairs coincide *)
  Alcotest.(check bool) "pair canonical" true
    (Sv.equal (Sv.const (V.pair (V.int 1) (V.int 2))) (Sv.pair (Sv.int 1) (Sv.int 2)))

let test_sval_subst () =
  let s = Sv.Subst.add "x" (Sv.int 5) Sv.Subst.empty in
  Alcotest.(check bool) "resolve" true (Sv.equal (Sv.apply s (Sv.var "x")) (Sv.int 5));
  Alcotest.(check bool) "resolve in pair" true
    (Sv.equal (Sv.apply s (Sv.pair (Sv.var "x") (Sv.var "y")))
       (Sv.pair (Sv.int 5) (Sv.var "y")))

let test_sval_unify () =
  (match Sv.unify Sv.Subst.empty (Sv.var "x") (Sv.int 7) with
  | Some s -> Alcotest.(check bool) "bound" true (Sv.equal (Sv.apply s (Sv.var "x")) (Sv.int 7))
  | None -> Alcotest.fail "unify failed");
  Alcotest.(check bool) "const clash" true
    (Sv.unify Sv.Subst.empty (Sv.int 1) (Sv.int 2) = None);
  (* pairs unify componentwise *)
  match Sv.unify Sv.Subst.empty (Sv.pair (Sv.var "a") (Sv.var "b")) (Sv.pair (Sv.int 1) (Sv.int 2)) with
  | Some s ->
    Alcotest.(check bool) "a" true (Sv.equal (Sv.apply s (Sv.var "a")) (Sv.int 1));
    Alcotest.(check bool) "b" true (Sv.equal (Sv.apply s (Sv.var "b")) (Sv.int 2))
  | None -> Alcotest.fail "pair unify failed"

(* --- pure solver --- *)

let x = Sv.var "x"
let y = Sv.var "y"
let z = Sv.var "z"

let test_pure_transitivity () =
  let hyps = [ Pu.eq x y; Pu.eq y z ] in
  Alcotest.(check bool) "x = z" true (Pu.entails hyps (Pu.eq x z));
  Alcotest.(check bool) "not x = w" false (Pu.entails hyps (Pu.eq x (Sv.var "w")))

let test_pure_constants () =
  let hyps = [ Pu.eq x (Sv.int 3) ] in
  Alcotest.(check bool) "x = 3" true (Pu.entails hyps (Pu.eq x (Sv.int 3)));
  Alcotest.(check bool) "x <> 4" true (Pu.entails hyps (Pu.neq x (Sv.int 4)));
  Alcotest.(check bool) "inconsistent" true (Pu.inconsistent (Pu.eq x (Sv.int 4) :: hyps))

let test_pure_neq () =
  let hyps = [ Pu.neq x y; Pu.eq y z ] in
  Alcotest.(check bool) "x <> z via class" true (Pu.entails hyps (Pu.neq x z));
  Alcotest.(check bool) "contradiction on merge" true
    (Pu.inconsistent (Pu.eq x z :: hyps))

let test_pure_pairs () =
  let hyps = [ Pu.eq (Sv.pair x y) (Sv.pair (Sv.int 1) (Sv.int 2)) ] in
  Alcotest.(check bool) "components propagate" true
    (Pu.entails hyps (Pu.eq x (Sv.int 1)) && Pu.entails hyps (Pu.eq y (Sv.int 2)));
  Alcotest.(check bool) "pair vs non-pair const" true
    (Pu.inconsistent [ Pu.eq (Sv.pair x y) (Sv.int 3) ])

let test_pure_vacuous () =
  (* from a contradiction, everything follows *)
  let hyps = [ Pu.eq x (Sv.int 1); Pu.eq x (Sv.int 2) ] in
  Alcotest.(check bool) "ex falso" true (Pu.entails hyps (Pu.eq y z))

(* --- entailment and frames --- *)

let test_match_exact () =
  let scr = A.heap [ A.master "d" (Sv.int 5); A.lease "d" (Sv.int 5) ] in
  let pat = A.heap [ A.master "d" (Sv.var "v") ] in
  match A.match_heap ~scrutinee:scr ~pattern:pat () with
  | Some { A.subst; frame } ->
    Alcotest.(check bool) "v bound to 5" true
      (Sv.equal (Sv.apply subst (Sv.var "v")) (Sv.int 5));
    Alcotest.(check int) "frame has the lease" 1 (List.length frame)
  | None -> Alcotest.fail "match failed"

let test_match_shared_var () =
  (* the pattern shares one variable across two atoms: the scrutinee must
     agree via its pures *)
  let scr =
    A.heap
      ~pures:[ Pu.eq (Sv.var "a") (Sv.var "b") ]
      [ A.master "d1" (Sv.var "a"); A.master "d2" (Sv.var "b") ]
  in
  let pat = A.heap [ A.master "d1" (Sv.var "w"); A.master "d2" (Sv.var "w") ] in
  Alcotest.(check bool) "entails with shared var" true
    (A.match_heap ~scrutinee:scr ~pattern:pat () <> None);
  let scr_bad = A.heap [ A.master "d1" (Sv.int 1); A.master "d2" (Sv.int 2) ] in
  Alcotest.(check bool) "fails when values differ" true
    (A.match_heap ~scrutinee:scr_bad ~pattern:pat () = None)

let test_match_rigid () =
  (* a rigid pattern variable must be justified by the pures, not bound *)
  let scr = A.heap ~pures:[ Pu.eq (Sv.var "r") (Sv.int 9) ] [ A.spec_ret (Sv.var "j") (Sv.int 9) ] in
  let pat = A.heap [ A.spec_ret (Sv.var "j") (Sv.var "r") ] in
  Alcotest.(check bool) "rigid var justified" true
    (A.match_heap ~rigid:[ "r" ] ~scrutinee:scr ~pattern:pat () <> None);
  let scr_bad =
    A.heap ~pures:[ Pu.eq (Sv.var "r") (Sv.int 9) ] [ A.spec_ret (Sv.var "j") (Sv.int 8) ]
  in
  Alcotest.(check bool) "rigid var mismatch fails" true
    (A.match_heap ~rigid:[ "r" ] ~scrutinee:scr_bad ~pattern:pat () = None)

let test_match_tokens () =
  let scr =
    A.heap
      [ A.spec_tok (Sv.var "j") "rd_write" [ Sv.int 0; Sv.var "v" ];
        A.crash_tok A.Crashing; A.tok "t"; A.dtok "d" ]
  in
  let pat = A.heap [ A.spec_tok (Sv.var "jj") "rd_write" [ Sv.int 0; Sv.var "w" ] ] in
  (match A.match_heap ~scrutinee:scr ~pattern:pat () with
  | Some { A.frame; _ } -> Alcotest.(check int) "3 leftover" 3 (List.length frame)
  | None -> Alcotest.fail "token match failed");
  let pat_wrong_op = A.heap [ A.spec_tok (Sv.var "jj") "rd_read" [ Sv.int 0 ] ] in
  Alcotest.(check bool) "wrong op fails" true
    (A.match_heap ~scrutinee:scr ~pattern:pat_wrong_op () = None)

let test_match_inconsistent_scrutinee () =
  let scr = A.heap ~pures:[ Pu.eq (Sv.int 1) (Sv.int 2) ] [] in
  let pat = A.heap [ A.master "anything" (Sv.int 5) ] in
  Alcotest.(check bool) "ex falso heap" true (A.match_heap ~scrutinee:scr ~pattern:pat () <> None)

let test_heap_invalid () =
  Alcotest.(check bool) "two masters same loc" true
    (A.heap_invalid (A.heap [ A.master "d" (Sv.int 1); A.master "d" (Sv.int 2) ]));
  Alcotest.(check bool) "master+lease ok" false
    (A.heap_invalid (A.heap [ A.master "d" (Sv.int 1); A.lease "d" (Sv.int 1) ]));
  Alcotest.(check bool) "two crash tokens" true
    (A.heap_invalid (A.heap [ A.crash_tok A.Crashing; A.crash_tok A.Done_crash ]));
  Alcotest.(check bool) "two spec toks fine (different threads)" false
    (A.heap_invalid
       (A.heap
          [ A.spec_tok (Sv.var "j1") "op" []; A.spec_tok (Sv.var "j2") "op" [] ]))

let test_durability_classification () =
  Alcotest.(check bool) "master durable" true (A.durable (A.master "d" x));
  Alcotest.(check bool) "cell durable" true (A.durable (A.spec_cell "k" x));
  Alcotest.(check bool) "tok-j durable (helping!)" true
    (A.durable (A.spec_tok x "op" []));
  Alcotest.(check bool) "lease volatile" false (A.durable (A.lease "d" x));
  Alcotest.(check bool) "pts volatile" false (A.durable (A.pts "p" x));
  Alcotest.(check bool) "ret volatile" false (A.durable (A.spec_ret x y))

let test_entails_disjunction () =
  let scr = A.heap [ A.master "d" (Sv.int 2) ] in
  let pattern =
    [ A.heap [ A.master "d" (Sv.int 1) ]; A.heap [ A.master "d" (Sv.int 2) ] ]
  in
  match A.entails ~scrutinee:scr ~pattern () with
  | Some (i, _) -> Alcotest.(check int) "second disjunct" 1 i
  | None -> Alcotest.fail "disjunction entailment failed"

(* --- property tests --- *)

let gen_sval =
  QCheck.Gen.(
    oneof
      [ map Sv.int (int_bound 5);
        map Sv.var (oneofl [ "x"; "y"; "z"; "w" ]);
        map2 (fun a b -> Sv.pair (Sv.int a) (Sv.var b)) (int_bound 3) (oneofl [ "x"; "y" ]) ])

let arb_sval = QCheck.make ~print:Sv.to_string gen_sval

let prop_entails_refl =
  QCheck.Test.make ~name:"Pure: x = x always entailed" ~count:100 arb_sval (fun v ->
      Pu.entails [] (Pu.eq v v))

let prop_entails_weakening =
  QCheck.Test.make ~name:"Pure: entailment is monotone in hypotheses" ~count:200
    QCheck.(pair (pair arb_sval arb_sval) (pair arb_sval arb_sval))
    (fun ((a, b), (c, d)) ->
      let goal = Pu.eq a b in
      let hyps = [ Pu.eq a b ] in
      (* adding any consistent fact preserves entailment *)
      let hyps' = Pu.eq c d :: hyps in
      (not (Pu.entails hyps goal)) || Pu.entails hyps' goal)

let prop_frame_size =
  QCheck.Test.make ~name:"Assertion: frame = scrutinee minus pattern atoms" ~count:100
    QCheck.(int_bound 4)
    (fun n ->
      let scr = A.heap (List.init (n + 1) (fun i -> A.master (Printf.sprintf "l%d" i) (Sv.int i))) in
      let pat = A.heap [ A.master "l0" (Sv.var "v") ] in
      match A.match_heap ~scrutinee:scr ~pattern:pat () with
      | Some { A.frame; _ } -> List.length frame = n
      | None -> false)

let qcheck_tests =
  List.map QCheck_alcotest.to_alcotest
    [ prop_entails_refl; prop_entails_weakening; prop_frame_size ]

let suite =
  [
    Alcotest.test_case "sval equal / canonical pairs" `Quick test_sval_equal;
    Alcotest.test_case "sval substitution" `Quick test_sval_subst;
    Alcotest.test_case "sval unification" `Quick test_sval_unify;
    Alcotest.test_case "pure: transitivity" `Quick test_pure_transitivity;
    Alcotest.test_case "pure: constants" `Quick test_pure_constants;
    Alcotest.test_case "pure: disequalities" `Quick test_pure_neq;
    Alcotest.test_case "pure: pairs componentwise" `Quick test_pure_pairs;
    Alcotest.test_case "pure: ex falso" `Quick test_pure_vacuous;
    Alcotest.test_case "match: bind + frame" `Quick test_match_exact;
    Alcotest.test_case "match: shared pattern var" `Quick test_match_shared_var;
    Alcotest.test_case "match: rigid vars" `Quick test_match_rigid;
    Alcotest.test_case "match: tokens" `Quick test_match_tokens;
    Alcotest.test_case "match: inconsistent scrutinee" `Quick test_match_inconsistent_scrutinee;
    Alcotest.test_case "heap invalidity (exclusivity)" `Quick test_heap_invalid;
    Alcotest.test_case "durability classification (§5.2)" `Quick test_durability_classification;
    Alcotest.test_case "entails picks a disjunct" `Quick test_entails_disjunction;
  ]
  @ qcheck_tests
