(* Tests for the shadow-copy proof outlines: the real proof is accepted and
   proof-level mistakes are rejected. *)

module Sv = Seplogic.Sval
module O = Perennial_core.Outline
module P = Systems.Shadow_proof

let expect_accept name result =
  match result with
  | O.Accepted _ -> ()
  | O.Rejected why -> Alcotest.failf "%s rejected: %s" name why

let expect_reject name substring result =
  match result with
  | O.Rejected why ->
    if not (Astring_contains.contains why substring) then
      Alcotest.failf "%s rejected for the wrong reason: %s" name why
  | O.Accepted r -> Alcotest.failf "%s unexpectedly accepted (%a)" name O.pp_report r

let test_shadow_proof_accepted () =
  List.iter (fun (name, r) -> expect_accept name r) (P.check ())

(* Writing the pair in place (into the *active* area) breaks the crash
   invariant at the first close: the abstract pair no longer matches. *)
let test_in_place_write_rejected () =
  let outline =
    { P.write_outline with
      O.o_body =
        [
          O.Acquire 0;
          O.Read_durable { loc = "ptr"; bind = "p" };
          O.Case_eq (Sv.var "p", Sv.str "A");
          (* unconditionally write the A area: when A is active (the p="A"
             case), the first torn write cannot close the invariant *)
          O.Choice [ P.write_path "a0" "a1" (Sv.str "A") ];
          O.Release 0;
        ];
    }
  in
  expect_reject "in-place write" "no alternative" (O.check_op P.system outline)

(* Flipping the pointer before filling the shadow: the simulate happens at
   the flip, but the shadow still holds stale values, so the invariant
   cannot close. *)
let test_flip_first_rejected () =
  let path shadow0 shadow1 new_ptr =
    [
      O.Open_inv
        {
          name = "shadow";
          body =
            [
              O.Write_durable { loc = "ptr"; value = new_ptr };
              O.Simulate
                { op = "pair_write"; args = [ Sv.var "v1"; Sv.var "v2" ]; bind_ret = "r" };
            ];
        };
      O.Open_inv
        { name = "shadow"; body = [ O.Write_durable { loc = shadow0; value = Sv.var "v1" } ] };
      O.Open_inv
        { name = "shadow"; body = [ O.Write_durable { loc = shadow1; value = Sv.var "v2" } ] };
    ]
  in
  let outline =
    { P.write_outline with
      O.o_body =
        [
          O.Acquire 0;
          O.Read_durable { loc = "ptr"; bind = "p" };
          O.Case_eq (Sv.var "p", Sv.str "A");
          O.Choice [ path "b0" "b1" (Sv.str "B"); path "a0" "a1" (Sv.str "A") ];
          O.Release 0;
        ];
    }
  in
  expect_reject "flip before fill" "no alternative" (O.check_op P.system outline)

(* A read that serves the WRONG area cannot justify its return value. *)
let test_read_wrong_area_rejected () =
  let outline =
    { P.read_outline with
      O.o_body =
        [
          O.Acquire 0;
          O.Read_durable { loc = "ptr"; bind = "p" };
          O.Case_eq (Sv.var "p", Sv.str "A");
          (* always read the B area, regardless of the pointer *)
          O.Choice
            [
              [ O.Read_durable { loc = "b0"; bind = "r0" };
                O.Read_durable { loc = "b1"; bind = "r1" };
                O.Open_inv
                  { name = "shadow";
                    body = [ O.Simulate { op = "pair_read"; args = []; bind_ret = "r" } ] };
                O.Assert_eq (Sv.var "r", Sv.pair (Sv.var "r0") (Sv.var "r1")) ];
            ];
          O.Release 0;
        ];
    }
  in
  expect_reject "read wrong area" "no alternative" (O.check_op P.system outline)

(* The recovery outline cannot skip the spec crash step. *)
let test_recovery_missing_crash_step () =
  let broken =
    { O.r_body =
        [ O.Synthesize "ptr"; O.Synthesize "a0"; O.Synthesize "a1"; O.Synthesize "b0";
          O.Synthesize "b1" ] }
  in
  expect_reject "missing crash step" "abstraction relation"
    (O.check_recovery P.system broken)

let suite =
  [
    Alcotest.test_case "shadow proof accepted" `Quick test_shadow_proof_accepted;
    Alcotest.test_case "reject: in-place write" `Quick test_in_place_write_rejected;
    Alcotest.test_case "reject: flip before fill" `Quick test_flip_first_rejected;
    Alcotest.test_case "reject: read wrong area" `Quick test_read_wrong_area_rejected;
    Alcotest.test_case "reject: recovery missing crash step" `Quick test_recovery_missing_crash_step;
  ]
