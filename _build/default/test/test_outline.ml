(* Tests for the proof-outline checker: the replicated-disk proof must be
   accepted; broken proofs and broken implementations must be rejected with
   the right rule. *)

module A = Seplogic.Assertion
module Sv = Seplogic.Sval
module Pu = Seplogic.Pure
module O = Perennial_core.Outline
module P = Systems.Rd_proof

let expect_accept name result =
  match result with
  | O.Accepted _ -> ()
  | O.Rejected why -> Alcotest.failf "%s rejected: %s" name why

let expect_reject name substring result =
  match result with
  | O.Rejected why ->
    if not (Astring_contains.contains why substring) then
      Alcotest.failf "%s rejected for the wrong reason: %s" name why
  | O.Accepted r -> Alcotest.failf "%s unexpectedly accepted (%a)" name O.pp_report r

(* --- the real proof goes through --- *)

let test_rd_proof_size1 () =
  List.iter (fun (name, r) -> expect_accept name r) (P.check 1)

let test_rd_proof_size2 () =
  List.iter (fun (name, r) -> expect_accept name r) (P.check 2)

(* --- broken proofs / implementations are rejected --- *)

let sys = P.system 1

(* Write without acquiring the lock: no lease available. *)
let test_write_without_lock () =
  let outline =
    {
      O.o_op = "rd_write";
      o_args = [ Sv.int 0; Sv.var "v" ];
      o_ret = Sv.unit;
      o_body =
        [
          O.Open_inv
            { name = "c0"; body = [ O.Write_durable { loc = "d1[0]"; value = Sv.var "v" } ] };
        ];
    }
  in
  expect_reject "unlocked write" "lease" (O.check_op sys outline)

(* Write outside any invariant opening: no master copy at hand. *)
let test_write_without_invariant () =
  let outline =
    {
      O.o_op = "rd_write";
      o_args = [ Sv.int 0; Sv.var "v" ];
      o_ret = Sv.unit;
      o_body = [ O.Acquire 0; O.Write_durable { loc = "d1[0]"; value = Sv.var "v" }; O.Release 0 ];
    }
  in
  expect_reject "uninvariant write" "master" (O.check_op sys outline)

(* Both disk writes under a single invariant opening: not atomic. *)
let test_two_writes_one_open () =
  let outline =
    {
      O.o_op = "rd_write";
      o_args = [ Sv.int 0; Sv.var "v" ];
      o_ret = Sv.unit;
      o_body =
        [
          O.Acquire 0;
          O.Open_inv
            {
              name = "c0";
              body =
                [
                  O.Write_durable { loc = "d1[0]"; value = Sv.var "v" };
                  O.Write_durable { loc = "d2[0]"; value = Sv.var "v" };
                ];
            };
          O.Release 0;
        ];
    }
  in
  expect_reject "two writes in one open" "more than one atomic step"
    (O.check_op sys outline)

(* Missing the case split: neither disjunct's guard is provable at close. *)
let test_missing_case_split () =
  let outline =
    { (P.write_outline 0) with
      O.o_body =
        (match (P.write_outline 0).O.o_body with
        | acquire :: read :: _case :: rest -> acquire :: read :: rest
        | _ -> assert false);
    }
  in
  expect_reject "missing case split" "cannot close" (O.check_op sys outline)

(* Forgetting to simulate: the operation never linearizes, so the
   postcondition j ⤇ ret is not available. *)
let test_missing_simulation () =
  let outline =
    {
      O.o_op = "rd_write";
      o_args = [ Sv.int 0; Sv.var "v" ];
      o_ret = Sv.unit;
      o_body =
        [
          O.Acquire 0;
          O.Read_durable { loc = "d1[0]"; bind = "old" };
          O.Case_eq (Sv.var "v", Sv.var "old");
          O.Open_inv
            { name = "c0"; body = [ O.Write_durable { loc = "d1[0]"; value = Sv.var "v" } ] };
          O.Open_inv
            { name = "c0"; body = [ O.Write_durable { loc = "d2[0]"; value = Sv.var "v" } ] };
          O.Release 0;
        ];
    }
  in
  (* The failure manifests at invariant close: without the ghost step the
     abstract state can no longer match the disks. *)
  expect_reject "missing simulation" "cannot close" (O.check_op sys outline)

(* Leaving the lock held at the end. *)
let test_unreleased_lock () =
  let outline =
    { (P.read_outline 0) with
      O.o_body =
        (match (P.read_outline 0).O.o_body with
        | [ a; b; c; O.Release _ ] -> [ a; b; c ]
        | _ -> assert false);
    }
  in
  expect_reject "unreleased lock" "holding locks" (O.check_op sys outline)

(* Zeroing recovery: changing disk 1 requires simulating a write of zero,
   for which no token exists. *)
let test_zeroing_recovery () =
  let recovery =
    {
      O.r_body =
        [
          O.Synthesize "d1[0]";
          O.Synthesize "d2[0]";
          O.Atomic [ O.Write_durable { loc = "d1[0]"; value = Sv.str "0" } ];
          O.Atomic [ O.Write_durable { loc = "d2[0]"; value = Sv.str "0" } ];
          O.Crash_step;
        ];
    }
  in
  expect_reject "zeroing recovery" "idempotence" (O.check_recovery sys recovery)

(* Recovery that never repairs the disks cannot re-establish the lock
   invariant (leases must agree). *)
let test_noop_recovery () =
  let recovery =
    { O.r_body = [ O.Synthesize "d1[0]"; O.Synthesize "d2[0]"; O.Crash_step ] }
  in
  expect_reject "noop recovery" "abstraction relation" (O.check_recovery sys recovery)

(* Lease synthesis outside recovery is forbidden (the version bump only
   happens at a crash). *)
let test_synthesis_outside_recovery () =
  let outline =
    {
      O.o_op = "rd_read";
      o_args = [ Sv.int 0 ];
      o_ret = Sv.var "r";
      o_body = [ O.Synthesize "d1[0]" ];
    }
  in
  expect_reject "synthesis outside recovery" "outside recovery" (O.check_op sys outline)

(* A crash invariant mentioning a volatile capability violates the
   crash-invariance side condition. *)
let test_volatile_crash_invariant () =
  let bad_sys =
    { sys with
      O.crash_invs =
        [ ("c0", [ A.heap [ A.lease "d1[0]" (Sv.var "w") ] ]) ];
    }
  in
  let recovery = { O.r_body = [ O.Crash_step ] } in
  expect_reject "volatile crash invariant" "volatile" (O.check_recovery bad_sys recovery)

(* Double acquisition of the same lock self-deadlocks. *)
let test_double_acquire () =
  let outline =
    {
      O.o_op = "rd_read";
      o_args = [ Sv.int 0 ];
      o_ret = Sv.var "r";
      o_body = [ O.Acquire 0; O.Acquire 0 ];
    }
  in
  expect_reject "double acquire" "re-acquired" (O.check_op sys outline)

(* Missing Crash_step: recovery never simulates the spec crash, so ⤇Done is
   not available. *)
let test_missing_crash_step () =
  let recovery =
    { O.r_body = List.concat_map P.recover_addr [ 0 ] }
  in
  expect_reject "missing crash step" "abstraction relation" (O.check_recovery sys recovery)

(* --- memory-rule and structural edges --- *)

let test_read_mem_without_pts () =
  let outline =
    {
      O.o_op = "rd_read";
      o_args = [ Sv.int 0 ];
      o_ret = Sv.var "r";
      o_body = [ O.Read_mem { ptr = "nowhere"; bind = "r" } ];
    }
  in
  expect_reject "load without pts" "without p" (O.check_op sys outline)

let test_alloc_reuse_rejected () =
  let outline =
    {
      O.o_op = "rd_read";
      o_args = [ Sv.int 0 ];
      o_ret = Sv.var "r";
      o_body =
        [ O.Alloc_mem { ptr = "p"; value = Sv.int 1 };
          O.Alloc_mem { ptr = "p"; value = Sv.int 2 } ];
    }
  in
  expect_reject "alloc reuse" "reuses live pointer" (O.check_op sys outline)

let test_open_inside_atomic_rejected () =
  let recovery =
    { O.r_body =
        [ O.Atomic
            [ O.Open_inv { name = "c0"; body = [] } ] ] }
  in
  expect_reject "open inside atomic" "more than one physical step"
    (O.check_recovery sys recovery)

let test_assert_eq_unprovable () =
  let outline =
    {
      O.o_op = "rd_read";
      o_args = [ Sv.int 0 ];
      o_ret = Sv.var "r";
      o_body = [ O.Assert_eq (Sv.var "a", Sv.var "b") ];
    }
  in
  expect_reject "assert unprovable" "not provable" (O.check_op sys outline)

let test_simulate_without_token () =
  let outline =
    {
      O.o_op = "rd_read";
      o_args = [ Sv.int 0 ];
      o_ret = Sv.var "r";
      o_body =
        [ O.Simulate { op = "rd_write"; args = [ Sv.int 0; Sv.str "z" ]; bind_ret = "r" } ];
    }
  in
  (* the pre-heap holds a token for rd_read, not rd_write *)
  expect_reject "simulate without matching token" "token" (O.check_op sys outline)

let suite =

  [
    Alcotest.test_case "rd proof accepted (1 address)" `Quick test_rd_proof_size1;
    Alcotest.test_case "rd proof accepted (2 addresses)" `Quick test_rd_proof_size2;
    Alcotest.test_case "reject: write without lock" `Quick test_write_without_lock;
    Alcotest.test_case "reject: write without invariant" `Quick test_write_without_invariant;
    Alcotest.test_case "reject: two writes in one open" `Quick test_two_writes_one_open;
    Alcotest.test_case "reject: missing case split" `Quick test_missing_case_split;
    Alcotest.test_case "reject: missing simulation" `Quick test_missing_simulation;
    Alcotest.test_case "reject: unreleased lock" `Quick test_unreleased_lock;
    Alcotest.test_case "reject: zeroing recovery" `Quick test_zeroing_recovery;
    Alcotest.test_case "reject: noop recovery" `Quick test_noop_recovery;
    Alcotest.test_case "reject: synthesis outside recovery" `Quick test_synthesis_outside_recovery;
    Alcotest.test_case "reject: volatile crash invariant" `Quick test_volatile_crash_invariant;
    Alcotest.test_case "reject: double acquire" `Quick test_double_acquire;
    Alcotest.test_case "reject: missing crash step" `Quick test_missing_crash_step;
    Alcotest.test_case "reject: load without pts" `Quick test_read_mem_without_pts;
    Alcotest.test_case "reject: alloc reuse" `Quick test_alloc_reuse_rejected;
    Alcotest.test_case "reject: open inside atomic" `Quick test_open_inside_atomic_rejected;
    Alcotest.test_case "reject: unprovable assertion" `Quick test_assert_eq_unprovable;
    Alcotest.test_case "reject: simulate without token" `Quick test_simulate_without_token;
  ]
