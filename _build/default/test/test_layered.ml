(* Tests for the WAL-over-replicated-disk composition: the full stack must
   tolerate a crash at any step plus one disk failure; dropping the inner
   layer's recovery must be caught. *)

module V = Tslang.Value
module R = Perennial_core.Refinement
module L = Systems.Layered

let expect_holds name cfg =
  match R.check cfg with
  | R.Refinement_holds _ -> ()
  | R.Refinement_violated (f, _) -> Alcotest.failf "%s: %a" name R.pp_failure f
  | R.Budget_exhausted stats -> Alcotest.failf "%s: budget (%a)" name R.pp_stats stats

let vx = V.str "x" and vy = V.str "y"

let test_write_crash_no_failures () =
  expect_holds "layered write + crash"
    (L.checker_config ~may_fail:false ~max_crashes:1 [ [ L.write_call vx vy ] ])

let test_write_crash_with_failures () =
  expect_holds "layered write + crash + disk failure"
    (L.checker_config ~may_fail:true ~max_crashes:1 [ [ L.write_call vx vy ] ])

let test_crash_during_composed_recovery () =
  (* a crash inside either stage of the composed recovery must be safe *)
  expect_holds "crash during composed recovery"
    (L.checker_config ~may_fail:false ~max_crashes:2 [ [ L.write_call vx vy ] ])

let test_writer_reader () =
  expect_holds "layered writer/reader"
    (L.checker_config ~may_fail:false ~max_crashes:1
       [ [ L.write_call vx vy ]; [ L.read_call ] ])

let test_bug_missing_outer_recovery () =
  (* a crash mid-apply leaves a torn pair that only the WAL replay fixes *)
  match
    R.check
      (R.config ~spec:Systems.Wal.spec ~init_world:(L.init_world ~may_fail:false ())
         ~crash_world:L.crash_world ~pp_world:L.pp_world
         ~threads:[ [ L.write_call vx vy ] ]
         ~recovery:L.Buggy.recover_rd_only
         ~post:[ L.read_call; L.read_call ]
         ~max_crashes:1 ())
  with
  | R.Refinement_violated _ -> ()
  | R.Refinement_holds stats ->
    Alcotest.failf "missing wal replay not caught (%a)" R.pp_stats stats
  | R.Budget_exhausted stats -> Alcotest.failf "budget (%a)" R.pp_stats stats

let test_direct_execution () =
  (* plain run: write, fail disk 1, read back through failover *)
  let w0 = L.init_world ~may_fail:false () in
  let out = Sched.Runner.run w0 [ L.write_prog (V.str "p") (V.str "q") ] in
  let failed =
    { out.Sched.Runner.world with
      L.disks = Disk.Two_disk.fail out.Sched.Runner.world.L.disks Disk.Two_disk.D1
    }
  in
  let _, v = Sched.Runner.run1 failed L.read_prog in
  let a, b = V.get_pair v in
  Alcotest.(check bool) "failover read" true
    (V.equal a (V.str "p") && V.equal b (V.str "q"))

let suite =
  [
    Alcotest.test_case "write + crash" `Quick test_write_crash_no_failures;
    Alcotest.test_case "write + crash + disk failure" `Quick test_write_crash_with_failures;
    Alcotest.test_case "crash during composed recovery" `Quick test_crash_during_composed_recovery;
    Alcotest.test_case "writer/reader" `Quick test_writer_reader;
    Alcotest.test_case "bug: missing outer recovery" `Quick test_bug_missing_outer_recovery;
    Alcotest.test_case "direct execution with failover" `Quick test_direct_execution;
  ]
