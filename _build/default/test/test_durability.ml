(* Tests for the deferred-durability extension (the paper's §1 future-work
   item): under buffered writes, Mailboat's delivery is only correct with
   an fsync before the commit link — the refinement checker shows both
   directions. *)

module V = Tslang.Value
module R = Perennial_core.Refinement
module M = Mailboat.Core
module Fs = Gfs.Fs

(* --- the Fs model itself --- *)

let test_sync_mode_survives_crash () =
  let fs = Fs.init [ "d" ] in
  let fs, fd = Option.get (Fs.create fs "d" "f") in
  let fs = Option.get (Fs.append fs fd "hello") in
  let fs = Fs.crash fs in
  Alcotest.(check (option string)) "intact" (Some "hello") (Fs.read_file fs "d" "f")

let test_deferred_crash_truncates () =
  let fs = Fs.init ~durability:`Deferred [ "d" ] in
  let fs, fd = Option.get (Fs.create fs "d" "f") in
  let fs = Option.get (Fs.append fs fd "hello") in
  let fs = Fs.crash fs in
  Alcotest.(check (option string)) "truncated to synced prefix" (Some "")
    (Fs.read_file fs "d" "f")

let test_deferred_fsync_persists () =
  let fs = Fs.init ~durability:`Deferred [ "d" ] in
  let fs, fd = Option.get (Fs.create fs "d" "f") in
  let fs = Option.get (Fs.append fs fd "hel") in
  let fs = Option.get (Fs.fsync fs fd) in
  let fs = Option.get (Fs.append fs fd "lo") in
  let fs = Fs.crash fs in
  (* only the synced prefix survives *)
  Alcotest.(check (option string)) "prefix" (Some "hel") (Fs.read_file fs "d" "f")

let test_deferred_reads_see_buffered () =
  (* before a crash, reads observe buffered data (OS page cache) *)
  let fs = Fs.init ~durability:`Deferred [ "d" ] in
  let fs, fd = Option.get (Fs.create fs "d" "f") in
  let fs = Option.get (Fs.append fs fd "xyz") in
  Alcotest.(check (option string)) "buffered visible" (Some "xyz")
    (Fs.read_at fs fd 0 10)

let test_fsync_noop_in_sync_mode () =
  let fs = Fs.init [ "d" ] in
  let fs, fd = Option.get (Fs.create fs "d" "f") in
  let fs = Option.get (Fs.append fs fd "abc") in
  let fs' = Option.get (Fs.fsync fs fd) in
  Alcotest.(check bool) "no change" true (Fs.equal fs fs')

(* --- Mailboat under deferred durability --- *)

let test_mailboat_without_fsync_violates () =
  (* plain delivery links a possibly-unsynced file: a crash after the link
     truncates an already-visible message *)
  match
    R.check
      (M.checker_config ~users:1 ~max_crashes:1 ~durability:`Deferred
         [ [ M.deliver_call 0 "ab" ] ])
  with
  | R.Refinement_violated _ -> ()
  | R.Refinement_holds stats ->
    Alcotest.failf "deferred-durability bug not caught (%a)" R.pp_stats stats
  | R.Budget_exhausted stats -> Alcotest.failf "budget exhausted (%a)" R.pp_stats stats

let test_mailboat_with_fsync_holds () =
  match
    R.check
      (M.checker_config ~users:1 ~max_crashes:1 ~durability:`Deferred
         [ [ M.deliver_fsync_call 0 "ab" ] ])
  with
  | R.Refinement_holds _ -> ()
  | R.Refinement_violated (f, _) -> Alcotest.failf "fsync delivery: %a" R.pp_failure f
  | R.Budget_exhausted stats -> Alcotest.failf "budget exhausted (%a)" R.pp_stats stats

let test_fsync_delivery_also_correct_under_sync () =
  (* the fsync variant remains correct under the paper's model *)
  match
    R.check
      (M.checker_config ~users:1 ~max_crashes:1 [ [ M.deliver_fsync_call 0 "ab" ] ])
  with
  | R.Refinement_holds _ -> ()
  | R.Refinement_violated (f, _) -> Alcotest.failf "sync mode: %a" R.pp_failure f
  | R.Budget_exhausted stats -> Alcotest.failf "budget exhausted (%a)" R.pp_stats stats

(* --- qcheck: the Fs invariants hold under random op sequences --- *)

type op =
  | Create of string
  | Append of int * string
  | Fsync of int
  | Close of int
  | Delete of string
  | Link of string * string
  | Crash

let gen_op =
  QCheck.Gen.(
    oneof
      [ map (fun n -> Create ("f" ^ string_of_int n)) (int_bound 3);
        map2 (fun fd s -> Append (fd, s)) (int_bound 5) (string_size (return 2));
        map (fun fd -> Fsync fd) (int_bound 5);
        map (fun fd -> Close fd) (int_bound 5);
        map (fun n -> Delete ("f" ^ string_of_int n)) (int_bound 3);
        map2 (fun a b -> Link ("f" ^ string_of_int a, "g" ^ string_of_int b)) (int_bound 3)
          (int_bound 3);
        return Crash ])

let show_op = function
  | Create s -> "create " ^ s
  | Append (fd, s) -> Printf.sprintf "append %d %S" fd s
  | Fsync fd -> Printf.sprintf "fsync %d" fd
  | Close fd -> Printf.sprintf "close %d" fd
  | Delete s -> "delete " ^ s
  | Link (a, b) -> Printf.sprintf "link %s %s" a b
  | Crash -> "crash"

let apply_op fs = function
  | Create name -> (match Fs.create fs "d" name with Some (fs, _) -> fs | None -> fs)
  | Append (fd, s) -> (match Fs.append fs fd s with Some fs -> fs | None -> fs)
  | Fsync fd -> (match Fs.fsync fs fd with Some fs -> fs | None -> fs)
  | Close fd -> (match Fs.close fs fd with Some fs -> fs | None -> fs)
  | Delete name -> (match Fs.delete fs "d" name with Some fs -> fs | None -> fs)
  | Link (a, b) -> (
    match Fs.link fs ~src:("d", a) ~dst:("d", b) with Some fs -> fs | None -> fs)
  | Crash -> Fs.crash fs

(* every directory entry points at a live inode, and every live inode is
   reachable from some entry or descriptor *)
let fs_invariant fs =
  let entries = Fs.list_dir fs "d" in
  List.for_all
    (fun name ->
      match Fs.read_file fs "d" name with Some _ -> true | None -> false)
    entries

let prop_fs_invariants mode =
  QCheck.Test.make
    ~name:(Printf.sprintf "Fs invariants under random ops (%s)" mode)
    ~count:300
    QCheck.(make ~print:(fun l -> String.concat "; " (List.map show_op l))
              QCheck.Gen.(list_size (int_bound 20) gen_op))
    (fun ops ->
      let durability = if mode = "sync" then `Sync else `Deferred in
      let fs = Fs.init ~durability [ "d" ] in
      let fs = List.fold_left apply_op fs ops in
      fs_invariant fs)

let prop_crash_idempotent =
  QCheck.Test.make ~name:"Fs: crash is idempotent" ~count:300
    QCheck.(make ~print:(fun l -> String.concat "; " (List.map show_op l))
              QCheck.Gen.(list_size (int_bound 15) gen_op))
    (fun ops ->
      let fs = Fs.init ~durability:`Deferred [ "d" ] in
      let fs = List.fold_left apply_op fs ops in
      Fs.equal (Fs.crash fs) (Fs.crash (Fs.crash fs)))

let prop_sync_crash_preserves_contents =
  QCheck.Test.make ~name:"Fs: sync-mode crash preserves all contents" ~count:300
    QCheck.(make ~print:(fun l -> String.concat "; " (List.map show_op l))
              QCheck.Gen.(list_size (int_bound 15) gen_op))
    (fun ops ->
      let ops = List.filter (fun o -> o <> Crash) ops in
      let fs = Fs.init [ "d" ] in
      let fs = List.fold_left apply_op fs ops in
      let crashed = Fs.crash fs in
      List.for_all
        (fun name -> Fs.read_file crashed "d" name = Fs.read_file fs "d" name)
        (Fs.list_dir fs "d"))

let qcheck_tests =
  List.map QCheck_alcotest.to_alcotest
    [ prop_fs_invariants "sync"; prop_fs_invariants "deferred"; prop_crash_idempotent;
      prop_sync_crash_preserves_contents ]

let suite =
  [
    Alcotest.test_case "sync mode survives crash" `Quick test_sync_mode_survives_crash;
    Alcotest.test_case "deferred crash truncates" `Quick test_deferred_crash_truncates;
    Alcotest.test_case "deferred fsync persists prefix" `Quick test_deferred_fsync_persists;
    Alcotest.test_case "deferred reads see buffered" `Quick test_deferred_reads_see_buffered;
    Alcotest.test_case "fsync is a no-op in sync mode" `Quick test_fsync_noop_in_sync_mode;
    Alcotest.test_case "mailboat w/o fsync violates (deferred)" `Quick
      test_mailboat_without_fsync_violates;
    Alcotest.test_case "mailboat with fsync holds (deferred)" `Quick
      test_mailboat_with_fsync_holds;
    Alcotest.test_case "fsync delivery correct under sync too" `Quick
      test_fsync_delivery_also_correct_under_sync;
  ]
  @ qcheck_tests
