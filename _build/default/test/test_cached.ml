(* Tests for the cached-block system: the §5.2 versioned-memory study.
   Both checkers verify the honest implementation; the stale-cache and
   no-repopulation bugs are rejected; the proof-level variants show why
   the lock invariant must couple memory to disk. *)

module V = Tslang.Value
module R = Perennial_core.Refinement
module O = Perennial_core.Outline
module A = Seplogic.Assertion
module Sv = Seplogic.Sval
module Cb = Systems.Cached_block
module Cp = Systems.Cached_proof

let expect_holds name cfg =
  match R.check cfg with
  | R.Refinement_holds _ -> ()
  | R.Refinement_violated (f, _) -> Alcotest.failf "%s: %a" name R.pp_failure f
  | R.Budget_exhausted stats -> Alcotest.failf "%s: budget (%a)" name R.pp_stats stats

let expect_violation name cfg =
  match R.check cfg with
  | R.Refinement_violated _ -> ()
  | R.Refinement_holds stats -> Alcotest.failf "%s: missed (%a)" name R.pp_stats stats
  | R.Budget_exhausted stats -> Alcotest.failf "%s: budget (%a)" name R.pp_stats stats

(* --- refinement --- *)

let test_put_get_crash () =
  expect_holds "put+get with crash"
    (Cb.checker_config ~max_crashes:1 [ [ Cb.put_call (V.str "x") ]; [ Cb.get_call ] ])

let test_two_writers () =
  expect_holds "two writers"
    (Cb.checker_config ~max_crashes:1
       [ [ Cb.put_call (V.str "a") ]; [ Cb.put_call (V.str "b") ] ])

let test_crash_during_recovery () =
  expect_holds "crash during recovery"
    (Cb.checker_config ~max_crashes:2 [ [ Cb.put_call (V.str "x") ] ])

let test_bug_stale_cache () =
  (* no crash needed: the read-back probe sees the stale cache *)
  expect_violation "stale cache"
    (Cb.checker_config ~max_crashes:0 [ [ Cb.Buggy.put_call_no_cache_update (V.str "x") ] ])

let test_bug_no_repopulation () =
  (* the probe's cache read after recovery is UB *)
  expect_violation "recovery skips repopulation"
    (R.config ~spec:Cb.spec ~init_world:(Cb.init_world ()) ~crash_world:Cb.crash_world
       ~pp_world:Cb.pp_world
       ~threads:[ [ Cb.put_call (V.str "x") ] ]
       ~recovery:Cb.Buggy.recover_nop ~post:[ Cb.get_call ] ~max_crashes:1 ())

(* --- outlines --- *)

let test_proof_accepted () =
  List.iter
    (fun (name, r) ->
      match r with
      | O.Accepted _ -> ()
      | O.Rejected why -> Alcotest.failf "%s rejected: %s" name why)
    (Cp.check ())

let expect_reject name substring result =
  match result with
  | O.Rejected why ->
    if not (Astring_contains.contains why substring) then
      Alcotest.failf "%s rejected for the wrong reason: %s" name why
  | O.Accepted r -> Alcotest.failf "%s unexpectedly accepted (%a)" name O.pp_report r

(* Decoupling the lock invariant (cache value unrelated to the lease) makes
   the get outline unprovable: the memory value can no longer be shown to
   be the abstract one. *)
let test_proof_needs_coupling () =
  let decoupled =
    { Cp.system with
      O.lock_invs =
        [ (0, [ A.heap [ A.lease "blk" (Sv.var "v"); A.pts "cache" (Sv.var "u") ] ]) ];
    }
  in
  expect_reject "decoupled lock invariant" "post-condition"
    (O.check_op decoupled Cp.get_outline)

(* Recovery that skips the allocation cannot re-establish the lock
   invariant: the fresh version has no cache ↦ v capability. *)
let test_proof_needs_allocation () =
  let broken =
    {
      O.r_body =
        [ O.Synthesize "blk"; O.Read_durable { loc = "blk"; bind = "r" }; O.Crash_step ];
    }
  in
  expect_reject "recovery without allocation" "abstraction relation"
    (O.check_recovery Cp.system broken)

(* A put that skips the cache update cannot release the lock: the coupling
   no longer holds — the proof-level shadow of the stale-cache bug. *)
let test_proof_stale_cache () =
  let outline =
    { Cp.put_outline with
      O.o_body =
        [
          O.Acquire 0;
          O.Open_inv
            {
              name = "cb";
              body =
                [
                  O.Write_durable { loc = "blk"; value = Sv.var "v" };
                  O.Simulate { op = "put"; args = [ Sv.var "v" ]; bind_ret = "ret" };
                ];
            };
          O.Release 0;
        ];
    }
  in
  expect_reject "put without cache update" "lock invariant" (O.check_op Cp.system outline)

(* A memory write without owning the points-to is rejected. *)
let test_proof_unlocked_cache_write () =
  let outline =
    { Cp.put_outline with
      O.o_body = [ O.Write_mem { ptr = "cache"; value = Sv.var "v" } ];
    }
  in
  expect_reject "unlocked cache write" "without p" (O.check_op Cp.system outline)

let suite =
  [
    Alcotest.test_case "refinement: put+get with crash" `Quick test_put_get_crash;
    Alcotest.test_case "refinement: two writers" `Quick test_two_writers;
    Alcotest.test_case "refinement: crash during recovery" `Quick test_crash_during_recovery;
    Alcotest.test_case "bug: stale cache" `Quick test_bug_stale_cache;
    Alcotest.test_case "bug: no repopulation" `Quick test_bug_no_repopulation;
    Alcotest.test_case "proof accepted" `Quick test_proof_accepted;
    Alcotest.test_case "proof: coupling required" `Quick test_proof_needs_coupling;
    Alcotest.test_case "proof: allocation required" `Quick test_proof_needs_allocation;
    Alcotest.test_case "proof: stale cache caught" `Quick test_proof_stale_cache;
    Alcotest.test_case "proof: unowned memory write" `Quick test_proof_unlocked_cache_write;
  ]
