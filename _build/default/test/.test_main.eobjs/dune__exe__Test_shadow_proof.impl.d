test/test_shadow_proof.ml: Alcotest Astring_contains List Perennial_core Seplogic Systems
