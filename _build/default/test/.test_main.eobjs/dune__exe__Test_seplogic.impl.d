test/test_seplogic.ml: Alcotest List Printf QCheck QCheck_alcotest Seplogic Tslang
