test/test_goose.ml: Alcotest Array Astring_contains Disk Fmt Gfs Goose Int List Mailboat Map Option Perennial_core Printf Sched Systems Tslang
