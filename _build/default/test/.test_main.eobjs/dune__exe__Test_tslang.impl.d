test/test_tslang.ml: Alcotest Astring_contains Fmt Int List Map QCheck QCheck_alcotest Spec Transition Tslang Value
